// bench_test.go hosts one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out (sparse vs dense real-time encoding, pruning vs raw
// solving, and the exponential cost of dropping unique values). Run:
//
//	go test -bench=. -benchmem
//
// The full parameter sweeps live in internal/bench (cmd/mtc-bench); these
// benchmarks measure the hot paths at one representative point each so the
// suite completes quickly and -benchmem reports allocation costs.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mtc/internal/bench"
	"mtc/internal/cobra"
	"mtc/internal/core"
	"mtc/internal/elle"
	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/npc"
	"mtc/internal/polygraph"
	"mtc/internal/polysi"
	"mtc/internal/porcupine"
	"mtc/internal/runner"
	"mtc/internal/sat"
	"mtc/internal/workload"
)

// histories are generated once and shared across benchmarks.
var (
	histOnce  sync.Once
	serHist   *history.History // 3000-txn MT history from a serializable store (zipf)
	siHist    *history.History // 3000-txn MT history from an SI store (zipf)
	lwtOps    []core.LWT       // 2000-op fully concurrent LWT history
	laHist    *elle.History    // list-append history
	timedHist *history.History // for SSER benches
)

func setup() {
	histOnce.Do(func() {
		mk := func(mode kv.Mode) *history.History {
			s := kv.NewStore(mode)
			w := workload.GenerateMT(workload.MTConfig{
				Sessions: 10, Txns: 300, Objects: 100,
				Dist: workload.Zipfian, Seed: 1, ReadOnlyFrac: 0.2,
			})
			return runner.Run(s, w, runner.Config{Retries: 8, DropAborted: true}).H
		}
		serHist = mk(kv.ModeSerializable)
		siHist = mk(kv.ModeSI)
		timedHist = mk(kv.ModeSerializable)
		lwtOps = workload.GenerateLWT(workload.LWTConfig{
			Sessions: 20, TxnsPerSession: 100, ConcurrentFrac: 1, Keys: 1, Seed: 2,
		})
		s := kv.NewStore(kv.ModeSerializable)
		wla := workload.GenerateListAppend(workload.ListAppendConfig{
			Sessions: 8, Txns: 100, Objects: 10, MaxTxnLen: 6, Seed: 3,
		})
		laHist, _ = runner.RunListAppend(s, wla, runner.Config{Retries: 8, DropAborted: true})
	})
}

// --- Table I -------------------------------------------------------------

func BenchmarkTable1Anomalies(b *testing.B) {
	fixtures := history.Fixtures()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range fixtures {
			core.CheckSSER(f.H)
			core.CheckSER(f.H)
			core.CheckSI(f.H)
		}
	}
}

// --- Figure 7: SER verification ------------------------------------------

func BenchmarkFig7MTCSERVerify(b *testing.B) {
	setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.CheckSER(serHist).OK {
			b.Fatal("valid history rejected")
		}
	}
}

func BenchmarkFig7CobraVerify(b *testing.B) {
	setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !cobra.CheckSER(serHist).OK {
			b.Fatal("valid history rejected")
		}
	}
}

// --- Figure 8: SI verification --------------------------------------------

func BenchmarkFig8MTCSIVerify(b *testing.B) {
	setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.CheckSI(siHist).OK {
			b.Fatal("valid history rejected")
		}
	}
}

func BenchmarkFig8PolySIVerify(b *testing.B) {
	setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !polysi.CheckSI(siHist).OK {
			b.Fatal("valid history rejected")
		}
	}
}

// --- Figure 9: SSER / linearizability on LWT histories ---------------------

func BenchmarkFig9MTCSSERVerify(b *testing.B) {
	setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.VLLWT(lwtOps).OK {
			b.Fatal("valid history rejected")
		}
	}
}

func BenchmarkFig9PorcupineVerify(b *testing.B) {
	setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !porcupine.Check(lwtOps) {
			b.Fatal("valid history rejected")
		}
	}
}

// --- Figure 10: end-to-end SER ---------------------------------------------

func BenchmarkFig10EndToEndMTC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := kv.NewStore(kv.ModeSerializable)
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 10, Txns: 100, Objects: 100, Dist: workload.Uniform, Seed: int64(i),
		})
		h := runner.Run(s, w, runner.Config{Retries: 8, DropAborted: true}).H
		core.CheckSER(h)
	}
}

func BenchmarkFig10EndToEndCobra(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := kv.NewStore(kv.ModeSerializable)
		w := workload.GenerateGT(workload.GTConfig{
			Sessions: 10, Txns: 100, Objects: 100, OpsPerTxn: 12, Seed: int64(i),
		})
		h := runner.Run(s, w, runner.Config{Retries: 8, DropAborted: true}).H
		cobra.CheckSER(h)
	}
}

// --- Figure 11: abort rates -------------------------------------------------

func BenchmarkFig11MTWorkloadExecution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := kv.NewStore(kv.ModeSerializable)
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 15, Txns: 40, Objects: 40, Dist: workload.Uniform, Seed: int64(i),
		})
		runner.Run(s, w, runner.Config{Retries: 0})
	}
}

func BenchmarkFig11GTWorkloadExecution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := kv.NewStore(kv.ModeSerializable)
		w := workload.GenerateGT(workload.GTConfig{
			Sessions: 15, Txns: 40, Objects: 40, OpsPerTxn: 20, Seed: int64(i),
		})
		runner.Run(s, w, runner.Config{Retries: 0})
	}
}

// --- Table II: bug rediscovery ----------------------------------------------

func BenchmarkTable2BugDetection(b *testing.B) {
	bug := faults.BugByName("mariadb-galera-10.7.3")
	for i := 0; i < b.N; i++ {
		s := bug.NewStore(int64(i + 1))
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 60, Objects: 3, Dist: workload.Exponential, Seed: int64(i),
		})
		h := runner.Run(s, w, runner.Config{Retries: 4}).H
		core.CheckSI(h)
	}
}

// --- Figures 13/14: MTC vs Elle ----------------------------------------------

func BenchmarkFig13MTCDetectionTrial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := kv.NewFaultyStore(kv.ModeSerializable, kv.Faults{WriteSkew: 0.3, Seed: int64(i + 1)})
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 60, Objects: 10, Dist: workload.Exponential, Seed: int64(i),
		})
		h := runner.Run(s, w, runner.Config{Retries: 4}).H
		core.CheckSER(h)
	}
}

func BenchmarkFig13ElleAppendDetectionTrial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := kv.NewFaultyStore(kv.ModeSerializable, kv.Faults{WriteSkew: 0.3, Seed: int64(i + 1)})
		w := workload.GenerateListAppend(workload.ListAppendConfig{
			Sessions: 8, Txns: 60, Objects: 10, MaxTxnLen: 8, Seed: int64(i),
		})
		h, _ := runner.RunListAppend(s, w, runner.Config{Retries: 4})
		elle.CheckListAppend(h, elle.SER)
	}
}

func BenchmarkFig14ElleAppendVerify(b *testing.B) {
	setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !elle.CheckListAppend(laHist, elle.SER).OK {
			b.Fatal("valid history rejected")
		}
	}
}

// --- Figure 17: end-to-end SI -------------------------------------------------

func BenchmarkFig17EndToEndMTCSI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := kv.NewStore(kv.ModeSI)
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 10, Txns: 100, Objects: 100, Dist: workload.Uniform, Seed: int64(i),
		})
		h := runner.Run(s, w, runner.Config{Retries: 8, DropAborted: true}).H
		core.CheckSI(h)
	}
}

func BenchmarkFig17EndToEndPolySI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := kv.NewStore(kv.ModeSI)
		w := workload.GenerateGT(workload.GTConfig{
			Sessions: 10, Txns: 100, Objects: 100, OpsPerTxn: 12, Seed: int64(i),
		})
		h := runner.Run(s, w, runner.Config{Retries: 8, DropAborted: true}).H
		polysi.CheckSI(h)
	}
}

// --- Ablations -----------------------------------------------------------------

// BenchmarkAblationSSERDenseRT measures the paper's Theta(n^2) real-time
// edge enumeration...
func BenchmarkAblationSSERDenseRT(b *testing.B) {
	setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CheckSSEROpt(timedHist, core.Options{SkipPreCheck: true})
	}
}

// ...against the O(n log n) time-chain encoding this repo adds.
func BenchmarkAblationSSERSparseRT(b *testing.B) {
	setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CheckSSEROpt(timedHist, core.Options{SkipPreCheck: true, SparseRT: true})
	}
}

// BenchmarkAblationPruneThenSolve measures Cobra's pipeline with pruning...
func BenchmarkAblationPruneThenSolve(b *testing.B) {
	setup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := polygraph.Build(serHist)
		if !p.Prune(polygraph.PruneSER) {
			b.Fatal("unexpected prune failure")
		}
		sat.SolveAcyclic(p.N, p.Known, p.Cons)
	}
}

// ...against handing every raw constraint to the solver.
func BenchmarkAblationRawSolve(b *testing.B) {
	// A smaller history keeps the unpruned problem tractable.
	s := kv.NewStore(kv.ModeSerializable)
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 6, Txns: 40, Objects: 20, Dist: workload.Uniform, Seed: 5,
	})
	h := runner.Run(s, w, runner.Config{Retries: 8, DropAborted: true}).H
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := polygraph.Build(h)
		sat.SolveAcyclic(p.N, p.Known, p.Cons)
	}
}

// BenchmarkAblationUniqueValues contrasts the linear MTC check with the
// exponential brute-force search required once unique values are dropped
// (Appendix C).
func BenchmarkAblationUniqueValuesLinear(b *testing.B) {
	h := history.SerialHistory(12, "x", "y")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CheckSER(h)
	}
}

func BenchmarkAblationNoUniqueValuesBrute(b *testing.B) {
	h := history.SerialHistory(12, "x", "y")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		npc.SerializableBrute(h)
	}
}

// --- Parallel reachability engine ------------------------------------------------

// pruneHist is a deterministic >= 5000-txn general-transaction history
// whose polygraph carries on the order of 10^5 undetermined writer-pair
// constraints: the workload Cobra's pruning stage is built for.
var (
	pruneOnce sync.Once
	pruneHist *history.History
)

func pruneSetup() *history.History {
	pruneOnce.Do(func() {
		rng := rand.New(rand.NewSource(17))
		// Many short sessions keep the dependency DAG shallow (depth ~
		// txnsPer), so the closure's topological levels are wide enough to
		// shard; total txns stay >= 5000.
		const sessions, txnsPer, keys = 50, 104, 40
		names := make([]history.Key, keys)
		for i := range names {
			names[i] = history.Key(fmt.Sprintf("k%02d", i))
		}
		b := history.NewBuilder(names...)
		latest := map[history.Key]history.Value{}
		next := history.Value(1)
		for s := 0; s < sessions; s++ {
			for i := 0; i < txnsPer; i++ {
				k := names[rng.Intn(keys)]
				if rng.Intn(10) < 6 { // blind write: an undetermined writer
					b.Txn(s, history.W(k, next))
					latest[k] = next
					next++
				} else { // read the latest value: readers fatten the
					// anti-dependency lists each orientation activates
					b.Txn(s, history.R(k, latest[k]))
				}
			}
		}
		pruneHist = b.Build()
	})
	return pruneHist
}

// BenchmarkPrune measures the Cobra pruning fixpoint — reachability
// closure plus constraint checking — serial against the sharded worker
// pool. The verdict and forced count are identical at every parallelism
// (differentially tested); only wall-clock changes.
func BenchmarkPrune(b *testing.B) {
	h := pruneSetup()
	base := polygraph.Build(h)
	if len(base.Cons) < 10_000 {
		b.Fatalf("workload too easy: %d constraints", len(base.Cons))
	}
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			b.ReportMetric(float64(len(base.Cons)), "constraints")
			for i := 0; i < b.N; i++ {
				p := &polygraph.Polygraph{
					N:     base.N,
					Known: append([]sat.Edge(nil), base.Known...),
					Cons:  append([]sat.Constraint(nil), base.Cons...),
				}
				if _, err := p.PrunePar(context.Background(), polygraph.PruneSER, par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDenseRT measures the paper's Θ(n²) real-time enumeration
// (CheckSSER's dominant cost) serial against the source-sharded pool.
func BenchmarkDenseRT(b *testing.B) {
	setup()
	for _, par := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("par%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.CheckSSERCtx(context.Background(), timedHist,
					core.Options{SkipPreCheck: true, Parallelism: par})
				if err != nil || !r.OK {
					b.Fatalf("valid history rejected: %v", err)
				}
			}
		})
	}
}

// --- Experiment harness smoke bench ---------------------------------------------

func BenchmarkHarnessFig7aTiny(b *testing.B) {
	e := bench.ByID("fig7a")
	for i := 0; i < b.N; i++ {
		e.Run(0.05)
	}
}
