// Command mtc-bench regenerates the paper's tables and figures on the
// simulated substrate. Each experiment prints the same series the paper
// plots; compare shapes, not absolute numbers.
//
// Usage:
//
//	mtc-bench -list
//	mtc-bench -experiment fig7a [-scale 1.0]
//	mtc-bench -experiment all   [-scale 0.5]
//	mtc-bench -experiment table2 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"mtc/internal/bench"
)

func main() {
	var (
		exp        = flag.String("experiment", "", "experiment id (e.g. fig7a, table2, all)")
		scale      = flag.Float64("scale", 1.0, "workload scale factor (1.0 = default laptop-sized)")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file (go tool pprof)")
		memprofile = flag.String("memprofile", "", "write an allocation profile taken after the run to this file")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "mtc-bench: -experiment required (or -list); try -experiment all")
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtc-bench: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mtc-bench: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mtc-bench: memprofile: %v\n", err)
				os.Exit(2)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mtc-bench: memprofile: %v\n", err)
				os.Exit(2)
			}
		}()
	}
	run := func(e bench.Experiment) {
		start := time.Now()
		rows := e.Run(*scale)
		fmt.Print(bench.Format(e.ID, e.Title, rows))
		fmt.Printf("-- %s completed in %.1fs --\n\n", e.ID, time.Since(start).Seconds())
	}
	if *exp == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e := bench.ByID(*exp)
	if e == nil {
		fmt.Fprintf(os.Stderr, "mtc-bench: unknown experiment %q; use -list\n", *exp)
		os.Exit(2)
	}
	run(*e)
}
