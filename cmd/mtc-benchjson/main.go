// Command mtc-benchjson converts `go test -bench` output on stdin into a
// benchmark-data JSON snapshot (the format the github-action-benchmark /
// go-benchmark-data tooling consumes), so CI can append one dated file
// per run and the performance trajectory of the checkers stays
// trackable.
//
//	go test -run '^$' -bench . -benchmem . | mtc-benchjson -out BENCH_$(date +%F).json
//
// With -compare it additionally gates the run against a committed
// baseline snapshot: every ns/op benchmark present in the baseline must
// appear in the current run (a silent rename or a bench regex matching
// nothing fails the build) and must not be slower than the baseline by
// more than -tolerance (fractional; 0.25 = 25%). allocs/op entries in
// the baseline are gated too, under the tighter -alloc-tolerance —
// allocation counts are deterministic, so a hot path quietly growing a
// per-item allocation fails the build even when wall time hides it
// (requires feeding `go test -benchmem` output). Regressions exit 1 so
// the CI bench job fails. Refresh procedure: docs/ci.md.
//
//	go test -run '^$' -bench 'SER10k|SI10k' -benchtime 3x . \
//	  | mtc-benchjson -compare bench/baseline.json -tolerance 0.25
//
// With -append the snapshot is additionally appended as one NDJSON line
// to an accumulating history file, so the repository keeps a commit-by-
// commit performance log that plotting tooling can replay without
// walking git history:
//
//	go test -run '^$' -bench . -benchmem . \
//	  | mtc-benchjson -append bench/history.ndjson
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"time"
)

// Bench is one parsed benchmark result.
type Bench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// Snapshot is the file payload: one CI run's benchmark set.
type Snapshot struct {
	Date    string  `json:"date"`
	Commit  string  `json:"commit,omitempty"`
	Tool    string  `json:"tool"`
	Benches []Bench `json:"benches"`
}

// benchLine matches e.g.
// "BenchmarkBatchSER10k-8   	      24	  46519241 ns/op	 1234 B/op	  12 allocs/op"
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

// extraMetric matches the custom b.ReportMetric units (e.g. the
// long-stream benchmarks' "4.800 peak-heap-MB") and the allocation pair.
var extraMetric = regexp.MustCompile(`([\d.]+) (peak-heap-MB|B/op|allocs/op)`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	commit := flag.String("commit", os.Getenv("GITHUB_SHA"), "commit id recorded in the snapshot")
	compare := flag.String("compare", "", "baseline snapshot to gate against (exit 1 on regression)")
	appendPath := flag.String("append", "", "NDJSON history file to append this snapshot to (one line per run)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression vs the baseline (0.25 = 25%)")
	allocTolerance := flag.Float64("alloc-tolerance", 0.05, "allowed fractional allocs/op regression vs the baseline (counts are deterministic, so keep this tight)")
	flag.Parse()

	snap := Snapshot{
		Date:   time.Now().UTC().Format(time.RFC3339),
		Commit: *commit,
		Tool:   "go",
	}
	benches, err := parseBenches(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtc-benchjson: read: %v\n", err)
		os.Exit(1)
	}
	snap.Benches = benches
	if len(snap.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "mtc-benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	if *appendPath != "" {
		n, err := appendSnapshot(*appendPath, snap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("appended run %d to %s (%d benches)\n", n, *appendPath, len(snap.Benches))
	}
	if *out != "" || (*compare == "" && *appendPath == "") {
		w := os.Stdout
		var f *os.File
		if *out != "" {
			var err error
			f, err = os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
				os.Exit(1)
			}
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
			os.Exit(1)
		}
		if f != nil {
			// The snapshot feeds the regression gate: a short write
			// surfacing at close must fail the run, not pass silently.
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d benches to %s\n", len(snap.Benches), *out)
		}
	}
	if *compare != "" {
		if err := compareBaseline(*compare, snap, *tolerance, *allocTolerance); err != nil {
			fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}

// parseBenches extracts benchmark results from `go test -bench` output:
// one ns/op entry per benchmark line plus derived entries for the
// allocation pair and any custom b.ReportMetric units it recognises.
func parseBenches(r io.Reader) ([]Bench, error) {
	var benches []Bench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		benches = append(benches, Bench{Name: m[1], Value: v, Unit: "ns/op", Extra: m[2] + " times"})
		for _, em := range extraMetric.FindAllStringSubmatch(line, -1) {
			val, err := strconv.ParseFloat(em[1], 64)
			if err != nil {
				continue
			}
			suffix := map[string]string{
				"peak-heap-MB": "/peak-heap-MB", "B/op": "/alloc", "allocs/op": "/allocs",
			}[em[2]]
			benches = append(benches, Bench{Name: m[1] + suffix, Value: val, Unit: em[2]})
		}
	}
	return benches, sc.Err()
}

// appendSnapshot appends snap as one compact JSON line to the NDJSON
// history at path, creating the file on first use, and returns the
// 1-based index of the appended run. Each line is a complete Snapshot,
// so the log keeps accumulating across commits and stays greppable and
// replayable line by line (no rewrite of earlier runs, merge-friendly).
func appendSnapshot(path string, snap Snapshot) (int, error) {
	prior, err := readSnapshots(path)
	if err != nil {
		return 0, err
	}
	line, err := json.Marshal(snap)
	if err != nil {
		return 0, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	if _, werr := f.Write(append(line, '\n')); werr != nil {
		_ = f.Close()
		return 0, werr
	}
	// The appended line is the durable record of this run; a close
	// error is a failed append, not a cosmetic one.
	if cerr := f.Close(); cerr != nil {
		return 0, cerr
	}
	return len(prior) + 1, nil
}

// readSnapshots parses an NDJSON history file, one Snapshot per line.
// A missing file is an empty history; a malformed line is an error (the
// accumulating log must never be silently truncated by a bad append).
func readSnapshots(path string) ([]Snapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snaps []Snapshot
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s Snapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return nil, fmt.Errorf("parse %s line %d: %w", path, len(snaps)+1, err)
		}
		snaps = append(snaps, s)
	}
	return snaps, sc.Err()
}

// compareBaseline gates the current snapshot against the committed
// baseline: every ns/op and allocs/op entry of the baseline must exist
// in cur (a renamed benchmark must not silently drop out of the gate)
// and must not regress past its unit's tolerance — B/op and the custom
// metrics stay informational. Improvements and in-tolerance drift are
// reported but pass.
func compareBaseline(path string, cur Snapshot, tolerance, allocTolerance float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	gated := map[string]float64{"ns/op": tolerance, "allocs/op": allocTolerance}
	type key struct{ name, unit string }
	current := make(map[key]float64, len(cur.Benches))
	for _, b := range cur.Benches {
		if _, ok := gated[b.Unit]; ok {
			current[key{b.Name, b.Unit}] = b.Value
		}
	}
	tracked, regressions, missing, allocRegressions := 0, 0, 0, 0
	for _, b := range base.Benches {
		tol, ok := gated[b.Unit]
		if !ok {
			continue // B/op, peak-heap-MB: informational only
		}
		tracked++
		got, ok := current[key{b.Name, b.Unit}]
		if !ok {
			missing++
			fmt.Fprintf(os.Stderr, "MISSING  %-40s in baseline (%.0f %s) but not in this run — renamed, or -benchmem dropped? update %s\n",
				b.Name, b.Value, b.Unit, path)
			continue
		}
		ratio := 0.0
		if b.Value > 0 {
			ratio = got/b.Value - 1
		} else if got > 0 {
			ratio = 1 // zero-alloc baseline regressed to allocating
		}
		switch {
		case ratio > tol:
			regressions++
			if b.Unit == "allocs/op" {
				allocRegressions++
			}
			fmt.Fprintf(os.Stderr, "REGRESS  %-40s %.0f -> %.0f %s (%+.1f%%, tolerance %.0f%%)\n",
				b.Name, b.Value, got, b.Unit, ratio*100, tol*100)
		default:
			fmt.Printf("ok       %-40s %.0f -> %.0f %s (%+.1f%%)\n", b.Name, b.Value, got, b.Unit, ratio*100)
		}
	}
	if allocRegressions > 0 {
		// Allocation counts are deterministic, so an allocs/op trip is a
		// source change, not noise — point at the annotation machinery
		// that localizes it.
		fmt.Fprintf(os.Stderr, "hint: allocs/op regressions usually trace to a //mtc:hotpath function growing a per-item allocation; run `go run ./cmd/mtc-lint ./...` to pinpoint the construct (docs/lint.md)\n")
	}
	if tracked == 0 {
		return fmt.Errorf("baseline %s tracks no gated benchmarks", path)
	}
	if regressions+missing > 0 {
		return fmt.Errorf("%d regression(s), %d missing benchmark(s) against %s (see docs/ci.md to refresh the baseline)",
			regressions, missing, path)
	}
	fmt.Printf("bench gate: %d entries within tolerance of %s\n", tracked, path)
	return nil
}
