// Command mtc-benchjson converts `go test -bench` output on stdin into a
// benchmark-data JSON snapshot (the format the github-action-benchmark /
// go-benchmark-data tooling consumes), so CI can append one dated file
// per run and the performance trajectory of the checkers stays
// trackable.
//
//	go test -run '^$' -bench . -benchmem . | mtc-benchjson -out BENCH_$(date +%F).json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"time"
)

// Bench is one parsed benchmark result.
type Bench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// Snapshot is the file payload: one CI run's benchmark set.
type Snapshot struct {
	Date    string  `json:"date"`
	Commit  string  `json:"commit,omitempty"`
	Tool    string  `json:"tool"`
	Benches []Bench `json:"benches"`
}

// benchLine matches e.g.
// "BenchmarkBatchSER10k-8   	      24	  46519241 ns/op	 1234 B/op	  12 allocs/op"
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	commit := flag.String("commit", os.Getenv("GITHUB_SHA"), "commit id recorded in the snapshot")
	flag.Parse()

	snap := Snapshot{
		Date:   time.Now().UTC().Format(time.RFC3339),
		Commit: *commit,
		Tool:   "go",
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		b := Bench{Name: m[1], Value: v, Unit: "ns/op", Extra: m[2] + " times"}
		snap.Benches = append(snap.Benches, b)
		if m[4] != "" {
			if bytes, err := strconv.ParseFloat(m[4], 64); err == nil {
				snap.Benches = append(snap.Benches, Bench{Name: m[1] + "/alloc", Value: bytes, Unit: "B/op"})
			}
			if allocs, err := strconv.ParseFloat(m[5], 64); err == nil {
				snap.Benches = append(snap.Benches, Bench{Name: m[1] + "/allocs", Value: allocs, Unit: "allocs/op"})
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "mtc-benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(snap.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "mtc-benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	var w *os.File = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Printf("wrote %d benches to %s\n", len(snap.Benches), *out)
	}
}
