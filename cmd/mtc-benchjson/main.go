// Command mtc-benchjson converts `go test -bench` output on stdin into a
// benchmark-data JSON snapshot (the format the github-action-benchmark /
// go-benchmark-data tooling consumes), so CI can append one dated file
// per run and the performance trajectory of the checkers stays
// trackable.
//
//	go test -run '^$' -bench . -benchmem . | mtc-benchjson -out BENCH_$(date +%F).json
//
// With -compare it additionally gates the run against a committed
// baseline snapshot: every ns/op benchmark present in the baseline must
// appear in the current run (a silent rename or a bench regex matching
// nothing fails the build) and must not be slower than the baseline by
// more than -tolerance (fractional; 0.25 = 25%). allocs/op entries in
// the baseline are gated too, under the tighter -alloc-tolerance —
// allocation counts are deterministic, so a hot path quietly growing a
// per-item allocation fails the build even when wall time hides it
// (requires feeding `go test -benchmem` output). Regressions exit 1 so
// the CI bench job fails. Refresh procedure: docs/ci.md.
//
//	go test -run '^$' -bench 'SER10k|SI10k' -benchtime 3x . \
//	  | mtc-benchjson -compare bench/baseline.json -tolerance 0.25
//
// With -append the snapshot is additionally appended as one NDJSON line
// to an accumulating history file, so the repository keeps a commit-by-
// commit performance log that plotting tooling can replay without
// walking git history:
//
//	go test -run '^$' -bench . -benchmem . \
//	  | mtc-benchjson -append bench/history.ndjson
//
// Two history modes read that accumulating log instead of stdin (the
// -append flag names the history file; nothing is appended):
//
//	mtc-benchjson -append bench/history.ndjson -trend 4
//	mtc-benchjson -append bench/history.ndjson -render dev/bench
//
// -trend K exits 1 when any gated series (ns/op, allocs/op) present in
// each of the last K runs degraded strictly monotonically across them —
// the slow-leak gate: per-run drift that stays inside -tolerance but
// compounds run over run. -render DIR emits a self-contained static
// dashboard (index.html + data.js in the github-action-benchmark
// window.BENCHMARK_DATA shape) that CI publishes as an artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"time"
)

// Bench is one parsed benchmark result.
type Bench struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
	Extra string  `json:"extra,omitempty"`
}

// Snapshot is the file payload: one CI run's benchmark set.
type Snapshot struct {
	Date    string  `json:"date"`
	Commit  string  `json:"commit,omitempty"`
	Tool    string  `json:"tool"`
	Benches []Bench `json:"benches"`
}

// benchLine matches e.g.
// "BenchmarkBatchSER10k-8   	      24	  46519241 ns/op	 1234 B/op	  12 allocs/op"
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

// extraMetric matches the custom b.ReportMetric units (e.g. the
// long-stream benchmarks' "4.800 peak-heap-MB") and the allocation pair.
var extraMetric = regexp.MustCompile(`([\d.]+) (peak-heap-MB|B/op|allocs/op)`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	commit := flag.String("commit", os.Getenv("GITHUB_SHA"), "commit id recorded in the snapshot")
	compare := flag.String("compare", "", "baseline snapshot to gate against (exit 1 on regression)")
	appendPath := flag.String("append", "", "NDJSON history file to append this snapshot to (one line per run)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression vs the baseline (0.25 = 25%)")
	allocTolerance := flag.Float64("alloc-tolerance", 0.05, "allowed fractional allocs/op regression vs the baseline (counts are deterministic, so keep this tight)")
	trendK := flag.Int("trend", 0, "history mode: exit 1 when any gated benchmark in the -append history degraded strictly monotonically over the last K runs (reads no stdin)")
	render := flag.String("render", "", "history mode: render the -append history into a static dashboard (index.html + data.js) in this directory (reads no stdin)")
	flag.Parse()

	if *trendK > 0 || *render != "" {
		// History modes replay the accumulated log; they never parse a
		// bench run, so combining them with the stdin-driven flags is a
		// confused invocation, not a pipeline.
		if *appendPath == "" {
			fmt.Fprintln(os.Stderr, "mtc-benchjson: -trend/-render read the NDJSON history; name it with -append")
			os.Exit(1)
		}
		if *out != "" || *compare != "" {
			fmt.Fprintln(os.Stderr, "mtc-benchjson: -trend/-render are history modes; run -out/-compare as a separate invocation")
			os.Exit(1)
		}
		snaps, err := readSnapshots(*appendPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
			os.Exit(1)
		}
		if *trendK > 0 {
			if err := checkTrend(snaps, *trendK); err != nil {
				fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
				os.Exit(1)
			}
		}
		if *render != "" {
			if err := renderDashboard(*render, snaps); err != nil {
				fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("rendered %d runs to %s\n", len(snaps), *render)
		}
		return
	}

	snap := Snapshot{
		Date:   time.Now().UTC().Format(time.RFC3339),
		Commit: *commit,
		Tool:   "go",
	}
	benches, err := parseBenches(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtc-benchjson: read: %v\n", err)
		os.Exit(1)
	}
	snap.Benches = benches
	if len(snap.Benches) == 0 {
		fmt.Fprintln(os.Stderr, "mtc-benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	if *appendPath != "" {
		n, err := appendSnapshot(*appendPath, snap)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("appended run %d to %s (%d benches)\n", n, *appendPath, len(snap.Benches))
	}
	if *out != "" || (*compare == "" && *appendPath == "") {
		w := os.Stdout
		var f *os.File
		if *out != "" {
			var err error
			f, err = os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
				os.Exit(1)
			}
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
			os.Exit(1)
		}
		if f != nil {
			// The snapshot feeds the regression gate: a short write
			// surfacing at close must fail the run, not pass silently.
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d benches to %s\n", len(snap.Benches), *out)
		}
	}
	if *compare != "" {
		if err := compareBaseline(*compare, snap, *tolerance, *allocTolerance); err != nil {
			fmt.Fprintf(os.Stderr, "mtc-benchjson: %v\n", err)
			os.Exit(1)
		}
	}
}

// parseBenches extracts benchmark results from `go test -bench` output:
// one ns/op entry per benchmark line plus derived entries for the
// allocation pair and any custom b.ReportMetric units it recognises.
func parseBenches(r io.Reader) ([]Bench, error) {
	var benches []Bench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		benches = append(benches, Bench{Name: m[1], Value: v, Unit: "ns/op", Extra: m[2] + " times"})
		for _, em := range extraMetric.FindAllStringSubmatch(line, -1) {
			val, err := strconv.ParseFloat(em[1], 64)
			if err != nil {
				continue
			}
			suffix := map[string]string{
				"peak-heap-MB": "/peak-heap-MB", "B/op": "/alloc", "allocs/op": "/allocs",
			}[em[2]]
			benches = append(benches, Bench{Name: m[1] + suffix, Value: val, Unit: em[2]})
		}
	}
	return benches, sc.Err()
}

// appendSnapshot appends snap as one compact JSON line to the NDJSON
// history at path, creating the file on first use, and returns the
// 1-based index of the appended run. Each line is a complete Snapshot,
// so the log keeps accumulating across commits and stays greppable and
// replayable line by line. The new content is written to a temp file in
// the same directory and renamed over path: a crash or full disk
// mid-append leaves the committed history intact instead of a torn
// final line that would poison every later read.
func appendSnapshot(path string, snap Snapshot) (int, error) {
	prior, err := readSnapshots(path) // also validates every existing line
	if err != nil {
		return 0, err
	}
	raw, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return 0, err
	}
	line, err := json.Marshal(snap)
	if err != nil {
		return 0, err
	}
	if len(raw) > 0 && raw[len(raw)-1] != '\n' {
		raw = append(raw, '\n')
	}
	raw = append(raw, line...)
	raw = append(raw, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return 0, err
	}
	if _, werr := tmp.Write(raw); werr != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return 0, werr
	}
	// The appended line is the durable record of this run; a close
	// error is a failed append, not a cosmetic one.
	if cerr := tmp.Close(); cerr != nil {
		_ = os.Remove(tmp.Name())
		return 0, cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return 0, err
	}
	return len(prior) + 1, nil
}

// readSnapshots parses an NDJSON history file, one Snapshot per line.
// A missing file is an empty history; a malformed line is an error (the
// accumulating log must never be silently truncated by a bad append).
func readSnapshots(path string) ([]Snapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var snaps []Snapshot
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s Snapshot
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			return nil, fmt.Errorf("parse %s line %d: %w", path, len(snaps)+1, err)
		}
		snaps = append(snaps, s)
	}
	return snaps, sc.Err()
}

// compareBaseline gates the current snapshot against the committed
// baseline: every ns/op and allocs/op entry of the baseline must exist
// in cur (a renamed benchmark must not silently drop out of the gate)
// and must not regress past its unit's tolerance — B/op and the custom
// metrics stay informational. Improvements and in-tolerance drift are
// reported but pass.
func compareBaseline(path string, cur Snapshot, tolerance, allocTolerance float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	gated := map[string]float64{"ns/op": tolerance, "allocs/op": allocTolerance}
	type key struct{ name, unit string }
	current := make(map[key]float64, len(cur.Benches))
	for _, b := range cur.Benches {
		if _, ok := gated[b.Unit]; ok {
			current[key{b.Name, b.Unit}] = b.Value
		}
	}
	tracked, regressions, missing, allocRegressions := 0, 0, 0, 0
	for _, b := range base.Benches {
		tol, ok := gated[b.Unit]
		if !ok {
			continue // B/op, peak-heap-MB: informational only
		}
		tracked++
		got, ok := current[key{b.Name, b.Unit}]
		if !ok {
			missing++
			fmt.Fprintf(os.Stderr, "MISSING  %-40s in baseline (%.0f %s) but not in this run — renamed, or -benchmem dropped? update %s\n",
				b.Name, b.Value, b.Unit, path)
			continue
		}
		ratio := 0.0
		if b.Value > 0 {
			ratio = got/b.Value - 1
		} else if got > 0 {
			ratio = 1 // zero-alloc baseline regressed to allocating
		}
		switch {
		case ratio > tol:
			regressions++
			if b.Unit == "allocs/op" {
				allocRegressions++
			}
			fmt.Fprintf(os.Stderr, "REGRESS  %-40s %.0f -> %.0f %s (%+.1f%%, tolerance %.0f%%)\n",
				b.Name, b.Value, got, b.Unit, ratio*100, tol*100)
		default:
			fmt.Printf("ok       %-40s %.0f -> %.0f %s (%+.1f%%)\n", b.Name, b.Value, got, b.Unit, ratio*100)
		}
	}
	if allocRegressions > 0 {
		// Allocation counts are deterministic, so an allocs/op trip is a
		// source change, not noise — point at the annotation machinery
		// that localizes it.
		fmt.Fprintf(os.Stderr, "hint: allocs/op regressions usually trace to a //mtc:hotpath function growing a per-item allocation; run `go run ./cmd/mtc-lint ./...` to pinpoint the construct (docs/lint.md)\n")
	}
	if tracked == 0 {
		return fmt.Errorf("baseline %s tracks no gated benchmarks", path)
	}
	if regressions+missing > 0 {
		return fmt.Errorf("%d regression(s), %d missing benchmark(s) against %s (see docs/ci.md to refresh the baseline)",
			regressions, missing, path)
	}
	fmt.Printf("bench gate: %d entries within tolerance of %s\n", tracked, path)
	return nil
}

// checkTrend is the slow-leak gate: over the last k history runs, any
// gated series (ns/op, allocs/op) that is present in every one of them
// and degraded strictly monotonically — each run worse than the one
// before — fails the check. A single-run regression inside -tolerance
// passes the baseline gate; k of them in a row compound past it, and a
// monotone staircase is a trend, not noise. A plateau or a single dip
// resets the staircase and passes.
func checkTrend(snaps []Snapshot, k int) error {
	if k < 2 {
		return fmt.Errorf("-trend %d: a trend needs at least 2 runs", k)
	}
	if len(snaps) < k {
		fmt.Printf("trend gate: history has %d run(s), need %d — skipping\n", len(snaps), k)
		return nil
	}
	window := snaps[len(snaps)-k:]
	gated := map[string]bool{"ns/op": true, "allocs/op": true}
	type key struct{ name, unit string }
	series := make(map[key][]float64)
	for _, s := range window {
		seen := make(map[key]bool)
		for _, b := range s.Benches {
			kk := key{b.Name, b.Unit}
			if !gated[b.Unit] || seen[kk] {
				continue
			}
			seen[kk] = true
			series[kk] = append(series[kk], b.Value)
		}
	}
	keys := make([]key, 0, len(series))
	for kk, vals := range series {
		if len(vals) == k { // present in every run of the window
			keys = append(keys, kk)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].unit < keys[j].unit
	})
	degrading := 0
	for _, kk := range keys {
		vals := series[kk]
		monotone := true
		for i := 1; i < k; i++ {
			if vals[i] <= vals[i-1] {
				monotone = false
				break
			}
		}
		if !monotone {
			continue
		}
		degrading++
		steps := make([]string, k)
		for i, v := range vals {
			steps[i] = strconv.FormatFloat(v, 'f', -1, 64)
		}
		fmt.Fprintf(os.Stderr, "TREND    %-40s %s rose monotonically over the last %d runs: %v\n",
			kk.name, kk.unit, k, steps)
	}
	if degrading > 0 {
		return fmt.Errorf("%d benchmark series degrade monotonically over the last %d runs (see docs/ci.md)", degrading, k)
	}
	fmt.Printf("trend gate: no monotone degradation across the last %d runs (%d series)\n", k, len(keys))
	return nil
}

// chartData is the github-action-benchmark data.js payload: the shape
// its default dashboard reads from window.BENCHMARK_DATA, so the
// rendered history stays interchangeable with that ecosystem.
type chartData struct {
	LastUpdate int64                   `json:"lastUpdate"`
	RepoURL    string                  `json:"repoUrl"`
	Entries    map[string][]chartEntry `json:"entries"`
}

type chartEntry struct {
	Commit  chartCommit `json:"commit"`
	Date    int64       `json:"date"`
	Tool    string      `json:"tool"`
	Benches []Bench     `json:"benches"`
}

type chartCommit struct {
	ID        string `json:"id"`
	Message   string `json:"message"`
	Timestamp string `json:"timestamp"`
	URL       string `json:"url"`
}

// renderDashboard writes DIR/data.js (window.BENCHMARK_DATA in the
// github-action-benchmark shape) and DIR/index.html (a self-contained
// vanilla-JS/SVG viewer, no network dependencies) from the history.
func renderDashboard(dir string, snaps []Snapshot) error {
	if len(snaps) == 0 {
		return fmt.Errorf("history is empty; nothing to render")
	}
	repo := repoURL()
	entries := make([]chartEntry, 0, len(snaps))
	var lastUpdate int64
	for i, s := range snaps {
		ts, err := time.Parse(time.RFC3339, s.Date)
		if err != nil {
			return fmt.Errorf("history run %d: bad date %q: %w", i+1, s.Date, err)
		}
		ms := ts.UnixMilli()
		if ms > lastUpdate {
			lastUpdate = ms
		}
		commit := chartCommit{ID: s.Commit, Timestamp: s.Date}
		if commit.ID == "" {
			commit.ID = fmt.Sprintf("run-%d", i+1)
		} else if repo != "" {
			commit.URL = repo + "/commit/" + s.Commit
		}
		tool := s.Tool
		if tool == "" {
			tool = "go"
		}
		entries = append(entries, chartEntry{Commit: commit, Date: ms, Tool: tool, Benches: s.Benches})
	}
	payload, err := json.MarshalIndent(chartData{
		LastUpdate: lastUpdate,
		RepoURL:    repo,
		Entries:    map[string][]chartEntry{"Go Benchmark": entries},
	}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	dataJS := append([]byte("window.BENCHMARK_DATA = "), payload...)
	dataJS = append(dataJS, '\n')
	if err := os.WriteFile(filepath.Join(dir, "data.js"), dataJS, 0o644); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "index.html"), []byte(indexHTML), 0o644)
}

// repoURL derives the dashboard's repository link from the standard
// GitHub Actions environment; outside CI the link is simply omitted.
func repoURL() string {
	repo := os.Getenv("GITHUB_REPOSITORY")
	if repo == "" {
		return ""
	}
	server := os.Getenv("GITHUB_SERVER_URL")
	if server == "" {
		server = "https://github.com"
	}
	return server + "/" + repo
}

// indexHTML is the static viewer: one SVG line chart per benchmark
// series, drawn entirely client-side from data.js. Self-contained on
// purpose — the dashboard is published as a CI artifact and must open
// from a local file with no CDN or framework fetch.
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>mtc benchmark trends</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 72rem; color: #222; }
  h1 { font-size: 1.4rem; }
  #meta { color: #666; }
  .chart { display: inline-block; vertical-align: top; margin: 0 1rem 1.5rem 0; }
  .chart h2 { font-size: 0.95rem; margin: 0 0 0.25rem; font-weight: 600; }
  .chart .range { color: #666; font-size: 0.8rem; }
  svg { background: #fafafa; border: 1px solid #ddd; }
  polyline { fill: none; stroke: #2a6fdb; stroke-width: 1.5; }
  circle { fill: #2a6fdb; }
</style>
</head>
<body>
<h1>mtc benchmark trends</h1>
<p id="meta"></p>
<div id="charts"></div>
<script src="data.js"></script>
<script>
(function () {
  "use strict";
  var data = window.BENCHMARK_DATA;
  if (!data) { document.getElementById("meta").textContent = "data.js missing"; return; }
  var entries = (data.entries && data.entries["Go Benchmark"]) || [];
  document.getElementById("meta").textContent =
    entries.length + " runs, last update " + new Date(data.lastUpdate).toISOString() +
    (data.repoUrl ? " — " + data.repoUrl : "");
  // Group values by series (benchmark name + unit) across runs.
  var series = {};
  entries.forEach(function (e) {
    (e.benches || []).forEach(function (b) {
      var key = b.name + " [" + b.unit + "]";
      (series[key] = series[key] || []).push({ x: e.date, y: b.value, commit: e.commit.id });
    });
  });
  var charts = document.getElementById("charts");
  var W = 320, H = 120, PAD = 8;
  Object.keys(series).sort().forEach(function (key) {
    var pts = series[key];
    var ys = pts.map(function (p) { return p.y; });
    var min = Math.min.apply(null, ys), max = Math.max.apply(null, ys);
    var span = (max - min) || 1;
    var step = pts.length > 1 ? (W - 2 * PAD) / (pts.length - 1) : 0;
    var svgNS = "http://www.w3.org/2000/svg";
    var svg = document.createElementNS(svgNS, "svg");
    svg.setAttribute("width", W); svg.setAttribute("height", H);
    var coords = pts.map(function (p, i) {
      var x = PAD + i * step;
      var y = H - PAD - ((p.y - min) / span) * (H - 2 * PAD);
      return [x, y];
    });
    var line = document.createElementNS(svgNS, "polyline");
    line.setAttribute("points", coords.map(function (c) { return c.join(","); }).join(" "));
    svg.appendChild(line);
    coords.forEach(function (c, i) {
      var dot = document.createElementNS(svgNS, "circle");
      dot.setAttribute("cx", c[0]); dot.setAttribute("cy", c[1]); dot.setAttribute("r", 2.5);
      var tip = document.createElementNS(svgNS, "title");
      tip.textContent = pts[i].commit + "\n" + new Date(pts[i].x).toISOString() + "\n" + pts[i].y;
      dot.appendChild(tip);
      svg.appendChild(dot);
    });
    var div = document.createElement("div");
    div.className = "chart";
    var h2 = document.createElement("h2");
    h2.textContent = key;
    var range = document.createElement("div");
    range.className = "range";
    range.textContent = "min " + min + " — max " + max + " (latest " + ys[ys.length - 1] + ")";
    div.appendChild(h2); div.appendChild(svg); div.appendChild(range);
    charts.appendChild(div);
  });
})();
</script>
</body>
</html>
`
