package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: mtc
BenchmarkBatchSER10k-8   	      24	  46519241 ns/op	 1234 B/op	  12 allocs/op
BenchmarkBatchSI10k-8    	      20	  52519241 ns/op
BenchmarkProfile10k-8    	      18	  61211100 ns/op	 4.800 peak-heap-MB
PASS
ok  	mtc	4.2s
`

// TestParseBenches covers the -bench output parser: the ns/op entry per
// line plus the derived allocation and custom-metric entries.
func TestParseBenches(t *testing.T) {
	benches, err := parseBenches(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Bench{}
	for _, b := range benches {
		byName[b.Name] = b
	}
	if len(benches) != 6 {
		t.Fatalf("parsed %d benches, want 6: %+v", len(benches), benches)
	}
	if b := byName["BenchmarkBatchSER10k"]; b.Value != 46519241 || b.Unit != "ns/op" || b.Extra != "24 times" {
		t.Fatalf("SER bench: %+v", b)
	}
	if b := byName["BenchmarkBatchSER10k/allocs"]; b.Value != 12 || b.Unit != "allocs/op" {
		t.Fatalf("allocs entry: %+v", b)
	}
	if b := byName["BenchmarkProfile10k/peak-heap-MB"]; b.Value != 4.8 {
		t.Fatalf("custom metric entry: %+v", b)
	}
}

// TestAppendRoundTrip appends two snapshots to a fresh NDJSON history
// and reads them back, checking nothing is lost or reordered.
func TestAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.ndjson")
	benches, err := parseBenches(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	runs := []Snapshot{
		{Date: "2026-08-07T00:00:00Z", Commit: "aaaa", Tool: "go", Benches: benches},
		{Date: "2026-08-08T00:00:00Z", Commit: "bbbb", Tool: "go", Benches: benches[:2]},
	}
	for i, s := range runs {
		n, err := appendSnapshot(path, s)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if n != i+1 {
			t.Fatalf("append %d reported run %d", i, n)
		}
	}
	got, err := readSnapshots(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(runs) {
		t.Fatalf("read back %d snapshots, want %d", len(got), len(runs))
	}
	for i := range runs {
		if got[i].Commit != runs[i].Commit || got[i].Date != runs[i].Date {
			t.Fatalf("snapshot %d header drifted: %+v", i, got[i])
		}
		if len(got[i].Benches) != len(runs[i].Benches) {
			t.Fatalf("snapshot %d has %d benches, want %d", i, len(got[i].Benches), len(runs[i].Benches))
		}
		for j, b := range runs[i].Benches {
			if got[i].Benches[j] != b {
				t.Fatalf("snapshot %d bench %d: got %+v want %+v", i, j, got[i].Benches[j], b)
			}
		}
	}
	// A missing file is an empty history, not an error.
	empty, err := readSnapshots(filepath.Join(t.TempDir(), "absent.ndjson"))
	if err != nil || empty != nil {
		t.Fatalf("missing file: %v %v", empty, err)
	}
}

// TestAppendAtomic pins the temp-file + rename discipline: appends
// leave no temp droppings behind, and an append refused because the
// existing history is corrupt leaves the file byte-identical (the
// rewrite must never destroy the log it could not parse).
func TestAppendAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "history.ndjson")
	snap := Snapshot{Date: "2026-08-07T00:00:00Z", Commit: "aaaa", Tool: "go",
		Benches: []Bench{{Name: "BenchmarkX", Unit: "ns/op", Value: 100}}}
	for i := 0; i < 3; i++ {
		if _, err := appendSnapshot(path, snap); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0].Name() != "history.ndjson" {
		t.Fatalf("append left temp files behind: %v", names)
	}

	// Corrupt history: the append must fail without touching the file.
	bad := filepath.Join(dir, "bad.ndjson")
	if err := os.WriteFile(bad, []byte("{not json}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := appendSnapshot(bad, snap); err == nil {
		t.Fatal("append to a corrupt history succeeded")
	}
	raw, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "{not json}\n" {
		t.Fatalf("failed append modified the corrupt history: %q", raw)
	}
}

// trendSnaps builds a history whose BenchmarkLeak ns/op series follows
// vals, with a stable control series alongside.
func trendSnaps(vals ...float64) []Snapshot {
	snaps := make([]Snapshot, len(vals))
	for i, v := range vals {
		snaps[i] = Snapshot{
			Date: "2026-08-07T00:00:00Z", Commit: "c", Tool: "go",
			Benches: []Bench{
				{Name: "BenchmarkLeak", Unit: "ns/op", Value: v},
				{Name: "BenchmarkSteady", Unit: "ns/op", Value: 500},
				{Name: "BenchmarkLeak/alloc", Unit: "B/op", Value: v}, // not gated
			},
		}
	}
	return snaps
}

// TestTrendGate covers the slow-leak gate: a strictly monotone rise
// over the window trips it, a plateau or dip resets it, short histories
// and series absent from part of the window are skipped.
func TestTrendGate(t *testing.T) {
	// Each step is +5% — inside any per-run tolerance, but monotone.
	if err := checkTrend(trendSnaps(100, 105, 110, 116), 4); err == nil {
		t.Fatal("monotone ns/op staircase passed the trend gate")
	} else if !strings.Contains(err.Error(), "1 benchmark series") {
		t.Fatalf("trend error does not count the series: %v", err)
	}
	// Only the last K runs matter: an old staircase outside the window
	// is forgiven once the latest run dips.
	if err := checkTrend(trendSnaps(100, 105, 110, 116, 90), 4); err != nil {
		t.Fatalf("dip in the window still tripped: %v", err)
	}
	// A plateau is not a degradation (equal values break strictness).
	if err := checkTrend(trendSnaps(100, 105, 105, 116), 4); err != nil {
		t.Fatalf("plateau tripped the gate: %v", err)
	}
	// Too little history: pass, never fail a young repo.
	if err := checkTrend(trendSnaps(100, 105), 4); err != nil {
		t.Fatalf("short history tripped: %v", err)
	}
	// allocs/op is gated too.
	snaps := trendSnaps(100, 100, 100, 100)
	for i := range snaps {
		snaps[i].Benches = append(snaps[i].Benches,
			Bench{Name: "BenchmarkLeak/allocs", Unit: "allocs/op", Value: float64(i + 1)})
	}
	if err := checkTrend(snaps, 4); err == nil {
		t.Fatal("monotone allocs/op staircase passed")
	}
	// A series missing from one run of the window is not comparable and
	// must not trip (nor crash) the gate.
	snaps = trendSnaps(100, 105, 110, 116)
	snaps[1].Benches = snaps[1].Benches[1:] // drop BenchmarkLeak from run 2
	if err := checkTrend(snaps, 4); err != nil {
		t.Fatalf("partially-present series tripped: %v", err)
	}
	// Degenerate window sizes are usage errors, not silent passes.
	if err := checkTrend(trendSnaps(100, 105), 1); err == nil {
		t.Fatal("-trend 1 accepted")
	}
}

// TestRenderDashboard renders a small history and checks the data.js
// payload parses back into the github-action-benchmark shape and the
// static index is self-contained.
func TestRenderDashboard(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dev", "bench")
	snaps := []Snapshot{
		{Date: "2026-08-06T10:00:00Z", Commit: "aaaa", Tool: "go",
			Benches: []Bench{{Name: "BenchmarkX", Unit: "ns/op", Value: 100, Extra: "24 times"}}},
		{Date: "2026-08-07T10:00:00Z", Commit: "bbbb", Tool: "go",
			Benches: []Bench{{Name: "BenchmarkX", Unit: "ns/op", Value: 90}}},
	}
	if err := renderDashboard(dir, snaps); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "data.js"))
	if err != nil {
		t.Fatal(err)
	}
	const prefix = "window.BENCHMARK_DATA = "
	if !strings.HasPrefix(string(raw), prefix) {
		t.Fatalf("data.js does not assign window.BENCHMARK_DATA: %.60q", raw)
	}
	var data chartData
	if err := json.Unmarshal(raw[len(prefix):], &data); err != nil {
		t.Fatalf("data.js payload is not JSON: %v", err)
	}
	entries := data.Entries["Go Benchmark"]
	if len(entries) != 2 {
		t.Fatalf("entries: %+v", data.Entries)
	}
	if entries[0].Commit.ID != "aaaa" || entries[1].Commit.ID != "bbbb" {
		t.Fatalf("commit ids drifted: %+v", entries)
	}
	if entries[0].Tool != "go" || entries[0].Date == 0 || entries[1].Date <= entries[0].Date {
		t.Fatalf("entry headers: %+v", entries)
	}
	if data.LastUpdate != entries[1].Date {
		t.Fatalf("lastUpdate %d, want %d", data.LastUpdate, entries[1].Date)
	}
	if len(entries[0].Benches) != 1 || entries[0].Benches[0] != snaps[0].Benches[0] {
		t.Fatalf("benches drifted: %+v", entries[0].Benches)
	}
	html, err := os.ReadFile(filepath.Join(dir, "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	page := string(html)
	if !strings.Contains(page, `src="data.js"`) || !strings.Contains(page, "BENCHMARK_DATA") {
		t.Fatal("index.html does not load data.js")
	}
	if strings.Contains(page, "https://cdn") || strings.Contains(page, "http://cdn") {
		t.Fatal("index.html pulls from a CDN; the artifact must be self-contained")
	}
	// Empty history: refuse rather than render a blank dashboard.
	if err := renderDashboard(t.TempDir(), nil); err == nil {
		t.Fatal("empty history rendered")
	}
}

// compareStderr runs compareBaseline with stderr captured, returning
// the gate's error and everything it printed there.
func compareStderr(t *testing.T, base Snapshot, cur Snapshot) (error, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	gateErr := compareBaseline(path, cur, 0.25, 0.05)
	os.Stderr = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return gateErr, string(out)
}

// TestCompareBaselineAllocHint checks that an allocs/op regression
// prints the source-annotation hint pointing at mtc-lint's //mtc:hotpath
// machinery, and that a pure ns/op regression does not (timing noise
// has nothing to do with allocation annotations).
func TestCompareBaselineAllocHint(t *testing.T) {
	base := Snapshot{Benches: []Bench{
		{Name: "BenchmarkBatchSER10k", Unit: "ns/op", Value: 1000},
		{Name: "BenchmarkBatchSER10k/allocs", Unit: "allocs/op", Value: 9},
	}}
	regressed := Snapshot{Benches: []Bench{
		{Name: "BenchmarkBatchSER10k", Unit: "ns/op", Value: 1000},
		{Name: "BenchmarkBatchSER10k/allocs", Unit: "allocs/op", Value: 40},
	}}
	err, stderr := compareStderr(t, base, regressed)
	if err == nil {
		t.Fatal("allocs/op regression passed the gate")
	}
	if !strings.Contains(stderr, "mtc:hotpath") || !strings.Contains(stderr, "cmd/mtc-lint") {
		t.Fatalf("allocs regression did not print the mtc-lint hint:\n%s", stderr)
	}

	slow := Snapshot{Benches: []Bench{
		{Name: "BenchmarkBatchSER10k", Unit: "ns/op", Value: 9000},
		{Name: "BenchmarkBatchSER10k/allocs", Unit: "allocs/op", Value: 9},
	}}
	err, stderr = compareStderr(t, base, slow)
	if err == nil {
		t.Fatal("ns/op regression passed the gate")
	}
	if strings.Contains(stderr, "mtc:hotpath") {
		t.Fatalf("ns/op-only regression printed the allocation hint:\n%s", stderr)
	}
}
