package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: mtc
BenchmarkBatchSER10k-8   	      24	  46519241 ns/op	 1234 B/op	  12 allocs/op
BenchmarkBatchSI10k-8    	      20	  52519241 ns/op
BenchmarkProfile10k-8    	      18	  61211100 ns/op	 4.800 peak-heap-MB
PASS
ok  	mtc	4.2s
`

// TestParseBenches covers the -bench output parser: the ns/op entry per
// line plus the derived allocation and custom-metric entries.
func TestParseBenches(t *testing.T) {
	benches, err := parseBenches(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Bench{}
	for _, b := range benches {
		byName[b.Name] = b
	}
	if len(benches) != 6 {
		t.Fatalf("parsed %d benches, want 6: %+v", len(benches), benches)
	}
	if b := byName["BenchmarkBatchSER10k"]; b.Value != 46519241 || b.Unit != "ns/op" || b.Extra != "24 times" {
		t.Fatalf("SER bench: %+v", b)
	}
	if b := byName["BenchmarkBatchSER10k/allocs"]; b.Value != 12 || b.Unit != "allocs/op" {
		t.Fatalf("allocs entry: %+v", b)
	}
	if b := byName["BenchmarkProfile10k/peak-heap-MB"]; b.Value != 4.8 {
		t.Fatalf("custom metric entry: %+v", b)
	}
}

// TestAppendRoundTrip appends two snapshots to a fresh NDJSON history
// and reads them back, checking nothing is lost or reordered.
func TestAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.ndjson")
	benches, err := parseBenches(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	runs := []Snapshot{
		{Date: "2026-08-07T00:00:00Z", Commit: "aaaa", Tool: "go", Benches: benches},
		{Date: "2026-08-08T00:00:00Z", Commit: "bbbb", Tool: "go", Benches: benches[:2]},
	}
	for i, s := range runs {
		n, err := appendSnapshot(path, s)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if n != i+1 {
			t.Fatalf("append %d reported run %d", i, n)
		}
	}
	got, err := readSnapshots(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(runs) {
		t.Fatalf("read back %d snapshots, want %d", len(got), len(runs))
	}
	for i := range runs {
		if got[i].Commit != runs[i].Commit || got[i].Date != runs[i].Date {
			t.Fatalf("snapshot %d header drifted: %+v", i, got[i])
		}
		if len(got[i].Benches) != len(runs[i].Benches) {
			t.Fatalf("snapshot %d has %d benches, want %d", i, len(got[i].Benches), len(runs[i].Benches))
		}
		for j, b := range runs[i].Benches {
			if got[i].Benches[j] != b {
				t.Fatalf("snapshot %d bench %d: got %+v want %+v", i, j, got[i].Benches[j], b)
			}
		}
	}
	// A missing file is an empty history, not an error.
	empty, err := readSnapshots(filepath.Join(t.TempDir(), "absent.ndjson"))
	if err != nil || empty != nil {
		t.Fatalf("missing file: %v %v", empty, err)
	}
}

// compareStderr runs compareBaseline with stderr captured, returning
// the gate's error and everything it printed there.
func compareStderr(t *testing.T, base Snapshot, cur Snapshot) (error, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.json")
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stderr
	os.Stderr = w
	gateErr := compareBaseline(path, cur, 0.25, 0.05)
	os.Stderr = old
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return gateErr, string(out)
}

// TestCompareBaselineAllocHint checks that an allocs/op regression
// prints the source-annotation hint pointing at mtc-lint's //mtc:hotpath
// machinery, and that a pure ns/op regression does not (timing noise
// has nothing to do with allocation annotations).
func TestCompareBaselineAllocHint(t *testing.T) {
	base := Snapshot{Benches: []Bench{
		{Name: "BenchmarkBatchSER10k", Unit: "ns/op", Value: 1000},
		{Name: "BenchmarkBatchSER10k/allocs", Unit: "allocs/op", Value: 9},
	}}
	regressed := Snapshot{Benches: []Bench{
		{Name: "BenchmarkBatchSER10k", Unit: "ns/op", Value: 1000},
		{Name: "BenchmarkBatchSER10k/allocs", Unit: "allocs/op", Value: 40},
	}}
	err, stderr := compareStderr(t, base, regressed)
	if err == nil {
		t.Fatal("allocs/op regression passed the gate")
	}
	if !strings.Contains(stderr, "mtc:hotpath") || !strings.Contains(stderr, "cmd/mtc-lint") {
		t.Fatalf("allocs regression did not print the mtc-lint hint:\n%s", stderr)
	}

	slow := Snapshot{Benches: []Bench{
		{Name: "BenchmarkBatchSER10k", Unit: "ns/op", Value: 9000},
		{Name: "BenchmarkBatchSER10k/allocs", Unit: "allocs/op", Value: 9},
	}}
	err, stderr = compareStderr(t, base, slow)
	if err == nil {
		t.Fatal("ns/op regression passed the gate")
	}
	if strings.Contains(stderr, "mtc:hotpath") {
		t.Fatalf("ns/op-only regression printed the allocation hint:\n%s", stderr)
	}
}
