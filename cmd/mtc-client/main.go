// Command mtc-client submits a history to a running mtc-serve instance
// through the pkg/client SDK and prints the verdict — the reference
// consumer of the v1 async job API.
//
// Examples:
//
//	mtc-client -server http://localhost:8080 -checkers
//	mtc-client -history h.json -level SER
//	mtc-client -history h.json -checker profile    # full lattice profile
//	mtc-client -history h.json -checker cobra -level SER -timeout 30s
//	mtc-client -history h.json -level SI -events     # follow the NDJSON stream
//	mtc-client -history h.json -level SI -stream -window 256
//	mtc-client -history h.json -level SER -distributed   # run on the checking fabric
//
// -stream replays the history transaction by transaction (in commit
// order) through a v1 streaming session instead of submitting a job —
// the client-side form of continuous verification; -window asks the
// server to epoch-compact the session so its memory stays bounded.
//
// The history file uses the standard JSON encoding (as written by
// `mtc -out h.json` or mtc.WriteHistory). "-" reads from stdin. Exit
// status: 0 verdict OK, 1 violation, 2 usage or transport error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"mtc/pkg/client"
	"mtc/pkg/mtc"
)

func main() {
	var (
		server       = flag.String("server", "http://localhost:8080", "base URL of the mtc-serve instance")
		historyPath  = flag.String("history", "", "history JSON file to verify (\"-\" for stdin)")
		checkerName  = flag.String("checker", "", "verification engine (empty = server default)")
		level        = flag.String("level", "", "isolation level: SSER, SER, SI, CAUSAL, RA or RC (empty = checker default)")
		timeout      = flag.Duration("timeout", 0, "per-job execution timeout sent to the server (0 = server default)")
		parallelism  = flag.Int("parallelism", 0, "engine parallelism requested for the job (0 = server default; requests above the server's limit are rejected)")
		shardN       = flag.Int("shard", 0, "component-sharded verification: ask the server to decompose the history and check up to this many components concurrently (0 = off)")
		wait         = flag.Duration("wait", 2*time.Minute, "how long to wait for the verdict")
		events       = flag.Bool("events", false, "follow the job's NDJSON event stream instead of polling")
		listCheckers = flag.Bool("checkers", false, "list the server's registered checkers and exit")
		stream       = flag.Bool("stream", false, "replay the history through a v1 streaming session instead of a job")
		window       = flag.Int("window", 0, "epoch-compaction window requested for the streaming session (0 = server default)")
		distributed  = flag.Bool("distributed", false, "run the job on the server's checking fabric (requires a coordinator, i.e. mtc-serve -fabric-wal)")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *wait)
	defer cancel()
	c := client.New(*server)

	if *listCheckers {
		infos, err := c.Checkers(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		for _, ci := range infos {
			fmt.Printf("%-16s levels: %v\n", ci.Name, ci.Levels)
		}
		return
	}

	if *historyPath == "" {
		fatalf("missing -history (use -checkers to list engines)")
	}
	h, err := loadHistory(*historyPath)
	if err != nil {
		fatalf("read history: %v", err)
	}
	if *level != "" {
		if _, lerr := mtc.ParseLevel(*level); lerr != nil {
			fatalf("%v", lerr)
		}
	}
	if *stream {
		// Streaming replays through the session API, which always runs
		// the mtc-incremental engine server-side: the job-only flags are
		// rejected rather than silently dropped.
		if *checkerName != "" && *checkerName != "mtc-incremental" {
			fatalf("-stream replays through the mtc-incremental session engine; it cannot run -checker %s", *checkerName)
		}
		if *events {
			fatalf("-events follows a job's NDJSON stream; it cannot be combined with -stream")
		}
		if *parallelism != 0 {
			fatalf("-parallelism tunes job engines; the session engine ignores it (drop the flag)")
		}
		if *shardN != 0 {
			fatalf("-shard tunes job engines; the session engine ignores it (drop the flag)")
		}
		if *distributed {
			fatalf("-distributed submits a fabric job; it cannot be combined with -stream")
		}
		if *timeout > 0 {
			// In stream mode there is no server-side job deadline; honour
			// -timeout as the overall replay bound instead.
			cancel()
			ctx, cancel = context.WithTimeout(context.Background(), *timeout)
			defer cancel()
		}
		runStream(ctx, c, h, *level, *window)
		return
	}
	req := client.JobRequest{
		Checker: *checkerName, Level: *level,
		TimeoutMillis: timeout.Milliseconds(), Parallelism: *parallelism, Shard: *shardN,
		Distributed: *distributed,
		History:     h,
	}

	job, err := c.SubmitJob(ctx, req)
	if err != nil {
		fatalf("submit: %v", err)
	}
	fmt.Printf("job %s submitted (checker %s, level %s, %d txns)\n", job.ID, job.Checker, job.Level, job.Txns)

	var report *mtc.Report
	if *events {
		err = c.StreamEvents(ctx, job.ID, func(ev client.JobEvent) error {
			fmt.Printf("event %d: %s\n", ev.Seq, ev.State)
			if ev.State == client.JobDone {
				report = ev.Report
			} else if ev.State == client.JobFailed {
				return fmt.Errorf("job failed: %s", ev.Error)
			} else if ev.State == client.JobCanceled {
				return fmt.Errorf("job canceled")
			}
			return nil
		})
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		job, err = c.WaitJob(ctx, job.ID)
		if err != nil {
			fatalf("wait: %v", err)
		}
		if job.State != client.JobDone {
			fatalf("job %s %s: %s", job.ID, job.State, job.Error)
		}
		report = job.Report
	}
	if report == nil {
		fatalf("job finished without a report")
	}

	if report.OK {
		fmt.Printf("[%s] history satisfies %s (%d txns", report.Checker, report.Level, report.Txns)
		if report.Edges > 0 {
			fmt.Printf(", %d dependency edges", report.Edges)
		}
		fmt.Println(")")
		printProfile(report)
		return
	}
	fmt.Printf("[%s] history VIOLATES %s:\n", report.Checker, report.Level)
	for _, a := range report.Anomalies {
		fmt.Printf("  %s\n", a)
	}
	if report.Detail != "" {
		fmt.Printf("  %s\n", report.Detail)
	}
	printProfile(report)
	os.Exit(1)
}

// printProfile renders the lattice profile of a profile-checker report;
// single-level reports carry no strongest level and print nothing extra.
func printProfile(report *mtc.Report) {
	if report.StrongestLevel == "" {
		return
	}
	fmt.Printf("strongest level satisfied: %s\n", report.StrongestLevel)
	for i := len(report.Rungs) - 1; i >= 0; i-- {
		r := report.Rungs[i]
		if r.OK {
			fmt.Printf("  %-6s ok\n", r.Level)
		} else {
			fmt.Printf("  %-6s VIOLATED: %s\n", r.Level, r.Witness)
		}
	}
	for _, g := range report.Guarantees {
		if g.OK {
			fmt.Printf("  %-6s ok\n", g.Guarantee)
		} else {
			fmt.Printf("  %-6s VIOLATED: %s\n", g.Guarantee, g.Witness)
		}
	}
}

// runStream replays h through a streaming session in commit order,
// batching transactions and printing the finalized verdict (including
// how much of the stream the server compacted away).
func runStream(ctx context.Context, c *client.Client, h *mtc.History, level string, window int) {
	if level == "" {
		level = "SI"
	}
	// The initial transaction opens the session; everything else streams.
	var keys []mtc.Key
	txns := h.Txns
	if h.HasInit && len(txns) > 0 {
		for _, op := range txns[0].Ops {
			keys = append(keys, op.Key)
		}
		txns = txns[1:]
	}
	// Feed in commit order — the order a live deployment would deliver.
	order := make([]int, len(txns))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return txns[order[a]].Finish < txns[order[b]].Finish })

	sess, st, err := c.OpenSessionOpts(ctx, client.SessionOpts{Level: level, Keys: keys, Window: window})
	if err != nil {
		fatalf("open session: %v", err)
	}
	closeSession := func() { _ = sess.Close(context.WithoutCancel(ctx)) }
	fmt.Printf("session %s opened (level %s, window %d)\n", sess.ID, st.Level, st.Window)

	const batch = 256
	payloads := make([]client.TxnPayload, 0, batch)
	flush := func() {
		if len(payloads) == 0 {
			return
		}
		if st, err = sess.Send(ctx, payloads...); err != nil {
			fatalf("send: %v", err)
		}
		payloads = payloads[:0]
	}
	for _, i := range order {
		t := txns[i]
		committed := t.Committed
		payloads = append(payloads, client.TxnPayload{
			Sess: t.Session, Ops: t.Ops, Committed: &committed,
			Start: t.Start, Finish: t.Finish,
		})
		if len(payloads) == batch {
			flush()
		}
	}
	flush()
	if st, err = sess.Verdict(ctx, true); err != nil {
		fatalf("verdict: %v", err)
	}
	closeSession()
	fmt.Printf("streamed %d txns; %d compacted over %d epochs, %d live on the server\n",
		st.Txns, st.CompactedTxns, st.CompactedEpochs, st.LiveTxns)
	if st.OK {
		fmt.Printf("[mtc-incremental] history satisfies %s (%d txns, %d dependency edges)\n", st.Level, st.Txns, st.Edges)
		return
	}
	fmt.Printf("[mtc-incremental] history VIOLATES %s:\n", st.Level)
	if st.Report != nil {
		for _, a := range st.Report.Anomalies {
			fmt.Printf("  %s\n", a)
		}
		if st.Report.Detail != "" {
			fmt.Printf("  %s\n", st.Report.Detail)
		}
	}
	os.Exit(1)
}

func loadHistory(path string) (*mtc.History, error) {
	if path == "-" {
		return mtc.ReadHistory(os.Stdin)
	}
	return mtc.LoadHistory(path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mtc-client: "+format+"\n", args...)
	os.Exit(2)
}
