// Command mtc-client submits a history to a running mtc-serve instance
// through the pkg/client SDK and prints the verdict — the reference
// consumer of the v1 async job API.
//
// Examples:
//
//	mtc-client -server http://localhost:8080 -checkers
//	mtc-client -history h.json -level SER
//	mtc-client -history h.json -checker cobra -level SER -timeout 30s
//	mtc-client -history h.json -level SI -events     # follow the NDJSON stream
//
// The history file uses the standard JSON encoding (as written by
// `mtc -out h.json` or mtc.WriteHistory). "-" reads from stdin. Exit
// status: 0 verdict OK, 1 violation, 2 usage or transport error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"mtc/pkg/client"
	"mtc/pkg/mtc"
)

func main() {
	var (
		server       = flag.String("server", "http://localhost:8080", "base URL of the mtc-serve instance")
		historyPath  = flag.String("history", "", "history JSON file to verify (\"-\" for stdin)")
		checkerName  = flag.String("checker", "", "verification engine (empty = server default)")
		level        = flag.String("level", "", "isolation level: SSER, SER or SI (empty = checker default)")
		timeout      = flag.Duration("timeout", 0, "per-job execution timeout sent to the server (0 = server default)")
		parallelism  = flag.Int("parallelism", 0, "engine parallelism requested for the job (0 = server default; clamped server-side)")
		wait         = flag.Duration("wait", 2*time.Minute, "how long to wait for the verdict")
		events       = flag.Bool("events", false, "follow the job's NDJSON event stream instead of polling")
		listCheckers = flag.Bool("checkers", false, "list the server's registered checkers and exit")
	)
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *wait)
	defer cancel()
	c := client.New(*server)

	if *listCheckers {
		infos, err := c.Checkers(ctx)
		if err != nil {
			fatalf("%v", err)
		}
		for _, ci := range infos {
			fmt.Printf("%-16s levels: %v\n", ci.Name, ci.Levels)
		}
		return
	}

	if *historyPath == "" {
		fatalf("missing -history (use -checkers to list engines)")
	}
	h, err := loadHistory(*historyPath)
	if err != nil {
		fatalf("read history: %v", err)
	}
	if *level != "" {
		if _, err := mtc.ParseLevel(*level); err != nil {
			fatalf("%v", err)
		}
	}
	req := client.JobRequest{
		Checker: *checkerName, Level: *level,
		TimeoutMillis: timeout.Milliseconds(), Parallelism: *parallelism,
		History: h,
	}

	job, err := c.SubmitJob(ctx, req)
	if err != nil {
		fatalf("submit: %v", err)
	}
	fmt.Printf("job %s submitted (checker %s, level %s, %d txns)\n", job.ID, job.Checker, job.Level, job.Txns)

	var report *mtc.Report
	if *events {
		err = c.StreamEvents(ctx, job.ID, func(ev client.JobEvent) error {
			fmt.Printf("event %d: %s\n", ev.Seq, ev.State)
			if ev.State == client.JobDone {
				report = ev.Report
			} else if ev.State == client.JobFailed {
				return fmt.Errorf("job failed: %s", ev.Error)
			} else if ev.State == client.JobCanceled {
				return fmt.Errorf("job canceled")
			}
			return nil
		})
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		job, err = c.WaitJob(ctx, job.ID)
		if err != nil {
			fatalf("wait: %v", err)
		}
		if job.State != client.JobDone {
			fatalf("job %s %s: %s", job.ID, job.State, job.Error)
		}
		report = job.Report
	}
	if report == nil {
		fatalf("job finished without a report")
	}

	if report.OK {
		fmt.Printf("[%s] history satisfies %s (%d txns", report.Checker, report.Level, report.Txns)
		if report.Edges > 0 {
			fmt.Printf(", %d dependency edges", report.Edges)
		}
		fmt.Println(")")
		return
	}
	fmt.Printf("[%s] history VIOLATES %s:\n", report.Checker, report.Level)
	for _, a := range report.Anomalies {
		fmt.Printf("  %s\n", a)
	}
	if report.Detail != "" {
		fmt.Printf("  %s\n", report.Detail)
	}
	os.Exit(1)
}

func loadHistory(path string) (*mtc.History, error) {
	if path == "-" {
		return mtc.ReadHistory(os.Stdin)
	}
	return mtc.LoadHistory(path)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mtc-client: "+format+"\n", args...)
	os.Exit(2)
}
