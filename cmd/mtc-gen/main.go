// Command mtc-gen generates histories to files without verifying them:
// either by executing a workload against the in-memory store, or
// synthetically (LWT histories with controlled concurrency, or the 14
// anomaly fixtures of Figure 5).
//
// Examples:
//
//	mtc-gen -kind mt -sessions 10 -txns 100 -objects 20 -o h.json
//	mtc-gen -kind gt -ops 20 -o gt.json
//	mtc-gen -kind fixture -name WriteSkew -o ws.json
package main

import (
	"flag"
	"fmt"
	"os"

	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "mt", "workload kind: mt, gt, fixture")
		sessions = flag.Int("sessions", 10, "sessions")
		txns     = flag.Int("txns", 100, "transactions per session")
		objects  = flag.Int("objects", 20, "objects")
		ops      = flag.Int("ops", 16, "operations per transaction (gt)")
		dist     = flag.String("dist", "uniform", "distribution: uniform, zipf, hotspot, exp")
		mode     = flag.String("mode", "SI", "store mode: SI, SER, 2PL")
		seed     = flag.Int64("seed", 1, "seed")
		name     = flag.String("name", "", "fixture name (kind=fixture); empty lists them")
		out      = flag.String("o", "history.json", "output file (JSON)")
	)
	flag.Parse()

	var h *history.History
	switch *kind {
	case "fixture":
		if *name == "" {
			for _, f := range history.Fixtures() {
				fmt.Println(f.Name)
			}
			return
		}
		f := history.FixtureByName(*name)
		if f == nil {
			fatalf("unknown fixture %q", *name)
		}
		h = f.H
	case "mt", "gt":
		var m kv.Mode
		switch *mode {
		case "SI":
			m = kv.ModeSI
		case "SER":
			m = kv.ModeSerializable
		case "2PL":
			m = kv.Mode2PL
		default:
			fatalf("unknown mode %q", *mode)
		}
		s := kv.NewStore(m)
		var w *workload.Workload
		if *kind == "mt" {
			w = workload.GenerateMT(workload.MTConfig{
				Sessions: *sessions, Txns: *txns, Objects: *objects,
				Dist: workload.DistKind(*dist), Seed: *seed, ReadOnlyFrac: 0.25,
			})
		} else {
			w = workload.GenerateGT(workload.GTConfig{
				Sessions: *sessions, Txns: *txns, Objects: *objects,
				OpsPerTxn: *ops, Dist: workload.DistKind(*dist), Seed: *seed,
			})
		}
		res := runner.Run(s, w, runner.Config{Retries: 8})
		fmt.Printf("generated %d committed / %d aborted transactions\n", res.Committed, res.Aborted)
		h = res.H
	default:
		fatalf("unknown kind %q", *kind)
	}

	if err := history.SaveFile(*out, h); err != nil {
		fatalf("save: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mtc-gen: "+format+"\n", args...)
	os.Exit(2)
}
