// Command mtc-lint is the repository's static-analysis multichecker:
// it runs the four repo-specific analyzers (mapiter, ctxpoll, hotalloc,
// goroleak — see docs/lint.md) over the module and reports every
// finding as file:line:col: analyzer: message.
//
// Standalone:
//
//	go run ./cmd/mtc-lint ./...            # whole module
//	go run ./cmd/mtc-lint -mapiter=false ./internal/core
//
// As a vet tool (per-package, driven by the go command):
//
//	go build -o /tmp/mtc-lint ./cmd/mtc-lint
//	go vet -vettool=/tmp/mtc-lint ./...
//
// Exit status: 0 clean, 1 usage or load failure, 2 diagnostics
// reported — the contract the lint-analysis CI job keys off.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mtc/internal/analysis"
	"mtc/internal/analysis/ctxpoll"
	"mtc/internal/analysis/goroleak"
	"mtc/internal/analysis/hotalloc"
	"mtc/internal/analysis/mapiter"
)

func main() {
	// The go command drives vet tools through a fixed protocol:
	// `tool -V=full` (identify), `tool -flags` (extra flags), then
	// `tool <pkg>.cfg` once per package. Dispatch before normal flag
	// parsing so the protocol flags never collide with ours.
	if len(os.Args) == 2 {
		switch {
		case os.Args[1] == "-V=full" || os.Args[1] == "--V=full":
			printVersion()
			return
		case os.Args[1] == "-flags" || os.Args[1] == "--flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(os.Args[1], ".cfg"):
			os.Exit(vetMain(os.Args[1]))
		}
	}
	os.Exit(standalone())
}

// all returns the analyzer set in reporting order.
func all() []*analysis.Analyzer {
	return []*analysis.Analyzer{ctxpoll.Analyzer, goroleak.Analyzer, hotalloc.Analyzer, mapiter.Analyzer}
}

func standalone() int {
	fs := flag.NewFlagSet("mtc-lint", flag.ExitOnError)
	enabled := make(map[string]*bool)
	for _, a := range all() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '('); i > 0 {
			doc = strings.TrimSpace(doc[:i])
		}
		enabled[a.Name] = fs.Bool(a.Name, true, doc)
	}
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: mtc-lint [-<analyzer>=false ...] [packages]\n\nAnalyzers (all on by default):\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtc-lint:", err)
		return 1
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtc-lint:", err)
		return 1
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtc-lint:", err)
		return 1
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtc-lint:", err)
		return 1
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range all() {
			if !*enabled[a.Name] {
				continue
			}
			pass := pkg.Pass(a, func(d analysis.Diagnostic) { diags = append(diags, d) })
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "mtc-lint: %s: %s: %v\n", pkg.ImportPath, a.Name, err)
				return 1
			}
		}
	}
	if len(diags) == 0 {
		return 0
	}
	lines := make([]string, 0, len(diags))
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		lines = append(lines, fmt.Sprintf("%s:%d:%d: %s: %s", file, pos.Line, pos.Column, d.Analyzer.Name, d.Message))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Fprintf(os.Stderr, "mtc-lint: %d finding(s)\n", len(diags))
	return 2
}
