package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"mtc/internal/analysis"
)

// vetConfig mirrors the JSON the go command writes for each package
// when driving a -vettool (x/tools unitchecker's Config). Fields the
// analyzers do not need are kept so the decode stays strict-friendly.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// printVersion answers `mtc-lint -V=full`: the go command hashes the
// line into its action cache key, so it must change when the binary
// does — hash the executable, as unitchecker does.
func printVersion() {
	exe, err := os.Executable()
	if err == nil {
		if f, err2 := os.Open(exe); err2 == nil {
			h := sha256.New()
			if _, err3 := io.Copy(h, f); err3 == nil {
				f.Close()
				fmt.Printf("mtc-lint version devel comments-go-here buildID=%02x\n", string(h.Sum(nil)))
				return
			}
			f.Close()
		}
	}
	fmt.Println("mtc-lint version devel comments-go-here buildID=unknown")
}

// vetMain analyzes the one package described by cfgPath and returns the
// process exit code (0 clean, 1 protocol failure, 2 diagnostics).
func vetMain(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtc-lint:", err)
		return 1
	}
	var cfg vetConfig
	if uerr := json.Unmarshal(data, &cfg); uerr != nil {
		fmt.Fprintf(os.Stderr, "mtc-lint: parsing %s: %v\n", cfgPath, uerr)
		return 1
	}
	// The tool keeps no cross-package facts, but the go command expects
	// the facts file to exist before it caches the action.
	if cfg.VetxOutput != "" {
		if werr := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); werr != nil {
			fmt.Fprintln(os.Stderr, "mtc-lint:", werr)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, perr := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "mtc-lint:", perr)
			return 1
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the go command already
	// compiled: canonicalize via ImportMap, then open the listed file.
	lookup := func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("mtc-lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {},
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "mtc-lint:", err)
		return 1
	}

	exit := 0
	for _, a := range all() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			pos := fset.Position(d.Pos)
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", pos, d.Analyzer.Name, d.Message)
			exit = 2
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "mtc-lint: %s: %s: %v\n", cfg.ImportPath, a.Name, err)
			return 1
		}
	}
	return exit
}
