// Command mtc-serve exposes MTC as checking-as-a-service over HTTP — the
// IsoVista integration the paper lists as future work (Section VII). It
// accepts histories as JSON and returns verdicts with counterexamples.
//
//	mtc-serve -addr :8080
//
//	POST /check?level=SI        body: history JSON    -> verdict JSON
//	POST /check?level=SER&checker=cobra               -> verdict JSON
//	GET  /fixtures                                    -> the 14 anomaly names
//	GET  /fixtures/{name}?level=SER                   -> verdict on a fixture
//	GET  /healthz
package main

import (
	"flag"
	"log"
	"net/http"

	"mtc/internal/mtcserve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	srv := &http.Server{Addr: *addr, Handler: mtcserve.Handler()}
	log.Printf("mtc-serve listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
