// Command mtc-serve exposes MTC as checking-as-a-service over HTTP — the
// IsoVista integration the paper lists as future work (Section VII). The
// v1 API is asynchronous: whole-history checks run as jobs on a bounded
// worker pool under per-job timeouts, polled or streamed by id; live
// streaming sessions verify transactions as they commit. Engines resolve
// through the checker registry. See docs/api.md for the full endpoint
// reference; pkg/client is the matching Go SDK.
//
//	mtc-serve -addr :8080 [-checker mtc] [-workers 8] [-queue 256] \
//	          [-job-timeout 60s] [-max-sessions 1024] [-max-body 67108864]
//
// The same binary is both sides of the distributed checking fabric
// (internal/fabric). Started with -fabric-wal it is a coordinator: jobs
// submitted with "distributed": true are split into components,
// dispatched to registered workers, folded, and made durable in the
// named write-ahead log (a restart on the same WAL resumes pending jobs
// and serves completed verdicts without re-running them). Started with
// -worker -coordinator <url> it serves no HTTP at all and instead
// registers with the coordinator, heartbeats, and pulls component work:
//
//	mtc-serve -fabric-wal fabric.wal -addr :8080          # coordinator
//	mtc-serve -worker -coordinator http://localhost:8080  # worker
//
//	POST   /v1/jobs                  submit a check -> 202 + job id
//	GET    /v1/jobs/{id}             poll status / report
//	GET    /v1/jobs/{id}/events      NDJSON progress stream
//	DELETE /v1/jobs/{id}             cancel (stops the worker)
//	POST   /v1/sessions              open a streaming session
//	GET    /v1/checkers              registered engines
//	GET    /healthz
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mtc/internal/fabric"
	"mtc/internal/mtcserve"
	"mtc/pkg/mtc"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		def         = flag.String("checker", "mtc", "default checker (resolved via the registry)")
		workers     = flag.Int("workers", mtcserve.DefaultWorkers, "job worker pool size")
		queue       = flag.Int("queue", mtcserve.DefaultQueueDepth, "job queue depth (full queue answers 429)")
		jobTimeout  = flag.Duration("job-timeout", mtcserve.DefaultJobTimeout, "default per-job execution timeout")
		maxJobs     = flag.Int("max-jobs", mtcserve.DefaultMaxJobs, "retained job cap (oldest finished jobs are forgotten)")
		maxSessions = flag.Int("max-sessions", mtcserve.DefaultMaxSessions, "cap on live streaming sessions")
		maxBody     = flag.Int64("max-body", mtcserve.DefaultMaxBodyBytes, "request body size limit in bytes")
		parallelism = flag.Int("parallelism", 0, "default engine parallelism for jobs that do not set one (0 = GOMAXPROCS; requests are clamped to GOMAXPROCS)")
		window      = flag.Int("window", 0, "default epoch-compaction window for streaming sessions that do not request one (0 = unbounded)")
		sessionIdle = flag.Duration("session-idle", mtcserve.DefaultSessionIdle, "evict streaming sessions idle longer than this")

		worker      = flag.Bool("worker", false, "run as a fabric worker instead of an HTTP server (requires -coordinator)")
		coordinator = flag.String("coordinator", "", "coordinator base URL the worker registers with, e.g. http://host:8080")
		workerName  = flag.String("worker-name", "", "worker label in coordinator logs and /v1/fabric/status (default: the hostname)")
		fabricWAL   = flag.String("fabric-wal", "", "act as a fabric coordinator, persisting jobs to this NDJSON write-ahead log")
		fabricHB    = flag.Duration("fabric-heartbeat", 0, "worker heartbeat timeout before in-flight components are re-dispatched (0 = 5s default)")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *worker {
		runWorker(logger, *coordinator, *workerName, *parallelism)
		return
	}
	if *coordinator != "" {
		logger.Error("mtc-serve: -coordinator requires -worker")
		os.Exit(2)
	}
	if *window < 0 {
		logger.Error("mtc-serve: -window must be >= 0", "window", *window)
		os.Exit(2)
	}
	if _, err := mtc.LookupChecker(*def); err != nil {
		logger.Error("mtc-serve: bad -checker", "err", err)
		os.Exit(2)
	}

	srv := mtcserve.NewServer(nil)
	srv.DefaultChecker = *def
	srv.Workers = *workers
	srv.QueueDepth = *queue
	srv.JobTimeout = *jobTimeout
	srv.MaxJobs = *maxJobs
	srv.MaxSessions = *maxSessions
	srv.MaxBodyBytes = *maxBody
	srv.DefaultParallelism = *parallelism
	srv.DefaultWindow = *window
	srv.SessionIdleTimeout = *sessionIdle
	srv.Logger = logger

	if *fabricWAL != "" {
		coord, err := fabric.Open(*fabricWAL, fabric.Config{
			HeartbeatTimeout: *fabricHB,
			Logger:           logger,
		})
		if err != nil {
			logger.Error("mtc-serve: opening fabric WAL", "path", *fabricWAL, "err", err)
			os.Exit(1)
		}
		defer func() {
			if err := coord.Close(); err != nil {
				logger.Error("mtc-serve: closing fabric WAL", "err", err)
			}
		}()
		srv.Fabric = coord
		srv.AdoptFabricJobs()
		logger.Info("mtc-serve: fabric coordinator enabled", "wal", *fabricWAL)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		logger.Info("mtc-serve: shutting down")
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()

	logger.Info("mtc-serve listening",
		"addr", *addr, "default_checker", *def,
		"workers", *workers, "queue", *queue, "job_timeout", jobTimeout.String(),
		"registered", mtc.Checkers())
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("mtc-serve", "err", err)
		os.Exit(1)
	}
}

// runWorker runs the fabric worker loop until SIGINT/SIGTERM.
func runWorker(logger *slog.Logger, coordinator, name string, parallelism int) {
	if coordinator == "" {
		logger.Error("mtc-serve: -worker requires -coordinator <url>")
		os.Exit(2)
	}
	if name == "" {
		name, _ = os.Hostname()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("mtc-serve: fabric worker starting", "coordinator", coordinator, "name", name)
	if err := fabric.RunWorker(ctx, fabric.WorkerConfig{
		Coordinator: coordinator,
		Name:        name,
		Parallelism: parallelism,
		Logger:      logger,
	}); err != nil && !errors.Is(err, context.Canceled) {
		logger.Error("mtc-serve: fabric worker", "err", err)
		os.Exit(1)
	}
	logger.Info("mtc-serve: fabric worker stopped")
}
