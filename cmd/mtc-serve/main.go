// Command mtc-serve exposes MTC as checking-as-a-service over HTTP — the
// IsoVista integration the paper lists as future work (Section VII). It
// accepts histories as JSON and returns verdicts with counterexamples;
// engines resolve through the checker registry, and streaming sessions
// verify transactions as they commit.
//
//	mtc-serve -addr :8080 [-checker mtc]
//
//	GET  /checkers                                    -> registered engines
//	POST /check?level=SI        body: history JSON    -> verdict JSON
//	POST /check?level=SER&checker=cobra               -> verdict JSON
//	GET  /fixtures                                    -> the anomaly fixture names
//	GET  /fixtures/{name}?level=SER                   -> verdict on a fixture
//	POST /sessions              {"level":"SI","keys":["x"]}
//	POST /sessions/{id}/txns    body: txn or [txn...] -> verdict so far
//	GET  /sessions/{id}/verdict?final=1               -> final verdict
//	GET  /healthz
package main

import (
	"flag"
	"log"
	"net/http"

	"mtc/internal/checker"
	"mtc/internal/mtcserve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	def := flag.String("checker", "mtc", "default checker for /check (resolved via the registry)")
	flag.Parse()
	if _, err := checker.Lookup(*def); err != nil {
		log.Fatalf("mtc-serve: %v", err)
	}
	srv := mtcserve.NewServer(nil)
	srv.DefaultChecker = *def
	log.Printf("mtc-serve listening on %s (default checker %s, registered: %v)", *addr, *def, checker.Names())
	log.Fatal((&http.Server{Addr: *addr, Handler: srv.Handler()}).ListenAndServe())
}
