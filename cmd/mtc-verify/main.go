// Command mtc-verify checks a saved history file against an isolation
// level using any of the implemented checkers.
//
// Examples:
//
//	mtc-verify -level SI history.json
//	mtc-verify -level SER -checker cobra -format text history.txt
//	mtc-verify -level SI -stream -window 1024 capture.ndjson.gz
//	mtc-verify -level SER -stream capture.mtcb
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"mtc/internal/cobra"
	"mtc/internal/core"
	"mtc/internal/elle"
	"mtc/internal/history"
	"mtc/internal/polysi"
)

func main() {
	var (
		level   = flag.String("level", "SI", "isolation level: SSER, SER or SI")
		checker = flag.String("checker", "mtc", "checker: mtc, cobra, polysi, elle-wr")
		format  = flag.String("format", "json", "history file format: json or text")
		stream  = flag.Bool("stream", false, "verify an NDJSON or MTCB capture transaction-by-transaction without loading it (codec sniffed by content; mtc checker, SER or SI)")
		window  = flag.Int("window", 0, "with -stream: compact the checker to this window (0 = unbounded, always exact; windowed verdicts are exact for captures recorded in ingestion order — for session-grouped files the window must exceed the capture's commit-to-record skew or stale reads report ThinAirRead)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mtc-verify [-level L] [-checker C] [-stream [-window N]] <history-file>")
		os.Exit(2)
	}

	if *stream {
		streamVerify(flag.Arg(0), core.Level(*level), *window)
		return
	}

	var (
		h   *history.History
		err error
	)
	switch *format {
	case "json":
		h, err = history.LoadFile(flag.Arg(0))
	case "text":
		var f *os.File
		f, err = os.Open(flag.Arg(0))
		if err == nil {
			defer f.Close()
			h, err = history.ReadText(f)
		}
	default:
		fatalf("unknown format %q", *format)
	}
	if err != nil {
		fatalf("load: %v", err)
	}

	lvl := core.Level(*level)
	ok := false
	switch *checker {
	case "mtc":
		r := core.Check(h, lvl)
		fmt.Println(r.Explain())
		ok = r.OK
	case "cobra":
		if lvl != core.SER {
			fatalf("cobra checks SER only")
		}
		r := cobra.CheckSER(h)
		fmt.Printf("cobra: OK=%v constraints=%d forced=%d residual=%d decisions=%d\n",
			r.OK, r.Constraints, r.Forced, r.Residual, r.Solver.Decisions)
		ok = r.OK
	case "polysi":
		if lvl != core.SI {
			fatalf("polysi checks SI only")
		}
		r := polysi.CheckSI(h)
		fmt.Printf("polysi: OK=%v constraints=%d forced=%d residual=%d decisions=%d\n",
			r.OK, r.Constraints, r.Forced, r.Residual, r.Solver.Decisions)
		ok = r.OK
	case "elle-wr":
		if lvl != core.SER && lvl != core.SI {
			fatalf("elle-wr checks SER or SI")
		}
		r := elle.CheckRWRegister(h, elle.Level(lvl))
		if r.OK {
			fmt.Printf("elle-wr: history satisfies %s\n", lvl)
		} else {
			fmt.Printf("elle-wr: history VIOLATES %s: %s\n", lvl, r.Reason)
		}
		ok = r.OK
	default:
		fatalf("unknown checker %q", *checker)
	}
	if !ok {
		os.Exit(1)
	}
}

// streamVerify feeds an NDJSON or MTCB capture straight into the online
// checker: the codec is sniffed by content (gzip unwrapped first), one
// transaction is held at a time, and with a window the checker itself
// stays bounded too, so captures of any length verify in near-constant
// memory.
func streamVerify(path string, lvl core.Level, window int) {
	if lvl != core.SER && lvl != core.SI {
		fatalf("-stream checks SER or SI")
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf("open: %v", err)
	}
	defer f.Close()
	sr, err := history.NewAutoStreamReader(f)
	if err != nil {
		fatalf("stream: %v", err)
	}
	r, err := core.CheckStreamCtx(context.Background(), sr, lvl, window, 0)
	if err != nil {
		fatalf("stream: %v", err) // codec/read error, not a verdict
	}
	fmt.Println(r.Explain())
	if !r.OK {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mtc-verify: "+format+"\n", args...)
	os.Exit(2)
}
