// Command mtc runs the full end-to-end black-box isolation checking
// workflow of Figure 2: generate an MT workload, execute it against the
// in-memory transactional store (optionally with an injected production
// bug), and verify the resulting history at the requested isolation level.
//
// Examples:
//
//	mtc -level SI -sessions 10 -txns 100 -objects 20
//	mtc -level SER -bug postgresql-12.3 -seed 3
//	mtc -level SSER -lwt -sessions 8 -txns 50
//	mtc -level SI -out history.json
package main

import (
	"flag"
	"fmt"
	"os"

	"mtc/internal/core"
	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

func main() {
	var (
		level    = flag.String("level", "SI", "isolation level to check: SSER, SER or SI")
		sessions = flag.Int("sessions", 10, "number of client sessions")
		txns     = flag.Int("txns", 100, "transactions per session")
		objects  = flag.Int("objects", 20, "number of objects")
		dist     = flag.String("dist", "uniform", "object-access distribution: uniform, zipf, hotspot, exp")
		seed     = flag.Int64("seed", 1, "workload and fault seed")
		retries  = flag.Int("retries", 8, "retries per aborted transaction")
		bug      = flag.String("bug", "", "inject a Table II bug (see -bugs)")
		listBugs = flag.Bool("bugs", false, "list injectable bugs and exit")
		lwt      = flag.Bool("lwt", false, "use lightweight transactions (CAS) and the linear-time SSER checker")
		out      = flag.String("out", "", "save the generated history to this JSON file")
	)
	flag.Parse()

	if *listBugs {
		for _, b := range faults.Bugs() {
			fmt.Printf("%-24s %-20s violates %-4s  (%s)\n", b.Name, b.Anomaly, b.Claimed, b.Report)
		}
		return
	}

	lvl := core.Level(*level)
	switch lvl {
	case core.SSER, core.SER, core.SI:
	default:
		fatalf("unknown level %q (want SSER, SER or SI)", *level)
	}

	store, claimed := buildStore(lvl, *bug, *seed)
	if *lwt {
		runLWTPipeline(store, *sessions, *txns, *seed)
		return
	}

	w := workload.GenerateMT(workload.MTConfig{
		Sessions: *sessions, Txns: *txns, Objects: *objects,
		Dist: workload.DistKind(*dist), Seed: *seed, ReadOnlyFrac: 0.25,
	})
	res := runner.Run(store, w, runner.Config{Retries: *retries})
	fmt.Printf("history: %d committed, %d aborted (abort rate %.1f%%)\n",
		res.Committed, res.Aborted, res.AbortRate()*100)

	if *out != "" {
		if err := history.SaveFile(*out, res.H); err != nil {
			fatalf("save: %v", err)
		}
		fmt.Printf("saved history to %s\n", *out)
	}

	r := core.Check(res.H, claimed)
	fmt.Println(r.Explain())
	if !r.OK {
		os.Exit(1)
	}
}

// buildStore returns the store (faulty when a bug is requested) and the
// level to check (the bug's claimed level overrides -level).
func buildStore(lvl core.Level, bug string, seed int64) (*kv.Store, core.Level) {
	if bug == "" {
		mode := kv.ModeSI
		switch lvl {
		case core.SER, core.SSER:
			mode = kv.ModeSerializable
		}
		return kv.NewStore(mode), lvl
	}
	b := faults.BugByName(bug)
	if b == nil {
		fatalf("unknown bug %q; use -bugs to list", bug)
	}
	fmt.Printf("injecting %s (%s, violates %s)\n", b.Name, b.Anomaly, b.Claimed)
	return b.NewStore(seed), b.Claimed
}

func runLWTPipeline(store *kv.Store, sessions, txns int, seed int64) {
	res := runner.RunLWT(store, runner.LWTConfig{
		Sessions: sessions, OpsPerSession: txns, Keys: 4, Seed: seed,
	})
	fmt.Printf("history: %d successful LWT ops, %d failed CAS attempts\n", res.Succeeded, res.Failed)
	r := core.VLLWT(res.Ops)
	if r.OK {
		fmt.Println("history satisfies SSER (linearizable)")
		return
	}
	fmt.Printf("history VIOLATES SSER on %s: %s\n", r.Key, r.Reason)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mtc: "+format+"\n", args...)
	os.Exit(2)
}
