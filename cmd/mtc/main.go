// Command mtc runs the full end-to-end black-box isolation checking
// workflow of Figure 2: generate an MT workload, execute it against the
// in-memory transactional store (optionally with an injected production
// bug), and verify the resulting history at the requested isolation level
// with any registered checker.
//
// Examples:
//
//	mtc -level SI -sessions 10 -txns 100 -objects 20
//	mtc -level SER -bug postgresql-12.3 -seed 3
//	mtc -level SER -checker cobra
//	mtc -level rc -bug dirty-abort
//	mtc -profile -bug long-fork
//	mtc -level SI -stream -bug mariadb-galera-10.7.3
//	mtc -level SSER -lwt -sessions 8 -txns 50
//	mtc -level SI -out history.json
//	mtc -level SER -txns 100000 -out history.mtcb.gz
//	mtc -checkers
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mtc/internal/checker"
	"mtc/internal/core"
	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/shard"
	"mtc/internal/workload"
)

func main() {
	var (
		level        = flag.String("level", "SI", "isolation level to check: SSER, SER, SI, CAUSAL, RA or RC")
		checkerName  = flag.String("checker", "mtc", "verification engine (see -checkers)")
		profileRun   = flag.Bool("profile", false, "evaluate the full isolation lattice and session guarantees in one pass, reporting the strongest level satisfied")
		listCheckers = flag.Bool("checkers", false, "list registered checkers and exit")
		stream       = flag.Bool("stream", false, "verify online while the run executes (incremental checker; SER or SI)")
		sessions     = flag.Int("sessions", 10, "number of client sessions")
		txns         = flag.Int("txns", 100, "transactions per session")
		objects      = flag.Int("objects", 20, "number of objects")
		dist         = flag.String("dist", "uniform", "object-access distribution: uniform, zipf, hotspot, exp")
		seed         = flag.Int64("seed", 1, "workload and fault seed")
		retries      = flag.Int("retries", 8, "retries per aborted transaction")
		bug          = flag.String("bug", "", "inject a Table II bug (see -bugs)")
		listBugs     = flag.Bool("bugs", false, "list injectable bugs and exit")
		lwt          = flag.Bool("lwt", false, "use lightweight transactions (CAS) and the linear-time SSER checker")
		out          = flag.String("out", "", "save the generated history to this file; the extension picks the codec (.json, .txt, .ndjson, .mtcb, any +.gz; no extension = JSON)")
		timeout      = flag.Duration("timeout", 0, "abort verification after this duration (0 = no limit)")
		parallelism  = flag.Int("parallelism", 0, "worker pool size for the parallel engine phases (0 = GOMAXPROCS, 1 = serial)")
		window       = flag.Int("window", 0, "epoch-compaction window for streaming/incremental verification: keep O(window) checker state instead of the whole history (0 = unbounded)")
		shardN       = flag.Int("shard", 0, "component-sharded verification: decompose the history into key-disjoint components checked by up to this many workers (0 = off)")
		tenants      = flag.Int("tenants", 0, "split the workload into this many key-disjoint tenant groups (0/1 = single shared key space)")
		reportFormat = flag.String("report", "text", "verdict output: text (human summary) or json (full structured checker.Report)")
	)
	flag.Parse()

	if *listBugs {
		for _, b := range faults.Bugs() {
			fmt.Printf("%-24s %-20s violates %-4s  (%s)\n", b.Name, b.Anomaly, b.Claimed, b.Report)
		}
		return
	}
	if *listCheckers {
		for _, c := range checker.Default.All() {
			var lvls []string
			for _, l := range c.Levels() {
				lvls = append(lvls, string(l))
			}
			fmt.Printf("%-16s levels: %s\n", c.Name(), strings.Join(lvls, ", "))
		}
		return
	}

	lvl, err := checker.ParseLevel(*level)
	if err != nil {
		fatalf("%v", err)
	}
	switch *reportFormat {
	case "text", "json":
	default:
		fatalf("-report must be text or json, got %q", *reportFormat)
	}
	jsonReport := *reportFormat == "json"
	if jsonReport {
		infoOut = os.Stderr // keep stdout a single JSON document
	}
	if *shardN < 0 {
		fatalf("-shard must be >= 0, got %d", *shardN)
	}
	if *tenants < 0 {
		fatalf("-tenants must be >= 0, got %d", *tenants)
	}

	if *profileRun {
		if *stream {
			fatalf("-profile runs the batch lattice profiler; it cannot be combined with -stream")
		}
		if *lwt {
			fatalf("-profile runs the batch lattice profiler; it cannot be combined with -lwt")
		}
	}

	store, claimed := buildStore(lvl, *bug, *seed)
	if *lwt {
		if *stream {
			fatalf("-lwt runs the VLLWT pipeline; it cannot be combined with -stream")
		}
		if *checkerName != "mtc" {
			fatalf("-lwt runs the VLLWT pipeline; it cannot run -checker %s", *checkerName)
		}
		if jsonReport {
			fatalf("-report json renders checker.Report verdicts; the VLLWT pipeline has none")
		}
		runLWTPipeline(store, *sessions, *txns, *seed)
		return
	}

	w := workload.GenerateMT(workload.MTConfig{
		Sessions: *sessions, Txns: *txns, Objects: *objects,
		Dist: workload.DistKind(*dist), Seed: *seed, ReadOnlyFrac: 0.25,
		Tenants: *tenants,
	})

	if *window < 0 {
		fatalf("-window must be >= 0, got %d", *window)
	}
	if *stream {
		if *checkerName != "mtc" && *checkerName != "mtc-incremental" {
			fatalf("-stream verifies with the incremental MTC engine; it cannot run -checker %s", *checkerName)
		}
		if *window > 0 && *out != "" {
			fatalf("-window frees the history as the stream advances; it cannot be combined with -out")
		}
		runStreaming(store, w, *retries, claimed, *out, *timeout, *window, *shardN, jsonReport)
		return
	}

	res := runner.Run(store, w, runner.Config{Retries: *retries})
	infof("history: %d committed, %d aborted (abort rate %.1f%%)\n",
		res.Committed, res.Aborted, res.AbortRate()*100)

	if *out != "" {
		if serr := history.SaveFile(*out, res.H); serr != nil {
			fatalf("save: %v", serr)
		}
		infof("saved history to %s\n", *out)
	}

	ctx, cancel := verifyContext(*timeout)
	defer cancel()
	name := *checkerName
	switch {
	case *profileRun:
		name = "profile"
	case name == "mtc" && core.LatticeRank(claimed) >= 0 && core.LatticeRank(claimed) < core.LatticeRank(core.SI):
		// The default engine serves the strong levels only; the weak
		// lattice rungs route to their dedicated checkers.
		name = strings.ToLower(string(claimed))
	}
	if *shardN > 0 {
		name = shard.Name(name) // route through the component-sharded wrapper
	}
	v, err := checker.Run(ctx, name, res.H, checker.Options{Level: claimed, Parallelism: *parallelism, Window: *window, Shard: *shardN})
	if err != nil {
		fatalf("%v", err)
	}
	if jsonReport {
		emitJSONReport(v)
	} else {
		explain(v)
	}
	if !v.OK {
		os.Exit(1)
	}
}

// infoOut receives the run's progress lines. It is stdout for the human
// workflow and stderr under -report json, so a script piping stdout gets
// exactly one JSON document.
var infoOut io.Writer = os.Stdout

// infof prints one progress line to infoOut.
func infof(format string, args ...any) { fmt.Fprintf(infoOut, format, args...) }

// emitJSONReport writes the full structured checker.Report to stdout —
// the machine-readable verdict (the v1 wire shape) for scripts and CI.
func emitJSONReport(v checker.Report) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		fatalf("encode report: %v", err)
	}
}

// verifyContext derives the verification context from the -timeout flag.
func verifyContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(context.Background(), timeout)
	}
	return context.WithCancel(context.Background())
}

// explain prints a verdict like core.Result.Explain for every engine.
func explain(v checker.Report) {
	if v.OK {
		fmt.Printf("[%s] history satisfies %s (%d txns", v.Checker, v.Level, v.Txns)
		if v.Edges > 0 {
			fmt.Printf(", %d dependency edges", v.Edges)
		}
		fmt.Println(")")
		if v.Detail != "" {
			fmt.Printf("  %s\n", v.Detail)
		}
		explainProfile(v)
		return
	}
	fmt.Printf("[%s] history VIOLATES %s:\n", v.Checker, v.Level)
	const maxShown = 5
	for i, a := range v.Anomalies {
		if i == maxShown {
			fmt.Printf("  ... and %d more anomalies\n", len(v.Anomalies)-maxShown)
			break
		}
		fmt.Printf("  %s\n", a)
	}
	if v.Detail != "" {
		fmt.Printf("  %s\n", v.Detail)
	}
	explainProfile(v)
}

// explainProfile renders the lattice profile carried by a profile-run
// report: the strongest satisfied level, every rung with its breaking
// witness, and the session guarantees. No-op for single-level reports.
func explainProfile(v checker.Report) {
	if v.StrongestLevel == "" {
		return
	}
	fmt.Printf("strongest level satisfied: %s\n", v.StrongestLevel)
	for i := len(v.Rungs) - 1; i >= 0; i-- {
		r := v.Rungs[i]
		if r.OK {
			fmt.Printf("  %-6s ok\n", r.Level)
		} else {
			fmt.Printf("  %-6s VIOLATED: %s\n", r.Level, r.Witness)
		}
	}
	for _, g := range v.Guarantees {
		if g.OK {
			fmt.Printf("  %-6s ok\n", g.Guarantee)
		} else {
			fmt.Printf("  %-6s VIOLATED: %s\n", g.Guarantee, g.Witness)
		}
	}
}

// runStreaming verifies the run online, reporting the violation at the
// commit that introduced it.
func runStreaming(store *kv.Store, w *workload.Workload, retries int, lvl core.Level, out string, timeout time.Duration, window, shardN int, jsonReport bool) {
	if lvl == core.SSER {
		fatalf("-stream supports SER and SI (SSER needs the full real-time order); use the batch checker")
	}
	ctx, cancel := verifyContext(timeout)
	defer cancel()
	res := runner.RunStream(ctx, store, w, runner.Config{Retries: retries, Window: window, Shard: shardN}, lvl)
	if res.Err != nil {
		infof("run cut short: %v\n", res.Err)
	}
	if jsonReport {
		// Save first: the report going to stdout must not skip -out.
		if out != "" {
			if err := history.SaveFile(out, res.H); err != nil {
				fatalf("save: %v", err)
			}
			infof("saved history to %s\n", out)
		}
		rep := checker.ReportFromResult("mtc-incremental", res.Verdict)
		rep.ShardComponents = res.Shards
		emitJSONReport(rep)
		if !res.Verdict.OK {
			os.Exit(1)
		}
		return
	}
	infof("history: %d committed, %d aborted (abort rate %.1f%%)\n",
		res.Committed, res.Aborted, res.AbortRate()*100)
	if res.Shards > 0 {
		infof("sharded verification: %d key-disjoint components, %d workers\n", res.Shards, shardN)
	}
	if window > 0 {
		infof("windowed verification: window %d, %d txns compacted over %d epochs\n",
			window, res.Verdict.CompactedTxns, res.Verdict.CompactedEpochs)
	}
	if out != "" {
		if err := history.SaveFile(out, res.H); err != nil {
			fatalf("save: %v", err)
		}
		infof("saved history to %s\n", out)
	}
	if !res.Verdict.OK {
		if res.ViolationAt > 0 {
			fmt.Printf("violation detected online at transaction %d of the stream", res.ViolationAt)
			if res.EarlyAborted {
				fmt.Printf(" (run aborted early)")
			}
			fmt.Println()
		} else {
			fmt.Println("violation detected at stream end (unresolved read)")
		}
	}
	fmt.Println(res.Verdict.Explain())
	if !res.Verdict.OK {
		os.Exit(1)
	}
}

// buildStore returns the store (faulty when a bug is requested) and the
// level to check (the bug's claimed level overrides -level).
func buildStore(lvl core.Level, bug string, seed int64) (*kv.Store, core.Level) {
	if bug == "" {
		mode := kv.ModeSI
		switch lvl {
		case core.SER, core.SSER:
			mode = kv.ModeSerializable
		}
		return kv.NewStore(mode), lvl
	}
	b := faults.BugByName(bug)
	if b == nil {
		fatalf("unknown bug %q; use -bugs to list", bug)
	}
	infof("injecting %s (%s, violates %s)\n", b.Name, b.Anomaly, b.Claimed)
	return b.NewStore(seed), b.Claimed
}

func runLWTPipeline(store *kv.Store, sessions, txns int, seed int64) {
	res := runner.RunLWT(store, runner.LWTConfig{
		Sessions: sessions, OpsPerSession: txns, Keys: 4, Seed: seed,
	})
	fmt.Printf("history: %d successful LWT ops, %d failed CAS attempts\n", res.Succeeded, res.Failed)
	r := core.VLLWT(res.Ops)
	if r.OK {
		fmt.Println("history satisfies SSER (linearizable)")
		return
	}
	fmt.Printf("history VIOLATES SSER on %s: %s\n", r.Key, r.Reason)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mtc: "+format+"\n", args...)
	os.Exit(2)
}
