// codec_bench_test.go benchmarks history decoding across wire codecs on
// the same 100k-transaction corpus. These are the acceptance numbers of
// the MTCB binary codec: full decode to an in-memory history must run at
// least 3x faster than NDJSON with at least 5x fewer allocations, and
// the arena-backed frame path used by server sessions must amortize
// per-batch allocation further still. CI gates the ratios (see the
// bench job) so a regression in the binary hot path fails the build.
package main

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"mtc/internal/history"
)

const codecBenchTxns = 100_000

// codecCorpus builds one deterministic 100k-txn clean RMW history and
// its NDJSON and MTCB encodings, shared across benchmark iterations.
var codecCorpus = sync.OnceValue(func() struct {
	h      *history.History
	ndjson []byte
	mtcb   []byte
} {
	const (
		keys     = 512
		sessions = 16
	)
	keyNames := make([]history.Key, keys)
	for i := range keyNames {
		keyNames[i] = history.Key(fmt.Sprintf("acct%04d", i))
	}
	b := history.NewBuilder(keyNames...)
	latest := make([]history.Value, keys)
	next := history.Value(1)
	for j := 0; j < codecBenchTxns; j++ {
		k := j % keys
		b.Txn(j%sessions,
			history.R(keyNames[k], latest[k]),
			history.W(keyNames[k], next),
		)
		latest[k] = next
		next++
	}
	h := b.Build()
	var nb, mb bytes.Buffer
	if err := history.WriteNDJSON(&nb, h); err != nil {
		panic(err)
	}
	if err := history.WriteMTCB(&mb, h); err != nil {
		panic(err)
	}
	return struct {
		h      *history.History
		ndjson []byte
		mtcb   []byte
	}{h, nb.Bytes(), mb.Bytes()}
})

// BenchmarkDecode100kNDJSON is the text baseline: one reflect-driven
// JSON decode per transaction line.
func BenchmarkDecode100kNDJSON(b *testing.B) {
	c := codecCorpus()
	b.SetBytes(int64(len(c.ndjson)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := history.ReadNDJSON(bytes.NewReader(c.ndjson))
		if err != nil {
			b.Fatal(err)
		}
		if len(h.Txns) != len(c.h.Txns) {
			b.Fatalf("decoded %d txns, want %d", len(h.Txns), len(c.h.Txns))
		}
	}
}

// BenchmarkDecode100kMTCB decodes the binary twin straight into a
// columnar index — the path fabric workers take on dispatch.
func BenchmarkDecode100kMTCB(b *testing.B) {
	c := codecCorpus()
	b.SetBytes(int64(len(c.mtcb)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := history.ReadMTCBIndexed(bytes.NewReader(c.mtcb))
		if err != nil {
			b.Fatal(err)
		}
		if h := ix.History(); len(h.Txns) != len(c.h.Txns) {
			b.Fatalf("decoded %d txns, want %d", len(h.Txns), len(c.h.Txns))
		}
	}
}

// BenchmarkSessionIngestArena replays the corpus as MTCB batch frames
// through one arena-backed frame reader per frame, the way
// POST /v1/sessions/{id}/batch ingests — op storage and key strings are
// shared across every frame of a session.
func BenchmarkSessionIngestArena(b *testing.B) {
	c := codecCorpus()
	const frameTxns = 1 << 10
	// Pre-slice the corpus into frames once.
	var frames [][]byte
	for lo := 0; lo < len(c.h.Txns); lo += frameTxns {
		hi := lo + frameTxns
		if hi > len(c.h.Txns) {
			hi = len(c.h.Txns)
		}
		var buf bytes.Buffer
		bw, err := history.NewBinaryWriter(&buf, 0)
		if err != nil {
			b.Fatal(err)
		}
		for i, t := range c.h.Txns[lo:hi] {
			t.ID = i
			if err := bw.WriteTxn(t); err != nil {
				b.Fatal(err)
			}
		}
		if err := bw.Close(); err != nil {
			b.Fatal(err)
		}
		frames = append(frames, buf.Bytes())
	}
	b.SetBytes(int64(len(c.mtcb)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena := history.NewIngestArena()
		total := 0
		for _, frame := range frames {
			fr, err := history.NewBinaryFrameReader(bytes.NewReader(frame), arena)
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, err := fr.Next(); err == io.EOF {
					break
				} else if err != nil {
					b.Fatal(err)
				}
				total++
			}
		}
		if total != len(c.h.Txns) {
			b.Fatalf("ingested %d txns, want %d", total, len(c.h.Txns))
		}
	}
}
