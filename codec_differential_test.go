// codec_differential_test.go property-tests wire-codec equivalence: a
// history round-tripped through JSON, NDJSON, or MTCB (plain or
// gzipped) and re-read via the content-sniffing ReadAuto must produce
// byte-for-byte the same verdict at every level — same OK bit, anomaly
// set, and first counterexample. The corpus mixes clean and
// fault-injected executions so both accepting and rejecting paths are
// exercised through every codec.
package main

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"reflect"
	"sort"
	"testing"

	"mtc/internal/core"
	"mtc/internal/faults"
	"mtc/internal/graph"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

// codecs is the encode axis of the differential: every saved-history
// wire format, each also wrapped in gzip to exercise the sniffing path.
var codecs = []struct {
	name string
	enc  func(io.Writer, *history.History) error
}{
	{"json", history.WriteJSON},
	{"ndjson", history.WriteNDJSON},
	{"mtcb", history.WriteMTCB},
}

// codecVerdict summarizes one check for cross-codec comparison.
type codecVerdict struct {
	OK        bool
	Txns      int
	Anomalies []history.Anomaly
	Cycle     []graph.Edge
}

func checkDecoded(h *history.History, lvl core.Level) codecVerdict {
	r := core.Check(h, lvl)
	return codecVerdict{OK: r.OK, Txns: len(h.Txns), Anomalies: canonAnomalies(r.Anomalies), Cycle: r.Cycle}
}

// roundTrip encodes h with enc (optionally gzipped) and decodes it back
// through ReadAuto.
func roundTrip(t *testing.T, h *history.History, enc func(io.Writer, *history.History) error, zip bool) *history.History {
	t.Helper()
	var buf bytes.Buffer
	if err := enc(&buf, h); err != nil {
		t.Fatalf("encode: %v", err)
	}
	raw := buf.Bytes()
	if zip {
		var zb bytes.Buffer
		zw := gzip.NewWriter(&zb)
		if _, err := zw.Write(raw); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		raw = zb.Bytes()
	}
	got, err := history.ReadAuto(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadAuto: %v", err)
	}
	return got
}

// TestDifferentialCodecs replays a mixed clean/faulty corpus through
// every codec x gzip combination and demands verdict equality with the
// in-memory original at SER and SI.
func TestDifferentialCodecs(t *testing.T) {
	var bugs []faults.Bug
	for _, b := range faults.Bugs() {
		if !b.LWT {
			bugs = append(bugs, b)
		}
	}
	sort.Slice(bugs, func(i, j int) bool { return bugs[i].Name < bugs[j].Name })

	histories := 0
	check := func(h *history.History, tag string) {
		histories++
		for _, lvl := range []core.Level{core.SER, core.SI} {
			want := checkDecoded(h, lvl)
			for _, c := range codecs {
				for _, zip := range []bool{false, true} {
					name := c.name
					if zip {
						name += ".gz"
					}
					got := checkDecoded(roundTrip(t, h, c.enc, zip), lvl)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("%s/%s/%s: verdict diverges after round-trip\ncodec:    %+v\noriginal: %+v",
							tag, name, lvl, got, want)
					}
				}
			}
		}
	}

	for seed := int64(1); seed <= 10; seed++ {
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 4, Txns: 8, Objects: 4,
			Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.25,
			Tenants: int(seed%3) + 1,
		})
		for _, mode := range []kv.Mode{kv.ModeSerializable, kv.ModeSI} {
			check(runner.Run(kv.NewStore(mode), w, runner.Config{Retries: 2}).H, mode.String())
		}
		b := bugs[int(seed)%len(bugs)]
		check(runner.Run(b.NewStore(seed), w, runner.Config{Retries: 2}).H, b.Name)
	}
	if histories == 0 {
		t.Fatal("no histories generated")
	}
	t.Logf("codec differential over %d histories x %d codecs x 2 compressions x 2 levels",
		histories, len(codecs))
}

// TestDifferentialStreamCodecs drives the same corpus through the two
// streaming decoders (NDJSON StreamWriter and MTCB BinaryWriter, codec
// sniffed by NewAutoStreamReader) into the online checker and compares
// against the batch verdict on the materialized history.
func TestDifferentialStreamCodecs(t *testing.T) {
	streams := []struct {
		name string
		enc  func(io.Writer, *history.History) error
	}{
		{"ndjson-stream", func(buf io.Writer, h *history.History) error {
			sw, err := history.NewStreamWriter(buf, len(h.Sessions))
			if err != nil {
				return err
			}
			for _, txn := range h.Txns {
				if err := sw.WriteTxn(txn); err != nil {
					return err
				}
			}
			return sw.Flush()
		}},
		{"mtcb-stream", func(buf io.Writer, h *history.History) error {
			bw, err := history.NewBinaryWriter(buf, len(h.Sessions))
			if err != nil {
				return err
			}
			for _, txn := range h.Txns {
				if err := bw.WriteTxn(txn); err != nil {
					return err
				}
			}
			return bw.Close()
		}},
	}
	for seed := int64(1); seed <= 6; seed++ {
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 3, Txns: 6, Objects: 3,
			Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.25,
		})
		h := runner.Run(kv.NewStore(kv.ModeSerializable), w, runner.Config{Retries: 2}).H
		want := core.Check(h, core.SER)
		for _, s := range streams {
			var buf bytes.Buffer
			if err := s.enc(&buf, h); err != nil {
				t.Fatalf("%s: encode: %v", s.name, err)
			}
			sr, err := history.NewAutoStreamReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s: open: %v", s.name, err)
			}
			got, err := core.CheckStreamCtx(context.Background(), sr, core.SER, 0, 0)
			if err != nil {
				t.Fatalf("%s: stream check: %v", s.name, err)
			}
			if got.OK != want.OK {
				t.Fatalf("seed %d %s: stream OK=%v, batch OK=%v", seed, s.name, got.OK, want.OK)
			}
			if !reflect.DeepEqual(canonAnomalies(got.Anomalies), canonAnomalies(want.Anomalies)) {
				t.Fatalf("seed %d %s: anomaly sets diverge\nstream: %v\nbatch:  %v",
					seed, s.name, got.Anomalies, want.Anomalies)
			}
		}
	}
}
