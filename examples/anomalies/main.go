// Anomalies renders Table I / Figure 5: the 14 well-documented isolation
// anomalies, each expressed as a mini-transaction history, with the
// verdict every strong-isolation checker reaches on it. WriteSkew is the
// single anomaly admitted by SI — exactly the SER/SI gap.
package main

import (
	"fmt"

	"mtc/internal/core"
	"mtc/internal/history"
)

func main() {
	fmt.Printf("%-28s %-10s %6s %6s %6s\n", "anomaly", "pre-check", "SSER", "SER", "SI")
	for _, f := range history.Fixtures() {
		pre := "-"
		if f.PreCheck {
			pre = f.AnomalyAt.String()
			if len(pre) > 10 {
				pre = pre[:10]
			}
		}
		fmt.Printf("%-28s %-10s %6s %6s %6s\n", f.Name, pre,
			mark(core.CheckSSER(f.H)), mark(core.CheckSER(f.H)), mark(core.CheckSI(f.H)))
	}

	fmt.Println("\ncounterexamples (dependency-level anomalies):")
	for _, name := range []string{"LostUpdate", "WriteSkew", "LongFork"} {
		f := history.FixtureByName(name)
		fmt.Printf("\n%s:\n", name)
		for i := range f.H.Txns {
			fmt.Printf("  %s\n", f.H.Txns[i].String())
		}
		if r := core.CheckSER(f.H); !r.OK {
			fmt.Printf("  SER: %s\n", r.Explain())
		}
		if r := core.CheckSI(f.H); !r.OK {
			fmt.Printf("  SI:  %s\n", r.Explain())
		} else {
			fmt.Println("  SI:  satisfied")
		}
	}
}

// mark renders a verdict: "viol" when the checker rejects, "ok" otherwise.
func mark(r core.Result) string {
	if r.OK {
		return "ok"
	}
	return "viol"
}
