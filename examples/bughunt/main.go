// Bughunt rediscovers the six production isolation bugs of Table II on
// the fault-injected substrate: for each bug it stresses the store with
// randomized mini-transaction (or lightweight-transaction) workloads until
// the claimed isolation level is violated, then prints the counterexample
// — the same workflow the paper uses against MariaDB Galera, MongoDB,
// Dgraph, PostgreSQL and Cassandra.
package main

import (
	"fmt"
	"time"

	"mtc/internal/core"
	"mtc/internal/faults"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

func main() {
	for _, bug := range faults.Bugs() {
		fmt.Printf("=== %s: %s (claims %s) ===\n", bug.Name, bug.Anomaly, bug.Claimed)
		fmt.Printf("    report: %s\n", bug.Report)
		start := time.Now()
		if bug.LWT {
			huntLWT(bug)
		} else {
			hunt(bug)
		}
		fmt.Printf("    elapsed: %.2fs\n\n", time.Since(start).Seconds())
	}
}

// hunt stress-tests the bug's store with MT workloads over increasing
// seeds until the claimed level is violated.
func hunt(bug faults.Bug) {
	for seed := int64(1); seed <= 20; seed++ {
		store := bug.NewStore(seed)
		plan := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 150, Objects: 3,
			Dist: workload.Exponential, Seed: seed, ReadOnlyFrac: 0.3,
		})
		res := runner.Run(store, plan, runner.Config{Retries: 4})
		verdict := core.Check(res.H, bug.Claimed)
		if verdict.OK {
			continue
		}
		fmt.Printf("    BUG FOUND on seed %d after %d committed txns\n", seed, res.Committed)
		fmt.Printf("    %s\n", indent(verdict.Explain()))
		return
	}
	fmt.Println("    bug did not manifest in 20 rounds (try more seeds)")
}

// huntLWT does the same through the lightweight-transaction client and the
// linear-time linearizability checker.
func huntLWT(bug faults.Bug) {
	for seed := int64(1); seed <= 20; seed++ {
		store := bug.NewStore(seed)
		res := runner.RunLWT(store, runner.LWTConfig{
			Sessions: 8, OpsPerSession: 50, Keys: 2, Seed: seed,
		})
		verdict := core.VLLWT(res.Ops)
		if verdict.OK {
			continue
		}
		fmt.Printf("    BUG FOUND on seed %d after %d successful LWT ops\n", seed, res.Succeeded)
		fmt.Printf("    on key %s: %s\n", verdict.Key, verdict.Reason)
		return
	}
	fmt.Println("    bug did not manifest in 20 rounds (try more seeds)")
}

func indent(s string) string {
	out := ""
	for i, line := range splitLines(s) {
		if i > 0 {
			out += "\n    "
		}
		out += line
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			lines = append(lines, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(lines, cur)
}
