// LWT demonstrates Section IV-E: checking strict serializability of
// lightweight-transaction (compare-and-set) histories — the Cassandra /
// etcd data model — in linear time with VL-LWT, and cross-validates the
// verdicts against the Porcupine-style WGL linearizability checker while
// comparing their costs as concurrency rises.
package main

import (
	"fmt"
	"time"

	"mtc/internal/core"
	"mtc/internal/kv"
	"mtc/internal/porcupine"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

func main() {
	// Part 1: a real concurrent CAS run against the store.
	store := kv.NewStore(kv.ModeSI)
	res := runner.RunLWT(store, runner.LWTConfig{
		Sessions: 12, OpsPerSession: 200, Keys: 4, Seed: 7,
	})
	fmt.Printf("executed %d successful CAS/insert ops (%d failed CAS attempts retried)\n",
		res.Succeeded, res.Failed)

	verdict := core.VLLWT(res.Ops)
	fmt.Printf("VL-LWT: linearizable=%v\n", verdict.OK)
	for key, chain := range verdict.Chains {
		fmt.Printf("  %s: chain of %d operations\n", key, len(chain))
	}

	// Part 2: synthetic histories with controlled concurrency, comparing
	// VL-LWT (expected O(n)) against Porcupine's WGL search.
	fmt.Println("\nconcurrency sweep on synthetic LWT histories (5000 ops):")
	fmt.Printf("%-14s %12s %12s\n", "concurrent", "VL-LWT", "Porcupine")
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		ops := workload.GenerateLWT(workload.LWTConfig{
			Sessions: 20, TxnsPerSession: 250, ConcurrentFrac: frac, Keys: 1, Seed: 11,
		})
		t0 := time.Now()
		okA := core.VLLWT(ops).OK
		dA := time.Since(t0)
		t0 = time.Now()
		okB := porcupine.Check(ops)
		dB := time.Since(t0)
		if okA != okB {
			panic("checkers disagree")
		}
		fmt.Printf("%-14s %12s %12s\n",
			fmt.Sprintf("%.0f%%", frac*100), dA.Round(time.Microsecond), dB.Round(time.Microsecond))
	}

	// Part 3: a violation - the non-linearizable history of Figure 4b.
	bad := []core.LWT{
		{ID: 0, Key: "x", Kind: core.LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 2, Key: "x", Kind: core.LWTRW, Read: 1, Write: 2, Start: 3, Finish: 5},
		{ID: 1, Key: "x", Kind: core.LWTRW, Read: 0, Write: 1, Start: 7, Finish: 10},
		{ID: 3, Key: "x", Kind: core.LWTRW, Read: 2, Write: 3, Start: 6, Finish: 9},
	}
	r := core.VLLWT(bad)
	fmt.Printf("\nFigure 4b history: linearizable=%v (%s)\n", r.OK, r.Reason)
}
