// Quickstart: the end-to-end black-box isolation checking workflow of
// Figure 2 in about thirty lines — generate a mini-transaction workload,
// execute it against a snapshot-isolated store with concurrent client
// sessions, and verify the collected history with the linear-time MTC-SI
// checker.
package main

import (
	"fmt"

	"mtc/internal/core"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

func main() {
	// 1. Plan a mini-transaction workload: 8 sessions x 100 MTs over 20
	//    objects with zipfian (skewed) access.
	plan := workload.GenerateMT(workload.MTConfig{
		Sessions: 8,
		Txns:     100,
		Objects:  20,
		Dist:     workload.Zipfian,
		Seed:     42,
	})

	// 2. Execute it against an in-memory MVCC store running snapshot
	//    isolation, retrying aborted transactions up to 8 times.
	store := kv.NewStore(kv.ModeSI)
	res := runner.Run(store, plan, runner.Config{Retries: 8})
	fmt.Printf("executed %d transactions: %d committed, %d aborted (%.1f%% abort rate)\n",
		res.Attempts, res.Committed, res.Aborted, res.AbortRate()*100)

	// 3. Verify the history against SI. The MT read-modify-write pattern
	//    plus unique values make this a Theta(n) check.
	verdict := core.CheckSI(res.H)
	fmt.Println(verdict.Explain())

	// The same history can be checked against stronger levels; an SI
	// store may legitimately fail SER (write skew is allowed under SI).
	fmt.Printf("SER verdict: %v, SSER verdict: %v\n",
		core.CheckSER(res.H).OK, core.CheckSSER(res.H).OK)
}
