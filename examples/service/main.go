// Service demonstrates checking-as-a-service (the paper's IsoVista
// future-work direction) on the v1 async API: it starts the mtc-serve
// HTTP handler in-process, generates a history from the fault-injected
// MariaDB-Galera-like store, submits it as a job through the pkg/client
// SDK, follows the job's event stream, and prints the structured report
// with its counterexample — the workflow a CI pipeline or database
// vendor would script against a deployed checker.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/mtcserve"
	"mtc/internal/runner"
	"mtc/internal/workload"
	"mtc/pkg/client"
)

func main() {
	srv := httptest.NewServer(mtcserve.Handler())
	defer srv.Close()
	fmt.Printf("checking service listening at %s\n\n", srv.URL)
	c := client.New(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	infos, err := c.Checkers(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET /v1/checkers -> %d engines registered\n\n", len(infos))

	// A healthy history first: submit -> wait -> verdict in one call.
	h := history.SerialHistory(50, "x", "y")
	fmt.Println("POST /v1/jobs  (healthy serial history, level SER)")
	rep, err := c.Check(ctx, client.JobRequest{Level: "SER", History: h})
	if err != nil {
		log.Fatal(err)
	}
	printJSON(rep)

	// Now hunt the lost-update bug and submit the offending history,
	// following the job's NDJSON event stream this time.
	bug := faults.BugByName("mariadb-galera-10.7.3")
	fmt.Printf("\nhunting %s (%s, claims %s)...\n", bug.Name, bug.Anomaly, bug.Claimed)
	for seed := int64(1); seed <= 20; seed++ {
		store := bug.NewStore(seed)
		plan := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 120, Objects: 2,
			Dist: workload.Uniform, Seed: seed,
		})
		res := runner.Run(store, plan, runner.Config{Retries: 4})
		job, err := c.SubmitJob(ctx, client.JobRequest{Level: "SI", History: res.H})
		if err != nil {
			log.Fatal(err)
		}
		var done client.JobEvent
		if err := c.StreamEvents(ctx, job.ID, func(ev client.JobEvent) error {
			done = ev
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		if done.State == client.JobDone && done.Report != nil && !done.Report.OK {
			fmt.Printf("\njob %s (seed %d, %d committed txns) -> VIOLATION\n", job.ID, seed, res.Committed)
			printJSON(done.Report)
			break
		}
	}
}

func printJSON(v any) {
	b, _ := json.MarshalIndent(v, "", "  ")
	fmt.Println(string(b))
}
