// Service demonstrates checking-as-a-service (the paper's IsoVista
// future-work direction): it starts the mtc-serve HTTP API in-process,
// generates a history from the fault-injected MariaDB-Galera-like store,
// submits it over HTTP, and prints the JSON verdict with its
// counterexample — the workflow a CI pipeline or database vendor would
// script against a deployed checker.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"

	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/mtcserve"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

func main() {
	srv := httptest.NewServer(mtcserve.Handler())
	defer srv.Close()
	fmt.Printf("checking service listening at %s\n\n", srv.URL)

	// A healthy history first.
	h := history.SerialHistory(50, "x", "y")
	fmt.Println("POST /check?level=SER  (healthy serial history)")
	fmt.Println(indent(postHistory(srv.URL+"/check?level=SER", h)))

	// Now hunt the lost-update bug and submit the offending history.
	bug := faults.BugByName("mariadb-galera-10.7.3")
	fmt.Printf("\nhunting %s (%s, claims %s)...\n", bug.Name, bug.Anomaly, bug.Claimed)
	for seed := int64(1); seed <= 20; seed++ {
		store := bug.NewStore(seed)
		plan := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 120, Objects: 2,
			Dist: workload.Uniform, Seed: seed,
		})
		res := runner.Run(store, plan, runner.Config{Retries: 4})
		body := postHistory(srv.URL+"/check?level=SI", res.H)
		if bytes.Contains([]byte(body), []byte(`"ok": false`)) {
			fmt.Printf("\nPOST /check?level=SI  (seed %d, %d committed txns)\n", seed, res.Committed)
			fmt.Println(indent(body))
			break
		}
	}

	// The fixtures endpoint serves the Table-I catalogue.
	fmt.Println("\nGET /fixtures/LostUpdate?level=SI")
	resp, err := http.Get(srv.URL + "/fixtures/LostUpdate?level=SI")
	if err != nil {
		log.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println(indent(string(b)))
}

// postHistory submits a history as JSON and returns the response body.
func postHistory(url string, h *history.History) string {
	var buf bytes.Buffer
	if err := history.WriteJSON(&buf, h); err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

func indent(s string) string {
	out := "  "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "  "
		}
	}
	return out
}
