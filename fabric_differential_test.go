// fabric_differential_test.go property-tests the distributed checking
// fabric against single-node sharded verification: on a sample of the
// differential corpus (clean and fault-injected, MT and GT shaped,
// mixed tenant counts), a coordinator dispatching components across
// three workers must fold exactly the verdict shard.Check computes on
// one box — same OK bit, counts, anomaly set (external ids), and
// counterexample cycle. Only timings and prose may differ.
package main

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"mtc/internal/api"
	"mtc/internal/checker"
	"mtc/internal/core"
	"mtc/internal/fabric"
	"mtc/internal/faults"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/workload"

	hist "mtc/internal/history"
	shardpkg "mtc/internal/shard"
)

// fabricEngines is the engine/level axis of the fabric differential.
var fabricEngines = []struct {
	name string
	lvl  checker.Level
}{
	{"mtc", core.SER},
	{"mtc", core.SI},
	{"mtc-incremental", core.SI},
}

// fabricCheck folds one history through an in-process coordinator with
// three simulated workers and compares against shard.Check.
func fabricCheck(t *testing.T, c *fabric.Coordinator, workers []api.WorkerLease, jobID, name string, lvl checker.Level, h *hist.History, tag string) {
	t.Helper()
	ctx := context.Background()
	if err := c.Submit(jobID, name, h, checker.Options{Level: lvl}); err != nil {
		t.Fatalf("%s/%s/%s: submit: %v", tag, name, lvl, err)
	}
	// Round-robin the workers over the queues until the plan drains;
	// rotation exercises placement and stealing across all three.
	for idle := 0; idle < len(workers); {
		w := workers[0]
		workers = append(workers[1:], w)
		task, err := c.Pull(w.ID)
		if err != nil {
			t.Fatalf("%s: pull: %v", tag, err)
		}
		if task == nil {
			idle++
			continue
		}
		idle = 0
		// A worker that advertised the mtcb codec receives the component
		// as a binary payload; decode it straight to a columnar index the
		// way fabric.RunWorker does. The mixed fleet below exercises both
		// payload kinds within every job.
		h := task.History
		opts := checker.Options{Level: checker.Level(task.Level)}
		if h == nil {
			ix, err := hist.ReadMTCBIndexed(bytes.NewReader(task.HistoryMTCB))
			if err != nil {
				t.Fatalf("%s: decoding mtcb payload for %s/%d: %v", tag, task.Job, task.Component, err)
			}
			h = ix.History()
			opts.Index = ix
		}
		rep, err := checker.Default.Run(ctx, task.Checker, h, opts)
		res := api.FabricResult{Job: task.Job, Component: task.Component, Epoch: task.Epoch}
		if err != nil {
			res.Error = err.Error()
		} else {
			res.Report = &rep
		}
		if accepted, err := c.PushResult(w.ID, res); err != nil || !accepted {
			t.Fatalf("%s: push %s/%d: accepted=%v err=%v", tag, task.Job, task.Component, accepted, err)
		}
	}
	got, err := c.Wait(ctx, jobID)
	if err != nil {
		t.Fatalf("%s/%s/%s: fabric job failed: %v", tag, name, lvl, err)
	}
	eng, err := checker.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := shardpkg.Check(ctx, eng, h, checker.Options{Level: lvl, Shard: 2})
	if err != nil {
		t.Fatalf("%s/%s/%s: single-node sharded run failed: %v", tag, name, lvl, err)
	}
	if got.OK != ref.OK || got.Edges != ref.Edges ||
		got.ShardComponents != ref.ShardComponents || got.Checker != ref.Checker || got.Level != ref.Level {
		t.Fatalf("%s/%s/%s: fabric verdict diverges\nfabric: %+v\nlocal:  %+v", tag, name, lvl, got, ref)
	}
	// Transaction counts always agree for the batch engines; the
	// incremental engine stops its replay at the first violation, and on
	// single-component histories shard.Check's direct-run shortcut keeps
	// that truncated count while the fabric always folds through Merge
	// (which reports the whole plan) — so compare only on clean verdicts.
	if batch := name != "mtc-incremental"; (batch || ref.OK) && got.Txns != ref.Txns {
		t.Fatalf("%s/%s/%s: txns %d, single-node sharded %d", tag, name, lvl, got.Txns, ref.Txns)
	}
	if !reflect.DeepEqual(canonAnomalies(got.Anomalies), canonAnomalies(ref.Anomalies)) {
		t.Fatalf("%s/%s/%s: anomaly sets diverge\nfabric: %v\nlocal:  %v", tag, name, lvl, got.Anomalies, ref.Anomalies)
	}
	if !reflect.DeepEqual(got.Cycle, ref.Cycle) {
		t.Fatalf("%s/%s/%s: counterexample cycles diverge\nfabric: %v\nlocal:  %v", tag, name, lvl, got.Cycle, ref.Cycle)
	}
	if got.StrongestLevel != ref.StrongestLevel {
		t.Fatalf("%s/%s/%s: strongest level %q vs %q", tag, name, lvl, got.StrongestLevel, ref.StrongestLevel)
	}
}

// TestDifferentialFabricVsSharded replays a sample of the differential
// corpus through the coordinator/worker fabric and asserts verdict
// equality with single-node sharded checking — the distributed
// correctness contract of the fabric.
func TestDifferentialFabricVsSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("fabric differential is slow under -short")
	}
	c, err := fabric.Open(filepath.Join(t.TempDir(), "fabric.wal"), fabric.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cerr := c.Close(); cerr != nil {
			t.Fatalf("close: %v", cerr)
		}
	}()
	// A mixed fleet: w2 negotiates the binary component codec, w1 and w3
	// stay on JSON — every multi-component job dispatches both payload
	// kinds and the fold must not care.
	workers := []api.WorkerLease{
		c.Register(api.WorkerHello{Name: "w1"}),
		c.Register(api.WorkerHello{Name: "w2", Codecs: []string{"mtcb"}}),
		c.Register(api.WorkerHello{Name: "w3"}),
	}
	var bugs []faults.Bug
	for _, b := range faults.Bugs() {
		if !b.LWT {
			bugs = append(bugs, b)
		}
	}
	histories, jobs := 0, 0
	check := func(h *hist.History, tag string) {
		for _, e := range fabricEngines {
			jobs++
			fabricCheck(t, c, workers, fmt.Sprintf("d%d", jobs), e.name, e.lvl, h, tag)
		}
		histories++
	}
	for seed := int64(1); seed <= 12; seed++ {
		tenants := int(seed%4) + 1
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 4, Txns: 6, Objects: 3,
			Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.25,
			Tenants: tenants,
		})
		for _, mode := range []kv.Mode{kv.ModeSerializable, kv.ModeSI} {
			check(runner.Run(kv.NewStore(mode), w, runner.Config{Retries: 2}).H, mode.String())
		}
		wg := workload.GenerateGT(workload.GTConfig{
			Sessions: 4, Txns: 6, Objects: 3, OpsPerTxn: 3, Seed: seed,
			Tenants: tenants,
		})
		check(runner.Run(kv.NewStore(kv.ModeSerializable), wg, runner.Config{Retries: 2}).H, "gt")
		wf := workload.GenerateMT(workload.MTConfig{
			Sessions: 4, Txns: 8, Objects: 2,
			Dist: workload.Exponential, Seed: seed, ReadOnlyFrac: 0.25,
			Tenants: tenants,
		})
		for i := 0; i < 2; i++ {
			b := bugs[(int(seed)+i)%len(bugs)]
			check(runner.Run(b.NewStore(seed), wf, runner.Config{Retries: 2}).H, b.Name)
		}
	}
	t.Logf("folded %d fabric jobs over %d histories across %d engine/level pairs", jobs, histories, len(fabricEngines))
}
