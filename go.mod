module mtc

go 1.23.0
