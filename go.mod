module mtc

go 1.24
