// incremental_bench_test.go benchmarks the online incremental checker
// against the batch MTC algorithms on a 10k-transaction history (the
// acceptance bar of the unified-checker refactor), plus the per-commit
// streaming cost of feeding an Incremental one transaction at a time.
package main

import (
	"context"
	"sort"
	"sync"
	"testing"

	"mtc/internal/core"
	"mtc/internal/graph"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/levels"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

var (
	bigOnce sync.Once
	bigHist *history.History // >= 10k committed txns, serializable store
)

func setupBig(b *testing.B) {
	bigOnce.Do(func() {
		s := kv.NewStore(kv.ModeSerializable)
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 10, Txns: 1200, Objects: 200,
			Dist: workload.Zipfian, Seed: 5, ReadOnlyFrac: 0.2,
		})
		bigHist = runner.Run(s, w, runner.Config{Retries: 8, DropAborted: true}).H
	})
	if len(bigHist.Txns) < 10000 {
		b.Fatalf("big history too small: %d txns", len(bigHist.Txns))
	}
}

func BenchmarkBatchSER10k(b *testing.B) {
	setupBig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.CheckSER(bigHist).OK {
			b.Fatal("valid history rejected")
		}
	}
}

func BenchmarkIncrementalSER10k(b *testing.B) {
	setupBig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.CheckIncremental(bigHist, core.SER).OK {
			b.Fatal("valid history rejected")
		}
	}
}

func BenchmarkBatchSI10k(b *testing.B) {
	setupBig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.CheckSI(bigHist).OK {
			b.Fatal("valid history rejected")
		}
	}
}

// BenchmarkProfile10k measures the full lattice profile — every
// isolation level plus the session guarantees — on the same clean 10k
// history. On a clean history the implication chain short-circuits
// after the SER cycle check, so the whole profile must stay within 1.5×
// of BenchmarkBatchSER10k alone; CI gates that ratio (docs/ci.md).
func BenchmarkProfile10k(b *testing.B) {
	setupBig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof, err := levels.Profile(context.Background(), bigHist, levels.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if prof.Strongest != core.SSER && prof.Strongest != core.SER {
			b.Fatalf("valid history profiled at %s", prof.Strongest)
		}
	}
}

func BenchmarkIncrementalSI10k(b *testing.B) {
	setupBig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.CheckIncremental(bigHist, core.SI).OK {
			b.Fatal("valid history rejected")
		}
	}
}

// BenchmarkIndexedDeps10k measures pure dependency derivation over a
// prebuilt columnar index: merge-joins over interned key columns with
// postings lookups, no per-transaction map probes. The allocs/op this
// reports is the point of the columnar layout — a handful of flat
// scratch arenas per call, far below one allocation per transaction —
// and the CI bench gate holds it there (see bench/baseline.json).
func BenchmarkIndexedDeps10k(b *testing.B) {
	setupBig(b)
	ix := history.NewIndex(bigHist)
	edges := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		edges = 0
		core.DeriveDeps(ix, func(graph.Edge) { edges++ })
	}
	b.StopTimer()
	if edges == 0 {
		b.Fatal("no dependency edges derived")
	}
	b.ReportMetric(float64(edges), "edges")
}

// BenchmarkIncrementalPerCommit measures the amortized cost of one Add on
// a live stream (commit order), the number that bounds checker-side
// latency under production traffic.
func BenchmarkIncrementalPerCommit(b *testing.B) {
	setupBig(b)
	keys := make([]history.Key, 0, len(bigHist.Txns[0].Ops))
	for _, op := range bigHist.Txns[0].Ops {
		keys = append(keys, op.Key)
	}
	// Feed in commit order, as a live stream delivers.
	order := make([]int, 0, len(bigHist.Txns)-1)
	for j := 1; j < len(bigHist.Txns); j++ {
		order = append(order, j)
	}
	sort.Slice(order, func(a, c int) bool {
		return bigHist.Txns[order[a]].Finish < bigHist.Txns[order[c]].Finish
	})
	b.ResetTimer()
	for i := 0; i < b.N; {
		inc := core.NewIncremental(core.SER)
		inc.InitTxn(keys...)
		for _, j := range order {
			if vio := inc.Add(bigHist.Txns[j]); vio != nil {
				b.Fatal("valid stream rejected")
			}
			if i++; i >= b.N {
				break
			}
		}
	}
}
