// integration_test.go exercises the complete system across module
// boundaries: workload plan -> concurrent execution on the store ->
// history serialization round trip -> verification by every checker, on
// both healthy and fault-injected substrates, including the targeted
// anomaly-guided generator extension.
package main

import (
	"bytes"
	"testing"

	"mtc/internal/cobra"
	"mtc/internal/core"
	"mtc/internal/elle"
	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/npc"
	"mtc/internal/polysi"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

// TestPipelineHealthyStoreAllCheckersAgree runs the full Figure-2 workflow
// on a fault-free serializable store and demands unanimity: MTC, Cobra,
// PolySI and Elle's register mode must all accept, across a JSON
// serialization round trip.
func TestPipelineHealthyStoreAllCheckersAgree(t *testing.T) {
	s := kv.NewStore(kv.ModeSerializable)
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 6, Txns: 80, Objects: 10, Dist: workload.Hotspot, Seed: 11, ReadOnlyFrac: 0.25,
	})
	res := runner.Run(s, w, runner.Config{Retries: 8})
	if res.Committed == 0 {
		t.Fatal("no commits")
	}

	var buf bytes.Buffer
	if err := history.WriteJSON(&buf, res.H); err != nil {
		t.Fatal(err)
	}
	h, err := history.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if r := core.CheckSSER(h); !r.OK {
		t.Fatalf("MTC-SSER: %s", r.Explain())
	}
	if r := core.CheckSER(h); !r.OK {
		t.Fatalf("MTC-SER: %s", r.Explain())
	}
	if r := core.CheckSI(h); !r.OK {
		t.Fatalf("MTC-SI: %s", r.Explain())
	}
	if r := cobra.CheckSER(h); !r.OK {
		t.Fatalf("cobra: %+v", r)
	}
	if r := polysi.CheckSI(h); !r.OK {
		t.Fatalf("polysi: %+v", r)
	}
	if r := elle.CheckRWRegister(h, elle.SER); !r.OK {
		t.Fatalf("elle-wr: %s", r.Reason)
	}
}

// TestPipelineEveryBugCaughtByEveryApplicableChecker hunts each Table-II
// bug and cross-checks the verdict of the corresponding baseline.
func TestPipelineEveryBugCaughtByEveryApplicableChecker(t *testing.T) {
	for _, bug := range faults.Bugs() {
		if bug.LWT {
			continue // LWT checkers covered in runner/core tests
		}
		bug := bug
		t.Run(bug.Name, func(t *testing.T) {
			for seed := int64(1); seed <= 10; seed++ {
				s := bug.NewStore(seed)
				w := workload.GenerateMT(workload.MTConfig{
					Sessions: 8, Txns: 120, Objects: 3,
					Dist: workload.Exponential, Seed: seed, ReadOnlyFrac: 0.3,
				})
				h := runner.Run(s, w, runner.Config{Retries: 4}).H
				r := core.Check(h, bug.Claimed)
				if r.OK {
					continue
				}
				// MTC found it; the baseline for that level must agree.
				switch bug.Claimed {
				case core.SER:
					if cobra.CheckSER(h).OK {
						t.Fatalf("seed %d: cobra disagrees with MTC-SER", seed)
					}
				case core.SI:
					if polysi.CheckSI(h).OK {
						t.Fatalf("seed %d: polysi disagrees with MTC-SI", seed)
					}
				}
				return
			}
			t.Fatalf("%s never manifested in 10 seeds", bug.Name)
		})
	}
}

// TestTargetedGeneratorFindsBugsFaster compares the anomaly-guided
// generator against the uniform one on the hardest bug of the catalogue
// (write skew needs a precise two-key race): the targeted plan should
// detect it in at least as many trials.
func TestTargetedGeneratorFindsBugsFaster(t *testing.T) {
	bug := faults.BugByName("postgresql-12.3")
	trials := 12
	detect := func(targeted bool) int {
		hits := 0
		for seed := int64(1); seed <= int64(trials); seed++ {
			s := bug.NewStore(seed)
			var w *workload.Workload
			if targeted {
				w = workload.GenerateTargeted(workload.TargetedConfig{
					Sessions: 8, Txns: 60, Objects: 10, Seed: seed,
				})
			} else {
				w = workload.GenerateMT(workload.MTConfig{
					Sessions: 8, Txns: 60, Objects: 10,
					Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.25,
				})
			}
			h := runner.Run(s, w, runner.Config{Retries: 4}).H
			if !core.CheckSER(h).OK {
				hits++
			}
		}
		return hits
	}
	targeted, uniform := detect(true), detect(false)
	t.Logf("targeted %d/%d, uniform %d/%d", targeted, trials, uniform, trials)
	if targeted == 0 {
		t.Fatal("targeted generator found nothing")
	}
	if targeted < uniform {
		t.Fatalf("targeted (%d) should detect at least as often as uniform (%d)", targeted, uniform)
	}
}

// TestTargetedWorkloadValidOnHealthyStore guards against false positives:
// the aggressive plan must still verify clean on a correct store.
func TestTargetedWorkloadValidOnHealthyStore(t *testing.T) {
	s := kv.NewStore(kv.ModeSerializable)
	w := workload.GenerateTargeted(workload.TargetedConfig{
		Sessions: 8, Txns: 80, Objects: 6, Seed: 5,
	})
	res := runner.Run(s, w, runner.Config{Retries: 10})
	if r := core.CheckSSER(res.H); !r.OK {
		t.Fatalf("healthy store must pass SSER under targeted load: %s", r.Explain())
	}
	if err := history.ValidateMT(res.H); err != nil {
		t.Fatal(err)
	}
}

// TestTextFormatInteropAcrossCheckers writes a faulty history in the text
// format, reads it back, and confirms the verdict survives.
func TestTextFormatInteropAcrossCheckers(t *testing.T) {
	bug := faults.BugByName("mariadb-galera-10.7.3")
	for seed := int64(1); seed <= 10; seed++ {
		s := bug.NewStore(seed)
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 100, Objects: 2, Dist: workload.Uniform, Seed: seed,
		})
		h := runner.Run(s, w, runner.Config{Retries: 4}).H
		if core.CheckSI(h).OK {
			continue
		}
		var buf bytes.Buffer
		if err := history.WriteText(&buf, h); err != nil {
			t.Fatal(err)
		}
		h2, err := history.ReadText(&buf)
		if err != nil {
			t.Fatal(err)
		}
		r := core.CheckSI(h2)
		if r.OK {
			t.Fatal("verdict changed across text round trip")
		}
		return
	}
	t.Skip("lost update did not manifest; covered elsewhere")
}

// TestBruteForceSpotCheckOnStoreHistory cross-validates the polynomial
// checkers against the exponential reference on a real (small) store run.
func TestBruteForceSpotCheckOnStoreHistory(t *testing.T) {
	s := kv.NewStore(kv.ModeSerializable)
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 3, Txns: 5, Objects: 2, Dist: workload.Uniform, Seed: 3,
	})
	h := runner.Run(s, w, runner.Config{Retries: 5}).H
	if core.CheckSER(h).OK != npc.SerializableBrute(h) {
		t.Fatal("CheckSER disagrees with the brute-force reference")
	}
	if core.CheckSSER(h).OK != npc.StrictSerializableBrute(h) {
		t.Fatal("CheckSSER disagrees with the brute-force reference")
	}
}
