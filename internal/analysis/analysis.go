// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer runs over
// one type-checked package (a Pass) and reports position-anchored
// Diagnostics. The build image this repository grows in has no module
// proxy access, so the real x/tools module cannot be pulled in; the
// subset here — Analyzer, Pass, Reportf, a module-aware loader
// (load.go) and a `// want`-comment test harness (analysistest) — is
// shaped after the upstream API so the repo's analyzers port to the
// real framework by changing one import path if x/tools ever becomes
// available.
//
// The analyzers themselves live in the subpackages mapiter, ctxpoll,
// hotalloc and goroleak, and machine-check the invariants the repo's
// differential and race suites otherwise only catch after the fact:
// deterministic verdicts, prompt cancellation, allocation-free hot
// paths, and joined goroutines. cmd/mtc-lint is the multichecker
// driver; docs/lint.md documents each rule and the suppression policy.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"
)

// Analyzer is one lint rule: a name, a documentation string (the first
// sentence is the short description) and the per-package entry point.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	comments map[string]map[int][]string // filename -> line -> comment texts
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer})
}

// PkgTail returns the last element of an import path: the package-name
// key the repo-specific analyzers match their watched-package sets
// against ("mtc/internal/core" and an analysistest package "core" both
// key as "core").
func PkgTail(importPath string) string { return path.Base(importPath) }

// commentIndex builds the per-line comment lookup on first use.
func (p *Pass) commentIndex() map[string]map[int][]string {
	if p.comments != nil {
		return p.comments
	}
	p.comments = make(map[string]map[int][]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := p.Fset.Position(c.Pos())
				m := p.comments[pos.Filename]
				if m == nil {
					m = make(map[int][]string)
					p.comments[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], c.Text)
			}
		}
	}
	return p.comments
}

// Suppressed reports whether a comment carrying marker (e.g.
// "mtc:nondeterministic-ok") sits on the same line as pos or on the
// line directly above it — the suppression convention documented in
// docs/lint.md. The marker must follow the directive-comment form
// "//mtc:name", optionally trailed by a justification.
func (p *Pass) Suppressed(pos token.Pos, marker string) bool {
	position := p.Fset.Position(pos)
	lines := p.commentIndex()[position.Filename]
	for _, l := range []int{position.Line, position.Line - 1} {
		for _, text := range lines[l] {
			if strings.Contains(text, "//"+marker) {
				return true
			}
		}
	}
	return false
}

// FuncAnnotated reports whether fd carries marker in its doc comment or
// on the line directly above its declaration ("//mtc:hotpath" opts a
// function into the hotalloc analyzer this way).
func (p *Pass) FuncAnnotated(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if strings.Contains(c.Text, "//"+marker) {
				return true
			}
		}
	}
	return p.Suppressed(fd.Pos(), marker)
}

// TestFile reports whether f sits in a _test.go file. The analyzers
// skip test files: the invariants they enforce (deterministic verdicts,
// cancellation, allocation budgets, joined goroutines) bind shipped
// code, and `go vet -vettool` — unlike the standalone driver — loads
// test files too.
func (p *Pass) TestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// WithStack walks root in depth-first order invoking fn with each node
// and the stack of its ancestors (outermost first, excluding n itself).
// Returning false prunes the subtree below n.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := fn(n, stack)
		if !ok {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// IsWaitGroupType reports whether t (or its pointee) is sync.WaitGroup.
func IsWaitGroupType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// PkgFuncCall reports whether call invokes a package-level function of
// one of the named packages (matched by import path tail, so "sort" and
// a vendored "x/sort" both key as "sort"), returning the function name.
func PkgFuncCall(info *types.Info, call *ast.CallExpr, pkgs ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	tail := PkgTail(pn.Imported().Path())
	for _, p := range pkgs {
		if tail == p {
			return sel.Sel.Name, true
		}
	}
	return "", false
}
