// Package analysistest runs an analyzer over seeded-violation testdata
// packages and checks its diagnostics against `// want "regexp"`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest: a
// want comment on a line declares that the analyzer must report a
// diagnostic on that line whose message matches the quoted regular
// expression; several quoted patterns declare several expected
// diagnostics; a line with no want comment must produce none. Testdata
// lives under <analyzer>/testdata/src/<pkg>/ — the package key is the
// directory base name, so a testdata package named "core" exercises the
// watched-package gates the same way mtc/internal/core does.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mtc/internal/analysis"
)

// TestData returns the analyzer package's testdata root.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// Run loads each testdata package, runs a over it, and reports any
// mismatch between the diagnostics and the want comments as test
// errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkgName := range pkgs {
		pkg, err := analysis.ParseDirPackage(filepath.Join(testdata, "src", pkgName))
		if err != nil {
			t.Errorf("%s: load: %v", pkgName, err)
			continue
		}
		var diags []analysis.Diagnostic
		pass := pkg.Pass(a, func(d analysis.Diagnostic) { diags = append(diags, d) })
		if err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer %s: %v", pkgName, a.Name, err)
			continue
		}
		checkDiagnostics(t, pkg, diags)
	}
}

// expectation is one want pattern, consumed by at most one diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

func checkDiagnostics(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := parseWant(c.Text)
				if err != nil {
					t.Errorf("%s: %v", pos, err)
					continue
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, p, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !matchWant(wants, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func matchWant(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			w.used = true
			return true
		}
	}
	return false
}

// parseWant extracts the quoted patterns of a `// want "p1" "p2"`
// comment; comments without the marker yield none. Both interpreted
// and raw (backquoted) strings are accepted.
func parseWant(comment string) ([]string, error) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "want ") {
		return nil, nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want "))
	var patterns []string
	for rest != "" {
		if rest[0] != '"' && rest[0] != '`' {
			return nil, fmt.Errorf("want comment: expected quoted pattern at %q", rest)
		}
		// Find the end of this Go string literal.
		end := -1
		if rest[0] == '`' {
			if i := strings.IndexByte(rest[1:], '`'); i >= 0 {
				end = i + 2
			}
		} else {
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i + 1
					break
				}
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("want comment: unterminated pattern in %q", rest)
		}
		p, err := strconv.Unquote(rest[:end])
		if err != nil {
			return nil, fmt.Errorf("want comment: %q: %w", rest[:end], err)
		}
		patterns = append(patterns, p)
		rest = strings.TrimSpace(rest[end:])
	}
	return patterns, nil
}
