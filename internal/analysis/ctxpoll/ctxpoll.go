// Package ctxpoll enforces the cancellation contract of the hot
// engine packages: a job must stop within one polling stride of its
// context being canceled (the <2s bound the server's job tests assert),
// so every loop that can run long must be able to observe ctx. In a
// function that takes a context.Context, the analyzer flags
//
//   - unbounded `for { ... }` loops that never poll ctx.Err()/ctx.Done()
//     directly — a fixpoint driver must prove cancellation at its own
//     level, not hope a callee happens to (the house style is a poll at
//     the top of the loop, as in polygraph.PrunePar); and
//   - loop nests (a loop containing another loop) that neither poll ctx
//     nor pass ctx to any callee — quadratic-or-worse work that nothing
//     can interrupt.
//
// Single bounded loops are not candidates: a linear no-call scan
// completes within any realistic polling stride, and flagging every
// merge-join would drown the signal. A loop that genuinely cannot run
// long (or is bounded by construction) is annotated
// //mtc:cancellation-ok with the reason (docs/lint.md).
package ctxpoll

import (
	"go/ast"

	"mtc/internal/analysis"
)

// Analyzer is the ctxpoll rule.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpoll",
	Doc:  "flags hot-package loops that cannot observe context cancellation (the <2s cancellation contract)",
	Run:  run,
}

// watched lists the packages whose checks run under job deadlines.
var watched = map[string]bool{
	"core": true, "sat": true, "polygraph": true, "cobra": true,
	"polysi": true, "levels": true, "graph": true,
}

// Marker is the suppression annotation.
const Marker = "mtc:cancellation-ok"

func run(pass *analysis.Pass) error {
	if !watched[analysis.PkgTail(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.TestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxParams := contextParams(pass, fd)
			if len(ctxParams) == 0 {
				continue
			}
			checkBody(pass, fd.Body, ctxParams)
		}
	}
	return nil
}

// contextParams collects the objects of fd's context.Context parameters.
func contextParams(pass *analysis.Pass, fd *ast.FuncDecl) map[string]bool {
	names := make(map[string]bool)
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !analysis.IsContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			names[name.Name] = true
		}
	}
	return names
}

// checkBody walks the loops of a function body. Loops inside function
// literals are skipped: goroutine bodies and callbacks run under their
// spawner's discipline (ParallelDo polls between chunks for its
// workers). The nest rule fires once, at the outermost loop — a stride
// poll at the top of the nest covers everything below it — while the
// unbounded-loop rule applies at any depth.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, ctx map[string]bool) {
	analysis.WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			outermost := true
			for _, anc := range stack {
				switch anc.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					outermost = false
				}
			}
			checkNest(pass, n, ctx, outermost)
		}
		return true
	})
}

// checkNest decides one loop: the unbounded rule at any depth, the
// nest rule only for outermost loops.
func checkNest(pass *analysis.Pass, loop ast.Node, ctx map[string]bool, outermost bool) {
	infinite := false
	if fs, ok := loop.(*ast.ForStmt); ok && fs.Cond == nil {
		infinite = true
	}
	nested := outermost && hasNestedLoop(loop)
	if !infinite && !nested {
		return
	}
	polls, passes := cancellationEvidence(pass, loop, ctx)
	switch {
	case polls:
		return
	case passes && !infinite:
		return // a callee holding ctx is responsible for polling
	case pass.Suppressed(loop.Pos(), Marker):
		return
	case infinite:
		pass.Reportf(loop.Pos(), "unbounded for-loop in a context-taking function never polls ctx.Err()/ctx.Done(); poll at the top of the loop or annotate //%s with the bound", Marker)
	default:
		pass.Reportf(loop.Pos(), "loop nest in a context-taking function neither polls ctx.Err()/ctx.Done() nor passes ctx to a callee; cancellation cannot interrupt it — add a stride poll or annotate //%s", Marker)
	}
}

// hasNestedLoop reports whether loop directly contains another loop,
// not counting loops inside function literals.
func hasNestedLoop(loop ast.Node) bool {
	body := loopBody(loop)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
			return false
		}
		return true
	})
	return found
}

func loopBody(loop ast.Node) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// cancellationEvidence scans the whole nest (function literals
// included — a poll inside a worker closure still observes ctx) for
// direct polls of a ctx parameter and for calls that pass a
// context.Context onward.
func cancellationEvidence(pass *analysis.Pass, loop ast.Node, ctx map[string]bool) (polls, passes bool) {
	isCtxExpr := func(e ast.Expr) bool {
		if id, ok := e.(*ast.Ident); ok && ctx[id.Name] {
			return true
		}
		tv, ok := pass.TypesInfo.Types[e]
		return ok && tv.Type != nil && analysis.IsContextType(tv.Type)
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isCtxExpr(sel.X) {
				polls = true
				return true
			}
		}
		for _, arg := range call.Args {
			if isCtxExpr(arg) {
				passes = true
			}
		}
		return true
	})
	return polls, passes
}
