package ctxpoll_test

import (
	"testing"

	"mtc/internal/analysis/analysistest"
	"mtc/internal/analysis/ctxpoll"
)

func TestCtxPoll(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxpoll.Analyzer, "polygraph", "util")
}
