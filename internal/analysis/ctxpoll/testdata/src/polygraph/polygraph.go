// Package polygraph seeds ctxpoll violations and exemptions against
// the watched-package gate (keyed by directory name, like
// mtc/internal/polygraph).
package polygraph

import "context"

// The house style: an unbounded fixpoint loop polling ctx at the top.
func pruneLoop(ctx context.Context, work chan int) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		w, ok := <-work
		if !ok {
			return nil
		}
		_ = w
	}
}

// Unbounded and blind to cancellation: the violation.
func spinForever(ctx context.Context, work chan int) int {
	total := 0
	for { // want `unbounded for-loop in a context-taking function never polls`
		w, ok := <-work
		if !ok {
			return total
		}
		total += w
	}
}

// Passing ctx onward does not excuse an unbounded driver loop: it must
// prove cancellation at its own level.
func waitDelegated(ctx context.Context, work chan int) int {
	total := 0
	for { // want `unbounded for-loop in a context-taking function never polls`
		w, ok := <-work
		if !ok {
			return total
		}
		total += consume(ctx, w)
	}
}

func consume(_ context.Context, w int) int { return w }

// A loop nest with no poll and no ctx-passing call: nothing can
// interrupt the quadratic scan.
func closure(ctx context.Context, adj [][]int) int {
	count := 0
	for i := range adj { // want `loop nest in a context-taking function neither polls`
		for _, j := range adj[i] {
			count += j
		}
	}
	return count
}

// A stride poll at the top of the nest passes.
func closureStride(ctx context.Context, adj [][]int) (int, error) {
	count := 0
	for i := range adj {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for _, j := range adj[i] {
			count += j
		}
	}
	return count, nil
}

// Delegating with ctx passes for bounded nests: the callee holds ctx
// and is responsible for polling.
func delegated(ctx context.Context, adj [][]int) int {
	count := 0
	for i := range adj {
		for range adj[i] {
			count += visit(ctx, adj[i])
		}
	}
	return count
}

func visit(_ context.Context, row []int) int {
	total := 0
	for _, j := range row { // single bounded loop: not a candidate
		total += j
	}
	return total
}

// Bounded by construction, asserted by annotation.
func bounded(ctx context.Context, grid [8][8]int) int {
	sum := 0
	//mtc:cancellation-ok 64 cells, bounded by construction
	for _, row := range grid {
		for _, c := range row {
			sum += c
		}
	}
	return sum
}

// No context parameter: the contract does not apply.
func noContract(adj [][]int) int {
	count := 0
	for i := range adj {
		for _, j := range adj[i] {
			count += j
		}
	}
	return count
}
