// Package util is outside the watched set: even an unbounded blind
// loop produces no findings here.
package util

import "context"

func spin(_ context.Context, ch chan int) int {
	for {
		v, ok := <-ch
		if !ok {
			return 0
		}
		_ = v
	}
}
