// Package goroleak flags `go` statements in the long-lived packages
// (the server, the runner, the shard driver, the reachability pool)
// that have no visible join — the bug class behind the janitor leak,
// where a background goroutine outlived Close and kept touching freed
// state. A spawn passes when the analyzer can see one of:
//
//   - a same-function join: a WaitGroup.Wait, a channel receive, or a
//     range over a channel in the spawning function outside the go
//     statement itself (the ParallelDo / shard-driver shape);
//   - a receiver-field signal protocol: the goroutine closes, sends on,
//     or Done()s a field of its receiver, and another method of the
//     same type receives from, ranges over, or Wait()s that field —
//     including through a local alias (`done := s.janitorDone; <-done`);
//   - a receiver-field consume protocol: the goroutine ranges over or
//     receives from a receiver field, and another method close()s that
//     field (the worker-pool shape, workers draining a queue that Close
//     closes).
//
// A goroutine joined some other way is annotated //mtc:goroutine-joined
// naming the join point (docs/lint.md).
package goroleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"mtc/internal/analysis"
)

// Analyzer is the goroleak rule.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "flags go statements in long-lived types without a reachable join (WaitGroup.Wait, receive, or close protocol)",
	Run:  run,
}

// watched lists the packages whose types live across requests.
var watched = map[string]bool{
	"mtcserve": true, "runner": true, "shard": true, "graph": true,
}

// Marker is the suppression annotation.
const Marker = "mtc:goroutine-joined"

func run(pass *analysis.Pass) error {
	if !watched[analysis.PkgTail(pass.Pkg.Path())] {
		return nil
	}
	idx := indexMethods(pass)
	for _, f := range pass.Files {
		if pass.TestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, idx)
		}
	}
	return nil
}

// typeIndex aggregates, per receiver type, the join evidence visible
// across all of the type's methods.
type typeIndex struct {
	recvFields   map[string]map[string]bool // type → fields received/ranged/Waited somewhere
	closedFields map[string]map[string]bool // type → fields close()d somewhere
	methods      map[string]map[string]*ast.FuncDecl
}

func indexMethods(pass *analysis.Pass) *typeIndex {
	idx := &typeIndex{
		recvFields:   make(map[string]map[string]bool),
		closedFields: make(map[string]map[string]bool),
		methods:      make(map[string]map[string]*ast.FuncDecl),
	}
	mark := func(m map[string]map[string]bool, tname, field string) {
		if m[tname] == nil {
			m[tname] = make(map[string]bool)
		}
		m[tname][field] = true
	}
	for _, f := range pass.Files {
		if pass.TestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			tname, recv := receiverOf(pass, fd)
			if tname == "" {
				continue
			}
			if idx.methods[tname] == nil {
				idx.methods[tname] = make(map[string]*ast.FuncDecl)
			}
			idx.methods[tname][fd.Name.Name] = fd
			aliases := fieldAliases(pass, fd.Body, recv)
			fieldOf := func(e ast.Expr) (string, bool) { return receiverField(pass, e, recv, aliases) }
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.UnaryExpr:
					if n.Op == token.ARROW {
						if fld, ok := fieldOf(n.X); ok {
							mark(idx.recvFields, tname, fld)
						}
					}
				case *ast.RangeStmt:
					if fld, ok := fieldOf(n.X); ok {
						mark(idx.recvFields, tname, fld)
					}
				case *ast.CallExpr:
					if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
						if fld, ok := fieldOf(sel.X); ok && isWaitGroupExpr(pass, sel.X) {
							mark(idx.recvFields, tname, fld)
						}
					}
					if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
						if fld, ok := fieldOf(n.Args[0]); ok {
							mark(idx.closedFields, tname, fld)
						}
					}
				}
				return true
			})
		}
	}
	return idx
}

// receiverOf returns the receiver's type name and its identifier
// object, unwrapping a pointer receiver.
func receiverOf(pass *analysis.Pass, fd *ast.FuncDecl) (string, types.Object) {
	if len(fd.Recv.List) != 1 {
		return "", nil
	}
	field := fd.Recv.List[0]
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (T[P]) index under the base name.
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", nil
	}
	var recv types.Object
	if len(field.Names) == 1 {
		recv = pass.TypesInfo.Defs[field.Names[0]]
	}
	return id.Name, recv
}

// fieldAliases maps local variables assigned directly from a receiver
// field (`done := s.janitorDone`) to that field's name.
func fieldAliases(pass *analysis.Pass, body *ast.BlockStmt, recv types.Object) map[types.Object]string {
	aliases := make(map[types.Object]string)
	if recv == nil {
		return aliases
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			fld, ok := directReceiverField(pass, as.Rhs[i], recv)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				aliases[obj] = fld
			}
		}
		return true
	})
	return aliases
}

// directReceiverField matches `recv.Field` with recv the receiver
// identifier.
func directReceiverField(pass *analysis.Pass, e ast.Expr, recv types.Object) (string, bool) {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || recv == nil || pass.TypesInfo.ObjectOf(id) != recv {
		return "", false
	}
	return sel.Sel.Name, true
}

// receiverField resolves e to a receiver field name, directly or
// through a recorded local alias.
func receiverField(pass *analysis.Pass, e ast.Expr, recv types.Object, aliases map[types.Object]string) (string, bool) {
	if fld, ok := directReceiverField(pass, e, recv); ok {
		return fld, true
	}
	if id, ok := e.(*ast.Ident); ok {
		if fld, ok := aliases[pass.TypesInfo.ObjectOf(id)]; ok {
			return fld, true
		}
	}
	return "", false
}

func isWaitGroupExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && analysis.IsWaitGroupType(tv.Type)
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, idx *typeIndex) {
	tname, recv := "", types.Object(nil)
	if fd.Recv != nil {
		tname, recv = receiverOf(pass, fd)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if pass.Suppressed(gs.Pos(), Marker) {
			return true
		}
		if sameFunctionJoin(pass, fd.Body, gs) {
			return true
		}
		if tname != "" && fieldProtocolJoin(pass, gs, fd, tname, recv, idx) {
			return true
		}
		pass.Reportf(gs.Pos(), "goroutine in long-lived package has no visible join: no WaitGroup.Wait, channel receive, or close protocol reaches it; join it on the shutdown path or annotate //%s naming the join point", Marker)
		return true
	})
}

// sameFunctionJoin looks for join evidence in the spawning function
// outside the go statement's own subtree.
func sameFunctionJoin(pass *analysis.Pass, body *ast.BlockStmt, gs *ast.GoStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == ast.Node(gs) {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isChanExpr(pass, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isChanExpr(pass, n.X) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" && isWaitGroupExpr(pass, sel.X) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChanExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// fieldProtocolJoin checks the receiver-field protocols for a go
// statement inside a method of tname. The goroutine body is the go
// statement's function literal, or — for `go s.method()` — that
// method's own body (with its own receiver).
func fieldProtocolJoin(pass *analysis.Pass, gs *ast.GoStmt, fd *ast.FuncDecl, tname string, recv types.Object, idx *typeIndex) bool {
	body, bodyRecv := spawnBody(pass, gs, fd, tname, recv, idx)
	if body == nil {
		return false
	}
	aliases := fieldAliases(pass, body, bodyRecv)
	signaled, consumed := make(map[string]bool), make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if fld, ok := receiverField(pass, n.Chan, bodyRecv, aliases); ok {
				signaled[fld] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if fld, ok := receiverField(pass, n.X, bodyRecv, aliases); ok {
					consumed[fld] = true
				}
			}
		case *ast.RangeStmt:
			if fld, ok := receiverField(pass, n.X, bodyRecv, aliases); ok {
				consumed[fld] = true
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "close" && len(n.Args) == 1 {
					if fld, ok := receiverField(pass, n.Args[0], bodyRecv, aliases); ok {
						signaled[fld] = true
					}
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Done" && isWaitGroupExpr(pass, fun.X) {
					if fld, ok := receiverField(pass, fun.X, bodyRecv, aliases); ok {
						signaled[fld] = true
					}
				}
			}
		}
		return true
	})
	for fld := range signaled {
		if idx.recvFields[tname][fld] {
			return true
		}
	}
	for fld := range consumed {
		if idx.closedFields[tname][fld] {
			return true
		}
	}
	return false
}

// spawnBody resolves the goroutine's body and the receiver object its
// field accesses resolve against.
func spawnBody(pass *analysis.Pass, gs *ast.GoStmt, fd *ast.FuncDecl, tname string, recv types.Object, idx *typeIndex) (*ast.BlockStmt, types.Object) {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		// The literal closes over the spawning method's receiver.
		return fun.Body, recv
	case *ast.SelectorExpr:
		// go s.method(): analyze the named method's body against its
		// own receiver, provided s is the receiver of this method.
		if _, ok := directReceiverField(pass, fun, recv); !ok {
			return nil, nil
		}
		m := idx.methods[tname][fun.Sel.Name]
		if m == nil || m.Body == nil {
			return nil, nil
		}
		_, mrecv := receiverOf(pass, m)
		return m.Body, mrecv
	}
	return nil, nil
}
