package goroleak_test

import (
	"testing"

	"mtc/internal/analysis/analysistest"
	"mtc/internal/analysis/goroleak"
)

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), goroleak.Analyzer, "mtcserve", "util")
}
