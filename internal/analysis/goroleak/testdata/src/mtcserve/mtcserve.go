// Package mtcserve seeds goroleak violations and the join protocols
// the analyzer must recognize, shaped after the real server's janitor
// and worker-pool lifecycles.
package mtcserve

import "sync"

type Server struct {
	queue       chan int
	janitorStop chan struct{}
	janitorDone chan struct{}
	wg          sync.WaitGroup
}

// Signal protocol: the goroutine closes s.janitorDone and Close
// receives it (through a local alias, the real server's shape).
func (s *Server) startJanitor() {
	go func() {
		defer close(s.janitorDone)
		<-s.janitorStop
	}()
}

// Consume protocol: workers drain s.queue, which Close closes.
func (s *Server) startWorkers(n int) {
	for i := 0; i < n; i++ {
		go func() {
			for j := range s.queue {
				_ = j
			}
		}()
	}
}

// Method spawn: go s.pump() is analyzed through pump's own body, which
// Done()s the WaitGroup that Close Waits on.
func (s *Server) startPump() {
	s.wg.Add(1)
	go s.pump()
}

func (s *Server) pump() {
	defer s.wg.Done()
	for j := range s.janitorStop {
		_ = j
	}
}

func (s *Server) Close() {
	close(s.janitorStop)
	done := s.janitorDone
	<-done
	close(s.queue)
	s.wg.Wait()
}

// The leak: nothing ever joins this goroutine — no field protocol, no
// same-function join.
func (s *Server) leakLogger(events chan string) {
	go func() { // want `goroutine in long-lived package has no visible join`
		for e := range events {
			_ = e
		}
	}()
}

// Same-function join: spawn-and-Wait inside one call (the ParallelDo
// shape).
func fanOut(items []int, f func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			f(v)
		}(it)
	}
	wg.Wait()
}

// Unjoined plain function spawn: flagged.
func spawnLoose(f func()) {
	go f() // want `goroutine in long-lived package has no visible join`
}

// The annotation asserts a join the analyzer cannot see.
func (s *Server) fireAndForget(f func()) {
	//mtc:goroutine-joined joined by the process-exit barrier in main
	go f()
}
