// Package util is outside the watched set: unjoined goroutines here
// are not this analyzer's business.
package util

func Spawn(f func()) {
	go f()
}
