// Package hotalloc makes the allocs/op CI gate explainable at the
// source line: functions annotated //mtc:hotpath promise (near-)zero
// per-item allocation — the columnar index's 9-allocs-per-10k-txn
// derivation contract — and the analyzer flags the constructs that
// quietly break such promises:
//
//   - fmt.* calls (Sprintf and friends allocate their result and box
//     every variadic argument);
//   - map literals and make(map) — per-call map headers;
//   - append into a slice the function declared fresh without capacity
//     (`var s []T` / `s := []T{}`): growth reallocates along the hot
//     loop, where a make([]T, 0, n) would not;
//   - interface boxing at call sites: passing a concrete non-pointer
//     value where the callee takes an interface heap-allocates the
//     value.
//
// A deliberate allocation (a once-per-call arena, a cold error path) is
// annotated //mtc:alloc-ok on its line (docs/lint.md). The hint
// mtc-benchjson -compare prints when the allocs gate trips points
// here.
package hotalloc

import (
	"go/ast"
	"go/types"

	"mtc/internal/analysis"
)

// Analyzer is the hotalloc rule.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocation-inducing constructs inside //mtc:hotpath-annotated functions (allocs/op gate)",
	Run:  run,
}

// Markers: the opt-in function annotation and the per-line suppression.
const (
	HotpathMarker = "mtc:hotpath"
	Marker        = "mtc:alloc-ok"
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.TestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pass.FuncAnnotated(fd, HotpathMarker) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	fresh := freshSlices(pass, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[n]
			if ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !pass.Suppressed(n.Pos(), Marker) {
					pass.Reportf(n.Pos(), "map literal allocates on a //%s function; hoist it out of the hot path or annotate //%s", HotpathMarker, Marker)
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, fresh)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, fresh map[types.Object]bool) {
	if pass.Suppressed(call.Pos(), Marker) {
		return
	}
	if name, ok := analysis.PkgFuncCall(pass.TypesInfo, call, "fmt"); ok {
		pass.Reportf(call.Pos(), "fmt.%s allocates (result + boxed arguments) on a //%s function; format off the hot path or annotate //%s", name, HotpathMarker, Marker)
		return
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		switch {
		case id.Name == "make" && len(call.Args) >= 1:
			tv, ok := pass.TypesInfo.Types[call.Args[0]]
			if ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(call.Pos(), "make(map) allocates on a //%s function; reuse a cleared map or annotate //%s", HotpathMarker, Marker)
				}
			}
			return
		case id.Name == "append" && len(call.Args) >= 1:
			if target, ok := rootIdentObj(pass, call.Args[0]); ok && fresh[target] {
				pass.Reportf(call.Pos(), "append into %s, declared without capacity in this function: growth reallocates on a //%s function; preallocate with make(cap) or annotate //%s",
					target.Name(), HotpathMarker, Marker)
			}
			return
		}
	}
	checkBoxing(pass, call)
}

// checkBoxing flags concrete non-pointer-shaped arguments passed to
// interface parameters: the conversion heap-allocates the value.
// Pointer-shaped values (pointers, channels, maps, funcs) fit an
// interface word without allocating and pass clean.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.IsType() { // conversions are not calls
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 || call.Ellipsis.IsValid() {
		return // a spread slice is passed as-is, element boxing happened earlier
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if !boxes(at.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes into interface parameter (heap-allocates %s) on a //%s function; take the concrete type or annotate //%s",
			at.Type.String(), HotpathMarker, Marker)
	}
}

// boxes reports whether converting a value of type t to an interface
// allocates: true unless t is itself an interface or pointer-shaped.
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() != types.UnsafePointer
	}
	return true
}

// freshSlices collects the slice variables the function declares with
// no capacity: `var s []T`, `s := []T{}`, or `s := make([]T, 0)`.
func freshSlices(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	isSlice := func(t types.Type) bool {
		if t == nil {
			return false
		}
		_, ok := t.Underlying().(*types.Slice)
		return ok
	}
	noCapacity := func(e ast.Expr) bool {
		switch v := e.(type) {
		case *ast.CompositeLit:
			return len(v.Elts) == 0
		case *ast.CallExpr:
			// make([]T, 0) without a capacity argument.
			if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) == 2 {
				if lit, ok := v.Args[1].(*ast.BasicLit); ok && lit.Value == "0" {
					return true
				}
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil && isSlice(obj.Type()) {
						fresh[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || !isSlice(obj.Type()) {
					continue
				}
				if noCapacity(n.Rhs[i]) {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// rootIdentObj resolves the base identifier of an expression.
func rootIdentObj(pass *analysis.Pass, e ast.Expr) (types.Object, bool) {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[v]
			if obj == nil {
				obj = pass.TypesInfo.Defs[v]
			}
			return obj, obj != nil
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil, false
		}
	}
}
