package hotalloc_test

import (
	"testing"

	"mtc/internal/analysis/analysistest"
	"mtc/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), hotalloc.Analyzer, "hot")
}
