// Package hot seeds hotalloc violations: the analyzer has no package
// gate — the //mtc:hotpath annotation is the opt-in.
package hot

import "fmt"

type item struct {
	key string
	n   int
}

func sink(v any) { _ = v }

//mtc:hotpath
func formatHot(items []item) string {
	out := ""
	for _, it := range items {
		out += fmt.Sprintf("%s=%d;", it.key, it.n) // want `fmt.Sprintf allocates`
	}
	return out
}

//mtc:hotpath
func growHot(items []item) []string {
	var keys []string
	for _, it := range items {
		keys = append(keys, it.key) // want `append into keys, declared without capacity`
	}
	return keys
}

//mtc:hotpath
func preallocated(items []item) []string {
	keys := make([]string, 0, len(items))
	for _, it := range items {
		keys = append(keys, it.key) // preallocated: no finding
	}
	return keys
}

//mtc:hotpath
func appendParam(keys []string, more []item) []string {
	for _, it := range more {
		keys = append(keys, it.key) // caller-owned slice: no finding
	}
	return keys
}

//mtc:hotpath
func mapHot(items []item) int {
	seen := map[string]bool{} // want `map literal allocates`
	dup := 0
	for _, it := range items {
		if seen[it.key] {
			dup++
		}
		seen[it.key] = true
	}
	return dup
}

//mtc:hotpath
func makeMapHot(n int) map[int]int {
	m := make(map[int]int, n) // want `make\(map\) allocates`
	for i := 0; i < n; i++ {
		m[i] = i
	}
	return m
}

//mtc:hotpath
func boxHot(items []item) {
	for _, it := range items {
		sink(it) // want `boxes into interface parameter`
	}
}

//mtc:hotpath
func boxPtr(items []*item) {
	for _, it := range items {
		sink(it) // pointer-shaped: no finding
	}
}

//mtc:hotpath
func coldError(items []item) error {
	if len(items) > 1<<20 {
		return fmt.Errorf("too many items: %d", len(items)) //mtc:alloc-ok cold error path, never taken per-item
	}
	return nil
}

// Unannotated: the same constructs produce no findings.
func notHot(items []item) string {
	out := ""
	seen := map[string]bool{}
	for _, it := range items {
		if !seen[it.key] {
			out += fmt.Sprintf("%s=%d;", it.key, it.n)
		}
		seen[it.key] = true
	}
	return out
}
