package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module under
// analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Pass binds pkg to a for one analyzer run.
func (pkg *Package) Pass(a *Analyzer, report func(Diagnostic)) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    report,
	}
}

var disableCgoOnce sync.Once

// DisableCgo switches go/build's default context to pure Go. The
// source importer type-checks the standard library from GOROOT source,
// and with cgo enabled that would route packages like net through the
// cgo preprocessor; the pure-Go variants type-check everywhere the lint
// runs (CI runners, sandboxes without a C toolchain).
func DisableCgo() {
	disableCgoOnce.Do(func() { build.Default.CgoEnabled = false })
}

// StdImporter returns a types.Importer that loads non-module packages
// (the standard library) by type-checking their GOROOT source. The
// returned importer caches internally, so one instance should be shared
// across every package of a load.
func StdImporter(fset *token.FileSet) types.Importer {
	DisableCgo()
	return importer.ForCompiler(fset, "source", nil)
}

// Loader loads and type-checks packages of one module from source,
// resolving in-module imports through itself and everything else
// through the standard library source importer. It is not safe for
// concurrent use.
type Loader struct {
	Root    string // module root: the directory containing go.mod
	ModPath string
	Fset    *token.FileSet

	std  types.Importer
	pkgs map[string]*Package // by import path; nil entry = load in progress
}

// NewLoader prepares a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Root:    root,
		ModPath: modPath,
		Fset:    fset,
		std:     StdImporter(fset),
		pkgs:    make(map[string]*Package),
	}, nil
}

var moduleLine = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// ModulePath extracts the module path from root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	m := moduleLine.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	return string(m[1]), nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load resolves patterns ("./...", "./internal/core", "internal/core")
// relative to the module root and returns the matched packages,
// type-checked with their in-module dependency closure. Directories
// with no buildable non-test Go files are skipped silently for
// wildcard patterns and reported for explicit ones.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := l.walk(l.Root, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.Root, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			if err := l.walk(base, add); err != nil {
				return nil, err
			}
		default:
			add(filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
		}
	}
	var out []*Package
	for _, dir := range dirs {
		ip, err := l.importPathOf(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := l.load(ip)
		if err != nil {
			if _, noGo := errNoGo(err); noGo && len(dirs) > 1 {
				continue // wildcard hit a test-only or empty directory
			}
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// walk collects package directories below base, skipping testdata,
// vendor, VCS and hidden/underscore directories.
func (l *Loader) walk(base string, add func(string)) error {
	return filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				add(p)
				break
			}
		}
		return nil
	})
}

func (l *Loader) importPathOf(dir string) (string, error) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.Root)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) dirOf(importPath string) string {
	if importPath == l.ModPath {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(importPath, l.ModPath+"/")))
}

type noGoError struct{ err error }

func (e noGoError) Error() string { return e.err.Error() }
func errNoGo(err error) (error, bool) {
	ng, ok := err.(noGoError)
	if !ok {
		return err, false
	}
	return ng.err, true
}

// load type-checks the package at importPath, loading in-module
// dependencies recursively (valid Go has no import cycles; a cycle is
// reported rather than deadlocking).
func (l *Loader) load(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	l.pkgs[importPath] = nil // mark in progress
	dir := l.dirOf(importPath)
	DisableCgo()
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			delete(l.pkgs, importPath)
			return nil, noGoError{fmt.Errorf("analysis: %s: no buildable Go files", dir)}
		}
		delete(l.pkgs, importPath)
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			delete(l.pkgs, importPath)
			return nil, err
		}
		files = append(files, f)
	}
	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		delete(l.pkgs, importPath)
		return nil, fmt.Errorf("analysis: type-checking %s: %w (and %d more)", importPath, typeErrs[0], len(typeErrs)-1)
	}
	pkg := &Package{ImportPath: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// loaderImporter routes in-module imports back through the loader and
// everything else to the stdlib source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// newInfo allocates the full set of type-information maps the analyzers
// consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// ParseDirPackage parses and type-checks the single-directory package
// at dir against the standard library alone — the analysistest loader
// for seeded-violation testdata packages, whose import path (and thus
// watched-package key) is the directory's base name.
func ParseDirPackage(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := newInfo()
	var typeErrs []error
	conf := types.Config{
		Importer: StdImporter(fset),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	ip := filepath.Base(dir)
	tpkg, _ := conf.Check(ip, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %w (and %d more)", dir, typeErrs[0], len(typeErrs)-1)
	}
	return &Package{ImportPath: ip, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
