// Package mapiter flags `range` over a map inside the verdict- and
// report-producing packages, machine-checking the repository's
// bit-identical-verdict invariant: every engine, window, shard and
// parallelism setting must produce byte-for-byte identical reports, and
// Go's randomized map iteration order is the classic way that breaks.
// A loop is exempt when it demonstrably feeds a sort (the collected
// keys or values are passed to sort.* / slices.Sort* later in the same
// function — the sorted-after-collect idiom) or when it carries an
// explicit //mtc:nondeterministic-ok annotation whose justification
// explains why order cannot reach a verdict (docs/lint.md).
package mapiter

import (
	"go/ast"
	"go/types"

	"mtc/internal/analysis"
)

// Analyzer is the mapiter rule.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flags nondeterministic map iteration in verdict-producing packages (bit-identical-verdict invariant)",
	Run:  run,
}

// watched lists the packages whose outputs feed verdicts or reports;
// everything a Report, anomaly list, cycle witness or benchmark-gated
// artifact flows through.
var watched = map[string]bool{
	"core": true, "levels": true, "checker": true,
	"shard": true, "history": true, "polygraph": true,
}

// Marker is the suppression annotation.
const Marker = "mtc:nondeterministic-ok"

func run(pass *analysis.Pass) error {
	if !watched[analysis.PkgTail(pass.Pkg.Path())] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.TestFile(f) {
			continue
		}
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pass.Suppressed(rs.Pos(), Marker) {
				return true
			}
			if feedsSort(enclosingFuncBody(stack), rs, pass.TypesInfo) {
				return true
			}
			pass.Reportf(rs.Pos(), "range over map in verdict-producing package %s: iteration order is randomized; sort the keys first or annotate //%s with a justification",
				analysis.PkgTail(pass.Pkg.Path()), Marker)
			return true
		})
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function
// declaration or literal on the stack, or nil.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// feedsSort reports whether a variable assigned or appended to inside
// the loop body is later (after the loop, in the same function) passed
// to a sort call — the sorted-after-collect idiom that restores
// determinism before anything order-dependent happens.
func feedsSort(body *ast.BlockStmt, loop *ast.RangeStmt, info *types.Info) bool {
	if body == nil {
		return false
	}
	assigned := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		// Both `x = append(x, ...)` and `x[i] = v` count: the root
		// identifier collects the map's contents either way.
		for {
			switch v := e.(type) {
			case *ast.Ident:
				if obj := info.ObjectOf(v); obj != nil {
					assigned[obj] = true
				}
				return
			case *ast.IndexExpr:
				e = v.X
			case *ast.SelectorExpr:
				e = v.X
			case *ast.StarExpr:
				e = v.X
			default:
				return
			}
		}
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				record(lhs)
			}
		}
		return true
	})
	if len(assigned) == 0 {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < loop.End() {
			return true
		}
		if _, ok := analysis.PkgFuncCall(info, call, "sort", "slices", "maps"); !ok {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && assigned[info.ObjectOf(id)] {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}
