package mapiter_test

import (
	"testing"

	"mtc/internal/analysis/analysistest"
	"mtc/internal/analysis/mapiter"
)

func TestMapIter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), mapiter.Analyzer, "core", "util")
}
