// Package core seeds mapiter violations and exemptions: the directory
// name keys the analyzer's watched-package gate the same way
// mtc/internal/core does.
package core

import "sort"

// Sorted-after-collect: the loop feeds sort.Strings, restoring
// determinism before anything order-dependent happens.
func verdictOrder(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Leaking iteration order straight into a callback is the violation.
func leakOrder(m map[string]int, emit func(string)) {
	for k := range m { // want `range over map in verdict-producing package core`
		emit(k)
	}
}

// An order-insensitive fold still needs the annotation: the analyzer
// cannot prove commutativity, the author asserts it.
func countAll(m map[string]int) int {
	total := 0
	//mtc:nondeterministic-ok addition is commutative; order cannot reach the total
	for _, v := range m {
		total += v
	}
	return total
}

// Ranging a slice is ordered; never a finding.
func sliceRange(xs []string, emit func(string)) {
	for _, x := range xs {
		emit(x)
	}
}

// Collecting values (not keys) and sorting them also passes.
func valuesSorted(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

// Collected but never sorted: flagged even though it looks innocent.
func collectUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map in verdict-producing package core`
		out = append(out, k)
	}
	return out
}
