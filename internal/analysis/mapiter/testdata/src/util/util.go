// Package util is outside the watched set: map ranges here never
// produce findings.
package util

func anyOrder(m map[string]int, emit func(string)) {
	for k := range m {
		emit(k)
	}
}
