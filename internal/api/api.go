// Package api is the wire contract of the v1 checking service: the JSON
// request, response, error-envelope and event types exchanged between
// internal/mtcserve (the server) and pkg/client (the Go SDK). Both sides
// compile against these structs, so the wire format cannot drift between
// them. The payloads embed checker.Report and history.History directly —
// both serialize losslessly since the Report JSON fix.
package api

import (
	"time"

	"mtc/internal/checker"
	"mtc/internal/history"
)

// Error is the structured error body of every failing v1 endpoint.
type Error struct {
	// Code is a stable machine-readable identifier, e.g. "queue_full".
	Code string `json:"code"`
	// Message is the human-readable account.
	Message string `json:"message"`
}

// ErrorResponse is the v1 error envelope.
type ErrorResponse struct {
	Error Error `json:"error"`
	// RequestID echoes the X-Request-Id of the failing request so that
	// server logs can be correlated with client reports.
	RequestID string `json:"request_id,omitempty"`
}

// Stable error codes of the v1 API.
const (
	CodeBadRequest         = "bad_request"
	CodeInvalidHistory     = "invalid_history"
	CodeUnknownChecker     = "unknown_checker"
	CodeUnsupportedLevel   = "unsupported_level"
	CodeUnsupportedHistory = "unsupported_history"
	CodeNotFound           = "not_found"
	CodeConflict           = "conflict"
	CodeQueueFull          = "queue_full"
	CodeSessionLimit       = "session_limit"
	CodeTimeout            = "timeout"
	CodeInternal           = "internal"
)

// CheckerInfo describes one registry entry in GET /v1/checkers.
type CheckerInfo struct {
	Name   string   `json:"name"`
	Levels []string `json:"levels"`
}

// JobRequest is the body of POST /v1/jobs: one whole-history check.
type JobRequest struct {
	// Checker names the engine; empty selects the server default.
	Checker string `json:"checker,omitempty"`
	// Level names the isolation level; empty selects the checker default.
	Level string `json:"level,omitempty"`
	// TimeoutMillis bounds the job's execution time; 0 uses the server
	// default. Values above the server maximum are clamped.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// SkipPreCheck and SparseRT forward checker.Options.
	SkipPreCheck bool `json:"skip_precheck,omitempty"`
	SparseRT     bool `json:"sparse_rt,omitempty"`
	// Parallelism bounds the worker pools of the engine's parallel phases
	// (checker.Options.Parallelism). 0 uses the server default. Negative
	// values, and values exceeding the server's GOMAXPROCS clamp, are
	// rejected with a structured 400 — the server never silently lowers a
	// requested value; the accepted job's effective value is echoed in
	// the Job body.
	Parallelism int `json:"parallelism,omitempty"`
	// Shard routes the job through the checker's component-sharded
	// wrapper (internal/shard): the history is decomposed into its
	// key/session-disjoint components and up to Shard components are
	// checked concurrently. 0 disables sharding. Negative values, and
	// values exceeding the server's GOMAXPROCS clamp, are rejected with
	// a structured 400; the effective value is echoed in the Job body.
	Shard int `json:"shard,omitempty"`
	// Window bounds the memory of the mtc-incremental engine
	// (checker.Options.Window): the replay is compacted so at most
	// O(window) transactions stay materialised, with identical verdicts.
	// 0 checks unbounded; negative values are rejected; other engines
	// ignore it.
	Window int `json:"window,omitempty"`
	// Distributed routes the job through the checking fabric: the
	// coordinator decomposes the history into its key/session-disjoint
	// components (shard.Split), dispatches them to registered worker
	// processes, and folds the per-component verdicts with the
	// position-preserving merge — bit-identical to single-node sharded
	// checking. The job and its component assignments persist to the
	// coordinator's write-ahead log, so it survives a coordinator
	// restart. Requires a server started as a fabric coordinator
	// (mtc-serve -fabric-wal); others answer 400.
	Distributed bool `json:"distributed,omitempty"`
	// History is the history to verify, in the standard JSON encoding.
	History *history.History `json:"history"`
}

// Job states.
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// JobTerminal reports whether state is final.
func JobTerminal(state string) bool {
	return state == JobDone || state == JobFailed || state == JobCanceled
}

// Job is the status document of GET /v1/jobs/{id} and the 202 body of
// POST /v1/jobs.
type Job struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Checker string `json:"checker"`
	Level   string `json:"level"`
	// Txns is the size of the submitted history.
	Txns int `json:"txns"`
	// Parallelism and Shard echo the effective engine options the job
	// runs with after server defaults are applied — the request is never
	// silently clamped, so these match the request when it set them.
	Parallelism int `json:"parallelism,omitempty"`
	Shard       int `json:"shard,omitempty"`
	// Distributed marks a job executed on the checking fabric rather
	// than the local worker pool.
	Distributed bool `json:"distributed,omitempty"`
	// Report is present once State is "done".
	Report *checker.Report `json:"report,omitempty"`
	// Error is present when State is "failed": the engine error or the
	// timeout that stopped the job.
	Error      string     `json:"error,omitempty"`
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

// JobList is the body of GET /v1/jobs.
type JobList struct {
	Jobs []Job `json:"jobs"`
}

// JobEvent is one NDJSON line of GET /v1/jobs/{id}/events: a state
// transition, carrying the report or error once terminal.
type JobEvent struct {
	JobID string `json:"job_id"`
	Seq   int    `json:"seq"`
	State string `json:"state"`
	// Report accompanies the "done" event; Error the "failed" event.
	Report *checker.Report `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// SessionRequest is the body of POST /v1/sessions.
type SessionRequest struct {
	Level string        `json:"level"`
	Keys  []history.Key `json:"keys"`
	// Window bounds the session's verification memory: the online
	// checker is compacted every window/2 transactions, so a long-lived
	// stream holds O(window) state instead of growing forever. 0 uses
	// the server's default window (its -window flag; 0 there means
	// unbounded). Negative values are rejected. The window must exceed
	// the store's maximum commit staleness for exact verdicts — staler
	// reads surface as thin-air reads at finalization.
	Window int `json:"window,omitempty"`
}

// TxnPayload is the wire form of one streamed transaction; Committed is
// a pointer so that omitting it is detectable rather than silently
// meaning aborted.
type TxnPayload struct {
	Sess      int          `json:"sess"`
	Ops       []history.Op `json:"ops"`
	Committed *bool        `json:"committed"`
	Start     int64        `json:"start"`
	Finish    int64        `json:"finish"`
}

// SessionStatus is the response of the session endpoints.
type SessionStatus struct {
	ID    string `json:"id"`
	Level string `json:"level"`
	Txns  int    `json:"txns"`
	Edges int    `json:"edges"`
	OK    bool   `json:"ok"`
	Final bool   `json:"final"`
	// Window echoes the session's compaction window (0 = unbounded).
	Window int `json:"window,omitempty"`
	// CompactedEpochs and CompactedTxns report how often epoch
	// compaction has run on this session and how many settled
	// transactions it collapsed; LiveTxns is what remains materialised.
	CompactedEpochs int `json:"compacted_epochs,omitempty"`
	CompactedTxns   int `json:"compacted_txns,omitempty"`
	LiveTxns        int `json:"live_txns,omitempty"`
	// Report is present as soon as a violation is detected, and always
	// after finalization.
	Report *checker.Report `json:"report,omitempty"`
}
