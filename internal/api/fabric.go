package api

import (
	"mtc/internal/checker"
	"mtc/internal/history"
)

// Fabric wire contract: the coordinator/worker messages of the
// distributed checking fabric (internal/fabric). A coordinator is an
// mtc-serve instance started with -fabric-wal; workers are mtc-serve
// binaries started with `-worker -coordinator <url>` that register,
// heartbeat, and pull component work produced by shard.Split. The
// payloads embed history.History and checker.Report — the same types
// the job API serializes — so a component task and its verdict travel
// over the existing v1 encoding.
//
//	POST /v1/fabric/workers               register -> 201 WorkerLease
//	POST /v1/fabric/workers/{id}/heartbeat  liveness ping -> 204
//	POST /v1/fabric/workers/{id}/pull     claim work -> 200 FabricTask | 204
//	POST /v1/fabric/workers/{id}/results  push a component verdict -> 200 FabricAck
//	GET  /v1/fabric/status                workers, queues and jobs

// WorkerHello is the body of POST /v1/fabric/workers: a worker
// announcing itself to the coordinator.
type WorkerHello struct {
	// Name is a human-readable label for logs and the status endpoint;
	// the coordinator's assigned ID, not the name, identifies the worker.
	Name string `json:"name,omitempty"`
	// Parallelism reports the engine parallelism the worker runs
	// component checks with (informational).
	Parallelism int `json:"parallelism,omitempty"`
	// Codecs lists the wire codecs this worker can decode component
	// payloads from, beyond the implicit JSON baseline. A worker that
	// advertises "mtcb" receives FabricTask.HistoryMTCB (the binary
	// columnar encoding, decoded straight to a columnar index) instead
	// of the JSON History. Coordinators ignore names they do not know,
	// so old coordinators keep sending JSON to new workers and old
	// workers (empty Codecs) keep receiving it from new coordinators.
	Codecs []string `json:"codecs,omitempty"`
}

// WorkerLease is the 201 body of a successful registration.
type WorkerLease struct {
	// ID is the coordinator-assigned worker identity; every subsequent
	// heartbeat, pull and result names it. A coordinator restart
	// invalidates all leases — the fabric endpoints answer 404 and the
	// worker re-registers.
	ID string `json:"id"`
	// HeartbeatMillis is the interval the worker must beat at; missing
	// roughly three beats marks the worker dead and re-dispatches its
	// in-flight components under a fresh epoch.
	HeartbeatMillis int64 `json:"heartbeat_ms"`
}

// FabricTask is one unit of fabric work: a single connected component of
// a submitted job's history, to be checked by the base engine.
type FabricTask struct {
	Job       string `json:"job"`
	Component int    `json:"component"`
	// Epoch is the dispatch epoch of this component. The coordinator
	// folds a result only when its epoch matches the component's current
	// epoch, so a verdict from a worker that was presumed dead (and whose
	// component was re-dispatched) can never be folded twice.
	Epoch int `json:"epoch"`
	// Checker is the base engine the worker must run (never a "-sharded"
	// wrapper: the coordinator already decomposed the history).
	Checker string `json:"checker"`
	Level   string `json:"level,omitempty"`
	// Engine options, forwarded from the submitted job.
	SkipPreCheck bool `json:"skip_precheck,omitempty"`
	SparseRT     bool `json:"sparse_rt,omitempty"`
	Parallelism  int  `json:"parallelism,omitempty"`
	Window       int  `json:"window,omitempty"`
	// History is the component's sub-history (local transaction ids; the
	// coordinator remaps the verdict back to external positions). Nil
	// when the coordinator negotiated the binary codec — exactly one of
	// History and HistoryMTCB is set.
	History *history.History `json:"history,omitempty"`
	// HistoryMTCB is the component's sub-history in the MTCB binary
	// columnar encoding (base64 inside the JSON envelope), sent to
	// workers whose WorkerHello advertised the "mtcb" codec. The
	// coordinator encodes each component once and serves the same bytes
	// to every puller; the worker decodes them straight to a columnar
	// index (history.ReadMTCBIndexed) with no JSON op materialization.
	HistoryMTCB []byte `json:"history_mtcb,omitempty"`
}

// FabricResult is the body of POST /v1/fabric/workers/{id}/results: one
// component verdict, echoing the task coordinates.
type FabricResult struct {
	Job       string `json:"job"`
	Component int    `json:"component"`
	Epoch     int    `json:"epoch"`
	// Report is the engine verdict; Error is set instead when the engine
	// failed (the coordinator fails the whole job).
	Report *checker.Report `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// FabricAck answers a pushed result. Accepted is false when the result
// was stale (epoch mismatch, unknown or already-terminal job) and was
// discarded; the worker just moves on.
type FabricAck struct {
	Accepted bool `json:"accepted"`
}

// FabricWorkerStatus describes one registered worker in GET
// /v1/fabric/status.
type FabricWorkerStatus struct {
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Queued and InFlight count the components assigned to this worker's
	// queue and currently executing on it.
	Queued   int `json:"queued"`
	InFlight int `json:"in_flight"`
	// IdleMillis is how long ago the worker was last seen (heartbeat,
	// pull or result).
	IdleMillis int64 `json:"idle_ms"`
}

// FabricJobStatus describes one fabric job in GET /v1/fabric/status.
type FabricJobStatus struct {
	ID      string `json:"id"`
	State   string `json:"state"` // pending | done | failed
	Checker string `json:"checker"`
	Level   string `json:"level,omitempty"`
	Txns    int    `json:"txns"`
	// Components is the size of the distribution plan; Done counts the
	// folded component verdicts.
	Components int `json:"components"`
	Done       int `json:"done"`
}

// FabricStatus is the body of GET /v1/fabric/status.
type FabricStatus struct {
	Workers []FabricWorkerStatus `json:"workers"`
	Jobs    []FabricJobStatus    `json:"jobs"`
	// Unassigned counts pending components not yet placed on any
	// worker's queue (no live worker at submission, or a requeue after a
	// worker death awaiting its next claimant).
	Unassigned int `json:"unassigned"`
}
