// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section V and appendices D/E).
// Each experiment produces the same rows/series the paper reports —
// checker names on one axis, a workload parameter on the other, and time,
// memory, abort-rate or bug-count values. Absolute numbers differ from the
// paper (the substrate is an in-process simulator, not a testbed database
// plus Java checkers on a GPU machine), but the comparative shape — who
// wins, by roughly what factor, and how curves move with concurrency — is
// what these experiments reproduce.
//
// Run experiments through cmd/mtc-bench or the testing.B wrappers in the
// repository root's bench_test.go. The Scale knob shrinks workload sizes
// proportionally so the full suite stays laptop-friendly.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Row is a single measured data point: one series (checker/stage), one
// x-axis position, one value.
type Row struct {
	Series string
	X      string
	Value  float64
	Unit   string
}

// Experiment regenerates one table or figure.
type Experiment struct {
	ID    string // e.g. "fig7a"
	Title string
	// Run executes the experiment at the given scale (1.0 = default
	// laptop-sized parameters) and returns its rows.
	Run func(scale float64) []Row
}

// measure runs f and returns wall-clock seconds and the allocation volume
// in MB (the memory cost proxy for Figures 10 and 17).
func measure(f func()) (sec float64, allocMB float64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	f()
	sec = time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	allocMB = float64(after.TotalAlloc-before.TotalAlloc) / 1e6
	return sec, allocMB
}

// scaled multiplies n by scale, with a floor of min.
func scaled(n int, scale float64, min int) int {
	v := int(float64(n) * scale)
	if v < min {
		return min
	}
	return v
}

// Format renders rows as an aligned text table grouped by X.
func Format(id, title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", id, title)
	// Column per series, row per X, preserving first-appearance order.
	var xs, series []string
	seenX, seenS := map[string]bool{}, map[string]bool{}
	unit := ""
	for _, r := range rows {
		if !seenX[r.X] {
			seenX[r.X] = true
			xs = append(xs, r.X)
		}
		if !seenS[r.Series] {
			seenS[r.Series] = true
			series = append(series, r.Series)
		}
		if unit == "" {
			unit = r.Unit
		}
	}
	val := map[string]map[string]float64{}
	units := map[string]string{}
	for _, r := range rows {
		if val[r.X] == nil {
			val[r.X] = map[string]float64{}
		}
		val[r.X][r.Series] = r.Value
		units[r.Series] = r.Unit
	}
	w := 12
	for _, s := range series {
		if len(s)+2 > w {
			w = len(s) + 2
		}
	}
	fmt.Fprintf(&b, "%-24s", "x")
	for _, s := range series {
		fmt.Fprintf(&b, "%*s", w, s)
	}
	fmt.Fprintln(&b)
	for _, x := range xs {
		fmt.Fprintf(&b, "%-24s", x)
		for _, s := range series {
			if v, ok := val[x][s]; ok {
				fmt.Fprintf(&b, "%*s", w, fmtVal(v, units[s]))
			} else {
				fmt.Fprintf(&b, "%*s", w, "-")
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

func fmtVal(v float64, unit string) string {
	switch unit {
	case "s":
		return fmt.Sprintf("%.4fs", v)
	case "MB":
		return fmt.Sprintf("%.1fMB", v)
	case "%":
		return fmt.Sprintf("%.1f%%", v)
	case "count", "txn":
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.4g%s", v, unit)
	}
}

// ByID returns the experiment with the given id, or nil.
func ByID(id string) *Experiment {
	for _, e := range All() {
		if e.ID == id {
			e := e
			return &e
		}
	}
	return nil
}

// IDs lists all experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// sortRows orders rows by series then X for deterministic golden output.
func sortRows(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Series != rows[j].Series {
			return rows[i].Series < rows[j].Series
		}
		return rows[i].X < rows[j].X
	})
}
