package bench

import (
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	ids := IDs()
	want := []string{
		"table1",
		"fig7a", "fig7b", "fig7c", "fig7d",
		"fig8a", "fig8b", "fig8c", "fig8d",
		"fig9a", "fig9b",
		"fig10a", "fig10b", "fig10c", "fig10d", "fig10e", "fig10f",
		"fig11a", "fig11b",
		"incr", "incrdet",
		"table2",
		"fig13a", "fig13b", "fig14a", "fig14b",
		"fig17a", "fig17b", "fig17c", "fig17d", "fig17e", "fig17f",
	}
	if len(ids) != len(want) {
		t.Fatalf("got %d experiments %v, want %d", len(ids), ids, len(want))
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	if ByID("fig7a") == nil || ByID("nope") != nil {
		t.Fatal("ByID lookup broken")
	}
}

func TestTable1AllVerdictsCorrect(t *testing.T) {
	rows := ByID("table1").Run(0.1)
	if len(rows) != 16*3 {
		t.Fatalf("rows = %d, want 48", len(rows))
	}
	for _, r := range rows {
		if r.Value < 0 {
			t.Fatalf("checker verdict mismatch on %s/%s", r.Series, r.X)
		}
	}
	// WriteSkew must be the one SI pass.
	for _, r := range rows {
		if r.X == "WriteSkew" && r.Series == "SI" && r.Value != 0 {
			t.Fatal("WriteSkew must pass SI")
		}
		if r.X == "WriteSkew" && r.Series == "SER" && r.Value != 1 {
			t.Fatal("WriteSkew must violate SER")
		}
	}
}

func TestFig7aTinyScaleRuns(t *testing.T) {
	rows := ByID("fig7a").Run(0.05)
	if len(rows) != 8 { // 4 distributions x 2 series
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Value < 0 {
			t.Fatalf("negative time %v", r)
		}
	}
}

func TestFig9aTinyScaleRuns(t *testing.T) {
	rows := ByID("fig9a").Run(0.05)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig10aTinyScaleRuns(t *testing.T) {
	rows := ByID("fig10a").Run(0.05)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	series := map[string]bool{}
	for _, r := range rows {
		series[r.Series] = true
	}
	for _, s := range []string{"MTC gen", "MTC verify", "Cobra gen", "Cobra verify"} {
		if !series[s] {
			t.Fatalf("missing series %s in %v", s, series)
		}
	}
}

func TestFig11aTinyScaleRuns(t *testing.T) {
	rows := ByID("fig11a").Run(0.2)
	for _, r := range rows {
		if r.Value < 0 || r.Value > 100 {
			t.Fatalf("abort rate out of range: %v", r)
		}
	}
}

func TestTable2TinyScaleDetectsBugs(t *testing.T) {
	rows := ByID("table2").Run(0.5)
	detected := 0
	for _, r := range rows {
		if r.Series == "detected" && r.Value == 1 {
			detected++
		}
	}
	if detected < 5 {
		t.Fatalf("only %d/6 bugs detected at scale 0.5", detected)
	}
}

func TestFig13TinyScaleRuns(t *testing.T) {
	rows := ByID("fig13a").Run(0.1)
	series := map[string]bool{}
	for _, r := range rows {
		series[r.Series] = true
	}
	for _, s := range []string{"elle-append", "elle-wr", "mtc-mini"} {
		if !series[s] {
			t.Fatalf("missing series %s", s)
		}
	}
}

func TestFormat(t *testing.T) {
	rows := []Row{
		{Series: "a", X: "x1", Value: 1.5, Unit: "s"},
		{Series: "b", X: "x1", Value: 2.5, Unit: "s"},
		{Series: "a", X: "x2", Value: 3.5, Unit: "s"},
	}
	out := Format("figX", "demo", rows)
	if !strings.Contains(out, "figX") || !strings.Contains(out, "1.5000s") {
		t.Fatalf("format output:\n%s", out)
	}
	// Missing cell renders as '-'.
	if !strings.Contains(out, "-") {
		t.Fatalf("missing cell marker:\n%s", out)
	}
}

func TestScaled(t *testing.T) {
	if scaled(100, 0.5, 1) != 50 || scaled(100, 0.001, 7) != 7 {
		t.Fatal("scaled math")
	}
}

func TestMeasure(t *testing.T) {
	sec, mb := measure(func() {
		_ = make([]byte, 1<<20)
	})
	if sec < 0 || mb < 0.5 {
		t.Fatalf("measure = %f s, %f MB", sec, mb)
	}
}

func TestSortRows(t *testing.T) {
	rows := []Row{{Series: "b", X: "2"}, {Series: "a", X: "9"}, {Series: "a", X: "1"}}
	sortRows(rows)
	if rows[0].Series != "a" || rows[0].X != "1" || rows[2].Series != "b" {
		t.Fatalf("sorted: %v", rows)
	}
}

func TestFmtValUnits(t *testing.T) {
	cases := map[string]string{
		fmtVal(1.5, "s"):    "1.5000s",
		fmtVal(2.25, "MB"):  "2.2MB",
		fmtVal(12.34, "%"):  "12.3%",
		fmtVal(7, "count"):  "7",
		fmtVal(7, "txn"):    "7",
		fmtVal(3.14, "zzz"): "3.14zzz",
	}
	for got, want := range cases {
		if got != want {
			t.Fatalf("fmtVal = %q, want %q", got, want)
		}
	}
}

func TestFig9bTinyScaleRuns(t *testing.T) {
	rows := ByID("fig9b").Run(0.05)
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestFig11bTinyScaleRuns(t *testing.T) {
	rows := ByID("fig11b").Run(0.25)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Value < 0 || r.Value > 100 {
			t.Fatalf("abort rate out of range: %v", r)
		}
	}
}

func TestFig14TinyScaleRuns(t *testing.T) {
	for _, id := range []string{"fig14a", "fig14b"} {
		rows := ByID(id).Run(0.1)
		series := map[string]bool{}
		for _, r := range rows {
			if r.Value < 0 {
				t.Fatalf("%s: negative time %v", id, r)
			}
			series[r.Series] = true
		}
		for _, s := range []string{"elle-append gen", "elle-wr verify", "mtc gen", "mtc verify"} {
			if !series[s] {
				t.Fatalf("%s: missing series %s", id, s)
			}
		}
	}
}

func TestFig17MemoryTinyScaleRuns(t *testing.T) {
	rows := ByID("fig17d").Run(0.05)
	for _, r := range rows {
		if r.Value < 0 {
			t.Fatalf("negative memory %v", r)
		}
	}
}

func TestFig7SweepAxesTinyScale(t *testing.T) {
	for _, id := range []string{"fig7b", "fig7c", "fig8c"} {
		if rows := ByID(id).Run(0.03); len(rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
	}
}

func TestIncrTinyScaleRuns(t *testing.T) {
	rows := ByID("incr").Run(0.05)
	if len(rows) != 16 { // 4 sizes x 4 series
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Value < 0 {
			t.Fatalf("negative time %v", r)
		}
	}
}

func TestIncrDetTinyScaleRuns(t *testing.T) {
	rows := ByID("incrdet").Run(0.1)
	// Detection must never be later than the full history.
	byBug := map[string][2]float64{}
	for _, r := range rows {
		v := byBug[r.X]
		if r.Series == "incremental" {
			v[0] = r.Value
		} else {
			v[1] = r.Value
		}
		byBug[r.X] = v
	}
	for bug, v := range byBug {
		if v[0] > v[1] {
			t.Fatalf("%s: incremental detected at %v, after the full history %v", bug, v[0], v[1])
		}
	}
}
