package bench

import (
	"context"
	"fmt"

	"mtc/internal/checker"
	"mtc/internal/core"
	"mtc/internal/elle"
	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/porcupine"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

// All returns every experiment, ordered as in the paper.
func All() []Experiment {
	return []Experiment{
		table1(),
		fig7or8("fig7a", "MTC-SER vs Cobra: object-access distributions", core.SER, axisDist),
		fig7or8("fig7b", "MTC-SER vs Cobra: #objects sweep", core.SER, axisObjects),
		fig7or8("fig7c", "MTC-SER vs Cobra: #sessions sweep", core.SER, axisSessions),
		fig7or8("fig7d", "MTC-SER vs Cobra: #txns sweep", core.SER, axisTxns),
		fig7or8("fig8a", "MTC-SI vs PolySI: object-access distributions", core.SI, axisDist),
		fig7or8("fig8b", "MTC-SI vs PolySI: #objects sweep", core.SI, axisObjects),
		fig7or8("fig8c", "MTC-SI vs PolySI: #sessions sweep", core.SI, axisSessions),
		fig7or8("fig8d", "MTC-SI vs PolySI: #txns sweep", core.SI, axisTxns),
		fig9a(), fig9b(),
		fig10or17("fig10a", "End-to-end SER: time vs #txns", core.SER, axisTxns, false),
		fig10or17("fig10b", "End-to-end SER: time vs #ops/txn", core.SER, axisOps, false),
		fig10or17("fig10c", "End-to-end SER: time vs #objects", core.SER, axisObjects, false),
		fig10or17("fig10d", "End-to-end SER: memory vs #txns", core.SER, axisTxns, true),
		fig10or17("fig10e", "End-to-end SER: memory vs #ops/txn", core.SER, axisOps, true),
		fig10or17("fig10f", "End-to-end SER: memory vs #objects", core.SER, axisObjects, true),
		fig11a(), fig11b(),
		incrementalExp(), detectionExp(),
		table2(),
		fig13("fig13a", core.SER), fig13("fig13b", core.SI),
		fig14("fig14a", core.SER), fig14("fig14b", core.SI),
		fig10or17("fig17a", "End-to-end SI: time vs #txns", core.SI, axisTxns, false),
		fig10or17("fig17b", "End-to-end SI: time vs #ops/txn", core.SI, axisOps, false),
		fig10or17("fig17c", "End-to-end SI: time vs #objects", core.SI, axisObjects, false),
		fig10or17("fig17d", "End-to-end SI: memory vs #txns", core.SI, axisTxns, true),
		fig10or17("fig17e", "End-to-end SI: memory vs #ops/txn", core.SI, axisOps, true),
		fig10or17("fig17f", "End-to-end SI: memory vs #objects", core.SI, axisObjects, true),
	}
}

// axis identifies the swept workload parameter of a sub-figure.
type axis int

const (
	axisDist axis = iota
	axisObjects
	axisSessions
	axisTxns
	axisOps
)

// genMTHistory runs an MT workload on a fresh store at the level's mode
// and returns the resulting history.
func genMTHistory(lvl core.Level, sessions, txnsPerSession, objects int, dist workload.DistKind, seed int64) *history.History {
	mode := kv.ModeSerializable
	if lvl == core.SI {
		mode = kv.ModeSI
	}
	s := kv.NewStore(mode)
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: sessions, Txns: txnsPerSession, Objects: objects,
		Dist: dist, Seed: seed, ReadOnlyFrac: 0.2,
	})
	return runner.Run(s, w, runner.Config{Retries: 8, DropAborted: true}).H
}

// table1 replays the anomaly fixtures (Table I plus the lattice extras)
// through all three strong checkers, reporting a 1 where the checker
// (correctly) rejects.
func table1() Experiment {
	return Experiment{
		ID:    "table1",
		Title: "Fig. 5 / Table I: 14 anomalies captured by MTs (1 = violation detected)",
		Run: func(float64) []Row {
			var rows []Row
			for _, f := range history.Fixtures() {
				for lvl, want := range map[core.Level]bool{
					core.SSER: f.ViolatesSSER, core.SER: f.ViolatesSER, core.SI: f.ViolatesSI,
				} {
					got := !core.Check(f.H, lvl).OK
					v := 0.0
					if got {
						v = 1.0
					}
					if got != want {
						v = -1 // would indicate a checker bug; tests forbid it
					}
					rows = append(rows, Row{Series: string(lvl), X: f.Name, Value: v, Unit: "count"})
				}
			}
			return rows
		},
	}
}

// fig7or8 compares verification time of the MTC checker against the
// corresponding baseline (Cobra for SER, PolySI for SI) on MT histories,
// sweeping one workload axis (Figures 7 and 8).
func fig7or8(id, title string, lvl core.Level, ax axis) Experiment {
	return Experiment{ID: id, Title: title, Run: func(scale float64) []Row {
		type point struct {
			label                       string
			sessions, txnsPerS, objects int
			dist                        workload.DistKind
		}
		base := point{sessions: 10, txnsPerS: scaled(200, scale, 10), objects: 100, dist: workload.Uniform}
		var pts []point
		switch ax {
		case axisDist:
			for _, d := range workload.Distributions() {
				p := base
				p.dist = d
				p.label = string(d)
				pts = append(pts, p)
			}
		case axisObjects:
			for _, o := range []int{10, 100, 1000, 10000} {
				p := base
				p.objects = o
				p.label = fmt.Sprintf("objects=%d", o)
				pts = append(pts, p)
			}
		case axisSessions:
			for _, s := range []int{5, 10, 15, 20, 25} {
				p := base
				p.sessions = s
				p.label = fmt.Sprintf("sessions=%d", s)
				pts = append(pts, p)
			}
		case axisTxns:
			for _, n := range []int{100, 1000, 3000, 10000} {
				p := base
				p.txnsPerS = scaled(n, scale, 5) / base.sessions
				if p.txnsPerS == 0 {
					p.txnsPerS = 1
				}
				p.label = fmt.Sprintf("txns=%d", n)
				pts = append(pts, p)
			}
		}
		mtcName, baseName := "MTC-SER", "Cobra"
		if lvl == core.SI {
			mtcName, baseName = "MTC-SI", "PolySI"
		}
		var rows []Row
		for i, p := range pts {
			h := genMTHistory(lvl, p.sessions, p.txnsPerS, p.objects, p.dist, int64(i+1))
			// Dispatch through the registry's context-aware path — the same
			// entry point the v1 job API serves — so the comparison covers
			// the adapters production traffic exercises.
			ctx := context.Background()
			tMTC, _ := measure(func() {
				rep, err := checker.Run(ctx, "mtc", h, checker.Options{Level: lvl})
				if err != nil || !rep.OK {
					panic("bench: valid history rejected by MTC")
				}
			})
			baseline := "cobra"
			if lvl == core.SI {
				baseline = "polysi"
			}
			tBase, _ := measure(func() {
				rep, err := checker.Run(ctx, baseline, h, checker.Options{Level: lvl})
				if err != nil || !rep.OK {
					panic("bench: valid history rejected by baseline")
				}
			})
			rows = append(rows,
				Row{Series: mtcName + " verify", X: p.label, Value: tMTC, Unit: "s"},
				Row{Series: baseName + " verify", X: p.label, Value: tBase, Unit: "s"},
			)
		}
		return rows
	}}
}

// fig9a sweeps the fraction of concurrent sessions on synthetic LWT
// histories, comparing MTC-SSER (VLLWT) against Porcupine.
func fig9a() Experiment {
	return Experiment{
		ID:    "fig9a",
		Title: "MTC-SSER vs Porcupine: concurrent sessions sweep (LWT histories)",
		Run: func(scale float64) []Row {
			var rows []Row
			for i, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
				ops := workload.GenerateLWT(workload.LWTConfig{
					Sessions: 16, TxnsPerSession: scaled(120, scale, 6),
					ConcurrentFrac: frac, Keys: 1, Seed: int64(i + 1),
				})
				label := fmt.Sprintf("concurrent=%d%%", int(frac*100))
				tMTC, _ := measure(func() {
					if !core.VLLWT(ops).OK {
						panic("bench: valid LWT history rejected by VLLWT")
					}
				})
				tPor, _ := measure(func() {
					if !porcupine.Check(ops) {
						panic("bench: valid LWT history rejected by Porcupine")
					}
				})
				rows = append(rows,
					Row{Series: "MTC-SSER verify", X: label, Value: tMTC, Unit: "s"},
					Row{Series: "Porcupine verify", X: label, Value: tPor, Unit: "s"},
				)
			}
			return rows
		},
	}
}

// fig9b sweeps transactions per session at full concurrency.
func fig9b() Experiment {
	return Experiment{
		ID:    "fig9b",
		Title: "MTC-SSER vs Porcupine: #txns/session sweep (LWT histories)",
		Run: func(scale float64) []Row {
			var rows []Row
			for i, tps := range []int{2, 4, 6, 8, 10} {
				ops := workload.GenerateLWT(workload.LWTConfig{
					Sessions: scaled(60, scale, 4), TxnsPerSession: tps,
					ConcurrentFrac: 1, Keys: 1, Seed: int64(i + 1),
				})
				label := fmt.Sprintf("txns/session=%d", tps)
				tMTC, _ := measure(func() { core.VLLWT(ops) })
				tPor, _ := measure(func() { porcupine.Check(ops) })
				rows = append(rows,
					Row{Series: "MTC-SSER verify", X: label, Value: tMTC, Unit: "s"},
					Row{Series: "Porcupine verify", X: label, Value: tPor, Unit: "s"},
				)
			}
			return rows
		},
	}
}

// fig10or17 measures the full end-to-end pipeline — history generation on
// the store plus verification — for MTC with MT workloads against the
// baseline with GT workloads (Cobra for SER in Figure 10, PolySI for SI in
// Figure 17), reporting either time (decomposed by stage) or memory.
func fig10or17(id, title string, lvl core.Level, ax axis, memory bool) Experiment {
	return Experiment{ID: id, Title: title, Run: func(scale float64) []Row {
		type point struct {
			label         string
			txns, ops, ob int
		}
		base := point{txns: scaled(500, scale, 20), ops: 12, ob: 200}
		txnSweep := []int{100, 500, 1000, 2000}
		if lvl == core.SI {
			// PolySI's SI-composition solving on blind-write GT workloads
			// is dramatically more expensive than Cobra's plain
			// acyclicity (that asymmetry is the figure's result); smaller
			// default sizes keep the sweep minutes, not hours. Raise
			// -scale to push further out.
			base.txns = scaled(300, scale, 20)
			txnSweep = []int{100, 300, 600, 1000}
		}
		var pts []point
		switch ax {
		case axisTxns:
			for _, n := range txnSweep {
				p := base
				p.txns = scaled(n, scale, 10)
				p.label = fmt.Sprintf("txns=%d", n)
				pts = append(pts, p)
			}
		case axisOps:
			for _, o := range []int{4, 12, 16, 20, 24} {
				p := base
				p.ops = o
				p.label = fmt.Sprintf("ops/txn=%d", o)
				pts = append(pts, p)
			}
		case axisObjects:
			for _, o := range []int{100, 200, 500, 1000} {
				p := base
				p.ob = o
				p.label = fmt.Sprintf("objects=%d", o)
				pts = append(pts, p)
			}
		}
		sessions := 10
		mode := kv.ModeSerializable
		mtcName, baseName := "MTC", "Cobra"
		if lvl == core.SI {
			mode = kv.ModeSI
			mtcName, baseName = "MTC", "PolySI"
		}
		var rows []Row
		for i, p := range pts {
			seed := int64(i + 1)
			// MTC pipeline: MT workload.
			var mtcH *history.History
			tGenM, mGenM := measure(func() {
				mtcH = genMTHistory(lvl, sessions, p.txns/sessions+1, p.ob, workload.Uniform, seed)
			})
			tVerM, mVerM := measure(func() { core.Check(mtcH, lvl) })
			// Baseline pipeline: GT workload.
			var gtH *history.History
			tGenG, mGenG := measure(func() {
				s := kv.NewStore(mode)
				w := workload.GenerateGT(workload.GTConfig{
					Sessions: sessions, Txns: p.txns/sessions + 1, Objects: p.ob,
					OpsPerTxn: p.ops, Seed: seed,
				})
				gtH = runner.Run(s, w, runner.Config{Retries: 8, DropAborted: true}).H
			})
			baseline := "cobra"
			if lvl == core.SI {
				baseline = "polysi"
			}
			tVerG, mVerG := measure(func() {
				_, _ = checker.Run(context.Background(), baseline, gtH, checker.Options{Level: lvl})
			})
			if memory {
				rows = append(rows,
					Row{Series: mtcName + " memory", X: p.label, Value: mGenM + mVerM, Unit: "MB"},
					Row{Series: baseName + " memory", X: p.label, Value: mGenG + mVerG, Unit: "MB"},
				)
			} else {
				rows = append(rows,
					Row{Series: mtcName + " gen", X: p.label, Value: tGenM, Unit: "s"},
					Row{Series: mtcName + " verify", X: p.label, Value: tVerM, Unit: "s"},
					Row{Series: baseName + " gen", X: p.label, Value: tGenG, Unit: "s"},
					Row{Series: baseName + " verify", X: p.label, Value: tVerG, Unit: "s"},
				)
			}
		}
		return rows
	}}
}

// fig11a measures abort rates of GT vs MT workloads under SER and SI as
// sessions increase.
func fig11a() Experiment {
	return Experiment{
		ID:    "fig11a",
		Title: "Abort rates: GT vs MT workloads vs #sessions",
		Run: func(scale float64) []Row {
			var rows []Row
			txns := scaled(60, scale, 10)
			for _, sessions := range []int{5, 10, 15, 20, 25} {
				label := fmt.Sprintf("sessions=%d", sessions)
				for _, cfg := range []struct {
					series string
					mode   kv.Mode
					gt     bool
				}{
					{"GT-SER", kv.ModeSerializable, true},
					{"GT-SI", kv.ModeSI, true},
					{"MT-SER", kv.ModeSerializable, false},
					{"MT-SI", kv.ModeSI, false},
				} {
					s := kv.NewStore(cfg.mode)
					var w *workload.Workload
					if cfg.gt {
						w = workload.GenerateGT(workload.GTConfig{
							Sessions: sessions, Txns: txns, Objects: 40, OpsPerTxn: 20, Seed: 7,
						})
					} else {
						w = workload.GenerateMT(workload.MTConfig{
							Sessions: sessions, Txns: txns, Objects: 40, Dist: workload.Uniform, Seed: 7,
						})
					}
					res := runner.Run(s, w, runner.Config{Retries: 0})
					rows = append(rows, Row{Series: cfg.series, X: label, Value: res.AbortRate() * 100, Unit: "%"})
				}
			}
			return rows
		},
	}
}

// fig11b measures abort rates against skewness (#txns / #objects).
func fig11b() Experiment {
	return Experiment{
		ID:    "fig11b",
		Title: "Abort rates: GT vs MT workloads vs skewness (#txns/#objects)",
		Run: func(scale float64) []Row {
			var rows []Row
			sessions := 10
			txns := scaled(40, scale, 10)
			total := sessions * txns
			for _, skew := range []int{1, 5, 10, 15, 20, 25} {
				objects := total / skew
				if objects < 1 {
					objects = 1
				}
				label := fmt.Sprintf("skew=%d", skew)
				for _, cfg := range []struct {
					series string
					mode   kv.Mode
					gt     bool
				}{
					{"GT-SER", kv.ModeSerializable, true},
					{"GT-SI", kv.ModeSI, true},
					{"MT-SER", kv.ModeSerializable, false},
					{"MT-SI", kv.ModeSI, false},
				} {
					s := kv.NewStore(cfg.mode)
					var w *workload.Workload
					if cfg.gt {
						w = workload.GenerateGT(workload.GTConfig{
							Sessions: sessions, Txns: txns, Objects: objects, OpsPerTxn: 20, Seed: 7,
						})
					} else {
						w = workload.GenerateMT(workload.MTConfig{
							Sessions: sessions, Txns: txns, Objects: objects, Dist: workload.Uniform, Seed: 7,
						})
					}
					res := runner.Run(s, w, runner.Config{Retries: 0})
					rows = append(rows, Row{Series: cfg.series, X: label, Value: res.AbortRate() * 100, Unit: "%"})
				}
			}
			return rows
		},
	}
}

// table2 rediscovers the six production bugs, reporting counterexample
// position (transaction count until first detection) and stage times.
func table2() Experiment {
	return Experiment{
		ID:    "table2",
		Title: "Table II: rediscovered isolation bugs (fault-injected substrate)",
		Run: func(scale float64) []Row {
			var rows []Row
			for _, b := range faults.Bugs() {
				found := false
				var genT, verT, cePos float64
				for seed := int64(1); seed <= 10 && !found; seed++ {
					if b.LWT {
						s := b.NewStore(seed)
						var ops []core.LWT
						g, _ := measure(func() {
							res := runner.RunLWT(s, runner.LWTConfig{
								Sessions: 8, OpsPerSession: scaled(60, scale, 10), Keys: 2, Seed: seed,
							})
							ops = res.Ops
						})
						v, _ := measure(func() {
							if r := core.VLLWT(ops); !r.OK {
								found = true
							}
						})
						genT, verT, cePos = g, v, float64(len(ops))
						continue
					}
					s := b.NewStore(seed)
					w := workload.GenerateMT(workload.MTConfig{
						Sessions: 8, Txns: scaled(120, scale, 20), Objects: 3,
						Dist: workload.Exponential, Seed: seed, ReadOnlyFrac: 0.3,
					})
					var h *history.History
					g, _ := measure(func() {
						h = runner.Run(s, w, runner.Config{Retries: 4}).H
					})
					var r core.Result
					v, _ := measure(func() { r = core.Check(h, b.Claimed) })
					genT, verT = g, v
					if !r.OK {
						found = true
						cePos = float64(cePosition(r))
					}
				}
				detected := 0.0
				if found {
					detected = 1.0
				}
				rows = append(rows,
					Row{Series: "detected", X: b.Name, Value: detected, Unit: "count"},
					Row{Series: "CE position", X: b.Name, Value: cePos, Unit: "txn"},
					Row{Series: "hist gen", X: b.Name, Value: genT, Unit: "s"},
					Row{Series: "hist verify", X: b.Name, Value: verT, Unit: "s"},
				)
			}
			return rows
		},
	}
}

// cePosition extracts the smallest transaction ID involved in the
// counterexample, mirroring Table II's "CE position".
func cePosition(r core.Result) int {
	min := r.NumTxns
	for _, e := range r.Cycle {
		if e.From < min {
			min = e.From
		}
	}
	if r.Divergence != nil && r.Divergence.Reader1 < min {
		min = r.Divergence.Reader1
	}
	for _, a := range r.Anomalies {
		if a.Txn < min {
			min = a.Txn
		}
	}
	return min
}

// fig13 counts detected bugs across trials: MTC with MTs (len<=4) against
// Elle with list-append and rw-register workloads at varying max
// transaction lengths, on the faulty substrate standing in for PostgreSQL
// (SER, write skew) or MongoDB (SI, dirty aborts).
func fig13(id string, lvl core.Level) Experiment {
	title := "Bugs found: MTC vs Elle on PostgreSQL-like store (SER)"
	if lvl == core.SI {
		title = "Bugs found: MTC vs Elle on MongoDB-like store (SI)"
	}
	return Experiment{ID: id, Title: title, Run: func(scale float64) []Row {
		trials := scaled(10, scale, 3)
		var rows []Row
		for _, maxLen := range []int{2, 4, 8, 12} {
			label := fmt.Sprintf("maxlen=%d", maxLen)
			appendHits, wrHits := 0, 0
			for trial := 0; trial < trials; trial++ {
				seed := int64(trial*31 + maxLen)
				// elle-append
				s := bugStore(lvl, seed)
				wa := workload.GenerateListAppend(workload.ListAppendConfig{
					Sessions: 8, Txns: scaled(60, scale, 10), Objects: 10,
					MaxTxnLen: maxLen, Dist: workload.Exponential, Seed: seed,
				})
				ha, _ := runner.RunListAppend(s, wa, runner.Config{Retries: 4})
				if !elle.CheckListAppend(ha, elle.Level(lvl)).OK {
					appendHits++
				}
				// elle-wr
				s = bugStore(lvl, seed+1000)
				ww := workload.GenerateRWRegister(workload.RWRegisterConfig{
					Sessions: 8, Txns: scaled(60, scale, 10), Objects: 10,
					MaxTxnLen: maxLen, Dist: workload.Exponential, Seed: seed,
				})
				hw := runner.Run(s, ww, runner.Config{Retries: 4}).H
				if !elle.CheckRWRegister(hw, elle.Level(lvl)).OK {
					wrHits++
				}
			}
			rows = append(rows,
				Row{Series: "elle-append", X: label, Value: float64(appendHits), Unit: "count"},
				Row{Series: "elle-wr", X: label, Value: float64(wrHits), Unit: "count"},
			)
		}
		// MTC: fixed transaction length <= 4.
		mtcHits := 0
		for trial := 0; trial < trials; trial++ {
			seed := int64(trial*17 + 3)
			s := bugStore(lvl, seed)
			w := workload.GenerateMT(workload.MTConfig{
				Sessions: 8, Txns: scaled(60, scale, 10), Objects: 10,
				Dist: workload.Exponential, Seed: seed, ReadOnlyFrac: 0.25,
			})
			h := runner.Run(s, w, runner.Config{Retries: 4}).H
			if !core.Check(h, lvl).OK {
				mtcHits++
			}
		}
		rows = append(rows, Row{Series: "mtc-mini", X: "maxlen=4", Value: float64(mtcHits), Unit: "count"})
		return rows
	}}
}

// bugStore builds the faulty store for fig13/fig14: the PostgreSQL-like
// write-skew bug for SER, the MongoDB-like dirty-abort bug for SI.
func bugStore(lvl core.Level, seed int64) *kv.Store {
	if lvl == core.SI {
		return kv.NewFaultyStore(kv.ModeSI, kv.Faults{DirtyAbort: 0.05, Seed: seed})
	}
	return kv.NewFaultyStore(kv.ModeSerializable, kv.Faults{WriteSkew: 0.3, Seed: seed})
}

// fig14 measures end-to-end time (generation and verification) for the
// fig13 configurations.
func fig14(id string, lvl core.Level) Experiment {
	title := "End-to-end time: MTC vs Elle on PostgreSQL-like store (SER)"
	if lvl == core.SI {
		title = "End-to-end time: MTC vs Elle on MongoDB-like store (SI)"
	}
	return Experiment{ID: id, Title: title, Run: func(scale float64) []Row {
		var rows []Row
		txns := scaled(80, scale, 10)
		for _, maxLen := range []int{2, 4, 8, 12} {
			label := fmt.Sprintf("maxlen=%d", maxLen)
			seed := int64(maxLen)
			s := bugStore(lvl, seed)
			var ha *elle.History
			g1, _ := measure(func() {
				wa := workload.GenerateListAppend(workload.ListAppendConfig{
					Sessions: 8, Txns: txns, Objects: 10, MaxTxnLen: maxLen,
					Dist: workload.Exponential, Seed: seed,
				})
				ha, _ = runner.RunListAppend(s, wa, runner.Config{Retries: 4})
			})
			v1, _ := measure(func() { elle.CheckListAppend(ha, elle.Level(lvl)) })
			s = bugStore(lvl, seed+1)
			var hw *history.History
			g2, _ := measure(func() {
				ww := workload.GenerateRWRegister(workload.RWRegisterConfig{
					Sessions: 8, Txns: txns, Objects: 10, MaxTxnLen: maxLen,
					Dist: workload.Exponential, Seed: seed,
				})
				hw = runner.Run(s, ww, runner.Config{Retries: 4}).H
			})
			v2, _ := measure(func() { elle.CheckRWRegister(hw, elle.Level(lvl)) })
			rows = append(rows,
				Row{Series: "elle-append gen", X: label, Value: g1, Unit: "s"},
				Row{Series: "elle-append verify", X: label, Value: v1, Unit: "s"},
				Row{Series: "elle-wr gen", X: label, Value: g2, Unit: "s"},
				Row{Series: "elle-wr verify", X: label, Value: v2, Unit: "s"},
			)
		}
		// MTC at its fixed length 4.
		seed := int64(99)
		s := bugStore(lvl, seed)
		var h *history.History
		g, _ := measure(func() {
			w := workload.GenerateMT(workload.MTConfig{
				Sessions: 8, Txns: txns, Objects: 10,
				Dist: workload.Exponential, Seed: seed, ReadOnlyFrac: 0.25,
			})
			h = runner.Run(s, w, runner.Config{Retries: 4}).H
		})
		v, _ := measure(func() { core.Check(h, lvl) })
		rows = append(rows,
			Row{Series: "mtc gen", X: "maxlen=4", Value: g, Unit: "s"},
			Row{Series: "mtc verify", X: "maxlen=4", Value: v, Unit: "s"},
		)
		return rows
	}}
}
