package bench

import (
	"fmt"

	"mtc/internal/core"
	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

// incrementalExp compares the batch MTC checkers against the online
// incremental engine on the same histories: total verification time at
// SER and SI across history sizes. The two decide the same predicate, so
// the gap is pure bookkeeping overhead of the online topological order —
// the price of having a verdict at every prefix.
func incrementalExp() Experiment {
	return Experiment{
		ID:    "incr",
		Title: "Batch vs incremental checking: time vs #txns (same verdicts)",
		Run: func(scale float64) []Row {
			var rows []Row
			for _, txns := range []int{2000, 5000, 10000, 20000} {
				n := scaled(txns, scale, 200)
				h := genMTHistory(core.SER, 10, n/10, n/20, workload.Zipfian, 42)
				x := fmt.Sprintf("%d", n)
				for _, lvl := range []core.Level{core.SER, core.SI} {
					lvl := lvl
					sec, _ := measure(func() {
						if r := core.Check(h, lvl); !r.OK {
							panic("bench: clean history rejected")
						}
					})
					rows = append(rows, Row{Series: "batch-" + string(lvl), X: x, Value: sec, Unit: "s"})
					sec, _ = measure(func() {
						if r := core.CheckIncremental(h, lvl); !r.OK {
							panic("bench: clean history rejected incrementally")
						}
					})
					rows = append(rows, Row{Series: "incremental-" + string(lvl), X: x, Value: sec, Unit: "s"})
				}
			}
			return rows
		},
	}
}

// detectionExp measures the online engine's detection latency on buggy
// histories: how many transactions are ingested before the verdict
// flips, against the full history length the batch checker must wait
// for. Lower is better; the batch series is the history length by
// definition.
func detectionExp() Experiment {
	return Experiment{
		ID:    "incrdet",
		Title: "Violation detection position: incremental vs batch (txns ingested)",
		Run: func(scale float64) []Row {
			var rows []Row
			for _, b := range faults.Bugs() {
				if b.LWT || b.Claimed == core.SSER {
					continue
				}
				for seed := int64(1); seed <= 6; seed++ {
					n := scaled(2000, scale, 100)
					w := workload.GenerateMT(workload.MTConfig{
						Sessions: 8, Txns: n / 8, Objects: 3,
						Dist: workload.Exponential, Seed: seed, ReadOnlyFrac: 0.2,
					})
					h := runBugHistory(b, w, seed)
					if core.Check(h, b.Claimed).OK {
						continue
					}
					inc := core.NewIncremental(b.Claimed)
					at := len(h.Txns)
					for i := range h.Txns {
						var vio *core.Result
						if h.HasInit && i == 0 {
							vio = inc.InitTxn(historyKeys(h)...)
						} else {
							vio = inc.Add(h.Txns[i])
						}
						if vio != nil {
							at = i + 1
							break
						}
					}
					rows = append(rows,
						Row{Series: "incremental", X: b.Name, Value: float64(at), Unit: "txns"},
						Row{Series: "batch (full history)", X: b.Name, Value: float64(len(h.Txns)), Unit: "txns"},
					)
					break
				}
			}
			return rows
		},
	}
}

// runBugHistory executes w against the bug's store.
func runBugHistory(b faults.Bug, w *workload.Workload, seed int64) *history.History {
	return runner.Run(b.NewStore(seed), w, runner.Config{Retries: 4}).H
}

// historyKeys lists the keys of the initial transaction.
func historyKeys(h *history.History) []history.Key {
	var keys []history.Key
	for _, op := range h.Txns[0].Ops {
		keys = append(keys, op.Key)
	}
	return keys
}
