package checker

import (
	"context"
	"fmt"
	"time"

	"mtc/internal/cobra"
	"mtc/internal/core"
	"mtc/internal/elle"
	"mtc/internal/graph"
	"mtc/internal/history"
	"mtc/internal/polysi"
	"mtc/internal/porcupine"
)

func init() {
	Register(mtcChecker{})
	Register(incrementalChecker{})
	Register(cobraChecker{})
	Register(polysiChecker{})
	Register(elleChecker{})
	Register(porcupineChecker{})
}

// millis converts a duration to the PhaseTiming unit.
func millis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ReportFromResult normalises a core.Result into the wire Report shape;
// the adapters, the streaming session endpoints of mtcserve and the
// CLIs' structured output all share it.
func ReportFromResult(name string, r core.Result) Report {
	v := Report{
		Checker: name, Level: r.Level, OK: r.OK,
		Txns: r.NumTxns, Edges: r.NumEdges,
		Anomalies: r.Anomalies, Cycle: r.Cycle,
		CompactedEpochs: r.CompactedEpochs, CompactedTxns: r.CompactedTxns,
	}
	if r.Divergence != nil {
		v.Detail = r.Divergence.String()
	}
	if len(r.Cycle) > 0 {
		v.Detail = graph.FormatCycle(r.Cycle)
	}
	return v
}

// mtcChecker serves the paper's batch MTC algorithms (Section IV).
type mtcChecker struct{}

func (mtcChecker) Name() string    { return "mtc" }
func (mtcChecker) Levels() []Level { return []Level{core.SI, core.SER, core.SSER} }

func (mtcChecker) Check(ctx context.Context, h *history.History, opts Options) (Report, error) {
	copts := core.Options{SkipPreCheck: opts.SkipPreCheck, SparseRT: opts.SparseRT, Parallelism: opts.Parallelism, Index: opts.Index}
	start := time.Now()
	r, err := core.CheckCtx(ctx, h, opts.Level, copts)
	if err != nil {
		return Report{}, err
	}
	rep := ReportFromResult("mtc", r)
	rep.Timings = []PhaseTiming{{Phase: "check", Millis: millis(time.Since(start))}}
	return rep, nil
}

// incrementalChecker replays the history through the online engine; on
// live streams the same engine is driven directly (core.Incremental).
// Options.Window > 0 selects the epoch-windowed replay: bounded memory,
// identical verdicts.
type incrementalChecker struct{}

func (incrementalChecker) Name() string    { return "mtc-incremental" }
func (incrementalChecker) Levels() []Level { return []Level{core.SI, core.SER} }

func (incrementalChecker) Check(ctx context.Context, h *history.History, opts Options) (Report, error) {
	start := time.Now()
	r, err := core.CheckIncrementalWindowedCtx(ctx, h, opts.Level, opts.Window)
	if err != nil {
		return Report{}, err
	}
	rep := ReportFromResult("mtc-incremental", r)
	rep.Timings = []PhaseTiming{{Phase: "replay", Millis: millis(time.Since(start))}}
	return rep, nil
}

// cobraChecker serves the Cobra SER baseline.
type cobraChecker struct{}

func (cobraChecker) Name() string    { return "cobra" }
func (cobraChecker) Levels() []Level { return []Level{core.SER} }

func (cobraChecker) Check(ctx context.Context, h *history.History, opts Options) (Report, error) {
	rep, err := cobra.CheckSERPar(ctx, h, opts.Parallelism)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Checker: "cobra", Level: core.SER, OK: rep.OK,
		Txns: len(h.Txns), Anomalies: rep.Anomalies,
		Detail: fmt.Sprintf("constraints=%d forced=%d residual=%d", rep.Constraints, rep.Forced, rep.Residual),
		Timings: []PhaseTiming{
			{Phase: "build", Millis: millis(rep.BuildTime)},
			{Phase: "prune", Millis: millis(rep.PruneTime)},
			{Phase: "solve", Millis: millis(rep.SolveTime)},
		},
	}, nil
}

// polysiChecker serves the PolySI SI baseline.
type polysiChecker struct{}

func (polysiChecker) Name() string    { return "polysi" }
func (polysiChecker) Levels() []Level { return []Level{core.SI} }

func (polysiChecker) Check(ctx context.Context, h *history.History, opts Options) (Report, error) {
	rep, err := polysi.CheckSIPar(ctx, h, opts.Parallelism)
	if err != nil {
		return Report{}, err
	}
	return Report{
		Checker: "polysi", Level: core.SI, OK: rep.OK,
		Txns: len(h.Txns), Anomalies: rep.Anomalies,
		Detail: fmt.Sprintf("constraints=%d forced=%d residual=%d", rep.Constraints, rep.Forced, rep.Residual),
		Timings: []PhaseTiming{
			{Phase: "build", Millis: millis(rep.BuildTime)},
			{Phase: "prune", Millis: millis(rep.PruneTime)},
			{Phase: "solve", Millis: millis(rep.SolveTime)},
		},
	}, nil
}

// elleChecker serves Elle's read-write-register mode.
type elleChecker struct{}

func (elleChecker) Name() string    { return "elle" }
func (elleChecker) Levels() []Level { return []Level{core.SER, core.SI} }

func (elleChecker) Check(ctx context.Context, h *history.History, opts Options) (Report, error) {
	start := time.Now()
	rep, err := elle.CheckRWRegisterCtx(ctx, h, elle.Level(opts.Level))
	if err != nil {
		return Report{}, err
	}
	v := Report{
		Checker: "elle", Level: opts.Level, OK: rep.OK,
		Txns: len(h.Txns), Cycle: rep.Cycle, Detail: rep.Reason,
		Timings: []PhaseTiming{{Phase: "check", Millis: millis(time.Since(start))}},
	}
	if len(rep.Cycle) > 0 {
		v.Detail = graph.FormatCycle(rep.Cycle)
	}
	return v, nil
}

// porcupineChecker serves the Porcupine (WGL) linearizability baseline
// over the lightweight-transaction path: the history must be LWT-shaped —
// every committed transaction a single-key insert (one blind write) or
// compare-and-set (read then write of the read key).
type porcupineChecker struct{}

func (porcupineChecker) Name() string    { return "porcupine" }
func (porcupineChecker) Levels() []Level { return []Level{core.SSER} }

func (porcupineChecker) Check(ctx context.Context, h *history.History, opts Options) (Report, error) {
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	convStart := time.Now()
	ops, err := LWTFromHistory(h)
	if err != nil {
		return Report{}, &UnsupportedHistoryError{Checker: "porcupine", Reason: err.Error()}
	}
	convTime := time.Since(convStart)
	solveStart := time.Now()
	ok, err := porcupine.CheckCtx(ctx, ops)
	if err != nil {
		return Report{}, err
	}
	v := Report{
		Checker: "porcupine", Level: core.SSER, OK: ok, Txns: len(h.Txns),
		Timings: []PhaseTiming{
			{Phase: "convert", Millis: millis(convTime)},
			{Phase: "solve", Millis: millis(time.Since(solveStart))},
		},
	}
	if !ok {
		v.Detail = "history is not linearizable (WGL search exhausted)"
	}
	return v, nil
}

// LWTFromHistory converts an LWT-shaped history into the operation list
// the Porcupine and VLLWT checkers consume. The initial transaction, when
// present, becomes one insert per key; every other committed transaction
// must write exactly one key once, either blindly (insert) or after
// reading that same key (compare-and-set). Aborted transactions are
// dropped — a failed CAS is equivalent to a read and never joins a write
// chain.
func LWTFromHistory(h *history.History) ([]core.LWT, error) {
	var ops []core.LWT
	for i := range h.Txns {
		t := &h.Txns[i]
		if !t.Committed {
			continue
		}
		if h.HasInit && i == 0 {
			for _, op := range t.Ops {
				ops = append(ops, core.LWT{
					ID: len(ops), Key: op.Key, Kind: core.LWTInsert, Write: op.Value,
					Start: t.Start, Finish: t.Finish,
				})
			}
			continue
		}
		var writes, reads []history.Op
		for _, op := range t.Ops {
			if op.Kind == history.OpWrite {
				writes = append(writes, op)
			} else {
				reads = append(reads, op)
			}
		}
		if len(writes) != 1 {
			return nil, fmt.Errorf("txn %d is not LWT-shaped: %d writes (want exactly 1)", i, len(writes))
		}
		w := writes[0]
		o := core.LWT{ID: len(ops), Key: w.Key, Write: w.Value, Start: t.Start, Finish: t.Finish}
		switch {
		case len(reads) == 0:
			o.Kind = core.LWTInsert
		case len(reads) == 1 && reads[0].Key == w.Key:
			o.Kind = core.LWTRW
			o.Read = reads[0].Value
		default:
			return nil, fmt.Errorf("txn %d is not LWT-shaped: reads must be a single read of the written key", i)
		}
		ops = append(ops, o)
	}
	return ops, nil
}
