package checker

import (
	"fmt"

	"mtc/internal/cobra"
	"mtc/internal/core"
	"mtc/internal/elle"
	"mtc/internal/graph"
	"mtc/internal/history"
	"mtc/internal/polysi"
	"mtc/internal/porcupine"
)

func init() {
	Register(mtcChecker{})
	Register(incrementalChecker{})
	Register(cobraChecker{})
	Register(polysiChecker{})
	Register(elleChecker{})
	Register(porcupineChecker{})
}

// fromResult normalises a core.Result.
func fromResult(name string, r core.Result) Verdict {
	v := Verdict{
		Checker: name, Level: r.Level, OK: r.OK,
		Txns: r.NumTxns, Edges: r.NumEdges,
		Anomalies: r.Anomalies, Cycle: r.Cycle,
	}
	if r.Divergence != nil {
		v.Detail = r.Divergence.String()
	}
	if len(r.Cycle) > 0 {
		v.Detail = graph.FormatCycle(r.Cycle)
	}
	return v
}

// mtcChecker serves the paper's batch MTC algorithms (Section IV).
type mtcChecker struct{}

func (mtcChecker) Name() string    { return "mtc" }
func (mtcChecker) Levels() []Level { return []Level{core.SI, core.SER, core.SSER} }

func (mtcChecker) Check(h *history.History, opts Options) Verdict {
	copts := core.Options{SkipPreCheck: opts.SkipPreCheck, SparseRT: opts.SparseRT}
	var r core.Result
	switch opts.Level {
	case core.SSER:
		r = core.CheckSSEROpt(h, copts)
	case core.SER:
		r = core.CheckSEROpt(h, copts)
	default:
		r = core.CheckSIOpt(h, copts)
	}
	return fromResult("mtc", r)
}

// incrementalChecker replays the history through the online engine; on
// live streams the same engine is driven directly (core.Incremental).
type incrementalChecker struct{}

func (incrementalChecker) Name() string    { return "mtc-incremental" }
func (incrementalChecker) Levels() []Level { return []Level{core.SI, core.SER} }

func (incrementalChecker) Check(h *history.History, opts Options) Verdict {
	return fromResult("mtc-incremental", core.CheckIncremental(h, opts.Level))
}

// cobraChecker serves the Cobra SER baseline.
type cobraChecker struct{}

func (cobraChecker) Name() string    { return "cobra" }
func (cobraChecker) Levels() []Level { return []Level{core.SER} }

func (cobraChecker) Check(h *history.History, opts Options) Verdict {
	rep := cobra.CheckSER(h)
	return Verdict{
		Checker: "cobra", Level: core.SER, OK: rep.OK,
		Txns: len(h.Txns), Anomalies: rep.Anomalies,
		Detail: fmt.Sprintf("constraints=%d forced=%d residual=%d", rep.Constraints, rep.Forced, rep.Residual),
	}
}

// polysiChecker serves the PolySI SI baseline.
type polysiChecker struct{}

func (polysiChecker) Name() string    { return "polysi" }
func (polysiChecker) Levels() []Level { return []Level{core.SI} }

func (polysiChecker) Check(h *history.History, opts Options) Verdict {
	rep := polysi.CheckSI(h)
	return Verdict{
		Checker: "polysi", Level: core.SI, OK: rep.OK,
		Txns: len(h.Txns), Anomalies: rep.Anomalies,
		Detail: fmt.Sprintf("constraints=%d forced=%d residual=%d", rep.Constraints, rep.Forced, rep.Residual),
	}
}

// elleChecker serves Elle's read-write-register mode.
type elleChecker struct{}

func (elleChecker) Name() string    { return "elle" }
func (elleChecker) Levels() []Level { return []Level{core.SER, core.SI} }

func (elleChecker) Check(h *history.History, opts Options) Verdict {
	rep := elle.CheckRWRegister(h, elle.Level(opts.Level))
	v := Verdict{
		Checker: "elle", Level: opts.Level, OK: rep.OK,
		Txns: len(h.Txns), Cycle: rep.Cycle, Detail: rep.Reason,
	}
	if len(rep.Cycle) > 0 {
		v.Detail = graph.FormatCycle(rep.Cycle)
	}
	return v
}

// porcupineChecker serves the Porcupine (WGL) linearizability baseline
// over the lightweight-transaction path: the history must be LWT-shaped —
// every committed transaction a single-key insert (one blind write) or
// compare-and-set (read then write of the read key).
type porcupineChecker struct{}

func (porcupineChecker) Name() string    { return "porcupine" }
func (porcupineChecker) Levels() []Level { return []Level{core.SSER} }

func (porcupineChecker) Check(h *history.History, opts Options) Verdict {
	ops, err := LWTFromHistory(h)
	if err != nil {
		return Verdict{Checker: "porcupine", Level: core.SSER, Txns: len(h.Txns), Err: err.Error()}
	}
	ok := porcupine.Check(ops)
	v := Verdict{Checker: "porcupine", Level: core.SSER, OK: ok, Txns: len(h.Txns)}
	if !ok {
		v.Detail = "history is not linearizable (WGL search exhausted)"
	}
	return v
}

// LWTFromHistory converts an LWT-shaped history into the operation list
// the Porcupine and VLLWT checkers consume. The initial transaction, when
// present, becomes one insert per key; every other committed transaction
// must write exactly one key once, either blindly (insert) or after
// reading that same key (compare-and-set). Aborted transactions are
// dropped — a failed CAS is equivalent to a read and never joins a write
// chain.
func LWTFromHistory(h *history.History) ([]core.LWT, error) {
	var ops []core.LWT
	for i := range h.Txns {
		t := &h.Txns[i]
		if !t.Committed {
			continue
		}
		if h.HasInit && i == 0 {
			for _, op := range t.Ops {
				ops = append(ops, core.LWT{
					ID: len(ops), Key: op.Key, Kind: core.LWTInsert, Write: op.Value,
					Start: t.Start, Finish: t.Finish,
				})
			}
			continue
		}
		var writes, reads []history.Op
		for _, op := range t.Ops {
			if op.Kind == history.OpWrite {
				writes = append(writes, op)
			} else {
				reads = append(reads, op)
			}
		}
		if len(writes) != 1 {
			return nil, fmt.Errorf("txn %d is not LWT-shaped: %d writes (want exactly 1)", i, len(writes))
		}
		w := writes[0]
		o := core.LWT{ID: len(ops), Key: w.Key, Write: w.Value, Start: t.Start, Finish: t.Finish}
		switch {
		case len(reads) == 0:
			o.Kind = core.LWTInsert
		case len(reads) == 1 && reads[0].Key == w.Key:
			o.Kind = core.LWTRW
			o.Read = reads[0].Value
		default:
			return nil, fmt.Errorf("txn %d is not LWT-shaped: reads must be a single read of the written key", i)
		}
		ops = append(ops, o)
	}
	return ops, nil
}
