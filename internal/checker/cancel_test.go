package checker

import (
	"context"
	"errors"
	"testing"
	"time"

	"mtc/internal/core"
	"mtc/internal/history"
)

// TestSATBackedCheckersHonorDeadline submits a deliberately large job to
// each SAT-backed baseline under a deadline far shorter than the full
// run (which takes seconds at this size) and asserts the engine returns
// context.DeadlineExceeded promptly — the run must stop inside the prune
// fixpoint or the solver search, not grind to completion.
func TestSATBackedCheckersHonorDeadline(t *testing.T) {
	h := history.BlindWriteHistory(4, 200)
	for _, tc := range []struct {
		name  string
		level Level
	}{
		{"cobra", core.SER},
		{"polysi", core.SI},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err := Run(ctx, tc.name, h, Options{Level: tc.level})
			elapsed := time.Since(start)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("want context.DeadlineExceeded, got %v (after %v)", err, elapsed)
			}
			// The deadline is 50ms and cancellation polls run every few
			// hundred constraints/decisions; 2s is a generous bound that
			// still proves the multi-second full run was cut short.
			if elapsed > 2*time.Second {
				t.Fatalf("cancellation took %v; the deadline did not stop the hot loop", elapsed)
			}
		})
	}
}

// TestMTCCheckersHonorCanceledContext covers the non-SAT engines: an
// already-canceled context must surface as context.Canceled from every
// registry path, not as a verdict.
func TestMTCCheckersHonorCanceledContext(t *testing.T) {
	h := history.SerialHistory(64, "x", "y")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range []string{"mtc", "mtc-incremental", "cobra", "polysi", "elle", "porcupine"} {
		if _, err := Run(ctx, name, h, Options{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: want context.Canceled, got %v", name, err)
		}
	}
}

// TestDenseSSERHonorsDeadline exercises the Θ(n²) dense real-time
// enumeration: a large timed history under a tiny deadline must stop
// inside the pair loop.
func TestDenseSSERHonorsDeadline(t *testing.T) {
	b := history.NewBuilder("x")
	v := history.Value(1)
	ts := int64(1)
	for i := 0; i < 6000; i++ {
		b.TimedTxn(0, ts, ts+1, history.R("x", v-1+0), history.W("x", v))
		ts += 2
		v++
	}
	h := b.Build()
	// 10ms comfortably outlives the pre-check but expires long before
	// the ~18M-pair enumeration completes.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := core.CheckSSERCtx(ctx, h, core.Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
