// Package checker defines the uniform checker abstraction every
// verification engine in this repository is served through: a Checker
// interface (name, supported isolation levels, a Check entry point over
// *history.History), a Verdict type normalising the engines' disparate
// report structs, and a Registry. The five engines — the paper's
// linear-time MTC algorithms, the incremental online variant, the
// Cobra and PolySI polygraph baselines, Elle's register mode, and
// Porcupine over the lightweight-transaction path — register themselves
// in the default registry, so cmd/mtc, cmd/mtc-serve and internal/bench
// select engines by name instead of hard-coding entry points.
package checker

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"mtc/internal/core"
	"mtc/internal/graph"
	"mtc/internal/history"
)

// Level names an isolation level. The values coincide with core.Level so
// adapters convert freely.
type Level = core.Level

// Options tunes a checker run.
type Options struct {
	// Level selects the isolation level to check. Empty selects the
	// checker's default (the first of its Levels).
	Level Level
	// SkipPreCheck disables the INT/G1 pre-pass where the engine supports
	// it (the MTC engines).
	SkipPreCheck bool
	// SparseRT selects the O(n log n) sparse real-time encoding for SSER
	// on the MTC engine.
	SparseRT bool
}

// Verdict is the normalised outcome of a checker run.
type Verdict struct {
	Checker   string            `json:"checker"`
	Level     Level             `json:"level"`
	OK        bool              `json:"ok"`
	Txns      int               `json:"txns"`
	Edges     int               `json:"edges,omitempty"`
	Anomalies []history.Anomaly `json:"-"`
	Cycle     []graph.Edge      `json:"-"`
	// Detail carries the engine-specific account: a counterexample
	// rendering, solver statistics, or the divergence witness.
	Detail string `json:"detail,omitempty"`
	// Err is non-empty when the engine could not process the history at
	// all (e.g. Porcupine on a history that is not LWT-shaped); OK is
	// false in that case.
	Err string `json:"error,omitempty"`
}

// Checker is one verification engine.
type Checker interface {
	// Name is the registry key, e.g. "mtc" or "cobra".
	Name() string
	// Levels lists the supported isolation levels, default first.
	Levels() []Level
	// Check verifies the history at opts.Level (which the Registry
	// guarantees is one of Levels when dispatching through Run).
	Check(h *history.History, opts Options) Verdict
}

// Registry maps checker names to engines. The zero value is ready to
// use; it is safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Checker
}

// Register adds c, replacing any previous checker of the same name.
func (r *Registry) Register(c Checker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]Checker)
	}
	r.m[c.Name()] = c
}

// Lookup returns the named checker, or an error naming the registered
// alternatives.
func (r *Registry) Lookup(name string) (Checker, error) {
	r.mu.RLock()
	c, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("checker: unknown checker %q (have %s)", name, strings.Join(r.Names(), ", "))
	}
	return c, nil
}

// Names returns the sorted registered names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns the registered checkers sorted by name.
func (r *Registry) All() []Checker {
	var out []Checker
	for _, n := range r.Names() {
		c, _ := r.Lookup(n)
		out = append(out, c)
	}
	return out
}

// Run resolves name, applies the level default, validates the level
// against the checker's Levels, and dispatches. The returned error marks
// caller mistakes (unknown checker, unsupported level) as opposed to
// verification failures, which land in the Verdict.
func (r *Registry) Run(name string, h *history.History, opts Options) (Verdict, error) {
	c, err := r.Lookup(name)
	if err != nil {
		return Verdict{}, err
	}
	if opts.Level == "" {
		opts.Level = c.Levels()[0]
	}
	if !supports(c, opts.Level) {
		return Verdict{}, fmt.Errorf("checker: %s does not support level %q (supports %s)",
			c.Name(), opts.Level, levelNames(c.Levels()))
	}
	return c.Check(h, opts), nil
}

func supports(c Checker, lvl Level) bool {
	for _, l := range c.Levels() {
		if l == lvl {
			return true
		}
	}
	return false
}

func levelNames(levels []Level) string {
	names := make([]string, len(levels))
	for i, l := range levels {
		names[i] = string(l)
	}
	return strings.Join(names, ", ")
}

// Default is the process-wide registry the engines register into.
var Default = &Registry{}

// Register adds c to the default registry.
func Register(c Checker) { Default.Register(c) }

// Lookup resolves a name in the default registry.
func Lookup(name string) (Checker, error) { return Default.Lookup(name) }

// Names lists the default registry's checker names.
func Names() []string { return Default.Names() }

// Run dispatches on the default registry.
func Run(name string, h *history.History, opts Options) (Verdict, error) {
	return Default.Run(name, h, opts)
}
