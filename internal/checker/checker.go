// Package checker defines the uniform checker abstraction every
// verification engine in this repository is served through: a Checker
// interface (name, supported isolation levels, a context-aware Check
// entry point over *history.History), a Report type normalising the
// engines' disparate report structs into a wire-serializable verdict
// with structured counterexamples, and a Registry. The five engines —
// the paper's linear-time MTC algorithms, the incremental online
// variant, the Cobra and PolySI polygraph baselines, Elle's register
// mode, and Porcupine over the lightweight-transaction path — register
// themselves in the default registry, so cmd/mtc, cmd/mtc-serve and
// internal/bench select engines by name instead of hard-coding entry
// points.
//
// Check separates three outcomes: a Report (the history satisfies or
// violates the level, with counterexamples), an UnsupportedHistoryError
// (the engine cannot process this history at all, e.g. Porcupine on a
// history that is not LWT-shaped), and a context error (the deadline
// fired; every engine polls its context inside its hot loops, so
// cancellation actually stops work).
package checker

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mtc/internal/core"
	"mtc/internal/graph"
	"mtc/internal/history"
)

// Level names an isolation level. The values coincide with core.Level so
// adapters convert freely.
type Level = core.Level

// AllLevels lists every parseable isolation level, weakest first — the
// full lattice the profile checker walks. Individual engines support
// subsets (their Levels method).
func AllLevels() []Level { return core.Lattice() }

// ParseLevel maps a level name (any case) to its Level. It is the one
// canonical parser: the CLIs and the HTTP server both resolve user input
// through it. Errors enumerate the valid names.
func ParseLevel(s string) (Level, error) {
	lvl := Level(strings.ToUpper(strings.TrimSpace(s)))
	for _, l := range AllLevels() {
		if lvl == l {
			return lvl, nil
		}
	}
	return "", fmt.Errorf("checker: unknown isolation level %q (want %s)", s, LevelNames(AllLevels()))
}

// Options tunes a checker run.
type Options struct {
	// Level selects the isolation level to check. Empty selects the
	// checker's default (the first of its Levels).
	Level Level
	// SkipPreCheck disables the INT/G1 pre-pass where the engine supports
	// it (the MTC engines).
	SkipPreCheck bool
	// SparseRT selects the O(n log n) sparse real-time encoding for SSER
	// on the MTC engine.
	SparseRT bool
	// Parallelism bounds the worker pools of the parallel engine phases:
	// the polygraph prune shards and reachability closure of the Cobra
	// and PolySI baselines, and the MTC engine's dense real-time
	// enumeration. <= 0 selects GOMAXPROCS; 1 forces the serial paths.
	// Verdicts, anomalies and edge counts are identical at every setting
	// (differentially tested); only wall-clock changes. Engines without a
	// parallel phase (incremental, elle, porcupine) ignore it.
	Parallelism int
	// Window bounds the memory of the online incremental engine
	// (mtc-incremental): the replay is compacted every window/2
	// transactions, so at most O(window + boundary) transactions stay
	// materialised instead of the whole history. Verdicts, anomalies and
	// the first offending commit are identical to the unbounded replay
	// at every setting (differentially tested). <= 0 checks unbounded;
	// engines other than mtc-incremental ignore it.
	Window int
	// Shard bounds the worker pool of the component-sharded wrappers
	// (the "*-sharded" registry entries, internal/shard): the history is
	// decomposed into key/session-disjoint connected components and up
	// to Shard components are checked concurrently, each through the
	// wrapped engine. <= 0 selects GOMAXPROCS. Merged verdicts are
	// identical to unsharded checking (differentially tested); base
	// engines ignore the field.
	Shard int
	// Index optionally hands the MTC engine a prebuilt columnar index
	// of the history under check (history.ReadMTCBIndexed builds one as
	// a byproduct of decoding a binary fabric payload), skipping the
	// intern-and-build pass. Used — after an Index.History() identity
	// check — by the "mtc" engine only; the baselines and the
	// incremental engine intern their own state and ignore it.
	Index *history.Index
}

// PhaseTiming is the wall-clock cost of one engine phase, in
// milliseconds; engines report the phases they actually run (e.g. the
// Cobra pipeline reports build, prune and solve).
type PhaseTiming struct {
	Phase  string  `json:"phase"`
	Millis float64 `json:"millis"`
}

// Report is the normalised outcome of a checker run. Every field
// serializes, so a Report round-trips through the v1 API and the Go SDK
// without loss: anomalies keep their kind/txn/key/value structure and
// cycles their typed edges.
type Report struct {
	Checker   string            `json:"checker"`
	Level     Level             `json:"level"`
	OK        bool              `json:"ok"`
	Txns      int               `json:"txns"`
	Edges     int               `json:"edges,omitempty"`
	Anomalies []history.Anomaly `json:"anomalies,omitempty"`
	Cycle     []graph.Edge      `json:"cycle,omitempty"`
	Timings   []PhaseTiming     `json:"timings,omitempty"`
	// CompactedEpochs and CompactedTxns report epoch-windowed compaction
	// (the mtc-incremental engine under Options.Window, and windowed
	// streaming sessions): how many compactions ran and how many settled
	// transactions they collapsed. Zero when checking unbounded.
	CompactedEpochs int `json:"compacted_epochs,omitempty"`
	CompactedTxns   int `json:"compacted_txns,omitempty"`
	// ShardComponents reports component-sharded checking (the "*-sharded"
	// wrappers under Options.Shard): how many key/session-disjoint
	// components the history decomposed into. Zero when checking
	// unsharded.
	ShardComponents int `json:"shard_components,omitempty"`
	// StrongestLevel reports the strongest isolation level the history
	// satisfies, or "NONE" when every rung is violated. Only the profile
	// checker (internal/levels) fills it; single-level runs leave it
	// empty.
	StrongestLevel Level `json:"strongest_level,omitempty"`
	// Rungs carries the per-level verdicts of a profile run, weakest
	// (RC) first, each with the witness breaking the rung.
	Rungs []RungVerdict `json:"rungs,omitempty"`
	// Guarantees carries the per-session guarantee verdicts of a
	// profile run.
	Guarantees []GuaranteeVerdict `json:"guarantees,omitempty"`
	// Detail carries the engine-specific account: a counterexample
	// rendering, solver statistics, or the divergence witness.
	Detail string `json:"detail,omitempty"`
}

// RungVerdict is one lattice rung of a profile run on the wire.
type RungVerdict struct {
	Level Level `json:"level"`
	OK    bool  `json:"ok"`
	// Witness renders the anomaly, divergence or cycle breaking the
	// rung; empty when OK.
	Witness string `json:"witness,omitempty"`
}

// GuaranteeVerdict is one session guarantee of a profile run on the
// wire. Session locates the first violating session (-1 when OK or when
// a pre-check anomaly voids the guarantee globally).
type GuaranteeVerdict struct {
	Guarantee string `json:"guarantee"`
	OK        bool   `json:"ok"`
	Session   int    `json:"session,omitempty"`
	Witness   string `json:"witness,omitempty"`
}

// UnsupportedHistoryError reports that an engine cannot process the
// submitted history at all — the request was well-formed but the history
// does not have the shape the engine requires.
type UnsupportedHistoryError struct {
	Checker string
	Reason  string
}

func (e *UnsupportedHistoryError) Error() string {
	return fmt.Sprintf("checker: %s cannot process this history: %s", e.Checker, e.Reason)
}

// IsUnsupported reports whether err marks a history the engine cannot
// process (as opposed to a verification failure or a context error).
func IsUnsupported(err error) bool {
	var u *UnsupportedHistoryError
	return errors.As(err, &u)
}

// Checker is one verification engine.
type Checker interface {
	// Name is the registry key, e.g. "mtc" or "cobra".
	Name() string
	// Levels lists the supported isolation levels, default first.
	Levels() []Level
	// Check verifies the history at opts.Level (which the Registry
	// guarantees is one of Levels when dispatching through Run). It
	// polls ctx inside its hot loops and returns ctx's error when the
	// deadline fires, or an *UnsupportedHistoryError when the engine
	// cannot process the history; the Report is only meaningful when
	// the error is nil.
	Check(ctx context.Context, h *history.History, opts Options) (Report, error)
}

// Registry maps checker names to engines. The zero value is ready to
// use; it is safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Checker
}

// Register adds c, replacing any previous checker of the same name.
func (r *Registry) Register(c Checker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]Checker)
	}
	r.m[c.Name()] = c
}

// Lookup returns the named checker, or an error naming the registered
// alternatives.
func (r *Registry) Lookup(name string) (Checker, error) {
	r.mu.RLock()
	c, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("checker: unknown checker %q (have %s)", name, strings.Join(r.Names(), ", "))
	}
	return c, nil
}

// Names returns the sorted registered names.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns the registered checkers sorted by name.
func (r *Registry) All() []Checker {
	var out []Checker
	for _, n := range r.Names() {
		c, _ := r.Lookup(n)
		out = append(out, c)
	}
	return out
}

// Run resolves name, applies the level default, validates the level
// against the checker's Levels, and dispatches under ctx. The returned
// error marks caller mistakes (unknown checker, unsupported level),
// unsupported histories, or cancellation — as opposed to verification
// failures, which land in the Report.
func (r *Registry) Run(ctx context.Context, name string, h *history.History, opts Options) (Report, error) {
	c, err := r.Lookup(name)
	if err != nil {
		return Report{}, err
	}
	if opts.Level == "" {
		opts.Level = c.Levels()[0]
	}
	if !Supports(c, opts.Level) {
		return Report{}, fmt.Errorf("checker: %s does not support level %q (supports %s)",
			c.Name(), opts.Level, LevelNames(c.Levels()))
	}
	return c.Check(ctx, h, opts)
}

// Supports reports whether the engine lists lvl; callers validating a
// request before dispatching (e.g. at job-submission time) share this
// with Run's own check.
func Supports(c Checker, lvl Level) bool {
	for _, l := range c.Levels() {
		if l == lvl {
			return true
		}
	}
	return false
}

// LevelNames renders a level list for error messages.
func LevelNames(levels []Level) string {
	names := make([]string, len(levels))
	for i, l := range levels {
		names[i] = string(l)
	}
	return strings.Join(names, ", ")
}

// Default is the process-wide registry the engines register into.
var Default = &Registry{}

// Register adds c to the default registry.
func Register(c Checker) { Default.Register(c) }

// Lookup resolves a name in the default registry.
func Lookup(name string) (Checker, error) { return Default.Lookup(name) }

// Names lists the default registry's checker names.
func Names() []string { return Default.Names() }

// Run dispatches on the default registry.
func Run(ctx context.Context, name string, h *history.History, opts Options) (Report, error) {
	return Default.Run(ctx, name, h, opts)
}
