package checker

import (
	"context"
	"strings"
	"testing"

	"mtc/internal/core"
	"mtc/internal/history"
)

// TestRegistryContents checks that all engines register under their
// documented names with the documented levels.
func TestRegistryContents(t *testing.T) {
	want := map[string][]Level{
		"mtc":             {core.SI, core.SER, core.SSER},
		"mtc-incremental": {core.SI, core.SER},
		"cobra":           {core.SER},
		"polysi":          {core.SI},
		"elle":            {core.SER, core.SI},
		"porcupine":       {core.SSER},
		"rc":              {core.RC},
		"ra":              {core.RA},
		"causal":          {core.CAUSAL},
		"profile":         {core.SI, core.SER, core.SSER, core.CAUSAL, core.RA, core.RC},
	}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registered %v, want %d checkers", names, len(want))
	}
	for name, lvls := range want {
		c, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Fatalf("checker %q reports name %q", name, c.Name())
		}
		got := c.Levels()
		if len(got) != len(lvls) {
			t.Fatalf("%s levels = %v, want %v", name, got, lvls)
		}
		for i := range lvls {
			if got[i] != lvls[i] {
				t.Fatalf("%s levels = %v, want %v", name, got, lvls)
			}
		}
	}
}

// TestRegistryErrors covers lookup and dispatch error paths.
func TestRegistryErrors(t *testing.T) {
	h := history.SerialHistory(4, "x")
	cases := []struct {
		name    string
		checker string
		level   Level
		errPart string
	}{
		{"unknown checker", "bogus", "", "unknown checker"},
		{"cobra cannot SI", "cobra", core.SI, "does not support level"},
		{"polysi cannot SER", "polysi", core.SER, "does not support level"},
		{"porcupine cannot SER", "porcupine", core.SER, "does not support level"},
		{"incremental cannot SSER", "mtc-incremental", core.SSER, "does not support level"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(context.Background(), tc.checker, h, Options{Level: tc.level})
			if err == nil || !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("want error containing %q, got %v", tc.errPart, err)
			}
		})
	}
}

// TestDefaultLevels runs each checker with an empty level and checks the
// applied default.
func TestDefaultLevels(t *testing.T) {
	h := history.SerialHistory(4, "x")
	for name, def := range map[string]Level{
		"mtc": core.SI, "mtc-incremental": core.SI,
		"cobra": core.SER, "polysi": core.SI, "elle": core.SER,
	} {
		v, err := Run(context.Background(), name, h, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v.Level != def {
			t.Fatalf("%s default level = %s, want %s", name, v.Level, def)
		}
		if !v.OK {
			t.Fatalf("%s rejects a serial history: %+v", name, v)
		}
	}
}

// TestAllCheckersAgreeOnFixture runs every applicable checker on the
// write-skew fixture: SER checkers must reject, SI checkers accept.
func TestAllCheckersAgreeOnFixture(t *testing.T) {
	f := history.FixtureByName("WriteSkew")
	for _, name := range []string{"mtc", "mtc-incremental", "cobra", "elle"} {
		v, err := Run(context.Background(), name, f.H, Options{Level: core.SER})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v.OK {
			t.Fatalf("%s accepts write skew at SER", name)
		}
	}
	for _, name := range []string{"mtc", "mtc-incremental", "polysi"} {
		v, err := Run(context.Background(), name, f.H, Options{Level: core.SI})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !v.OK {
			t.Fatalf("%s rejects write skew at SI: %+v", name, v)
		}
	}
}

// lwtHistory builds an LWT-shaped history: inserts head each key's write
// chain, CAS transactions extend it.
func lwtHistory() *history.History {
	b := history.NewBuilder()
	b.TimedTxn(0, 1, 2, history.W("x", 1))                    // insert
	b.TimedTxn(0, 3, 4, history.R("x", 1), history.W("x", 2)) // CAS 1->2
	b.TimedTxn(1, 5, 6, history.R("x", 2), history.W("x", 3)) // CAS 2->3
	return b.Build()
}

// TestPorcupineAdapter covers the LWT conversion, both shapes.
func TestPorcupineAdapter(t *testing.T) {
	v, err := Run(context.Background(), "porcupine", lwtHistory(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !v.OK {
		t.Fatalf("linearizable LWT history rejected: %+v", v)
	}

	// A stale CAS: two successful CAS of the same expected value.
	b := history.NewBuilder()
	b.TimedTxn(0, 1, 2, history.W("x", 1))
	b.TimedTxn(0, 3, 4, history.R("x", 1), history.W("x", 2))
	b.TimedTxn(1, 5, 6, history.R("x", 1), history.W("x", 3))
	v, err = Run(context.Background(), "porcupine", b.Build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.OK {
		t.Fatalf("lost-update LWT history accepted: %+v", v)
	}

	// Not LWT-shaped: a two-key transaction.
	b = history.NewBuilder("x", "y")
	b.Txn(0, history.R("x", 0), history.W("x", 1), history.R("y", 0), history.W("y", 2))
	_, err = Run(context.Background(), "porcupine", b.Build(), Options{})
	if !IsUnsupported(err) {
		t.Fatalf("non-LWT history must return an UnsupportedHistoryError, got %v", err)
	}
}

// TestLWTFromHistoryInit converts ⊥T into per-key inserts.
func TestLWTFromHistoryInit(t *testing.T) {
	b := history.NewBuilder("x", "y")
	b.TimedTxn(0, 1, 2, history.R("x", 0), history.W("x", 1))
	ops, err := LWTFromHistory(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 { // 2 inserts from init + 1 CAS
		t.Fatalf("ops = %v", ops)
	}
	if ops[0].Kind != core.LWTInsert || ops[2].Kind != core.LWTRW {
		t.Fatalf("kinds wrong: %v", ops)
	}
}

// TestRegistryIsolation confirms a private registry does not leak into
// the default one.
func TestRegistryIsolation(t *testing.T) {
	var reg Registry
	reg.Register(mtcChecker{})
	if n := len(reg.Names()); n != 1 {
		t.Fatalf("private registry has %d checkers", n)
	}
	if _, err := reg.Lookup("cobra"); err == nil {
		t.Fatal("cobra must not be in the private registry")
	}
	if _, err := Lookup("cobra"); err != nil {
		t.Fatalf("default registry lost cobra: %v", err)
	}
}
