package checker

import (
	"context"
	"time"

	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/levels"
)

func init() {
	Register(weakChecker{lvl: core.RC, name: "rc"})
	Register(weakChecker{lvl: core.RA, name: "ra"})
	Register(weakChecker{lvl: core.CAUSAL, name: "causal"})
	Register(profileChecker{})
}

// weakChecker serves one weak-level rung (RC, RA or CAUSAL) of the
// isolation lattice through internal/levels.
type weakChecker struct {
	lvl  Level
	name string
}

func (c weakChecker) Name() string    { return c.name }
func (c weakChecker) Levels() []Level { return []Level{c.lvl} }

func (c weakChecker) Check(ctx context.Context, h *history.History, opts Options) (Report, error) {
	start := time.Now()
	r, err := levels.CheckLevel(ctx, h, c.lvl, levels.Options{
		SkipPreCheck: opts.SkipPreCheck, Parallelism: opts.Parallelism,
	})
	if err != nil {
		return Report{}, err
	}
	rep := ReportFromResult(c.name, r)
	rep.Timings = []PhaseTiming{{Phase: "check", Millis: millis(time.Since(start))}}
	return rep, nil
}

// profileChecker evaluates the whole lattice plus the session
// guarantees in one pass (levels.Profile). The top-level OK/Cycle
// fields reflect the rung at opts.Level — so `profile` at SER or SI is
// a drop-in replacement for the dedicated engines, which the
// differential suite exploits — while StrongestLevel, Rungs and
// Guarantees carry the full profile.
type profileChecker struct{}

func (profileChecker) Name() string { return "profile" }

func (profileChecker) Levels() []Level {
	return []Level{core.SI, core.SER, core.SSER, core.CAUSAL, core.RA, core.RC}
}

func (profileChecker) Check(ctx context.Context, h *history.History, opts Options) (Report, error) {
	start := time.Now()
	prof, err := levels.Profile(ctx, h, levels.Options{
		SkipPreCheck: opts.SkipPreCheck, Parallelism: opts.Parallelism,
	})
	if err != nil {
		return Report{}, err
	}
	rep := ReportFromProfile("profile", opts.Level, prof)
	rep.Timings = []PhaseTiming{{Phase: "profile", Millis: millis(time.Since(start))}}
	return rep, nil
}

// ReportFromProfile flattens a lattice profile into the wire Report:
// the requested rung's result becomes the top-level verdict, and the
// profile-specific fields carry every rung and guarantee. Shared with
// mtcserve's job path and the CLIs.
func ReportFromProfile(name string, lvl Level, prof *levels.Report) Report {
	rung := prof.Rung(lvl)
	rep := ReportFromResult(name, rung.Res)
	rep.Level = lvl
	rep.Txns = prof.NumTxns
	rep.Edges = prof.NumEdges
	rep.StrongestLevel = prof.Strongest
	if rep.Detail == "" && !rung.Res.OK {
		rep.Detail = rung.Witness()
	}
	for _, v := range prof.Rungs {
		rep.Rungs = append(rep.Rungs, RungVerdict{
			Level: v.Level, OK: v.Res.OK, Witness: v.Witness(),
		})
	}
	for _, g := range prof.Guarantees {
		rep.Guarantees = append(rep.Guarantees, GuaranteeVerdict{
			Guarantee: string(g.Guarantee), OK: g.OK, Session: g.Session, Witness: g.Witness,
		})
	}
	return rep
}
