package checker

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"mtc/internal/history"
)

// TestParallelismLevelsConcurrently runs ONE history through the
// registry at Parallelism 1, 2 and GOMAXPROCS simultaneously — the
// engines share the history and (for the SAT baselines) their polygraph
// construction paths, so under -race this is the proof that the parallel
// prune shards, the closure levels and the dense-RT sharding touch no
// shared mutable state. Alongside the workers, a cancellation goroutine
// submits the same job under an immediately-expiring context and asserts
// the parallel prune loop aborts in under 2s.
func TestParallelismLevelsConcurrently(t *testing.T) {
	// Blind writes over one key: enough constraints that the prune loop
	// actually shards, small enough to finish quickly at par 1. The timed
	// serial history drives the parallel dense-RT enumeration instead.
	blind := history.BlindWriteHistory(3, 60)
	timed := history.SerialHistory(400, "x", "y")
	levels := []int{1, 2, runtime.GOMAXPROCS(0)}
	for _, name := range []string{"cobra", "mtc"} {
		name := name
		t.Run(name, func(t *testing.T) {
			opts := Options{}
			h := blind
			if name == "cobra" {
				opts.Level = "SER"
			} else {
				opts.Level = "SSER" // exercises the parallel dense-RT path
				h = timed
			}
			var (
				wg      sync.WaitGroup
				mu      sync.Mutex
				reports []Report
			)
			for _, par := range levels {
				for rep := 0; rep < 2; rep++ {
					wg.Add(1)
					go func(par int) {
						defer wg.Done()
						o := opts
						o.Parallelism = par
						r, err := Run(context.Background(), name, h, o)
						if err != nil {
							t.Errorf("par %d: %v", par, err)
							return
						}
						mu.Lock()
						reports = append(reports, r)
						mu.Unlock()
					}(par)
				}
			}
			// Concurrent cancellation: like a DELETEd /v1/jobs worker, the
			// context fires while the parallel loops run.
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
				defer cancel()
				o := opts
				o.Parallelism = runtime.GOMAXPROCS(0)
				start := time.Now()
				_, err := Run(ctx, name, h, o)
				elapsed := time.Since(start)
				if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
					t.Errorf("canceled run: unexpected error %v", err)
				}
				if elapsed > 2*time.Second {
					t.Errorf("canceled run returned after %v; cancellation must stop the parallel loops promptly", elapsed)
				}
			}()
			wg.Wait()
			if len(reports) == 0 {
				t.Fatal("no successful runs")
			}
			// Every parallelism level must agree on the wire-visible verdict.
			ref := reports[0]
			for _, r := range reports[1:] {
				if r.OK != ref.OK || r.Txns != ref.Txns || r.Edges != ref.Edges ||
					!reflect.DeepEqual(r.Anomalies, ref.Anomalies) {
					t.Fatalf("parallelism levels disagree:\nref: ok=%v txns=%d edges=%d\ngot: ok=%v txns=%d edges=%d",
						ref.OK, ref.Txns, ref.Edges, r.OK, r.Txns, r.Edges)
				}
			}
		})
	}
}
