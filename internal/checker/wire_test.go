package checker

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mtc/internal/core"
	"mtc/internal/graph"
	"mtc/internal/history"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the wire-format golden files")

// goldenCompare marshals v indented and compares against the golden
// file, rewriting it under -update-golden.
func goldenCompare(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("wire format drifted from %s:\n got: %s\nwant: %s", path, got, want)
	}
}

// TestReportWireFormatGolden pins the JSON wire format of a Report with
// both structured counterexample kinds — anomalies and cycle edges —
// which used to be dropped from serialization entirely (json:"-").
func TestReportWireFormatGolden(t *testing.T) {
	rep := Report{
		Checker: "mtc",
		Level:   core.SER,
		OK:      false,
		Txns:    4,
		Edges:   7,
		Anomalies: []history.Anomaly{
			{Kind: history.AbortedRead, Txn: 2, Key: "x", Value: 41},
			{Kind: history.DuplicateWrite, Txn: 3, Key: "y", Value: 7},
		},
		Cycle: []graph.Edge{
			{From: 1, To: 2, Kind: graph.WW, Obj: "x"},
			{From: 2, To: 1, Kind: graph.RW, Obj: "x"},
			{From: 1, To: 1, Kind: graph.SO},
		},
		Timings: []PhaseTiming{{Phase: "check", Millis: 1.5}},
		Detail:  "T1 -WW(x)-> T2 -RW(x)-> T1",
	}
	goldenCompare(t, "report.golden.json", rep)

	// And the happy path: optional fields must be omitted, not nulled.
	goldenCompare(t, "report_ok.golden.json", Report{
		Checker: "polysi", Level: core.SI, OK: true, Txns: 9,
	})
}

// TestReportRoundTrip asserts Report survives marshal/unmarshal without
// loss, including the enum-as-string encodings.
func TestReportRoundTrip(t *testing.T) {
	in := Report{
		Checker: "elle", Level: core.SI, OK: false, Txns: 3, Edges: 4,
		Anomalies: []history.Anomaly{{Kind: history.IntermediateRead, Txn: 1, Key: "k", Value: 9}},
		Cycle:     []graph.Edge{{From: 0, To: 1, Kind: graph.WR, Obj: "k"}, {From: 1, To: 0, Kind: graph.RW, Obj: "k"}},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Report
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip lost data:\n in: %+v\nout: %+v", in, out)
	}
}

// TestLiveReportSerializesCounterexample runs a real engine on a
// violating fixture and asserts the wire form carries the cycle.
func TestLiveReportSerializesCounterexample(t *testing.T) {
	f := history.FixtureByName("WriteSkew")
	rep, err := Run(context.Background(), "mtc", f.H, Options{Level: core.SER})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || len(rep.Cycle) == 0 {
		t.Fatalf("write skew must yield a cycle: %+v", rep)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	cycle, ok := decoded["cycle"].([]any)
	if !ok || len(cycle) != len(rep.Cycle) {
		t.Fatalf("cycle not serialized: %s", raw)
	}
	first, _ := cycle[0].(map[string]any)
	if _, ok := first["kind"].(string); !ok {
		t.Fatalf("cycle edge kind must serialize as a string: %s", raw)
	}
}

// TestParseLevel covers the canonical level parser shared by the CLIs
// and the server.
func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"SER": core.SER, "ser": core.SER, " si ": core.SI, "SSER": core.SSER,
		"rc": core.RC, "RA": core.RA, "causal": core.CAUSAL,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	for _, in := range []string{"", "SERIALIZABLE", "bogus", "NONE"} {
		err := func() error { _, err := ParseLevel(in); return err }()
		if err == nil {
			t.Fatalf("ParseLevel(%q) must fail", in)
		}
		// The error must enumerate every valid name.
		for _, l := range AllLevels() {
			if !strings.Contains(err.Error(), string(l)) {
				t.Fatalf("ParseLevel(%q) error %q does not name %s", in, err, l)
			}
		}
	}
}

// TestProfileReportWireGolden pins the profile checker's wire format:
// strongest level, per-rung verdicts and session guarantees.
func TestProfileReportWireGolden(t *testing.T) {
	f := history.FixtureByName("FracturedRead")
	rep, err := Run(context.Background(), "profile", f.H, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep.Timings = nil // wall-clock is not golden material
	goldenCompare(t, "report_profile.golden.json", rep)
	if rep.StrongestLevel != core.RC {
		t.Fatalf("strongest = %s, want RC", rep.StrongestLevel)
	}
	if len(rep.Rungs) != len(AllLevels()) || len(rep.Guarantees) != 4 {
		t.Fatalf("profile shape: %d rungs, %d guarantees", len(rep.Rungs), len(rep.Guarantees))
	}
}
