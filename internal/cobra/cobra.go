// Package cobra re-implements the Cobra baseline (Tan et al., OSDI'20):
// a serializability checker for general histories that extracts a
// polygraph, prunes constraints with reachability over known edges (the
// GPU-accelerated step in the original; bitset closure here), and hands
// the residue to a SAT solver with an acyclicity theory (MonoSAT in the
// original, internal/sat here). The paper uses it as the SER baseline in
// Figures 7, 10, 13 and 14.
package cobra

import (
	"context"
	"time"

	"mtc/internal/history"
	"mtc/internal/polygraph"
	"mtc/internal/sat"
)

// Report is the outcome of a Cobra run with stage statistics.
type Report struct {
	OK bool
	// Anomalies is non-empty when the pre-check rejected the history.
	Anomalies []history.Anomaly
	// Constraints counts constraints before pruning; Forced those the
	// pruning stage resolved; Residual what reached the solver.
	Constraints int
	Forced      int
	Residual    int
	Solver      sat.Result
	// Per-phase wall-clock durations of the pipeline stages.
	BuildTime, PruneTime, SolveTime time.Duration
}

// CheckSER verifies serializability of a general (or MT) history.
func CheckSER(h *history.History) Report {
	rep, _ := CheckSERCtx(context.Background(), h)
	return rep
}

// CheckSERCtx is CheckSER under a context: both the pruning fixpoint and
// the SAT search poll ctx, so a deadline stops the run promptly. The
// Report is only meaningful when the returned error is nil. Pruning runs
// serially; CheckSERPar parallelizes it.
func CheckSERCtx(ctx context.Context, h *history.History) (Report, error) {
	return CheckSERPar(ctx, h, 1)
}

// CheckSERPar is CheckSERCtx with the pruning stage — reachability
// closure and constraint checking, the pipeline's dominant cost — sharded
// over a bounded worker pool. par <= 0 selects GOMAXPROCS. The verdict
// and all statistics except wall-clock are identical at every par.
func CheckSERPar(ctx context.Context, h *history.History, par int) (Report, error) {
	ix := history.NewIndex(h)
	if as := history.CheckInternalIndexed(ix); len(as) > 0 {
		return Report{OK: false, Anomalies: as}, nil
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	start := time.Now()
	p := polygraph.BuildIndexed(ix)
	rep := Report{Constraints: len(p.Cons), BuildTime: time.Since(start)}
	start = time.Now()
	ok, err := p.PrunePar(ctx, polygraph.PruneSER, par)
	rep.PruneTime = time.Since(start)
	if err != nil {
		return rep, err
	}
	rep.Forced = p.Forced
	if !ok {
		return rep, nil
	}
	rep.Residual = len(p.Cons)
	start = time.Now()
	rep.Solver, err = sat.SolveAcyclicCtx(ctx, p.N, p.Known, p.Cons)
	rep.SolveTime = time.Since(start)
	if err != nil {
		return rep, err
	}
	rep.OK = rep.Solver.Sat
	return rep, nil
}
