// Package cobra re-implements the Cobra baseline (Tan et al., OSDI'20):
// a serializability checker for general histories that extracts a
// polygraph, prunes constraints with reachability over known edges (the
// GPU-accelerated step in the original; bitset closure here), and hands
// the residue to a SAT solver with an acyclicity theory (MonoSAT in the
// original, internal/sat here). The paper uses it as the SER baseline in
// Figures 7, 10, 13 and 14.
package cobra

import (
	"mtc/internal/history"
	"mtc/internal/polygraph"
	"mtc/internal/sat"
)

// Report is the outcome of a Cobra run with stage statistics.
type Report struct {
	OK bool
	// Anomalies is non-empty when the pre-check rejected the history.
	Anomalies []history.Anomaly
	// Constraints counts constraints before pruning; Forced those the
	// pruning stage resolved; Residual what reached the solver.
	Constraints int
	Forced      int
	Residual    int
	Solver      sat.Result
}

// CheckSER verifies serializability of a general (or MT) history.
func CheckSER(h *history.History) Report {
	if as := history.CheckInternal(h); len(as) > 0 {
		return Report{OK: false, Anomalies: as}
	}
	p := polygraph.Build(h)
	rep := Report{Constraints: len(p.Cons)}
	if !p.Prune(polygraph.PruneSER) {
		rep.Forced = p.Forced
		return rep
	}
	rep.Forced = p.Forced
	rep.Residual = len(p.Cons)
	rep.Solver = sat.SolveAcyclic(p.N, p.Known, p.Cons)
	rep.OK = rep.Solver.Sat
	return rep
}
