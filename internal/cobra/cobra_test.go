package cobra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/polysi"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

func TestFixturesAgainstCobraAndPolySI(t *testing.T) {
	for _, f := range history.Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if got := CheckSER(f.H); got.OK != !f.ViolatesSER {
				t.Errorf("cobra SER OK=%v, want %v (%+v)", got.OK, !f.ViolatesSER, got)
			}
			if got := polysi.CheckSI(f.H); got.OK != !f.ViolatesSI {
				t.Errorf("polysi SI OK=%v, want %v (%+v)", got.OK, !f.ViolatesSI, got)
			}
		})
	}
}

func TestSerialHistoriesPass(t *testing.T) {
	h := history.SerialHistory(60, "x", "y", "z")
	if r := CheckSER(h); !r.OK {
		t.Fatalf("serial history must be SER: %+v", r)
	}
	if r := polysi.CheckSI(h); !r.OK {
		t.Fatalf("serial history must be SI: %+v", r)
	}
}

func TestPruningResolvesMTChains(t *testing.T) {
	// On a serial MT history the RMW chains determine the entire WW
	// order, so pruning must eliminate every constraint.
	h := history.SerialHistory(80, "x", "y")
	r := CheckSER(h)
	if !r.OK {
		t.Fatalf("%+v", r)
	}
	if r.Residual != 0 {
		t.Fatalf("RMW chains should leave no residual constraints, got %d of %d", r.Residual, r.Constraints)
	}
}

func TestBlindWritesReachSolver(t *testing.T) {
	// Two blind writers with a reader create genuine solver work.
	b := history.NewBuilder("x")
	b.Txn(0, history.R("x", 0), history.W("x", 1))
	b.Txn(1, history.R("x", 0), history.W("x", 2)) // divergence -> not SER
	h := b.Build()
	r := CheckSER(h)
	if r.OK {
		t.Fatal("divergence is not serializable")
	}
}

func TestPreCheckRejects(t *testing.T) {
	f := history.FixtureByName("AbortedRead")
	r := CheckSER(f.H)
	if r.OK || len(r.Anomalies) == 0 {
		t.Fatalf("pre-check must reject: %+v", r)
	}
}

// storeHistory runs an MT workload on a store and returns the history.
func storeHistory(t *testing.T, mode kv.Mode, f kv.Faults, seed int64, objects int) *history.History {
	t.Helper()
	s := kv.NewFaultyStore(mode, f)
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 6, Txns: 40, Objects: objects, Dist: workload.Uniform,
		Seed: seed, ReadOnlyFrac: 0.25,
	})
	return runner.Run(s, w, runner.Config{Retries: 5}).H
}

func TestPropertyCobraAgreesWithMTCSEROnStoreHistories(t *testing.T) {
	f := func(seed int64) bool {
		h := storeHistory(t, kv.ModeSerializable, kv.Faults{}, seed, 4)
		mtc := core.CheckSER(h)
		cob := CheckSER(h)
		if mtc.OK != cob.OK {
			t.Logf("seed=%d MTC=%v cobra=%v\n%s", seed, mtc.OK, cob.OK, mtc.Explain())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCobraAgreesOnFaultyHistories(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		faults := kv.Faults{Seed: seed + 1}
		switch rng.Intn(3) {
		case 0:
			faults.WriteSkew = 0.5
		case 1:
			faults.LostUpdate = 0.5
		case 2:
			faults.LongFork = 0.3
		}
		h := storeHistory(t, kv.ModeSerializable, faults, seed, 2)
		mtc := core.CheckSER(h)
		cob := CheckSER(h)
		if mtc.OK != cob.OK {
			t.Logf("seed=%d faults=%+v MTC=%v cobra=%v\n%s", seed, faults, mtc.OK, cob.OK, mtc.Explain())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPolySIAgreesWithMTCSI(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		faults := kv.Faults{Seed: seed + 1}
		mode := kv.ModeSI
		switch rng.Intn(4) {
		case 0:
			faults.LostUpdate = 0.5
		case 1:
			faults.DirtyAbort = 0.2
		case 2:
			faults.StaleSnapshot = 0.4
		case 3:
			// fault-free SI
		}
		h := storeHistory(t, mode, faults, seed, 3)
		mtc := core.CheckSI(h)
		psi := polysi.CheckSI(h)
		if mtc.OK != psi.OK {
			t.Logf("seed=%d faults=%+v MTC=%v polysi=%v\n%s", seed, faults, mtc.OK, psi.OK, mtc.Explain())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWriteSkewHistoriesSIButNotSER(t *testing.T) {
	// SI-mode store histories: polysi must accept; cobra may reject when
	// a write skew occurred. Whenever cobra rejects, MTC-SER must too.
	f := func(seed int64) bool {
		h := storeHistory(t, kv.ModeSI, kv.Faults{}, seed, 2)
		if !polysi.CheckSI(h).OK {
			t.Logf("seed=%d: fault-free SI store violated SI per polysi", seed)
			return false
		}
		return CheckSER(h).OK == core.CheckSER(h).OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
