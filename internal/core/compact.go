package core

import (
	"sort"

	"mtc/internal/graph"
	"mtc/internal/history"
)

// CompactStats reports the effect of one Compact call.
type CompactStats struct {
	// Collapsed is the number of settled transactions this call removed
	// from the dependency graph.
	Collapsed int
	// Live is the number of transactions still materialised afterwards.
	Live int
	// SummaryEdges is how many epoch-summary edges were inserted to
	// preserve reachability through the collapsed region.
	SummaryEdges int
}

// Compact collapses the settled prefix of the stream — every transaction
// whose external position is below frontier and whose state can no
// longer influence a future verdict — into a set of summary edges, and
// frees the graph nodes, dependency edges and per-transaction maps
// behind it. A windowed stream that calls Compact periodically therefore
// holds O(window + boundary) state instead of O(history).
//
// What survives a compaction, regardless of frontier:
//
//   - transactions at or beyond frontier, and everything pin reports
//     true for (pin receives external stream positions; nil pins
//     nothing) — the replay driver in CheckIncrementalWindowed pins
//     exactly the transactions the rest of the history still references,
//     which makes windowed verdicts provably identical to unbounded ones;
//   - the initial transaction and each session's latest transaction
//     (sources of future SO edges);
//   - parked readers still waiting for their writer;
//   - every slot — a writer, its readers and its RMW overwriters — whose
//     values remain readable: the writer is recent or pinned, it wrote a
//     key's current latest value, or the slot was referenced within the
//     window. Future reads resolve against exactly this retained state.
//
// Everything else is provably settled under the epoch contract: no
// future transaction reads a value written behind the frontier or
// write-conflicts with a collapsed slot. Live streams establish the
// contract exactly by declaring their sessions with ExpectSession:
// Compact then additionally pins every slot dethroned at or after the
// staleness horizon, so no in-flight read can lose its writer no
// matter how the scheduler interleaves sessions with the checker.
// Replay drivers instead pin future references explicitly (see
// CheckIncrementalWindowed). A contract-violating stale read parks
// forever and is classified ThinAirRead at Finalize rather than
// silently mis-verified.
//
// The collapsed subgraph is proved acyclic-closed before it is freed:
// the online order is itself a witness of acyclicity, and per-node
// reachability bitsets (graph.Bitset, computed in one reverse-topological
// sweep as in graph.Closure) summarise every path that crosses the
// collapsed region into a direct AUX "epoch" edge between retained
// nodes, so cycle detection over the remaining stream is unchanged. The
// rebuild panics if either property fails to hold.
//
// MaybeCompact is the standard compaction cadence every windowed driver
// (the batch replay, runner.RunStream, server sessions, benchmarks)
// shares: once the stream has outgrown the window and at least every
// transactions arrived since the last compaction (0 picks window/2), it
// runs Compact(NumTxns()-window, pin). It reports whether a compaction
// ran. window <= 0 disables compaction entirely.
func (inc *Incremental) MaybeCompact(window, every int, pin func(ext int) bool) bool {
	if window <= 0 {
		return false
	}
	if every <= 0 {
		every = window / 2
	}
	if every < 1 {
		every = 1
	}
	if inc.n <= window || inc.n-inc.lastCompactAt < every {
		return false
	}
	inc.Compact(inc.n-window, pin)
	inc.lastCompactAt = inc.n
	return true
}

// Compact is a no-op after a violation. It is not safe for concurrent
// use (same discipline as Add).
func (inc *Incremental) Compact(frontier int, pin func(ext int) bool) CompactStats {
	nNodes := inc.topo.Len()
	if inc.vio != nil || nNodes == 0 {
		return CompactStats{Live: nNodes}
	}
	if frontier > inc.n {
		frontier = inc.n
	}
	if frontier <= 0 {
		return CompactStats{Live: nNodes}
	}

	// keepBase: transactions whose written values must stay readable —
	// recent arrivals and driver-pinned nodes. Slot retention and value
	// lookup entries key off this tier.
	keepBase := make([]bool, nNodes)
	for i := 0; i < nNodes; i++ {
		if inc.ext[i] >= frontier || (pin != nil && pin(inc.ext[i])) {
			keepBase[i] = true
		}
	}
	// slotAlive: the slot (w, k) still accepts future readers or
	// overwriters, so its participants and value entries survive. With
	// session tracking on, a slot dethroned at or after the staleness
	// horizon — the minimum last-ingested position across active
	// sessions — is also alive: a transaction in flight on some session
	// started before the dethronement reached that session's stream and
	// may still legitimately read the slot's value.
	horizon, track := inc.stalenessHorizon()
	slotAlive := func(w int, k history.Key) bool {
		if keepBase[w] || inc.latestWriter[k] == w || inc.slotRef[incWK{w, k}] >= frontier {
			return true
		}
		if track {
			if d, ok := inc.dethroned[incWK{w, k}]; ok && d >= horizon {
				return true
			}
		}
		return false
	}

	// keep: full state retained (graph node plus every map entry).
	keep := make([]bool, nNodes)
	copy(keep, keepBase)
	if inc.initID >= 0 {
		keep[inc.initID] = true
	}
	//mtc:nondeterministic-ok marking keep bits; set union is commutative
	for _, id := range inc.lastInSession {
		keep[id] = true
	}
	//mtc:nondeterministic-ok marking keep bits; set union is commutative
	for _, waiters := range inc.pending {
		for _, r := range waiters {
			keep[r] = true
		}
	}
	markSlot := func(slot incWK) {
		if !slotAlive(slot.w, slot.k) {
			return
		}
		keep[slot.w] = true
		for _, r := range inc.readers[slot] {
			keep[r] = true
		}
		for _, o := range inc.overwriters[slot] {
			keep[o] = true
		}
	}
	//mtc:nondeterministic-ok marking keep bits; set union is commutative
	for slot := range inc.readers {
		markSlot(slot)
	}
	//mtc:nondeterministic-ok marking keep bits; set union is commutative
	for slot := range inc.overwriters {
		markSlot(slot)
	}
	// Writers with readable values but no readers yet still anchor
	// future WR edges.
	for k, m := range inc.writers { //mtc:nondeterministic-ok marking keep bits; set union is commutative
		for _, w := range m {
			if slotAlive(w, k) {
				keep[w] = true
			}
		}
	}

	// nodeKeep: nodes that must remain addressable in the graph beyond
	// the full-state tier. Under SI a future RW edge out of a kept
	// reader r composes with baseIn[r], and a future base edge into r
	// composes with rwOut[r]; the far endpoints of those compositions
	// must still exist as nodes (one hop only — old nodes never gain
	// new base in-edges, and new RW sources are always slot members,
	// which are kept in full).
	nodeKeep := keep
	if inc.lvl == SI {
		nodeKeep = make([]bool, nNodes)
		copy(nodeKeep, keep)
		for i := 0; i < nNodes; i++ {
			if !keep[i] {
				continue
			}
			for _, b := range inc.baseIn[i] {
				nodeKeep[b.From] = true
			}
			for _, rw := range inc.rwOut[i] {
				nodeKeep[rw.To] = true
			}
		}
	}

	collapsed := 0
	for i := 0; i < nNodes; i++ {
		if !nodeKeep[i] {
			collapsed++
		}
	}
	if collapsed == 0 {
		return CompactStats{Live: nNodes}
	}

	// Generational rebuild. Kept nodes are re-inserted in the current
	// topological order, so every re-added edge (and every summary edge)
	// respects insertion order and the Pearce–Kelly structure starts
	// compact again.
	order := make([]int, nNodes)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return inc.topo.Ord(order[a]) < inc.topo.Ord(order[b]) })

	newTopo := graph.NewOnline()
	remap := make([]int, nNodes)
	for i := range remap {
		remap[i] = -1
	}
	for _, x := range order {
		if nodeKeep[x] {
			remap[x] = newTopo.AddNode()
		}
	}
	kcount := newTopo.Len()

	// Reverse-topological sweep over the collapsed region: reach[x] is
	// the set of kept nodes reachable from collapsed node x through
	// collapsed-only paths. The online order guarantees ord(From) <
	// ord(To) for every edge, so each successor's set is final when x is
	// visited — the same level-by-level argument graph.Closure uses, and
	// a proof the collapsed prefix is acyclic.
	reach := make(map[int]graph.Bitset, collapsed)
	for i := nNodes - 1; i >= 0; i-- {
		x := order[i]
		if nodeKeep[x] {
			continue
		}
		bits := graph.NewBitset(kcount)
		for _, e := range inc.topo.Out(x) {
			if nodeKeep[e.To] {
				bits.Set(remap[e.To])
			} else {
				bits.UnionWith(reach[e.To])
			}
		}
		reach[x] = bits
	}

	addEdge := func(e graph.Edge) {
		if cy := newTopo.AddEdge(e); cy != nil {
			panic("core: Compact rebuilt a cyclic graph; settled prefix was not acyclic-closed")
		}
	}
	summaryEdges := 0
	direct := graph.NewBitset(kcount)
	summary := graph.NewBitset(kcount)
	for _, x := range order {
		if !nodeKeep[x] {
			continue
		}
		direct.Clear()
		summary.Clear()
		viaCollapsed := false
		for _, e := range inc.topo.Out(x) {
			if nodeKeep[e.To] {
				addEdge(graph.Edge{From: remap[x], To: remap[e.To], Kind: e.Kind, Obj: e.Obj})
				direct.Set(remap[e.To])
			} else {
				summary.UnionWith(reach[e.To])
				viaCollapsed = true
			}
		}
		if !viaCollapsed {
			continue
		}
		nx := remap[x]
		summary.ForEach(func(b int) {
			if b == nx {
				panic("core: Compact found a cycle through the collapsed region")
			}
			if !direct.Test(b) {
				addEdge(graph.Edge{From: nx, To: b, Kind: graph.AUX, Obj: "epoch"})
				summaryEdges++
			}
		})
	}

	// Remap every retained map into fresh storage so the collapsed
	// entries are actually released.
	newExt := make([]int, kcount)
	for x, nx := range remap {
		if nx >= 0 {
			newExt[nx] = inc.ext[x]
		}
	}
	if inc.initID >= 0 {
		inc.initID = remap[inc.initID]
	}
	newLast := make(map[int]int, len(inc.lastInSession))
	//mtc:nondeterministic-ok key-for-key map rebuild; no order reaches the result
	for sess, id := range inc.lastInSession {
		newLast[sess] = remap[id]
	}
	newPending := make(map[history.Op][]int, len(inc.pending))
	//mtc:nondeterministic-ok key-for-key map rebuild; no order reaches the result
	for key, waiters := range inc.pending {
		nw := make([]int, len(waiters))
		for i, r := range waiters {
			nw[i] = remap[r]
		}
		newPending[key] = nw
	}
	newWriters := make(map[history.Key]map[history.Value]int, len(inc.writers))
	for k, m := range inc.writers { //mtc:nondeterministic-ok key-for-key map rebuild; no order reaches the result
		for v, w := range m {
			if !slotAlive(w, k) {
				continue
			}
			nm := newWriters[k]
			if nm == nil {
				nm = make(map[history.Value]int)
				newWriters[k] = nm
			}
			nm[v] = remap[w]
		}
	}
	newAborted := make(map[history.Key]map[history.Value]int, len(inc.abortedW))
	for k, m := range inc.abortedW { //mtc:nondeterministic-ok key-for-key map rebuild; no order reaches the result
		for v, w := range m {
			if !keepBase[w] {
				continue
			}
			nm := newAborted[k]
			if nm == nil {
				nm = make(map[history.Value]int)
				newAborted[k] = nm
			}
			nm[v] = remap[w]
		}
	}
	newFinal := make(map[int]writeSet, kcount)
	//mtc:nondeterministic-ok key-for-key map rebuild; no order reaches the result
	for id, fw := range inc.finalWrites {
		if keep[id] {
			newFinal[remap[id]] = fw
		}
	}
	remapList := func(src map[incWK][]int, dst map[incWK][]int) {
		//mtc:nondeterministic-ok key-for-key map rebuild; no order reaches the result
		for slot, list := range src {
			if !slotAlive(slot.w, slot.k) {
				continue
			}
			nl := make([]int, len(list))
			for i, id := range list {
				nl[i] = remap[id]
			}
			dst[incWK{remap[slot.w], slot.k}] = nl
		}
	}
	newReaders := make(map[incWK][]int, len(inc.readers))
	remapList(inc.readers, newReaders)
	newOver := make(map[incWK][]int, len(inc.overwriters))
	remapList(inc.overwriters, newOver)
	newSlotRef := make(map[incWK]int, len(inc.slotRef))
	//mtc:nondeterministic-ok key-for-key map rebuild; no order reaches the result
	for slot, ref := range inc.slotRef {
		if slotAlive(slot.w, slot.k) {
			newSlotRef[incWK{remap[slot.w], slot.k}] = ref
		}
	}
	newLatest := make(map[history.Key]int, len(inc.latestWriter))
	//mtc:nondeterministic-ok key-for-key map rebuild; no order reaches the result
	for k, w := range inc.latestWriter {
		newLatest[k] = remap[w]
	}
	newDethroned := make(map[incWK]int, len(inc.dethroned))
	//mtc:nondeterministic-ok key-for-key map rebuild; no order reaches the result
	for slot, d := range inc.dethroned {
		if slotAlive(slot.w, slot.k) {
			newDethroned[incWK{remap[slot.w], slot.k}] = d
		}
	}
	reEdge := func(e graph.Edge) graph.Edge {
		e.From, e.To = remap[e.From], remap[e.To]
		return e
	}
	newBaseIn := make(map[int][]graph.Edge, len(inc.baseIn))
	//mtc:nondeterministic-ok key-for-key map rebuild; no order reaches the result
	for id, edges := range inc.baseIn {
		if !keep[id] {
			continue
		}
		ne := make([]graph.Edge, len(edges))
		for i, e := range edges {
			ne[i] = reEdge(e)
		}
		newBaseIn[remap[id]] = ne
	}
	newRWOut := make(map[int][]graph.Edge, len(inc.rwOut))
	//mtc:nondeterministic-ok key-for-key map rebuild; no order reaches the result
	for id, edges := range inc.rwOut {
		if !keep[id] {
			continue
		}
		ne := make([]graph.Edge, len(edges))
		for i, e := range edges {
			ne[i] = reEdge(e)
		}
		newRWOut[remap[id]] = ne
	}
	newWitness := make(map[composedKey][]graph.Edge, len(inc.witness))
	//mtc:nondeterministic-ok key-for-key map rebuild; no order reaches the result
	for ck, edges := range inc.witness {
		// The witness threads through an intermediate node; keep the
		// expansion only while all three survive (a composed edge whose
		// witness was collapsed still reports, just unexpanded).
		mid := edges[0].To
		if !nodeKeep[ck.from] || !nodeKeep[ck.to] || !nodeKeep[mid] {
			continue
		}
		ne := make([]graph.Edge, len(edges))
		for i, e := range edges {
			ne[i] = reEdge(e)
		}
		newWitness[composedKey{from: remap[ck.from], to: remap[ck.to]}] = ne
	}

	inc.topo = newTopo
	inc.ext = newExt
	inc.lastInSession = newLast
	inc.pending = newPending
	inc.writers = newWriters
	inc.abortedW = newAborted
	inc.finalWrites = newFinal
	inc.readers = newReaders
	inc.overwriters = newOver
	inc.slotRef = newSlotRef
	inc.latestWriter = newLatest
	inc.dethroned = newDethroned
	inc.baseIn = newBaseIn
	inc.rwOut = newRWOut
	inc.witness = newWitness

	inc.compactTxns += collapsed
	inc.compactEpoch++
	return CompactStats{Collapsed: collapsed, Live: kcount, SummaryEdges: summaryEdges}
}
