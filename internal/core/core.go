// Package core implements the paper's primary contribution: the MTC
// verification algorithms for strong isolation levels over mini-transaction
// histories (Section IV).
//
//   - BuildDependency constructs the (nearly unique) dependency graph of an
//     MT history in O(n), exploiting the read-modify-write pattern and
//     unique values (Algorithm 1, with the Section IV-C optimization that
//     drops the WW transitive-closure step).
//   - CheckSER and CheckSI decide serializability and snapshot isolation in
//     Θ(n); CheckSI detects the DIVERGENCE pattern early (Definition 10).
//   - CheckSSER decides strict serializability in Θ(n²) by enumerating the
//     real-time order, with an optional sparse time-chain encoding that
//     brings the graph back to O(n log n) work (an ablation the paper
//     leaves implicit).
//   - VLLWT (in lwt.go) verifies linearizability of lightweight-transaction
//     histories in expected O(n) time (Algorithm 2).
//
// All checkers are sound and complete for MT histories with unique values;
// they pre-check the intra-transactional and G1 anomalies of Figure 5a-5g
// exactly as footnote 1 of the paper prescribes.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"mtc/internal/graph"
	"mtc/internal/history"
)

// Level names an isolation level. This package's own engines check the
// strong levels (SI and up); the weak rungs are evaluated by
// internal/levels over the same dependency graph.
type Level string

// The supported isolation levels, strongest first.
const (
	SSER   Level = "SSER"   // strict serializability
	SER    Level = "SER"    // serializability
	SI     Level = "SI"     // snapshot isolation
	CAUSAL Level = "CAUSAL" // causal consistency (checked by internal/levels)
	RA     Level = "RA"     // read atomic (checked by internal/levels)
	RC     Level = "RC"     // read committed (checked by internal/levels)
)

// Lattice returns every supported level in lattice order, weakest first:
// RC < RA < CAUSAL < SI < SER < SSER. The chain is total for the levels
// this repository checks (session guarantees are a separate axis).
func Lattice() []Level { return []Level{RC, RA, CAUSAL, SI, SER, SSER} }

// LatticeRank orders the lattice: 0 for RC up to 5 for SSER, -1 for any
// other name (including the profile report's "NONE" pseudo-level).
// Sharded merging and the profile walk compare rungs through it.
func LatticeRank(l Level) int {
	switch l {
	case RC:
		return 0
	case RA:
		return 1
	case CAUSAL:
		return 2
	case SI:
		return 3
	case SER:
		return 4
	case SSER:
		return 5
	}
	return -1
}

// Divergence is a witness of the DIVERGENCE pattern (Definition 10): two
// distinct committed transactions Reader1 and Reader2 both read the value
// of Key written by Writer and then write different values to Key.
type Divergence struct {
	Key              history.Key
	Writer           int
	Reader1, Reader2 int
}

// String renders the witness.
func (d Divergence) String() string {
	return fmt.Sprintf("DIVERGENCE on %s: T%d and T%d both read T%d's write and update it",
		d.Key, d.Reader1, d.Reader2, d.Writer)
}

// Result is the verdict of a checker run, with a counterexample when the
// history violates the level.
type Result struct {
	Level      Level
	OK         bool
	Anomalies  []history.Anomaly // non-empty iff the pre-check failed
	Divergence *Divergence       // non-nil iff CheckSI rejected via Definition 10
	Cycle      []graph.Edge      // non-empty iff a forbidden cycle was found
	// Stats, filled on every run.
	NumTxns  int
	NumEdges int
	// Windowed-mode stats (zero when checking unbounded): how many
	// settled transactions Incremental.Compact collapsed, over how many
	// compaction epochs.
	CompactedTxns   int
	CompactedEpochs int
}

// Explain renders a human-readable account of the verdict.
func (r Result) Explain() string {
	var b strings.Builder
	if r.OK {
		fmt.Fprintf(&b, "history satisfies %s (%d txns, %d dependency edges)", r.Level, r.NumTxns, r.NumEdges)
		return b.String()
	}
	fmt.Fprintf(&b, "history VIOLATES %s:", r.Level)
	const maxShown = 5
	for i, a := range r.Anomalies {
		if i == maxShown {
			fmt.Fprintf(&b, "\n  ... and %d more anomalies", len(r.Anomalies)-maxShown)
			break
		}
		fmt.Fprintf(&b, "\n  %s", a)
	}
	if r.Divergence != nil {
		fmt.Fprintf(&b, "\n  %s", *r.Divergence)
	}
	if len(r.Cycle) > 0 {
		fmt.Fprintf(&b, "\n  cycle: %s", graph.FormatCycle(r.Cycle))
	}
	return b.String()
}

// Options tunes a checker run.
type Options struct {
	// SkipPreCheck disables the CheckInternal pre-pass. Only use on
	// histories already known to satisfy INT and unique values.
	SkipPreCheck bool
	// SparseRT makes CheckSSER encode the real-time order with a sorted
	// time chain (O(n log n)) instead of the paper's Θ(n²) enumeration.
	SparseRT bool
	// Parallelism bounds the worker pool used by the parallel phases
	// (dense real-time enumeration, sparse-RT base copy). <= 0 selects
	// GOMAXPROCS; 1 forces the serial path. The constructed graph is
	// identical at every setting — node-sharded construction preserves
	// per-node edge order.
	Parallelism int
	// Index optionally supplies a prebuilt columnar index of the
	// history under check, skipping the O(ops) intern-and-build pass
	// CheckSER/CheckSSER/CheckSI otherwise run. The MTCB indexed decode
	// (history.ReadMTCBIndexed) produces one as a byproduct, so fabric
	// workers check binary payloads without re-interning. Ignored —
	// and rebuilt — unless Index.History() is the checked history.
	Index *history.Index
}

// indexFor returns opts.Index when it indexes exactly h, else builds a
// fresh columnar index.
func indexFor(h *history.History, opts Options) *history.Index {
	if opts.Index != nil && opts.Index.History() == h {
		return opts.Index
	}
	return history.NewIndex(h)
}

// BuildDependency constructs the dependency graph of an MT history
// following the optimized Algorithm 1: WR edges are fixed by unique
// values, WW edges are inferred from WR when the reader also writes the
// object (the RMW pattern), and RW edges are derived from WR and WW. No
// WW transitive closure is computed (Theorems 1 and 2). When withRT is
// true the dense Θ(n²) real-time edges are added as well.
//
// The second return value lists every DIVERGENCE witness found while
// inferring WW edges; CheckSI uses it for its early exit, and the other
// checkers ignore it (Lemma 3 handles those cases through cycles).
func BuildDependency(h *history.History, withRT bool) (*graph.Graph, []Divergence) {
	g, divs, _ := buildDependencyCtx(context.Background(), history.NewIndex(h), withRT, 1)
	return g, divs
}

// buildDependencyCtx is BuildDependency over a prebuilt columnar index,
// polling ctx between batches of transactions (and real-time pairs) so
// construction of large graphs stops promptly under a deadline. The
// WR/WW/RW loops are the merge-join derivation of DeriveDeps (see
// derive.go); the graph it emits is edge-for-edge identical to the
// historical map-based builder. par bounds the worker pool of the dense
// real-time enumeration (<= 0 means GOMAXPROCS, 1 is serial); the
// constructed graph is identical at every setting.
func buildDependencyCtx(ctx context.Context, ix *history.Index, withRT bool, par int) (*graph.Graph, []Divergence, error) {
	h := ix.History()
	g := graph.New(len(h.Txns))

	if withRT {
		if err := addDenseRT(ctx, h, g, par); err != nil {
			return nil, nil, err
		}
	}
	h.SessionOrder(func(a, b int) {
		g.AddEdge(graph.Edge{From: a, To: b, Kind: graph.SO})
	})
	divs, err := deriveDeps(ctx, ix, g.AddEdge)
	if err != nil {
		return nil, nil, err
	}
	return g, divs, nil
}

// addDenseRT adds the paper's Θ(n²) real-time edges to g, sharding the
// enumeration by source transaction over a bounded worker pool
// (graph.ParallelDo). Every source's batch lands in its own adjacency
// slice through AddEdgesFrom, and the inner target loop scans in index
// order, so the per-node edge order — and hence every downstream cycle
// search — matches history.RealTimeOrder's serial enumeration exactly at
// any parallelism. Cancellation leaves g partially built; the caller
// discards it.
func addDenseRT(ctx context.Context, h *history.History, g *graph.Graph, par int) error {
	n := len(h.Txns)
	// Snapshot the per-transaction eligibility once so the n² inner loop
	// reads a compact contiguous array instead of chasing Txn structs.
	type rtMeta struct {
		start, finish int64
		committed     bool
	}
	meta := make([]rtMeta, n)
	for i := range h.Txns {
		t := &h.Txns[i]
		meta[i] = rtMeta{start: t.Start, finish: t.Finish, committed: t.Committed}
	}
	return graph.ParallelDo(ctx, par, n, func(i int) {
		a := meta[i]
		if !a.committed || a.finish == 0 {
			return
		}
		var batch []graph.Edge
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			b := meta[j]
			if !b.committed || b.start == 0 {
				continue
			}
			if a.finish < b.start {
				batch = append(batch, graph.Edge{From: i, To: j, Kind: graph.RT})
			}
		}
		g.AddEdgesFrom(i, batch)
	})
}

// preCheck runs the indexed CheckInternal unless disabled, returning a
// failed Result or nil. The index is shared with graph construction, so
// one columnar build serves both the pre-check and the edge derivation
// (the map-based pipeline built its writer index twice).
func preCheck(ix *history.Index, lvl Level, opts Options) *Result {
	if opts.SkipPreCheck {
		return nil
	}
	if as := history.CheckInternalIndexed(ix); len(as) > 0 {
		return &Result{Level: lvl, OK: false, Anomalies: as, NumTxns: ix.NumTxns()}
	}
	return nil
}

// CheckSER decides serializability (Definition 5) in Θ(n): the history
// satisfies SER iff the pre-check passes and SO ∪ WR ∪ WW ∪ RW is acyclic.
func CheckSER(h *history.History) Result { return CheckSEROpt(h, Options{}) }

// CheckSEROpt is CheckSER with options.
func CheckSEROpt(h *history.History, opts Options) Result {
	r, _ := CheckSERCtx(context.Background(), h, opts)
	return r
}

// CheckSERCtx is CheckSER under a context: graph construction polls ctx
// and the run returns the context's error instead of a verdict when the
// deadline fires.
func CheckSERCtx(ctx context.Context, h *history.History, opts Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	ix := indexFor(h, opts)
	if r := preCheck(ix, SER, opts); r != nil {
		return *r, nil
	}
	g, _, err := buildDependencyCtx(ctx, ix, false, opts.Parallelism)
	if err != nil {
		return Result{}, err
	}
	res := Result{Level: SER, NumTxns: len(h.Txns), NumEdges: g.NumEdges()}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if cycle := g.FindCycle(); cycle != nil {
		res.Cycle = cycle
		return res, nil
	}
	res.OK = true
	return res, nil
}

// CheckSSER decides strict serializability (Definition 4): like CheckSER
// but with the real-time order included, Θ(n²) with the dense encoding of
// the paper or O((n+m) log n) with Options.SparseRT.
func CheckSSER(h *history.History) Result { return CheckSSEROpt(h, Options{}) }

// CheckSSEROpt is CheckSSER with options.
func CheckSSEROpt(h *history.History, opts Options) Result {
	r, _ := CheckSSERCtx(context.Background(), h, opts)
	return r
}

// CheckSSERCtx is CheckSSER under a context. The dense Θ(n²) real-time
// enumeration polls ctx between batches of pairs, so the quadratic
// construction stops promptly under a deadline.
func CheckSSERCtx(ctx context.Context, h *history.History, opts Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	ix := indexFor(h, opts)
	if r := preCheck(ix, SSER, opts); r != nil {
		return *r, nil
	}
	var g *graph.Graph
	if opts.SparseRT {
		base, _, err := buildDependencyCtx(ctx, ix, false, opts.Parallelism)
		if err != nil {
			return Result{}, err
		}
		g = addSparseRT(h, base, opts.Parallelism)
	} else {
		var err error
		g, _, err = buildDependencyCtx(ctx, ix, true, opts.Parallelism)
		if err != nil {
			return Result{}, err
		}
	}
	res := Result{Level: SSER, NumTxns: len(h.Txns), NumEdges: g.NumEdges()}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if cycle := g.FindCycle(); cycle != nil {
		res.Cycle = compressAux(cycle)
		return res, nil
	}
	res.OK = true
	return res, nil
}

// CheckSI decides snapshot isolation (Definition 6) in Θ(n): reject on any
// DIVERGENCE witness (Lemma 1), otherwise check acyclicity of the induced
// graph (SO ∪ WR ∪ WW) ; RW?.
func CheckSI(h *history.History) Result { return CheckSIOpt(h, Options{}) }

// CheckSIOpt is CheckSI with options.
func CheckSIOpt(h *history.History, opts Options) Result {
	r, _ := CheckSICtx(context.Background(), h, opts)
	return r
}

// CheckSICtx is CheckSI under a context: graph construction and the
// composition step poll ctx, returning its error when the deadline fires.
func CheckSICtx(ctx context.Context, h *history.History, opts Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	ix := indexFor(h, opts)
	if r := preCheck(ix, SI, opts); r != nil {
		return *r, nil
	}
	g, divs, err := buildDependencyCtx(ctx, ix, false, opts.Parallelism)
	if err != nil {
		return Result{}, err
	}
	res := Result{Level: SI, NumTxns: len(h.Txns), NumEdges: g.NumEdges()}
	if len(divs) > 0 {
		res.Divergence = &divs[0]
		return res, nil
	}
	gi, expand := induceSI(g)
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if cycle := gi.FindCycle(); cycle != nil {
		res.Cycle = expandComposed(cycle, expand)
		return res, nil
	}
	res.OK = true
	return res, nil
}

// InduceSI builds the SI-induced graph G' = (V, (SO ∪ WR ∪ WW) ; RW?)
// from a dependency graph and returns it with an expander that rewrites
// any cycle of G' back into the underlying dependency edges. It is the
// composition step of CheckSI, exported so internal/levels can evaluate
// the SI rung of a profile over an already-derived graph with verdicts
// and counterexamples bit-identical to CheckSICtx.
func InduceSI(g *graph.Graph) (*graph.Graph, func([]graph.Edge) []graph.Edge) {
	gi, expand := induceSI(g)
	return gi, func(cycle []graph.Edge) []graph.Edge { return expandComposed(cycle, expand) }
}

// AddSparseRT returns a copy of the base dependency graph extended with
// the O(n log n) sparse time-chain encoding of the real-time order — the
// Options.SparseRT path of CheckSSER, exported for internal/levels'
// SSER rung. Chain cycles must be rewritten with CompressAux before
// reporting.
func AddSparseRT(h *history.History, base *graph.Graph, par int) *graph.Graph {
	return addSparseRT(h, base, par)
}

// RTOrder returns each transaction's start and finish positions in the
// sorted real-time event sequence (the sparse chain's node order), or
// -1 for aborted or untimed transactions. Two timed transactions T, S
// satisfy finish(T) <rt start(S) — i.e. T really finished before S
// started — iff finish[T] < start[S]: the chain's tie-breaking (starts
// sort before finishes at equal timestamps) is baked into the ranks, so
// callers can decide real-time precedence without building the chain.
func RTOrder(h *history.History) (start, finish []int) {
	events := rtEvents(h)
	start = make([]int, len(h.Txns))
	finish = make([]int, len(h.Txns))
	for i := range start {
		start[i], finish[i] = -1, -1
	}
	for i, ev := range events {
		if ev.isStart {
			start[ev.txn] = i
		} else {
			finish[ev.txn] = i
		}
	}
	return start, finish
}

// CompressAux collapses every AUX time-chain run of a cycle into a
// single RT edge, so sparse-RT counterexamples read like dense ones.
func CompressAux(cycle []graph.Edge) []graph.Edge { return compressAux(cycle) }

// composedKey identifies a composed edge for counterexample expansion.
type composedKey struct{ from, to int }

// induceSI builds G' = (V, (SO ∪ WR ∪ WW) ; RW?) from the dependency
// graph. It returns the induced graph and a witness map that expands each
// composed edge back into its base and RW constituents for reporting.
func induceSI(g *graph.Graph) (*graph.Graph, map[composedKey][]graph.Edge) {
	gi := graph.New(g.Len())
	expand := make(map[composedKey][]graph.Edge)
	for u := 0; u < g.Len(); u++ {
		for _, e := range g.Out(u) {
			if e.Kind == graph.RW {
				continue
			}
			// Identity part of RW?: keep the base edge itself.
			gi.AddEdge(e)
			// Composition part: base ; RW.
			for _, rw := range g.Out(e.To) {
				if rw.Kind != graph.RW {
					continue
				}
				ck := composedKey{from: u, to: rw.To}
				if _, dup := expand[ck]; !dup {
					expand[ck] = []graph.Edge{e, rw}
				}
				gi.AddEdge(graph.Edge{From: u, To: rw.To, Kind: graph.AUX, Obj: "(;RW)"})
			}
		}
	}
	return gi, expand
}

// expandComposed rewrites a cycle of G' into the underlying dependency
// edges so that counterexamples read like the paper's figures.
func expandComposed(cycle []graph.Edge, expand map[composedKey][]graph.Edge) []graph.Edge {
	var out []graph.Edge
	for _, e := range cycle {
		if e.Kind == graph.AUX {
			if w, ok := expand[composedKey{e.From, e.To}]; ok {
				out = append(out, w...)
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

// addSparseRT adds an O(n log n) encoding of the real-time order to the
// base dependency graph: a time chain of start/finish events with AUX
// edges T -> finish(T) and start(S) -> S, so that a path T ~> S through
// the chain exists iff finish(T) < start(S). The returned graph has
// 2n extra nodes; transaction nodes keep their IDs. The base-edge copy is
// sharded by source node over par workers (the chain edges stay serial —
// they are O(n) and ordered).
func addSparseRT(h *history.History, base *graph.Graph, par int) *graph.Graph {
	events := rtEvents(h)
	n := base.Len()
	g := graph.New(n + len(events))
	_ = graph.ParallelDo(context.Background(), par, n, func(u int) {
		g.AddEdgesFrom(u, base.Out(u))
	})
	appendRTChain(g, n, events)
	return g
}

// rtEvent is one endpoint of a committed transaction's real-time span.
type rtEvent struct {
	time    int64
	isStart bool
	txn     int
}

// rtEvents collects the start/finish events of every committed timed
// transaction, sorted by time. Starts sort before finishes at equal
// timestamps so that finish(T) == start(S) does NOT yield an RT path
// (RT is strict).
func rtEvents(h *history.History) []rtEvent {
	events := make([]rtEvent, 0, 2*len(h.Txns))
	for i := range h.Txns {
		t := &h.Txns[i]
		if !t.Committed || t.Start == 0 && t.Finish == 0 {
			continue
		}
		events = append(events, rtEvent{time: t.Start, isStart: true, txn: i})
		events = append(events, rtEvent{time: t.Finish, isStart: false, txn: i})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		return events[i].isStart && !events[j].isStart
	})
	return events
}

// appendRTChain wires the sorted events into g as a time chain rooted at
// node offset: each event links to the next, finishes hang their
// transaction onto the chain, starts hang the chain onto the
// transaction, so a path T ~> S through the chain exists iff
// finish(T) < start(S).
func appendRTChain(g *graph.Graph, offset int, events []rtEvent) {
	for i, ev := range events {
		node := offset + i
		if i+1 < len(events) {
			g.AddEdge(graph.Edge{From: node, To: node + 1, Kind: graph.AUX})
		}
		if ev.isStart {
			g.AddEdge(graph.Edge{From: node, To: ev.txn, Kind: graph.AUX, Obj: "start"})
		} else {
			g.AddEdge(graph.Edge{From: ev.txn, To: node, Kind: graph.AUX, Obj: "finish"})
		}
	}
}

// compressAux rewrites a cycle that may traverse the sparse time chain,
// collapsing every AUX run T -> finish ... start -> S into a single RT
// edge so counterexamples stay readable.
func compressAux(cycle []graph.Edge) []graph.Edge {
	var out []graph.Edge
	i := 0
	for i < len(cycle) {
		e := cycle[i]
		if e.Kind != graph.AUX {
			out = append(out, e)
			i++
			continue
		}
		// e enters the chain from transaction e.From; scan to the exit.
		from := e.From
		j := i
		for j < len(cycle) && cycle[j].Kind == graph.AUX {
			j++
		}
		// cycle[j-1] leaves the chain into a transaction node.
		to := cycle[j-1].To
		out = append(out, graph.Edge{From: from, To: to, Kind: graph.RT})
		i = j
	}
	return out
}

// Check dispatches on the level name.
func Check(h *history.History, lvl Level) Result {
	switch lvl {
	case SSER:
		return CheckSSER(h)
	case SER:
		return CheckSER(h)
	case SI:
		return CheckSI(h)
	default:
		panic(fmt.Sprintf("core: unknown level %q", lvl))
	}
}

// CheckCtx dispatches on the level name under a context. Unlike Check it
// reports an unknown level as an error rather than panicking, since the
// level may originate from an API request.
func CheckCtx(ctx context.Context, h *history.History, lvl Level, opts Options) (Result, error) {
	switch lvl {
	case SSER:
		return CheckSSERCtx(ctx, h, opts)
	case SER:
		return CheckSERCtx(ctx, h, opts)
	case SI:
		return CheckSICtx(ctx, h, opts)
	default:
		// RC/RA/CAUSAL are valid Level values but have no batch engine
		// here; internal/levels evaluates them (and the checker registry
		// routes the "rc"/"ra"/"causal"/"profile" entries there).
		return Result{}, fmt.Errorf("core: no batch engine for level %q", lvl)
	}
}
