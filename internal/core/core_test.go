package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mtc/internal/graph"
	"mtc/internal/history"
)

func TestFixtureVerdicts(t *testing.T) {
	for _, f := range history.Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if got := CheckSSER(f.H); got.OK != !f.ViolatesSSER {
				t.Errorf("SSER: OK=%v, want %v\n%s", got.OK, !f.ViolatesSSER, got.Explain())
			}
			if got := CheckSER(f.H); got.OK != !f.ViolatesSER {
				t.Errorf("SER: OK=%v, want %v\n%s", got.OK, !f.ViolatesSER, got.Explain())
			}
			if got := CheckSI(f.H); got.OK != !f.ViolatesSI {
				t.Errorf("SI: OK=%v, want %v\n%s", got.OK, !f.ViolatesSI, got.Explain())
			}
		})
	}
}

func TestSerialHistoryPassesAllLevels(t *testing.T) {
	h := history.SerialHistory(50, "x", "y", "z")
	for _, lvl := range []Level{SSER, SER, SI} {
		if r := Check(h, lvl); !r.OK {
			t.Fatalf("serial history must satisfy %s: %s", lvl, r.Explain())
		}
	}
}

// sserOnlyViolation builds a history that satisfies SER and SI but
// violates SSER: T1 commits strictly before T2 starts, yet T2 misses T1's
// write.
func sserOnlyViolation() *history.History {
	b := history.NewBuilder("x")
	b.TimedTxn(0, 10, 20, history.R("x", 0), history.W("x", 1)) // T1
	b.TimedTxn(1, 30, 40, history.R("x", 0))                    // T2 reads stale 0
	return b.Build()
}

func TestSSEROnlyViolation(t *testing.T) {
	h := sserOnlyViolation()
	if r := CheckSER(h); !r.OK {
		t.Fatalf("must satisfy SER: %s", r.Explain())
	}
	if r := CheckSI(h); !r.OK {
		t.Fatalf("must satisfy SI: %s", r.Explain())
	}
	r := CheckSSER(h)
	if r.OK {
		t.Fatal("must violate SSER")
	}
	if len(r.Cycle) == 0 {
		t.Fatal("want counterexample cycle")
	}
	hasRT := false
	for _, e := range r.Cycle {
		if e.Kind == graph.RT {
			hasRT = true
		}
	}
	if !hasRT {
		t.Fatalf("counterexample should involve RT: %v", r.Cycle)
	}
}

func TestSparseRTAgreesOnFixturesAndSerial(t *testing.T) {
	check := func(h *history.History) {
		t.Helper()
		dense := CheckSSEROpt(h, Options{SkipPreCheck: true})
		sparse := CheckSSEROpt(h, Options{SkipPreCheck: true, SparseRT: true})
		if dense.OK != sparse.OK {
			t.Fatalf("dense=%v sparse=%v\ndense: %s\nsparse: %s", dense.OK, sparse.OK, dense.Explain(), sparse.Explain())
		}
	}
	for _, f := range history.Fixtures() {
		check(f.H)
	}
	check(history.SerialHistory(40, "x", "y"))
	check(sserOnlyViolation())
}

func TestSparseRTCounterexampleCompressed(t *testing.T) {
	r := CheckSSEROpt(sserOnlyViolation(), Options{SparseRT: true})
	if r.OK {
		t.Fatal("must violate SSER")
	}
	for _, e := range r.Cycle {
		if e.Kind == graph.AUX {
			t.Fatalf("AUX edge leaked into counterexample: %v", r.Cycle)
		}
	}
}

func TestDivergenceEarlyExit(t *testing.T) {
	f := history.FixtureByName("LostUpdate")
	r := CheckSI(f.H)
	if r.OK {
		t.Fatal("LostUpdate must violate SI")
	}
	if r.Divergence == nil {
		t.Fatalf("want DIVERGENCE witness, got %s", r.Explain())
	}
	d := *r.Divergence
	if d.Key != "x" || d.Writer != 0 {
		t.Fatalf("unexpected witness %+v", d)
	}
	if !strings.Contains(d.String(), "DIVERGENCE") {
		t.Fatalf("witness string %q", d.String())
	}
}

func TestWriteSkewSICounterexampleAbsent(t *testing.T) {
	f := history.FixtureByName("WriteSkew")
	r := CheckSI(f.H)
	if !r.OK {
		t.Fatalf("WriteSkew satisfies SI: %s", r.Explain())
	}
	rs := CheckSER(f.H)
	if rs.OK || len(rs.Cycle) == 0 {
		t.Fatalf("WriteSkew violates SER with a cycle: %s", rs.Explain())
	}
	// The classic write-skew counterexample has two RW edges.
	rwCount := 0
	for _, e := range rs.Cycle {
		if e.Kind == graph.RW {
			rwCount++
		}
	}
	if rwCount < 2 {
		t.Fatalf("expected >=2 RW edges in write-skew cycle, got %v", rs.Cycle)
	}
}

func TestCycleContiguity(t *testing.T) {
	for _, f := range history.Fixtures() {
		for _, r := range []Result{CheckSER(f.H), CheckSI(f.H)} {
			for i := 1; i < len(r.Cycle); i++ {
				if r.Cycle[i-1].To != r.Cycle[i].From {
					t.Fatalf("%s: cycle not contiguous: %v", f.Name, r.Cycle)
				}
			}
			if len(r.Cycle) > 0 && r.Cycle[len(r.Cycle)-1].To != r.Cycle[0].From {
				t.Fatalf("%s: cycle not closed: %v", f.Name, r.Cycle)
			}
		}
	}
}

func TestBuildDependencyEdgeCounts(t *testing.T) {
	// The MT dependency graph must stay linear in n (Section IV-D).
	h := history.SerialHistory(500, "a", "b", "c", "d")
	g, divs := BuildDependency(h, false)
	if len(divs) != 0 {
		t.Fatalf("serial history has no divergence, got %v", divs)
	}
	if g.NumEdges() > 6*len(h.Txns) {
		t.Fatalf("edge count %d not linear in n=%d", g.NumEdges(), len(h.Txns))
	}
}

func TestPreCheckShortCircuits(t *testing.T) {
	f := history.FixtureByName("AbortedRead")
	r := CheckSER(f.H)
	if r.OK || len(r.Anomalies) == 0 {
		t.Fatalf("pre-check should reject: %s", r.Explain())
	}
	if len(r.Cycle) != 0 {
		t.Fatal("no cycle expected when pre-check fails")
	}
}

func TestCheckDispatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on unknown level")
		}
	}()
	Check(history.SerialHistory(1), Level("BOGUS"))
}

func TestExplainOutput(t *testing.T) {
	ok := CheckSER(history.SerialHistory(3))
	if !strings.Contains(ok.Explain(), "satisfies SER") {
		t.Fatalf("Explain = %q", ok.Explain())
	}
	bad := CheckSI(history.FixtureByName("LostUpdate").H)
	if !strings.Contains(bad.Explain(), "VIOLATES SI") || !strings.Contains(bad.Explain(), "DIVERGENCE") {
		t.Fatalf("Explain = %q", bad.Explain())
	}
	cyc := CheckSER(history.FixtureByName("WriteSkew").H)
	if !strings.Contains(cyc.Explain(), "cycle:") {
		t.Fatalf("Explain = %q", cyc.Explain())
	}
}

// randomSerialMTHistory builds a history by executing randomly generated
// MTs serially against an in-test register map, assigning each to a random
// session and stamping real times in execution order. Such histories
// satisfy SSER, SER and SI by construction.
func randomSerialMTHistory(rng *rand.Rand, n, sessions, keys int) *history.History {
	keyNames := make([]history.Key, keys)
	for i := range keyNames {
		keyNames[i] = history.Key(string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	b := history.NewBuilder(keyNames...)
	state := map[history.Key]history.Value{}
	for _, k := range keyNames {
		state[k] = 0
	}
	next := history.Value(1)
	var ts int64 = 100
	for i := 0; i < n; i++ {
		k1 := keyNames[rng.Intn(keys)]
		k2 := keyNames[rng.Intn(keys)]
		var ops []history.Op
		switch rng.Intn(4) {
		case 0: // read-only single
			ops = []history.Op{history.R(k1, state[k1])}
		case 1: // RMW single
			ops = []history.Op{history.R(k1, state[k1]), history.W(k1, next)}
			state[k1] = next
			next++
		case 2: // read two
			if k2 == k1 {
				ops = []history.Op{history.R(k1, state[k1])}
			} else {
				ops = []history.Op{history.R(k1, state[k1]), history.R(k2, state[k2])}
			}
		default: // double RMW
			if k2 == k1 {
				ops = []history.Op{history.R(k1, state[k1]), history.W(k1, next)}
				state[k1] = next
				next++
			} else {
				v1, v2 := next, next+1
				next += 2
				ops = []history.Op{
					history.R(k1, state[k1]), history.W(k1, v1),
					history.R(k2, state[k2]), history.W(k2, v2),
				}
				state[k1], state[k2] = v1, v2
			}
		}
		b.TimedTxn(rng.Intn(sessions), ts, ts+3, ops...)
		ts += 5
	}
	return b.Build()
}

func TestPropertySerialMTHistoriesPassEverything(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomSerialMTHistory(rng, 30+rng.Intn(70), 1+rng.Intn(5), 1+rng.Intn(6))
		if err := history.ValidateMT(h); err != nil {
			t.Logf("not MT: %v", err)
			return false
		}
		return CheckSSER(h).OK && CheckSER(h).OK && CheckSI(h).OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// corruptRead rewires one external read to an older version of the key,
// which generically produces a stale read that SSER must reject.
func corruptRead(rng *rand.Rand, h *history.History) bool {
	idx, _ := history.BuildWriterIndex(h)
	// Collect candidate (txn, op) positions: external reads with an
	// alternative value available.
	type pos struct{ txn, op int }
	var candidates []pos
	for i := range h.Txns {
		t := &h.Txns[i]
		if !t.Committed || (h.HasInit && i == 0) {
			continue
		}
		for j, op := range t.Ops {
			if op.Kind == history.OpRead {
				candidates = append(candidates, pos{i, j})
			}
		}
	}
	if len(candidates) == 0 {
		return false
	}
	p := candidates[rng.Intn(len(candidates))]
	op := h.Txns[p.txn].Ops[p.op]
	// Find a different committed value on the same key.
	writers := idx.WritersOf(op.Key)
	for _, w := range writers {
		if v, ok := h.Txns[w].Writes()[op.Key]; ok && v != op.Value && w != p.txn {
			h.Txns[p.txn].Ops[p.op].Value = v
			return true
		}
	}
	return false
}

func TestPropertyCorruptedHistoriesRejectedBySSER(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomSerialMTHistory(rng, 40, 3, 3)
		if !corruptRead(rng, h) {
			return true // nothing to corrupt; vacuous
		}
		// A corrupted read can surface as a pre-check anomaly or as a
		// dependency cycle; either way SSER must reject because the read
		// is stale relative to real time... unless the corrupted read
		// happens to still be the most recent committed value in a
		// twice-read key, in which case INT catches it. Accept any
		// rejection; require only that verdicts stay internally sane:
		// SSER violation whenever SER is violated.
		sser := CheckSSER(h)
		ser := CheckSER(h)
		if !ser.OK && sser.OK {
			return false // SER violation implies SSER violation
		}
		si := CheckSI(h)
		_ = si
		return !sser.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyLevelImplications(t *testing.T) {
	// On arbitrary (possibly corrupted) MT histories: SSER ⊆ SER; and a
	// SER-satisfying history always satisfies SI (SER is stronger).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomSerialMTHistory(rng, 30, 3, 3)
		for k := 0; k < 3; k++ {
			corruptRead(rng, h)
		}
		sser, ser, si := CheckSSER(h), CheckSER(h), CheckSI(h)
		if sser.OK && !ser.OK {
			return false
		}
		if ser.OK && !si.OK {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySparseDenseSSERAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := randomSerialMTHistory(rng, 30, 3, 3)
		if rng.Intn(2) == 0 {
			corruptRead(rng, h)
		}
		dense := CheckSSEROpt(h, Options{})
		sparse := CheckSSEROpt(h, Options{SparseRT: true})
		return dense.OK == sparse.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
