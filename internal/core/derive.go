package core

import (
	"context"

	"mtc/internal/graph"
	"mtc/internal/history"
)

// DeriveDeps derives every WR, WW and RW dependency edge of the indexed
// history following the optimized Algorithm 1, invoking emit once per
// edge, and returns the DIVERGENCE witnesses found while inferring WW
// edges. It is the columnar core of BuildDependency: instead of per-txn
// map probes it merge-joins each transaction's sorted read and write
// key columns and resolves writers with binary searches over the
// index's postings, so the hot loop performs no per-transaction
// allocation (a handful of flat scratch arenas are allocated once per
// call). Edge emission order — and therefore every downstream cycle
// search — is identical to the map-based builder: transactions
// ascending, keys in lexicographic order within each, WR before WW,
// then the RW loop grouped by writer.
func DeriveDeps(ix *history.Index, emit func(graph.Edge)) []Divergence {
	divs, _ := deriveDeps(context.Background(), ix, emit)
	return divs
}

// DeriveDepsCtx is DeriveDeps under a context: the derivation polls ctx
// between batches of transactions and returns its error when the
// deadline fires. Edge emission order is identical to DeriveDeps, so a
// graph built from the emitted edges matches the one BuildDependency
// constructs (internal/levels relies on this for bit-identical SER/SI
// rungs).
func DeriveDepsCtx(ctx context.Context, ix *history.Index, emit func(graph.Edge)) ([]Divergence, error) {
	return deriveDeps(ctx, ix, emit)
}

// deriveDeps is DeriveDeps polling ctx between batches of transactions.
//
//mtc:hotpath — the three-pass merge-join the allocs/op benchmark gate measures
func deriveDeps(ctx context.Context, ix *history.Index, emit func(graph.Edge)) ([]Divergence, error) {
	n := ix.NumTxns()
	nr := ix.NumReads()

	// Pass A: resolve each read's writer and RMW status, counting the
	// WR/WW out-degree per writer. readW/isRMW align with the index's
	// read column (transactions are iterated in order, so positions are
	// contiguous); wrCnt/wwCnt hold counts at [w+1] for the in-place
	// prefix-sum-then-fill trick below.
	readW := make([]int32, nr)
	isRMW := make([]bool, nr)
	wrCnt := make([]int32, n+1)
	wwCnt := make([]int32, n+1)
	pos := 0
	for s := 0; s < n; s++ {
		if s&1023 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
		}
		rk, rv := ix.Reads(s)
		wk, _ := ix.Writes(s)
		j := 0
		for i, k := range rk {
			for j < len(wk) && wk[j] < k {
				j++
			}
			w := ix.Writer(k, rv[i])
			if w < 0 || w == s {
				readW[pos+i] = -1 // pre-check reports these; stay robust here
				continue
			}
			readW[pos+i] = int32(w)
			wrCnt[w+1]++
			if j < len(wk) && wk[j] == k {
				isRMW[pos+i] = true
				wwCnt[w+1]++
			}
		}
		pos += len(rk)
	}
	for w := 0; w < n; w++ {
		wrCnt[w+1] += wrCnt[w]
		wwCnt[w+1] += wwCnt[w]
	}
	totalWR, totalWW := wrCnt[n], wwCnt[n]

	// Pass B: emit WR and WW edges in transaction/key order while
	// scattering (key, reader) and (key, overwriter) into per-writer
	// segments of the flat arenas (the columnar wrOut/wwOut). wrCnt[w]
	// advances from w's segment start to its end as the segment fills.
	// Divergence witnesses index dense (key, writer) slots instead of a
	// map, preserving the map-based builder's first-reader semantics and
	// report order.
	wrKey := make([]history.KeyID, totalWR)
	wrTo := make([]int32, totalWR)
	wwKey := make([]history.KeyID, totalWW)
	wwTo := make([]int32, totalWW)
	firstRMW := make([]int32, ix.NumWriterSlots())
	for i := range firstRMW {
		firstRMW[i] = -1
	}
	var divs []Divergence
	pos = 0
	for s := 0; s < n; s++ {
		if s&1023 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
		}
		rk := ix.ReadKeys(s)
		for i, k := range rk {
			w := readW[pos+i]
			if w < 0 {
				continue
			}
			emit(graph.Edge{From: int(w), To: s, Kind: graph.WR, Obj: string(ix.KeyName(k))})
			wrKey[wrCnt[w]] = k
			wrTo[wrCnt[w]] = int32(s)
			wrCnt[w]++
			if !isRMW[pos+i] {
				continue
			}
			emit(graph.Edge{From: int(w), To: s, Kind: graph.WW, Obj: string(ix.KeyName(k))})
			wwKey[wwCnt[w]] = k
			wwTo[wwCnt[w]] = int32(s)
			wwCnt[w]++
			if slot := ix.WriterSlot(k, w); slot >= 0 {
				if prev := firstRMW[slot]; prev >= 0 {
					divs = append(divs, Divergence{Key: ix.KeyName(k), Writer: int(w), Reader1: int(prev), Reader2: s}) //mtc:alloc-ok divergences are rare anomalies; this branch is cold
				} else {
					firstRMW[slot] = int32(s)
				}
			}
		}
		pos += len(rk)
	}

	// Pass C: RW edges. T' -WR(x)-> T and T' -WW(x)-> S with T != S
	// gives T -RW(x)-> S (lines 14-15 of BuildDependency). After the
	// fill, wrCnt[w] is the END of w's segment, so w's segment starts at
	// wrCnt[w-1] (the previous writer's end).
	for w := 0; w < n; w++ {
		if w&1023 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
		}
		var rLo, oLo int32
		if w > 0 {
			rLo, oLo = wrCnt[w-1], wwCnt[w-1]
		}
		rHi, oHi := wrCnt[w], wwCnt[w]
		if rLo == rHi || oLo == oHi {
			continue
		}
		for i := rLo; i < rHi; i++ {
			for j := oLo; j < oHi; j++ {
				if wwKey[j] != wrKey[i] || wwTo[j] == wrTo[i] {
					continue
				}
				emit(graph.Edge{From: int(wrTo[i]), To: int(wwTo[j]), Kind: graph.RW, Obj: string(ix.KeyName(wrKey[i]))})
			}
		}
	}
	return divs, nil
}
