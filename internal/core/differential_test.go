// differential_test.go property-tests the online incremental checker
// against the batch MTC algorithms: on every history — clean or
// fault-injected, committed-only or with aborted attempts — the two must
// return the same verdict, and on accepted histories the same dependency
// edge count. It lives in an external test package so it can drive the
// full workload -> store -> runner pipeline.
package core_test

import (
	"testing"

	"mtc/internal/core"
	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

// diffCheck compares batch and incremental verdicts on one history.
func diffCheck(t *testing.T, h *history.History, tag string) {
	t.Helper()
	for _, lvl := range []core.Level{core.SER, core.SI} {
		batch := core.Check(h, lvl)
		incr := core.CheckIncremental(h, lvl)
		if batch.OK != incr.OK {
			t.Fatalf("%s/%s: batch OK=%v but incremental OK=%v\nbatch: %s\nincremental: %s",
				tag, lvl, batch.OK, incr.OK, batch.Explain(), incr.Explain())
		}
		if batch.OK && batch.NumEdges != incr.NumEdges {
			t.Fatalf("%s/%s: accepted but edge counts diverge: batch %d, incremental %d",
				tag, lvl, batch.NumEdges, incr.NumEdges)
		}
		if batch.NumTxns != len(h.Txns) {
			t.Fatalf("%s/%s: batch txn count %d != %d", tag, lvl, batch.NumTxns, len(h.Txns))
		}
	}
}

// TestDifferentialBatchVsIncremental runs >= 1000 randomized histories
// through both checkers: clean serializable and SI substrates plus every
// non-LWT bug of the Table II catalogue.
func TestDifferentialBatchVsIncremental(t *testing.T) {
	var bugs []faults.Bug
	for _, b := range faults.Bugs() {
		if !b.LWT {
			bugs = append(bugs, b)
		}
	}
	histories := 0
	for seed := int64(1); seed <= 125; seed++ {
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 3, Txns: 6, Objects: 4,
			Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.25,
		})
		for _, mode := range []kv.Mode{kv.ModeSerializable, kv.ModeSI, kv.Mode2PL} {
			h := runner.Run(kv.NewStore(mode), w, runner.Config{Retries: 2}).H
			diffCheck(t, h, mode.String())
			histories++
		}
		wf := workload.GenerateMT(workload.MTConfig{
			Sessions: 3, Txns: 8, Objects: 2,
			Dist: workload.Exponential, Seed: seed, ReadOnlyFrac: 0.25,
		})
		for _, b := range bugs {
			h := runner.Run(b.NewStore(seed), wf, runner.Config{Retries: 2}).H
			diffCheck(t, h, b.Name)
			histories++
		}
		// Aborted transactions dropped from the record: stresses the
		// pending-read classification (AbortedRead turns ThinAirRead).
		hd := runner.Run(bugs[1].NewStore(seed), wf, runner.Config{Retries: 1, DropAborted: true}).H
		diffCheck(t, hd, bugs[1].Name+"-dropped")
		histories++
	}
	if histories < 1000 {
		t.Fatalf("differential corpus too small: %d histories", histories)
	}
	t.Logf("compared %d histories at 2 levels each", histories)
}

// TestDifferentialTargetedWorkloads covers the anomaly-guided generator,
// whose RMW-heavy plans exercise the WW/RW inference densely.
func TestDifferentialTargetedWorkloads(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		w := workload.GenerateTargeted(workload.TargetedConfig{
			Sessions: 4, Txns: 20, Objects: 3, Seed: seed,
		})
		h := runner.Run(kv.NewStore(kv.ModeSI), w, runner.Config{Retries: 3}).H
		diffCheck(t, h, "targeted")
		hb := runner.Run(faults.Bugs()[0].NewStore(seed), w, runner.Config{Retries: 3}).H
		diffCheck(t, hb, "targeted-faulty")
	}
}

// TestIncrementalEarlyExitMatchesBatchVerdict ensures that when the
// incremental checker rejects mid-stream, the batch checker rejects the
// full history too (the early verdict is never a false positive).
func TestIncrementalEarlyExitMatchesBatchVerdict(t *testing.T) {
	b := faults.BugByName("mariadb-galera-10.7.3")
	found := false
	for seed := int64(1); seed <= 20; seed++ {
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 6, Txns: 40, Objects: 2,
			Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.1,
		})
		h := runner.Run(b.NewStore(seed), w, runner.Config{Retries: 2}).H
		inc := core.NewIncremental(core.SI)
		at := -1
		for i := range h.Txns {
			var vio *core.Result
			if h.HasInit && i == 0 {
				vio = inc.InitTxn(initKeys(h)...)
			} else {
				vio = inc.Add(h.Txns[i])
			}
			if vio != nil {
				at = i
				break
			}
		}
		if at < 0 {
			continue
		}
		found = true
		if core.CheckSI(h).OK {
			t.Fatalf("seed %d: incremental rejected at txn %d but batch accepts", seed, at)
		}
		if at == len(h.Txns)-1 {
			continue
		}
		// The violating prefix must itself be rejected by the batch
		// checker: early exit is sound on the prefix, too.
		prefix := &history.History{Txns: h.Txns[:at+1], HasInit: h.HasInit}
		prefix.Sessions = make([][]int, len(h.Sessions))
		for s, ids := range h.Sessions {
			for _, id := range ids {
				if id <= at {
					prefix.Sessions[s] = append(prefix.Sessions[s], id)
				}
			}
		}
		if core.CheckSI(prefix).OK {
			t.Fatalf("seed %d: prefix through txn %d accepted by batch", seed, at)
		}
	}
	if !found {
		t.Skip("lost update never manifested; covered by faults tests")
	}
}

func initKeys(h *history.History) []history.Key {
	var keys []history.Key
	for _, op := range h.Txns[0].Ops {
		keys = append(keys, op.Key)
	}
	return keys
}
