package core

import (
	"context"
	"fmt"

	"mtc/internal/graph"
	"mtc/internal/history"
)

// Incremental verifies SER or SI online, transaction by transaction: it
// maintains the MT dependency graph of Algorithm 1 under an online
// topological order (graph.Online, Pearce–Kelly), so a violation is
// detected at the first offending commit instead of after the run. The
// nearly-unique-graph property of MT histories (Theorems 1 and 2) keeps
// every per-commit update local: each committed transaction contributes
// O(1) dependency edges, and edges that respect commit order never
// disturb the maintained order, so the amortized cost per commit is
// near-constant and the total matches the batch checker's O(n).
//
// Verdict parity with the batch checkers is exact: after every
// transaction of a history has been fed (in session order within each
// session), Finalize reports OK if and only if CheckSER / CheckSI does.
// Reads whose writer has not yet been observed are parked and resolved
// when the writer commits — or classified as AbortedRead / ThinAirRead at
// Finalize, exactly as the batch pre-check would.
//
// An Incremental is not safe for concurrent use; callers serialise Add
// (internal/runner.RunStream funnels session goroutines through a
// channel).
//
// Long-lived streams need not retain the whole history: Compact
// collapses the settled prefix of the dependency graph into summary
// edges and frees the per-transaction state behind it, bounding memory
// by the live window instead of the stream length. Node identifiers are
// therefore internal: every map below is keyed by the online graph's
// node ids, and ext translates them back to external stream positions
// (the arrival index the caller observes) when a verdict is built.
type Incremental struct {
	lvl Level
	vio *Result

	n     int // transactions added, including aborted and init
	edges int // dependency edges, mirroring the batch graph's NumEdges

	topo *graph.Online
	ext  []int // internal node id -> external stream position

	initID        int
	lastInSession map[int]int

	writers     map[history.Key]map[history.Value]int // committed writer index
	abortedW    map[history.Key]map[history.Value]int
	finalWrites map[int]writeSet // committed txn -> final writes, key-sorted

	pending     map[history.Op][]int // unresolved first external reads -> reader IDs
	readers     map[incWK][]int      // (writer, key) -> readers of the writer's value
	overwriters map[incWK][]int      // (writer, key) -> RMW overwriters of that value

	// Compaction bookkeeping: the latest committed writer per key (its
	// values are the ones a fresh read of the key's current state
	// observes, so its slot must survive every compaction), the stream
	// position at which each slot was last referenced, and cumulative
	// compaction stats.
	latestWriter  map[history.Key]int
	slotRef       map[incWK]int
	compactTxns   int
	compactEpoch  int
	lastCompactAt int // NumTxns at the last MaybeCompact-triggered compaction

	// Session-staleness horizon (live streams only; see ExpectSession).
	// A transaction in flight on session s started after s's previous
	// record was published, so it can only read values that were still
	// each key's latest at s's last ingested position. Compact therefore
	// pins every slot dethroned at or after the minimum such position
	// across active sessions, making windowed verdicts of clean stores
	// exact under any scheduling instead of contingent on the window
	// outrunning the stream's commit-to-ingest skew.
	activeSessions map[int]bool  // sessions still publishing
	lastSeen       map[int]int   // session -> NumTxns at its last record
	dethroned      map[incWK]int // slot -> NumTxns when it stopped being latest

	// SI-only state: the online order tracks the composed graph
	// (SO ∪ WR ∪ WW) ; RW?, so base and RW adjacency is kept separately
	// and every composed edge remembers its constituents for reporting.
	baseIn  map[int][]graph.Edge
	rwOut   map[int][]graph.Edge
	witness map[composedKey][]graph.Edge
}

// NewIncremental returns an online checker for lvl, which must be SER or
// SI (SSER needs the real-time order, which is inherently a batch
// construction; use CheckSSER).
func NewIncremental(lvl Level) *Incremental {
	switch lvl {
	case SER, SI:
	default:
		panic(fmt.Sprintf("core: incremental checker supports SER and SI, not %q", lvl))
	}
	return &Incremental{
		lvl:            lvl,
		topo:           graph.NewOnline(),
		initID:         -1,
		lastInSession:  make(map[int]int),
		writers:        make(map[history.Key]map[history.Value]int),
		abortedW:       make(map[history.Key]map[history.Value]int),
		finalWrites:    make(map[int]writeSet),
		pending:        make(map[history.Op][]int),
		readers:        make(map[incWK][]int),
		overwriters:    make(map[incWK][]int),
		latestWriter:   make(map[history.Key]int),
		slotRef:        make(map[incWK]int),
		activeSessions: make(map[int]bool),
		lastSeen:       make(map[int]int),
		dethroned:      make(map[incWK]int),
		baseIn:         make(map[int][]graph.Edge),
		rwOut:          make(map[int][]graph.Edge),
		witness:        make(map[composedKey][]graph.Edge),
	}
}

// Level returns the level being checked.
func (inc *Incremental) Level() Level { return inc.lvl }

// NumTxns returns the number of transactions added so far.
func (inc *Incremental) NumTxns() int { return inc.n }

// NumEdges returns the number of dependency edges derived so far.
func (inc *Incremental) NumEdges() int { return inc.edges }

// Violation returns the verdict of the first detected violation, or nil
// while the prefix fed so far is consistent.
func (inc *Incremental) Violation() *Result { return inc.vio }

// LiveNodes returns the number of transactions currently materialised in
// the dependency graph: everything fed so far minus what Compact has
// collapsed. A windowed stream keeps this bounded by the window plus the
// retained boundary, independent of NumTxns.
func (inc *Incremental) LiveNodes() int { return inc.topo.Len() }

// CompactedTxns returns how many transactions Compact has collapsed so
// far; CompactedEpochs how many compactions have taken effect.
func (inc *Incremental) CompactedTxns() int   { return inc.compactTxns }
func (inc *Incremental) CompactedEpochs() int { return inc.compactEpoch }

// extOf translates an internal node id to its external stream position.
func (inc *Incremental) extOf(i int) int {
	if i >= 0 && i < len(inc.ext) {
		return inc.ext[i]
	}
	return i
}

// incWK indexes the reader/overwriter groups by (writer, key).
type incWK struct {
	w int
	k history.Key
}

// writeSet is a transaction's final-write footprint as a key-sorted
// slice: the allocation-light replacement for the per-Add
// map[Key]Value (one backing array instead of a hash table per
// transaction). It is immutable once built, so Compact can remap it by
// reference.
type writeSet []struct {
	k history.Key
	v history.Value
}

// get returns the final value written to k, if any.
func (ws writeSet) get(k history.Key) (history.Value, bool) {
	lo, hi := 0, len(ws)
	for lo < hi {
		mid := (lo + hi) / 2
		if ws[mid].k < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ws) && ws[lo].k == k {
		return ws[lo].v, true
	}
	return 0, false
}

// has reports whether the set writes k.
func (ws writeSet) has(k history.Key) bool {
	_, ok := ws.get(k)
	return ok
}

// makeWriteSet collects the final write per key of ops into a sorted
// writeSet. Transactions write at most a couple of keys (only ⊥T is
// wide), so the last-wins dedup and insertion sort stay linear-ish
// without any hashing.
func makeWriteSet(ops []history.Op) writeSet {
	var ws writeSet
	for _, op := range ops {
		if op.Kind != history.OpWrite {
			continue
		}
		found := false
		for i := range ws {
			if ws[i].k == op.Key {
				ws[i].v = op.Value // last write wins
				found = true
				break
			}
		}
		if !found {
			ws = append(ws, struct {
				k history.Key
				v history.Value
			}{op.Key, op.Value})
		}
	}
	for i := 1; i < len(ws); i++ {
		e := ws[i]
		j := i - 1
		for j >= 0 && ws[j].k > e.k {
			ws[j+1] = ws[j]
			j--
		}
		ws[j+1] = e
	}
	return ws
}

// ExpectSession declares that session s is live and will keep
// publishing transactions. While any expected session remains active,
// Compact pins every writer slot whose value was still its key's
// latest at the session's last ingested record — the values the
// session's in-flight transaction may legitimately read — so a
// windowed live stream never mis-parks a read merely because its
// record arrived late. Call it once per session before the stream
// starts (drivers replaying a complete history need not bother: they
// pin future references explicitly instead). Memory stays bounded as
// long as every expected session keeps publishing or is retired with
// EndSession; a session that stalls forever stalls the horizon with
// it, which is inherent — its in-flight reads stay unresolved.
func (inc *Incremental) ExpectSession(s int) {
	inc.activeSessions[s] = true
	if _, ok := inc.lastSeen[s]; !ok {
		inc.lastSeen[s] = 0
	}
}

// EndSession declares that session s has published its last record,
// releasing its hold on the staleness horizon.
func (inc *Incremental) EndSession(s int) {
	delete(inc.activeSessions, s)
}

// stalenessHorizon returns the minimum last-ingested position across
// active sessions, and whether horizon tracking is on at all.
func (inc *Incremental) stalenessHorizon() (int, bool) {
	if len(inc.activeSessions) == 0 {
		return 0, false
	}
	h := int(^uint(0) >> 1)
	//mtc:nondeterministic-ok minimum fold; min is commutative
	for s := range inc.activeSessions {
		if p := inc.lastSeen[s]; p < h {
			h = p
		}
	}
	return h, true
}

// InitTxn installs the initial transaction ⊥T writing value 0 to each
// key, as transaction 0. It must be called before any Add.
func (inc *Incremental) InitTxn(keys ...history.Key) *Result {
	if inc.n != 0 {
		panic("core: InitTxn after Add")
	}
	ops := make([]history.Op, len(keys))
	for i, k := range keys {
		ops[i] = history.Op{Kind: history.OpWrite, Key: k, Value: 0}
	}
	return inc.add(history.Txn{Ops: ops, Committed: true}, true)
}

// Add feeds the next transaction. Its ID is assigned as the number of
// transactions fed before it (matching History.Txns indexing when the
// same stream is also collected into a history); Session, Ops and
// Committed are honoured, timestamps are ignored. Transactions of one
// session must arrive in session order; sessions may interleave freely.
// It returns the violation verdict as soon as one exists (every later
// Add is then a no-op returning the same verdict), nil otherwise.
func (inc *Incremental) Add(t history.Txn) *Result {
	return inc.add(t, false)
}

func (inc *Incremental) add(t history.Txn, isInit bool) *Result {
	if inc.vio != nil {
		return inc.vio
	}
	id := inc.topo.AddNode()
	inc.ext = append(inc.ext, inc.n)
	inc.n++
	if !isInit && inc.activeSessions[t.Session] {
		inc.lastSeen[t.Session] = inc.n
	}
	if !t.Committed {
		for _, op := range t.Ops {
			if op.Kind != history.OpWrite {
				continue
			}
			m := inc.abortedW[op.Key]
			if m == nil {
				m = make(map[history.Value]int)
				inc.abortedW[op.Key] = m
			}
			m[op.Value] = id
		}
		return nil
	}
	if isInit {
		inc.initID = id
	} else {
		prev, ok := inc.lastInSession[t.Session]
		if !ok {
			prev = inc.initID
		}
		if prev >= 0 {
			inc.addDepEdge(graph.Edge{From: prev, To: id, Kind: graph.SO})
		}
		inc.lastInSession[t.Session] = id
	}

	// Register this transaction's committed writes first: its own reads
	// must resolve against them (and be skipped, as in the batch builder),
	// and unique-value violations surface here.
	inc.finalWrites[id] = makeWriteSet(t.Ops)
	for _, op := range t.Ops {
		if op.Kind != history.OpWrite {
			continue
		}
		m := inc.writers[op.Key]
		if m == nil {
			m = make(map[history.Value]int)
			inc.writers[op.Key] = m
		}
		if first, dup := m[op.Value]; dup {
			return inc.fail(Result{Level: inc.lvl, Anomalies: []history.Anomaly{
				{Kind: history.DuplicateWrite, Txn: first, Key: op.Key, Value: op.Value},
			}})
		}
		m[op.Value] = id
		if prev, ok := inc.latestWriter[op.Key]; ok && prev != id {
			inc.dethroned[incWK{prev, op.Key}] = inc.n
		}
		inc.latestWriter[op.Key] = id
	}

	// Writers that readers were parked on may just have arrived.
	for _, op := range t.Ops {
		if op.Kind != history.OpWrite {
			continue
		}
		key := history.Op{Kind: history.OpRead, Key: op.Key, Value: op.Value}
		waiters := inc.pending[key]
		if len(waiters) == 0 {
			continue
		}
		delete(inc.pending, key)
		for _, r := range waiters {
			if vio := inc.resolveRead(r, id, op.Key, op.Value); vio != nil {
				return vio
			}
		}
	}

	if vio := inc.walkOps(id, t.Ops); vio != nil {
		return vio
	}
	return nil
}

// walkOps classifies every operation of committed transaction id in
// program order, replicating history.checkTxnInternal, and derives the
// dependency edges of its first external reads. Like the batch
// pre-check it scans the transaction's own (tiny) operation list
// instead of building per-transaction maps, so the per-commit hot path
// does not allocate for the classification itself.
//
//mtc:hotpath — per-commit classification; allocation here scales with every streamed transaction
func (inc *Incremental) walkOps(id int, ops []history.Op) *Result {
	anomaly := func(kind history.AnomalyKind, op history.Op) *Result {
		return inc.fail(Result{Level: inc.lvl, Anomalies: []history.Anomaly{
			{Kind: kind, Txn: id, Key: op.Key, Value: op.Value},
		}})
	}
	for i, op := range ops {
		if op.Kind != history.OpRead {
			continue
		}
		// Last own write to the key before this read, if any: the INT
		// branches.
		lastV, wrote := history.Value(0), false
		for j := i - 1; j >= 0; j-- {
			if ops[j].Kind == history.OpWrite && ops[j].Key == op.Key {
				lastV, wrote = ops[j].Value, true
				break
			}
		}
		if wrote {
			if op.Value == lastV {
				continue
			}
			for j := 0; j < i; j++ {
				if ops[j].Kind == history.OpWrite && ops[j].Key == op.Key && ops[j].Value == op.Value {
					return anomaly(history.NotMyLastWrite, op)
				}
			}
			return anomaly(history.NotMyOwnWrite, op)
		}
		// Repeated external read (any earlier read of the key is external
		// too, since no own write precedes this one): must agree with the
		// first, and only the first derives edges.
		repeated, mismatch := false, false
		for j := 0; j < i; j++ {
			if ops[j].Kind == history.OpRead && ops[j].Key == op.Key {
				repeated = true
				mismatch = ops[j].Value != op.Value
				break
			}
		}
		if repeated {
			if mismatch {
				return anomaly(history.NonRepeatableReads, op)
			}
			continue
		}
		future := false
		for j := i + 1; j < len(ops); j++ {
			if ops[j].Kind == history.OpWrite && ops[j].Key == op.Key && ops[j].Value == op.Value {
				future = true
				break
			}
		}
		if future {
			return anomaly(history.FutureRead, op)
		}
		w := -1
		if m, ok := inc.writers[op.Key]; ok {
			if id2, ok := m[op.Value]; ok {
				w = id2
			}
		}
		if w == id {
			continue // own write, already validated by the INT branches
		}
		if w >= 0 {
			if vio := inc.resolveRead(id, w, op.Key, op.Value); vio != nil {
				return vio
			}
			continue
		}
		// Writer unseen: park. AbortedRead / ThinAirRead can only be
		// told apart once the stream ends (the writer may still
		// commit), so classification waits for Finalize.
		k := history.Op{Kind: history.OpRead, Key: op.Key, Value: op.Value}
		inc.pending[k] = append(inc.pending[k], id)
	}
	return nil
}

// resolveRead connects committed reader r to the committed writer w of
// (key, val): the G1b check, the WR edge, and — when the reader also
// writes the key — the WW edge, the divergence check, and the RW
// anti-dependencies against the other readers and overwriters of w's
// value.
func (inc *Incremental) resolveRead(r, w int, key history.Key, val history.Value) *Result {
	if last, ok := inc.finalWrites[w].get(key); ok && last != val {
		return inc.fail(Result{Level: inc.lvl, Anomalies: []history.Anomaly{
			{Kind: history.IntermediateRead, Txn: r, Key: key, Value: val},
		}})
	}
	if vio := inc.addDepEdge(graph.Edge{From: w, To: r, Kind: graph.WR, Obj: string(key)}); vio != nil {
		return vio
	}
	slot := incWK{w, key}
	inc.slotRef[slot] = inc.n // referenced now: survives window-based compaction
	// As a reader, r anti-depends on every known overwriter of (w, key).
	for _, o := range inc.overwriters[slot] {
		if o == r {
			continue
		}
		if vio := inc.addDepEdge(graph.Edge{From: r, To: o, Kind: graph.RW, Obj: string(key)}); vio != nil {
			return vio
		}
	}
	inc.readers[slot] = append(inc.readers[slot], r)
	if !inc.finalWrites[r].has(key) {
		return nil
	}
	// r is an RMW overwriter of (w, key).
	if inc.lvl == SI && len(inc.overwriters[slot]) > 0 {
		d := Divergence{Key: key, Writer: w, Reader1: inc.overwriters[slot][0], Reader2: r}
		return inc.fail(Result{Level: inc.lvl, Divergence: &d})
	}
	if vio := inc.addDepEdge(graph.Edge{From: w, To: r, Kind: graph.WW, Obj: string(key)}); vio != nil {
		return vio
	}
	for _, rd := range inc.readers[slot] {
		if rd == r {
			continue
		}
		if vio := inc.addDepEdge(graph.Edge{From: rd, To: r, Kind: graph.RW, Obj: string(key)}); vio != nil {
			return vio
		}
	}
	inc.overwriters[slot] = append(inc.overwriters[slot], r)
	return nil
}

// addDepEdge inserts one dependency edge. Under SER the edge feeds the
// online order directly; under SI base edges and RW edges feed the
// composed graph as in induceSI, one composition step at a time.
func (inc *Incremental) addDepEdge(e graph.Edge) *Result {
	inc.edges++
	if inc.lvl == SER {
		return inc.cycle(inc.topo.AddEdge(e))
	}
	if e.Kind == graph.RW {
		inc.rwOut[e.From] = append(inc.rwOut[e.From], e)
		for _, b := range inc.baseIn[e.From] {
			if vio := inc.addComposed(b, e); vio != nil {
				return vio
			}
		}
		return nil
	}
	inc.baseIn[e.To] = append(inc.baseIn[e.To], e)
	if vio := inc.cycle(inc.topo.AddEdge(e)); vio != nil {
		return vio
	}
	for _, rw := range inc.rwOut[e.To] {
		if vio := inc.addComposed(e, rw); vio != nil {
			return vio
		}
	}
	return nil
}

// addComposed inserts the composed edge base ; rw into the online order.
func (inc *Incremental) addComposed(base, rw graph.Edge) *Result {
	ck := composedKey{from: base.From, to: rw.To}
	if _, dup := inc.witness[ck]; !dup {
		inc.witness[ck] = []graph.Edge{base, rw}
	}
	return inc.cycle(inc.topo.AddEdge(graph.Edge{From: base.From, To: rw.To, Kind: graph.AUX, Obj: "(;RW)"}))
}

// cycle converts a non-nil cycle from the online order into the terminal
// verdict, expanding composed SI edges back into their constituents.
func (inc *Incremental) cycle(cy []graph.Edge) *Result {
	if cy == nil {
		return nil
	}
	if inc.lvl == SI {
		cy = expandComposed(cy, inc.witness)
	}
	return inc.fail(Result{Level: inc.lvl, Cycle: cy})
}

func (inc *Incremental) fail(r Result) *Result {
	r.NumTxns = inc.n
	r.NumEdges = inc.edges
	r.CompactedTxns = inc.compactTxns
	r.CompactedEpochs = inc.compactEpoch
	// Counterexamples are built from internal node ids; translate them to
	// the external stream positions the caller fed.
	for i := range r.Anomalies {
		r.Anomalies[i].Txn = inc.extOf(r.Anomalies[i].Txn)
	}
	if r.Divergence != nil {
		d := *r.Divergence
		d.Writer = inc.extOf(d.Writer)
		d.Reader1 = inc.extOf(d.Reader1)
		d.Reader2 = inc.extOf(d.Reader2)
		r.Divergence = &d
	}
	if len(r.Cycle) > 0 {
		cy := make([]graph.Edge, len(r.Cycle))
		for i, e := range r.Cycle {
			e.From, e.To = inc.extOf(e.From), inc.extOf(e.To)
			cy[i] = e
		}
		r.Cycle = cy
	}
	inc.vio = &r
	return inc.vio
}

// Finalize ends the stream: reads still parked are classified as
// AbortedRead or ThinAirRead (their writer never committed), and the
// overall verdict is returned. The verdict's OK equals what CheckSER /
// CheckSI would report on the same transactions fed as one batch.
func (inc *Incremental) Finalize() Result {
	if inc.vio != nil {
		return *inc.vio
	}
	// Deterministic pick across map iteration: the earliest parked
	// reader (by external stream position — internal ids are permuted by
	// compaction), breaking ties by key then value, so identical streams
	// report identical counterexamples.
	best, bestReader := history.Op{}, -1
	//mtc:nondeterministic-ok total-order minimum with (position, key, value) tie-breaks; any iteration order picks the same winner
	for key, waiters := range inc.pending {
		r := waiters[0]
		for _, w := range waiters {
			if inc.extOf(w) < inc.extOf(r) {
				r = w
			}
		}
		if bestReader < 0 || inc.extOf(r) < inc.extOf(bestReader) ||
			(inc.extOf(r) == inc.extOf(bestReader) && (key.Key < best.Key || key.Key == best.Key && key.Value < best.Value)) {
			best, bestReader = key, r
		}
	}
	if bestReader >= 0 {
		kind := history.ThinAirRead
		if m, ok := inc.abortedW[best.Key]; ok {
			if _, ok := m[best.Value]; ok {
				kind = history.AbortedRead
			}
		}
		return *inc.fail(Result{Level: inc.lvl, Anomalies: []history.Anomaly{
			{Kind: kind, Txn: bestReader, Key: best.Key, Value: best.Value},
		}})
	}
	return Result{
		Level: inc.lvl, OK: true, NumTxns: inc.n, NumEdges: inc.edges,
		CompactedTxns: inc.compactTxns, CompactedEpochs: inc.compactEpoch,
	}
}

// CheckIncremental replays a complete history through the online checker
// and returns its verdict; it decides the same predicate as Check at
// levels SER and SI, violating prefixes permitting early exit.
//
// Transactions are fed in commit (Finish timestamp) order — the order a
// live stream would deliver them — rather than History.Txns order, which
// interleaves sessions in per-session blocks and would force the online
// order into its worst case. The sort is stable, so session order is
// preserved (Finish is monotone within a session) and untimed histories
// replay exactly in ID order. Counterexample transaction IDs are mapped
// back to History.Txns indices before returning.
func CheckIncremental(h *history.History, lvl Level) Result {
	r, _ := CheckIncrementalCtx(context.Background(), h, lvl)
	return r
}

// CheckIncrementalCtx is CheckIncremental under a context: the replay
// loop polls ctx between batches of transactions, so long replays stop
// promptly under a deadline. It is the unbounded (window 0) form of the
// shared replay driver in CheckIncrementalWindowedCtx.
func CheckIncrementalCtx(ctx context.Context, h *history.History, lvl Level) (Result, error) {
	return CheckIncrementalWindowedCtx(ctx, h, lvl, 0)
}

// RemapResult rewrites the transaction ids of a verdict's counterexample
// — anomalies, cycle edges and the divergence witness — through perm
// (ids outside perm pass through). The windowed replay uses it to map
// stream positions back to history ids, and the sharded stream verifier
// (internal/runner) to map shard-local positions to global ones.
func RemapResult(r Result, perm []int) Result {
	at := func(i int) int {
		if i >= 0 && i < len(perm) {
			return perm[i]
		}
		return i
	}
	for i := range r.Anomalies {
		r.Anomalies[i].Txn = at(r.Anomalies[i].Txn)
	}
	if r.Divergence != nil {
		d := *r.Divergence
		d.Writer, d.Reader1, d.Reader2 = at(d.Writer), at(d.Reader1), at(d.Reader2)
		r.Divergence = &d
	}
	if len(r.Cycle) > 0 {
		cy := make([]graph.Edge, len(r.Cycle))
		for i, e := range r.Cycle {
			e.From, e.To = at(e.From), at(e.To)
			cy[i] = e
		}
		r.Cycle = cy
	}
	return r
}
