package core

import (
	"fmt"
	"testing"

	"mtc/internal/graph"
	"mtc/internal/history"
)

// TestIncrementalFixturesParity replays every anomaly fixture through the
// online checker and demands the batch verdict, at both levels.
func TestIncrementalFixturesParity(t *testing.T) {
	for _, f := range history.Fixtures() {
		for _, lvl := range []Level{SER, SI} {
			batch := Check(f.H, lvl)
			incr := CheckIncremental(f.H, lvl)
			if batch.OK != incr.OK {
				t.Errorf("%s/%s: batch OK=%v, incremental OK=%v\nbatch: %s\nincr: %s",
					f.Name, lvl, batch.OK, incr.OK, batch.Explain(), incr.Explain())
			}
			if batch.OK && incr.OK && batch.NumEdges != incr.NumEdges {
				t.Errorf("%s/%s: edge count diverged: batch %d, incremental %d",
					f.Name, lvl, batch.NumEdges, incr.NumEdges)
			}
		}
	}
}

// TestIncrementalDetectsMidStream feeds a divergent prefix followed by
// clean transactions: the violation must surface at the offending Add,
// not at Finalize.
func TestIncrementalDetectsMidStream(t *testing.T) {
	b := history.NewBuilder("x")
	b.Txn(0, history.R("x", 0), history.W("x", 1)) // T1 RMW of init
	b.Txn(1, history.R("x", 0), history.W("x", 2)) // T2 RMW of the same version: divergence
	b.Txn(0, history.R("x", 1))
	h := b.Build()

	inc := NewIncremental(SI)
	var vio *Result
	for i := range h.Txns {
		isInit := h.HasInit && i == 0
		var r *Result
		if isInit {
			r = inc.InitTxn("x")
		} else {
			r = inc.Add(h.Txns[i])
		}
		if r != nil {
			vio = r
			if i != 2 {
				t.Fatalf("violation surfaced at txn %d, want 2", i)
			}
			break
		}
	}
	if vio == nil || vio.Divergence == nil {
		t.Fatalf("want mid-stream divergence, got %+v", vio)
	}
	if got := inc.Finalize(); got.OK {
		t.Fatal("Finalize after violation must keep the verdict")
	}
}

// TestIncrementalPendingReadResolution checks the parked-read path: a
// reader arriving before its writer (commit-order inversion, as a
// streaming channel may deliver) must still connect correctly.
func TestIncrementalPendingReadResolution(t *testing.T) {
	inc := NewIncremental(SER)
	inc.InitTxn("x")
	// Reader of value 7 arrives before the writer of 7.
	if vio := inc.Add(history.Txn{Session: 0, Committed: true, Ops: []history.Op{history.R("x", 7)}}); vio != nil {
		t.Fatalf("parked read must not fail yet: %s", vio.Explain())
	}
	if vio := inc.Add(history.Txn{Session: 1, Committed: true, Ops: []history.Op{history.R("x", 0), history.W("x", 7)}}); vio != nil {
		t.Fatalf("writer arrival must resolve cleanly: %s", vio.Explain())
	}
	r := inc.Finalize()
	if !r.OK {
		t.Fatalf("want OK, got %s", r.Explain())
	}
	// 1 SO edge per session head + WR init->reader + WR/WW init->writer.
	if r.NumEdges == 0 {
		t.Fatal("expected dependency edges")
	}
}

// TestIncrementalThinAirAndAborted classifies unresolved reads exactly as
// the batch pre-check.
func TestIncrementalThinAirAndAborted(t *testing.T) {
	// Thin-air: nobody ever writes 99.
	b := history.NewBuilder("x")
	b.Txn(0, history.R("x", 99))
	h := b.Build()
	r := CheckIncremental(h, SER)
	if r.OK || len(r.Anomalies) == 0 || r.Anomalies[0].Kind != history.ThinAirRead {
		t.Fatalf("want ThinAirRead, got %s", r.Explain())
	}

	// Aborted read: the writer of 5 aborted.
	b = history.NewBuilder("x")
	b.AbortedTxn(0, history.R("x", 0), history.W("x", 5))
	b.Txn(1, history.R("x", 5))
	h = b.Build()
	r = CheckIncremental(h, SI)
	if r.OK || len(r.Anomalies) == 0 || r.Anomalies[0].Kind != history.AbortedRead {
		t.Fatalf("want AbortedRead, got %s", r.Explain())
	}
}

// TestOnlineTopoCycle exercises graph.Online directly: inversions reorder,
// a closing edge reports the cycle.
func TestOnlineTopoCycle(t *testing.T) {
	o := graph.NewOnline()
	for i := 0; i < 4; i++ {
		o.AddNode()
	}
	edges := []graph.Edge{
		{From: 2, To: 3, Kind: graph.SO},
		{From: 3, To: 1, Kind: graph.WR}, // inversion: reorders
		{From: 1, To: 0, Kind: graph.WW}, // inversion: reorders
	}
	for _, e := range edges {
		if cy := o.AddEdge(e); cy != nil {
			t.Fatalf("unexpected cycle at %v: %v", e, cy)
		}
	}
	cy := o.AddEdge(graph.Edge{From: 0, To: 2, Kind: graph.RW})
	if cy == nil {
		t.Fatal("edge 0->2 closes 0->2->3->1->0, want cycle")
	}
	// The cycle must be well-formed: consecutive edges chain, and it
	// closes on itself.
	for i, e := range cy {
		next := cy[(i+1)%len(cy)]
		if e.To != next.From {
			t.Fatalf("broken cycle chain at %d: %v", i, cy)
		}
	}
}

// TestOnlineTopoSelfLoop reports single-edge cycles.
func TestOnlineTopoSelfLoop(t *testing.T) {
	o := graph.NewOnline()
	o.AddNode()
	if cy := o.AddEdge(graph.Edge{From: 0, To: 0, Kind: graph.SO}); len(cy) != 1 {
		t.Fatalf("want self-loop cycle, got %v", cy)
	}
}

// TestOnlineTopoOrderInvariant floods the structure with random-ish
// acyclic edges (all oriented low->high node) inserted in adversarial
// order and verifies ord stays a valid topological order.
func TestOnlineTopoOrderInvariant(t *testing.T) {
	o := graph.NewOnline()
	const n = 60
	for i := 0; i < n; i++ {
		o.AddNode()
	}
	// Insert edges of a known DAG in an order that forces many reorders:
	// long back-to-front batches.
	// All edges run from higher to lower node index (a DAG whose
	// topological order reverses creation order), so every early
	// insertion inverts the maintained order and triggers a reorder.
	var edges []graph.Edge
	for step := n - 1; step >= 1; step-- {
		for u := 0; u+step < n; u += 7 {
			edges = append(edges, graph.Edge{From: u + step, To: u, Kind: graph.SO})
		}
	}
	for _, e := range edges {
		if cy := o.AddEdge(e); cy != nil {
			t.Fatalf("DAG edge %v reported cycle %v", e, cy)
		}
		for v := 0; v < n; v++ {
			for _, oe := range o.Out(v) {
				if o.Ord(oe.From) >= o.Ord(oe.To) {
					t.Fatalf("order invariant broken after %v: %v (ord %d >= %d)",
						e, oe, o.Ord(oe.From), o.Ord(oe.To))
				}
			}
		}
	}
}

func ExampleIncremental() {
	inc := NewIncremental(SER)
	inc.InitTxn("x", "y")
	inc.Add(history.Txn{Session: 0, Committed: true, Ops: []history.Op{history.R("x", 0), history.W("x", 1)}})
	// A second read-modify-write of the same version: lost update, an RW
	// cycle under SER, caught at this very Add.
	vio := inc.Add(history.Txn{Session: 1, Committed: true, Ops: []history.Op{history.R("x", 0), history.W("x", 2)}})
	fmt.Println(vio == nil)
	// Output: false
}
