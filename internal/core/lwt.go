package core

import (
	"fmt"
	"sort"

	"mtc/internal/history"
)

// LWTKind distinguishes the two lightweight-transaction shapes of
// Section IV-E.
type LWTKind uint8

// Lightweight-transaction kinds.
const (
	LWTInsert LWTKind = iota // insert-if-not-exists: a pure write of the initial value
	LWTRW                    // read&write: R&W(x, v, v'), a successful compare-and-set
)

// LWT is a lightweight transaction: a single-object operation with a
// real-time interval. For LWTRW, Read is the expected value v and Write
// the new value v'. For LWTInsert, only Write is meaningful.
type LWT struct {
	ID     int
	Key    history.Key
	Kind   LWTKind
	Read   history.Value
	Write  history.Value
	Start  int64
	Finish int64
}

// String renders the operation in the paper's notation.
func (o LWT) String() string {
	if o.Kind == LWTInsert {
		return fmt.Sprintf("O%d:Insert(%s,%d)@[%d,%d]", o.ID, o.Key, o.Write, o.Start, o.Finish)
	}
	return fmt.Sprintf("O%d:R&W(%s,%d,%d)@[%d,%d]", o.ID, o.Key, o.Read, o.Write, o.Start, o.Finish)
}

// LWTResult is the verdict of VLLWT with a reason on rejection.
type LWTResult struct {
	OK     bool
	Key    history.Key // key on which the violation was found
	Reason string
	// Chain is the per-key linearization witness (operation IDs in
	// chain order) when OK; diagnostic aid.
	Chains map[history.Key][]int
}

// VLLWT verifies linearizability (equivalently SSER, Section II-F) of a
// lightweight-transaction history in expected O(n) time, per Algorithm 2.
// Linearizability is local, so the history is partitioned by key and each
// sub-history checked independently.
func VLLWT(ops []LWT) LWTResult {
	byKey := make(map[history.Key][]LWT)
	for _, o := range ops {
		byKey[o.Key] = append(byKey[o.Key], o)
	}
	res := LWTResult{OK: true, Chains: make(map[history.Key][]int, len(byKey))}
	keys := make([]history.Key, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		chain, reason := vlLWTKey(byKey[k])
		if reason != "" {
			return LWTResult{OK: false, Key: k, Reason: reason}
		}
		res.Chains[k] = chain
	}
	return res
}

// vlLWTKey checks the sub-history of a single key. It returns the chain
// witness (operation IDs) or a non-empty rejection reason.
func vlLWTKey(ops []LWT) ([]int, string) {
	// Step 0: exactly one insert-if-not-exists (|WriteTx_x| includes the
	// insert as the only unconditional write).
	inserts := 0
	var head LWT
	byRead := make(map[history.Value][]int, len(ops)) // read value -> op indices
	for i, o := range ops {
		switch o.Kind {
		case LWTInsert:
			inserts++
			head = o
		case LWTRW:
			byRead[o.Read] = append(byRead[o.Read], i)
		}
	}
	if inserts != 1 {
		return nil, fmt.Sprintf("expected exactly one insert, found %d", inserts)
	}

	// Step 1: construct the transaction chain if possible. Each value must
	// be read by exactly one R&W operation (∃! in line 7 of Algorithm 2).
	chain := make([]LWT, 0, len(ops))
	chain = append(chain, head)
	v := head.Write
	remaining := len(ops) - 1
	for remaining > 0 {
		next, ok := byRead[v]
		if !ok || len(next) == 0 {
			return nil, fmt.Sprintf("no R&W reads value %d: chain breaks after %d of %d ops", v, len(chain), len(ops))
		}
		if len(next) > 1 {
			return nil, fmt.Sprintf("value %d read by %d R&W operations (chain not unique)", v, len(next))
		}
		o := ops[next[0]]
		delete(byRead, v)
		chain = append(chain, o)
		v = o.Write
		remaining--
	}

	// Step 2: the real-time requirement. Scanning the chain in reverse, no
	// operation may start after the minimum finish time of its successors.
	minFinish := int64(1<<63 - 1)
	for i := len(chain) - 1; i >= 0; i-- {
		if chain[i].Start > minFinish {
			return nil, fmt.Sprintf("%s starts after a successor finished (min successor finish %d)", chain[i], minFinish)
		}
		if chain[i].Finish < minFinish {
			minFinish = chain[i].Finish
		}
	}
	ids := make([]int, len(chain))
	for i, o := range chain {
		ids[i] = o.ID
	}
	return ids, ""
}

// LWTToHistory converts a lightweight-transaction history into a general
// History: each LWT becomes its own single-transaction session (LWT
// clients are independent), an insert becomes a pure write and an R&W a
// read followed by a write. The resulting history has no ⊥T; inserts play
// that role. CheckSSER on the converted history agrees with VLLWT (the
// SSER ≡ LIN degeneration of Section II-F), which the tests exploit.
func LWTToHistory(ops []LWT) *history.History {
	b := history.NewBuilder()
	for i, o := range ops {
		switch o.Kind {
		case LWTInsert:
			b.TimedTxn(i, o.Start, o.Finish, history.W(o.Key, o.Write))
		case LWTRW:
			b.TimedTxn(i, o.Start, o.Finish, history.R(o.Key, o.Read), history.W(o.Key, o.Write))
		}
	}
	return b.Build()
}
