package core

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"mtc/internal/history"
)

// fig4a is the linearizable history of Figure 4a: O2 [1,4], O1 [3,6],
// O3 [5,8], witnessed by the order O1, O2, O3.
func fig4a() []LWT {
	return []LWT{
		{ID: 0, Key: "x", Kind: LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 2, Key: "x", Kind: LWTRW, Read: 1, Write: 2, Start: 3, Finish: 6},
		{ID: 1, Key: "x", Kind: LWTRW, Read: 0, Write: 1, Start: 4, Finish: 7},
		{ID: 3, Key: "x", Kind: LWTRW, Read: 2, Write: 3, Start: 6, Finish: 9},
	}
}

// fig4b is the non-linearizable variant of Figure 4b: O1 starts only after
// O2 finished, yet O2 reads the value O1 writes.
func fig4b() []LWT {
	return []LWT{
		{ID: 0, Key: "x", Kind: LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 2, Key: "x", Kind: LWTRW, Read: 1, Write: 2, Start: 3, Finish: 5},
		{ID: 1, Key: "x", Kind: LWTRW, Read: 0, Write: 1, Start: 7, Finish: 10},
		{ID: 3, Key: "x", Kind: LWTRW, Read: 2, Write: 3, Start: 6, Finish: 9},
	}
}

func TestVLLWTFig4aLinearizable(t *testing.T) {
	r := VLLWT(fig4a())
	if !r.OK {
		t.Fatalf("Figure 4a history is linearizable: %s", r.Reason)
	}
	chain := r.Chains["x"]
	want := []int{0, 1, 2, 3}
	if len(chain) != 4 {
		t.Fatalf("chain = %v", chain)
	}
	for i := range want {
		if chain[i] != want[i] {
			t.Fatalf("chain = %v, want %v", chain, want)
		}
	}
}

func TestVLLWTFig4bNotLinearizable(t *testing.T) {
	r := VLLWT(fig4b())
	if r.OK {
		t.Fatal("Figure 4b history is not linearizable")
	}
	if r.Key != "x" || r.Reason == "" {
		t.Fatalf("want reason on key x, got %+v", r)
	}
}

func TestVLLWTNoInsert(t *testing.T) {
	r := VLLWT([]LWT{{ID: 0, Key: "x", Kind: LWTRW, Read: 0, Write: 1, Start: 1, Finish: 2}})
	if r.OK || !strings.Contains(r.Reason, "insert") {
		t.Fatalf("want insert-count rejection, got %+v", r)
	}
}

func TestVLLWTTwoInserts(t *testing.T) {
	r := VLLWT([]LWT{
		{ID: 0, Key: "x", Kind: LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 1, Key: "x", Kind: LWTInsert, Write: 5, Start: 3, Finish: 4},
	})
	if r.OK || !strings.Contains(r.Reason, "insert") {
		t.Fatalf("want insert-count rejection, got %+v", r)
	}
}

func TestVLLWTChainBreak(t *testing.T) {
	r := VLLWT([]LWT{
		{ID: 0, Key: "x", Kind: LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 1, Key: "x", Kind: LWTRW, Read: 7, Write: 8, Start: 3, Finish: 4}, // 7 never written
	})
	if r.OK || !strings.Contains(r.Reason, "chain") {
		t.Fatalf("want chain-break rejection, got %+v", r)
	}
}

func TestVLLWTDuplicateReaders(t *testing.T) {
	r := VLLWT([]LWT{
		{ID: 0, Key: "x", Kind: LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 1, Key: "x", Kind: LWTRW, Read: 0, Write: 1, Start: 3, Finish: 4},
		{ID: 2, Key: "x", Kind: LWTRW, Read: 0, Write: 2, Start: 3, Finish: 4},
	})
	if r.OK || !strings.Contains(r.Reason, "chain not unique") {
		t.Fatalf("want duplicate-reader rejection, got %+v", r)
	}
}

func TestVLLWTMultipleKeysLocality(t *testing.T) {
	ops := append(fig4a(), []LWT{
		{ID: 10, Key: "y", Kind: LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 11, Key: "y", Kind: LWTRW, Read: 0, Write: 1, Start: 3, Finish: 4},
	}...)
	r := VLLWT(ops)
	if !r.OK {
		t.Fatalf("both keys linearizable: %s", r.Reason)
	}
	if len(r.Chains) != 2 {
		t.Fatalf("chains = %v", r.Chains)
	}
	// Break y only; x must not mask it.
	ops[len(ops)-1].Read = 42
	r = VLLWT(ops)
	if r.OK || r.Key != "y" {
		t.Fatalf("want y rejection, got %+v", r)
	}
}

func TestVLLWTRealTimeBoundary(t *testing.T) {
	// finish == start of successor is allowed (RT is strict <).
	ops := []LWT{
		{ID: 0, Key: "x", Kind: LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 1, Key: "x", Kind: LWTRW, Read: 0, Write: 1, Start: 2, Finish: 3},
	}
	if r := VLLWT(ops); !r.OK {
		t.Fatalf("touching intervals are linearizable: %s", r.Reason)
	}
}

func TestVLLWTEmptyAndSingleInsert(t *testing.T) {
	if r := VLLWT(nil); !r.OK {
		t.Fatalf("empty history trivially linearizable: %+v", r)
	}
	r := VLLWT([]LWT{{ID: 0, Key: "x", Kind: LWTInsert, Write: 0, Start: 1, Finish: 2}})
	if !r.OK || len(r.Chains["x"]) != 1 {
		t.Fatalf("single insert: %+v", r)
	}
}

func TestLWTToHistoryShape(t *testing.T) {
	h := LWTToHistory(fig4a())
	if len(h.Txns) != 4 || h.HasInit {
		t.Fatalf("unexpected history: %+v", h)
	}
	if len(h.Txns[0].Ops) != 1 || h.Txns[0].Ops[0].Kind != history.OpWrite {
		t.Fatalf("insert must convert to a pure write: %v", h.Txns[0])
	}
	if len(h.Txns[1].Ops) != 2 {
		t.Fatalf("R&W must convert to read+write: %v", h.Txns[1])
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLWTString(t *testing.T) {
	o := LWT{ID: 1, Key: "x", Kind: LWTRW, Read: 0, Write: 1, Start: 2, Finish: 3}
	if o.String() != "O1:R&W(x,0,1)@[2,3]" {
		t.Fatalf("String = %q", o.String())
	}
	i := LWT{ID: 0, Key: "x", Kind: LWTInsert, Write: 0, Start: 1, Finish: 2}
	if i.String() != "O0:Insert(x,0)@[1,2]" {
		t.Fatalf("String = %q", i.String())
	}
}

// randomLWTHistory builds a valid single-key LWT chain and randomly jitters
// the intervals. When jitter keeps intervals consistent with the chain
// order the history stays linearizable; otherwise it may not be. We only
// assert agreement between VLLWT and CheckSSER on the converted history.
func randomLWTHistory(rng *rand.Rand, n int, breakIt bool) []LWT {
	ops := make([]LWT, 0, n+1)
	ops = append(ops, LWT{ID: 0, Key: "k", Kind: LWTInsert, Write: 0, Start: 1, Finish: 2})
	var tme int64 = 3
	for i := 1; i <= n; i++ {
		start := tme - int64(rng.Intn(3)) // may overlap predecessor
		if start < 1 {
			start = 1
		}
		ops = append(ops, LWT{
			ID: i, Key: "k", Kind: LWTRW,
			Read: history.Value(i - 1), Write: history.Value(i),
			Start: start, Finish: tme + 2,
		})
		tme += 3
	}
	if breakIt && n >= 2 {
		// Shift one operation far into the future so it starts after its
		// successors finish.
		i := 1 + rng.Intn(n-1)
		ops[i].Start += 1000
		ops[i].Finish += 1000
	}
	// Shuffle presentation order; checkers must not rely on it.
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

func TestPropertyVLLWTAgreesWithCheckSSER(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		ops := randomLWTHistory(rng, n, rng.Intn(2) == 1)
		lr := VLLWT(ops)
		hr := CheckSSER(LWTToHistory(ops))
		if lr.OK != hr.OK {
			t.Logf("VLLWT=%v CheckSSER=%v\nreason=%s\n%s", lr.OK, hr.OK, lr.Reason, hr.Explain())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyValidChainsAlwaysLinearizable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := randomLWTHistory(rng, 2+rng.Intn(30), false)
		r := VLLWT(ops)
		if !r.OK {
			return false
		}
		// The chain witness must be value-ordered.
		chain := r.Chains["k"]
		ids := append([]int(nil), chain...)
		if !sort.IntsAreSorted(ids) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
