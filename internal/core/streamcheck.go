package core

import (
	"context"
	"io"

	"mtc/internal/history"
)

// TxnSource yields transactions in arrival order, one at a time, ending
// with io.EOF. history.StreamReader implements it over the NDJSON
// encoding; tests implement it over in-memory histories.
type TxnSource interface {
	Next() (history.Txn, error)
}

// SessionDeclarer is implemented by sources that know the stream's
// session count before the first record (the NDJSON header declares
// it). CheckStreamCtx then arms the checker's staleness horizon for
// every session up front, making windowed verdicts of ingestion-ordered
// captures exact instead of contingent on the window outrunning the
// stream's commit-to-ingest skew.
type SessionDeclarer interface {
	DeclaredSessions() int
}

// CheckStream verifies a transaction stream without ever materialising
// the history: each transaction is decoded, fed to the online checker
// and released, so a multi-gigabyte NDJSON capture verifies in O(window
// + boundary) memory when window > 0 (and O(stream) when window <= 0,
// matching the unbounded incremental check).
func CheckStream(src TxnSource, lvl Level, window int) Result {
	r, _ := CheckStreamCtx(context.Background(), src, lvl, window, 0)
	return r
}

// CheckStreamCtx is CheckStream under a context, polled between
// batches. every tunes the compaction cadence exactly like
// Incremental.MaybeCompact (0 picks window/2).
//
// A record with a negative session number is the init transaction and
// must be first (the NDJSON convention). The stream is verified under
// the epoch contract of Incremental.Compact, with the staleness horizon
// armed for every session the source declares up front (and lazily for
// any session that first appears mid-stream): compaction then never
// evicts a writer slot a declared session's in-flight transaction may
// still read, so windowed verdicts of captures written in ingestion
// order match the unbounded check exactly. Sessions a stream does not
// declare are only protected from their first record onward; a stale
// read outside that protection parks and is reported as ThinAirRead
// rather than silently mis-verified.
func CheckStreamCtx(ctx context.Context, src TxnSource, lvl Level, window, every int) (Result, error) {
	inc := NewIncremental(lvl)
	armed := 0
	if d, ok := src.(SessionDeclarer); ok {
		for s := 0; s < d.DeclaredSessions(); s++ {
			inc.ExpectSession(s)
		}
		armed = d.DeclaredSessions()
	}
	i := 0
	for {
		if i&511 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		t, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Result{}, err
		}
		if t.Session >= armed {
			for s := armed; s <= t.Session; s++ {
				inc.ExpectSession(s)
			}
			armed = t.Session + 1
		}
		if vio := inc.add(t, i == 0 && t.Session < 0); vio != nil {
			return *vio, nil
		}
		inc.MaybeCompact(window, every, nil)
		i++
	}
	return inc.Finalize(), nil
}
