package core_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"mtc/internal/core"
	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

// ndjsonSource round-trips a history through the streaming codec and
// returns a TxnSource positioned at its first record.
func ndjsonSource(t *testing.T, h *history.History) core.TxnSource {
	t.Helper()
	var buf bytes.Buffer
	if err := history.WriteNDJSON(&buf, h); err != nil {
		t.Fatal(err)
	}
	sr, err := history.NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestCheckStreamMatchesBatch: verifying an NDJSON capture transaction
// by transaction decides the same predicate as the batch checker, on
// clean and faulty histories alike.
func TestCheckStreamMatchesBatch(t *testing.T) {
	bug := faults.BugByName("mariadb-galera-10.7.3")
	for seed := int64(1); seed <= 25; seed++ {
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 3, Txns: 8, Objects: 3,
			Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.25,
		})
		for _, mk := range []func() *kv.Store{
			func() *kv.Store { return kv.NewStore(kv.ModeSI) },
			func() *kv.Store { return bug.NewStore(seed) },
		} {
			h := runner.Run(mk(), w, runner.Config{Retries: 2}).H
			for _, lvl := range []core.Level{core.SER, core.SI} {
				batch := core.Check(h, lvl)
				stream := core.CheckStream(ndjsonSource(t, h), lvl, 0)
				if batch.OK != stream.OK {
					t.Fatalf("seed %d/%s: batch OK=%v, stream OK=%v\nbatch: %s\nstream: %s",
						seed, lvl, batch.OK, stream.OK, batch.Explain(), stream.Explain())
				}
				if batch.OK && batch.NumEdges != stream.NumEdges {
					t.Fatalf("seed %d/%s: accepted but edges diverge: batch %d, stream %d",
						seed, lvl, batch.NumEdges, stream.NumEdges)
				}
			}
		}
	}
}

// TestCheckStreamWindowed: a windowed stream check compacts as it goes
// and still accepts the clean capture — the header's declared sessions
// arm the staleness horizon, so the verdict does not depend on how the
// capture's commit-to-ingest skew compares with the window. The capture
// comes from RunStream, whose history is assembled in publish order:
// the horizon's exactness guarantee covers exactly such
// ingestion-ordered captures (runner.Run groups records by session, so
// its files replay correctly only with window 0 or a window exceeding
// the session skew).
func TestCheckStreamWindowed(t *testing.T) {
	for _, lvl := range []core.Level{core.SER, core.SI} {
		mode := kv.ModeSI
		if lvl == core.SER {
			mode = kv.ModeSerializable
		}
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 4, Txns: 60, Objects: 6,
			Dist: workload.Uniform, Seed: 7, ReadOnlyFrac: 0.25,
		})
		h := runner.RunStream(context.Background(), kv.NewStore(mode), w, runner.Config{Retries: 3}, lvl).H
		r := core.CheckStream(ndjsonSource(t, h), lvl, 32)
		if !r.OK {
			t.Fatalf("%s: clean windowed stream rejected: %s", lvl, r.Explain())
		}
		if r.CompactedEpochs == 0 || r.CompactedTxns == 0 {
			t.Fatalf("%s: no compaction happened (epochs %d, txns %d)", lvl, r.CompactedEpochs, r.CompactedTxns)
		}
	}
}

// failingSource yields one transaction then a codec error.
type failingSource struct{ n int }

func (f *failingSource) Next() (history.Txn, error) {
	if f.n == 0 {
		f.n++
		return history.Txn{ID: 0, Session: 0, Committed: true}, nil
	}
	return history.Txn{}, errors.New("disk gremlin")
}

func TestCheckStreamPropagatesSourceError(t *testing.T) {
	_, err := core.CheckStreamCtx(context.Background(), &failingSource{}, core.SI, 0, 0)
	if err == nil || err.Error() != "disk gremlin" {
		t.Fatalf("source error not propagated: %v", err)
	}
}
