package core

import (
	"context"
	"sort"

	"mtc/internal/history"
)

// CheckIncrementalWindowed replays a complete history through the online
// checker under a bounded memory window: the stream is compacted every
// window/2 transactions so at most O(window + boundary) transactions are
// materialised at any moment. It decides exactly the same predicate as
// CheckIncremental — identical verdicts, anomalies and first-offending
// commit on every history, not just well-behaved ones — because the
// replay driver knows the future: a pre-scan computes, for every
// transaction, the last stream position that still references any value
// it participates in, and pins it across compactions until then.
// window <= 0 selects the unbounded replay.
func CheckIncrementalWindowed(h *history.History, lvl Level, window int) Result {
	r, _ := CheckIncrementalWindowedCtx(context.Background(), h, lvl, window)
	return r
}

// CheckIncrementalWindowedCtx is the one replay driver behind both
// CheckIncremental and the windowed check: transactions are fed in
// commit (Finish timestamp) order — the order a live stream would
// deliver them — with ctx polled between batches, and, when window > 0,
// MaybeCompact runs on the shared cadence with the pre-scan pin.
// Counterexample transaction IDs are mapped back to History.Txns
// indices before returning.
func CheckIncrementalWindowedCtx(ctx context.Context, h *history.History, lvl Level, window int) (Result, error) {
	order := make([]int, len(h.Txns))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return h.Txns[order[a]].Finish < h.Txns[order[b]].Finish
	})
	var keepUntil []int
	if window > 0 {
		keepUntil = futureRefs(h, order)
	}
	inc := NewIncremental(lvl)
	perm := make([]int, 0, len(order)) // arrival position -> original ID
	for i, id := range order {
		if i&511 == 0 {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
		perm = append(perm, id)
		if vio := inc.add(h.Txns[id], h.HasInit && id == 0); vio != nil {
			return RemapResult(*vio, perm), nil
		}
		if window > 0 {
			fed := i + 1
			inc.MaybeCompact(window, 0, func(e int) bool { return keepUntil[e] >= fed })
		}
	}
	return RemapResult(inc.Finalize(), perm), nil
}

// futureRefs computes, per arrival position, the last arrival position
// that still references a value the transaction participates in — as
// the writer (committed or aborted), a reader, or a duplicate writer.
// Compacting at stream position p may only collapse transactions whose
// entry is below p: everything the remaining suffix can read from,
// write-conflict with, or need for anomaly classification stays pinned,
// which is the exact finalized-prefix condition of the epoch contract.
func futureRefs(h *history.History, order []int) []int {
	n := len(order)
	keepUntil := make([]int, n)
	firstCommitted := make(map[history.Op]int, n) // value -> first committed writer position
	participants := make(map[history.Op][]int, n) // value -> positions touching it
	lastRef := make(map[history.Op]int, n)        // value -> last referencing position
	for p, id := range order {
		t := &h.Txns[id]
		for _, op := range t.Ops {
			vk := history.Op{Kind: history.OpWrite, Key: op.Key, Value: op.Value}
			switch {
			case op.Kind == history.OpWrite && !t.Committed:
				// Aborted writer: participates (AbortedRead classification
				// needs it alive) but neither claims the value nor refs it.
				participants[vk] = append(participants[vk], p)
			case op.Kind == history.OpWrite:
				if _, dup := firstCommitted[vk]; dup {
					// Duplicate write: the first writer must survive to p
					// for the unique-value check to fire identically.
					if lastRef[vk] < p {
						lastRef[vk] = p
					}
				} else {
					firstCommitted[vk] = p
				}
				participants[vk] = append(participants[vk], p)
			default: // read
				participants[vk] = append(participants[vk], p)
				if lastRef[vk] < p {
					lastRef[vk] = p
				}
			}
		}
	}
	//mtc:nondeterministic-ok maximum fold into keepUntil; max is commutative
	for vk, ps := range participants {
		ref, referenced := lastRef[vk]
		if !referenced {
			continue
		}
		if _, ok := firstCommitted[vk]; !ok {
			// Read of a value no committed transaction ever wrote: its
			// aborted writer (if any) decides AbortedRead vs ThinAirRead
			// at Finalize, so it must survive the whole stream.
			ref = n
		}
		for _, q := range ps {
			if keepUntil[q] < ref {
				keepUntil[q] = ref
			}
		}
	}
	return keepUntil
}
