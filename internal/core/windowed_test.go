// windowed_test.go property-tests the epoch-windowed checker against the
// unbounded online checker: on every history — clean or fault-injected,
// MT or dropped-abort shaped — windowed replay at several window sizes
// must return the identical verdict, anomaly list, divergence witness,
// edge count and first-offending-commit position, while actually
// compacting. It lives in the external test package so it can drive the
// full workload -> store -> runner pipeline.
package core_test

import (
	"reflect"
	"testing"

	"mtc/internal/core"
	"mtc/internal/faults"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

var diffWindows = []int{4, 16, 64}

// windowedDiffCheck compares unbounded and windowed verdicts on one
// history at both online levels.
func windowedDiffCheck(t *testing.T, h *history.History, tag string) {
	t.Helper()
	for _, lvl := range []core.Level{core.SER, core.SI} {
		ref := core.CheckIncremental(h, lvl)
		for _, win := range diffWindows {
			got := core.CheckIncrementalWindowed(h, lvl, win)
			if got.OK != ref.OK {
				t.Fatalf("%s/%s win %d: OK=%v, unbounded OK=%v\nunbounded: %s\nwindowed: %s",
					tag, lvl, win, got.OK, ref.OK, ref.Explain(), got.Explain())
			}
			// NumTxns in a violating verdict is the stream position at
			// detection: equality means the windowed checker flags the
			// same first offending commit.
			if got.NumTxns != ref.NumTxns || got.NumEdges != ref.NumEdges {
				t.Fatalf("%s/%s win %d: txns/edges %d/%d, unbounded %d/%d",
					tag, lvl, win, got.NumTxns, got.NumEdges, ref.NumTxns, ref.NumEdges)
			}
			if !reflect.DeepEqual(got.Anomalies, ref.Anomalies) {
				t.Fatalf("%s/%s win %d: anomalies diverge\nunbounded: %v\nwindowed:  %v",
					tag, lvl, win, ref.Anomalies, got.Anomalies)
			}
			if !reflect.DeepEqual(got.Divergence, ref.Divergence) {
				t.Fatalf("%s/%s win %d: divergence diverges\nunbounded: %v\nwindowed:  %v",
					tag, lvl, win, ref.Divergence, got.Divergence)
			}
			// Cycle EDGES may legitimately differ: a path through a
			// collapsed epoch reports as a summary edge. Presence must not.
			if (len(got.Cycle) > 0) != (len(ref.Cycle) > 0) {
				t.Fatalf("%s/%s win %d: cycle presence diverges\nunbounded: %s\nwindowed: %s",
					tag, lvl, win, ref.Explain(), got.Explain())
			}
		}
	}
}

// TestDifferentialWindowedVsUnbounded runs >= 1000 randomized histories
// through the windowed checker at windows far smaller than the history:
// clean substrates of every store mode plus every non-LWT bug of the
// Table II catalogue, including dropped-abort streams.
func TestDifferentialWindowedVsUnbounded(t *testing.T) {
	var bugs []faults.Bug
	for _, b := range faults.Bugs() {
		if !b.LWT {
			bugs = append(bugs, b)
		}
	}
	histories := 0
	for seed := int64(1); seed <= 125; seed++ {
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 3, Txns: 6, Objects: 4,
			Dist: workload.Uniform, Seed: seed, ReadOnlyFrac: 0.25,
		})
		for _, mode := range []kv.Mode{kv.ModeSerializable, kv.ModeSI, kv.Mode2PL} {
			h := runner.Run(kv.NewStore(mode), w, runner.Config{Retries: 2}).H
			windowedDiffCheck(t, h, mode.String())
			histories++
		}
		wf := workload.GenerateMT(workload.MTConfig{
			Sessions: 3, Txns: 8, Objects: 2,
			Dist: workload.Exponential, Seed: seed, ReadOnlyFrac: 0.25,
		})
		for _, b := range bugs {
			h := runner.Run(b.NewStore(seed), wf, runner.Config{Retries: 2}).H
			windowedDiffCheck(t, h, b.Name)
			histories++
		}
		// Aborted transactions dropped from the record: stresses the
		// pending-read classification surviving compaction.
		hd := runner.Run(bugs[1].NewStore(seed), wf, runner.Config{Retries: 1, DropAborted: true}).H
		windowedDiffCheck(t, hd, bugs[1].Name+"-dropped")
		histories++
	}
	if histories < 1000 {
		t.Fatalf("differential corpus too small: %d histories", histories)
	}
	t.Logf("compared %d histories at 2 levels x %d windows each", histories, len(diffWindows))
}

// TestWindowedActuallyCompacts guards against the suite passing
// vacuously: on a long clean serializable run the windowed checker must
// collapse most of the stream and keep the live graph near the window.
func TestWindowedActuallyCompacts(t *testing.T) {
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 4, Txns: 250, Objects: 16,
		Dist: workload.Uniform, Seed: 7, ReadOnlyFrac: 0.25,
	})
	h := runner.Run(kv.NewStore(kv.ModeSerializable), w, runner.Config{Retries: 4}).H
	if len(h.Txns) < 900 {
		t.Fatalf("history too small: %d", len(h.Txns))
	}
	for _, lvl := range []core.Level{core.SER, core.SI} {
		got := core.CheckIncrementalWindowed(h, lvl, 64)
		if !got.OK {
			t.Fatalf("%s: clean history rejected: %s", lvl, got.Explain())
		}
		if got.CompactedEpochs == 0 || got.CompactedTxns < len(h.Txns)/2 {
			t.Fatalf("%s: compaction barely ran: %d txns over %d epochs (history %d)",
				lvl, got.CompactedTxns, got.CompactedEpochs, len(h.Txns))
		}
	}
}

// TestCompactBoundsLiveState drives a long synthetic clean RMW stream
// through Incremental with periodic window compaction and asserts the
// materialised state stays bounded by the window plus the per-key
// boundary — the structural form of the bounded-RSS claim that
// BenchmarkStream1M measures.
func TestCompactBoundsLiveState(t *testing.T) {
	const (
		keys    = 32
		txns    = 20000
		window  = 512
		session = 8
	)
	keyNames := make([]history.Key, keys)
	for i := range keyNames {
		keyNames[i] = history.Key("k" + string(rune('a'+i%26)) + string(rune('0'+i/26)))
	}
	for _, lvl := range []core.Level{core.SER, core.SI} {
		inc := core.NewIncremental(lvl)
		inc.InitTxn(keyNames...)
		latest := make([]history.Value, keys) // current value per key
		maxLive := 0
		next := history.Value(1)
		for i := 0; i < txns; i++ {
			k := i % keys
			ops := []history.Op{
				{Kind: history.OpRead, Key: keyNames[k], Value: latest[k]},
				{Kind: history.OpWrite, Key: keyNames[k], Value: next},
			}
			latest[k] = next
			next++
			if vio := inc.Add(history.Txn{Session: i % session, Ops: ops, Committed: true}); vio != nil {
				t.Fatalf("%s: clean stream rejected at %d: %s", lvl, i, vio.Explain())
			}
			inc.MaybeCompact(window, 0, nil)
			if live := inc.LiveNodes(); live > maxLive {
				maxLive = live
			}
		}
		if r := inc.Finalize(); !r.OK {
			t.Fatalf("%s: finalize rejected: %s", lvl, r.Explain())
		}
		// Window plus slack for session tails, per-key latest slots and
		// the not-yet-compacted half-window.
		bound := window + window/2 + 4*keys + session + 16
		if maxLive > bound {
			t.Fatalf("%s: live state not bounded: peak %d nodes > %d (window %d, %d txns)",
				lvl, maxLive, bound, window, txns)
		}
		if inc.CompactedTxns() < txns/2 {
			t.Fatalf("%s: compaction barely ran: %d of %d txns", lvl, inc.CompactedTxns(), txns)
		}
	}
}
