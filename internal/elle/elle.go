// Package elle re-implements the Elle baseline (Kingsbury & Alvaro,
// VLDB'20): an isolation checker that infers dependencies from list-append
// workloads. Reading a list [v1..vk] fixes the version order of the k
// appends, from which write-write, write-read and read-write dependencies
// follow; cycles over those dependencies (plus session order) witness
// violations. The package also provides Elle's read-write-register mode,
// which can only exploit reads-from information and RMW patterns — the
// reason its bug-detection power depends so strongly on workload shape
// (Figure 13).
package elle

import (
	"context"
	"fmt"

	"mtc/internal/graph"
	"mtc/internal/history"
)

// Op is a list-append history operation: an append of Value to Key, or a
// read of Key observing List.
type Op struct {
	Append bool
	Key    history.Key
	Value  history.Value   // appended value
	List   []history.Value // observed list (reads)
}

// Txn is a transaction of a list-append history.
type Txn struct {
	ID        int
	Session   int
	Ops       []Op
	Committed bool
	Start     int64
	Finish    int64
}

// History is a list-append history grouped into sessions.
type History struct {
	Txns     []Txn
	Sessions [][]int
}

// Level selects the isolation condition to check.
type Level string

// Supported levels.
const (
	SER Level = "SER"
	SI  Level = "SI"
)

// Report is the verdict of an Elle check.
type Report struct {
	OK     bool
	Level  Level
	Reason string       // human-readable cause when !OK
	Cycle  []graph.Edge // present for cyclic violations
}

// CheckListAppend verifies a list-append history against the level.
func CheckListAppend(h *History, lvl Level) Report {
	rep := Report{Level: lvl}

	// appendOf[key][value] = committed appender; abortedAppends for G1a.
	appendOf := map[history.Key]map[history.Value]int{}
	aborted := map[history.Key]map[history.Value]int{}
	for i := range h.Txns {
		t := &h.Txns[i]
		for _, op := range t.Ops {
			if !op.Append {
				continue
			}
			m := appendOf[op.Key]
			am := aborted[op.Key]
			if m == nil {
				m = map[history.Value]int{}
				appendOf[op.Key] = m
			}
			if am == nil {
				am = map[history.Value]int{}
				aborted[op.Key] = am
			}
			if t.Committed {
				if _, dup := m[op.Value]; dup {
					rep.Reason = fmt.Sprintf("duplicate append of %d to %s", op.Value, op.Key)
					return rep
				}
				m[op.Value] = i
			} else {
				am[op.Value] = i
			}
		}
	}

	// Gather stripped observations and build the per-key version order as
	// the longest observed list; all observations must be prefixes.
	type obs struct {
		txn  int
		key  history.Key
		list []history.Value
	}
	var observations []obs
	longest := map[history.Key][]history.Value{}
	for i := range h.Txns {
		t := &h.Txns[i]
		if !t.Committed {
			continue
		}
		own := map[history.Key][]history.Value{}
		for _, op := range t.Ops {
			if op.Append {
				own[op.Key] = append(own[op.Key], op.Value)
				continue
			}
			list, err := stripOwn(op.List, own[op.Key])
			if err != nil {
				rep.Reason = fmt.Sprintf("T%d read of %s: %v", i, op.Key, err)
				return rep
			}
			// G1a / thin-air on every observed element.
			for _, v := range list {
				if _, ok := appendOf[op.Key][v]; ok {
					continue
				}
				if _, ok := aborted[op.Key][v]; ok {
					rep.Reason = fmt.Sprintf("T%d observed aborted append %d on %s (G1a)", i, v, op.Key)
				} else {
					rep.Reason = fmt.Sprintf("T%d observed unwritten value %d on %s", i, v, op.Key)
				}
				return rep
			}
			observations = append(observations, obs{txn: i, key: op.Key, list: list})
			if len(list) > len(longest[op.Key]) {
				longest[op.Key] = list
			}
		}
	}
	// Prefix compatibility: every observation must be a prefix of the
	// longest list of its key (Elle's "incompatible orders" check).
	for _, o := range observations {
		long := longest[o.key]
		for j, v := range o.list {
			if long[j] != v {
				rep.Reason = fmt.Sprintf("incompatible version orders on %s: %v vs %v", o.key, o.list, long)
				return rep
			}
		}
	}

	// Build the dependency graph.
	g := graph.New(len(h.Txns))
	so := func(a, b int) { g.AddEdge(graph.Edge{From: a, To: b, Kind: graph.SO}) }
	for _, ids := range h.Sessions {
		prev := -1
		for _, id := range ids {
			if !h.Txns[id].Committed {
				continue
			}
			if prev >= 0 {
				so(prev, id)
			}
			prev = id
		}
	}
	// WW along each version order; position index for RW derivation.
	pos := map[history.Key]map[history.Value]int{}
	for k, order := range longest {
		pos[k] = map[history.Value]int{}
		for j, v := range order {
			pos[k][v] = j
			if j > 0 {
				a, b := appendOf[k][order[j-1]], appendOf[k][v]
				if a != b {
					g.AddEdge(graph.Edge{From: a, To: b, Kind: graph.WW, Obj: string(k)})
				}
			}
		}
	}
	// Committed appends never observed by any read still occupy positions
	// after the longest observed prefix (the prefix was read, so they
	// cannot precede it): they are WW-after the last observed appender,
	// and full-prefix readers anti-depend on them.
	unobserved := map[history.Key][]int{}
	for k, m := range appendOf {
		inPrefix := map[history.Value]bool{}
		for _, v := range longest[k] {
			inPrefix[v] = true
		}
		for v, w := range m {
			if !inPrefix[v] {
				unobserved[k] = append(unobserved[k], w)
			}
		}
		if order := longest[k]; len(order) > 0 {
			last := appendOf[k][order[len(order)-1]]
			for _, w := range unobserved[k] {
				if w != last {
					g.AddEdge(graph.Edge{From: last, To: w, Kind: graph.WW, Obj: string(k)})
				}
			}
		}
	}

	for _, o := range observations {
		order := longest[o.key]
		if len(o.list) > 0 {
			last := o.list[len(o.list)-1]
			if w := appendOf[o.key][last]; w != o.txn {
				g.AddEdge(graph.Edge{From: w, To: o.txn, Kind: graph.WR, Obj: string(o.key)})
			}
		}
		switch {
		case len(o.list) < len(order):
			// The reader anti-depends on the appender of the next version.
			if next := appendOf[o.key][order[len(o.list)]]; next != o.txn {
				g.AddEdge(graph.Edge{From: o.txn, To: next, Kind: graph.RW, Obj: string(o.key)})
			}
		default:
			// Full-prefix reader: every unobserved append is a later
			// version it anti-depends on.
			for _, w := range unobserved[o.key] {
				if w != o.txn {
					g.AddEdge(graph.Edge{From: o.txn, To: w, Kind: graph.RW, Obj: string(o.key)})
				}
			}
		}
	}

	return cycleCheck(rep, g, lvl)
}

// stripOwn removes the transaction's own buffered appends from the tail of
// an observed list.
func stripOwn(list, own []history.Value) ([]history.Value, error) {
	if len(own) == 0 {
		return list, nil
	}
	if len(list) < len(own) {
		return nil, fmt.Errorf("own appends missing from read (list %v, own %v)", list, own)
	}
	tail := list[len(list)-len(own):]
	for i, v := range own {
		if tail[i] != v {
			return nil, fmt.Errorf("own appends not a suffix of read (list %v, own %v)", list, own)
		}
	}
	return list[:len(list)-len(own)], nil
}

// cycleCheck applies the level's cycle condition to the dependency graph.
func cycleCheck(rep Report, g *graph.Graph, lvl Level) Report {
	switch lvl {
	case SER:
		if cycle := g.FindCycle(); cycle != nil {
			rep.Reason = "dependency cycle: " + graph.FormatCycle(cycle)
			rep.Cycle = cycle
			return rep
		}
	case SI:
		gi := graph.New(g.Len())
		for u := 0; u < g.Len(); u++ {
			for _, e := range g.Out(u) {
				if e.Kind == graph.RW {
					continue
				}
				gi.AddEdge(e)
				for _, rw := range g.Out(e.To) {
					if rw.Kind == graph.RW {
						gi.AddEdge(graph.Edge{From: u, To: rw.To, Kind: graph.AUX, Obj: "(;RW)"})
					}
				}
			}
		}
		if cycle := gi.FindCycle(); cycle != nil {
			rep.Reason = "SI composition cycle: " + graph.FormatCycle(cycle)
			rep.Cycle = cycle
			return rep
		}
	default:
		panic(fmt.Sprintf("elle: unknown level %q", lvl))
	}
	rep.OK = true
	return rep
}

// CheckRWRegister is Elle's read-write-register mode over an ordinary
// register history: it pre-checks the G1/internal anomalies and then
// searches for cycles over session order, reads-from, and whatever
// write-write order the read-modify-write pattern reveals. Blind writes
// leave the version order unknown, so this mode misses anomalies that
// list-append (or MTC's RMW-only workloads) would catch — the effect
// Figure 13 quantifies.
func CheckRWRegister(h *history.History, lvl Level) Report {
	rep, _ := CheckRWRegisterCtx(context.Background(), h, lvl)
	return rep
}

// CheckRWRegisterCtx is CheckRWRegister under a context: the dependency
// inference polls ctx between batches of transactions, so large
// histories stop promptly under a deadline. The Report is only
// meaningful when the error is nil.
func CheckRWRegisterCtx(ctx context.Context, h *history.History, lvl Level) (Report, error) {
	rep := Report{Level: lvl}
	ix := history.NewIndex(h)
	if as := history.CheckInternalIndexed(ix); len(as) > 0 {
		rep.Reason = as[0].String()
		return rep, nil
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	g := graph.New(len(h.Txns))
	h.SessionOrder(func(a, b int) {
		g.AddEdge(graph.Edge{From: a, To: b, Kind: graph.SO})
	})
	type wk struct {
		w int
		k history.KeyID
	}
	readers := map[wk][]int{}
	rmwSucc := map[wk][]int{} // divergence yields several successors
	for s := range h.Txns {
		if s&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return Report{}, err
			}
		}
		rk, rv := ix.Reads(s) // empty for aborted transactions
		for i, x := range rk {
			w := ix.Writer(x, rv[i])
			if w < 0 || w == s {
				continue
			}
			g.AddEdge(graph.Edge{From: w, To: s, Kind: graph.WR, Obj: string(ix.KeyName(x))})
			readers[wk{w, x}] = append(readers[wk{w, x}], s)
			if _, ok := ix.WriteVal(s, x); ok {
				g.AddEdge(graph.Edge{From: w, To: s, Kind: graph.WW, Obj: string(ix.KeyName(x))})
				rmwSucc[wk{w, x}] = append(rmwSucc[wk{w, x}], s)
			}
		}
	}
	for key, succs := range rmwSucc {
		if lvl == SI && len(succs) > 1 {
			// Two transactions updated the same version: a lost update,
			// which SI forbids regardless of the composition graph.
			rep.Reason = fmt.Sprintf("diverging updates of T%d on %s (lost update)", key.w, ix.KeyName(key.k))
			return rep, nil
		}
		for _, succ := range succs {
			for _, r := range readers[key] {
				if r != succ {
					g.AddEdge(graph.Edge{From: r, To: succ, Kind: graph.RW, Obj: string(ix.KeyName(key.k))})
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	return cycleCheck(rep, g, lvl), nil
}
