package elle_test

import (
	"strings"

	. "mtc/internal/elle"
	"testing"
	"testing/quick"

	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

// la builds a list-append history from transactions.
func la(txns ...Txn) *History {
	h := &History{}
	sessions := map[int][]int{}
	maxS := 0
	for i, t := range txns {
		t.ID = i
		h.Txns = append(h.Txns, t)
		sessions[t.Session] = append(sessions[t.Session], i)
		if t.Session > maxS {
			maxS = t.Session
		}
	}
	h.Sessions = make([][]int, maxS+1)
	for s, ids := range sessions {
		h.Sessions[s] = ids
	}
	return h
}

func app(k history.Key, v history.Value) Op    { return Op{Append: true, Key: k, Value: v} }
func rd(k history.Key, vs ...history.Value) Op { return Op{Key: k, List: vs} }

func TestCleanSerialListAppend(t *testing.T) {
	h := la(
		Txn{Session: 0, Committed: true, Ops: []Op{app("x", 1)}},
		Txn{Session: 0, Committed: true, Ops: []Op{rd("x", 1), app("x", 2)}},
		Txn{Session: 1, Committed: true, Ops: []Op{rd("x", 1, 2)}},
	)
	for _, lvl := range []Level{SER, SI} {
		if r := CheckListAppend(h, lvl); !r.OK {
			t.Fatalf("%s: %s", lvl, r.Reason)
		}
	}
}

func TestIncompatibleOrders(t *testing.T) {
	// Two reads observe forked lists: [1,2] vs [1,3].
	h := la(
		Txn{Session: 0, Committed: true, Ops: []Op{app("x", 1)}},
		Txn{Session: 0, Committed: true, Ops: []Op{app("x", 2)}},
		Txn{Session: 1, Committed: true, Ops: []Op{app("x", 3)}},
		Txn{Session: 2, Committed: true, Ops: []Op{rd("x", 1, 2)}},
		Txn{Session: 3, Committed: true, Ops: []Op{rd("x", 1, 3)}},
	)
	r := CheckListAppend(h, SI)
	if r.OK || !strings.Contains(r.Reason, "incompatible") {
		t.Fatalf("want incompatible orders, got %+v", r)
	}
}

func TestAbortedAppendObserved(t *testing.T) {
	h := la(
		Txn{Session: 0, Committed: false, Ops: []Op{app("x", 1)}},
		Txn{Session: 1, Committed: true, Ops: []Op{rd("x", 1)}},
	)
	r := CheckListAppend(h, SER)
	if r.OK || !strings.Contains(r.Reason, "G1a") {
		t.Fatalf("want G1a, got %+v", r)
	}
}

func TestThinAirElementObserved(t *testing.T) {
	h := la(
		Txn{Session: 0, Committed: true, Ops: []Op{rd("x", 99)}},
	)
	r := CheckListAppend(h, SER)
	if r.OK || !strings.Contains(r.Reason, "unwritten") {
		t.Fatalf("want thin-air, got %+v", r)
	}
}

func TestDuplicateAppendRejected(t *testing.T) {
	h := la(
		Txn{Session: 0, Committed: true, Ops: []Op{app("x", 1)}},
		Txn{Session: 1, Committed: true, Ops: []Op{app("x", 1)}},
	)
	r := CheckListAppend(h, SER)
	if r.OK || !strings.Contains(r.Reason, "duplicate") {
		t.Fatalf("want duplicate, got %+v", r)
	}
}

func TestOwnAppendsStripped(t *testing.T) {
	h := la(
		Txn{Session: 0, Committed: true, Ops: []Op{app("x", 1)}},
		Txn{Session: 0, Committed: true, Ops: []Op{app("x", 2), rd("x", 1, 2)}},
	)
	if r := CheckListAppend(h, SER); !r.OK {
		t.Fatalf("own append visible in read is fine: %s", r.Reason)
	}
	// Missing own append is an internal anomaly.
	bad := la(
		Txn{Session: 0, Committed: true, Ops: []Op{app("x", 1)}},
		Txn{Session: 0, Committed: true, Ops: []Op{app("x", 2), rd("x", 1)}},
	)
	if r := CheckListAppend(bad, SER); r.OK {
		t.Fatal("read missing own append must fail")
	}
}

func TestSERCycleViaFracturedRead(t *testing.T) {
	// T0 appends to both x and y; T1 observes the x append but reads y
	// empty: WR(x) T0->T1 plus RW(y) T1->T0, a G-single cycle that both
	// SER and SI forbid.
	h := la(
		Txn{Session: 0, Committed: true, Ops: []Op{app("x", 1), app("y", 2)}},
		Txn{Session: 1, Committed: true, Ops: []Op{rd("x", 1), rd("y")}},
	)
	r := CheckListAppend(h, SER)
	if r.OK {
		t.Fatal("fractured read cycle must violate SER")
	}
	if len(r.Cycle) == 0 {
		t.Fatalf("want cycle, got %+v", r)
	}
	if CheckListAppend(h, SI).OK {
		t.Fatal("must violate SI")
	}
}

func TestWriteSkewListAppendSIOnly(t *testing.T) {
	// Classic write skew on lists: T1 reads y empty, appends to x; T2
	// reads x empty, appends to y. SER rejects; SI admits.
	h := la(
		Txn{Session: 0, Committed: true, Ops: []Op{rd("y"), app("x", 1)}},
		Txn{Session: 1, Committed: true, Ops: []Op{rd("x"), app("y", 2)}},
		Txn{Session: 2, Committed: true, Ops: []Op{rd("x", 1), rd("y", 2)}},
	)
	if r := CheckListAppend(h, SER); r.OK {
		t.Fatal("write skew must violate SER")
	}
	if r := CheckListAppend(h, SI); !r.OK {
		t.Fatalf("write skew must satisfy SI: %s", r.Reason)
	}
}

func TestCheckRWRegisterOnFixtures(t *testing.T) {
	// Elle's register mode agrees with MTC on MT histories (everything is
	// RMW there), including admitting WriteSkew under SI.
	for _, f := range history.Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			if got := CheckRWRegister(f.H, SER); got.OK != !f.ViolatesSER {
				t.Errorf("SER OK=%v want %v (%s)", got.OK, !f.ViolatesSER, got.Reason)
			}
			if got := CheckRWRegister(f.H, SI); got.OK != !f.ViolatesSI {
				t.Errorf("SI OK=%v want %v (%s)", got.OK, !f.ViolatesSI, got.Reason)
			}
		})
	}
}

func TestRWRegisterMissesBlindWriteAnomalies(t *testing.T) {
	// A lost update among blind writes: T1 and T2 blind-write x; a reader
	// sees only T1's value. With no reads before writes, the version
	// order is unknowable, so elle-wr must (soundly) pass - this is the
	// structural blind spot Figure 13 shows.
	b := history.NewBuilder("x")
	b.Txn(0, history.W("x", 1))
	b.Txn(1, history.W("x", 2))
	b.Txn(2, history.R("x", 1))
	h := b.Build()
	if r := CheckRWRegister(h, SER); !r.OK {
		t.Fatalf("blind-write ambiguity should not be flagged: %s", r.Reason)
	}
}

func TestListAppendStoreRunCleanHistories(t *testing.T) {
	s := kv.NewStore(kv.ModeSerializable)
	w := workload.GenerateListAppend(workload.ListAppendConfig{
		Sessions: 4, Txns: 50, Objects: 5, MaxTxnLen: 4, Seed: 3,
	})
	h, res := runner.RunListAppend(s, w, runner.Config{Retries: 8})
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if r := CheckListAppend(h, SER); !r.OK {
		t.Fatalf("serializable store must pass elle-append SER: %s", r.Reason)
	}
}

func TestListAppendDetectsLostUpdateFault(t *testing.T) {
	found := false
	for seed := int64(0); seed < 8 && !found; seed++ {
		s := kv.NewFaultyStore(kv.ModeSI, kv.Faults{LostUpdate: 1, Seed: seed + 1})
		w := workload.GenerateListAppend(workload.ListAppendConfig{
			Sessions: 8, Txns: 60, Objects: 2, MaxTxnLen: 4, Seed: seed,
		})
		h, _ := runner.RunListAppend(s, w, runner.Config{Retries: 4})
		if r := CheckListAppend(h, SI); !r.OK {
			found = true
		}
	}
	if !found {
		t.Fatal("elle-append never detected the lost-update fault")
	}
}

func TestPropertySIStoreListAppendSatisfiesSI(t *testing.T) {
	f := func(seed int64) bool {
		s := kv.NewStore(kv.ModeSI)
		w := workload.GenerateListAppend(workload.ListAppendConfig{
			Sessions: 4, Txns: 30, Objects: 3, MaxTxnLen: 4, Seed: seed,
		})
		h, _ := runner.RunListAppend(s, w, runner.Config{Retries: 6})
		r := CheckListAppend(h, SI)
		if !r.OK {
			t.Logf("seed %d: %s", seed, r.Reason)
		}
		return r.OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRegisterModeAgreesWithMTCOnMTHistories(t *testing.T) {
	f := func(seed int64) bool {
		s := kv.NewFaultyStore(kv.ModeSerializable, kv.Faults{WriteSkew: 0.5, Seed: seed + 1})
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 6, Txns: 40, Objects: 2, Dist: workload.Uniform, Seed: seed,
		})
		res := runner.Run(s, w, runner.Config{Retries: 4})
		if CheckRWRegister(res.H, SER).OK != core.CheckSER(res.H).OK {
			return false
		}
		return CheckRWRegister(res.H, SI).OK == core.CheckSI(res.H).OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	CheckListAppend(la(), Level("BOGUS"))
}
