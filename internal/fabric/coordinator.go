// Package fabric turns the component sharding of internal/shard into a
// coordinator/worker checking fabric: a coordinator decomposes each
// submitted history with shard.Split into key/session-disjoint
// components — the distribution plan — dispatches the components to
// registered worker processes over the v1 wire contract, and folds the
// per-component verdicts with the position-preserving shard.Merge, so a
// distributed verdict is bit-identical to single-node sharded checking.
//
// Durability and robustness are first-class:
//
//   - every job (with its full history) and every component dispatch
//     persist to an NDJSON write-ahead log, so a coordinator restart
//     resumes pending jobs where they stopped and serves completed
//     verdicts without re-running them;
//   - workers register, heartbeat, and pull work; a worker that misses
//     its heartbeats has its in-flight components re-dispatched under a
//     fresh epoch, and the epoch guard makes the verdict fold
//     at-most-once — a straggler's late result is discarded, never
//     folded twice;
//   - skewed component sizes are handled by work-stealing: components
//     are placed largest-first on the least-loaded worker queue, and an
//     idle worker whose own queue is empty steals the largest component
//     from the largest remaining queue.
//
// The coordinator is passive: it owns no background goroutine. Liveness
// sweeps run lazily on every worker interaction, so tests drive time
// deterministically through the clock hook and a server shutdown has
// nothing to join.
package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"sync"
	"time"

	"mtc/internal/api"
	"mtc/internal/checker"
	"mtc/internal/history"
	"mtc/internal/shard"
)

// Fabric job states.
const (
	JobPending = "pending"
	JobDone    = "done"
	JobFailed  = "failed"
)

// DefaultHeartbeatTimeout is how long a worker may stay silent before
// its in-flight components are re-dispatched.
const DefaultHeartbeatTimeout = 5 * time.Second

// Errors the HTTP layer maps to structured responses.
var (
	// ErrUnknownWorker names a worker id the coordinator does not know —
	// typically a lease from before a coordinator restart. The worker
	// re-registers and continues.
	ErrUnknownWorker = errors.New("fabric: unknown worker")
	// ErrUnknownJob names a job id the coordinator has never been
	// submitted.
	ErrUnknownJob = errors.New("fabric: unknown job")
	// ErrClosed reports a submission to a closed coordinator.
	ErrClosed = errors.New("fabric: coordinator is closed")
)

// Config tunes Open.
type Config struct {
	// Registry resolves engine names; nil selects checker.Default.
	Registry *checker.Registry
	// HeartbeatTimeout is the worker liveness bound (default
	// DefaultHeartbeatTimeout). Leases advertise a third of it as the
	// beat interval.
	HeartbeatTimeout time.Duration
	// Logger receives dispatch/requeue/fold logs; nil discards them.
	Logger *slog.Logger

	// now substitutes the clock in tests; nil means time.Now.
	now func() time.Time
}

// JobInfo is the externally visible state of one fabric job, used by the
// server to re-adopt recovered jobs after a restart.
type JobInfo struct {
	ID     string
	State  string // JobPending, JobDone or JobFailed
	Engine string
	Opts   checker.Options
	Txns   int
	// Report is set when State is JobDone; Err when JobFailed.
	Report *checker.Report
	Err    string
}

// task is one schedulable component of a pending job.
type task struct {
	j    *fabJob
	comp int
	size int // transactions in the component, the skew measure
}

// compState tracks one component of a job.
type compState struct {
	// epoch is the component's current dispatch epoch: bumped on every
	// dispatch and on every requeue, so exactly the latest dispatch can
	// fold its verdict.
	epoch  int
	done   bool
	report checker.Report
	worker string // worker id executing the current epoch, "" if queued
}

// fabJob is one submitted fabric job.
type fabJob struct {
	id     string
	engine string
	opts   checker.Options
	txns   int
	p      *shard.Partition
	comps  []compState
	// enc lazily caches the MTCB encoding of each component, filled on
	// the first pull by a binary-capable worker and reused verbatim by
	// every later dispatch (including requeues). Nil entries mean "not
	// encoded yet"; the slice itself is allocated on first use. Guarded
	// by the coordinator mutex like the rest of the job.
	enc [][]byte
	// remaining counts components without a folded verdict.
	remaining int
	state     string
	report    *checker.Report
	errMsg    string
	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// workerState is one registered worker.
type workerState struct {
	id       string
	num      int
	name     string
	mtcb     bool             // worker advertised the "mtcb" codec at registration
	queue    []*task          // assigned, not yet dispatched; sorted by size descending
	inflight map[*task]string // dispatched tasks -> job id (for requeue on death)
	lastSeen time.Time
}

// load is the worker's pending volume in transactions — the placement
// metric for least-loaded assignment.
func (w *workerState) load() int {
	n := 0
	for _, t := range w.queue {
		n += t.size
	}
	for t := range w.inflight {
		n += t.size
	}
	return n
}

// queued is the stealable volume (in-flight work cannot be stolen).
func (w *workerState) queued() int {
	n := 0
	for _, t := range w.queue {
		n += t.size
	}
	return n
}

// Coordinator is the fabric's scheduling and durability core. Safe for
// concurrent use; all HTTP handlers and the server's job path call into
// it.
type Coordinator struct {
	reg       *checker.Registry
	hbTimeout time.Duration
	logger    *slog.Logger
	now       func() time.Time

	mu         sync.Mutex
	wal        *wal
	jobs       map[string]*fabJob
	order      []string // submission order, for deterministic status listings
	workers    map[string]*workerState
	nextWorker int
	unassigned []*task // sorted by size descending
	closed     bool
}

// Open creates a coordinator over the WAL at path, replaying any prior
// log: completed jobs come back served from their logged verdicts, and
// pending jobs re-enqueue their unfinished components under fresh
// epochs (a worker from before the restart holds an unknown lease and a
// stale epoch, so it can neither pull nor fold).
func Open(path string, cfg Config) (*Coordinator, error) {
	reg := cfg.Registry
	if reg == nil {
		reg = checker.Default
	}
	hb := cfg.HeartbeatTimeout
	if hb <= 0 {
		hb = DefaultHeartbeatTimeout
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	now := cfg.now
	if now == nil {
		now = time.Now
	}
	c := &Coordinator{
		reg: reg, hbTimeout: hb, logger: logger, now: now,
		jobs:    make(map[string]*fabJob),
		workers: make(map[string]*workerState),
	}
	w, recs, err := openWAL(path)
	if err != nil {
		return nil, err
	}
	c.wal = w
	if err := c.replay(recs); err != nil {
		_ = w.Close()
		return nil, err
	}
	return c, nil
}

// replay rebuilds the job table from WAL records. The distribution plan
// is re-derived with shard.Split — deterministic for a given history —
// so component indices in assign/result records line up.
func (c *Coordinator) replay(recs []walRecord) error {
	for _, rec := range recs {
		j := c.jobs[rec.Job]
		switch rec.Type {
		case recJob:
			if j != nil {
				return fmt.Errorf("fabric: wal: duplicate job record %q", rec.Job)
			}
			if rec.History == nil {
				return fmt.Errorf("fabric: wal: job %q has no history", rec.Job)
			}
			opts := checker.Options{
				Level:        checker.Level(rec.Level),
				SkipPreCheck: rec.SkipPreCheck, SparseRT: rec.SparseRT,
				Parallelism: rec.Parallelism, Window: rec.Window,
			}
			c.insertJob(rec.Job, rec.Checker, rec.History, opts)
		case recAssign, recRequeue:
			if j == nil || rec.Component < 0 || rec.Component >= len(j.comps) {
				return fmt.Errorf("fabric: wal: %s for unknown job/component %q/%d", rec.Type, rec.Job, rec.Component)
			}
			if cs := &j.comps[rec.Component]; rec.Epoch > cs.epoch {
				cs.epoch = rec.Epoch
			}
		case recResult:
			if j == nil || rec.Component < 0 || rec.Component >= len(j.comps) || rec.Report == nil {
				return fmt.Errorf("fabric: wal: bad result record for %q/%d", rec.Job, rec.Component)
			}
			if cs := &j.comps[rec.Component]; !cs.done {
				cs.done = true
				cs.report = *rec.Report
				j.remaining--
			}
		case recDone:
			if j == nil || rec.Report == nil {
				return fmt.Errorf("fabric: wal: bad done record for %q", rec.Job)
			}
			c.terminate(j, JobDone, rec.Report, "")
		case recFail:
			if j == nil {
				return fmt.Errorf("fabric: wal: fail record for unknown job %q", rec.Job)
			}
			c.terminate(j, JobFailed, nil, rec.Error)
		default:
			return fmt.Errorf("fabric: wal: unknown record type %q", rec.Type)
		}
	}
	// Resume: enqueue the unfinished components of pending jobs; fold
	// jobs whose last result landed right before the crash cut the done
	// record off.
	for _, id := range c.order {
		j := c.jobs[id]
		if j.state != JobPending {
			continue
		}
		if j.remaining == 0 {
			if err := c.fold(j); err != nil {
				return err
			}
			continue
		}
		queued := 0
		for i := range j.comps {
			if !j.comps[i].done {
				c.pushUnassigned(&task{j: j, comp: i, size: len(j.p.Components[i].H.Txns)})
				queued++
			}
		}
		c.logger.Info("fabric: resumed pending job from wal", "job", j.id, "components", len(j.comps), "queued", queued)
	}
	return nil
}

// insertJob builds the in-memory job (splitting the history) and
// registers it; the caller logs the WAL record when this is a fresh
// submission rather than a replay.
func (c *Coordinator) insertJob(id, engine string, h *history.History, opts checker.Options) *fabJob {
	p := shard.Split(h)
	j := &fabJob{
		id: id, engine: engine, opts: opts, txns: len(h.Txns),
		p:     p,
		comps: make([]compState, len(p.Components)),
		state: JobPending,
		done:  make(chan struct{}),
	}
	j.remaining = len(j.comps)
	c.jobs[id] = j
	c.order = append(c.order, id)
	return j
}

// terminate moves a job to a terminal state (idempotent).
func (c *Coordinator) terminate(j *fabJob, state string, report *checker.Report, errMsg string) {
	if j.state != JobPending {
		return
	}
	j.state = state
	j.report = report
	j.errMsg = errMsg
	c.dropJobTasks(j)
	close(j.done)
}

// Submit registers a job for distributed checking: logged to the WAL,
// split into its distribution plan, and its components placed
// largest-first on the least-loaded worker queues. Submitting an id the
// coordinator already knows is a no-op — the idempotence that lets the
// server resubmit recovered jobs blindly. The engine must be a base
// engine name; a "-sharded" wrapper name is reduced to its base, since
// the coordinator itself provides the sharding.
func (c *Coordinator) Submit(id, engine string, h *history.History, opts checker.Options) error {
	if shard.IsSharded(engine) {
		engine = engine[:len(engine)-len(shard.Suffix)]
	}
	eng, err := c.reg.Lookup(engine)
	if err != nil {
		return err
	}
	if opts.Level == "" {
		opts.Level = eng.Levels()[0]
	}
	opts.Shard = 0 // the plan, not the engine, does the sharding
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if _, ok := c.jobs[id]; ok {
		return nil
	}
	if err := c.wal.append(walRecord{
		Type: recJob, Job: id, Checker: engine, Level: string(opts.Level),
		SkipPreCheck: opts.SkipPreCheck, SparseRT: opts.SparseRT,
		Parallelism: opts.Parallelism, Window: opts.Window,
		History: h,
	}); err != nil {
		return fmt.Errorf("fabric: wal append: %w", err)
	}
	j := c.insertJob(id, engine, h, opts)
	if j.remaining == 0 {
		// Init-only history: nothing to dispatch, fold the empty plan.
		return c.fold(j)
	}
	c.sweepLocked()
	// Largest-first placement on the least-loaded queue (LPT): bounds
	// the makespan under skew, and what placement gets wrong the
	// stealing in Pull corrects.
	order := make([]int, len(j.comps))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(j.p.Components[order[a]].H.Txns) > len(j.p.Components[order[b]].H.Txns)
	})
	for _, i := range order {
		t := &task{j: j, comp: i, size: len(j.p.Components[i].H.Txns)}
		if w := c.leastLoadedAlive(); w != nil {
			w.queue = insertBySize(w.queue, t)
		} else {
			c.pushUnassigned(t)
		}
	}
	c.logger.Info("fabric: job submitted", "job", id, "engine", engine, "level", string(opts.Level), "components", len(j.comps))
	return nil
}

// Wait blocks until the job is terminal or ctx fires, returning the
// folded report. The caller cancels the fabric job itself if it stops
// caring (see Cancel) — a fired ctx here does not abort the job, since
// a durable job may be waited on again after a server restart.
func (c *Coordinator) Wait(ctx context.Context, id string) (checker.Report, error) {
	c.mu.Lock()
	j := c.jobs[id]
	c.mu.Unlock()
	if j == nil {
		return checker.Report{}, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return checker.Report{}, ctx.Err()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if j.state == JobDone {
		return *j.report, nil
	}
	return checker.Report{}, errors.New(j.errMsg)
}

// Cancel fails a pending job (user cancellation or a server-side
// timeout): its queued components are dropped, in-flight results will
// be discarded, and a restart will not resume it.
func (c *Coordinator) Cancel(id, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[id]
	if j == nil || j.state != JobPending {
		return
	}
	c.failLocked(j, reason)
}

// Register admits a worker and returns its lease.
func (c *Coordinator) Register(hello api.WorkerHello) api.WorkerLease {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextWorker++
	w := &workerState{
		id: "w" + strconv.Itoa(c.nextWorker), num: c.nextWorker,
		name:     hello.Name,
		inflight: make(map[*task]string),
		lastSeen: c.now(),
	}
	for _, codec := range hello.Codecs {
		if codec == "mtcb" {
			w.mtcb = true
		}
	}
	c.workers[w.id] = w
	c.logger.Info("fabric: worker registered", "worker", w.id, "name", w.name, "mtcb", w.mtcb)
	return api.WorkerLease{ID: w.id, HeartbeatMillis: int64(c.hbTimeout / 3 / time.Millisecond)}
}

// Heartbeat refreshes a worker's lease.
func (c *Coordinator) Heartbeat(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[id]
	if w == nil {
		return fmt.Errorf("%w: %q", ErrUnknownWorker, id)
	}
	w.lastSeen = c.now()
	c.sweepLocked()
	return nil
}

// Pull claims the next component for a worker: its own queue first
// (largest first), then the unassigned pool, then — work-stealing — the
// largest component of the largest remaining queue. A nil task with nil
// error means "no work right now".
func (c *Coordinator) Pull(id string) (*api.FabricTask, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[id]
	if w == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorker, id)
	}
	w.lastSeen = c.now()
	c.sweepLocked()
	t := c.claimLocked(w)
	if t == nil {
		return nil, nil
	}
	cs := &t.j.comps[t.comp]
	cs.epoch++
	cs.worker = id
	w.inflight[t] = t.j.id
	if err := c.wal.append(walRecord{Type: recAssign, Job: t.j.id, Component: t.comp, Epoch: cs.epoch, Worker: id}); err != nil {
		return nil, fmt.Errorf("fabric: wal append: %w", err)
	}
	j := t.j
	out := &api.FabricTask{
		Job: j.id, Component: t.comp, Epoch: cs.epoch,
		Checker: j.engine, Level: string(j.opts.Level),
		SkipPreCheck: j.opts.SkipPreCheck, SparseRT: j.opts.SparseRT,
		Parallelism: j.opts.Parallelism, Window: j.opts.Window,
	}
	if w.mtcb {
		enc, err := c.encodedComponentLocked(j, t.comp)
		if err != nil {
			// Should be unreachable (WriteMTCB on a validated component);
			// fall back to the JSON payload rather than stalling the task.
			c.logger.Error("fabric: mtcb encode failed, sending json", "job", j.id, "component", t.comp, "err", err)
			out.History = j.p.Components[t.comp].H
		} else {
			out.HistoryMTCB = enc
		}
	} else {
		out.History = j.p.Components[t.comp].H
	}
	return out, nil
}

// encodedComponentLocked returns the cached MTCB encoding of one
// component, encoding it on first use. Re-dispatches (requeues, steals)
// reuse the same bytes — each component is encoded at most once per
// coordinator lifetime. Caller holds mu.
func (c *Coordinator) encodedComponentLocked(j *fabJob, comp int) ([]byte, error) {
	if j.enc == nil {
		j.enc = make([][]byte, len(j.comps))
	}
	if j.enc[comp] == nil {
		var buf bytes.Buffer
		if err := history.WriteMTCB(&buf, j.p.Components[comp].H); err != nil {
			return nil, err
		}
		j.enc[comp] = buf.Bytes()
	}
	return j.enc[comp], nil
}

// claimLocked picks the next live task for w, skipping tasks of jobs
// that went terminal while queued.
func (c *Coordinator) claimLocked(w *workerState) *task {
	pop := func(q *[]*task) *task {
		for len(*q) > 0 {
			t := (*q)[0]
			*q = (*q)[1:]
			if t.j.state == JobPending && !t.j.comps[t.comp].done {
				return t
			}
		}
		return nil
	}
	if t := pop(&w.queue); t != nil {
		return t
	}
	if t := pop(&c.unassigned); t != nil {
		return t
	}
	// Steal from the largest remaining queue (deterministic: workers in
	// registration order break ties).
	var victim *workerState
	for _, o := range c.sortedWorkers() {
		if o == w || len(o.queue) == 0 {
			continue
		}
		if victim == nil || o.queued() > victim.queued() {
			victim = o
		}
	}
	if victim != nil {
		if t := pop(&victim.queue); t != nil {
			c.logger.Info("fabric: stole work", "thief", w.id, "victim", victim.id, "job", t.j.id, "component", t.comp)
			return t
		}
	}
	return nil
}

// PushResult folds one component verdict. The fold is at-most-once: a
// result whose epoch does not match the component's current epoch — a
// straggler that was presumed dead and re-dispatched — is discarded
// with Accepted=false. An engine error fails the whole job, matching
// single-node sharded checking.
func (c *Coordinator) PushResult(workerID string, res api.FabricResult) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w == nil {
		return false, fmt.Errorf("%w: %q", ErrUnknownWorker, workerID)
	}
	w.lastSeen = c.now()
	for t, jid := range w.inflight {
		if jid == res.Job && t.comp == res.Component {
			delete(w.inflight, t)
		}
	}
	c.sweepLocked()
	j := c.jobs[res.Job]
	if j == nil || j.state != JobPending {
		return false, nil
	}
	if res.Component < 0 || res.Component >= len(j.comps) {
		return false, nil
	}
	cs := &j.comps[res.Component]
	if cs.done || res.Epoch != cs.epoch {
		return false, nil
	}
	if res.Error != "" {
		c.failLocked(j, fmt.Sprintf("component %d: %s", res.Component, res.Error))
		return true, nil
	}
	if res.Report == nil {
		return false, nil
	}
	cs.done = true
	cs.worker = ""
	cs.report = *res.Report
	if err := c.wal.append(walRecord{Type: recResult, Job: j.id, Component: res.Component, Epoch: res.Epoch, Worker: workerID, Report: res.Report}); err != nil {
		return false, fmt.Errorf("fabric: wal append: %w", err)
	}
	j.remaining--
	if j.remaining == 0 {
		if err := c.fold(j); err != nil {
			return false, err
		}
	}
	return true, nil
}

// fold merges the per-component verdicts into the job's report and
// makes it durable. Caller holds mu.
func (c *Coordinator) fold(j *fabJob) error {
	reports := make([]checker.Report, len(j.comps))
	for i := range j.comps {
		reports[i] = j.comps[i].report
	}
	merged := shard.Merge(j.p, j.engine, j.opts.Level, reports)
	if err := c.wal.append(walRecord{Type: recDone, Job: j.id, Report: &merged}); err != nil {
		return fmt.Errorf("fabric: wal append: %w", err)
	}
	c.terminate(j, JobDone, &merged, "")
	c.logger.Info("fabric: job folded", "job", j.id, "ok", merged.OK, "components", len(j.comps))
	return nil
}

// failLocked makes a job failure durable and terminal. Caller holds mu.
func (c *Coordinator) failLocked(j *fabJob, msg string) {
	if err := c.wal.append(walRecord{Type: recFail, Job: j.id, Error: msg}); err != nil {
		c.logger.Error("fabric: wal append failed on job failure", "job", j.id, "err", err)
	}
	c.terminate(j, JobFailed, nil, msg)
	c.logger.Info("fabric: job failed", "job", j.id, "err", msg)
}

// sweepLocked requeues the work of workers that missed their heartbeat
// window: queued tasks return to the unassigned pool, and in-flight
// components are re-dispatched under a bumped epoch, so the presumed-
// dead worker's late result can no longer fold. Caller holds mu.
func (c *Coordinator) sweepLocked() {
	now := c.now()
	for _, w := range c.sortedWorkers() {
		if now.Sub(w.lastSeen) <= c.hbTimeout {
			continue
		}
		if len(w.queue) == 0 && len(w.inflight) == 0 {
			continue
		}
		c.logger.Info("fabric: worker missed heartbeats, requeueing its work",
			"worker", w.id, "queued", len(w.queue), "in_flight", len(w.inflight))
		for _, t := range w.queue {
			if t.j.state == JobPending && !t.j.comps[t.comp].done {
				c.pushUnassigned(t)
			}
		}
		w.queue = nil
		// Deterministic requeue order for the in-flight set.
		tasks := make([]*task, 0, len(w.inflight))
		for t := range w.inflight {
			tasks = append(tasks, t)
		}
		sort.Slice(tasks, func(a, b int) bool {
			if tasks[a].j.id != tasks[b].j.id {
				return tasks[a].j.id < tasks[b].j.id
			}
			return tasks[a].comp < tasks[b].comp
		})
		for _, t := range tasks {
			cs := &t.j.comps[t.comp]
			if t.j.state != JobPending || cs.done {
				continue
			}
			cs.epoch++
			cs.worker = ""
			if err := c.wal.append(walRecord{Type: recRequeue, Job: t.j.id, Component: t.comp, Epoch: cs.epoch, Worker: w.id}); err != nil {
				c.logger.Error("fabric: wal append failed on requeue", "job", t.j.id, "err", err)
			}
			c.pushUnassigned(t)
		}
		w.inflight = make(map[*task]string)
	}
}

// dropJobTasks removes a terminal job's tasks from every queue.
func (c *Coordinator) dropJobTasks(j *fabJob) {
	filter := func(q []*task) []*task {
		out := q[:0]
		for _, t := range q {
			if t.j != j {
				out = append(out, t)
			}
		}
		return out
	}
	c.unassigned = filter(c.unassigned)
	for _, w := range c.workers {
		w.queue = filter(w.queue)
		for t := range w.inflight {
			if t.j == j {
				delete(w.inflight, t)
			}
		}
	}
}

// leastLoadedAlive returns the live worker with the smallest pending
// volume, or nil when no worker is live.
func (c *Coordinator) leastLoadedAlive() *workerState {
	now := c.now()
	var best *workerState
	for _, w := range c.sortedWorkers() {
		if now.Sub(w.lastSeen) > c.hbTimeout {
			continue
		}
		if best == nil || w.load() < best.load() {
			best = w
		}
	}
	return best
}

// sortedWorkers lists workers in registration order — the map iteration
// fence that keeps placement and stealing deterministic.
func (c *Coordinator) sortedWorkers() []*workerState {
	ws := make([]*workerState, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	sort.Slice(ws, func(a, b int) bool { return ws[a].num < ws[b].num })
	return ws
}

// pushUnassigned inserts t into the unassigned pool, kept sorted by
// size descending so every claim takes the largest remaining component.
func (c *Coordinator) pushUnassigned(t *task) {
	at := sort.Search(len(c.unassigned), func(i int) bool { return c.unassigned[i].size < t.size })
	c.unassigned = append(c.unassigned, nil)
	copy(c.unassigned[at+1:], c.unassigned[at:])
	c.unassigned[at] = t
}

// insertBySize inserts t into a worker queue ordered by size descending.
func insertBySize(q []*task, t *task) []*task {
	at := sort.Search(len(q), func(i int) bool { return q[i].size < t.size })
	q = append(q, nil)
	copy(q[at+1:], q[at:])
	q[at] = t
	return q
}

// Jobs lists every known job in submission order — the server's
// re-adoption source after a restart.
func (c *Coordinator) Jobs() []JobInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]JobInfo, 0, len(c.order))
	for _, id := range c.order {
		j := c.jobs[id]
		out = append(out, JobInfo{
			ID: j.id, State: j.state, Engine: j.engine, Opts: j.opts,
			Txns: j.txns, Report: j.report, Err: j.errMsg,
		})
	}
	return out
}

// Status snapshots workers, queues and jobs for GET /v1/fabric/status.
func (c *Coordinator) Status() api.FabricStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	st := api.FabricStatus{Workers: []api.FabricWorkerStatus{}, Jobs: []api.FabricJobStatus{}}
	for _, w := range c.sortedWorkers() {
		st.Workers = append(st.Workers, api.FabricWorkerStatus{
			ID: w.id, Name: w.name,
			Queued: len(w.queue), InFlight: len(w.inflight),
			IdleMillis: int64(now.Sub(w.lastSeen) / time.Millisecond),
		})
	}
	for _, id := range c.order {
		j := c.jobs[id]
		st.Jobs = append(st.Jobs, api.FabricJobStatus{
			ID: j.id, State: j.state, Checker: j.engine, Level: string(j.opts.Level),
			Txns: j.txns, Components: len(j.comps), Done: len(j.comps) - j.remaining,
		})
	}
	st.Unassigned = len(c.unassigned)
	return st
}

// Close closes the WAL; pending jobs stay durable and resume on the
// next Open. The coordinator rejects further submissions but keeps
// answering reads, so an HTTP shutdown can drain politely.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.wal.Close()
}

// discardHandler drops every log record (slog.DiscardHandler is Go
// 1.24+ and the CI matrix still builds 1.23).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
