package fabric

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"mtc/internal/api"
	"mtc/internal/checker"
	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/shard"
)

// fakeClock drives the coordinator's liveness sweeps deterministically:
// no test here ever sleeps to make a worker die.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// tenantHistory builds a clean multi-tenant history with exactly
// `tenants` key/session-disjoint components.
func tenantHistory(tenants, txnsPerSession int) *history.History {
	var keys []history.Key
	for t := 0; t < tenants; t++ {
		keys = append(keys, history.Key(fmt.Sprintf("t%dk", t)))
	}
	b := history.NewBuilder(keys...)
	last := make(map[history.Key]history.Value)
	val := history.Value(1)
	for i := 0; i < txnsPerSession; i++ {
		for tn := 0; tn < tenants; tn++ {
			k := history.Key(fmt.Sprintf("t%dk", tn))
			b.Txn(tn, history.R(k, last[k]), history.W(k, val))
			last[k] = val
			val++
		}
	}
	return b.Build()
}

func openTestCoord(t *testing.T, path string, clk *fakeClock) *Coordinator {
	t.Helper()
	cfg := Config{HeartbeatTimeout: 100 * time.Millisecond}
	if clk != nil {
		cfg.now = clk.Now
	}
	c, err := Open(path, cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return c
}

// runTask executes a fabric task the way a worker would — decoding a
// binary payload to a columnar index when the coordinator negotiated the
// mtcb codec — and returns the result to push.
func runTask(t *testing.T, task *api.FabricTask) api.FabricResult {
	t.Helper()
	h := task.History
	opts := checker.Options{
		Level:        checker.Level(task.Level),
		SkipPreCheck: task.SkipPreCheck, SparseRT: task.SparseRT,
		Parallelism: task.Parallelism, Window: task.Window,
	}
	if h == nil {
		ix, err := history.ReadMTCBIndexed(bytes.NewReader(task.HistoryMTCB))
		if err != nil {
			t.Fatalf("decoding mtcb payload for %s/%d: %v", task.Job, task.Component, err)
		}
		h = ix.History()
		opts.Index = ix
	}
	rep, err := checker.Default.Run(context.Background(), task.Checker, h, opts)
	if err != nil {
		t.Fatalf("engine run for %s/%d: %v", task.Job, task.Component, err)
	}
	return api.FabricResult{Job: task.Job, Component: task.Component, Epoch: task.Epoch, Report: &rep}
}

// drain pulls and completes work as the named worker until the
// coordinator has none left for it.
func drain(t *testing.T, c *Coordinator, workerID string) int {
	t.Helper()
	done := 0
	for {
		task, err := c.Pull(workerID)
		if err != nil {
			t.Fatalf("pull(%s): %v", workerID, err)
		}
		if task == nil {
			return done
		}
		accepted, err := c.PushResult(workerID, runTask(t, task))
		if err != nil {
			t.Fatalf("push(%s): %v", workerID, err)
		}
		if !accepted {
			t.Fatalf("fresh result for %s/%d rejected", task.Job, task.Component)
		}
		done++
	}
}

// TestFabricDispatchFold checks the basic contract: a submitted job's
// components flow through two workers and the fold is bit-identical to
// single-node sharded checking (verdict, counts, components).
func TestFabricDispatchFold(t *testing.T) {
	c := openTestCoord(t, filepath.Join(t.TempDir(), "fabric.wal"), nil)
	defer func() {
		if err := c.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}()
	w1 := c.Register(api.WorkerHello{Name: "w1"})
	w2 := c.Register(api.WorkerHello{Name: "w2"})
	h := tenantHistory(4, 5)
	if err := c.Submit("j1", "mtc", h, checker.Options{Level: core.SI}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	n := drain(t, c, w1.ID) + drain(t, c, w2.ID)
	if n != 4 {
		t.Fatalf("completed %d components, want 4", n)
	}
	got, err := c.Wait(context.Background(), "j1")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	eng, err := checker.Lookup("mtc")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := shard.Check(context.Background(), eng, h, checker.Options{Level: core.SI, Shard: 2})
	if err != nil {
		t.Fatalf("reference shard.Check: %v", err)
	}
	if got.OK != ref.OK || got.Txns != ref.Txns || got.Edges != ref.Edges ||
		got.ShardComponents != ref.ShardComponents || got.Checker != ref.Checker || got.Level != ref.Level {
		t.Fatalf("fabric verdict diverges from single-node sharded checking:\nfabric: %+v\nlocal:  %+v", got, ref)
	}
}

// TestFabricBinaryCodecNegotiation: a worker that advertised the mtcb
// codec receives components as binary payloads (and only those — the
// JSON history is omitted), a codec-less worker keeps receiving JSON,
// both decode to the same component sub-history, and the fold over the
// mixed fleet is bit-identical to single-node sharded checking.
func TestFabricBinaryCodecNegotiation(t *testing.T) {
	c := openTestCoord(t, filepath.Join(t.TempDir(), "fabric.wal"), nil)
	defer c.Close()
	wb := c.Register(api.WorkerHello{Name: "wb", Codecs: []string{"mtcb"}})
	wj := c.Register(api.WorkerHello{Name: "wj"})
	h := tenantHistory(4, 5)
	if err := c.Submit("j1", "mtc", h, checker.Options{Level: core.SI}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	p := shard.Split(h)
	pulled := 0
	for _, w := range []struct {
		lease  api.WorkerLease
		binary bool
	}{{wb, true}, {wj, false}} {
		for {
			task, err := c.Pull(w.lease.ID)
			if err != nil {
				t.Fatalf("pull(%s): %v", w.lease.ID, err)
			}
			if task == nil {
				break
			}
			pulled++
			if w.binary {
				if task.History != nil || task.HistoryMTCB == nil {
					t.Fatalf("binary worker got history=%v mtcb=%d bytes; want mtcb only", task.History != nil, len(task.HistoryMTCB))
				}
				dec, err := history.ReadMTCB(bytes.NewReader(task.HistoryMTCB))
				if err != nil {
					t.Fatalf("decoding component %d: %v", task.Component, err)
				}
				if !reflect.DeepEqual(dec, p.Components[task.Component].H) {
					t.Fatalf("component %d: binary payload decodes to a different sub-history", task.Component)
				}
			} else {
				if task.History == nil || task.HistoryMTCB != nil {
					t.Fatalf("json worker got history=%v mtcb=%d bytes; want history only", task.History != nil, len(task.HistoryMTCB))
				}
			}
			if accepted, err := c.PushResult(w.lease.ID, runTask(t, task)); err != nil || !accepted {
				t.Fatalf("push: accepted=%v err=%v", accepted, err)
			}
		}
	}
	if pulled != len(p.Components) {
		t.Fatalf("pulled %d components, want %d", pulled, len(p.Components))
	}
	got, err := c.Wait(context.Background(), "j1")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	eng, err := checker.Lookup("mtc")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := shard.Check(context.Background(), eng, h, checker.Options{Level: core.SI, Shard: 2})
	if err != nil {
		t.Fatalf("reference shard.Check: %v", err)
	}
	if got.OK != ref.OK || got.Txns != ref.Txns || got.Edges != ref.Edges || got.ShardComponents != ref.ShardComponents {
		t.Fatalf("mixed-codec fold diverges:\nfabric: %+v\nlocal:  %+v", got, ref)
	}
}

// TestFabricBinaryEncodingCached: the coordinator encodes each component
// once — a requeue re-serves the identical cached bytes instead of
// re-encoding.
func TestFabricBinaryEncodingCached(t *testing.T) {
	clk := newFakeClock()
	c := openTestCoord(t, filepath.Join(t.TempDir(), "fabric.wal"), clk)
	defer c.Close()
	w1 := c.Register(api.WorkerHello{Name: "w1", Codecs: []string{"mtcb"}})
	h := tenantHistory(1, 4)
	if err := c.Submit("j1", "mtc", h, checker.Options{Level: core.SI}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	task1, err := c.Pull(w1.ID)
	if err != nil || task1 == nil {
		t.Fatalf("pull: task=%v err=%v", task1, err)
	}
	// Let w1 die; the component requeues under a fresh epoch.
	clk.Advance(time.Second)
	w2 := c.Register(api.WorkerHello{Name: "w2", Codecs: []string{"mtcb"}})
	task2, err := c.Pull(w2.ID)
	if err != nil || task2 == nil {
		t.Fatalf("pull after requeue: task=%v err=%v", task2, err)
	}
	if task2.Epoch <= task1.Epoch {
		t.Fatalf("requeued epoch %d not bumped past %d", task2.Epoch, task1.Epoch)
	}
	if &task1.HistoryMTCB[0] != &task2.HistoryMTCB[0] {
		t.Fatal("re-dispatch re-encoded the component instead of serving the cached bytes")
	}
}

// TestFabricSubmitIdempotent: resubmitting a known id is a no-op — the
// property that lets the server blindly resubmit recovered jobs.
func TestFabricSubmitIdempotent(t *testing.T) {
	c := openTestCoord(t, filepath.Join(t.TempDir(), "fabric.wal"), nil)
	defer c.Close()
	h := tenantHistory(2, 3)
	for i := 0; i < 3; i++ {
		if err := c.Submit("j1", "mtc", h, checker.Options{Level: core.SER}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if jobs := c.Jobs(); len(jobs) != 1 {
		t.Fatalf("idempotent submit created %d jobs, want 1", len(jobs))
	}
}

// TestFabricWorkStealing: every component initially lands on the only
// live worker's queue; a later-registered idle worker steals from it.
func TestFabricWorkStealing(t *testing.T) {
	c := openTestCoord(t, filepath.Join(t.TempDir(), "fabric.wal"), nil)
	defer c.Close()
	w1 := c.Register(api.WorkerHello{Name: "w1"})
	if err := c.Submit("j1", "mtc", tenantHistory(4, 4), checker.Options{Level: core.SER}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	st := c.Status()
	if st.Workers[0].Queued != 4 || st.Unassigned != 0 {
		t.Fatalf("placement: %+v", st)
	}
	w2 := c.Register(api.WorkerHello{Name: "w2"})
	task, err := c.Pull(w2.ID)
	if err != nil || task == nil {
		t.Fatalf("idle worker stole nothing: task=%v err=%v", task, err)
	}
	st = c.Status()
	if st.Workers[0].Queued != 3 || st.Workers[1].InFlight != 1 {
		t.Fatalf("after steal: %+v", st)
	}
	// Finish the job cleanly across both workers.
	if _, err := c.PushResult(w2.ID, runTask(t, task)); err != nil {
		t.Fatal(err)
	}
	drain(t, c, w1.ID)
	if _, err := c.Wait(context.Background(), "j1"); err != nil {
		t.Fatalf("wait: %v", err)
	}
}

// TestFabricWorkerDeathEpochGuard is the at-most-once fold contract: a
// worker that misses its heartbeat window has its in-flight component
// re-dispatched under a fresh epoch, and the straggler's late result is
// discarded rather than folded twice.
func TestFabricWorkerDeathEpochGuard(t *testing.T) {
	clk := newFakeClock()
	c := openTestCoord(t, filepath.Join(t.TempDir(), "fabric.wal"), clk)
	defer c.Close()
	w1 := c.Register(api.WorkerHello{Name: "w1"})
	w2 := c.Register(api.WorkerHello{Name: "w2"})
	if err := c.Submit("j1", "mtc", tenantHistory(1, 4), checker.Options{Level: core.SER}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	task1, err := c.Pull(w1.ID)
	if err != nil || task1 == nil {
		t.Fatalf("w1 pull: task=%v err=%v", task1, err)
	}
	res1 := runTask(t, task1) // w1 computes, then stalls before pushing

	// w1 goes silent past the heartbeat window; w2's next interaction
	// sweeps it and requeues the component under a bumped epoch.
	clk.Advance(150 * time.Millisecond)
	task2, err := c.Pull(w2.ID)
	if err != nil || task2 == nil {
		t.Fatalf("w2 pull after sweep: task=%v err=%v", task2, err)
	}
	if task2.Job != task1.Job || task2.Component != task1.Component {
		t.Fatalf("w2 pulled %s/%d, want the requeued %s/%d", task2.Job, task2.Component, task1.Job, task1.Component)
	}
	if task2.Epoch <= task1.Epoch {
		t.Fatalf("re-dispatch epoch %d not beyond original %d", task2.Epoch, task1.Epoch)
	}

	// The presumed-dead worker's push must be rejected as stale.
	accepted, err := c.PushResult(w1.ID, res1)
	if err != nil {
		t.Fatalf("stale push: %v", err)
	}
	if accepted {
		t.Fatal("stale-epoch result was accepted")
	}
	if st := c.Status(); st.Jobs[0].State != JobPending {
		t.Fatalf("job terminal after stale push: %+v", st.Jobs[0])
	}

	// The current-epoch result folds.
	accepted, err = c.PushResult(w2.ID, runTask(t, task2))
	if err != nil || !accepted {
		t.Fatalf("current-epoch push: accepted=%v err=%v", accepted, err)
	}
	rep, err := c.Wait(context.Background(), "j1")
	if err != nil || !rep.OK {
		t.Fatalf("wait: %+v %v", rep, err)
	}
}

// TestFabricRestartResume is the durability tentpole: completed jobs
// come back from the WAL served without re-running, and pending jobs
// resume where they stopped with epochs past every logged dispatch.
func TestFabricRestartResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.wal")
	c1 := openTestCoord(t, path, nil)
	w := c1.Register(api.WorkerHello{Name: "w1"})
	hA, hB := tenantHistory(2, 4), tenantHistory(3, 4)
	if err := c1.Submit("jA", "mtc", hA, checker.Options{Level: core.SI}); err != nil {
		t.Fatal(err)
	}
	if n := drain(t, c1, w.ID); n != 2 {
		t.Fatalf("jA drained %d components, want 2", n)
	}
	repA, err := c1.Wait(context.Background(), "jA")
	if err != nil {
		t.Fatalf("jA wait: %v", err)
	}
	if err := c1.Submit("jB", "mtc", hB, checker.Options{Level: core.SI}); err != nil {
		t.Fatal(err)
	}
	// One component of jB is mid-flight at the "crash".
	inflight, err := c1.Pull(w.ID)
	if err != nil || inflight == nil {
		t.Fatalf("jB pull: %v", err)
	}
	if err := c1.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	c2 := openTestCoord(t, path, nil)
	defer c2.Close()
	jobs := c2.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(jobs))
	}
	byID := map[string]JobInfo{}
	for _, j := range jobs {
		byID[j.ID] = j
	}
	// jA: terminal with the folded report, served straight from the WAL.
	if got := byID["jA"]; got.State != JobDone || got.Report == nil ||
		got.Report.OK != repA.OK || got.Report.Edges != repA.Edges || got.Report.Txns != repA.Txns {
		t.Fatalf("jA not recovered terminal: %+v", byID["jA"])
	}
	if rep, err := c2.Wait(context.Background(), "jA"); err != nil || rep.Edges != repA.Edges {
		t.Fatalf("jA wait after restart: %+v %v", rep, err)
	}
	// jB: pending with all three components queued again.
	if got := byID["jB"]; got.State != JobPending {
		t.Fatalf("jB not pending after restart: %+v", got)
	}
	// The pre-crash worker's lease is gone.
	if _, err := c2.Pull(w.ID); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("stale lease pull: %v, want ErrUnknownWorker", err)
	}
	w2 := c2.Register(api.WorkerHello{Name: "w2"})
	seen := 0
	for {
		task, err := c2.Pull(w2.ID)
		if err != nil {
			t.Fatal(err)
		}
		if task == nil {
			break
		}
		if task.Job == inflight.Job && task.Component == inflight.Component && task.Epoch <= inflight.Epoch {
			t.Fatalf("resumed dispatch epoch %d not beyond pre-crash %d", task.Epoch, inflight.Epoch)
		}
		if _, err := c2.PushResult(w2.ID, runTask(t, task)); err != nil {
			t.Fatal(err)
		}
		seen++
	}
	if seen != 3 {
		t.Fatalf("jB resumed %d components, want 3", seen)
	}
	rep, err := c2.Wait(context.Background(), "jB")
	if err != nil || !rep.OK {
		t.Fatalf("jB after restart: %+v %v", rep, err)
	}
	eng, _ := checker.Lookup("mtc")
	ref, err := shard.Check(context.Background(), eng, hB, checker.Options{Level: core.SI, Shard: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != ref.OK || rep.Edges != ref.Edges || rep.Txns != ref.Txns || rep.ShardComponents != ref.ShardComponents {
		t.Fatalf("resumed verdict diverges:\nfabric: %+v\nlocal:  %+v", rep, ref)
	}
}

// TestFabricWALTornTail: a crash mid-append leaves an unterminated final
// line; reopening drops it and resumes cleanly.
func TestFabricWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.wal")
	c1 := openTestCoord(t, path, nil)
	if err := c1.Submit("j1", "mtc", tenantHistory(2, 3), checker.Options{Level: core.SER}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"result","job":"j1","compo`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := openTestCoord(t, path, nil)
	defer c2.Close()
	jobs := c2.Jobs()
	if len(jobs) != 1 || jobs[0].State != JobPending {
		t.Fatalf("recovery over torn tail: %+v", jobs)
	}
	// And the log is append-clean again: complete the job and reopen once
	// more.
	w := c2.Register(api.WorkerHello{})
	drain(t, c2, w.ID)
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3 := openTestCoord(t, path, nil)
	defer c3.Close()
	if jobs := c3.Jobs(); len(jobs) != 1 || jobs[0].State != JobDone {
		t.Fatalf("post-torn-tail completion not durable: %+v", jobs)
	}
}

// TestFabricWALCorruptMiddle: a malformed *terminated* line is
// corruption, not a torn append — Open must refuse to resume over it.
func TestFabricWALCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.wal")
	if err := os.WriteFile(path, []byte(walHeader+"\n{not json}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Config{}); err == nil {
		t.Fatal("Open resumed over a corrupt record")
	}
}

// TestFabricCancelDurable: a cancelled job is terminal, its tasks are
// gone from every queue, and the cancellation survives a restart.
func TestFabricCancelDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.wal")
	c1 := openTestCoord(t, path, nil)
	w := c1.Register(api.WorkerHello{})
	if err := c1.Submit("j1", "mtc", tenantHistory(3, 3), checker.Options{Level: core.SER}); err != nil {
		t.Fatal(err)
	}
	task, err := c1.Pull(w.ID)
	if err != nil || task == nil {
		t.Fatal(err)
	}
	c1.Cancel("j1", "user gave up")
	if _, err := c1.Wait(context.Background(), "j1"); err == nil {
		t.Fatal("wait on cancelled job succeeded")
	}
	// The in-flight result is discarded, and no work remains.
	if accepted, _ := c1.PushResult(w.ID, runTask(t, task)); accepted {
		t.Fatal("result folded into a cancelled job")
	}
	if task, _ := c1.Pull(w.ID); task != nil {
		t.Fatalf("cancelled job still dispatches: %+v", task)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := openTestCoord(t, path, nil)
	defer c2.Close()
	if jobs := c2.Jobs(); len(jobs) != 1 || jobs[0].State != JobFailed {
		t.Fatalf("cancellation not durable: %+v", jobs)
	}
}

// TestFabricEngineErrorFailsJob: a worker-side engine error fails the
// whole job, matching single-node sharded checking.
func TestFabricEngineErrorFailsJob(t *testing.T) {
	c := openTestCoord(t, filepath.Join(t.TempDir(), "fabric.wal"), nil)
	defer c.Close()
	w := c.Register(api.WorkerHello{})
	if err := c.Submit("j1", "mtc", tenantHistory(2, 3), checker.Options{Level: core.SER}); err != nil {
		t.Fatal(err)
	}
	task, err := c.Pull(w.ID)
	if err != nil || task == nil {
		t.Fatal(err)
	}
	accepted, err := c.PushResult(w.ID, api.FabricResult{
		Job: task.Job, Component: task.Component, Epoch: task.Epoch,
		Error: "engine exploded",
	})
	if err != nil || !accepted {
		t.Fatalf("error push: accepted=%v err=%v", accepted, err)
	}
	if _, err := c.Wait(context.Background(), "j1"); err == nil {
		t.Fatal("job with a failed component reported success")
	}
	if jobs := c.Jobs(); jobs[0].State != JobFailed {
		t.Fatalf("job state %q, want failed", jobs[0].State)
	}
}

// TestFabricShardedNameReduces: submitting under a "-sharded" wrapper
// name runs the base engine — the coordinator itself is the sharding.
func TestFabricShardedNameReduces(t *testing.T) {
	c := openTestCoord(t, filepath.Join(t.TempDir(), "fabric.wal"), nil)
	defer c.Close()
	w := c.Register(api.WorkerHello{})
	if err := c.Submit("j1", "mtc-sharded", tenantHistory(2, 3), checker.Options{Level: core.SER}); err != nil {
		t.Fatal(err)
	}
	task, err := c.Pull(w.ID)
	if err != nil || task == nil {
		t.Fatal(err)
	}
	if task.Checker != "mtc" {
		t.Fatalf("task engine %q, want the base engine mtc", task.Checker)
	}
}
