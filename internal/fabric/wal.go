package fabric

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mtc/internal/checker"
	"mtc/internal/history"
)

// The write-ahead log is an NDJSON file in the PR 6 streaming-codec
// discipline: a self-identifying header line, one record per line, and
// the trailing '\n' of every record doubling as its integrity check. A
// torn final line — the signature of a crash mid-append — is discarded
// on replay rather than treated as corruption; a malformed line earlier
// in the file is an error, because records before a valid record cannot
// have been torn by the crash that ended the file.
//
// Record types:
//
//	job     a submitted job: id, engine, options and the full history
//	assign  a component dispatched to a worker under a fresh epoch
//	requeue a component re-enqueued (worker death) under a fresh epoch
//	result  an accepted component verdict at its dispatch epoch
//	done    the folded whole-job verdict (replay serves it, never re-runs)
//	fail    a terminal job failure (engine error or cancellation)
//
// Epochs only grow within and across records, so replay restores each
// component's current epoch as the maximum it has seen — a straggler
// from before the restart can never fold into a resumed job.
const walHeader = `{"format":"mtc-fabric-wal","version":1}`

// Record types.
const (
	recJob     = "job"
	recAssign  = "assign"
	recRequeue = "requeue"
	recResult  = "result"
	recDone    = "done"
	recFail    = "fail"
)

// walRecord is one WAL line. Fields are a union over the record types;
// Component and Epoch carry no omitempty because component 0 at epoch 0
// must round-trip.
type walRecord struct {
	Type string `json:"type"`
	Job  string `json:"job"`

	// recJob payload.
	Checker      string           `json:"checker,omitempty"`
	Level        string           `json:"level,omitempty"`
	SkipPreCheck bool             `json:"skip_precheck,omitempty"`
	SparseRT     bool             `json:"sparse_rt,omitempty"`
	Parallelism  int              `json:"parallelism,omitempty"`
	Window       int              `json:"window,omitempty"`
	History      *history.History `json:"history,omitempty"`

	// recAssign / recRequeue / recResult payload.
	Component int    `json:"component"`
	Epoch     int    `json:"epoch"`
	Worker    string `json:"worker,omitempty"`

	// recResult / recDone payload; Error for recFail.
	Report *checker.Report `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// wal appends records durably to an NDJSON log. Safe for concurrent use.
type wal struct {
	f  *os.File
	bw *bufio.Writer
}

// openWAL opens (creating if absent) the log at path, replays every
// intact record, and positions the file for appending. A torn final
// line is dropped and the file truncated back to the last intact
// record, so the next append starts on a clean boundary.
func openWAL(path string) (*wal, []walRecord, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	recs, intact, err := replayWAL(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	if err := f.Truncate(intact); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(intact, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	w := &wal{f: f, bw: bufio.NewWriter(f)}
	if intact == 0 {
		if err := w.writeLine([]byte(walHeader)); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
	}
	return w, recs, nil
}

// replayWAL parses the log, returning the intact records and the byte
// offset just past the last intact line. An empty file is a fresh log.
func replayWAL(f *os.File) ([]walRecord, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	br := bufio.NewReader(f)
	var (
		recs   []walRecord
		intact int64
		lineNo int
	)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// Data without a terminator is a torn append: drop it.
			return recs, intact, nil
		}
		if err != nil {
			return nil, 0, err
		}
		lineNo++
		n := int64(len(line))
		line = bytes.TrimRight(line, "\r\n")
		if lineNo == 1 {
			var hdr struct {
				Format  string `json:"format"`
				Version int    `json:"version"`
			}
			if err := json.Unmarshal(line, &hdr); err != nil || hdr.Format != "mtc-fabric-wal" {
				return nil, 0, fmt.Errorf("fabric: wal: not an mtc-fabric-wal file")
			}
			if hdr.Version != 1 {
				return nil, 0, fmt.Errorf("fabric: wal: unsupported version %d", hdr.Version)
			}
			intact += n
			continue
		}
		if len(bytes.TrimSpace(line)) == 0 {
			intact += n
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A malformed terminated line is corruption, not a torn
			// append — refuse to resume over it.
			return nil, 0, fmt.Errorf("fabric: wal: line %d: %w", lineNo, err)
		}
		recs = append(recs, rec)
		intact += n
	}
}

// append marshals rec as one line and makes it durable before
// returning: the record is the crash-recovery source of truth, so a
// torn or buffered write must never be reported as logged.
func (w *wal) append(rec walRecord) error {
	buf, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := w.writeLine(buf); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *wal) writeLine(line []byte) error {
	if _, err := w.bw.Write(line); err != nil {
		return err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return err
	}
	return w.bw.Flush()
}

// Close flushes and closes the log file; the error matters (a failed
// final flush is a lost record).
func (w *wal) Close() error {
	if err := w.bw.Flush(); err != nil {
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}
