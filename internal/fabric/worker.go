package fabric

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"mtc/internal/api"
	"mtc/internal/checker"
	"mtc/internal/history"
)

// WorkerConfig tunes RunWorker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// Name labels the worker in coordinator logs and status output.
	Name string
	// Registry resolves the engines component tasks name; nil selects
	// checker.Default.
	Registry *checker.Registry
	// Parallelism is reported at registration (informational).
	Parallelism int
	// Logger receives the worker's progress log; nil discards it.
	Logger *slog.Logger
	// Client is the HTTP client used for every coordinator call; nil
	// selects a client with a 30s timeout.
	Client *http.Client
	// PollInterval is the idle wait between empty pulls (default 200ms,
	// lowered to half the lease's heartbeat interval if that is shorter —
	// an idle worker's pulls double as its heartbeats).
	PollInterval time.Duration
}

// GzipThreshold is the body size, in bytes, at which the fabric's HTTP
// sides start compressing: the worker gzips result bodies at least this
// large (Content-Encoding: gzip), and the coordinator's pull handler
// gzips task responses at least this large when the worker advertised
// Accept-Encoding: gzip. Small control messages (heartbeats, pulls with
// no work, acks) stay uncompressed — gzip overhead would exceed the
// saving.
const GzipThreshold = 4 << 10

// errLeaseLost marks a 404 from a fabric endpoint: the coordinator does
// not know our worker id — typically because it restarted and all
// leases died with its in-memory worker table. The loop re-registers
// and continues; any in-flight work is abandoned (the restart or the
// liveness sweep already requeued it under a fresh epoch, so our result
// could never fold anyway).
var errLeaseLost = errors.New("fabric: worker lease lost")

// RunWorker runs the worker loop against the coordinator until ctx is
// done: register (with retry), then pull component tasks, check them
// with the named base engine, and push the verdicts. While a check
// runs, a heartbeat ticker keeps the lease alive — that is the only
// time explicit beats are needed, since pulls themselves refresh the
// lease. The check executes on a goroutine joined by channel receive on
// every path, so RunWorker never leaks.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	w := &workerClient{
		base: cfg.Coordinator, name: cfg.Name,
		reg: cfg.Registry, par: cfg.Parallelism,
		logger: cfg.Logger, hc: cfg.Client,
		poll: cfg.PollInterval,
	}
	if w.reg == nil {
		w.reg = checker.Default
	}
	if w.logger == nil {
		w.logger = slog.New(discardHandler{})
	}
	if w.hc == nil {
		w.hc = &http.Client{Timeout: 30 * time.Second}
	}
	if w.poll <= 0 {
		w.poll = 200 * time.Millisecond
	}
	return w.run(ctx)
}

// workerClient is the worker side of the fabric wire contract.
type workerClient struct {
	base   string
	name   string
	reg    *checker.Registry
	par    int
	logger *slog.Logger
	hc     *http.Client
	poll   time.Duration

	lease api.WorkerLease
}

func (w *workerClient) run(ctx context.Context) error {
	for {
		if err := w.register(ctx); err != nil {
			return err
		}
		err := w.serve(ctx)
		if err == nil {
			return nil // ctx done, clean exit
		}
		if errors.Is(err, errLeaseLost) {
			w.logger.Info("fabric worker: lease lost, re-registering", "lease", w.lease.ID)
			continue
		}
		return err
	}
}

// register announces the worker, retrying with backoff until the
// coordinator answers (it may not be up yet) or ctx is done.
func (w *workerClient) register(ctx context.Context) error {
	backoff := 250 * time.Millisecond
	for {
		var lease api.WorkerLease
		hello := api.WorkerHello{Name: w.name, Parallelism: w.par, Codecs: []string{"mtcb"}}
		status, err := w.post(ctx, "/v1/fabric/workers", hello, &lease)
		if err == nil && status == http.StatusCreated && lease.ID != "" {
			w.lease = lease
			w.logger.Info("fabric worker: registered", "lease", lease.ID, "heartbeat_ms", lease.HeartbeatMillis)
			return nil
		}
		if err == nil {
			err = fmt.Errorf("fabric worker: registration answered status %d", status)
		}
		w.logger.Info("fabric worker: registration failed, retrying", "err", err)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// serve pulls and executes tasks under the current lease. Returns nil
// when ctx is done, errLeaseLost when the lease must be re-acquired.
func (w *workerClient) serve(ctx context.Context) error {
	hbEvery := time.Duration(w.lease.HeartbeatMillis) * time.Millisecond
	if hbEvery <= 0 {
		hbEvery = time.Second
	}
	idle := w.poll
	if half := hbEvery / 2; half < idle {
		idle = half
	}
	for {
		if ctx.Err() != nil {
			return nil
		}
		task, err := w.pull(ctx)
		if err != nil {
			if errors.Is(err, errLeaseLost) || ctx.Err() != nil {
				return err
			}
			w.logger.Info("fabric worker: pull failed", "err", err)
			task = nil
		}
		if task == nil {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(idle):
			}
			continue
		}
		if err := w.execute(ctx, task, hbEvery); err != nil {
			return err
		}
	}
}

// execute checks one component and pushes its verdict, heartbeating
// while the engine runs. A binary payload (HistoryMTCB) is decoded
// straight to a columnar index; the index rides along in the checker
// options so the MTC engine skips its own intern-and-build pass.
func (w *workerClient) execute(ctx context.Context, task *api.FabricTask, hbEvery time.Duration) error {
	opts := checker.Options{
		Level:        checker.Level(task.Level),
		SkipPreCheck: task.SkipPreCheck, SparseRT: task.SparseRT,
		Parallelism: task.Parallelism, Window: task.Window,
	}
	h := task.History
	if h == nil {
		ix, err := history.ReadMTCBIndexed(bytes.NewReader(task.HistoryMTCB))
		if err != nil {
			// A payload we cannot decode will never decode on retry: report
			// the failure so the coordinator fails the job instead of the
			// component ping-ponging between workers.
			w.logger.Info("fabric worker: binary payload decode failed",
				"job", task.Job, "component", task.Component, "err", err)
			return w.push(ctx, api.FabricResult{
				Job: task.Job, Component: task.Component, Epoch: task.Epoch,
				Error: fmt.Sprintf("decoding mtcb component payload: %v", err),
			})
		}
		h = ix.History()
		opts.Index = ix
	}
	w.logger.Info("fabric worker: checking component",
		"job", task.Job, "component", task.Component, "epoch", task.Epoch,
		"checker", task.Checker, "txns", len(h.Txns), "binary", task.History == nil)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		rep checker.Report
		err error
	}
	resCh := make(chan outcome, 1)
	go func() {
		rep, err := w.reg.Run(runCtx, task.Checker, h, opts)
		resCh <- outcome{rep, err}
	}()
	ticker := time.NewTicker(hbEvery)
	defer ticker.Stop()
	var res outcome
	leaseLost := false
	for done := false; !done; {
		select {
		case res = <-resCh:
			done = true
		case <-ticker.C:
			if err := w.heartbeat(ctx); errors.Is(err, errLeaseLost) {
				// The coordinator forgot us (restart): the component was
				// requeued under a fresh epoch, so finishing this check is
				// wasted work and its result would be discarded. Abandon it.
				leaseLost = true
				cancel()
			}
		case <-ctx.Done():
			cancel()
			res = <-resCh // join the check goroutine
			return nil
		}
	}
	if leaseLost {
		return errLeaseLost
	}
	out := api.FabricResult{Job: task.Job, Component: task.Component, Epoch: task.Epoch}
	if res.err != nil {
		if runCtx.Err() != nil && ctx.Err() != nil {
			return nil // shutdown raced the engine; nothing to report
		}
		out.Error = res.err.Error()
	} else {
		out.Report = &res.rep
	}
	return w.push(ctx, out)
}

// pull claims the next task; nil task with nil error means idle.
func (w *workerClient) pull(ctx context.Context) (*api.FabricTask, error) {
	var task api.FabricTask
	status, err := w.post(ctx, "/v1/fabric/workers/"+w.lease.ID+"/pull", struct{}{}, &task)
	switch {
	case err != nil:
		return nil, err
	case status == http.StatusNotFound:
		return nil, errLeaseLost
	case status == http.StatusNoContent:
		return nil, nil
	case status == http.StatusOK:
		return &task, nil
	default:
		return nil, fmt.Errorf("fabric worker: pull answered status %d", status)
	}
}

func (w *workerClient) heartbeat(ctx context.Context) error {
	status, err := w.post(ctx, "/v1/fabric/workers/"+w.lease.ID+"/heartbeat", struct{}{}, nil)
	if err != nil {
		return err
	}
	if status == http.StatusNotFound {
		return errLeaseLost
	}
	return nil
}

// push reports a component verdict, retrying transient failures: a live
// worker must never silently drop a result, or its component would hang
// in-flight until the job is cancelled. A 404 means the lease (and with
// it the in-flight assignment) died with a coordinator restart — the
// restarted coordinator has requeued the component, so the result is
// abandoned and the caller re-registers.
func (w *workerClient) push(ctx context.Context, res api.FabricResult) error {
	backoff := 250 * time.Millisecond
	for {
		var ack api.FabricAck
		status, err := w.post(ctx, "/v1/fabric/workers/"+w.lease.ID+"/results", res, &ack)
		switch {
		case err == nil && status == http.StatusNotFound:
			return errLeaseLost
		case err == nil && status == http.StatusOK:
			if !ack.Accepted {
				w.logger.Info("fabric worker: result discarded as stale",
					"job", res.Job, "component", res.Component, "epoch", res.Epoch)
			}
			return nil
		case err == nil:
			err = fmt.Errorf("fabric worker: result push answered status %d", status)
		}
		if ctx.Err() != nil {
			return nil
		}
		w.logger.Info("fabric worker: result push failed, retrying", "err", err)
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 2*time.Second {
			backoff = 2 * time.Second
		}
	}
}

// post sends one JSON request and decodes the response body into out
// (when non-nil and the status has a body). The status code is returned
// for the caller to interpret; only transport failures are errors.
//
// Bodies at least GzipThreshold bytes (large component verdicts) travel
// compressed with Content-Encoding: gzip; the request always advertises
// Accept-Encoding: gzip and inflates a gzipped response itself — setting
// the header explicitly disables the transport's transparent
// decompression, so both directions are handled here, symmetrically.
func (w *workerClient) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	gzipped := false
	if len(body) >= GzipThreshold {
		var zb bytes.Buffer
		zw := gzip.NewWriter(&zb)
		_, werr := zw.Write(body)
		if cerr := zw.Close(); werr == nil && cerr == nil && zb.Len() < len(body) {
			body = zb.Bytes()
			gzipped = true
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept-Encoding", "gzip")
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent {
		var rbody io.Reader = resp.Body
		if resp.Header.Get("Content-Encoding") == "gzip" {
			zr, err := gzip.NewReader(resp.Body)
			if err != nil {
				return resp.StatusCode, fmt.Errorf("fabric worker: inflating %s response: %w", path, err)
			}
			defer zr.Close()
			rbody = zr
		}
		if err := json.NewDecoder(rbody).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("fabric worker: decoding %s response: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}
