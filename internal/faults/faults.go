// Package faults catalogues the production isolation bugs of Table II as
// reproducible fault-injection presets over the kv substrate. Each Bug
// names the database release the paper tested, the isolation level that
// release claimed, the anomaly the bug produces, and the kv.Faults
// configuration that reintroduces the behaviour. The bench harness and
// the bughunt example iterate this catalogue to regenerate Table II and
// Figures 12/18.
package faults

import (
	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/kv"
)

// Bug is one reproducible production bug.
type Bug struct {
	// Name identifies the database release, e.g. "mariadb-galera-10.7.3".
	Name string
	// Anomaly is the data anomaly the bug produces (Table II column 2).
	Anomaly string
	// Claimed is the isolation level the release advertised and violates.
	Claimed core.Level
	// Mode is the concurrency-control mode of the substrate standing in
	// for the release.
	Mode kv.Mode
	// Faults is the injection preset.
	Faults kv.Faults
	// LWT marks the Cassandra-style bug exercised through lightweight
	// transactions rather than general transactions.
	LWT bool
	// Report references the public bug report the paper cites.
	Report string
}

// Bugs returns the six rediscovered bugs of Table II.
func Bugs() []Bug {
	return []Bug{
		{
			Name:    "mariadb-galera-10.7.3",
			Anomaly: "LostUpdate",
			Claimed: core.SI,
			Mode:    kv.ModeSI,
			Faults:  kv.Faults{LostUpdate: 0.4},
			Report:  "github.com/codership/galera issue #609",
		},
		{
			Name:    "mongodb-4.2.6",
			Anomaly: "AbortedRead",
			Claimed: core.SI,
			Mode:    kv.ModeSI,
			Faults:  kv.Faults{DirtyAbort: 0.2},
			Report:  "jepsen.io/analyses/mongodb-4.2.6",
		},
		{
			Name:    "dgraph-1.1.1",
			Anomaly: "CausalityViolation",
			Claimed: core.SI,
			Mode:    kv.ModeSI,
			Faults:  kv.Faults{StaleSnapshot: 0.3},
			Report:  "jepsen.io/analyses/dgraph-1.1.1",
		},
		{
			Name:    "postgresql-12.3",
			Anomaly: "WriteSkew",
			Claimed: core.SER,
			Mode:    kv.ModeSerializable,
			Faults:  kv.Faults{WriteSkew: 0.5},
			Report:  "jepsen.io/analyses/postgresql-12.3",
		},
		{
			Name:    "postgresql-11.8",
			Anomaly: "LongFork",
			Claimed: core.SER,
			Mode:    kv.ModeSerializable,
			Faults:  kv.Faults{LongFork: 0.3},
			Report:  "postgresql commit 5940ffb2 / jepsen postgresql-12.3 analysis",
		},
		{
			Name:    "cassandra-2.0.1",
			Anomaly: "AbortedRead",
			Claimed: core.SSER,
			Mode:    kv.ModeSI,
			Faults:  kv.Faults{CASFailApply: 0.3},
			LWT:     true,
			Report:  "aphyr.com/posts/294-call-me-maybe-cassandra",
		},
	}
}

// BugByName returns the named bug preset, or nil.
func BugByName(name string) *Bug {
	for _, b := range Bugs() {
		if b.Name == name {
			b := b
			return &b
		}
	}
	return nil
}

// NewStore builds a fresh faulty store for the bug with the given PRNG
// seed.
func (b Bug) NewStore(seed int64) *kv.Store {
	f := b.Faults
	f.Seed = seed
	return kv.NewFaultyStore(b.Mode, f)
}

// CheckHistory verifies h against the bug's claimed level and reports
// whether the bug manifested (the claimed level is violated).
func (b Bug) CheckHistory(h *history.History) (core.Result, bool) {
	r := core.Check(h, b.Claimed)
	return r, !r.OK
}
