// Package faults catalogues the production isolation bugs of Table II as
// reproducible fault-injection presets over the kv substrate. Each Bug
// names the database release the paper tested, the isolation level that
// release claimed, the anomaly the bug produces, and the kv.Faults
// configuration that reintroduces the behaviour. The bench harness and
// the bughunt example iterate this catalogue to regenerate Table II and
// Figures 12/18.
package faults

import (
	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/kv"
)

// Bug is one reproducible production bug.
type Bug struct {
	// Name identifies the database release, e.g. "mariadb-galera-10.7.3".
	Name string
	// Anomaly is the data anomaly the bug produces (Table II column 2).
	Anomaly string
	// Claimed is the isolation level the release advertised and violates.
	Claimed core.Level
	// Mode is the concurrency-control mode of the substrate standing in
	// for the release.
	Mode kv.Mode
	// Faults is the injection preset.
	Faults kv.Faults
	// LWT marks the Cassandra-style bug exercised through lightweight
	// transactions rather than general transactions.
	LWT bool
	// Report references the public bug report the paper cites.
	Report string
}

// Bugs returns the six rediscovered bugs of Table II.
func Bugs() []Bug {
	return []Bug{
		{
			Name:    "mariadb-galera-10.7.3",
			Anomaly: "LostUpdate",
			Claimed: core.SI,
			Mode:    kv.ModeSI,
			Faults:  kv.Faults{LostUpdate: 0.4},
			Report:  "github.com/codership/galera issue #609",
		},
		{
			Name:    "mongodb-4.2.6",
			Anomaly: "AbortedRead",
			Claimed: core.SI,
			Mode:    kv.ModeSI,
			Faults:  kv.Faults{DirtyAbort: 0.2},
			Report:  "jepsen.io/analyses/mongodb-4.2.6",
		},
		{
			Name:    "dgraph-1.1.1",
			Anomaly: "CausalityViolation",
			Claimed: core.SI,
			Mode:    kv.ModeSI,
			Faults:  kv.Faults{StaleSnapshot: 0.3},
			Report:  "jepsen.io/analyses/dgraph-1.1.1",
		},
		{
			Name:    "postgresql-12.3",
			Anomaly: "WriteSkew",
			Claimed: core.SER,
			Mode:    kv.ModeSerializable,
			Faults:  kv.Faults{WriteSkew: 0.5},
			Report:  "jepsen.io/analyses/postgresql-12.3",
		},
		{
			Name:    "postgresql-11.8",
			Anomaly: "LongFork",
			Claimed: core.SER,
			Mode:    kv.ModeSerializable,
			Faults:  kv.Faults{LongFork: 0.3},
			Report:  "postgresql commit 5940ffb2 / jepsen postgresql-12.3 analysis",
		},
		{
			Name:    "cassandra-2.0.1",
			Anomaly: "AbortedRead",
			Claimed: core.SSER,
			Mode:    kv.ModeSI,
			Faults:  kv.Faults{CASFailApply: 0.3},
			LWT:     true,
			Report:  "aphyr.com/posts/294-call-me-maybe-cassandra",
		},
	}
}

// LevelBug pairs one isolation-lattice rung with the fault preset that
// breaks exactly that rung: histories generated against the preset's
// store satisfy every level strictly below Breaks and violate Breaks
// (and, by lattice monotonicity, everything above it). The differential
// suite uses this catalogue to check that the levels profiler localises
// each injected anomaly to its rung.
type LevelBug struct {
	// Breaks is the weakest lattice level the fault violates.
	Breaks core.Level
	// Anomaly names the witness the profiler should surface at Breaks.
	Anomaly string
	// Mode is the substrate's concurrency-control mode.
	Mode kv.Mode
	// Faults is the injection preset.
	Faults kv.Faults
}

// LevelBugs returns one fault preset per breakable lattice rung,
// weakest first. SSER has no entry: real-time violations need a fault
// that reorders commit timestamps, which the substrate applies
// synchronously (the RealTimeViolation fixture covers that rung).
func LevelBugs() []LevelBug {
	return []LevelBug{
		// Dirty aborts install the writes and then abort: readers observe
		// an uncommitted value, which already breaks read committed.
		{Breaks: core.RC, Anomaly: "AbortedRead", Mode: kv.ModeSI, Faults: kv.Faults{DirtyAbort: 0.25}},
		// Per-key stale reads split one transaction's view of a two-key
		// atomic update: the halves are fractured, breaking read atomicity
		// while each individual read still observes committed data.
		{Breaks: core.RA, Anomaly: "FracturedRead", Mode: kv.ModeSI, Faults: kv.Faults{LongFork: 0.3}},
		// A whole-transaction stale snapshot is internally atomic but can
		// contradict what the session already observed: causality breaks
		// while reads stay committed and atomic.
		{Breaks: core.CAUSAL, Anomaly: "CausalityViolation", Mode: kv.ModeSI, Faults: kv.Faults{StaleSnapshot: 0.3}},
		// Skipping first-committer-wins lets two updates of the same
		// version both commit: divergent version chains, the SI anomaly.
		{Breaks: core.SI, Anomaly: "LostUpdate", Mode: kv.ModeSI, Faults: kv.Faults{LostUpdate: 0.4}},
		// Skipping read-set validation admits write skew: snapshots stay
		// consistent (SI holds) but no serial order exists.
		{Breaks: core.SER, Anomaly: "WriteSkew", Mode: kv.ModeSerializable, Faults: kv.Faults{WriteSkew: 0.5}},
	}
}

// NewStore builds a fresh faulty store for the level bug with the given
// PRNG seed.
func (lb LevelBug) NewStore(seed int64) *kv.Store {
	f := lb.Faults
	f.Seed = seed
	return kv.NewFaultyStore(lb.Mode, f)
}

// BugByName returns the named bug preset, or nil.
func BugByName(name string) *Bug {
	for _, b := range Bugs() {
		if b.Name == name {
			b := b
			return &b
		}
	}
	return nil
}

// NewStore builds a fresh faulty store for the bug with the given PRNG
// seed.
func (b Bug) NewStore(seed int64) *kv.Store {
	f := b.Faults
	f.Seed = seed
	return kv.NewFaultyStore(b.Mode, f)
}

// CheckHistory verifies h against the bug's claimed level and reports
// whether the bug manifested (the claimed level is violated).
func (b Bug) CheckHistory(h *history.History) (core.Result, bool) {
	r := core.Check(h, b.Claimed)
	return r, !r.OK
}
