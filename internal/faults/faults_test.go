package faults

import (
	"context"
	"testing"

	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/levels"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

func TestCatalogueShape(t *testing.T) {
	bugs := Bugs()
	if len(bugs) != 6 {
		t.Fatalf("Table II lists 6 bugs, got %d", len(bugs))
	}
	names := map[string]bool{}
	for _, b := range bugs {
		if b.Name == "" || b.Anomaly == "" || b.Report == "" {
			t.Fatalf("incomplete bug entry: %+v", b)
		}
		if names[b.Name] {
			t.Fatalf("duplicate bug %s", b.Name)
		}
		names[b.Name] = true
	}
	if BugByName("mongodb-4.2.6") == nil || BugByName("nope") != nil {
		t.Fatal("BugByName lookup")
	}
}

// hunt runs MT workloads against the bug's store over several seeds and
// reports whether the claimed level was violated, plus the first failing
// result.
func hunt(t *testing.T, b Bug, seeds int) (core.Result, bool) {
	t.Helper()
	for seed := int64(0); seed < int64(seeds); seed++ {
		if b.LWT {
			s := b.NewStore(seed + 1)
			res := runner.RunLWT(s, runner.LWTConfig{Sessions: 6, OpsPerSession: 50, Keys: 2, Seed: seed})
			if r := core.VLLWT(res.Ops); !r.OK {
				return core.Result{Level: core.SSER, OK: false}, true
			}
			continue
		}
		s := b.NewStore(seed + 1)
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 120, Objects: 3, Dist: workload.Exponential,
			Seed: seed, ReadOnlyFrac: 0.3,
		})
		res := runner.Run(s, w, runner.Config{Retries: 4})
		if r, bad := b.CheckHistory(res.H); bad {
			return r, true
		}
	}
	return core.Result{}, false
}

func TestEachBugManifests(t *testing.T) {
	for _, b := range Bugs() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if _, found := hunt(t, b, 8); !found {
				t.Fatalf("%s: bug never manifested over 8 seeds", b.Name)
			}
		})
	}
}

func TestLostUpdateReportsDivergence(t *testing.T) {
	b := *BugByName("mariadb-galera-10.7.3")
	r, found := hunt(t, b, 8)
	if !found {
		t.Fatal("bug not found")
	}
	if r.Divergence == nil && len(r.Cycle) == 0 {
		t.Fatalf("want divergence or cycle counterexample: %s", r.Explain())
	}
}

func TestWriteSkewStoreStillSatisfiesSI(t *testing.T) {
	// The PostgreSQL write-skew bug degrades SER to SI: the SI checker
	// must keep passing while the SER checker rejects.
	b := *BugByName("postgresql-12.3")
	for seed := int64(0); seed < 8; seed++ {
		s := b.NewStore(seed + 1)
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 8, Txns: 120, Objects: 3, Dist: workload.Exponential, Seed: seed,
		})
		res := runner.Run(s, w, runner.Config{Retries: 4})
		if r := core.CheckSI(res.H); !r.OK {
			t.Fatalf("seed %d: SI must hold on the write-skew store:\n%s", seed, r.Explain())
		}
		if r := core.CheckSER(res.H); !r.OK {
			return // SER violation found, as expected
		}
	}
	t.Fatal("SER violation never found")
}

func TestMongoDirtyAbortYieldsAbortedRead(t *testing.T) {
	b := *BugByName("mongodb-4.2.6")
	for seed := int64(0); seed < 8; seed++ {
		s := b.NewStore(seed + 1)
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 6, Txns: 100, Objects: 3, Dist: workload.Uniform, Seed: seed,
		})
		res := runner.Run(s, w, runner.Config{Retries: 4})
		r := core.CheckSI(res.H)
		if r.OK {
			continue
		}
		for _, a := range r.Anomalies {
			if a.Kind == history.AbortedRead {
				return
			}
		}
	}
	t.Fatal("AbortedRead anomaly never detected")
}

// TestLevelBugsBreakTheirRung profiles level-targeted workloads against
// each per-rung fault preset: the injected anomaly must manifest at
// exactly its lattice rung over some seed, and no seed may ever break a
// rung strictly below it (the fault stays localised).
func TestLevelBugsBreakTheirRung(t *testing.T) {
	lbs := LevelBugs()
	if len(lbs) != len(core.Lattice())-1 {
		t.Fatalf("LevelBugs covers %d rungs, want every breakable one (%d)", len(lbs), len(core.Lattice())-1)
	}
	for _, lb := range lbs {
		lb := lb
		t.Run(string(lb.Breaks), func(t *testing.T) {
			exact := false
			for seed := int64(0); seed < 12; seed++ {
				s := lb.NewStore(seed + 1)
				w := workload.GenerateLevelTargeted(lb.Breaks, workload.TargetedConfig{
					Sessions: 8, Txns: 80, Objects: 3, Seed: seed,
				})
				res := runner.Run(s, w, runner.Config{Retries: 4})
				prof, err := levels.Profile(context.Background(), res.H, levels.Options{})
				if err != nil {
					t.Fatal(err)
				}
				lowest := ""
				for _, lvl := range core.Lattice() { // weakest first
					if r := prof.Rung(lvl); !r.Res.OK {
						lowest = string(lvl)
						break
					}
				}
				if lowest != "" && core.LatticeRank(core.Level(lowest)) < core.LatticeRank(lb.Breaks) {
					t.Fatalf("seed %d: fault for %s broke %s below its rung:\n%s",
						seed, lb.Breaks, lowest, prof.Rung(core.Level(lowest)).Witness())
				}
				if lowest == string(lb.Breaks) {
					exact = true
				}
			}
			if !exact {
				t.Fatalf("fault never manifested at rung %s over 12 seeds", lb.Breaks)
			}
		})
	}
}

func TestFaultFreeControl(t *testing.T) {
	// Sanity: the same hunt on a fault-free store finds nothing.
	clean := Bug{Name: "control", Anomaly: "-", Claimed: core.SI, Mode: kv.ModeSI, Report: "-"}
	if _, found := hunt(t, clean, 4); found {
		t.Fatal("fault-free store reported a violation")
	}
}
