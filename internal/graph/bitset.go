package graph

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers packed
// 64 per word. It is the row representation of the reachability closure:
// word-level union makes "merge the successor's reachable set" a handful
// of OR instructions per 64 nodes instead of a per-node loop.
//
// The zero value is an empty set of capacity 0; size with NewBitset.
// Methods never allocate, so rows can be reused across queries.
type Bitset []uint64

// bitsetWords returns the number of words needed for n bits.
func bitsetWords(n int) int { return (n + 63) / 64 }

// NewBitset returns an empty bitset with capacity for bits 0..n-1.
func NewBitset(n int) Bitset { return make(Bitset, bitsetWords(n)) }

// Set adds i to the set. i must be within capacity.
func (b Bitset) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Test reports whether i is in the set. i must be within capacity.
func (b Bitset) Test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// UnionWith ORs o into b word by word. The two must have equal capacity.
func (b Bitset) UnionWith(o Bitset) {
	for k, w := range o {
		b[k] |= w
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear removes every bit, keeping the capacity.
func (b Bitset) Clear() {
	for k := range b {
		b[k] = 0
	}
}

// ForEach calls fn for every set bit in ascending order.
func (b Bitset) ForEach(fn func(i int)) {
	for k, w := range b {
		for w != 0 {
			fn(k<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
