package graph

import "context"

// Closure is the cached all-pairs reachability relation of a DAG: one
// Bitset row per node, row[v] holding every node reachable from v
// (reflexively). Rows are computed once and shared; Reach answers in O(1)
// and Row exposes the raw bitset for word-level set algebra. The table
// costs n²/64 words — for graphs where only a few rows are ever queried,
// prefer ReachPool.
type Closure struct {
	n    int
	rows []Bitset
}

// Len returns the node count.
func (c *Closure) Len() int { return c.n }

// Reach reports whether v is reachable from u (Reach(u, u) is true).
func (c *Closure) Reach(u, v int) bool { return c.rows[u].Test(v) }

// Row returns u's reachability row. The caller must not modify it.
func (c *Closure) Row(u int) Bitset { return c.rows[u] }

// NewClosure computes the transitive closure of the adjacency out over
// nodes 0..n-1 with par workers (par <= 0 means GOMAXPROCS). The second
// result is false when the graph is cyclic — no closure exists then. The
// computation runs in reverse topological order, so each row is the
// word-level union of its successors' finished rows; nodes of equal
// depth have no path between them and are filled in parallel. ctx is
// polled between batches, so a deadline stops the O(n·m/64) work.
func NewClosure(ctx context.Context, n int, out [][]int, par int) (*Closure, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	order, ok := kahnOrder(n, out)
	if !ok {
		return nil, false, nil
	}
	// depth[v] is the longest path from v over out edges: all rows of one
	// depth depend only on strictly smaller depths, so each depth is one
	// parallel batch. Iterating the topological order backwards visits
	// every successor before its predecessors.
	depth := make([]int, n)
	maxDepth := 0
	for i := n - 1; i >= 0; i-- {
		if i&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
		}
		v := order[i]
		d := 0
		for _, w := range out[v] {
			if depth[w] >= d {
				d = depth[w] + 1
			}
		}
		depth[v] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	buckets := make([][]int, maxDepth+1)
	for v := 0; v < n; v++ {
		buckets[depth[v]] = append(buckets[depth[v]], v)
	}
	c := &Closure{n: n, rows: make([]Bitset, n)}
	for _, bucket := range buckets {
		b := bucket
		err := ParallelDo(ctx, par, len(b), func(i int) {
			v := b[i]
			row := NewBitset(n)
			row.Set(v)
			for _, w := range out[v] {
				row.UnionWith(c.rows[w])
			}
			c.rows[v] = row
		})
		if err != nil {
			return nil, true, err
		}
	}
	return c, true, nil
}

// kahnOrder returns a topological order of the adjacency, or ok=false on
// a cycle.
func kahnOrder(n int, out [][]int) ([]int, bool) {
	indeg := make([]int, n)
	for _, ws := range out {
		for _, w := range ws {
			indeg[w]++
		}
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, w := range out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	return order, len(order) == n
}

// AcyclicAdj reports whether the adjacency has no directed cycle; the
// O(n+m) check shared by callers that answer reachability sparsely (and
// so never build the full closure that would have detected the cycle).
func AcyclicAdj(n int, out [][]int) bool {
	_, ok := kahnOrder(n, out)
	return ok
}
