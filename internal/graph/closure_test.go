package graph

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

func TestBitsetOps(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		if b.Test(i) {
			t.Fatalf("bit %d set in empty bitset", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	o := NewBitset(130)
	o.Set(1)
	o.Set(128)
	b.UnionWith(o)
	for _, i := range []int{0, 1, 63, 64, 127, 128, 129} {
		if !b.Test(i) {
			t.Fatalf("bit %d missing after union", i)
		}
	}
	b.Clear()
	if b.Count() != 0 {
		t.Fatal("Clear left bits set")
	}
}

// randomDAG returns adjacency of a random DAG (edges only i -> j, i < j).
func randomDAGAdj(rng *rand.Rand, n int, p float64) [][]int {
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				out[i] = append(out[i], j)
			}
		}
	}
	return out
}

// TestClosureMatchesBFS cross-checks the level-parallel closure against
// plain per-source BFS (graph.Reachable) on random DAGs, at several
// parallelism levels.
func TestClosureMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(120)
		out := randomDAGAdj(rng, n, 0.08)
		g := New(n)
		for u, ws := range out {
			for _, w := range ws {
				g.AddEdge(Edge{From: u, To: w, Kind: AUX})
			}
		}
		for _, par := range []int{1, 2, 4} {
			c, ok, err := NewClosure(context.Background(), n, out, par)
			if err != nil || !ok {
				t.Fatalf("trial %d par %d: closure failed: ok=%v err=%v", trial, par, ok, err)
			}
			var buf []bool
			for u := 0; u < n; u++ {
				buf = g.ReachableInto(buf, u)
				for v := 0; v < n; v++ {
					if c.Reach(u, v) != buf[v] {
						t.Fatalf("trial %d par %d: reach(%d,%d) = %v, BFS says %v",
							trial, par, u, v, c.Reach(u, v), buf[v])
					}
				}
			}
		}
	}
}

func TestClosureDetectsCyclic(t *testing.T) {
	out := [][]int{{1}, {2}, {0}}
	if _, ok, err := NewClosure(context.Background(), 3, out, 2); ok || err != nil {
		t.Fatalf("cyclic graph: ok=%v err=%v, want ok=false", ok, err)
	}
	if AcyclicAdj(3, out) {
		t.Fatal("AcyclicAdj missed the cycle")
	}
	if !AcyclicAdj(3, [][]int{{1}, {2}, nil}) {
		t.Fatal("AcyclicAdj rejected a chain")
	}
}

func TestClosureHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(1))
	out := randomDAGAdj(rng, 200, 0.05)
	if _, _, err := NewClosure(ctx, 200, out, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestReachPoolRows(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 90
	out := randomDAGAdj(rng, n, 0.07)
	g := New(n)
	for u, ws := range out {
		for _, w := range ws {
			g.AddEdge(Edge{From: u, To: w, Kind: AUX})
		}
	}
	sources := []int{0, 5, 17, 17, 89}
	for _, par := range []int{1, 3} {
		rows, err := NewReachPool(n, out, par).Rows(context.Background(), sources)
		if err != nil {
			t.Fatal(err)
		}
		for i, src := range sources {
			want := g.Reachable(src)
			for v := 0; v < n; v++ {
				if rows[i].Test(v) != want[v] {
					t.Fatalf("par %d: row[%d] (src %d) disagrees with BFS at %d", par, i, src, v)
				}
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewReachPool(n, out, 2).Rows(ctx, sources); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestParallelDoCoversAllIndices(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		n := 10_000
		hits := make([]int32, n)
		err := ParallelDo(context.Background(), par, n, func(i int) { hits[i]++ })
		if err != nil {
			t.Fatal(err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("par %d: index %d visited %d times", par, i, h)
			}
		}
	}
}

func TestReachableIntoReusesBuffer(t *testing.T) {
	g := New(4)
	g.AddEdge(Edge{From: 0, To: 1, Kind: AUX})
	g.AddEdge(Edge{From: 1, To: 2, Kind: AUX})
	buf := make([]bool, 4)
	buf[3] = true // stale content must be cleared
	got := g.ReachableInto(buf, 0)
	if &got[0] != &buf[0] {
		t.Fatal("ReachableInto did not reuse the buffer")
	}
	want := []bool{true, true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reach = %v, want %v", got, want)
		}
	}
	// Undersized buffer: a fresh slice is allocated.
	small := make([]bool, 1)
	got = g.ReachableInto(small, 2)
	if len(got) != 4 || !got[2] || got[0] {
		t.Fatalf("fresh-slice path wrong: %v", got)
	}
}

// TestAddEdgesFromParallel shards edge insertion by source node under the
// race detector and checks the count and per-node contents.
func TestAddEdgesFromParallel(t *testing.T) {
	n := 64
	g := New(n)
	err := ParallelDo(context.Background(), 8, n, func(u int) {
		var batch []Edge
		for v := 0; v < n; v++ {
			if v != u {
				batch = append(batch, Edge{From: u, To: v, Kind: RT})
			}
		}
		g.AddEdgesFrom(u, batch)
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != n*(n-1) {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), n*(n-1))
	}
	for u := 0; u < n; u++ {
		if len(g.Out(u)) != n-1 {
			t.Fatalf("node %d has %d out-edges", u, len(g.Out(u)))
		}
	}
}
