// Package graph provides a compact directed multigraph with typed edges,
// cycle detection, strongly connected components, topological sorting, and
// reachability. It is the shared substrate for every isolation checker in
// this repository: nodes are transaction indices and edges carry the
// dependency kind (SO, RT, WR, WW, RW, ...) plus the object they concern,
// so that detected cycles can be reported back as human-readable
// counterexamples.
package graph

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// EdgeKind identifies the dependency relation an edge belongs to.
type EdgeKind uint8

// Edge kinds, following the terminology of Adya-style dependency graphs.
const (
	SO  EdgeKind = iota // session order
	RT                  // real-time order
	WR                  // write-read (read-from) dependency
	WW                  // write-write dependency
	RW                  // read-write anti-dependency
	AUX                 // auxiliary edge (e.g. time-chain encoding)
)

// String returns the conventional name of the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case SO:
		return "SO"
	case RT:
		return "RT"
	case WR:
		return "WR"
	case WW:
		return "WW"
	case RW:
		return "RW"
	case AUX:
		return "AUX"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// ParseEdgeKind maps a conventional edge-kind name back to its EdgeKind.
func ParseEdgeKind(s string) (EdgeKind, error) {
	for _, k := range []EdgeKind{SO, RT, WR, WW, RW, AUX} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("graph: unknown edge kind %q", s)
}

// MarshalJSON serializes the kind as its conventional name, so cycles in
// API responses read "WR"/"RW" rather than opaque integers.
func (k EdgeKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses the conventional name form written by MarshalJSON.
func (k *EdgeKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseEdgeKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// Edge is a typed, labelled edge between two nodes. Obj is the object (key)
// the dependency concerns; it is empty for SO, RT and AUX edges.
type Edge struct {
	From int      `json:"from"`
	To   int      `json:"to"`
	Kind EdgeKind `json:"kind"`
	Obj  string   `json:"obj,omitempty"`
}

// String renders the edge as "From -KIND(obj)-> To".
func (e Edge) String() string {
	if e.Obj == "" {
		return fmt.Sprintf("T%d -%s-> T%d", e.From, e.Kind, e.To)
	}
	return fmt.Sprintf("T%d -%s(%s)-> T%d", e.From, e.Kind, e.Obj, e.To)
}

// Graph is a directed multigraph over nodes 0..n-1. Parallel edges of
// different kinds are permitted and preserved (they matter for
// counterexample reporting).
type Graph struct {
	n   int
	out [][]Edge
	m   atomic.Int64
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{n: n, out: make([][]Edge, n)}
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return g.n }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return int(g.m.Load()) }

// AddEdge inserts e. Self-loops are permitted and will be reported as
// cycles of length one. Node indices must be in range.
func (g *Graph) AddEdge(e Edge) {
	if e.From < 0 || e.From >= g.n || e.To < 0 || e.To >= g.n {
		panic(fmt.Sprintf("graph: edge %v out of range [0,%d)", e, g.n))
	}
	g.out[e.From] = append(g.out[e.From], e)
	g.m.Add(1)
}

// AddEdgesFrom appends a batch of edges that all leave node from. It is
// safe to call concurrently for DISTINCT from nodes — each call touches
// only its own adjacency slice and the edge counter is atomic — so
// parallel graph construction can shard by source node. Every edge's From
// must equal from; indices must be in range.
func (g *Graph) AddEdgesFrom(from int, edges []Edge) {
	if len(edges) == 0 {
		return
	}
	if from < 0 || from >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", from, g.n))
	}
	for _, e := range edges {
		if e.From != from {
			panic(fmt.Sprintf("graph: AddEdgesFrom(%d) got edge %v", from, e))
		}
		if e.To < 0 || e.To >= g.n {
			panic(fmt.Sprintf("graph: edge %v out of range [0,%d)", e, g.n))
		}
	}
	g.out[from] = append(g.out[from], edges...)
	g.m.Add(int64(len(edges)))
}

// Out returns the outgoing edges of node v. The returned slice must not be
// modified.
func (g *Graph) Out(v int) []Edge { return g.out[v] }

// HasEdge reports whether at least one edge of kind k runs from u to v.
func (g *Graph) HasEdge(u, v int, k EdgeKind) bool {
	for _, e := range g.out[u] {
		if e.To == v && e.Kind == k {
			return true
		}
	}
	return false
}

// Acyclic reports whether the graph has no directed cycle. It runs Kahn's
// algorithm in O(n+m) and allocates no recursion stack.
func (g *Graph) Acyclic() bool {
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, e := range g.out[u] {
			indeg[e.To]++
		}
	}
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, e := range g.out[v] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	return seen == g.n
}

// FindCycle returns the edges of some directed cycle, or nil if the graph
// is acyclic. The cycle returned is simple: each node appears at most once.
// It uses an iterative colouring DFS so that arbitrarily deep graphs do not
// overflow the goroutine stack.
func (g *Graph) FindCycle() []Edge {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]uint8, g.n)
	parent := make([]Edge, g.n) // edge used to enter the node
	type frame struct {
		v    int
		next int
	}
	for root := 0; root < g.n; root++ {
		if color[root] != white {
			continue
		}
		stack := []frame{{v: root}}
		color[root] = grey
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.out[f.v]) {
				e := g.out[f.v][f.next]
				f.next++
				switch color[e.To] {
				case white:
					color[e.To] = grey
					parent[e.To] = e
					stack = append(stack, frame{v: e.To})
				case grey:
					// Found a back edge e: (f.v -> e.To); unwind parents.
					cycle := []Edge{e}
					for v := f.v; v != e.To; {
						pe := parent[v]
						cycle = append(cycle, pe)
						v = pe.From
					}
					// Reverse into forward order starting at e.To.
					for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
						cycle[i], cycle[j] = cycle[j], cycle[i]
					}
					return cycle
				}
			} else {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// SCCs returns the strongly connected components of the graph in reverse
// topological order, using an iterative Tarjan algorithm. Singleton
// components without a self-loop are included.
func (g *Graph) SCCs() [][]int {
	const unvisited = -1
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		sccs    [][]int
		tstack  []int
		counter int
	)
	type frame struct {
		v    int
		next int
	}
	for root := 0; root < g.n; root++ {
		if index[root] != unvisited {
			continue
		}
		stack := []frame{{v: root}}
		index[root] = counter
		low[root] = counter
		counter++
		tstack = append(tstack, root)
		onStack[root] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.out[f.v]) {
				w := g.out[f.v][f.next].To
				f.next++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					tstack = append(tstack, w)
					onStack[w] = true
					stack = append(stack, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
			} else {
				v := f.v
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := stack[len(stack)-1].v
					if low[v] < low[p] {
						low[p] = low[v]
					}
				}
				if low[v] == index[v] {
					var comp []int
					for {
						w := tstack[len(tstack)-1]
						tstack = tstack[:len(tstack)-1]
						onStack[w] = false
						comp = append(comp, w)
						if w == v {
							break
						}
					}
					sccs = append(sccs, comp)
				}
			}
		}
	}
	return sccs
}

// TopoSort returns a topological order of the nodes and true, or nil and
// false if the graph is cyclic.
func (g *Graph) TopoSort() ([]int, bool) {
	indeg := make([]int, g.n)
	for u := 0; u < g.n; u++ {
		for _, e := range g.out[u] {
			indeg[e.To]++
		}
	}
	queue := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, e := range g.out[v] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != g.n {
		return nil, false
	}
	return order, true
}

// Reachable returns the set of nodes reachable from `from` (including
// itself) as a boolean slice. The traversal is a FIFO breadth-first
// search, so nodes are discovered in non-decreasing hop distance.
func (g *Graph) Reachable(from int) []bool {
	return g.ReachableInto(nil, from)
}

// ReachableInto is Reachable reusing buf for the result when it has
// capacity g.Len(), so hot loops issuing many queries stop allocating a
// fresh slice per query. The (possibly re-sliced) result is returned;
// previous contents of buf are discarded.
func (g *Graph) ReachableInto(buf []bool, from int) []bool {
	var seen []bool
	if cap(buf) >= g.n {
		seen = buf[:g.n]
		for i := range seen {
			seen[i] = false
		}
	} else {
		seen = make([]bool, g.n)
	}
	seen[from] = true
	queue := make([]int, 1, 16)
	queue[0] = from
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, e := range g.out[v] {
			if !seen[e.To] {
				seen[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return seen
}

// FormatCycle renders a cycle (as returned by FindCycle) on a single line,
// e.g. "T2 -WW(x)-> T3 -RW(x)-> T2".
func FormatCycle(cycle []Edge) string {
	if len(cycle) == 0 {
		return "<no cycle>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "T%d", cycle[0].From)
	for _, e := range cycle {
		if e.Obj == "" {
			fmt.Fprintf(&b, " -%s-> T%d", e.Kind, e.To)
		} else {
			fmt.Fprintf(&b, " -%s(%s)-> T%d", e.Kind, e.Obj, e.To)
		}
	}
	return b.String()
}

// Nodes returns the sorted list of nodes that appear in a cycle.
func Nodes(cycle []Edge) []int {
	set := map[int]struct{}{}
	for _, e := range cycle {
		set[e.From] = struct{}{}
		set[e.To] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
