package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func edges(pairs ...[2]int) []Edge {
	out := make([]Edge, len(pairs))
	for i, p := range pairs {
		out[i] = Edge{From: p[0], To: p[1], Kind: WW}
	}
	return out
}

func build(n int, es []Edge) *Graph {
	g := New(n)
	for _, e := range es {
		g.AddEdge(e)
	}
	return g
}

func TestAcyclicEmpty(t *testing.T) {
	g := New(0)
	if !g.Acyclic() {
		t.Fatal("empty graph must be acyclic")
	}
	if c := g.FindCycle(); c != nil {
		t.Fatalf("unexpected cycle %v", c)
	}
}

func TestAcyclicChain(t *testing.T) {
	g := build(4, edges([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}))
	if !g.Acyclic() {
		t.Fatal("chain must be acyclic")
	}
	if c := g.FindCycle(); c != nil {
		t.Fatalf("unexpected cycle %v", c)
	}
	order, ok := g.TopoSort()
	if !ok {
		t.Fatal("chain must topo-sort")
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("topo order %v, want %v", order, want)
		}
	}
}

func TestSelfLoop(t *testing.T) {
	g := build(2, edges([2]int{1, 1}))
	if g.Acyclic() {
		t.Fatal("self loop must be cyclic")
	}
	c := g.FindCycle()
	if len(c) != 1 || c[0].From != 1 || c[0].To != 1 {
		t.Fatalf("want self-loop cycle, got %v", c)
	}
}

func TestTwoCycle(t *testing.T) {
	g := build(3, edges([2]int{0, 1}, [2]int{1, 0}, [2]int{1, 2}))
	if g.Acyclic() {
		t.Fatal("must be cyclic")
	}
	c := g.FindCycle()
	validateCycle(t, c)
	if len(c) != 2 {
		t.Fatalf("want 2-cycle, got %v", c)
	}
}

// validateCycle checks that a returned cycle is a well-formed closed walk.
func validateCycle(t *testing.T, c []Edge) {
	t.Helper()
	if len(c) == 0 {
		t.Fatal("empty cycle")
	}
	for i, e := range c {
		next := c[(i+1)%len(c)]
		if e.To != next.From {
			t.Fatalf("cycle not contiguous at %d: %v", i, c)
		}
	}
	if c[len(c)-1].To != c[0].From {
		t.Fatalf("cycle not closed: %v", c)
	}
}

func TestCycleIsSimple(t *testing.T) {
	// Two lobes sharing node 0; the cycle found must not repeat nodes.
	g := build(5, edges(
		[2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0},
		[2]int{0, 3}, [2]int{3, 4}, [2]int{4, 0},
	))
	c := g.FindCycle()
	validateCycle(t, c)
	seen := map[int]bool{}
	for _, e := range c {
		if seen[e.From] {
			t.Fatalf("node %d repeated in cycle %v", e.From, c)
		}
		seen[e.From] = true
	}
}

func TestSCCsChain(t *testing.T) {
	g := build(3, edges([2]int{0, 1}, [2]int{1, 2}))
	sccs := g.SCCs()
	if len(sccs) != 3 {
		t.Fatalf("want 3 singleton SCCs, got %v", sccs)
	}
}

func TestSCCsOneBigComponent(t *testing.T) {
	g := build(4, edges([2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 0}))
	sccs := g.SCCs()
	if len(sccs) != 1 || len(sccs[0]) != 4 {
		t.Fatalf("want one SCC of 4 nodes, got %v", sccs)
	}
}

func TestSCCsMixed(t *testing.T) {
	// {0,1} cycle -> 2 -> {3,4} cycle
	g := build(5, edges(
		[2]int{0, 1}, [2]int{1, 0},
		[2]int{1, 2},
		[2]int{2, 3}, [2]int{3, 4}, [2]int{4, 3},
	))
	sccs := g.SCCs()
	if len(sccs) != 3 {
		t.Fatalf("want 3 SCCs, got %v", sccs)
	}
	sizes := []int{}
	for _, c := range sccs {
		sizes = append(sizes, len(c))
	}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 2 {
		t.Fatalf("want sizes [1 2 2], got %v", sizes)
	}
}

func TestReachable(t *testing.T) {
	g := build(4, edges([2]int{0, 1}, [2]int{1, 2}))
	r := g.Reachable(0)
	want := []bool{true, true, true, false}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("reachable = %v, want %v", r, want)
		}
	}
}

func TestTopoSortCyclic(t *testing.T) {
	g := build(2, edges([2]int{0, 1}, [2]int{1, 0}))
	if _, ok := g.TopoSort(); ok {
		t.Fatal("cyclic graph must not topo-sort")
	}
}

func TestHasEdgeAndKinds(t *testing.T) {
	g := New(2)
	g.AddEdge(Edge{From: 0, To: 1, Kind: WR, Obj: "x"})
	g.AddEdge(Edge{From: 0, To: 1, Kind: WW, Obj: "x"})
	if !g.HasEdge(0, 1, WR) || !g.HasEdge(0, 1, WW) {
		t.Fatal("parallel edges of different kinds must both exist")
	}
	if g.HasEdge(0, 1, RW) {
		t.Fatal("RW edge should not exist")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestFormatCycle(t *testing.T) {
	c := []Edge{
		{From: 2, To: 3, Kind: WW, Obj: "x"},
		{From: 3, To: 2, Kind: RW, Obj: "x"},
	}
	got := FormatCycle(c)
	want := "T2 -WW(x)-> T3 -RW(x)-> T2"
	if got != want {
		t.Fatalf("FormatCycle = %q, want %q", got, want)
	}
	if FormatCycle(nil) != "<no cycle>" {
		t.Fatal("nil cycle formatting")
	}
}

func TestNodes(t *testing.T) {
	c := []Edge{{From: 5, To: 1}, {From: 1, To: 5}}
	got := Nodes(c)
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("Nodes = %v", got)
	}
}

func TestEdgeKindString(t *testing.T) {
	cases := map[EdgeKind]string{SO: "SO", RT: "RT", WR: "WR", WW: "WW", RW: "RW", AUX: "AUX"}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%v.String() = %q, want %q", uint8(k), k.String(), want)
		}
	}
	if EdgeKind(42).String() != "EdgeKind(42)" {
		t.Fatal("unknown kind formatting")
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{From: 1, To: 2, Kind: WR, Obj: "k"}
	if e.String() != "T1 -WR(k)-> T2" {
		t.Fatalf("Edge.String = %q", e.String())
	}
	e2 := Edge{From: 1, To: 2, Kind: SO}
	if e2.String() != "T1 -SO-> T2" {
		t.Fatalf("Edge.String = %q", e2.String())
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).AddEdge(Edge{From: 0, To: 5})
}

// randomDAG builds a DAG by only adding forward edges under a random
// permutation, so Acyclic must hold.
func randomDAG(rng *rand.Rand, n, m int) *Graph {
	perm := rng.Perm(n)
	g := New(n)
	for i := 0; i < m; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if perm[a] > perm[b] {
			a, b = b, a
		}
		g.AddEdge(Edge{From: a, To: b, Kind: WW})
	}
	return g
}

func TestPropertyRandomDAGsAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := randomDAG(rng, n, 3*n)
		if !g.Acyclic() {
			return false
		}
		if g.FindCycle() != nil {
			return false
		}
		order, ok := g.TopoSort()
		if !ok || len(order) != n {
			return false
		}
		// Verify topological property.
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for u := 0; u < n; u++ {
			for _, e := range g.Out(u) {
				if pos[e.From] >= pos[e.To] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCycleDetectionAgreesWithSCC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		m := rng.Intn(4 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(Edge{From: rng.Intn(n), To: rng.Intn(n), Kind: WW})
		}
		hasBigSCC := false
		for _, c := range g.SCCs() {
			if len(c) > 1 {
				hasBigSCC = true
			}
		}
		hasSelfLoop := false
		for u := 0; u < n; u++ {
			for _, e := range g.Out(u) {
				if e.To == u {
					hasSelfLoop = true
				}
			}
		}
		cyclic := hasBigSCC || hasSelfLoop
		if g.Acyclic() == cyclic {
			return false
		}
		c := g.FindCycle()
		if cyclic != (c != nil) {
			return false
		}
		if c != nil {
			for i, e := range c {
				if e.To != c[(i+1)%len(c)].From {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
