package graph

import "sort"

// Online maintains a topological order of a growing DAG under node and
// edge insertions, detecting the first edge whose insertion closes a
// directed cycle. It implements the Pearce–Kelly dynamic topological
// ordering algorithm: when an inserted edge u -> v inverts the current
// order (ord(v) < ord(u)), a bounded bidirectional search discovers the
// affected region — the descendants of v and the ancestors of u whose
// order indices lie between ord(v) and ord(u) — and permutes only those
// indices. Work per insertion is proportional to the affected region, so
// edges that respect arrival order (the common case when transactions are
// fed in commit order, the paper's nearly-unique-graph regime) cost O(1)
// and the amortized cost per committed transaction stays near-constant.
//
// Online is the substrate of core.Incremental; it is not safe for
// concurrent use.
type Online struct {
	ord   []int // node -> order index
	byOrd []int // order index -> node (inverse of ord)
	out   [][]Edge
	in    [][]Edge
	m     int

	// DFS scratch, reused across insertions.
	mark  []int
	stamp int
}

// NewOnline returns an empty online ordering with no nodes.
func NewOnline() *Online { return &Online{} }

// Len returns the number of nodes.
func (t *Online) Len() int { return len(t.ord) }

// NumEdges returns the number of inserted edges.
func (t *Online) NumEdges() int { return t.m }

// AddNode appends a new node at the end of the current order and returns
// its index.
func (t *Online) AddNode() int {
	id := len(t.ord)
	t.ord = append(t.ord, id)
	t.byOrd = append(t.byOrd, id)
	t.out = append(t.out, nil)
	t.in = append(t.in, nil)
	t.mark = append(t.mark, 0)
	return id
}

// Out returns the outgoing edges of node v. The slice must not be
// modified.
func (t *Online) Out(v int) []Edge { return t.out[v] }

// Ord returns the current order index of node v.
func (t *Online) Ord(v int) int { return t.ord[v] }

// AddEdge inserts e, restoring the topological order. If the insertion
// closes a directed cycle it returns the cycle's edges (e first, so each
// edge's To is the next edge's From and the last edge re-enters e.From);
// the ordering is then stale and the structure should only be read, not
// grown. It returns nil when the graph remains acyclic.
func (t *Online) AddEdge(e Edge) []Edge {
	u, v := e.From, e.To
	t.out[u] = append(t.out[u], e)
	t.in[v] = append(t.in[v], e)
	t.m++
	if u == v {
		return []Edge{e}
	}
	if t.ord[u] < t.ord[v] {
		return nil
	}
	lb, ub := t.ord[v], t.ord[u]

	// Forward search from v over nodes with ord <= ub. Any path from v to
	// u has strictly increasing order indices (the pre-insertion invariant),
	// so pruning at ub cannot miss a cycle.
	t.stamp++
	fwd := []int{v}
	t.mark[v] = t.stamp
	parent := map[int]Edge{}
	stack := []int{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, oe := range t.out[x] {
			w := oe.To
			if w == u {
				// Cycle: e (u->v), then the tree path v ~> x, then oe.
				cycle := []Edge{e}
				var path []Edge
				for y := x; y != v; y = parent[y].From {
					path = append(path, parent[y])
				}
				for i := len(path) - 1; i >= 0; i-- {
					cycle = append(cycle, path[i])
				}
				return append(cycle, oe)
			}
			if t.ord[w] > ub || t.mark[w] == t.stamp {
				continue
			}
			t.mark[w] = t.stamp
			parent[w] = oe
			fwd = append(fwd, w)
			stack = append(stack, w)
		}
	}

	// Backward search from u over nodes with ord >= lb. No overlap with
	// fwd is possible: a shared node would witness a v ~> u path, found
	// above.
	bwdStamp := -t.stamp
	bwd := []int{u}
	t.mark[u] = bwdStamp
	stack = append(stack[:0], u)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ie := range t.in[x] {
			w := ie.From
			if t.ord[w] < lb || t.mark[w] == bwdStamp {
				continue
			}
			t.mark[w] = bwdStamp
			bwd = append(bwd, w)
			stack = append(stack, w)
		}
	}

	// Reorder: the ancestors (bwd) take the smallest affected indices, the
	// descendants (fwd) the largest, each group keeping its relative order.
	byOrd := func(s []int) {
		sort.Slice(s, func(i, j int) bool { return t.ord[s[i]] < t.ord[s[j]] })
	}
	byOrd(fwd)
	byOrd(bwd)
	slots := make([]int, 0, len(fwd)+len(bwd))
	for _, x := range bwd {
		slots = append(slots, t.ord[x])
	}
	for _, x := range fwd {
		slots = append(slots, t.ord[x])
	}
	sort.Ints(slots)
	nodes := append(bwd, fwd...)
	for i, x := range nodes {
		t.ord[x] = slots[i]
		t.byOrd[slots[i]] = x
	}
	return nil
}
