package graph

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism normalizes a parallelism knob: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged. Every layer
// that accepts a knob (checker.Options, the v1 API, the CLIs) funnels
// through this one default.
func Parallelism(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// parallelChunk is the number of loop iterations a worker claims per
// atomic fetch. Claims are coarse enough to amortize the counter and the
// context poll, fine enough to balance skewed per-item costs.
const parallelChunk = 256

// ParallelDo runs fn(i) for every i in [0, n) on min(par, n) workers
// (par <= 0 means GOMAXPROCS). Workers claim chunks of the index space
// from a shared counter and poll ctx between chunks, so cancellation
// stops the batch within one chunk per worker. On cancellation some
// indices are left unvisited and the context's error is returned; callers
// must then discard any partial results.
//
// fn must be safe for concurrent invocation on distinct indices. With
// par == 1 (or n <= 1) everything runs on the calling goroutine, so
// serial paths pay no synchronization.
func ParallelDo(ctx context.Context, par, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	par = Parallelism(par)
	if par > n {
		par = n
	}
	if par == 1 {
		for i := 0; i < n; i++ {
			if i%parallelChunk == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			fn(i)
		}
		return nil
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(parallelChunk)) - parallelChunk
				if lo >= n || ctx.Err() != nil {
					return
				}
				hi := lo + parallelChunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ReachPool answers batched reachability queries over a fixed adjacency
// with a bounded worker pool: each queried source is expanded by one
// iterative depth-first traversal into a Bitset row (the row is a set —
// discovery order is not part of the contract), sources are distributed
// over min(par, len(sources)) workers, and cancellation is honoured
// between queries. It is the sparse
// counterpart of Closure — use it when only a few rows of the closure are
// needed, so the full O(n²/64) table is not worth materializing.
type ReachPool struct {
	n   int
	out [][]int
	par int
}

// NewReachPool builds a pool over nodes 0..n-1 with the given out
// adjacency (which must not be mutated while the pool is in use).
// par <= 0 selects GOMAXPROCS.
func NewReachPool(n int, out [][]int, par int) *ReachPool {
	return &ReachPool{n: n, out: out, par: Parallelism(par)}
}

// Rows answers one batch: Rows(ctx, sources)[i] is the set of nodes
// reachable from sources[i], including itself. On cancellation it returns
// the context's error and the rows are meaningless.
func (p *ReachPool) Rows(ctx context.Context, sources []int) ([]Bitset, error) {
	rows := make([]Bitset, len(sources))
	// Per-worker scratch stacks, recycled across the queries one worker
	// answers so a large batch does not allocate one stack per source.
	var stacks sync.Pool
	stacks.New = func() any { s := make([]int, 0, 64); return &s }
	err := ParallelDo(ctx, p.par, len(sources), func(i int) {
		sp := stacks.Get().(*[]int)
		rows[i] = p.row(sources[i], sp)
		stacks.Put(sp)
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// row expands one source into its reachable set.
func (p *ReachPool) row(src int, sp *[]int) Bitset {
	seen := NewBitset(p.n)
	seen.Set(src)
	stack := append((*sp)[:0], src)
	defer func() { *sp = stack }()
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range p.out[v] {
			if !seen.Test(w) {
				seen.Set(w)
				stack = append(stack, w)
			}
		}
	}
	return seen
}
