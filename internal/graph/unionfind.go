package graph

// UnionFind is a disjoint-set structure with path halving and union by
// size, shared by the component decompositions (internal/shard over
// histories, internal/workload over plans). Root identity is arbitrary;
// callers needing deterministic grouping should order groups by their
// smallest member, not by root.
type UnionFind struct {
	parent []int
	size   []int
}

// NewUnionFind returns a structure over elements 0..n-1, each its own set.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
	}
	return u
}

// Grow appends a fresh singleton element and returns its id.
func (u *UnionFind) Grow() int {
	id := len(u.parent)
	u.parent = append(u.parent, id)
	u.size = append(u.size, 1)
	return id
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of a and b.
func (u *UnionFind) Union(a, b int) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
}
