package history

import (
	"encoding/json"
	"fmt"
)

// AnomalyKind enumerates the intra-transactional and G1 anomalies that the
// MTC pipeline pre-checks before building the dependency graph (footnote 1
// of the paper and Figure 5a-5g).
type AnomalyKind uint8

// The pre-checked anomaly kinds.
const (
	ThinAirRead        AnomalyKind = iota // reads a value nobody wrote
	AbortedRead                           // reads a value written only by an aborted txn (G1a)
	FutureRead                            // reads its own later write
	NotMyLastWrite                        // reads its own earlier, overwritten write
	NotMyOwnWrite                         // reads another txn's value after writing the object
	IntermediateRead                      // reads a non-final write of another txn (G1b)
	NonRepeatableReads                    // two reads of the same object differ
	DuplicateWrite                        // unique-value assumption violated (Definition 9)
	FracturedRead                         // observed part of a writer's update, missed the rest (Read Atomic)
)

// String returns the anomaly's conventional name.
func (k AnomalyKind) String() string {
	switch k {
	case ThinAirRead:
		return "ThinAirRead"
	case AbortedRead:
		return "AbortedRead"
	case FutureRead:
		return "FutureRead"
	case NotMyLastWrite:
		return "NotMyLastWrite"
	case NotMyOwnWrite:
		return "NotMyOwnWrite"
	case IntermediateRead:
		return "IntermediateRead"
	case NonRepeatableReads:
		return "NonRepeatableReads"
	case DuplicateWrite:
		return "DuplicateWrite"
	case FracturedRead:
		return "FracturedRead"
	default:
		return fmt.Sprintf("AnomalyKind(%d)", uint8(k))
	}
}

// ParseAnomalyKind maps a conventional anomaly name back to its kind.
func ParseAnomalyKind(s string) (AnomalyKind, error) {
	for k := ThinAirRead; k <= FracturedRead; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("history: unknown anomaly kind %q", s)
}

// MarshalJSON serializes the kind as its conventional name, so anomaly
// lists in API responses read "AbortedRead" rather than opaque integers.
func (k AnomalyKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON parses the conventional name form written by MarshalJSON.
func (k *AnomalyKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseAnomalyKind(s)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// Anomaly is one detected pre-check violation.
type Anomaly struct {
	Kind  AnomalyKind `json:"kind"`
	Txn   int         `json:"txn"` // offending transaction ID
	Key   Key         `json:"key"`
	Value Value       `json:"value"`
}

// String renders the anomaly with its location.
func (a Anomaly) String() string {
	op := "R"
	if a.Kind == DuplicateWrite {
		op = "W"
	}
	return fmt.Sprintf("%s in T%d on %s(%s,%d)", a.Kind, a.Txn, op, a.Key, a.Value)
}

// CheckInternal detects every intra-transactional anomaly (Figure 5c-5g),
// the G1a/G1b external anomalies (AbortedRead, IntermediateRead),
// ThinAirRead, and unique-value violations in the history. A history with
// no reported anomalies satisfies the INT axiom of Section II-D, every
// external read has a unique committed writer, and the unique-value
// assumption holds, so dependency-graph construction is well defined.
//
// Only committed transactions are inspected for read anomalies; writes of
// aborted transactions matter only as AbortedRead sources.
func CheckInternal(h *History) []Anomaly {
	return CheckInternalIndexed(NewIndex(h))
}

// CheckInternalIndexed is CheckInternal over a prebuilt columnar index,
// so one index build serves both the pre-check and graph construction.
// The per-transaction walk classifies each read by scanning the
// transaction's own operation list (mini-transactions hold at most four
// operations, and the wide init transaction is write-only, so the scans
// never degenerate) and answers every external question — writer,
// writer's final value, aborted writers — from the index's postings, so
// the pass performs no per-transaction allocation.
func CheckInternalIndexed(ix *Index) []Anomaly {
	h := ix.History()
	var out []Anomaly
	for _, op := range ix.Dups() {
		out = append(out, Anomaly{Kind: DuplicateWrite, Key: op.Key, Value: op.Value, Txn: ix.WriterByName(op.Key, op.Value)})
	}
	for i := range h.Txns {
		t := &h.Txns[i]
		if !t.Committed {
			continue
		}
		out = checkTxnInternal(ix, t, out)
	}
	return out
}

// writesBefore reports whether ops[:end] writes (key, val), and
// separately the last value any of them wrote to key.
func writesBefore(ops []Op, end int, key Key) (last Value, wrote bool) {
	for i := end - 1; i >= 0; i-- {
		if ops[i].Kind == OpWrite && ops[i].Key == key {
			return ops[i].Value, true
		}
	}
	return 0, false
}

// checkTxnInternal walks one transaction's operations in program order,
// classifying each read, and appends the anomalies found to out.
func checkTxnInternal(ix *Index, t *Txn, out []Anomaly) []Anomaly {
	ops := t.Ops
	for i, op := range ops {
		if op.Kind != OpRead {
			continue
		}
		if v, wrote := writesBefore(ops, i, op.Key); wrote {
			// The transaction has already written the object: INT
			// requires the read to return the last such write.
			if op.Value == v {
				continue
			}
			mine := false
			for j := 0; j < i; j++ {
				if ops[j].Kind == OpWrite && ops[j].Key == op.Key && ops[j].Value == op.Value {
					mine = true
					break
				}
			}
			if mine {
				out = append(out, Anomaly{Kind: NotMyLastWrite, Txn: t.ID, Key: op.Key, Value: op.Value})
			} else {
				out = append(out, Anomaly{Kind: NotMyOwnWrite, Txn: t.ID, Key: op.Key, Value: op.Value})
			}
			continue
		}
		// External read (no own write yet). Repeated external reads of
		// the same object must agree; only the first is classified. Any
		// earlier read of the key is necessarily external too (no write
		// to the key precedes this one, hence none precedes it).
		repeated := false
		for j := 0; j < i; j++ {
			if ops[j].Kind == OpRead && ops[j].Key == op.Key {
				if ops[j].Value != op.Value {
					out = append(out, Anomaly{Kind: NonRepeatableReads, Txn: t.ID, Key: op.Key, Value: op.Value})
				}
				repeated = true
				break
			}
		}
		if repeated {
			continue
		}
		// A read of a value this transaction writes later is a
		// FutureRead, checked before external matching so that
		// single-transaction histories classify correctly.
		future := false
		for j := i + 1; j < len(ops); j++ {
			if ops[j].Kind == OpWrite && ops[j].Key == op.Key && ops[j].Value == op.Value {
				future = true
				break
			}
		}
		if future {
			out = append(out, Anomaly{Kind: FutureRead, Txn: t.ID, Key: op.Key, Value: op.Value})
			continue
		}
		kid, known := ix.KeyIDOf(op.Key)
		writer := -1
		if known {
			writer = ix.Writer(kid, op.Value)
		}
		if writer == t.ID {
			// Reading an own write that already happened is handled by
			// the lastWrite branch; reaching here means the writer
			// index matched this transaction but program order did
			// not, which the FutureRead branch covers. Defensive only.
			continue
		}
		if writer >= 0 {
			// Reads of a non-final value of the writer are G1b.
			if last, ok := ix.WriteVal(writer, kid); ok && last != op.Value {
				out = append(out, Anomaly{Kind: IntermediateRead, Txn: t.ID, Key: op.Key, Value: op.Value})
			}
			continue
		}
		if known && ix.AbortedWriter(kid, op.Value) {
			out = append(out, Anomaly{Kind: AbortedRead, Txn: t.ID, Key: op.Key, Value: op.Value})
			continue
		}
		out = append(out, Anomaly{Kind: ThinAirRead, Txn: t.ID, Key: op.Key, Value: op.Value})
	}
	return out
}

// IsMiniTransaction reports whether t meets Definition 8: at most two
// reads, at most two writes, at least one read, and every write preceded
// (not necessarily immediately) by a read of the same object.
func IsMiniTransaction(t *Txn) bool {
	reads, writes := 0, 0
	readKeys := map[Key]bool{}
	for _, op := range t.Ops {
		switch op.Kind {
		case OpRead:
			reads++
			readKeys[op.Key] = true
		case OpWrite:
			writes++
			if !readKeys[op.Key] {
				return false
			}
		}
	}
	return reads >= 1 && reads <= 2 && writes <= 2
}

// ValidateMT checks Definition 9: every transaction except the initial one
// is a mini-transaction, and writes use unique values. It returns a
// descriptive error for the first violation found.
func ValidateMT(h *History) error {
	for i := range h.Txns {
		if h.HasInit && i == 0 {
			continue
		}
		if !h.Txns[i].Committed {
			// Aborted attempts may have been cut short mid-transaction;
			// their shape does not affect verification.
			continue
		}
		if !IsMiniTransaction(&h.Txns[i]) {
			return fmt.Errorf("history: T%d is not a mini-transaction: %s", i, h.Txns[i].String())
		}
	}
	if _, dups := BuildWriterIndex(h); len(dups) > 0 {
		return fmt.Errorf("history: duplicate write of (%s,%d) violates unique values", dups[0].Key, dups[0].Value)
	}
	return nil
}
