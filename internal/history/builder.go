package history

// Builder assembles histories programmatically. It is used by the anomaly
// fixtures, the tests, and the synthetic generators. Transactions are
// appended per session; the builder assigns IDs and session lists.
type Builder struct {
	h       History
	hasInit bool
}

// NewBuilder returns a builder. When initKeys is non-empty, transaction 0
// becomes the special initial transaction ⊥T writing value 0 to each of
// the given keys.
func NewBuilder(initKeys ...Key) *Builder {
	b := &Builder{}
	if len(initKeys) > 0 {
		ops := make([]Op, len(initKeys))
		for i, k := range initKeys {
			ops[i] = Op{Kind: OpWrite, Key: k, Value: 0}
		}
		b.h.Txns = append(b.h.Txns, Txn{ID: 0, Session: -1, Ops: ops, Committed: true})
		b.h.HasInit = true
		b.hasInit = true
	}
	return b
}

// ensureSession grows the session table to include session s.
func (b *Builder) ensureSession(s int) {
	for len(b.h.Sessions) <= s {
		b.h.Sessions = append(b.h.Sessions, nil)
	}
}

// Txn appends a committed transaction with the given operations to session
// s and returns its ID.
func (b *Builder) Txn(s int, ops ...Op) int {
	return b.add(s, true, 0, 0, ops)
}

// AbortedTxn appends an aborted transaction to session s.
func (b *Builder) AbortedTxn(s int, ops ...Op) int {
	return b.add(s, false, 0, 0, ops)
}

// TimedTxn appends a committed transaction with explicit start and finish
// timestamps (for histories that exercise the real-time order).
func (b *Builder) TimedTxn(s int, start, finish int64, ops ...Op) int {
	return b.add(s, true, start, finish, ops)
}

// TimedAbortedTxn appends an aborted transaction with explicit timestamps.
func (b *Builder) TimedAbortedTxn(s int, start, finish int64, ops ...Op) int {
	return b.add(s, false, start, finish, ops)
}

func (b *Builder) add(s int, committed bool, start, finish int64, ops []Op) int {
	b.ensureSession(s)
	id := len(b.h.Txns)
	b.h.Txns = append(b.h.Txns, Txn{
		ID: id, Session: s, Ops: ops,
		Start: start, Finish: finish, Committed: committed,
	})
	b.h.Sessions[s] = append(b.h.Sessions[s], id)
	return id
}

// Build returns the assembled history. The builder must not be reused
// afterwards.
func (b *Builder) Build() *History { return &b.h }

// R constructs a read operation.
func R(k Key, v Value) Op { return Op{Kind: OpRead, Key: k, Value: v} }

// W constructs a write operation.
func W(k Key, v Value) Op { return Op{Kind: OpWrite, Key: k, Value: v} }
