package history

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// WriteJSON serializes the history as indented JSON.
func WriteJSON(w io.Writer, h *History) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(h)
}

// ReadJSON parses a history written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*History, error) {
	var h History
	if err := json.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("history: decode: %w", err)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}

// fileCodecs is the single extension→codec table behind both the save
// path (SaveFile picks the writer by extension) and the load path
// (ReadAuto sniffs by the content marker documented here, never by
// extension), so the two can never disagree about what a suffix means:
//
//	.json    WriteJSON/ReadJSON      sniffed by a leading '{' or '['
//	.txt     WriteText/ReadText      the fallback when nothing else sniffs
//	.ndjson  WriteNDJSON/ReadNDJSON  sniffed by the self-identifying header line
//	.mtcb    WriteMTCB/ReadMTCB      sniffed by the 4-byte "MTCB" magic
//
// A ".gz" suffix wraps any of them in transparent gzip (sniffed by the
// gzip magic). An extensionless path saves JSON — the historical
// default, which round-trips via the JSON sniff.
var fileCodecs = map[string]func(io.Writer, *History) error{
	".json":   WriteJSON,
	".txt":    WriteText,
	".ndjson": WriteNDJSON,
	".mtcb":   WriteMTCB,
}

// saveWriter resolves the codec for path's inner extension, rejecting
// requests SaveFile cannot honour round-trip: an unrecognized extension
// (the old behaviour silently wrote JSON, so a later LoadFile sniffed
// back a different format than the name promised), a doubled ".gz", or
// the text format for a history whose keys its whitespace-delimited
// lines cannot represent.
func saveWriter(ext string, h *History) (func(io.Writer, *History) error, error) {
	if ext == "" {
		return WriteJSON, nil
	}
	write, ok := fileCodecs[ext]
	if !ok {
		return nil, fmt.Errorf("history: save %q: unknown extension (want .json, .txt, .ndjson, .mtcb, optionally +.gz, or none for JSON)", ext)
	}
	if ext == ".txt" {
		for _, k := range h.Keys() {
			if k == "" || strings.ContainsAny(string(k), " \t\r\n") {
				return nil, fmt.Errorf("history: save: text format cannot round-trip key %q; use .json, .ndjson or .mtcb", k)
			}
		}
	}
	return write, nil
}

// SaveFile writes the history to path. A ".gz" suffix selects
// transparent gzip compression; the format is chosen by the remaining
// extension through the fileCodecs table — ".json", ".txt", ".ndjson"
// or ".mtcb", with no extension defaulting to JSON. Every combination
// round-trips through LoadFile; an extension that would not (unknown,
// doubled ".gz", or ".txt" with keys the text format cannot encode) is
// rejected instead of silently written in another format.
func SaveFile(path string, h *History) error {
	inner := path
	gzipped := strings.EqualFold(filepath.Ext(path), ".gz")
	if gzipped {
		inner = strings.TrimSuffix(path, filepath.Ext(path))
		if strings.EqualFold(filepath.Ext(inner), ".gz") {
			return fmt.Errorf("history: save %q: doubled .gz extension", path)
		}
	}
	write, err := saveWriter(strings.ToLower(filepath.Ext(inner)), h)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	var zw *gzip.Writer
	if gzipped {
		zw = gzip.NewWriter(f)
		w = zw
	}
	bw := bufio.NewWriter(w)
	if err := write(bw, h); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return err
		}
	}
	if err := f.Sync(); err != nil {
		return err
	}
	// Explicit checked close on the write path; the deferred Close
	// behind it then sees ErrClosed and only covers the error returns.
	return f.Close()
}

// LoadFile reads a history from path, sniffing the encoding by content
// rather than trusting the extension (the markers are documented on the
// fileCodecs table): a gzip stream (magic 0x1f 0x8b) is decompressed
// transparently, the MTCB magic selects the binary codec, the NDJSON
// header line the streaming codec, a leading '{' or '[' the JSON codec,
// and anything else falls through to the line-oriented text format.
func LoadFile(path string) (*History, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAuto(f)
}

// ReadAuto reads a history from r with the same content sniffing as
// LoadFile (gzip, then MTCB vs NDJSON vs JSON vs text).
func ReadAuto(r io.Reader) (*History, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("history: gzip: %w", err)
		}
		defer zr.Close()
		br = bufio.NewReader(zr)
	}
	if _, err := br.Peek(1); err != nil {
		return nil, fmt.Errorf("history: empty input: %w", err)
	}
	if magic, err := br.Peek(len(MTCBMagic)); err == nil && string(magic) == MTCBMagic {
		return ReadMTCB(br)
	}
	if sniffNDJSON(br) {
		return ReadNDJSON(br)
	}
	if sniffJSON(br) {
		return ReadJSON(br)
	}
	return ReadText(br)
}

// TxnStream is the incremental-decoder surface the NDJSON StreamReader
// and the binary BinaryReader share: transactions one at a time until
// io.EOF, plus the header metadata a streaming check consumes. Both
// types satisfy core.TxnSource through it.
type TxnStream interface {
	// Next returns the next transaction in stream order, or io.EOF after
	// the last one.
	Next() (Txn, error)
	// DeclaredSessions returns the header's declared session count, or 0
	// when the writer did not know it.
	DeclaredSessions() int
	// HasInit reports whether the prefix consumed so far carried an init
	// transaction.
	HasInit() bool
	// NumTxns returns how many transactions have been consumed.
	NumTxns() int
}

// NewAutoStreamReader opens an incremental transaction decoder over r,
// sniffing the stream codec by content exactly like ReadAuto: a gzip
// layer is unwrapped first, then the MTCB magic selects the binary
// reader and anything else the NDJSON reader (the only two codecs with
// a streaming decode). mtc-verify -stream verifies either capture
// format through it without a format flag.
func NewAutoStreamReader(r io.Reader) (TxnStream, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("history: gzip: %w", err)
		}
		br = bufio.NewReader(zr)
	}
	if magic, err := br.Peek(len(MTCBMagic)); err == nil && string(magic) == MTCBMagic {
		return NewBinaryReader(br)
	}
	return NewStreamReader(br)
}

// sniffNDJSON reports whether the buffered payload opens with the
// streaming codec's self-identifying header line. The whole-file JSON
// encoder indents, so its first line never contains the format marker.
func sniffNDJSON(br *bufio.Reader) bool {
	buf, _ := br.Peek(len(NDJSONHeader) + 2)
	i := 0
	for i < len(buf) && (buf[i] == ' ' || buf[i] == '\t' || buf[i] == '\r' || buf[i] == '\n') {
		i++
	}
	return strings.HasPrefix(string(buf[i:]), `{"format":"mtc-ndjson"`)
}

// sniffJSON reports whether the buffered payload starts (after
// whitespace) like a JSON document. The text format's lines start with a
// directive or '#' comment, never '{' or '['.
func sniffJSON(br *bufio.Reader) bool {
	for n := 1; n <= 4096; n++ {
		buf, _ := br.Peek(n)
		if len(buf) < n {
			return false // whitespace-only or empty payload
		}
		switch buf[n-1] {
		case ' ', '\t', '\r', '\n':
		case '{', '[':
			return true
		default:
			return false
		}
	}
	return false
}

// WriteText emits the compact line-oriented text format:
//
//	txn <id> s<session> <start> <finish> <C|A>
//	r <key> <value>
//	w <key> <value>
//
// The init transaction, if present, is written first with session -1.
func WriteText(w io.Writer, h *History) error {
	bw := bufio.NewWriter(w)
	for i := range h.Txns {
		t := &h.Txns[i]
		status := "C"
		if !t.Committed {
			status = "A"
		}
		fmt.Fprintf(bw, "txn %d s%d %d %d %s\n", t.ID, t.Session, t.Start, t.Finish, status)
		for _, op := range t.Ops {
			k := "r"
			if op.Kind == OpWrite {
				k = "w"
			}
			fmt.Fprintf(bw, "%s %s %d\n", k, op.Key, op.Value)
		}
	}
	return bw.Flush()
}

// ReadText parses the format written by WriteText and reconstructs the
// session lists. A transaction with session -1 becomes the init
// transaction and must be first.
func ReadText(r io.Reader) (*History, error) {
	var h History
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var cur *Txn
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "txn":
			if len(fields) != 6 {
				return nil, fmt.Errorf("history: line %d: malformed txn header", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad id: %w", line, err)
			}
			sess, err := strconv.Atoi(strings.TrimPrefix(fields[2], "s"))
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad session: %w", line, err)
			}
			if sess < -1 {
				return nil, fmt.Errorf("history: line %d: negative session %d", line, sess)
			}
			start, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad start: %w", line, err)
			}
			finish, err := strconv.ParseInt(fields[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad finish: %w", line, err)
			}
			if id != len(h.Txns) {
				return nil, fmt.Errorf("history: line %d: txn id %d out of order", line, id)
			}
			h.Txns = append(h.Txns, Txn{
				ID: id, Session: sess, Start: start, Finish: finish,
				Committed: fields[5] == "C",
			})
			cur = &h.Txns[len(h.Txns)-1]
			if sess == -1 {
				if id != 0 {
					return nil, fmt.Errorf("history: line %d: init transaction must be first", line)
				}
				h.HasInit = true
			} else {
				for len(h.Sessions) <= sess {
					h.Sessions = append(h.Sessions, nil)
				}
				h.Sessions[sess] = append(h.Sessions[sess], id)
			}
		case "r", "w":
			if cur == nil {
				return nil, fmt.Errorf("history: line %d: operation before txn header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("history: line %d: malformed op", line)
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad value: %w", line, err)
			}
			kind := OpRead
			if fields[0] == "w" {
				kind = OpWrite
			}
			cur.Ops = append(cur.Ops, Op{Kind: kind, Key: Key(fields[1]), Value: Value(v)})
		default:
			return nil, fmt.Errorf("history: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}
