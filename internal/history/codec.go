package history

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteJSON serializes the history as indented JSON.
func WriteJSON(w io.Writer, h *History) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(h)
}

// ReadJSON parses a history written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*History, error) {
	var h History
	if err := json.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("history: decode: %w", err)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}

// SaveFile writes the history to path as JSON.
func SaveFile(path string, h *History) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	bw := bufio.NewWriter(f)
	if err := WriteJSON(bw, h); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadFile reads a JSON history from path.
func LoadFile(path string) (*History, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(bufio.NewReader(f))
}

// WriteText emits the compact line-oriented text format:
//
//	txn <id> s<session> <start> <finish> <C|A>
//	r <key> <value>
//	w <key> <value>
//
// The init transaction, if present, is written first with session -1.
func WriteText(w io.Writer, h *History) error {
	bw := bufio.NewWriter(w)
	for i := range h.Txns {
		t := &h.Txns[i]
		status := "C"
		if !t.Committed {
			status = "A"
		}
		fmt.Fprintf(bw, "txn %d s%d %d %d %s\n", t.ID, t.Session, t.Start, t.Finish, status)
		for _, op := range t.Ops {
			k := "r"
			if op.Kind == OpWrite {
				k = "w"
			}
			fmt.Fprintf(bw, "%s %s %d\n", k, op.Key, op.Value)
		}
	}
	return bw.Flush()
}

// ReadText parses the format written by WriteText and reconstructs the
// session lists. A transaction with session -1 becomes the init
// transaction and must be first.
func ReadText(r io.Reader) (*History, error) {
	var h History
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var cur *Txn
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "txn":
			if len(fields) != 6 {
				return nil, fmt.Errorf("history: line %d: malformed txn header", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad id: %w", line, err)
			}
			sess, err := strconv.Atoi(strings.TrimPrefix(fields[2], "s"))
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad session: %w", line, err)
			}
			start, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad start: %w", line, err)
			}
			finish, err := strconv.ParseInt(fields[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad finish: %w", line, err)
			}
			if id != len(h.Txns) {
				return nil, fmt.Errorf("history: line %d: txn id %d out of order", line, id)
			}
			h.Txns = append(h.Txns, Txn{
				ID: id, Session: sess, Start: start, Finish: finish,
				Committed: fields[5] == "C",
			})
			cur = &h.Txns[len(h.Txns)-1]
			if sess == -1 {
				if id != 0 {
					return nil, fmt.Errorf("history: line %d: init transaction must be first", line)
				}
				h.HasInit = true
			} else {
				for len(h.Sessions) <= sess {
					h.Sessions = append(h.Sessions, nil)
				}
				h.Sessions[sess] = append(h.Sessions[sess], id)
			}
		case "r", "w":
			if cur == nil {
				return nil, fmt.Errorf("history: line %d: operation before txn header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("history: line %d: malformed op", line)
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad value: %w", line, err)
			}
			kind := OpRead
			if fields[0] == "w" {
				kind = OpWrite
			}
			cur.Ops = append(cur.Ops, Op{Kind: kind, Key: Key(fields[1]), Value: Value(v)})
		default:
			return nil, fmt.Errorf("history: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}
