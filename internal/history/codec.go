package history

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// WriteJSON serializes the history as indented JSON.
func WriteJSON(w io.Writer, h *History) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(h)
}

// ReadJSON parses a history written by WriteJSON and validates it.
func ReadJSON(r io.Reader) (*History, error) {
	var h History
	if err := json.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("history: decode: %w", err)
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}

// SaveFile writes the history to path. A ".gz" suffix selects
// transparent gzip compression; the format is chosen by the remaining
// extension — ".txt" writes the line-oriented text format, ".ndjson"
// the streaming one-transaction-per-line encoding, anything else the
// JSON encoding. "h.json", "h.json.gz", "h.txt", "h.txt.gz", "h.ndjson"
// and "h.ndjson.gz" all round-trip through LoadFile.
func SaveFile(path string, h *History) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	inner := path
	var w io.Writer = f
	var zw *gzip.Writer
	if strings.EqualFold(filepath.Ext(path), ".gz") {
		inner = strings.TrimSuffix(path, filepath.Ext(path))
		zw = gzip.NewWriter(f)
		w = zw
	}
	bw := bufio.NewWriter(w)
	switch {
	case strings.EqualFold(filepath.Ext(inner), ".txt"):
		err = WriteText(bw, h)
	case strings.EqualFold(filepath.Ext(inner), ".ndjson"):
		err = WriteNDJSON(bw, h)
	default:
		err = WriteJSON(bw, h)
	}
	if err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return err
		}
	}
	if err := f.Sync(); err != nil {
		return err
	}
	// Explicit checked close on the write path; the deferred Close
	// behind it then sees ErrClosed and only covers the error returns.
	return f.Close()
}

// LoadFile reads a history from path, sniffing the encoding by content
// rather than trusting the extension: a gzip stream (magic 0x1f 0x8b) is
// decompressed transparently, and the payload's first non-space byte
// decides between the JSON codec ('{' or '[') and the line-oriented text
// format.
func LoadFile(path string) (*History, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAuto(f)
}

// ReadAuto reads a history from r with the same content sniffing as
// LoadFile (gzip, then NDJSON vs JSON vs text).
func ReadAuto(r io.Reader) (*History, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("history: gzip: %w", err)
		}
		defer zr.Close()
		br = bufio.NewReader(zr)
	}
	if _, err := br.Peek(1); err != nil {
		return nil, fmt.Errorf("history: empty input: %w", err)
	}
	if sniffNDJSON(br) {
		return ReadNDJSON(br)
	}
	if sniffJSON(br) {
		return ReadJSON(br)
	}
	return ReadText(br)
}

// sniffNDJSON reports whether the buffered payload opens with the
// streaming codec's self-identifying header line. The whole-file JSON
// encoder indents, so its first line never contains the format marker.
func sniffNDJSON(br *bufio.Reader) bool {
	buf, _ := br.Peek(len(NDJSONHeader) + 2)
	i := 0
	for i < len(buf) && (buf[i] == ' ' || buf[i] == '\t' || buf[i] == '\r' || buf[i] == '\n') {
		i++
	}
	return strings.HasPrefix(string(buf[i:]), `{"format":"mtc-ndjson"`)
}

// sniffJSON reports whether the buffered payload starts (after
// whitespace) like a JSON document. The text format's lines start with a
// directive or '#' comment, never '{' or '['.
func sniffJSON(br *bufio.Reader) bool {
	for n := 1; n <= 4096; n++ {
		buf, _ := br.Peek(n)
		if len(buf) < n {
			return false // whitespace-only or empty payload
		}
		switch buf[n-1] {
		case ' ', '\t', '\r', '\n':
		case '{', '[':
			return true
		default:
			return false
		}
	}
	return false
}

// WriteText emits the compact line-oriented text format:
//
//	txn <id> s<session> <start> <finish> <C|A>
//	r <key> <value>
//	w <key> <value>
//
// The init transaction, if present, is written first with session -1.
func WriteText(w io.Writer, h *History) error {
	bw := bufio.NewWriter(w)
	for i := range h.Txns {
		t := &h.Txns[i]
		status := "C"
		if !t.Committed {
			status = "A"
		}
		fmt.Fprintf(bw, "txn %d s%d %d %d %s\n", t.ID, t.Session, t.Start, t.Finish, status)
		for _, op := range t.Ops {
			k := "r"
			if op.Kind == OpWrite {
				k = "w"
			}
			fmt.Fprintf(bw, "%s %s %d\n", k, op.Key, op.Value)
		}
	}
	return bw.Flush()
}

// ReadText parses the format written by WriteText and reconstructs the
// session lists. A transaction with session -1 becomes the init
// transaction and must be first.
func ReadText(r io.Reader) (*History, error) {
	var h History
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var cur *Txn
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "txn":
			if len(fields) != 6 {
				return nil, fmt.Errorf("history: line %d: malformed txn header", line)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad id: %w", line, err)
			}
			sess, err := strconv.Atoi(strings.TrimPrefix(fields[2], "s"))
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad session: %w", line, err)
			}
			if sess < -1 {
				return nil, fmt.Errorf("history: line %d: negative session %d", line, sess)
			}
			start, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad start: %w", line, err)
			}
			finish, err := strconv.ParseInt(fields[4], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad finish: %w", line, err)
			}
			if id != len(h.Txns) {
				return nil, fmt.Errorf("history: line %d: txn id %d out of order", line, id)
			}
			h.Txns = append(h.Txns, Txn{
				ID: id, Session: sess, Start: start, Finish: finish,
				Committed: fields[5] == "C",
			})
			cur = &h.Txns[len(h.Txns)-1]
			if sess == -1 {
				if id != 0 {
					return nil, fmt.Errorf("history: line %d: init transaction must be first", line)
				}
				h.HasInit = true
			} else {
				for len(h.Sessions) <= sess {
					h.Sessions = append(h.Sessions, nil)
				}
				h.Sessions[sess] = append(h.Sessions[sess], id)
			}
		case "r", "w":
			if cur == nil {
				return nil, fmt.Errorf("history: line %d: operation before txn header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("history: line %d: malformed op", line)
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("history: line %d: bad value: %w", line, err)
			}
			kind := OpRead
			if fields[0] == "w" {
				kind = OpWrite
			}
			cur.Ops = append(cur.Ops, Op{Kind: kind, Key: Key(fields[1]), Value: Value(v)})
		default:
			return nil, fmt.Errorf("history: line %d: unknown directive %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}
