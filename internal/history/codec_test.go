package history

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// codecFixture builds a small history exercising sessions, aborts,
// timestamps and the init transaction.
func codecFixture() *History {
	b := NewBuilder("x", "y")
	b.TimedTxn(0, 10, 20, R("x", 0), W("x", 1))
	b.TimedAbortedTxn(1, 15, 25, R("y", 0), W("y", 7))
	b.TimedTxn(1, 30, 40, R("y", 0), W("y", 2))
	b.TimedTxn(0, 50, 60, R("x", 1), R("y", 2))
	return b.Build()
}

// TestSaveLoadRoundTrip round-trips every extension combination SaveFile
// understands — JSON, text, NDJSON, MTCB, and their gzipped forms —
// through LoadFile's content sniffing.
func TestSaveLoadRoundTrip(t *testing.T) {
	h := codecFixture()
	dir := t.TempDir()
	for _, name := range []string{
		"h.json", "h.txt", "h.json.gz", "h.txt.gz", "h",
		"h.mtcb", "h.mtcb.gz", "h.ndjson", "h.ndjson.gz",
	} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, h); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("%s: round trip diverged:\nsaved:  %+v\nloaded: %+v", name, h, got)
		}
	}
}

// TestSaveFileRejectsUnroundtrippable: extensions the save/sniff pair
// cannot honour fail loudly instead of silently writing another format —
// unknown suffixes (the old behaviour wrote JSON under any name),
// doubled .gz, and text saves of keys the whitespace-delimited format
// cannot represent.
func TestSaveFileRejectsUnroundtrippable(t *testing.T) {
	h := codecFixture()
	dir := t.TempDir()
	for _, name := range []string{"h.bin", "h.dat.gz", "h.gz.gz", "h.mtcbx"} {
		if err := SaveFile(filepath.Join(dir, name), h); err == nil {
			t.Errorf("%s: ambiguous extension accepted", name)
		}
	}
	// Bare .gz: the inner name has no extension, so it is gzipped JSON.
	if err := SaveFile(filepath.Join(dir, "h.gz"), h); err != nil {
		t.Fatalf("h.gz: %v", err)
	}
	if got, err := LoadFile(filepath.Join(dir, "h.gz")); err != nil || !reflect.DeepEqual(got, h) {
		t.Fatalf("h.gz round trip: %v", err)
	}
	// A key with whitespace shreds the text format's field splitting;
	// the table-driven save must refuse rather than corrupt.
	b := NewBuilder()
	b.Txn(0, W("key with spaces", 1))
	tricky := b.Build()
	if err := SaveFile(filepath.Join(dir, "tricky.txt"), tricky); err == nil {
		t.Fatal("text save of whitespace key accepted")
	}
	for _, name := range []string{"tricky.json", "tricky.mtcb", "tricky.ndjson"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, tricky); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		if got, err := LoadFile(path); err != nil || !reflect.DeepEqual(got, tricky) {
			t.Fatalf("%s: round trip: %v", name, err)
		}
	}
}

// TestLoadSniffsContentNotExtension: a gzipped text history hiding
// behind a ".json" name (and vice versa) still loads — the codec trusts
// the bytes, not the extension.
func TestLoadSniffsContentNotExtension(t *testing.T) {
	h := codecFixture()
	dir := t.TempDir()

	// Text bytes under a .json name.
	var text bytes.Buffer
	if err := WriteText(&text, h); err != nil {
		t.Fatal(err)
	}
	mislabeled := filepath.Join(dir, "actually-text.json")
	writeFile(t, mislabeled, text.Bytes())
	if got, err := LoadFile(mislabeled); err != nil || !reflect.DeepEqual(got, h) {
		t.Fatalf("text-as-.json: %v", err)
	}

	// Gzipped JSON with no .gz extension.
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if err := WriteJSON(zw, h); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	hidden := filepath.Join(dir, "compressed-but-plain-name.json")
	writeFile(t, hidden, gz.Bytes())
	if got, err := LoadFile(hidden); err != nil || !reflect.DeepEqual(got, h) {
		t.Fatalf("gzip-without-.gz: %v", err)
	}

	// JSON with leading whitespace still sniffs as JSON.
	var ws bytes.Buffer
	ws.WriteString("\n\t  ")
	if err := WriteJSON(&ws, h); err != nil {
		t.Fatal(err)
	}
	padded := filepath.Join(dir, "padded")
	writeFile(t, padded, ws.Bytes())
	if got, err := LoadFile(padded); err != nil || !reflect.DeepEqual(got, h) {
		t.Fatalf("whitespace-padded JSON: %v", err)
	}
}

// TestReadAutoRejectsGarbage: corrupt gzip and empty payloads fail with
// errors instead of mis-parsing.
func TestReadAutoRejectsGarbage(t *testing.T) {
	if _, err := ReadAuto(bytes.NewReader([]byte{0x1f, 0x8b, 0xff, 0xff})); err == nil {
		t.Fatal("corrupt gzip accepted")
	}
	if _, err := ReadAuto(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty payload accepted")
	}
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
