package history

// Fixture is one of the 14 anomaly histories of Figure 5 / Table I,
// together with the verdict each strong isolation checker must reach on
// it. Every anomaly violates SER (and therefore SSER); WriteSkew is the
// only one admitted by SI. PreCheck marks anomalies that the MTC pipeline
// rejects before dependency-graph construction (Figure 5a-5g).
type Fixture struct {
	Name      string
	H         *History
	PreCheck  bool // caught by CheckInternal
	AnomalyAt AnomalyKind
	// Expected checker verdicts (true = the history VIOLATES the level),
	// covering the full lattice RC < RA < CAUSAL < SI < SER < SSER. The
	// verdicts are monotone: a violated rung implies every stronger rung
	// is violated too.
	ViolatesSSER   bool
	ViolatesSER    bool
	ViolatesSI     bool
	ViolatesCausal bool
	ViolatesRA     bool
	ViolatesRC     bool
}

// Violates reports the fixture's expected verdict for a level given by
// its conventional name (true = the history violates it). Unknown names
// report false.
func (f *Fixture) Violates(level string) bool {
	switch level {
	case "SSER":
		return f.ViolatesSSER
	case "SER":
		return f.ViolatesSER
	case "SI":
		return f.ViolatesSI
	case "CAUSAL":
		return f.ViolatesCausal
	case "RA":
		return f.ViolatesRA
	case "RC":
		return f.ViolatesRC
	}
	return false
}

// Fixtures returns fresh copies of the 14 anomaly histories of Figure 5
// plus one minimal violating history for each remaining lattice rung
// (G1cCycle for RC, RealTimeViolation for SSER).
// Values follow the figure where possible; where the figure's values would
// collide with the initial transaction's value 0, distinct values are
// substituted without changing the dependency structure.
func Fixtures() []Fixture {
	return []Fixture{
		thinAirRead(),
		abortedRead(),
		futureRead(),
		notMyLastWrite(),
		notMyOwnWrite(),
		intermediateRead(),
		nonRepeatableReads(),
		sessionGuaranteeViolation(),
		nonMonotonicRead(),
		fracturedRead(),
		causalityViolation(),
		longFork(),
		lostUpdate(),
		writeSkew(),
		g1cCycle(),
		realTimeViolation(),
	}
}

// FixtureByName returns the named fixture, or nil.
func FixtureByName(name string) *Fixture {
	for _, f := range Fixtures() {
		if f.Name == name {
			f := f
			return &f
		}
	}
	return nil
}

func pre(name string, kind AnomalyKind, h *History) Fixture {
	// Pre-check anomalies void the axioms of every rung at once.
	return Fixture{Name: name, H: h, PreCheck: true, AnomalyAt: kind,
		ViolatesSSER: true, ViolatesSER: true, ViolatesSI: true,
		ViolatesCausal: true, ViolatesRA: true, ViolatesRC: true}
}

// dep builds a dependency-level fixture: every such history violates
// SER/SSER; the weak verdicts name the exact rung where it starts
// failing (the arguments are ordered strongest-to-weakest and must be
// monotone).
func dep(name string, h *History, violatesSI, violatesCausal, violatesRA, violatesRC bool) Fixture {
	return Fixture{Name: name, H: h,
		ViolatesSSER: true, ViolatesSER: true, ViolatesSI: violatesSI,
		ViolatesCausal: violatesCausal, ViolatesRA: violatesRA, ViolatesRC: violatesRC}
}

// Figure 5a: T reads a value that no transaction ever wrote.
func thinAirRead() Fixture {
	b := NewBuilder("x")
	b.Txn(0, R("x", 99))
	return pre("ThinAirRead", ThinAirRead, b.Build())
}

// Figure 5b: T reads the value written by an aborted transaction.
func abortedRead() Fixture {
	b := NewBuilder("x")
	b.AbortedTxn(0, R("x", 0), W("x", 1))
	b.Txn(1, R("x", 1))
	return pre("AbortedRead", AbortedRead, b.Build())
}

// Figure 5c: T reads from a write that occurs later in the same
// transaction: R(x,5) -> W(x,5).
func futureRead() Fixture {
	b := NewBuilder()
	b.Txn(0, R("x", 5), W("x", 5))
	return pre("FutureRead", FutureRead, b.Build())
}

// Figure 5d: R(x,0) -> W(x,1) -> W(x,2) -> R(x,1): the final read returns
// the transaction's own earlier, overwritten write.
func notMyLastWrite() Fixture {
	b := NewBuilder("x")
	b.Txn(0, R("x", 0), W("x", 1), W("x", 2), R("x", 1))
	return pre("NotMyLastWrite", NotMyLastWrite, b.Build())
}

// Figure 5e: T writes x but then reads T”s value instead of its own.
func notMyOwnWrite() Fixture {
	b := NewBuilder("x")
	b.Txn(0, R("x", 0), W("x", 1))            // T'
	b.Txn(1, R("x", 0), W("x", 2), R("x", 1)) // T reads T''s 1 after writing 2
	return pre("NotMyOwnWrite", NotMyOwnWrite, b.Build())
}

// Figure 5f: T reads a value that the writer later overwrote (G1b).
func intermediateRead() Fixture {
	b := NewBuilder("x")
	b.Txn(0, R("x", 0), W("x", 1), W("x", 2)) // T'
	b.Txn(1, R("x", 1))                       // T reads the intermediate 1
	return pre("IntermediateRead", IntermediateRead, b.Build())
}

// Figure 5g: T reads x twice and receives different values.
func nonRepeatableReads() Fixture {
	b := NewBuilder("x")
	b.Txn(0, R("x", 0), W("x", 1)) // T1
	b.Txn(1, R("x", 0), W("x", 2)) // T2 (diverging writes make values available)
	b.Txn(2, R("x", 1), R("x", 2)) // T reads 1 then 2
	return pre("NonRepeatableReads", NonRepeatableReads, b.Build())
}

// Figure 5h: T3 misses the effect of the preceding transaction T2 in the
// same session: cycle T2 -SO-> T3 -RW(x)-> T2.
func sessionGuaranteeViolation() Fixture {
	b := NewBuilder("x")
	b.Txn(0, R("x", 0), W("x", 1)) // T1
	b.Txn(1, R("x", 1), W("x", 2)) // T2
	b.Txn(1, R("x", 1))            // T3, same session as T2, misses T2
	// T3's stale read breaks read-your-writes and causality, but the
	// write/read dependencies alone are acyclic and nothing is fractured.
	return dep("SessionGuaranteeViolation", b.Build(), true, true, false, false)
}

// Figure 5i: T3 reads y from T2 and then x from T1, although T2 overwrote
// T1 on x: cycle T2 -WR(y)-> T3 -RW(x)-> T2.
func nonMonotonicRead() Fixture {
	b := NewBuilder("x", "y")
	b.Txn(0, R("x", 0), W("x", 1))                       // T1
	b.Txn(1, R("x", 1), W("x", 2), R("y", 0), W("y", 3)) // T2
	b.Txn(2, R("y", 3), R("x", 1))                       // T3
	// T3 observes T2's y but a strictly older x than T2's: a fractured
	// view of T2's update, so the history already fails Read Atomic.
	return dep("NonMonotonicRead", b.Build(), true, true, true, false)
}

// Figure 5j: T1 updates both x and y but T2 observes only the x update:
// cycle T1 -WR(x)-> T2 -RW(y)-> T1.
func fracturedRead() Fixture {
	b := NewBuilder("x", "y")
	b.Txn(0, R("x", 0), W("x", 1), R("y", 0), W("y", 2)) // T1
	b.Txn(1, R("x", 1), R("y", 0))                       // T2
	// The defining Read Atomic violation: only RC survives.
	return dep("FracturedRead", b.Build(), true, true, true, false)
}

// Figure 5k: T3 sees T2's effect on y but misses T1's effect on x, which
// T2 saw: cycle T2 -WR(y)-> T3 -RW(x)-> T1 -WR(x)-> T2 ... compressed to
// the SI-forbidden shape with a single RW edge.
func causalityViolation() Fixture {
	b := NewBuilder("x", "y")
	b.Txn(0, R("x", 0), W("x", 1))            // T1
	b.Txn(1, R("x", 1), R("y", 0), W("y", 2)) // T2 sees T1
	b.Txn(2, R("y", 2), R("x", 0))            // T3 sees T2 but not T1
	// T3's view is atomic per writer (it sees T2's whole update and none
	// of T1's y... T1 wrote only x), so RA holds; causality does not.
	return dep("CausalityViolation", b.Build(), true, true, false, false)
}

// Figure 5l: concurrent T1, T2 write x and y; T3 observes only T1, T4
// observes only T2.
func longFork() Fixture {
	b := NewBuilder("x", "y")
	b.Txn(0, R("x", 0), W("x", 1)) // T1
	b.Txn(1, R("y", 0), W("y", 2)) // T2
	b.Txn(2, R("x", 1), R("y", 0)) // T3
	b.Txn(3, R("x", 0), R("y", 2)) // T4
	// The two forks are causally incomparable: every weak rung passes,
	// the history first fails at SI.
	return dep("LongFork", b.Build(), true, false, false, false)
}

// Figure 5m: T1 and T2 both read x from ⊥T and write different values: the
// DIVERGENCE pattern; one update is lost.
func lostUpdate() Fixture {
	b := NewBuilder("x")
	b.Txn(0, R("x", 0), W("x", 1)) // T1
	b.Txn(1, R("x", 0), W("x", 2)) // T2
	b.Txn(2, R("x", 2))            // T3 observes T2
	// Divergence is rejected exactly at SI; the concurrent updates are
	// causally incomparable, so the weak rungs all pass.
	return dep("LostUpdate", b.Build(), true, false, false, false)
}

// Figure 5n: T1 and T2 read both x and y and then write x and y
// respectively: admitted by SI, rejected by SER.
func writeSkew() Fixture {
	b := NewBuilder("x", "y")
	b.Txn(0, R("x", 0), R("y", 0), W("x", 1)) // T1
	b.Txn(1, R("x", 0), R("y", 0), W("y", 2)) // T2
	return dep("WriteSkew", b.Build(), false, false, false, false)
}

// G1c: T1 and T2 each read the other's write, closing a cycle of pure
// write/read dependencies — the one dependency anomaly Read Committed
// itself forbids. Every rung of the lattice is violated.
func g1cCycle() Fixture {
	b := NewBuilder("x", "y")
	b.Txn(0, R("x", 0), W("x", 1), R("y", 2)) // T1 reads T2's y
	b.Txn(1, R("y", 0), W("y", 2), R("x", 1)) // T2 reads T1's x
	return dep("G1cCycle", b.Build(), true, true, true, true)
}

// A serializable history that violates only real-time order: T1 reads
// the value that T2 — which starts after T1 finishes — later writes.
// Only SSER rejects it; its strongest satisfied level is SER.
func realTimeViolation() Fixture {
	b := NewBuilder("x")
	b.TimedTxn(0, 10, 20, R("x", 1))            // T1 finishes before T2 starts
	b.TimedTxn(1, 30, 40, R("x", 0), W("x", 1)) // T2
	return Fixture{Name: "RealTimeViolation", H: b.Build(), ViolatesSSER: true}
}

// SerialHistory returns a small, obviously correct history: n transactions
// executed one after another in a single session, each incrementing a
// round-robin key. It satisfies every isolation level and is used as a
// positive control in tests.
func SerialHistory(n int, keys ...Key) *History {
	if len(keys) == 0 {
		keys = []Key{"x"}
	}
	b := NewBuilder(keys...)
	last := make(map[Key]Value)
	var ts int64 = 10
	for i := 0; i < n; i++ {
		k := keys[i%len(keys)]
		v := last[k]
		nv := Value(1000 + i)
		b.TimedTxn(0, ts, ts+5, R(k, v), W(k, nv))
		last[k] = nv
		ts += 10
	}
	return b.Build()
}

// BlindWriteHistory returns a history whose every transaction blindly
// writes one fresh value to a single key, sessions×perSession in all.
// With no reads, writer pairs cannot be coalesced into RMW chains, so
// the constraint-solving baselines (Cobra, PolySI) face a quadratic
// number of undetermined write orders — deliberately expensive for them
// while remaining a valid, serializable history. Used as a negative
// control for deadline/cancellation tests.
func BlindWriteHistory(sessions, perSession int) *History {
	b := NewBuilder()
	v := Value(1)
	for s := 0; s < sessions; s++ {
		for i := 0; i < perSession; i++ {
			b.Txn(s, W("x", v))
			v++
		}
	}
	return b.Build()
}
