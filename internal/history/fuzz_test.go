package history

import (
	"bytes"
	"io"
	"testing"
)

// fuzzSeeds returns serialized fixtures in every codec the sniffer
// recognizes, plus truncated and corrupted variants: the shapes the
// mutator grows the corpus from.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	h := ndjsonFixture()
	var nd, js, tx bytes.Buffer
	if err := WriteNDJSON(&nd, h); err != nil {
		tb.Fatal(err)
	}
	if err := WriteJSON(&js, h); err != nil {
		tb.Fatal(err)
	}
	if err := WriteText(&tx, h); err != nil {
		tb.Fatal(err)
	}
	seeds := [][]byte{nd.Bytes(), js.Bytes(), tx.Bytes()}
	// Truncations at awkward offsets: mid-header, mid-record, mid-line.
	for _, cut := range []int{1, 7, nd.Len() / 2, nd.Len() - 3} {
		if cut > 0 && cut < nd.Len() {
			seeds = append(seeds, nd.Bytes()[:cut])
		}
	}
	seeds = append(seeds,
		[]byte(""),
		[]byte("{\"mtc\":"),
		[]byte("garbage that is neither json nor a history\n"),
		[]byte("{\"mtc\":\"history\",\"version\":1,\"sessions\":-5}\n"),
	)
	return seeds
}

// FuzzStreamReader drives the NDJSON incremental decoder with arbitrary
// bytes: any input must either stream a structurally valid history or
// return an error — never panic, never hand back a Txn that breaks the
// builder's invariants.
func FuzzStreamReader(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			if _, err := sr.Next(); err != nil {
				if err != io.EOF {
					return // malformed record surfaced as an error: fine
				}
				break
			}
		}
		// The stream decoded fully; the assembled history must be
		// structurally well-formed.
		h, err := ReadNDJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("ReadNDJSON accepted a structurally invalid history: %v", err)
		}
	})
}

// FuzzReadAuto drives the format sniffer plus all three decoders:
// arbitrary bytes must yield either an error or a Validate-clean
// history, regardless of which codec the sniffer picks.
func FuzzReadAuto(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadAuto(bytes.NewReader(data))
		if err != nil {
			return
		}
		if h == nil {
			t.Fatal("ReadAuto returned nil history with nil error")
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("ReadAuto accepted a structurally invalid history: %v", err)
		}
	})
}
