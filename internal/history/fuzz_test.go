package history

import (
	"bytes"
	"compress/gzip"
	"io"
	"reflect"
	"testing"
)

// fuzzSeeds returns serialized fixtures in every codec the sniffer
// recognizes, plus truncated and corrupted variants: the shapes the
// mutator grows the corpus from.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	h := ndjsonFixture()
	var nd, js, tx bytes.Buffer
	if err := WriteNDJSON(&nd, h); err != nil {
		tb.Fatal(err)
	}
	if err := WriteJSON(&js, h); err != nil {
		tb.Fatal(err)
	}
	if err := WriteText(&tx, h); err != nil {
		tb.Fatal(err)
	}
	seeds := [][]byte{nd.Bytes(), js.Bytes(), tx.Bytes()}
	// Truncations at awkward offsets: mid-header, mid-record, mid-line.
	for _, cut := range []int{1, 7, nd.Len() / 2, nd.Len() - 3} {
		if cut > 0 && cut < nd.Len() {
			seeds = append(seeds, nd.Bytes()[:cut])
		}
	}
	seeds = append(seeds,
		[]byte(""),
		[]byte("{\"mtc\":"),
		[]byte("garbage that is neither json nor a history\n"),
		[]byte("{\"mtc\":\"history\",\"version\":1,\"sessions\":-5}\n"),
	)
	return seeds
}

// FuzzStreamReader drives the NDJSON incremental decoder with arbitrary
// bytes: any input must either stream a structurally valid history or
// return an error — never panic, never hand back a Txn that breaks the
// builder's invariants.
func FuzzStreamReader(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			if _, err := sr.Next(); err != nil {
				if err != io.EOF {
					return // malformed record surfaced as an error: fine
				}
				break
			}
		}
		// The stream decoded fully; the assembled history must be
		// structurally well-formed.
		h, err := ReadNDJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("ReadNDJSON accepted a structurally invalid history: %v", err)
		}
	})
}

// mtcbFuzzSeeds returns MTCB-shaped seeds: valid documents (plain and
// gzip-wrapped), truncations at awkward offsets (mid-header, mid-key
// table, mid-varint, missing end record), a corrupt-varint tail, and a
// duplicated key table.
func mtcbFuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	var mb bytes.Buffer
	if err := WriteMTCB(&mb, ndjsonFixture()); err != nil {
		tb.Fatal(err)
	}
	doc := mb.Bytes()
	seeds := [][]byte{doc}
	for _, cut := range []int{1, 5, 9, len(doc) / 2, len(doc) - 1} {
		if cut > 0 && cut < len(doc) {
			seeds = append(seeds, doc[:cut])
		}
	}
	var zb bytes.Buffer
	zw := gzip.NewWriter(&zb)
	if _, err := zw.Write(doc); err != nil {
		tb.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		tb.Fatal(err)
	}
	seeds = append(seeds,
		zb.Bytes(),
		[]byte(MTCBMagic),
		[]byte(MTCBMagic+"\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\x7f"), // corrupt varint header
		[]byte(MTCBMagic+"\x01\x00\x02\x01x\x01x\x00"),                   // duplicate key-table entries
		[]byte(MTCBMagic+"\x02\x00\x00\x00"),                             // future version
	)
	return seeds
}

// FuzzBinaryReader drives the MTCB decoder with arbitrary bytes: any
// input must either decode to a structurally valid history — with the
// indexed fast path agreeing with the plain one — or return an error;
// never panic, never silently accept a truncated document.
func FuzzBinaryReader(f *testing.F) {
	for _, s := range mtcbFuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewBinaryReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for {
			if _, err := sr.Next(); err != nil {
				if err != io.EOF {
					return // malformed record surfaced as an error: fine
				}
				break
			}
		}
		// The stream decoded fully; the assembled history must be
		// structurally well-formed, and the zero-copy indexed decode
		// must accept it too and agree on the transactions.
		h, err := ReadMTCB(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("ReadMTCB accepted a structurally invalid history: %v", err)
		}
		ix, err := ReadMTCBIndexed(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("plain decode accepted but indexed decode rejected: %v", err)
		}
		if !reflect.DeepEqual(ix.History(), h) {
			t.Fatal("indexed decode diverged from plain decode")
		}
		// Frame decoding through an arena must agree as well.
		fr, err := NewBinaryFrameReader(bytes.NewReader(data), NewIngestArena())
		if err != nil {
			t.Fatalf("frame reader rejected what ReadMTCB accepted: %v", err)
		}
		for i := 0; ; i++ {
			tx, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("frame decode error after plain decode succeeded: %v", err)
			}
			if !reflect.DeepEqual(tx, h.Txns[i]) {
				t.Fatalf("frame txn %d diverged from plain decode", i)
			}
		}
	})
}

// FuzzReadAuto drives the format sniffer plus all three decoders:
// arbitrary bytes must yield either an error or a Validate-clean
// history, regardless of which codec the sniffer picks.
func FuzzReadAuto(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := ReadAuto(bytes.NewReader(data))
		if err != nil {
			return
		}
		if h == nil {
			t.Fatal("ReadAuto returned nil history with nil error")
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("ReadAuto accepted a structurally invalid history: %v", err)
		}
	})
}
