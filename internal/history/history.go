// Package history defines the client-observable execution model used by
// every checker in this repository: operations, transactions, sessions and
// histories (Definition 1 and 2 of the paper), together with the internal
// consistency (INT) axiom, detection of the intra-transactional and G1
// anomalies that the MTC pipeline pre-checks, mini-transaction validation
// (Definitions 8 and 9), and a JSON codec for saving and loading histories.
package history

import (
	"fmt"
	"sort"
)

// Key identifies an object in the key-value data model.
type Key string

// Value is the value read from or written to an object. Unique-value
// histories never write the same value twice to the same key.
type Value int64

// OpKind distinguishes reads from writes.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
)

// String returns "R" or "W".
func (k OpKind) String() string {
	if k == OpRead {
		return "R"
	}
	return "W"
}

// Op is a single read or write in a transaction, in program order.
type Op struct {
	Kind  OpKind `json:"k"`
	Key   Key    `json:"key"`
	Value Value  `json:"v"`
}

// String renders the operation as R(key,value) or W(key,value).
func (o Op) String() string { return fmt.Sprintf("%s(%s,%d)", o.Kind, o.Key, o.Value) }

// Txn is a transaction: a sequence of operations in program order plus the
// metadata the checkers need (session, real-time interval, commit status).
// ID is the transaction's index in History.Txns.
type Txn struct {
	ID        int   `json:"id"`
	Session   int   `json:"sess"`
	Ops       []Op  `json:"ops"`
	Start     int64 `json:"start"`  // wall-clock start, ns
	Finish    int64 `json:"finish"` // wall-clock finish, ns
	Committed bool  `json:"committed"`
}

// Reads returns the first external read of each key: the value returned by
// the first read of the key that happens before any write to the key in
// this transaction. This is the T ⊢ R(x,v) predicate of the paper.
func (t *Txn) Reads() map[Key]Value {
	out := make(map[Key]Value)
	written := make(map[Key]bool)
	for _, op := range t.Ops {
		switch op.Kind {
		case OpRead:
			if _, seen := out[op.Key]; !seen && !written[op.Key] {
				out[op.Key] = op.Value
			}
		case OpWrite:
			written[op.Key] = true
		}
	}
	return out
}

// Writes returns the last value written to each key: the T ⊢ W(x,v)
// predicate of the paper.
func (t *Txn) Writes() map[Key]Value {
	out := make(map[Key]Value)
	for _, op := range t.Ops {
		if op.Kind == OpWrite {
			out[op.Key] = op.Value
		}
	}
	return out
}

// WritesAll returns every value this transaction writes per key, in
// program order (needed to detect IntermediateRead).
func (t *Txn) WritesAll() map[Key][]Value {
	out := make(map[Key][]Value)
	for _, op := range t.Ops {
		if op.Kind == OpWrite {
			out[op.Key] = append(out[op.Key], op.Value)
		}
	}
	return out
}

// ReadsKey reports whether the transaction reads key x before writing it.
func (t *Txn) ReadsKey(x Key) bool {
	for _, op := range t.Ops {
		if op.Key == x {
			return op.Kind == OpRead
		}
	}
	return false
}

// String renders the transaction compactly, e.g. "T3[s0]{R(x,1) W(x,2)}".
func (t *Txn) String() string {
	s := fmt.Sprintf("T%d[s%d]{", t.ID, t.Session)
	for i, op := range t.Ops {
		if i > 0 {
			s += " "
		}
		s += op.String()
	}
	if !t.Committed {
		s += "} (aborted)"
	} else {
		s += "}"
	}
	return s
}

// History is a set of transactions grouped into sessions (Definition 2).
// Txns[i].ID == i always holds. Sessions[s] lists transaction IDs in
// session order. If HasInit is true, Txns[0] is the special initial
// transaction ⊥T that installs initial values for all objects and precedes
// every other transaction in session order.
//
// The real-time order RT is derived from the Start/Finish fields:
// T1 -RT-> T2 iff T1.Finish < T2.Start. Histories produced by synthetic
// generators that do not model time leave Start == Finish == 0, which
// yields an empty RT order.
type History struct {
	Txns     []Txn   `json:"txns"`
	Sessions [][]int `json:"sessions"`
	HasInit  bool    `json:"has_init"`
}

// NumCommitted returns the number of committed transactions.
func (h *History) NumCommitted() int {
	n := 0
	for i := range h.Txns {
		if h.Txns[i].Committed {
			n++
		}
	}
	return n
}

// Keys returns the sorted set of keys touched anywhere in the history.
func (h *History) Keys() []Key {
	set := map[Key]struct{}{}
	for i := range h.Txns {
		for _, op := range h.Txns[i].Ops {
			set[op.Key] = struct{}{}
		}
	}
	out := make([]Key, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks structural well-formedness: IDs match indices, sessions
// reference valid committed-or-aborted transactions exactly once, and the
// init transaction (when present) is Txns[0], committed and write-only.
func (h *History) Validate() error {
	for i := range h.Txns {
		if h.Txns[i].ID != i {
			return fmt.Errorf("history: Txns[%d].ID = %d, want %d", i, h.Txns[i].ID, i)
		}
	}
	seen := make([]bool, len(h.Txns))
	for s, ids := range h.Sessions {
		for _, id := range ids {
			if id < 0 || id >= len(h.Txns) {
				return fmt.Errorf("history: session %d references unknown txn %d", s, id)
			}
			if seen[id] {
				return fmt.Errorf("history: txn %d appears in more than one session slot", id)
			}
			seen[id] = true
			if h.Txns[id].Session != s {
				return fmt.Errorf("history: txn %d has Session=%d but listed in session %d", id, h.Txns[id].Session, s)
			}
		}
		for j := 1; j < len(ids); j++ {
			a, b := &h.Txns[ids[j-1]], &h.Txns[ids[j]]
			if a.Finish != 0 && b.Start != 0 && a.Finish > b.Start {
				return fmt.Errorf("history: session %d not time-ordered: T%d finish %d > T%d start %d", s, a.ID, a.Finish, b.ID, b.Start)
			}
		}
	}
	if h.HasInit {
		if len(h.Txns) == 0 {
			return fmt.Errorf("history: HasInit with no transactions")
		}
		init := &h.Txns[0]
		if !init.Committed {
			return fmt.Errorf("history: init transaction aborted")
		}
		for _, op := range init.Ops {
			if op.Kind != OpWrite {
				return fmt.Errorf("history: init transaction contains a read %v", op)
			}
		}
		if seen[0] {
			return fmt.Errorf("history: init transaction must not belong to a session list")
		}
	}
	for i, ok := range seen {
		if !ok && !(h.HasInit && i == 0) {
			return fmt.Errorf("history: txn %d not in any session", i)
		}
	}
	return nil
}

// SessionOrder invokes fn for every direct session-order edge (a, b):
// consecutive transactions of each session, plus an edge from the init
// transaction to the first transaction of every session when HasInit.
// Only committed transactions participate.
func (h *History) SessionOrder(fn func(a, b int)) {
	for _, ids := range h.Sessions {
		prev := -1
		if h.HasInit {
			prev = 0
		}
		for _, id := range ids {
			if !h.Txns[id].Committed {
				continue
			}
			if prev >= 0 {
				fn(prev, id)
			}
			prev = id
		}
	}
}

// RealTimeOrder invokes fn(a, b) for every pair of committed transactions
// with a.Finish < b.Start. This is the Θ(n²) enumeration the paper's
// CheckSSER uses. Transactions with zero timestamps never participate.
func (h *History) RealTimeOrder(fn func(a, b int)) {
	for i := range h.Txns {
		a := &h.Txns[i]
		if !a.Committed || a.Finish == 0 {
			continue
		}
		for j := range h.Txns {
			if i == j {
				continue
			}
			b := &h.Txns[j]
			if !b.Committed || b.Start == 0 {
				continue
			}
			if a.Finish < b.Start {
				fn(i, j)
			}
		}
	}
}

// WriterIndex maps every (key, value) pair written by a committed
// transaction to the writer's ID. The second return value lists (key,
// value) pairs written by more than one committed transaction, i.e.
// violations of the unique-value assumption (Definition 9).
type WriterIndex struct {
	byKV map[Key]map[Value]int
}

// BuildWriterIndex indexes all committed writers. Duplicate writes of the
// same (key, value) by different transactions are reported in dups; the
// index keeps the first writer encountered.
func BuildWriterIndex(h *History) (idx WriterIndex, dups []Op) {
	idx.byKV = make(map[Key]map[Value]int)
	for i := range h.Txns {
		t := &h.Txns[i]
		if !t.Committed {
			continue
		}
		for _, op := range t.Ops {
			if op.Kind != OpWrite {
				continue
			}
			m := idx.byKV[op.Key]
			if m == nil {
				m = make(map[Value]int)
				idx.byKV[op.Key] = m
			}
			if _, ok := m[op.Value]; ok {
				// A second write of the same (key, value) pair anywhere in
				// the history violates the unique-value assumption.
				dups = append(dups, op)
				continue
			}
			m[op.Value] = i
		}
	}
	return idx, dups
}

// Writer returns the committed transaction that wrote value v to key x,
// or -1 if none did.
func (w WriterIndex) Writer(x Key, v Value) int {
	m, ok := w.byKV[x]
	if !ok {
		return -1
	}
	id, ok := m[v]
	if !ok {
		return -1
	}
	return id
}

// WritersOf returns the IDs of committed transactions writing key x in no
// particular order.
func (w WriterIndex) WritersOf(x Key) []int {
	set := map[int]struct{}{}
	//mtc:nondeterministic-ok deduplicating into a set; the result is sorted below
	for _, id := range w.byKV[x] {
		set[id] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
