package history

import (
	"bytes"
	"reflect"
	"testing"
)

func TestTxnReadsWrites(t *testing.T) {
	tx := Txn{Ops: []Op{R("x", 1), W("x", 2), R("x", 2), R("y", 7), W("x", 3)}}
	reads := tx.Reads()
	if len(reads) != 2 || reads["x"] != 1 || reads["y"] != 7 {
		t.Fatalf("Reads = %v", reads)
	}
	writes := tx.Writes()
	if len(writes) != 1 || writes["x"] != 3 {
		t.Fatalf("Writes = %v", writes)
	}
	all := tx.WritesAll()
	if !reflect.DeepEqual(all["x"], []Value{2, 3}) {
		t.Fatalf("WritesAll = %v", all)
	}
	if !tx.ReadsKey("y") || tx.ReadsKey("z") {
		t.Fatal("ReadsKey wrong")
	}
}

func TestTxnReadsIgnoresPostWriteReads(t *testing.T) {
	tx := Txn{Ops: []Op{W("x", 2), R("x", 2)}}
	if len(tx.Reads()) != 0 {
		t.Fatalf("read after own write must not count as external read: %v", tx.Reads())
	}
}

func TestBuilderAndValidate(t *testing.T) {
	b := NewBuilder("x", "y")
	t1 := b.Txn(0, R("x", 0), W("x", 1))
	t2 := b.Txn(1, R("y", 0))
	h := b.Build()
	if t1 != 1 || t2 != 2 {
		t.Fatalf("ids = %d,%d", t1, t2)
	}
	if !h.HasInit || len(h.Txns) != 3 {
		t.Fatalf("unexpected history %+v", h)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumCommitted() != 3 {
		t.Fatalf("NumCommitted = %d", h.NumCommitted())
	}
	keys := h.Keys()
	if len(keys) != 2 || keys[0] != "x" || keys[1] != "y" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestValidateCatchesBadID(t *testing.T) {
	h := &History{Txns: []Txn{{ID: 5, Committed: true}}, Sessions: [][]int{{0}}}
	if err := h.Validate(); err == nil {
		t.Fatal("want error for mismatched ID")
	}
}

func TestValidateCatchesDuplicateSessionEntry(t *testing.T) {
	h := &History{
		Txns:     []Txn{{ID: 0, Session: 0, Committed: true}},
		Sessions: [][]int{{0, 0}},
	}
	if err := h.Validate(); err == nil {
		t.Fatal("want error for duplicate session entry")
	}
}

func TestSessionOrderSkipsAborted(t *testing.T) {
	b := NewBuilder("x")
	b.Txn(0, R("x", 0), W("x", 1))
	b.AbortedTxn(0, R("x", 1), W("x", 2))
	b.Txn(0, R("x", 1), W("x", 3))
	h := b.Build()
	var edges [][2]int
	h.SessionOrder(func(a, c int) { edges = append(edges, [2]int{a, c}) })
	// init -> T1, T1 -> T3 (T2 aborted, skipped)
	want := [][2]int{{0, 1}, {1, 3}}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("SO edges = %v, want %v", edges, want)
	}
}

func TestRealTimeOrder(t *testing.T) {
	b := NewBuilder()
	b.TimedTxn(0, 10, 20, R("x", 1))
	b.TimedTxn(1, 30, 40, R("x", 1))
	b.TimedTxn(2, 15, 35, R("x", 1)) // overlaps both
	h := b.Build()
	var edges [][2]int
	h.RealTimeOrder(func(a, c int) { edges = append(edges, [2]int{a, c}) })
	want := [][2]int{{0, 1}}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("RT edges = %v, want %v", edges, want)
	}
}

func TestWriterIndex(t *testing.T) {
	b := NewBuilder("x")
	b.Txn(0, R("x", 0), W("x", 1))
	b.AbortedTxn(0, R("x", 1), W("x", 2))
	h := b.Build()
	idx, dups := BuildWriterIndex(h)
	if len(dups) != 0 {
		t.Fatalf("dups = %v", dups)
	}
	if idx.Writer("x", 0) != 0 || idx.Writer("x", 1) != 1 {
		t.Fatal("wrong writers")
	}
	if idx.Writer("x", 2) != -1 {
		t.Fatal("aborted write must not be indexed")
	}
	if idx.Writer("y", 0) != -1 {
		t.Fatal("unknown key")
	}
	if got := idx.WritersOf("x"); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("WritersOf = %v", got)
	}
}

func TestWriterIndexDuplicates(t *testing.T) {
	b := NewBuilder()
	b.Txn(0, R("x", 7), W("x", 7)) // future read, and...
	b.Txn(1, R("x", 7), W("x", 7)) // ...a duplicate (x,7) writer
	h := b.Build()
	_, dups := BuildWriterIndex(h)
	if len(dups) != 1 {
		t.Fatalf("want 1 dup, got %v", dups)
	}
}

func TestCheckInternalCleanHistory(t *testing.T) {
	h := SerialHistory(20, "x", "y", "z")
	if as := CheckInternal(h); len(as) != 0 {
		t.Fatalf("clean history reported anomalies: %v", as)
	}
}

func TestCheckInternalDetectsEachPreCheckAnomaly(t *testing.T) {
	for _, f := range Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			as := CheckInternal(f.H)
			if f.PreCheck {
				if len(as) == 0 {
					t.Fatalf("expected pre-check anomaly %s, got none", f.AnomalyAt)
				}
				found := false
				for _, a := range as {
					if a.Kind == f.AnomalyAt {
						found = true
					}
				}
				if !found {
					t.Fatalf("expected %s among %v", f.AnomalyAt, as)
				}
			} else {
				if len(as) != 0 {
					t.Fatalf("dependency-level fixture must pass pre-check, got %v", as)
				}
			}
		})
	}
}

func TestCheckInternalIntermediateRead(t *testing.T) {
	b := NewBuilder("x")
	b.Txn(0, R("x", 0), W("x", 1), W("x", 2))
	b.Txn(1, R("x", 1))
	as := CheckInternal(b.Build())
	if len(as) != 1 || as[0].Kind != IntermediateRead || as[0].Txn != 2 {
		t.Fatalf("anomalies = %v", as)
	}
}

func TestCheckInternalReadOwnWriteOK(t *testing.T) {
	b := NewBuilder("x")
	b.Txn(0, R("x", 0), W("x", 1), R("x", 1))
	if as := CheckInternal(b.Build()); len(as) != 0 {
		t.Fatalf("reading own last write is fine, got %v", as)
	}
}

func TestCheckInternalRepeatableReadOK(t *testing.T) {
	b := NewBuilder("x")
	b.Txn(0, R("x", 0), R("x", 0))
	if as := CheckInternal(b.Build()); len(as) != 0 {
		t.Fatalf("repeated equal reads are fine, got %v", as)
	}
}

func TestIsMiniTransaction(t *testing.T) {
	cases := []struct {
		ops  []Op
		want bool
	}{
		{[]Op{R("x", 0)}, true},
		{[]Op{R("x", 0), W("x", 1)}, true},
		{[]Op{R("x", 0), R("y", 0)}, true},
		{[]Op{R("x", 0), R("y", 0), W("x", 1), W("y", 2)}, true},
		{[]Op{R("x", 0), R("y", 0), W("y", 2), W("x", 1)}, true},
		{[]Op{W("x", 1)}, false},                                  // write without preceding read
		{[]Op{R("x", 0), W("y", 1)}, false},                       // write of unread key
		{[]Op{R("x", 0), R("y", 0), R("z", 0)}, false},            // three reads
		{[]Op{R("x", 0), W("x", 1), W("x", 2), W("x", 3)}, false}, // three writes
		{[]Op{}, false}, // empty
	}
	for i, c := range cases {
		tx := Txn{Ops: c.ops}
		if got := IsMiniTransaction(&tx); got != c.want {
			t.Fatalf("case %d: IsMiniTransaction(%v) = %v, want %v", i, c.ops, got, c.want)
		}
	}
}

func TestValidateMT(t *testing.T) {
	for _, f := range Fixtures() {
		// All fixtures are MT histories by construction.
		if f.Name == "NotMyLastWrite" || f.Name == "IntermediateRead" {
			// These contain a 4-op transaction with two writes on one key,
			// which is a legal MT shape; ValidateMT should still accept
			// except for duplicate values - none here.
			continue
		}
		if err := ValidateMT(f.H); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
	}
	// Non-MT: general transaction with 3 reads.
	b := NewBuilder("x", "y", "z")
	b.Txn(0, R("x", 0), R("y", 0), R("z", 0))
	if err := ValidateMT(b.Build()); err == nil {
		t.Fatal("want non-MT error")
	}
	// Duplicate values.
	b2 := NewBuilder()
	b2.Txn(0, R("x", 3), W("x", 3))
	b2.Txn(1, R("x", 3), W("x", 3))
	if err := ValidateMT(b2.Build()); err == nil {
		t.Fatal("want duplicate-value error")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	h := SerialHistory(10, "x", "y")
	var buf bytes.Buffer
	if err := WriteJSON(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, got) {
		t.Fatal("JSON round trip mismatch")
	}
}

func TestTextRoundTrip(t *testing.T) {
	for _, f := range Fixtures() {
		var buf bytes.Buffer
		if err := WriteText(&buf, f.H); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		got, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if !reflect.DeepEqual(f.H, got) {
			t.Fatalf("%s: text round trip mismatch\nwant %+v\ngot  %+v", f.Name, f.H, got)
		}
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"r x 1\n",                       // op before header
		"txn 0 s0 0 0 C\nbogus x 1\n",   // unknown directive
		"txn 1 s0 0 0 C\n",              // out-of-order id
		"txn 0 s0 0 0\n",                // malformed header
		"txn 0 s0 0 0 C\nr x notanum\n", // bad value
	}
	for i, c := range cases {
		if _, err := ReadText(bytes.NewBufferString(c)); err == nil {
			t.Fatalf("case %d: want parse error", i)
		}
	}
}

func TestFixtureByName(t *testing.T) {
	if FixtureByName("WriteSkew") == nil {
		t.Fatal("WriteSkew fixture missing")
	}
	if FixtureByName("NoSuchThing") != nil {
		t.Fatal("unknown fixture must be nil")
	}
}

func TestFixtureCount(t *testing.T) {
	// The 14 anomaly histories of Table I plus the per-rung lattice
	// fixtures (G1cCycle, RealTimeViolation).
	if n := len(Fixtures()); n != 16 {
		t.Fatalf("want 16 fixtures, got %d", n)
	}
}

func TestAnomalyStrings(t *testing.T) {
	a := Anomaly{Kind: ThinAirRead, Txn: 3, Key: "x", Value: 9}
	if a.String() != "ThinAirRead in T3 on R(x,9)" {
		t.Fatalf("String = %q", a.String())
	}
	d := Anomaly{Kind: DuplicateWrite, Txn: 1, Key: "x", Value: 2}
	if d.String() != "DuplicateWrite in T1 on W(x,2)" {
		t.Fatalf("String = %q", d.String())
	}
	kinds := []AnomalyKind{ThinAirRead, AbortedRead, FutureRead, NotMyLastWrite,
		NotMyOwnWrite, IntermediateRead, NonRepeatableReads, DuplicateWrite}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestTxnString(t *testing.T) {
	tx := Txn{ID: 2, Session: 1, Ops: []Op{R("x", 1), W("x", 2)}, Committed: true}
	if tx.String() != "T2[s1]{R(x,1) W(x,2)}" {
		t.Fatalf("String = %q", tx.String())
	}
	tx.Committed = false
	if tx.String() != "T2[s1]{R(x,1) W(x,2)} (aborted)" {
		t.Fatalf("String = %q", tx.String())
	}
}

func TestSaveLoadFile(t *testing.T) {
	h := SerialHistory(5, "x")
	path := t.TempDir() + "/h.json"
	if err := SaveFile(path, h); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, got) {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("want decode error")
	}
	// Valid JSON, invalid history (bad ID).
	bad := `{"txns":[{"id":5,"sess":0,"ops":[],"start":0,"finish":0,"committed":true}],"sessions":[[0]],"has_init":false}`
	if _, err := ReadJSON(bytes.NewBufferString(bad)); err == nil {
		t.Fatal("want validation error")
	}
}

func TestTimedAbortedTxn(t *testing.T) {
	b := NewBuilder("x")
	id := b.TimedAbortedTxn(0, 5, 9, R("x", 0))
	h := b.Build()
	if h.Txns[id].Committed || h.Txns[id].Start != 5 || h.Txns[id].Finish != 9 {
		t.Fatalf("aborted txn: %+v", h.Txns[id])
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}
