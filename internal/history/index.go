package history

import (
	"slices"
	"sort"
)

// KeyID is a dense interned key identifier. The Index assigns ids in
// lexicographic key order, so sorting a column by KeyID sorts it by key
// name — the property the merge-join edge derivations in internal/core
// and internal/polygraph rely on for deterministic, map-free iteration.
type KeyID int32

// Interner assigns dense int32 ids to keys in first-seen order. It is
// the lightweight interning layer shared by Index (which afterwards
// remaps ids into sorted order) and by consumers that only need dense
// ids, like shard.Split's union-find over keys.
type Interner struct {
	ids   map[Key]KeyID
	names []Key
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{ids: make(map[Key]KeyID)}
}

// Intern returns the id of k, assigning the next dense id on first sight.
func (it *Interner) Intern(k Key) KeyID {
	if id, ok := it.ids[k]; ok {
		return id
	}
	id := KeyID(len(it.names))
	it.ids[k] = id
	it.names = append(it.names, k)
	return id
}

// Lookup returns the id of k without interning, and whether it is known.
func (it *Interner) Lookup(k Key) (KeyID, bool) {
	id, ok := it.ids[k]
	return id, ok
}

// Len returns the number of interned keys.
func (it *Interner) Len() int { return len(it.names) }

// Name returns the key with id. It panics on out-of-range ids.
func (it *Interner) Name(id KeyID) Key { return it.names[id] }

// Index is a columnar, immutable view of a History built once per check:
// keys are interned to dense KeyIDs (in lexicographic order), each
// committed transaction's first-external-read and last-write footprints
// are stored as parallel (KeyID, Value) column slices sorted by KeyID in
// one shared arena (no per-transaction maps), and every committed write
// operation is indexed into per-key postings sorted by value, subsuming
// BuildWriterIndex. Aborted writes get their own postings for G1a
// classification.
//
// The footprints decide exactly the predicates of the map-based
// accessors: Reads(t) enumerates Txn.Reads() sorted by key, Writes(t)
// enumerates Txn.Writes() sorted by key, Writer matches
// WriterIndex.Writer, and Dups matches BuildWriterIndex's dups — an
// equivalence the randomized tests in index_test.go pin down.
type Index struct {
	h  *History
	it *Interner // names sorted lexicographically; KeyID == sorted rank

	// Per-txn footprint columns: transaction t's reads occupy
	// readKey[readOff[t]:readOff[t+1]] (parallel readVal), sorted by
	// KeyID; likewise writes. Aborted transactions have empty footprints.
	readKey  []KeyID
	readVal  []Value
	readOff  []int32
	writeKey []KeyID
	writeVal []Value
	writeOff []int32

	// Committed write-op postings: slot s holds the unique (key, value)
	// pair slotVal[s] of key k for s in [slotOff[k], slotOff[k+1]),
	// sorted by value within the key segment, written first by
	// slotTxn[s]. One slot per distinct (key, value) — duplicate write
	// ops land in dups instead, keeping the first writer, exactly as
	// BuildWriterIndex does.
	slotVal []Value
	slotTxn []int32
	slotOff []int32

	// Aborted write postings, same shape (last aborted writer wins, as
	// in CheckInternal's aborted map; only existence is ever queried).
	abVal []Value
	abTxn []int32
	abOff []int32

	// writersTxn[writersOff[k]:writersOff[k+1]] lists the distinct
	// committed writers of key k, ascending.
	writersTxn []int32
	writersOff []int32

	dups []Op
}

// NewIndex builds the columnar index of h. Cost is O(ops log ops) for
// the postings sort; everything downstream of it is allocation-free
// column iteration.
func NewIndex(h *History) *Index {
	// Intern in first-seen order, recording each op's id into a flat
	// column, then remap the column to lexicographic rank so KeyID
	// order equals key-name order. The builders below consume the
	// column by position — no per-op map lookup after this pass.
	nOps := 0
	for i := range h.Txns {
		nOps += len(h.Txns[i].Ops)
	}
	first := NewInterner()
	opIDs := make([]KeyID, nOps)
	pos := 0
	for i := range h.Txns {
		for _, op := range h.Txns[i].Ops {
			opIDs[pos] = first.Intern(op.Key)
			pos++
		}
	}
	nk := first.Len()
	sortedNames := make([]Key, nk)
	copy(sortedNames, first.names)
	sort.Slice(sortedNames, func(i, j int) bool { return sortedNames[i] < sortedNames[j] })
	remap := make([]KeyID, nk) // first-seen id -> sorted rank
	sorted := NewInterner()
	for _, k := range sortedNames {
		sorted.Intern(k)
	}
	for id, k := range first.names {
		remap[id], _ = sorted.Lookup(k)
	}
	remapColumn(opIDs, remap)
	return newIndexColumns(h, sorted, opIDs)
}

// newIndexColumns assembles an Index from a sorted interner and the
// flat per-op KeyID column (one id per op of h, in transaction-then-
// program order). NewIndex derives the column by interning; the MTCB
// indexed decoder hands over the remapped wire ids directly.
func newIndexColumns(h *History, it *Interner, opIDs []KeyID) *Index {
	ix := &Index{h: h, it: it}
	ix.buildFootprints(h, opIDs)
	ix.buildPostings(h, opIDs)
	return ix
}

// buildFootprints fills the per-txn read/write columns.
//
//mtc:hotpath — columnar index construction; the 9-allocs-per-10k-txn contract starts here
func (ix *Index) buildFootprints(h *History, opIDs []KeyID) {
	n, nOps := len(h.Txns), len(opIDs)
	ix.readOff = make([]int32, n+1)
	ix.writeOff = make([]int32, n+1)
	ix.readKey = make([]KeyID, 0, nOps/2)
	ix.readVal = make([]Value, 0, nOps/2)
	ix.writeKey = make([]KeyID, 0, nOps/2)
	ix.writeVal = make([]Value, 0, nOps/2)

	// Generation-stamped scratch, reused across transactions: gen[k]
	// tracks the txn that last touched key k (split by read/write so a
	// read after an own write is excluded, matching Txn.Reads).
	nk := ix.it.Len()
	readGen := make([]int32, nk)
	writeGen := make([]int32, nk)
	writeAt := make([]int32, nk) // write column position of the txn's last write
	for i := range readGen {
		readGen[i], writeGen[i] = -1, -1
	}

	pos := 0 // opIDs cursor; advances over aborted txns' ops too
	for t := range h.Txns {
		ix.readOff[t] = int32(len(ix.readKey))
		ix.writeOff[t] = int32(len(ix.writeKey))
		txn := &h.Txns[t]
		if !txn.Committed {
			pos += len(txn.Ops)
			continue
		}
		gen := int32(t)
		for j, op := range txn.Ops {
			k := opIDs[pos+j]
			switch op.Kind {
			case OpRead:
				if writeGen[k] != gen && readGen[k] != gen {
					readGen[k] = gen
					ix.readKey = append(ix.readKey, k)
					ix.readVal = append(ix.readVal, op.Value)
				}
			case OpWrite:
				if writeGen[k] != gen {
					writeGen[k] = gen
					writeAt[k] = int32(len(ix.writeKey))
					ix.writeKey = append(ix.writeKey, k)
					ix.writeVal = append(ix.writeVal, op.Value)
				} else {
					ix.writeVal[writeAt[k]] = op.Value // last write wins
				}
			}
		}
		pos += len(txn.Ops)
		sortColumn(ix.readKey[ix.readOff[t]:], ix.readVal[ix.readOff[t]:])
		sortColumn(ix.writeKey[ix.writeOff[t]:], ix.writeVal[ix.writeOff[t]:])
	}
	ix.readOff[n] = int32(len(ix.readKey))
	ix.writeOff[n] = int32(len(ix.writeKey))
}

// sortColumn sorts a (key, value) column tail by KeyID. Footprints are
// tiny (mini-transactions touch at most two keys; only ⊥T is wide), so
// insertion sort beats sort.Sort without allocating a closure pair.
func sortColumn(keys []KeyID, vals []Value) {
	for i := 1; i < len(keys); i++ {
		k, v := keys[i], vals[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1], vals[j+1] = keys[j], vals[j]
			j--
		}
		keys[j+1], vals[j+1] = k, v
	}
}

// kvt is a scratch triple for postings construction.
type kvt struct {
	k KeyID
	v Value
	t int32
}

// buildPostings fills the committed and aborted write-op postings, the
// duplicate-write list, and the per-key writer lists.
//
//mtc:hotpath — postings merge-join feeding every Writer/WritersOf lookup
func (ix *Index) buildPostings(h *History, opIDs []KeyID) {
	nOps := len(opIDs)
	committed := make([]kvt, 0, nOps/2)
	var aborted []kvt
	pos := 0 // opIDs cursor, aligned with the nested op iteration
	for t := range h.Txns {
		txn := &h.Txns[t]
		for j, op := range txn.Ops {
			if op.Kind != OpWrite {
				continue
			}
			e := kvt{k: opIDs[pos+j], v: op.Value, t: int32(t)}
			if txn.Committed {
				committed = append(committed, e)
			} else {
				aborted = append(aborted, e) //mtc:alloc-ok aborted writes are rare; growth here is off the common path
			}
		}
		pos += len(txn.Ops)
	}
	nk := ix.it.Len()

	// Committed postings: sort by (key, value), collapse to unique
	// slots, then claim winners in op order so dups match
	// BuildWriterIndex exactly (first op occurrence wins; a repeated
	// write of the same pair inside one transaction is a dup too).
	sorted := make([]kvt, len(committed))
	copy(sorted, committed)
	sort.Slice(sorted, func(i, j int) bool { //mtc:alloc-ok one boxed slice header per index build

		if sorted[i].k != sorted[j].k {
			return sorted[i].k < sorted[j].k
		}
		return sorted[i].v < sorted[j].v
	})
	ix.slotOff = make([]int32, nk+1)
	prevK, prevV := KeyID(-1), Value(0)
	for _, e := range sorted {
		if e.k == prevK && e.v == prevV {
			continue // duplicate pair; winner decided below
		}
		prevK, prevV = e.k, e.v
		ix.slotVal = append(ix.slotVal, e.v)
		ix.slotTxn = append(ix.slotTxn, -1)
		ix.slotOff[e.k+1]++
	}
	for k := 0; k < nk; k++ {
		ix.slotOff[k+1] += ix.slotOff[k]
	}
	claimed := make([]bool, len(ix.slotVal))
	for _, e := range committed {
		s := ix.slot(e.k, e.v)
		if !claimed[s] {
			claimed[s] = true
			ix.slotTxn[s] = e.t
		} else {
			ix.dups = append(ix.dups, Op{Kind: OpWrite, Key: ix.it.Name(e.k), Value: e.v})
		}
	}

	// Aborted postings: existence lookups only; last writer wins to
	// mirror CheckInternal's aborted map.
	sort.SliceStable(aborted, func(i, j int) bool { //mtc:alloc-ok one boxed slice header per index build

		if aborted[i].k != aborted[j].k {
			return aborted[i].k < aborted[j].k
		}
		return aborted[i].v < aborted[j].v
	})
	ix.abOff = make([]int32, nk+1)
	prevK, prevV = KeyID(-1), Value(0)
	for _, e := range aborted {
		if e.k == prevK && e.v == prevV {
			ix.abTxn[len(ix.abTxn)-1] = e.t // stable sort: last duplicate is the latest txn
			continue
		}
		prevK, prevV = e.k, e.v
		ix.abVal = append(ix.abVal, e.v)
		ix.abTxn = append(ix.abTxn, e.t)
		ix.abOff[e.k+1]++
	}
	for k := 0; k < nk; k++ {
		ix.abOff[k+1] += ix.abOff[k]
	}

	// Distinct committed writers per key, ascending.
	ix.writersOff = make([]int32, nk+1)
	scratch := make([]int32, 0, 8)
	for k := 0; k < nk; k++ {
		ix.writersOff[k] = int32(len(ix.writersTxn))
		scratch = scratch[:0]
		for s := ix.slotOff[k]; s < ix.slotOff[k+1]; s++ {
			scratch = append(scratch, ix.slotTxn[s])
		}
		slices.Sort(scratch) // generic sort: no per-key interface boxing

		for i, w := range scratch {
			if i == 0 || scratch[i-1] != w {
				ix.writersTxn = append(ix.writersTxn, w)
			}
		}
	}
	ix.writersOff[nk] = int32(len(ix.writersTxn))
}

// slot returns the postings slot of (k, v), or -1 when no committed
// transaction wrote v to k.
func (ix *Index) slot(k KeyID, v Value) int32 {
	lo, hi := ix.slotOff[k], ix.slotOff[k+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.slotVal[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < ix.slotOff[k+1] && ix.slotVal[lo] == v {
		return lo
	}
	return -1
}

// History returns the indexed history.
func (ix *Index) History() *History { return ix.h }

// NumTxns returns the number of transactions (committed and aborted).
func (ix *Index) NumTxns() int { return len(ix.h.Txns) }

// NumKeys returns the number of distinct keys in the history.
func (ix *Index) NumKeys() int { return ix.it.Len() }

// KeyName returns the interned name of id.
func (ix *Index) KeyName(id KeyID) Key { return ix.it.Name(id) }

// KeyIDOf returns the id of k and whether the history touches it.
func (ix *Index) KeyIDOf(k Key) (KeyID, bool) { return ix.it.Lookup(k) }

// Reads returns transaction t's first-external-read footprint as
// parallel slices sorted by KeyID: the columnar form of Txn.Reads().
// The slices alias the shared arena and must not be mutated.
func (ix *Index) Reads(t int) ([]KeyID, []Value) {
	return ix.readKey[ix.readOff[t]:ix.readOff[t+1]], ix.readVal[ix.readOff[t]:ix.readOff[t+1]]
}

// Writes returns transaction t's final-write footprint as parallel
// slices sorted by KeyID: the columnar form of Txn.Writes().
func (ix *Index) Writes(t int) ([]KeyID, []Value) {
	return ix.writeKey[ix.writeOff[t]:ix.writeOff[t+1]], ix.writeVal[ix.writeOff[t]:ix.writeOff[t+1]]
}

// ReadKeys returns just the key column of transaction t's read
// footprint, for passes that re-walk reads without the values.
func (ix *Index) ReadKeys(t int) []KeyID {
	return ix.readKey[ix.readOff[t]:ix.readOff[t+1]]
}

// ReadVal returns the value transaction t first externally read from
// key k, if any: the columnar Txn.ReadsKey.
func (ix *Index) ReadVal(t int, k KeyID) (Value, bool) {
	keys, vals := ix.Reads(t)
	if i := searchKey(keys, k); i >= 0 {
		return vals[i], true
	}
	return 0, false
}

// WriteVal returns the last value transaction t wrote to key k, if any.
func (ix *Index) WriteVal(t int, k KeyID) (Value, bool) {
	keys, vals := ix.Writes(t)
	if i := searchKey(keys, k); i >= 0 {
		return vals[i], true
	}
	return 0, false
}

// searchKey finds k in a sorted KeyID column, or -1.
func searchKey(keys []KeyID, k KeyID) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(keys) && keys[lo] == k {
		return lo
	}
	return -1
}

// Writer returns the committed transaction that wrote value v to key k,
// or -1: the columnar WriterIndex.Writer.
func (ix *Index) Writer(k KeyID, v Value) int {
	if s := ix.slot(k, v); s >= 0 {
		return int(ix.slotTxn[s])
	}
	return -1
}

// WriterByName is Writer for un-interned callers; unknown keys have no
// writer.
func (ix *Index) WriterByName(x Key, v Value) int {
	if k, ok := ix.it.Lookup(x); ok {
		return ix.Writer(k, v)
	}
	return -1
}

// AbortedWriter reports whether some aborted transaction wrote v to k.
func (ix *Index) AbortedWriter(k KeyID, v Value) bool {
	lo, hi := ix.abOff[k], ix.abOff[k+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.abVal[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < ix.abOff[k+1] && ix.abVal[lo] == v
}

// WritersOf returns the distinct committed writers of key k, ascending.
// The slice aliases the shared arena and must not be mutated.
func (ix *Index) WritersOf(k KeyID) []int32 {
	return ix.writersTxn[ix.writersOff[k]:ix.writersOff[k+1]]
}

// NumReads returns the total number of read-footprint entries across
// every transaction: the length of the shared read column. Derivation
// passes size their per-read scratch arenas with it.
func (ix *Index) NumReads() int { return len(ix.readKey) }

// NumWriterSlots returns the total number of (key, distinct committed
// writer) pairs: the index space of WriterSlot.
func (ix *Index) NumWriterSlots() int { return len(ix.writersTxn) }

// WriterSlot returns a dense history-wide id for the (key, writer)
// pair, or -1 when w is not a committed writer of k. Dense per-pair
// state (like divergence tracking) indexes a flat array with it instead
// of allocating a map keyed by (writer, key).
func (ix *Index) WriterSlot(k KeyID, w int32) int {
	lo, hi := ix.writersOff[k], ix.writersOff[k+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if ix.writersTxn[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < ix.writersOff[k+1] && ix.writersTxn[lo] == w {
		return int(lo)
	}
	return -1
}

// Dups lists committed write operations that violated the unique-value
// assumption, in operation order, first writer retained — identical to
// BuildWriterIndex's second return.
func (ix *Index) Dups() []Op { return ix.dups }

// SortedKeys returns every key of the history in lexicographic order
// (KeyID order): the columnar History.Keys.
func (ix *Index) SortedKeys() []Key { return ix.it.names }
