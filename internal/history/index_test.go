package history

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// randomHistory builds an adversarial random history: duplicate writes,
// repeated reads, read-after-own-write, write-write chains on one key,
// aborted transactions, and an optional init transaction — everything
// the columnar index must reproduce bit-identically to the map-based
// accessors.
func randomHistory(rng *rand.Rand) *History {
	nKeys := 1 + rng.Intn(12)
	keys := make([]Key, nKeys)
	for i := range keys {
		// Unsorted, collision-prone names so interning has to re-rank.
		keys[i] = Key(fmt.Sprintf("k%c%d", 'a'+rng.Intn(4), rng.Intn(9)))
	}
	h := &History{}
	if rng.Intn(2) == 0 {
		ops := make([]Op, 0, nKeys)
		seen := map[Key]bool{}
		for _, k := range keys {
			if !seen[k] {
				seen[k] = true
				ops = append(ops, Op{Kind: OpWrite, Key: k, Value: 0})
			}
		}
		h.HasInit = true
		h.Txns = append(h.Txns, Txn{ID: 0, Session: -1, Ops: ops, Committed: true})
	}
	nSess := 1 + rng.Intn(4)
	h.Sessions = make([][]int, nSess)
	nTxn := 1 + rng.Intn(30)
	for i := 0; i < nTxn; i++ {
		id := len(h.Txns)
		s := rng.Intn(nSess)
		nOps := 1 + rng.Intn(5)
		ops := make([]Op, nOps)
		for j := range ops {
			op := Op{Key: keys[rng.Intn(nKeys)], Value: Value(rng.Intn(20))}
			if rng.Intn(2) == 0 {
				op.Kind = OpWrite
			}
			ops[j] = op
		}
		h.Txns = append(h.Txns, Txn{ID: id, Session: s, Ops: ops, Committed: rng.Intn(5) != 0})
		h.Sessions[s] = append(h.Sessions[s], id)
	}
	return h
}

// TestIndexEquivalence pins the columnar index to the map-based
// accessors on randomized histories: footprints, writer lookups, dups,
// writers-of, and aborted postings must all agree.
func TestIndexEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 250; trial++ {
		h := randomHistory(rng)
		ix := NewIndex(h)
		widx, dups := BuildWriterIndex(h)

		// Key universe: sorted, dense, lexicographic.
		wantKeys := h.Keys()
		gotKeys := ix.SortedKeys()
		if len(gotKeys) != len(wantKeys) {
			t.Fatalf("trial %d: %d keys, want %d", trial, len(gotKeys), len(wantKeys))
		}
		for i, k := range wantKeys {
			if gotKeys[i] != k {
				t.Fatalf("trial %d: SortedKeys[%d] = %q, want %q", trial, i, gotKeys[i], k)
			}
			id, ok := ix.KeyIDOf(k)
			if !ok || int(id) != i || ix.KeyName(id) != k {
				t.Fatalf("trial %d: interning of %q broken (id %d ok %v)", trial, k, id, ok)
			}
		}

		for ti := range h.Txns {
			txn := &h.Txns[ti]
			rk, rv := ix.Reads(ti)
			wk, wv := ix.Writes(ti)
			if !txn.Committed {
				if len(rk) != 0 || len(wk) != 0 {
					t.Fatalf("trial %d txn %d: aborted txn has non-empty footprint", trial, ti)
				}
				continue
			}
			wantR, wantW := txn.Reads(), txn.Writes()
			if len(rk) != len(wantR) || len(wk) != len(wantW) {
				t.Fatalf("trial %d txn %d: footprint sizes (%d,%d), want (%d,%d)",
					trial, ti, len(rk), len(wk), len(wantR), len(wantW))
			}
			if !sort.SliceIsSorted(rk, func(i, j int) bool { return rk[i] < rk[j] }) ||
				!sort.SliceIsSorted(wk, func(i, j int) bool { return wk[i] < wk[j] }) {
				t.Fatalf("trial %d txn %d: footprint columns not sorted", trial, ti)
			}
			for i, k := range rk {
				if v, ok := wantR[ix.KeyName(k)]; !ok || v != rv[i] {
					t.Fatalf("trial %d txn %d: read (%s,%d) disagrees with Reads() (%d,%v)",
						trial, ti, ix.KeyName(k), rv[i], v, ok)
				}
			}
			for i, k := range wk {
				if v, ok := wantW[ix.KeyName(k)]; !ok || v != wv[i] {
					t.Fatalf("trial %d txn %d: write (%s,%d) disagrees with Writes() (%d,%v)",
						trial, ti, ix.KeyName(k), wv[i], v, ok)
				}
			}
			for k, v := range wantR {
				id, _ := ix.KeyIDOf(k)
				if got, ok := ix.ReadVal(ti, id); !ok || got != v {
					t.Fatalf("trial %d txn %d: ReadVal(%s) = (%d,%v), want (%d,true)", trial, ti, k, got, ok, v)
				}
			}
			for k, v := range wantW {
				id, _ := ix.KeyIDOf(k)
				if got, ok := ix.WriteVal(ti, id); !ok || got != v {
					t.Fatalf("trial %d txn %d: WriteVal(%s) = (%d,%v), want (%d,true)", trial, ti, k, got, ok, v)
				}
			}
		}

		// Writer postings vs WriterIndex, probing every (key, value) in a
		// generous grid plus every actually-written pair.
		for _, k := range wantKeys {
			id, _ := ix.KeyIDOf(k)
			for v := Value(-1); v < 21; v++ {
				if got, want := ix.Writer(id, v), widx.Writer(k, v); got != want {
					t.Fatalf("trial %d: Writer(%s,%d) = %d, want %d", trial, k, v, got, want)
				}
				if got, want := ix.WriterByName(k, v), widx.Writer(k, v); got != want {
					t.Fatalf("trial %d: WriterByName(%s,%d) = %d, want %d", trial, k, v, got, want)
				}
			}
			wo := ix.WritersOf(id)
			want := widx.WritersOf(k)
			if len(wo) != len(want) {
				t.Fatalf("trial %d: WritersOf(%s) len %d, want %d", trial, k, len(wo), len(want))
			}
			for i := range wo {
				if int(wo[i]) != want[i] {
					t.Fatalf("trial %d: WritersOf(%s)[%d] = %d, want %d", trial, k, i, wo[i], want[i])
				}
			}
		}
		if got, _ := ix.KeyIDOf(Key("no-such-key")); got != 0 {
			// Lookup miss must report ok=false; id value is unspecified but
			// the miss itself is what WriterByName relies on.
			if _, ok := ix.KeyIDOf(Key("no-such-key")); ok {
				t.Fatalf("trial %d: phantom key interned", trial)
			}
		}
		if ix.WriterByName(Key("no-such-key"), 0) != -1 {
			t.Fatalf("trial %d: writer for unknown key", trial)
		}

		// Duplicate-write reports: identical ops in identical order.
		gotDups := ix.Dups()
		if len(gotDups) != len(dups) {
			t.Fatalf("trial %d: %d dups, want %d", trial, len(gotDups), len(dups))
		}
		for i := range dups {
			if gotDups[i] != dups[i] {
				t.Fatalf("trial %d: dup[%d] = %v, want %v", trial, i, gotDups[i], dups[i])
			}
		}

		// Aborted postings vs a reference map.
		abort := map[Key]map[Value]bool{}
		for i := range h.Txns {
			txn := &h.Txns[i]
			if txn.Committed {
				continue
			}
			for _, op := range txn.Ops {
				if op.Kind != OpWrite {
					continue
				}
				if abort[op.Key] == nil {
					abort[op.Key] = map[Value]bool{}
				}
				abort[op.Key][op.Value] = true
			}
		}
		for _, k := range wantKeys {
			id, _ := ix.KeyIDOf(k)
			for v := Value(-1); v < 21; v++ {
				if got, want := ix.AbortedWriter(id, v), abort[k][v]; got != want {
					t.Fatalf("trial %d: AbortedWriter(%s,%d) = %v, want %v", trial, k, v, got, want)
				}
			}
		}
	}
}

// TestReadsKeyMatchesReads pins the allocation-free ReadsKey rewrite to
// the map-based predicate it replaced.
func TestReadsKeyMatchesReads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		h := randomHistory(rng)
		for ti := range h.Txns {
			txn := &h.Txns[ti]
			reads := txn.Reads()
			probe := map[Key]bool{}
			for _, op := range txn.Ops {
				probe[op.Key] = true
			}
			probe[Key("absent")] = true
			for k := range probe {
				_, want := reads[k]
				if got := txn.ReadsKey(k); got != want {
					t.Fatalf("trial %d txn %d: ReadsKey(%s) = %v, want %v (%s)", trial, ti, k, got, want, txn.String())
				}
			}
		}
	}
}
