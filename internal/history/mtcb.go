package history

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// MTCB is the binary columnar wire codec: the on-wire twin of the
// columnar Index. A document is a header block — magic, version,
// declared session count, and an interned key table written once — then
// per-transaction records whose operations are varint-encoded dense
// key ids and values. Transaction ids are implicit (records arrive in
// dense id order, like the NDJSON stream), keys are never repeated on
// the wire, and a one-byte end-of-stream record closes the document so
// a truncated tail is rejected instead of silently dropped — the binary
// analog of the NDJSON trailing-newline integrity check.
//
// Layout (all integers varint; uvarint unless marked zigzag):
//
//	magic   "MTCB"                        4 bytes
//	version 0x01                          1 byte
//	sessions declared session count       uvarint (0 = unknown)
//	keys    table length N                uvarint
//	N ×     key                           uvarint length + bytes
//	…records, one tag byte each:
//	0x01    transaction record:
//	        session (-1 = init)           zigzag
//	        start, finish                 zigzag ×2
//	        committed                     1 byte (0|1)
//	        ops count M                   uvarint
//	        M × { keyID<<1 | kind         uvarint   (kind: 0 read, 1 write)
//	              value }                 zigzag
//	0x02    key definition: appends the next table id (streaming
//	        writers that learn keys mid-stream)
//	0x00    end of stream
//
// WriteMTCB emits the key table in lexicographic order, so the wire ids
// ARE the sorted KeyID ranks of the columnar Index and ReadMTCBIndexed
// can append footprint columns in one pass with an identity remap — no
// map lookups per operation, no re-interning.
const MTCBMagic = "MTCB"

const mtcbVersion = 1

// Record tags.
const (
	mtcbTagEnd byte = 0x00
	mtcbTagTxn byte = 0x01
	mtcbTagKey byte = 0x02
)

// Decode guards: corrupt or adversarial input may declare absurd
// counts; these bound what a reader will allocate before the stream
// itself runs dry.
const (
	mtcbMaxKeyLen   = 1 << 20 // longest key accepted, bytes
	mtcbMaxSessions = 1 << 20 // highest session number accepted
	mtcbMaxOps      = 1 << 24 // most operations accepted in one transaction
	mtcbOpsPrealloc = 1 << 12 // ops preallocated before trusting a declared count
)

// Sentinel decode errors kept fmt-free so the op-decoding hot loop
// stays allocation-disciplined; callers wrap them with position info.
var (
	errMTCBKeyID     = errors.New("history: mtcb: op references unknown key id")
	errMTCBOpCount   = errors.New("history: mtcb: implausible op count")
	errMTCBCommitted = errors.New("history: mtcb: committed flag not 0 or 1")
)

// BinaryWriter emits an MTCB document one transaction at a time — the
// binary counterpart of StreamWriter. Keys already in the header table
// are referenced by id; a key first seen in a transaction is emitted as
// an inline key-definition record just before it.
type BinaryWriter struct {
	bw    *bufio.Writer
	it    *Interner // wire ids in emission order
	n     int       // transactions written
	vbuf  [binary.MaxVarintLen64]byte
	ended bool
}

// NewBinaryWriter starts an MTCB document on w with an empty key table;
// keys are defined inline as transactions introduce them. sessions > 0
// declares the stream's session count up front (arming a windowed
// streaming check's staleness horizon, like the NDJSON header); pass 0
// when it is not known.
func NewBinaryWriter(w io.Writer, sessions int) (*BinaryWriter, error) {
	return newBinaryWriter(w, sessions, nil)
}

// newBinaryWriter writes the header with the given key table. Keys must
// be distinct; WriteMTCB passes them sorted so wire ids equal the
// columnar Index's lexicographic ranks.
func newBinaryWriter(w io.Writer, sessions int, keys []Key) (*BinaryWriter, error) {
	bw := &BinaryWriter{bw: bufio.NewWriter(w), it: NewInterner()}
	if _, err := bw.bw.WriteString(MTCBMagic); err != nil {
		return nil, err
	}
	if err := bw.bw.WriteByte(mtcbVersion); err != nil {
		return nil, err
	}
	if sessions < 0 {
		sessions = 0
	}
	bw.putUvarint(uint64(sessions))
	bw.putUvarint(uint64(len(keys)))
	for _, k := range keys {
		bw.it.Intern(k)
		if err := bw.putString(string(k)); err != nil {
			return nil, err
		}
	}
	if bw.it.Len() != len(keys) {
		return nil, fmt.Errorf("history: mtcb: duplicate key in header table")
	}
	return bw, nil
}

func (w *BinaryWriter) putUvarint(v uint64) error {
	n := binary.PutUvarint(w.vbuf[:], v)
	_, err := w.bw.Write(w.vbuf[:n])
	return err
}

func (w *BinaryWriter) putVarint(v int64) error {
	n := binary.PutVarint(w.vbuf[:], v)
	_, err := w.bw.Write(w.vbuf[:n])
	return err
}

func (w *BinaryWriter) putString(s string) error {
	if err := w.putUvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := w.bw.WriteString(s)
	return err
}

// WriteTxn appends one transaction record, emitting inline
// key-definition records for keys the wire has not seen. IDs must
// arrive densely in order (t.ID == transactions written so far), and a
// session of -1 (the init transaction) is only legal first — the same
// contract as StreamWriter.WriteTxn.
func (w *BinaryWriter) WriteTxn(t Txn) error {
	if w.ended {
		return fmt.Errorf("history: mtcb: write after Close")
	}
	if t.ID != w.n {
		return fmt.Errorf("history: mtcb: txn id %d out of order (want %d)", t.ID, w.n)
	}
	if t.Session < -1 {
		return fmt.Errorf("history: mtcb: txn %d: negative session %d", t.ID, t.Session)
	}
	if t.Session == -1 && w.n != 0 {
		return fmt.Errorf("history: mtcb: init transaction must be first")
	}
	for _, op := range t.Ops {
		if _, ok := w.it.Lookup(op.Key); ok {
			continue
		}
		w.it.Intern(op.Key)
		w.bw.WriteByte(mtcbTagKey)
		if err := w.putString(string(op.Key)); err != nil {
			return err
		}
	}
	w.bw.WriteByte(mtcbTagTxn)
	w.putVarint(int64(t.Session))
	w.putVarint(t.Start)
	w.putVarint(t.Finish)
	committed := byte(0)
	if t.Committed {
		committed = 1
	}
	w.bw.WriteByte(committed)
	// bufio's error is sticky, so only the last write of the record
	// needs checking: an earlier failure resurfaces there.
	err := w.putUvarint(uint64(len(t.Ops)))
	for _, op := range t.Ops {
		id, _ := w.it.Lookup(op.Key)
		w.putUvarint(uint64(id)<<1 | uint64(op.Kind&1))
		err = w.putVarint(int64(op.Value))
	}
	if err != nil {
		return err
	}
	w.n++
	return nil
}

// Flush writes buffered records through without closing the document.
func (w *BinaryWriter) Flush() error { return w.bw.Flush() }

// Close writes the end-of-stream record and flushes. The document is
// not well-formed until Close returns nil.
func (w *BinaryWriter) Close() error {
	if w.ended {
		return nil
	}
	w.ended = true
	if err := w.bw.WriteByte(mtcbTagEnd); err != nil {
		return err
	}
	return w.bw.Flush()
}

// WriteMTCB serializes the whole history as one MTCB document (the
// one-shot counterpart of BinaryWriter). The key table is written
// sorted, so decoders that build a columnar Index get lexicographic
// wire ids for free.
func WriteMTCB(w io.Writer, h *History) error {
	bw, err := newBinaryWriter(w, len(h.Sessions), h.Keys())
	if err != nil {
		return err
	}
	for i := range h.Txns {
		t := h.Txns[i]
		if h.HasInit && i == 0 {
			t.Session = -1
		}
		if err := bw.WriteTxn(t); err != nil {
			return err
		}
	}
	return bw.Close()
}

// BinaryReader yields the transactions of an MTCB document one at a
// time, transparently decompressing gzip input (sniffed by magic bytes,
// like ReadAuto). It satisfies the core.TxnSource contract — Next until
// io.EOF — and declares the header's session count, so it composes with
// CheckStream and epoch-windowed compaction exactly as StreamReader
// does. Decoded Op.Key strings alias the interned key table: one string
// per distinct key per document, not per operation.
type BinaryReader struct {
	br       *bufio.Reader
	names    []Key
	seen     map[Key]struct{}
	declared int
	next     int
	nextOff  int // ops consumed so far (opIDs cursor)
	hasInit  bool
	sessions [][]int
	done     bool

	arena   *IngestArena
	collect bool
	opIDs   []KeyID // wire key id per op, in stream order (collect mode)
}

// NewBinaryReader validates the MTCB header, reads the key table, and
// positions the reader at the first record.
func NewBinaryReader(r io.Reader) (*BinaryReader, error) {
	return newBinaryReader(r, nil)
}

// NewBinaryFrameReader is NewBinaryReader with every decode allocation
// that can outlive the frame routed through a long-lived IngestArena:
// key strings intern session-wide and Op slices are carved from shared
// chunks. mtcserve batch ingest decodes each posted frame this way.
func NewBinaryFrameReader(r io.Reader, a *IngestArena) (*BinaryReader, error) {
	return newBinaryReader(r, a)
}

func newBinaryReader(r io.Reader, arena *IngestArena) (*BinaryReader, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("history: mtcb: gzip: %w", err)
		}
		br = bufio.NewReader(zr)
	}
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("history: mtcb: short magic: %w", err)
	}
	if string(magic[:]) != MTCBMagic {
		return nil, fmt.Errorf("history: mtcb: bad magic %q", magic[:])
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("history: mtcb: missing version: %w", err)
	}
	if version != mtcbVersion {
		return nil, fmt.Errorf("history: mtcb: unsupported version %d", version)
	}
	sr := &BinaryReader{br: br, arena: arena, seen: make(map[Key]struct{})}
	declared, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("history: mtcb: truncated header: %w", err)
	}
	if declared > mtcbMaxSessions {
		return nil, fmt.Errorf("history: mtcb: implausible session count %d", declared)
	}
	sr.declared = int(declared)
	nk, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("history: mtcb: truncated header: %w", err)
	}
	for i := uint64(0); i < nk; i++ {
		if err := sr.readKeyDef(); err != nil {
			return nil, err
		}
	}
	return sr, nil
}

// readKeyDef reads one key-table entry (from the header or an inline
// 0x02 record), interning through the arena when one is attached and
// rejecting duplicate entries — two wire ids for one key would let a
// corrupt stream smuggle distinct-looking ops onto the same key.
func (r *BinaryReader) readKeyDef() error {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("history: mtcb: truncated key table: %w", err)
	}
	if n > mtcbMaxKeyLen {
		return fmt.Errorf("history: mtcb: key length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return fmt.Errorf("history: mtcb: truncated key table: %w", err)
	}
	k := Key(buf)
	if r.arena != nil {
		k = r.arena.internKey(k)
	}
	if _, dup := r.seen[k]; dup {
		return fmt.Errorf("history: mtcb: duplicate key table entry %q", k)
	}
	r.seen[k] = struct{}{}
	r.names = append(r.names, k)
	return nil
}

// DeclaredSessions returns the session count the header declared, or 0
// when the writer did not know it up front.
func (r *BinaryReader) DeclaredSessions() int { return r.declared }

// HasInit reports whether the stream carried an init transaction. Only
// meaningful for the prefix consumed so far.
func (r *BinaryReader) HasInit() bool { return r.hasInit }

// NumTxns returns how many transactions have been consumed.
func (r *BinaryReader) NumTxns() int { return r.next }

// Next returns the next transaction in stream order, or io.EOF once the
// end-of-stream record has been consumed. EOF on the underlying reader
// before that record is a truncated document and fails loudly.
func (r *BinaryReader) Next() (Txn, error) {
	if r.done {
		return Txn{}, io.EOF
	}
	for {
		tag, err := r.br.ReadByte()
		if err != nil {
			if err == io.EOF {
				return Txn{}, fmt.Errorf("history: mtcb: truncated stream after %d txns (missing end-of-stream record)", r.next)
			}
			return Txn{}, err
		}
		switch tag {
		case mtcbTagEnd:
			r.done = true
			return Txn{}, io.EOF
		case mtcbTagKey:
			if err := r.readKeyDef(); err != nil {
				return Txn{}, err
			}
		case mtcbTagTxn:
			return r.readTxn()
		default:
			return Txn{}, fmt.Errorf("history: mtcb: record %d: unknown tag 0x%02x", r.next, tag)
		}
	}
}

// readTxn decodes one transaction record; the id is implicit.
func (r *BinaryReader) readTxn() (Txn, error) {
	sess, err := binary.ReadVarint(r.br)
	if err != nil {
		return Txn{}, r.truncated(err)
	}
	if sess < -1 || sess > mtcbMaxSessions {
		return Txn{}, fmt.Errorf("history: mtcb: txn %d: implausible session %d", r.next, sess)
	}
	if sess == -1 && r.next != 0 {
		return Txn{}, fmt.Errorf("history: mtcb: txn %d: init transaction must be first", r.next)
	}
	start, err := binary.ReadVarint(r.br)
	if err != nil {
		return Txn{}, r.truncated(err)
	}
	finish, err := binary.ReadVarint(r.br)
	if err != nil {
		return Txn{}, r.truncated(err)
	}
	committed, err := r.br.ReadByte()
	if err != nil {
		return Txn{}, r.truncated(err)
	}
	if committed > 1 {
		return Txn{}, fmt.Errorf("history: mtcb: txn %d: %w", r.next, errMTCBCommitted)
	}
	ops, err := r.readOps()
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Txn{}, r.truncated(err)
		}
		return Txn{}, fmt.Errorf("history: mtcb: txn %d: %w", r.next, err)
	}
	t := Txn{
		ID: r.next, Session: int(sess), Ops: ops,
		Start: start, Finish: finish, Committed: committed == 1,
	}
	if sess == -1 {
		r.hasInit = true
	} else {
		for len(r.sessions) <= int(sess) {
			r.sessions = append(r.sessions, nil)
		}
		r.sessions[sess] = append(r.sessions[sess], t.ID)
	}
	r.next++
	r.nextOff += len(ops)
	return t, nil
}

// readOps decodes a transaction's operation block. Key strings alias
// the interned table, the Ops slice comes from the arena when one is
// attached, and errors are the fmt-free sentinels above.
//
//mtc:hotpath — per-op decode loop; one Ops slice per txn (or none, from the arena), zero per-op allocation
func (r *BinaryReader) readOps() ([]Op, error) {
	n, err := binary.ReadUvarint(r.br)
	if err != nil {
		return nil, err
	}
	if n > mtcbMaxOps {
		return nil, errMTCBOpCount
	}
	if n == 0 {
		return nil, nil
	}
	var ops []Op
	exact := n <= mtcbOpsPrealloc
	if exact {
		// Declared count small enough to trust: allocate exactly (from
		// the arena when attached) and fill in place.
		if r.arena != nil {
			ops = r.arena.alloc(int(n))
		} else {
			ops = make([]Op, n) //mtc:alloc-ok the one per-txn allocation of the no-arena path
		}
	} else {
		// A count this large may be a lie from a corrupt stream: grow
		// only as fast as the stream actually delivers ops.
		ops = make([]Op, 0, mtcbOpsPrealloc)
	}
	for i := uint64(0); i < n; i++ {
		ku, err := binary.ReadUvarint(r.br)
		if err != nil {
			return nil, err
		}
		wire := ku >> 1
		if wire >= uint64(len(r.names)) {
			return nil, errMTCBKeyID
		}
		v, err := binary.ReadVarint(r.br)
		if err != nil {
			return nil, err
		}
		op := Op{Kind: OpKind(ku & 1), Key: r.names[wire], Value: Value(v)}
		if exact {
			ops[i] = op
		} else {
			ops = append(ops, op) //mtc:alloc-ok growth path only reachable past a 4096-op declared count
		}
		if r.collect {
			r.opIDs = append(r.opIDs, KeyID(wire)) //mtc:alloc-ok amortized stream-wide column, indexed-read mode only
		}
	}
	return ops, nil
}

// truncated wraps an unexpected end-of-input inside a record.
func (r *BinaryReader) truncated(err error) error {
	return fmt.Errorf("history: mtcb: truncated txn record %d: %w", r.next, err)
}

// drain consumes the rest of the stream into a validated History.
func (r *BinaryReader) drain() (*History, error) {
	var h History
	for {
		t, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		h.Txns = append(h.Txns, t)
	}
	h.Sessions = r.sessions
	// The header's declared session count restores sessions with no
	// transactions (a per-transaction encoding cannot witness them).
	for len(h.Sessions) < r.declared {
		h.Sessions = append(h.Sessions, nil)
	}
	h.HasInit = r.hasInit
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}

// ReadMTCB drains an MTCB document into a validated History (the
// one-shot counterpart of BinaryReader, used by ReadAuto).
func ReadMTCB(r io.Reader) (*History, error) {
	sr, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	return sr.drain()
}

// ReadMTCBIndexed drains an MTCB document straight into a columnar
// Index: the key table is interned once at header time and the
// footprint columns are appended in one pass over the wire ids, so no
// per-operation map lookup or re-intern happens anywhere. For documents
// written by WriteMTCB the table arrives pre-sorted and the id remap is
// the identity. The History behind the Index is reachable via
// Index.History().
func ReadMTCBIndexed(r io.Reader) (*Index, error) {
	sr, err := NewBinaryReader(r)
	if err != nil {
		return nil, err
	}
	sr.collect = true
	h, err := sr.drain()
	if err != nil {
		return nil, err
	}
	// Remap wire ids to lexicographic ranks. The sorted interner also
	// backs the Index's name lookups.
	nk := len(sr.names)
	sortedNames := make([]Key, nk)
	copy(sortedNames, sr.names)
	sort.Slice(sortedNames, func(i, j int) bool { return sortedNames[i] < sortedNames[j] })
	sorted := NewInterner()
	for _, k := range sortedNames {
		sorted.Intern(k)
	}
	remap := make([]KeyID, nk) // wire id -> sorted rank
	identity := true
	for id, k := range sr.names {
		remap[id], _ = sorted.Lookup(k)
		identity = identity && remap[id] == KeyID(id)
	}
	if !identity {
		remapColumn(sr.opIDs, remap)
	}
	return newIndexColumns(h, sorted, sr.opIDs), nil
}

// remapColumn rewrites a KeyID column in place through remap.
//
//mtc:hotpath — indexed-decode id remap, zero allocation
func remapColumn(ids []KeyID, remap []KeyID) {
	for i, id := range ids {
		ids[i] = remap[id]
	}
}

// IngestArena amortizes the decode allocations of many small MTCB
// frames feeding one long-lived consumer — an mtcserve streaming
// session. Key strings intern once per session instead of once per
// frame, and Op slices are carved from append-only chunks instead of
// one make per transaction. Handing arena-backed transactions to
// core.Incremental is safe because Add never retains the Ops slice (it
// copies what it keeps); the chunks die with the session.
type IngestArena struct {
	it   *Interner
	free []Op
}

// NewIngestArena returns an empty arena.
func NewIngestArena() *IngestArena { return &IngestArena{it: NewInterner()} }

// ingestArenaChunk is the Op count carved per chunk allocation.
const ingestArenaChunk = 4096

// alloc returns an n-op slice from the current chunk, cutting a fresh
// chunk when it runs dry. The capacity is clipped so callers cannot
// append into a neighbor's ops.
//
//mtc:hotpath — one chunk allocation per 4096 decoded ops
func (a *IngestArena) alloc(n int) []Op {
	if n > len(a.free) {
		if n >= ingestArenaChunk {
			return make([]Op, n) //mtc:alloc-ok oversized transactions get their own slice
		}
		a.free = make([]Op, ingestArenaChunk) //mtc:alloc-ok the amortized chunk cut
	}
	out := a.free[:n:n]
	a.free = a.free[n:]
	return out
}

// internKey returns the canonical session-wide string for k, letting
// each frame's key-table copies be collected after decode.
func (a *IngestArena) internKey(k Key) Key { return a.it.Name(a.it.Intern(k)) }

// NumKeys returns the number of distinct keys interned so far.
func (a *IngestArena) NumKeys() int { return a.it.Len() }
