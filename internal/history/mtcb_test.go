package history

import (
	"bytes"
	"compress/gzip"
	"io"
	"math/rand"
	"reflect"
	"testing"
)

// TestMTCBRoundTrip: the binary codec reproduces the fixture (and an
// init-free history) byte-for-byte through DeepEqual, like NDJSON.
func TestMTCBRoundTrip(t *testing.T) {
	for _, withInit := range []bool{true, false} {
		var h *History
		if withInit {
			h = ndjsonFixture()
		} else {
			b := NewBuilder()
			b.Txn(0, W("x", 1), R("x", 1))
			b.Txn(1, R("x", 1))
			h = b.Build()
		}
		var buf bytes.Buffer
		if err := WriteMTCB(&buf, h); err != nil {
			t.Fatalf("withInit=%v: write: %v", withInit, err)
		}
		got, err := ReadMTCB(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("withInit=%v: read: %v", withInit, err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("withInit=%v: round trip mismatch:\n got %+v\nwant %+v", withInit, got, h)
		}
	}
}

// TestMTCBRandomizedRoundTrip hammers the binary codec with the
// adversarial random histories the index equivalence suite uses,
// loading back through the ReadAuto sniffer.
func TestMTCBRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		h := randomHistory(rng)
		var buf bytes.Buffer
		if err := WriteMTCB(&buf, h); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ReadAuto(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("trial %d: round trip mismatch:\n got %+v\nwant %+v", trial, got, h)
		}
	}
}

// TestMTCBStreamingWriter: a BinaryWriter that learns keys as
// transactions arrive (inline key-definition records, no preloaded
// table) produces a document equal to the whole-history encoder's.
func TestMTCBStreamingWriter(t *testing.T) {
	h := ndjsonFixture()
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf, len(h.Sessions))
	if err != nil {
		t.Fatal(err)
	}
	for i := range h.Txns {
		tx := h.Txns[i]
		if h.HasInit && i == 0 {
			tx.Session = -1
		}
		if err := bw.WriteTxn(tx); err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	sr, err := NewBinaryReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.DeclaredSessions() != len(h.Sessions) {
		t.Fatalf("declared %d sessions, want %d", sr.DeclaredSessions(), len(h.Sessions))
	}
	got, err := sr.drain()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("streamed round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
	if !sr.HasInit() || sr.NumTxns() != len(h.Txns) {
		t.Fatalf("HasInit=%v NumTxns=%d, want true/%d", sr.HasInit(), sr.NumTxns(), len(h.Txns))
	}
}

// TestMTCBWriterEnforcesContract: dense ids, init first, no negative
// sessions, no writes after Close.
func TestMTCBWriterEnforcesContract(t *testing.T) {
	newW := func() *BinaryWriter {
		bw, err := NewBinaryWriter(io.Discard, 0)
		if err != nil {
			t.Fatal(err)
		}
		return bw
	}
	if err := newW().WriteTxn(Txn{ID: 3, Committed: true}); err == nil {
		t.Fatal("out-of-order id accepted")
	}
	if err := newW().WriteTxn(Txn{ID: 0, Session: -2, Committed: true}); err == nil {
		t.Fatal("session -2 accepted")
	}
	bw := newW()
	if err := bw.WriteTxn(Txn{ID: 0, Session: 0, Committed: true}); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteTxn(Txn{ID: 1, Session: -1, Committed: true}); err == nil {
		t.Fatal("late init accepted")
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteTxn(Txn{ID: 1, Session: 0, Committed: true}); err == nil {
		t.Fatal("write after Close accepted")
	}
}

// mtcbEncode serializes h, failing the test on error.
func mtcbEncode(t *testing.T, h *History) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMTCB(&buf, h); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMTCBRejectsTruncation: a document cut anywhere before the
// end-of-stream record must fail loudly, never decode silently short —
// the binary analog of the NDJSON truncated-final-line rejection.
func TestMTCBRejectsTruncation(t *testing.T) {
	doc := mtcbEncode(t, ndjsonFixture())
	for cut := 0; cut < len(doc); cut++ {
		if _, err := ReadMTCB(bytes.NewReader(doc[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(doc))
		}
	}
	if _, err := ReadMTCB(bytes.NewReader(doc)); err != nil {
		t.Fatalf("full document rejected: %v", err)
	}
}

// TestMTCBRejectsGarbage: structurally corrupt documents surface errors.
func TestMTCBRejectsGarbage(t *testing.T) {
	valid := mtcbEncode(t, ndjsonFixture())
	flip := func(off int, b byte) []byte {
		d := append([]byte(nil), valid...)
		d[off] = b
		return d
	}
	cases := map[string][]byte{
		"bad magic":       flip(0, 'X'),
		"bad version":     flip(4, 9),
		"empty":           {},
		"magic only":      []byte(MTCBMagic),
		"dup key table":   {'M', 'T', 'C', 'B', 1, 0, 2, 1, 'x', 1, 'x', 0x00},
		"unknown tag":     {'M', 'T', 'C', 'B', 1, 0, 0, 0x7f},
		"bad committed":   {'M', 'T', 'C', 'B', 1, 0, 0, 0x01, 0, 0, 0, 2, 0, 0x00},
		"unknown key id":  {'M', 'T', 'C', 'B', 1, 0, 0, 0x01, 0, 0, 0, 1, 1, 2, 2, 0x00},
		"late init":       {'M', 'T', 'C', 'B', 1, 0, 0, 0x01, 0, 0, 0, 1, 0, 0x01, 1, 0, 0, 1, 0, 0x00},
		"huge key length": {'M', 'T', 'C', 'B', 1, 0, 1, 0xff, 0xff, 0xff, 0xff, 0x7f},
	}
	for name, doc := range cases {
		if _, err := ReadMTCB(bytes.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestMTCBGzipTransparent: BinaryReader sniffs gzip on its own, like
// StreamReader and ReadAuto.
func TestMTCBGzipTransparent(t *testing.T) {
	h := ndjsonFixture()
	plain := mtcbEncode(t, h)
	var zipped bytes.Buffer
	zw := gzip.NewWriter(&zipped)
	if _, err := zw.Write(plain); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMTCB(bytes.NewReader(zipped.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatal("gzip round trip mismatch")
	}
	// And through the sniffer.
	got, err = ReadAuto(bytes.NewReader(zipped.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatal("gzip ReadAuto round trip mismatch")
	}
}

// TestMTCBIndexedEquivalence: ReadMTCBIndexed must produce an Index
// indistinguishable from NewIndex over the decoded history — same keys,
// footprints, writer postings, dups, aborted postings — on the
// randomized corpus. This is the zero-copy decode correctness contract.
func TestMTCBIndexedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 150; trial++ {
		h := randomHistory(rng)
		got, err := ReadMTCBIndexed(bytes.NewReader(mtcbEncode(t, h)))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(got.History(), h) {
			t.Fatalf("trial %d: decoded history mismatch", trial)
		}
		want := NewIndex(h)
		compareIndexes(t, trial, got, want)
	}
}

// compareIndexes asserts two indexes agree through every accessor.
func compareIndexes(t *testing.T, trial int, got, want *Index) {
	t.Helper()
	if !reflect.DeepEqual(got.SortedKeys(), want.SortedKeys()) {
		t.Fatalf("trial %d: SortedKeys %v vs %v", trial, got.SortedKeys(), want.SortedKeys())
	}
	if got.NumTxns() != want.NumTxns() || got.NumKeys() != want.NumKeys() ||
		got.NumReads() != want.NumReads() || got.NumWriterSlots() != want.NumWriterSlots() {
		t.Fatalf("trial %d: cardinality mismatch (%d,%d,%d,%d) vs (%d,%d,%d,%d)", trial,
			got.NumTxns(), got.NumKeys(), got.NumReads(), got.NumWriterSlots(),
			want.NumTxns(), want.NumKeys(), want.NumReads(), want.NumWriterSlots())
	}
	for ti := 0; ti < want.NumTxns(); ti++ {
		grk, grv := got.Reads(ti)
		wrk, wrv := want.Reads(ti)
		gwk, gwv := got.Writes(ti)
		wwk, wwv := want.Writes(ti)
		if !equalCols(grk, grv, wrk, wrv) || !equalCols(gwk, gwv, wwk, wwv) {
			t.Fatalf("trial %d txn %d: footprint mismatch\n reads (%v,%v) vs (%v,%v)\n writes (%v,%v) vs (%v,%v)",
				trial, ti, grk, grv, wrk, wrv, gwk, gwv, wwk, wwv)
		}
	}
	for id := KeyID(0); int(id) < want.NumKeys(); id++ {
		if got.KeyName(id) != want.KeyName(id) {
			t.Fatalf("trial %d: KeyName(%d) %q vs %q", trial, id, got.KeyName(id), want.KeyName(id))
		}
		if !reflect.DeepEqual(got.WritersOf(id), want.WritersOf(id)) {
			t.Fatalf("trial %d: WritersOf(%d) %v vs %v", trial, id, got.WritersOf(id), want.WritersOf(id))
		}
		for v := Value(-1); v < 21; v++ {
			if got.Writer(id, v) != want.Writer(id, v) {
				t.Fatalf("trial %d: Writer(%d,%d) %d vs %d", trial, id, v, got.Writer(id, v), want.Writer(id, v))
			}
			if got.AbortedWriter(id, v) != want.AbortedWriter(id, v) {
				t.Fatalf("trial %d: AbortedWriter(%d,%d) mismatch", trial, id, v)
			}
		}
	}
	if !reflect.DeepEqual(got.Dups(), want.Dups()) {
		t.Fatalf("trial %d: Dups %v vs %v", trial, got.Dups(), want.Dups())
	}
}

func equalCols(ak []KeyID, av []Value, bk []KeyID, bv []Value) bool {
	if len(ak) != len(bk) {
		return false
	}
	for i := range ak {
		if ak[i] != bk[i] || av[i] != bv[i] {
			return false
		}
	}
	return true
}

// TestMTCBIndexedUnsortedTable: a streaming writer's key table arrives
// in first-seen order; the indexed decode must still deliver
// lexicographic KeyIDs via the wire-id remap.
func TestMTCBIndexedUnsortedTable(t *testing.T) {
	b := NewBuilder()
	b.Txn(0, W("zebra", 1), W("apple", 2))
	b.Txn(0, R("zebra", 1), W("mango", 3))
	h := b.Build()
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf, len(h.Sessions))
	if err != nil {
		t.Fatal(err)
	}
	for i := range h.Txns {
		if err := bw.WriteTxn(h.Txns[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	ix, err := ReadMTCBIndexed(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	compareIndexes(t, 0, ix, NewIndex(h))
	if keys := ix.SortedKeys(); keys[0] != "apple" || keys[2] != "zebra" {
		t.Fatalf("keys not re-ranked lexicographically: %v", keys)
	}
}

// TestMTCBFrameArena: successive frames decoded through one IngestArena
// share interned key strings and chunked Op slices, and the decoded
// transactions still match a plain decode. Capacity clipping must keep
// one transaction's ops from bleeding into its neighbor's.
func TestMTCBFrameArena(t *testing.T) {
	arena := NewIngestArena()
	var all []Txn
	for frame := 0; frame < 3; frame++ {
		b := NewBuilder()
		b.Txn(0, W("x", Value(10*frame+1)), R("y", 0))
		b.Txn(1, W("y", Value(10*frame+2)))
		h := b.Build()
		doc := mtcbEncode(t, h)
		fr, err := NewBinaryFrameReader(bytes.NewReader(doc), arena)
		if err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
		for {
			tx, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("frame %d: %v", frame, err)
			}
			all = append(all, tx)
		}
	}
	if arena.NumKeys() != 2 {
		t.Fatalf("arena interned %d keys, want 2 (x, y shared across frames)", arena.NumKeys())
	}
	if len(all) != 6 {
		t.Fatalf("decoded %d txns, want 6", len(all))
	}
	// Earlier transactions must be unscathed by later frame decodes
	// (chunk carving, capacity clipping).
	if all[0].Ops[0] != (Op{Kind: OpWrite, Key: "x", Value: 1}) || all[0].Ops[1] != (Op{Kind: OpRead, Key: "y", Value: 0}) {
		t.Fatalf("first txn ops corrupted: %v", all[0].Ops)
	}
	if got := all[5].Ops[0]; got != (Op{Kind: OpWrite, Key: "y", Value: 22}) {
		t.Fatalf("last txn ops wrong: %v", got)
	}
	// Appending to one txn's ops must not clobber the next slice.
	probe := all[0].Ops
	_ = append(probe, Op{Key: "poison"})
	if all[1].Ops[0].Key == "poison" {
		t.Fatal("arena slices share capacity: append bled into neighbor")
	}
}

// TestMTCBDeclaredSessionsRestoreEmpties mirrors the NDJSON contract:
// a declared session count restores transaction-less sessions.
func TestMTCBDeclaredSessionsRestoreEmpties(t *testing.T) {
	h := &History{
		Txns:     []Txn{{ID: 0, Session: 0, Ops: []Op{W("x", 1)}, Committed: true}},
		Sessions: [][]int{{0}, nil, nil},
	}
	got, err := ReadMTCB(bytes.NewReader(mtcbEncode(t, h)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sessions) != 3 {
		t.Fatalf("restored %d sessions, want 3", len(got.Sessions))
	}
}
