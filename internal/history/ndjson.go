package history

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
)

// NDJSONHeader is the first line of the streaming NDJSON encoding: a
// self-identifying JSON object that lets ReadAuto tell the format apart
// from a whole-file JSON document without consuming the stream. Writers
// that know the session count up front declare it in the header
// ("sessions":N), which lets a windowed streaming check arm its
// staleness horizon for every session before the first record arrives.
const NDJSONHeader = `{"format":"mtc-ndjson","version":1}`

// The streaming NDJSON format holds one transaction per line — the
// header line above, then each Txn as a single-line JSON object in
// arrival order, every line terminated by '\n'. The init transaction,
// when present, comes first with "sess":-1 (the text format's
// convention); session lists are rebuilt from the per-transaction
// session numbers. Unlike the whole-file JSON codec, a consumer can
// verify a history of any length while holding one transaction at a
// time: StreamReader.Next feeds core.Incremental directly, composing
// with epoch-windowed compaction into a bounded-memory pipeline. The
// trailing newline of every record doubles as the integrity check — a
// truncated final line is rejected, never silently dropped.

// StreamWriter emits a history one transaction at a time.
type StreamWriter struct {
	bw *bufio.Writer
	n  int
}

// NewStreamWriter starts a streaming NDJSON document on w by emitting
// the header line. sessions > 0 declares the stream's session count in
// the header; pass 0 when it is not known up front.
func NewStreamWriter(w io.Writer, sessions int) (*StreamWriter, error) {
	sw := &StreamWriter{bw: bufio.NewWriter(w)}
	header := NDJSONHeader
	if sessions > 0 {
		header = fmt.Sprintf(`{"format":"mtc-ndjson","version":1,"sessions":%d}`, sessions)
	}
	if _, err := sw.bw.WriteString(header + "\n"); err != nil {
		return nil, err
	}
	return sw, nil
}

// WriteTxn appends one transaction. IDs must arrive densely in order
// (t.ID == number of transactions written so far), mirroring the
// History.Txns invariant; an init transaction is written with session
// -1 by WriteNDJSON and must be the first record.
func (sw *StreamWriter) WriteTxn(t Txn) error {
	if t.ID != sw.n {
		return fmt.Errorf("history: ndjson: txn id %d out of order (want %d)", t.ID, sw.n)
	}
	buf, err := json.Marshal(&t)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if _, err := sw.bw.Write(buf); err != nil {
		return err
	}
	sw.n++
	return nil
}

// Flush writes any buffered records through to the underlying writer.
func (sw *StreamWriter) Flush() error { return sw.bw.Flush() }

// WriteNDJSON serializes the whole history in the streaming NDJSON
// format (the one-shot counterpart of StreamWriter).
func WriteNDJSON(w io.Writer, h *History) error {
	sw, err := NewStreamWriter(w, len(h.Sessions))
	if err != nil {
		return err
	}
	for i := range h.Txns {
		t := h.Txns[i]
		if h.HasInit && i == 0 {
			t.Session = -1
		}
		if err := sw.WriteTxn(t); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// StreamReader yields the transactions of a streaming NDJSON document
// one at a time, transparently decompressing gzip input (sniffed by
// magic bytes, like ReadAuto). Session lists and the init flag are
// accumulated as the stream is consumed, so a complete read can
// reassemble the History without a second pass.
type StreamReader struct {
	br       *bufio.Reader
	line     int
	next     int
	hasInit  bool
	sessions [][]int
	declared int
	done     bool
}

// NewStreamReader validates the header line and positions the reader at
// the first transaction record.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("history: ndjson: gzip: %w", err)
		}
		br = bufio.NewReader(zr)
	}
	sr := &StreamReader{br: br}
	header, err := sr.readLine()
	if err != nil {
		return nil, fmt.Errorf("history: ndjson: missing header: %w", err)
	}
	var hdr struct {
		Format   string `json:"format"`
		Version  int    `json:"version"`
		Sessions int    `json:"sessions"`
	}
	if err := json.Unmarshal(header, &hdr); err != nil || hdr.Format != "mtc-ndjson" {
		return nil, fmt.Errorf("history: ndjson: not an mtc-ndjson stream")
	}
	if hdr.Version != 1 {
		return nil, fmt.Errorf("history: ndjson: unsupported version %d", hdr.Version)
	}
	sr.declared = hdr.Sessions
	return sr, nil
}

// DeclaredSessions returns the session count the header declared, or 0
// when the writer did not know it up front.
func (sr *StreamReader) DeclaredSessions() int { return sr.declared }

// readLine returns the next newline-terminated line without the
// terminator. A final line with data but no terminator is a truncated
// record and is rejected rather than parsed.
func (sr *StreamReader) readLine() ([]byte, error) {
	line, err := sr.br.ReadBytes('\n')
	if err == io.EOF {
		if len(line) > 0 {
			return nil, fmt.Errorf("history: ndjson: truncated record at line %d", sr.line+1)
		}
		return nil, io.EOF
	}
	if err != nil {
		return nil, err
	}
	sr.line++
	return bytes.TrimRight(line, "\r\n"), nil
}

// Next returns the next transaction in stream order, or io.EOF when the
// document is exhausted cleanly. Records must carry dense in-order IDs;
// a session of -1 marks the init transaction and is only legal first.
func (sr *StreamReader) Next() (Txn, error) {
	if sr.done {
		return Txn{}, io.EOF
	}
	var raw []byte
	for {
		line, err := sr.readLine()
		if err == io.EOF {
			sr.done = true
			return Txn{}, io.EOF
		}
		if err != nil {
			return Txn{}, err
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue // blank separator lines are tolerated
		}
		raw = line
		break
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var t Txn
	if err := dec.Decode(&t); err != nil {
		return Txn{}, fmt.Errorf("history: ndjson: line %d: %w", sr.line, err)
	}
	if dec.More() {
		return Txn{}, fmt.Errorf("history: ndjson: line %d: trailing data after record", sr.line)
	}
	if t.ID != sr.next {
		return Txn{}, fmt.Errorf("history: ndjson: line %d: txn id %d out of order (want %d)", sr.line, t.ID, sr.next)
	}
	if t.Session < 0 {
		if t.ID != 0 {
			return Txn{}, fmt.Errorf("history: ndjson: line %d: init transaction must be first", sr.line)
		}
		sr.hasInit = true
	} else {
		for len(sr.sessions) <= t.Session {
			sr.sessions = append(sr.sessions, nil)
		}
		sr.sessions[t.Session] = append(sr.sessions[t.Session], t.ID)
	}
	sr.next++
	return t, nil
}

// HasInit reports whether the stream carried an init transaction. Only
// meaningful for the prefix consumed so far.
func (sr *StreamReader) HasInit() bool { return sr.hasInit }

// NumTxns returns how many transactions have been consumed.
func (sr *StreamReader) NumTxns() int { return sr.next }

// ReadNDJSON drains a streaming NDJSON document into a validated
// History (the one-shot counterpart of StreamReader, used by ReadAuto).
func ReadNDJSON(r io.Reader) (*History, error) {
	sr, err := NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	var h History
	for {
		t, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		h.Txns = append(h.Txns, t)
	}
	h.Sessions = sr.sessions
	// The header's declared session count restores sessions with no
	// transactions (a per-transaction encoding cannot witness them).
	for len(h.Sessions) < sr.declared {
		h.Sessions = append(h.Sessions, nil)
	}
	h.HasInit = sr.hasInit
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return &h, nil
}
