package history

import (
	"bytes"
	"compress/gzip"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// ndjsonFixture builds a small history exercising every record shape:
// init transaction, multiple sessions, aborted transactions, timed ones.
func ndjsonFixture() *History {
	b := NewBuilder("x", "y")
	b.Txn(0, R("x", 0), W("x", 1))
	b.TimedTxn(1, 10, 20, R("y", 0), W("y", 2))
	b.AbortedTxn(0, R("x", 1), W("x", 3))
	b.Txn(1, R("x", 1), R("y", 2))
	return b.Build()
}

func TestNDJSONRoundTrip(t *testing.T) {
	for _, withInit := range []bool{true, false} {
		var h *History
		if withInit {
			h = ndjsonFixture()
		} else {
			b := NewBuilder()
			b.Txn(0, W("x", 1), R("x", 1))
			b.Txn(1, R("x", 1))
			h = b.Build()
		}
		var buf bytes.Buffer
		if err := WriteNDJSON(&buf, h); err != nil {
			t.Fatalf("withInit=%v: write: %v", withInit, err)
		}
		got, err := ReadNDJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("withInit=%v: read: %v", withInit, err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("withInit=%v: round trip mismatch:\n got %+v\nwant %+v", withInit, got, h)
		}
	}
}

// TestNDJSONStreamReaderIncremental: Next yields the transactions one at
// a time in ID order with the session bookkeeping accumulating as the
// stream is consumed.
func TestNDJSONStreamReaderIncremental(t *testing.T) {
	h := ndjsonFixture()
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, h); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range h.Txns {
		txn, err := sr.Next()
		if err != nil {
			t.Fatalf("txn %d: %v", i, err)
		}
		if txn.ID != i {
			t.Fatalf("txn %d: got ID %d", i, txn.ID)
		}
		if i == 0 {
			if !sr.HasInit() || txn.Session != -1 {
				t.Fatalf("init record not recognised: session %d, hasInit %v", txn.Session, sr.HasInit())
			}
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
	if sr.NumTxns() != len(h.Txns) {
		t.Fatalf("NumTxns %d, want %d", sr.NumTxns(), len(h.Txns))
	}
}

func TestNDJSONRejectsTruncatedFinalLine(t *testing.T) {
	h := ndjsonFixture()
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, h); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3] // chop the record mid-JSON, losing '\n'
	if _, err := ReadNDJSON(bytes.NewReader(cut)); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated stream accepted: %v", err)
	}
}

func TestNDJSONRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"no header":       "{\"id\":0}\n",
		"wrong format":    "{\"format\":\"other\"}\n",
		"bad version":     "{\"format\":\"mtc-ndjson\",\"version\":9}\n",
		"non-json record": NDJSONHeader + "\nnot json\n",
		"unknown field":   NDJSONHeader + "\n{\"id\":0,\"sess\":0,\"bogus\":1,\"committed\":true,\"ops\":[],\"start\":0,\"finish\":0}\n",
		"id out of order": NDJSONHeader + "\n{\"id\":5,\"sess\":0,\"ops\":[],\"start\":0,\"finish\":0,\"committed\":true}\n",
		"late init":       NDJSONHeader + "\n{\"id\":0,\"sess\":0,\"ops\":[],\"start\":0,\"finish\":0,\"committed\":true}\n{\"id\":1,\"sess\":-1,\"ops\":[],\"start\":0,\"finish\":0,\"committed\":true}\n",
		"trailing data":   NDJSONHeader + "\n{\"id\":0,\"sess\":0,\"ops\":[],\"start\":0,\"finish\":0,\"committed\":true} {\"x\":1}\n",
	}
	for name, doc := range cases {
		if _, err := ReadNDJSON(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReadAutoSniffsAllFormats: the same fixture saved through every
// codec (and gzip wrapping) loads back identically via content sniffing.
func TestReadAutoSniffsAllFormats(t *testing.T) {
	h := ndjsonFixture()
	dir := t.TempDir()
	for _, name := range []string{
		"h.json", "h.json.gz", "h.txt", "h.txt.gz", "h.ndjson", "h.ndjson.gz",
	} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, h); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

// TestNDJSONGzipTransparent: StreamReader sniffs gzip on its own, so a
// compressed capture streams without the caller wrapping it.
func TestNDJSONGzipTransparent(t *testing.T) {
	h := ndjsonFixture()
	var plain bytes.Buffer
	if err := WriteNDJSON(&plain, h); err != nil {
		t.Fatal(err)
	}
	var zipped bytes.Buffer
	zw := gzip.NewWriter(&zipped)
	if _, err := zw.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	sr, err := NewStreamReader(&zipped)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := sr.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(h.Txns) {
		t.Fatalf("streamed %d txns, want %d", n, len(h.Txns))
	}
}

// TestNDJSONRandomizedRoundTrip hammers the codec with the adversarial
// random histories the index equivalence suite uses.
func TestNDJSONRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		h := randomHistory(rng)
		var buf bytes.Buffer
		if err := WriteNDJSON(&buf, h); err != nil {
			t.Fatalf("trial %d: write: %v", trial, err)
		}
		got, err := ReadAuto(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: read: %v", trial, err)
		}
		if !reflect.DeepEqual(got, h) {
			t.Fatalf("trial %d: round trip mismatch:\n got %+v\nwant %+v", trial, got, h)
		}
	}
}

// TestSaveFileNDJSONIsLineOriented pins the on-disk shape: header line
// first, then exactly one JSON object per transaction.
func TestSaveFileNDJSONIsLineOriented(t *testing.T) {
	h := ndjsonFixture()
	path := filepath.Join(t.TempDir(), "h.ndjson")
	if err := SaveFile(path, h); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(lines) != len(h.Txns)+1 {
		t.Fatalf("%d lines, want %d", len(lines), len(h.Txns)+1)
	}
	if !strings.HasPrefix(lines[0], `{"format":"mtc-ndjson"`) {
		t.Fatalf("header line %q", lines[0])
	}
}
