package kv

import (
	"errors"
	"testing"

	"mtc/internal/history"
)

func TestModeAccessor(t *testing.T) {
	if NewStore(Mode2PL).Mode() != Mode2PL {
		t.Fatal("Mode accessor")
	}
}

func Test2PLAppendAndReadList(t *testing.T) {
	s := NewStore(Mode2PL)
	tx := s.Begin()
	if err := tx.Append("l", 1); err != nil {
		t.Fatal(err)
	}
	lst, err := tx.ReadList("l")
	if err != nil || len(lst) != 1 || lst[0] != 1 {
		t.Fatalf("list = %v, %v", lst, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Another transaction sees the committed list under the lock.
	tx2 := s.Begin()
	lst, err = tx2.ReadList("l")
	if err != nil || len(lst) != 1 {
		t.Fatalf("list = %v, %v", lst, err)
	}
	tx2.Abort()
}

func Test2PLAppendWaitDie(t *testing.T) {
	s := NewStore(Mode2PL)
	older := s.Begin()
	younger := s.Begin()
	if err := older.Append("l", 1); err != nil {
		t.Fatal(err)
	}
	if err := younger.Append("l", 2); !errors.Is(err, ErrConflict) {
		t.Fatalf("younger append must die, got %v", err)
	}
	if _, err := s.Begin().ReadList("l"); err != nil {
		// A third, even younger txn also dies while older holds the lock.
		if !errors.Is(err, ErrConflict) {
			t.Fatal(err)
		}
	}
	if err := older.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMissingKeyReturnsZero(t *testing.T) {
	s := NewStore(ModeSI)
	tx := s.Begin()
	v, err := tx.Read("ghost")
	if err != nil || v != 0 {
		t.Fatalf("read of missing key = %d, %v", v, err)
	}
	tx.Abort()
}

func TestLongForkFaultForksPerKeySnapshots(t *testing.T) {
	s := NewFaultyStore(ModeSI, Faults{LongFork: 1, Seed: 3})
	s.Init([]history.Key{"x", "y"})
	// Build history on both keys.
	for i := 1; i <= 40; i++ {
		tx := s.Begin()
		tx.Read("x")
		tx.Read("y")
		tx.Write("x", history.Value(i))
		tx.Write("y", history.Value(1000+i))
		if tx.Commit() != nil {
			i--
		}
	}
	// Under per-key forked snapshots a reader may see key states from
	// different instants.
	forked := false
	for i := 0; i < 60 && !forked; i++ {
		tx := s.Begin()
		vx, _ := tx.Read("x")
		vy, _ := tx.Read("y")
		tx.Abort()
		if vy-vx != 1000 {
			forked = true
		}
	}
	if !forked {
		t.Fatal("long-fork fault never produced inconsistent per-key snapshots")
	}
}

func TestSnapshotReadSameKeyTwiceStable(t *testing.T) {
	// Even with the LongFork fault, a transaction's second read of the
	// same key uses the same forked snapshot (snapFor caches per key).
	s := NewFaultyStore(ModeSI, Faults{LongFork: 1, Seed: 5})
	s.Init([]history.Key{"x"})
	for i := 1; i <= 20; i++ {
		tx := s.Begin()
		tx.Read("x")
		tx.Write("x", history.Value(i))
		if tx.Commit() != nil {
			i--
		}
	}
	tx := s.Begin()
	a, _ := tx.Read("x")
	b, _ := tx.Read("x")
	tx.Abort()
	if a != b {
		t.Fatalf("reads diverged within a transaction: %d vs %d", a, b)
	}
}

func TestInsertIntervalOrdering(t *testing.T) {
	s := NewStore(ModeSI)
	_, rec1 := s.Insert("x", 0)
	_, rec2 := s.CAS("x", 0, 1)
	if rec1.Finish >= rec2.Start {
		t.Fatalf("sequential LWT intervals must not overlap: %+v %+v", rec1, rec2)
	}
}

func TestAbortIsIdempotent(t *testing.T) {
	s := NewStore(ModeSI)
	tx := s.Begin()
	tx.Abort()
	tx.Abort() // second abort is a no-op
	if s.Stats().Aborts.Load() != 1 {
		t.Fatalf("aborts = %d", s.Stats().Aborts.Load())
	}
}

func TestSerializableReadOnlyConflict(t *testing.T) {
	// A read-only transaction whose read set changed must abort under
	// the optimistic serializable mode (it cannot be serialized at its
	// commit point).
	s := NewStore(ModeSerializable)
	s.Init([]history.Key{"x"})
	t1 := s.Begin()
	t1.Read("x")
	t2 := s.Begin()
	t2.Read("x")
	t2.Write("x", 5)
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t1.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale read-only txn must conflict, got %v", err)
	}
}

func TestWriteBufferIsolation(t *testing.T) {
	s := NewStore(ModeSI)
	s.Init([]history.Key{"x"})
	t1 := s.Begin()
	t1.Write("x", 9)
	t2 := s.Begin()
	if v, _ := t2.Read("x"); v != 0 {
		t.Fatalf("uncommitted write visible: %d", v)
	}
	t1.Abort()
	t2.Abort()
	if v, _ := s.ReadValue("x"); v != 0 {
		t.Fatalf("aborted write installed: %d", v)
	}
}
