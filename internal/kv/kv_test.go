package kv

import (
	"errors"
	"sync"
	"testing"

	"mtc/internal/core"
	"mtc/internal/history"
)

func TestModeString(t *testing.T) {
	if ModeSI.String() != "SI" || ModeSerializable.String() != "SERIALIZABLE" || Mode2PL.String() != "2PL" {
		t.Fatal("mode names")
	}
	if Mode(9).String() != "Mode(9)" {
		t.Fatal("unknown mode name")
	}
}

func TestBasicReadWriteCommit(t *testing.T) {
	for _, mode := range []Mode{ModeSI, ModeSerializable, Mode2PL} {
		s := NewStore(mode)
		s.Init([]history.Key{"x"})
		tx := s.Begin()
		v, err := tx.Read("x")
		if err != nil || v != 0 {
			t.Fatalf("%v: read = %d, %v", mode, v, err)
		}
		if err := tx.Write("x", 7); err != nil {
			t.Fatal(err)
		}
		if v, _ := tx.Read("x"); v != 7 {
			t.Fatalf("%v: read-your-writes = %d", mode, v)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("%v: commit: %v", mode, err)
		}
		if !tx.Committed() {
			t.Fatal("Committed() false after commit")
		}
		tx2 := s.Begin()
		if v, _ := tx2.Read("x"); v != 7 {
			t.Fatalf("%v: next txn read = %d", mode, v)
		}
		tx2.Abort()
		if s.Stats().Commits.Load() != 1 || s.Stats().Aborts.Load() != 1 {
			t.Fatalf("%v: stats = %d/%d", mode, s.Stats().Commits.Load(), s.Stats().Aborts.Load())
		}
	}
}

func TestOpsLogProgramOrder(t *testing.T) {
	s := NewStore(ModeSI)
	s.Init([]history.Key{"x", "y"})
	tx := s.Begin()
	tx.Read("x")
	tx.Write("x", 5)
	tx.Read("y")
	tx.Commit()
	ops := tx.Ops()
	want := []history.Op{history.R("x", 0), history.W("x", 5), history.R("y", 0)}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops[%d] = %v, want %v", i, ops[i], want[i])
		}
	}
	if tx.StartTS() == 0 || tx.FinishTS() <= tx.StartTS() {
		t.Fatalf("timestamps start=%d finish=%d", tx.StartTS(), tx.FinishTS())
	}
}

func TestSnapshotIsolationInvisibility(t *testing.T) {
	s := NewStore(ModeSI)
	s.Init([]history.Key{"x"})
	t1 := s.Begin()
	// t2 commits a new value after t1 began.
	t2 := s.Begin()
	t2.Read("x")
	t2.Write("x", 9)
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	// t1's snapshot predates t2's commit.
	if v, _ := t1.Read("x"); v != 0 {
		t.Fatalf("snapshot read = %d, want 0", v)
	}
	t1.Abort()
}

func TestFirstCommitterWins(t *testing.T) {
	s := NewStore(ModeSI)
	s.Init([]history.Key{"x"})
	t1 := s.Begin()
	t2 := s.Begin()
	t1.Read("x")
	t2.Read("x")
	t1.Write("x", 1)
	t2.Write("x", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer must conflict, got %v", err)
	}
}

func TestSIAllowsWriteSkew(t *testing.T) {
	s := NewStore(ModeSI)
	s.Init([]history.Key{"x", "y"})
	t1 := s.Begin()
	t2 := s.Begin()
	t1.Read("x")
	t1.Read("y")
	t2.Read("x")
	t2.Read("y")
	t1.Write("x", 1)
	t2.Write("y", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("SI must admit write skew, got %v", err)
	}
}

func TestSerializableForbidsWriteSkew(t *testing.T) {
	s := NewStore(ModeSerializable)
	s.Init([]history.Key{"x", "y"})
	t1 := s.Begin()
	t2 := s.Begin()
	t1.Read("x")
	t1.Read("y")
	t2.Read("x")
	t2.Read("y")
	t1.Write("x", 1)
	t2.Write("y", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("serializable must reject write skew, got %v", err)
	}
}

func TestTxnDoneErrors(t *testing.T) {
	s := NewStore(ModeSI)
	s.Init([]history.Key{"x"})
	tx := s.Begin()
	tx.Commit()
	if _, err := tx.Read("x"); !errors.Is(err, ErrTxnDone) {
		t.Fatal("read after commit must fail")
	}
	if err := tx.Write("x", 1); !errors.Is(err, ErrTxnDone) {
		t.Fatal("write after commit must fail")
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatal("double commit must fail")
	}
	if err := tx.Append("x", 1); !errors.Is(err, ErrTxnDone) {
		t.Fatal("append after commit must fail")
	}
	if _, err := tx.ReadList("x"); !errors.Is(err, ErrTxnDone) {
		t.Fatal("readlist after commit must fail")
	}
}

func Test2PLWaitDie(t *testing.T) {
	s := NewStore(Mode2PL)
	s.Init([]history.Key{"x"})
	older := s.Begin()
	younger := s.Begin()
	if _, err := older.Read("x"); err != nil {
		t.Fatal(err)
	}
	// Younger requesting the lock held by older must die.
	if _, err := younger.Read("x"); !errors.Is(err, ErrConflict) {
		t.Fatalf("younger must die, got %v", err)
	}
	if err := older.Commit(); err != nil {
		t.Fatal(err)
	}
}

func Test2PLOlderWaits(t *testing.T) {
	// Holder is younger, requester is older -> the older transaction
	// waits until the younger commits, then proceeds.
	s2 := NewStore(Mode2PL)
	s2.Init([]history.Key{"x"})
	hOlder := s2.Begin()   // older priority
	hYounger := s2.Begin() // younger
	if _, err := hYounger.Read("x"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := hOlder.Read("x") // older waits
		if err == nil {
			err = hOlder.Commit()
		}
		done <- err
	}()
	// Let the older transaction block, then release.
	if err := hYounger.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("older transaction should acquire after release: %v", err)
	}
}

func Test2PLConcurrentIncrementsSerialize(t *testing.T) {
	s := NewStore(Mode2PL)
	s.Init([]history.Key{"x"})
	const workers, iters = 8, 50
	var wg sync.WaitGroup
	var mu sync.Mutex
	next := history.Value(1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					tx := s.Begin()
					if _, err := tx.Read("x"); err != nil {
						continue // died, retry
					}
					mu.Lock()
					v := next
					next++
					mu.Unlock()
					if err := tx.Write("x", v); err != nil {
						continue
					}
					if err := tx.Commit(); err == nil {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := s.Stats().Commits.Load(); got != workers*iters {
		t.Fatalf("commits = %d, want %d", got, workers*iters)
	}
}

func TestAppendAndReadList(t *testing.T) {
	s := NewStore(ModeSI)
	tx := s.Begin()
	tx.Append("l", 1)
	tx.Append("l", 2)
	if lst, _ := tx.ReadList("l"); len(lst) != 2 || lst[0] != 1 || lst[1] != 2 {
		t.Fatalf("own appends visible: %v", lst)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := s.Begin()
	tx2.Append("l", 3)
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	tx3 := s.Begin()
	lst, _ := tx3.ReadList("l")
	if len(lst) != 3 || lst[2] != 3 {
		t.Fatalf("list = %v", lst)
	}
	tx3.Abort()
}

func TestConcurrentAppendsConflictUnderSI(t *testing.T) {
	s := NewStore(ModeSI)
	t1 := s.Begin()
	t2 := s.Begin()
	t1.Append("l", 1)
	t2.Append("l", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("concurrent append must conflict under first-committer-wins, got %v", err)
	}
}

func TestCASAndInsert(t *testing.T) {
	s := NewStore(ModeSI)
	ok, rec := s.Insert("x", 0)
	if !ok || rec.Kind != core.LWTInsert || rec.Write != 0 {
		t.Fatalf("insert: %v %+v", ok, rec)
	}
	if ok, _ := s.Insert("x", 5); ok {
		t.Fatal("second insert must fail")
	}
	ok, rec = s.CAS("x", 0, 1)
	if !ok || rec.Read != 0 || rec.Write != 1 {
		t.Fatalf("cas: %v %+v", ok, rec)
	}
	if ok, _ := s.CAS("x", 0, 2); ok {
		t.Fatal("stale CAS must fail")
	}
	if v, exists := s.ReadValue("x"); !exists || v != 1 {
		t.Fatalf("value = %d, %v", v, exists)
	}
	if _, exists := s.ReadValue("nope"); exists {
		t.Fatal("missing key must not exist")
	}
	if rec.Start == 0 || rec.Finish <= rec.Start {
		t.Fatalf("LWT interval %d-%d", rec.Start, rec.Finish)
	}
}

func TestCASChainIsLinearizable(t *testing.T) {
	s := NewStore(ModeSI)
	var ops []core.LWT
	_, rec := s.Insert("x", 0)
	rec.ID = 0
	ops = append(ops, rec)
	v := history.Value(0)
	for i := 1; i <= 20; i++ {
		ok, rec := s.CAS("x", v, history.Value(i))
		if !ok {
			t.Fatal("sequential CAS must succeed")
		}
		rec.ID = i
		ops = append(ops, rec)
		v = history.Value(i)
	}
	if r := core.VLLWT(ops); !r.OK {
		t.Fatalf("fault-free CAS chain must be linearizable: %s", r.Reason)
	}
}

func TestFaultLostUpdateAllowsDivergence(t *testing.T) {
	s := NewFaultyStore(ModeSI, Faults{LostUpdate: 1, Seed: 42})
	s.Init([]history.Key{"x"})
	t1 := s.Begin()
	t2 := s.Begin()
	t1.Read("x")
	t2.Read("x")
	t1.Write("x", 1)
	t2.Write("x", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("LostUpdate fault must let the second committer through: %v", err)
	}
}

func TestFaultWriteSkewDegradesSerializable(t *testing.T) {
	s := NewFaultyStore(ModeSerializable, Faults{WriteSkew: 1, Seed: 42})
	s.Init([]history.Key{"x", "y"})
	t1 := s.Begin()
	t2 := s.Begin()
	t1.Read("x")
	t1.Read("y")
	t2.Read("x")
	t2.Read("y")
	t1.Write("x", 1)
	t2.Write("y", 2)
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatalf("WriteSkew fault must admit the skew: %v", err)
	}
}

func TestFaultDirtyAbortInstallsWrites(t *testing.T) {
	s := NewFaultyStore(ModeSI, Faults{DirtyAbort: 1, Seed: 42})
	s.Init([]history.Key{"x"})
	tx := s.Begin()
	tx.Read("x")
	tx.Write("x", 5)
	if err := tx.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("dirty abort must report failure, got %v", err)
	}
	if tx.Committed() {
		t.Fatal("transaction must not report committed")
	}
	if v, _ := s.ReadValue("x"); v != 5 {
		t.Fatalf("aborted write must be visible (injected bug), got %d", v)
	}
}

func TestFaultCASFailApply(t *testing.T) {
	s := NewFaultyStore(ModeSI, Faults{CASFailApply: 1, Seed: 42})
	s.Insert("x", 0)
	ok, _ := s.CAS("x", 99, 7) // wrong expectation: must fail...
	if ok {
		t.Fatal("CAS must report failure")
	}
	if v, _ := s.ReadValue("x"); v != 7 {
		t.Fatalf("...but the fault applies the write anyway; got %d", v)
	}
}

func TestFaultStaleSnapshot(t *testing.T) {
	s := NewFaultyStore(ModeSI, Faults{StaleSnapshot: 1, Seed: 7})
	s.Init([]history.Key{"x"})
	// Build up version history so a stale snapshot can land in the past.
	for i := 1; i <= 50; i++ {
		tx := s.Begin()
		tx.Read("x")
		tx.Write("x", history.Value(i))
		if err := tx.Commit(); err != nil {
			// A stale snapshot makes first-committer-wins fire; retry.
			i--
			continue
		}
	}
	// With certainty-probability stale snapshots, some read should lag.
	stale := false
	for i := 0; i < 50 && !stale; i++ {
		tx := s.Begin()
		v, _ := tx.Read("x")
		if v != 50 {
			stale = true
		}
		tx.Abort()
	}
	if !stale {
		t.Fatal("stale-snapshot fault never produced a stale read")
	}
}

func TestStatsAbortRate(t *testing.T) {
	var st Stats
	if st.AbortRate() != 0 {
		t.Fatal("idle rate must be 0")
	}
	st.Commits.Store(3)
	st.Aborts.Store(1)
	if st.AbortRate() != 0.25 {
		t.Fatalf("rate = %f", st.AbortRate())
	}
}

func TestConcurrentSIStressProducesConsistentVersions(t *testing.T) {
	s := NewStore(ModeSI)
	s.Init([]history.Key{"x", "y", "z"})
	const workers = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	next := history.Value(1)
	keys := []history.Key{"x", "y", "z"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				tx := s.Begin()
				k := keys[(w+i)%len(keys)]
				if _, err := tx.Read(k); err != nil {
					continue
				}
				mu.Lock()
				v := next
				next++
				mu.Unlock()
				tx.Write(k, v)
				tx.Commit() // conflicts allowed; no retry needed for the invariant
			}
		}(w)
	}
	wg.Wait()
	// Invariant: number of installed non-init versions == commits.
	s.mu.RLock()
	versions := 0
	for _, vs := range s.data {
		versions += len(vs) - 1 // minus init
	}
	s.mu.RUnlock()
	if int64(versions) != s.Stats().Commits.Load() {
		t.Fatalf("versions %d != commits %d", versions, s.Stats().Commits.Load())
	}
}
