package kv

import (
	"mtc/internal/core"
	"mtc/internal/history"
)

// Lightweight transactions (Section IV-E): single-object compare-and-set
// and insert-if-not-exists operations. Each executes atomically under the
// store mutex, so a fault-free store is linearizable; the CASFailApply
// fault reintroduces the Cassandra 2.0.1 aborted-read bug by applying the
// write of a CAS that reports failure.

// CAS atomically replaces k's value with new if it currently equals
// expect. It returns whether the swap applied and the LWT record (with
// real-time interval) for the history; on failure the record degrades to
// a read per Section II-F and Record.Kind stays LWTRW with Write == Read
// observed — callers use OK to decide how to log it.
func (s *Store) CAS(k history.Key, expect, new history.Value) (ok bool, rec core.LWT) {
	start := s.now()
	s.mu.Lock()
	ver, exists := s.latest(k)
	applied := exists && ver.val == expect
	failApply := false
	if !applied && exists {
		failApply = s.chance(s.f.CASFailApply)
	}
	if applied || failApply {
		s.install(k, s.now(), new, nil)
	}
	s.mu.Unlock()
	finish := s.now()
	if applied {
		s.stats.Commits.Add(1)
	} else {
		s.stats.Aborts.Add(1)
	}
	rec = core.LWT{
		Key: k, Kind: core.LWTRW,
		Read: expect, Write: new,
		Start: start, Finish: finish,
	}
	return applied, rec
}

// Insert atomically installs v for k if k does not exist. It returns
// whether the insert applied and the LWT record for the history.
func (s *Store) Insert(k history.Key, v history.Value) (ok bool, rec core.LWT) {
	start := s.now()
	s.mu.Lock()
	_, exists := s.latest(k)
	if !exists {
		s.install(k, s.now(), v, nil)
	}
	s.mu.Unlock()
	finish := s.now()
	if !exists {
		s.stats.Commits.Add(1)
	} else {
		s.stats.Aborts.Add(1)
	}
	rec = core.LWT{
		Key: k, Kind: core.LWTInsert,
		Write: v, Start: start, Finish: finish,
	}
	return !exists, rec
}

// ReadValue returns the latest committed value of k (a linearizable read).
func (s *Store) ReadValue(k history.Key) (history.Value, bool) {
	s.mu.RLock()
	ver, ok := s.latest(k)
	s.mu.RUnlock()
	return ver.val, ok
}
