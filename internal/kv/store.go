// Package kv implements the database substrate the paper tests against:
// an in-memory, multi-version, transactional key-value store standing in
// for PostgreSQL, MongoDB, MariaDB Galera and Cassandra in the
// experiments. It supports three concurrency-control modes:
//
//   - ModeSI: snapshot isolation via MVCC snapshots with first-committer-
//     wins write validation (PostgreSQL REPEATABLE READ).
//   - ModeSerializable: optimistic serializability — SI plus commit-time
//     read-set validation, so the transaction aborts if anything it read
//     changed (a commit-time-serialized OCC, which is strictly
//     serializable because the serialization point lies inside the
//     transaction's real-time interval).
//   - Mode2PL: pessimistic strict two-phase locking with wait-die deadlock
//     avoidance (long-lock blocking, the other cost regime of Section I).
//
// The store also provides the lightweight transactions of Section IV-E
// (compare-and-set and insert-if-not-exists) and list-append documents for
// the Elle baseline, and exposes the fault-injection hooks (Faults) that
// reintroduce the production bugs of Table II.
//
// All timestamps come from a single atomic logical clock, so the recorded
// start/finish instants form a legitimate real-time order for SSER
// checking.
package kv

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"mtc/internal/history"
)

// Mode selects the store's concurrency control.
type Mode int

// Concurrency-control modes.
const (
	ModeSI           Mode = iota // MVCC snapshot isolation, first-committer-wins
	ModeSerializable             // SI + read-set validation (optimistic SER)
	Mode2PL                      // strict two-phase locking, wait-die
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeSI:
		return "SI"
	case ModeSerializable:
		return "SERIALIZABLE"
	case Mode2PL:
		return "2PL"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Store errors.
var (
	// ErrConflict is returned by Commit when validation fails or a lock
	// request dies; the transaction has been rolled back (unless a fault
	// injected dirty state) and may be retried.
	ErrConflict = errors.New("kv: transaction conflict")
	// ErrTxnDone is returned when a finished transaction is used again.
	ErrTxnDone = errors.New("kv: transaction already finished")
)

// Faults configures probabilistic bug injection; the zero value injects
// nothing. Probabilities are per decision point in [0,1]. See
// internal/faults for named presets reproducing Table II.
type Faults struct {
	// LostUpdate skips first-committer-wins validation, letting two
	// concurrent read-modify-writes of the same version both commit
	// (MariaDB Galera #609).
	LostUpdate float64
	// WriteSkew skips read-set validation in ModeSerializable, silently
	// degrading the transaction to SI (PostgreSQL #5940ffb).
	WriteSkew float64
	// StaleSnapshot starts the transaction on an old snapshot, missing
	// recently committed transactions — including the session's own
	// (Dgraph causality violation; SSER stale reads).
	StaleSnapshot float64
	// LongFork serves an individual read from a per-key stale snapshot,
	// producing fractured/long-fork reads (PostgreSQL 11.8).
	LongFork float64
	// DirtyAbort installs a transaction's writes and then reports an
	// abort, so later readers observe aborted state (MongoDB 4.2.6).
	DirtyAbort float64
	// CASFailApply applies the write of a failed compare-and-set
	// (Cassandra 2.0.1 aborted read).
	CASFailApply float64
	// Seed seeds the injector's PRNG; 0 means 1.
	Seed int64
}

// Stats counts commits and aborts; read with atomic loads.
type Stats struct {
	Commits atomic.Int64
	Aborts  atomic.Int64
}

// AbortRate returns aborts / (commits + aborts), or 0 for an idle store.
func (s *Stats) AbortRate() float64 {
	c, a := s.Commits.Load(), s.Aborts.Load()
	if c+a == 0 {
		return 0
	}
	return float64(a) / float64(c+a)
}

// version is one committed value of a key. For list keys, list holds the
// full list state at this version (copy on append).
type version struct {
	ts   int64
	val  history.Value
	list []history.Value
}

// lockState is the 2PL per-key exclusive lock; holder is the owning
// transaction's start timestamp (its wait-die priority), 0 when free.
type lockState struct {
	holder int64
}

// Store is the transactional key-value store. Safe for concurrent use.
type Store struct {
	mode  Mode
	clock atomic.Int64

	mu   sync.RWMutex // guards data
	data map[history.Key][]version

	lmu   sync.Mutex // guards locks + cond
	lcond *sync.Cond
	locks map[history.Key]*lockState

	// Single-operation (LWT) fault draws share frng under fmu; the MVCC
	// transaction path never touches it — each Tx derives its own PRNG
	// from seed and its start timestamp (see Begin), so concurrent
	// sessions draw fault decisions without any shared state.
	fmu       sync.Mutex // guards frng
	frng      *rand.Rand
	seed      int64
	f         Faults
	txnFaults bool // any per-transaction fault probability is set

	stats Stats
}

// NewStore returns an empty store in the given mode with no faults.
func NewStore(mode Mode) *Store {
	return NewFaultyStore(mode, Faults{})
}

// NewFaultyStore returns a store with the given fault configuration.
func NewFaultyStore(mode Mode, f Faults) *Store {
	seed := f.Seed
	if seed == 0 {
		seed = 1
	}
	s := &Store{
		mode:      mode,
		data:      make(map[history.Key][]version),
		locks:     make(map[history.Key]*lockState),
		frng:      rand.New(rand.NewSource(seed)),
		seed:      seed,
		f:         f,
		txnFaults: f.LostUpdate > 0 || f.WriteSkew > 0 || f.StaleSnapshot > 0 || f.LongFork > 0 || f.DirtyAbort > 0,
	}
	s.lcond = sync.NewCond(&s.lmu)
	return s
}

// Mode returns the store's concurrency-control mode.
func (s *Store) Mode() Mode { return s.mode }

// Stats returns the commit/abort counters.
func (s *Store) Stats() *Stats { return &s.stats }

// now advances and returns the logical clock.
func (s *Store) now() int64 { return s.clock.Add(1) }

// chance draws a fault decision for single-operation (LWT) paths, which
// have no per-transaction PRNG; the draw is serialised under fmu.
func (s *Store) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	s.fmu.Lock()
	ok := s.frng.Float64() < p
	s.fmu.Unlock()
	return ok
}

// splitmix64 is the SplitMix64 finalizer, used to spread (seed, startTS)
// into independent per-transaction PRNG seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// txnRand derives the fault PRNG of a transaction beginning at start: a
// function of the store seed and the start timestamp only, so runs are
// reproducible per (seed, schedule) without any cross-session locking.
// It returns nil on fault-free stores, sparing the hot path the PRNG
// allocation and seeding cost entirely.
func (s *Store) txnRand(start int64) *rand.Rand {
	if !s.txnFaults {
		return nil
	}
	return rand.New(rand.NewSource(int64(splitmix64(uint64(s.seed) ^ uint64(start)*0x9e3779b97f4a7c15))))
}

// Init installs value 0 for each key at timestamp 0, playing the role of
// the initial transaction ⊥T. Must be called before concurrent use.
func (s *Store) Init(keys []history.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		if len(s.data[k]) == 0 {
			s.data[k] = append(s.data[k], version{ts: 0, val: 0})
		}
	}
}

// latestAt returns the newest version of k with ts <= snap and whether one
// exists. Caller holds s.mu (read or write).
func (s *Store) latestAt(k history.Key, snap int64) (version, bool) {
	vs := s.data[k]
	// Binary search: versions are append-ordered by ts.
	i := sort.Search(len(vs), func(i int) bool { return vs[i].ts > snap })
	if i == 0 {
		return version{}, false
	}
	return vs[i-1], true
}

// latest returns the newest committed version of k.
func (s *Store) latest(k history.Key) (version, bool) {
	vs := s.data[k]
	if len(vs) == 0 {
		return version{}, false
	}
	return vs[len(vs)-1], true
}

// install appends a committed version for k at ts. Caller holds s.mu.
func (s *Store) install(k history.Key, ts int64, val history.Value, list []history.Value) {
	s.data[k] = append(s.data[k], version{ts: ts, val: val, list: list})
}

// acquire takes the exclusive 2PL lock on k for a transaction with
// wait-die priority prio (smaller = older = higher priority). It returns
// false if the transaction must die.
func (s *Store) acquire(k history.Key, prio int64) bool {
	s.lmu.Lock()
	defer s.lmu.Unlock()
	for {
		l := s.locks[k]
		if l == nil {
			l = &lockState{}
			s.locks[k] = l
		}
		switch {
		case l.holder == 0:
			l.holder = prio
			return true
		case l.holder == prio:
			return true // re-entrant
		case prio < l.holder:
			// Older transaction waits.
			s.lcond.Wait()
		default:
			// Younger transaction dies.
			return false
		}
	}
}

// release frees every lock held by priority prio and wakes waiters.
func (s *Store) release(held []history.Key, prio int64) {
	s.lmu.Lock()
	for _, k := range held {
		if l := s.locks[k]; l != nil && l.holder == prio {
			l.holder = 0
		}
	}
	s.lmu.Unlock()
	s.lcond.Broadcast()
}
