package kv

import (
	"math/rand"
	"sort"

	"mtc/internal/history"
)

// Tx is an in-flight transaction. A Tx is not safe for concurrent use by
// multiple goroutines; each client session drives its own transactions.
type Tx struct {
	s       *Store
	rng     *rand.Rand // fault draws, derived from (store seed, startTS)
	startTS int64
	snapTS  int64 // may lag startTS under the StaleSnapshot fault
	stale   bool  // true when the StaleSnapshot fault fired at Begin
	done    bool

	ops       []history.Op                    // program-order op log
	writeBuf  map[history.Key]history.Value   // last buffered write per key
	appends   map[history.Key][]history.Value // buffered list appends
	readSeen  map[history.Key]int64           // version ts observed per read key
	readSnap  map[history.Key]int64           // per-key forked snapshot (LongFork)
	held      []history.Key                   // 2PL locks held
	finishTS  int64
	committed bool
}

// Begin starts a transaction. Under Mode2PL the transaction's start
// timestamp doubles as its wait-die priority.
func (s *Store) Begin() *Tx {
	start := s.now()
	t := &Tx{
		s:        s,
		rng:      s.txnRand(start),
		startTS:  start,
		snapTS:   start,
		writeBuf: make(map[history.Key]history.Value),
		appends:  make(map[history.Key][]history.Value),
		readSeen: make(map[history.Key]int64),
		readSnap: make(map[history.Key]int64),
	}
	if t.chance(s.f.StaleSnapshot) {
		t.snapTS -= t.randBack(start / 2)
		if t.snapTS < 0 {
			t.snapTS = 0
		}
		t.stale = true
	}
	return t
}

// chance draws a fault decision from the transaction's own PRNG. On
// fault-free stores rng is nil and p is always 0, so no draw happens.
func (t *Tx) chance(p float64) bool {
	return p > 0 && t.rng != nil && t.rng.Float64() < p
}

// randBack draws a random lag in [1, max] for stale-snapshot faults.
func (t *Tx) randBack(max int64) int64 {
	if max < 1 {
		return 0
	}
	return 1 + t.rng.Int63n(max)
}

// StartTS returns the transaction's begin timestamp on the store's
// logical clock.
func (t *Tx) StartTS() int64 { return t.startTS }

// FinishTS returns the commit/abort timestamp (0 while in flight).
func (t *Tx) FinishTS() int64 { return t.finishTS }

// Committed reports whether Commit succeeded.
func (t *Tx) Committed() bool { return t.committed }

// Ops returns the program-order operation log (reads with the values
// returned, writes with the values installed). The caller must not modify
// the slice.
func (t *Tx) Ops() []history.Op { return t.ops }

// snapFor returns the snapshot timestamp used for reading key k, applying
// the LongFork fault the first time the key is read.
func (t *Tx) snapFor(k history.Key) int64 {
	if snap, ok := t.readSnap[k]; ok {
		return snap
	}
	snap := t.snapTS
	if t.chance(t.s.f.LongFork) {
		snap -= t.randBack(snap / 2)
		if snap < 0 {
			snap = 0
		}
		// The buggy database treats the forked snapshot as current, so
		// commit-time read validation must not quietly repair the damage.
		t.stale = true
	}
	t.readSnap[k] = snap
	return snap
}

// Read returns the value of k visible to this transaction: its own last
// buffered write if any, otherwise the snapshot version (MVCC modes) or
// the latest committed version under the key's lock (2PL).
func (t *Tx) Read(k history.Key) (history.Value, error) {
	if t.done {
		return 0, ErrTxnDone
	}
	if v, ok := t.writeBuf[k]; ok {
		t.ops = append(t.ops, history.Op{Kind: history.OpRead, Key: k, Value: v})
		return v, nil
	}
	if t.s.mode == Mode2PL {
		if !t.s.acquire(k, t.startTS) {
			t.rollback()
			return 0, ErrConflict
		}
		t.noteHeld(k)
		t.s.mu.RLock()
		ver, _ := t.s.latest(k)
		t.s.mu.RUnlock()
		t.ops = append(t.ops, history.Op{Kind: history.OpRead, Key: k, Value: ver.val})
		t.readSeen[k] = ver.ts
		return ver.val, nil
	}
	snap := t.snapFor(k)
	t.s.mu.RLock()
	ver, _ := t.s.latestAt(k, snap)
	t.s.mu.RUnlock()
	t.ops = append(t.ops, history.Op{Kind: history.OpRead, Key: k, Value: ver.val})
	if _, seen := t.readSeen[k]; !seen {
		t.readSeen[k] = ver.ts
	}
	return ver.val, nil
}

// Write buffers a write of v to k (visible to this transaction's own
// later reads, installed at commit).
func (t *Tx) Write(k history.Key, v history.Value) error {
	if t.done {
		return ErrTxnDone
	}
	if t.s.mode == Mode2PL {
		if !t.s.acquire(k, t.startTS) {
			t.rollback()
			return ErrConflict
		}
		t.noteHeld(k)
	}
	t.writeBuf[k] = v
	t.ops = append(t.ops, history.Op{Kind: history.OpWrite, Key: k, Value: v})
	return nil
}

// Append buffers a list append of v to k (the Elle list-append model).
func (t *Tx) Append(k history.Key, v history.Value) error {
	if t.done {
		return ErrTxnDone
	}
	if t.s.mode == Mode2PL {
		if !t.s.acquire(k, t.startTS) {
			t.rollback()
			return ErrConflict
		}
		t.noteHeld(k)
	}
	t.appends[k] = append(t.appends[k], v)
	t.ops = append(t.ops, history.Op{Kind: history.OpWrite, Key: k, Value: v})
	return nil
}

// ReadList returns the list value of k visible to this transaction,
// including its own buffered appends.
func (t *Tx) ReadList(k history.Key) ([]history.Value, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	var base []history.Value
	if t.s.mode == Mode2PL {
		if !t.s.acquire(k, t.startTS) {
			t.rollback()
			return nil, ErrConflict
		}
		t.noteHeld(k)
		t.s.mu.RLock()
		ver, _ := t.s.latest(k)
		t.s.mu.RUnlock()
		base = ver.list
		t.readSeen[k] = ver.ts
	} else {
		snap := t.snapFor(k)
		t.s.mu.RLock()
		ver, _ := t.s.latestAt(k, snap)
		t.s.mu.RUnlock()
		base = ver.list
		if _, seen := t.readSeen[k]; !seen {
			t.readSeen[k] = ver.ts
		}
	}
	out := make([]history.Value, 0, len(base)+len(t.appends[k]))
	out = append(out, base...)
	out = append(out, t.appends[k]...)
	// The op log records list reads as a read of the last element (or 0);
	// the Elle checker consumes richer logs via the runner.
	var last history.Value
	if len(out) > 0 {
		last = out[len(out)-1]
	}
	t.ops = append(t.ops, history.Op{Kind: history.OpRead, Key: k, Value: last})
	return out, nil
}

func (t *Tx) noteHeld(k history.Key) {
	for _, h := range t.held {
		if h == k {
			return
		}
	}
	t.held = append(t.held, k)
}

// rollback marks the transaction aborted and releases its locks.
func (t *Tx) rollback() {
	if t.done {
		return
	}
	t.done = true
	t.finishTS = t.s.now()
	if t.s.mode == Mode2PL {
		t.s.release(t.held, t.startTS)
	}
	t.s.stats.Aborts.Add(1)
}

// Abort rolls the transaction back explicitly.
func (t *Tx) Abort() {
	t.rollback()
}

// Commit validates and installs the transaction. On ErrConflict the
// transaction has aborted (the DirtyAbort fault may nonetheless have
// installed its writes, which is precisely the injected bug).
func (t *Tx) Commit() error {
	if t.done {
		return ErrTxnDone
	}
	s := t.s
	s.mu.Lock()
	// Validation (MVCC modes only; 2PL transactions hold every lock they
	// touched, so they are always valid).
	conflict := false
	if s.mode != Mode2PL {
		if !t.chance(s.f.LostUpdate) {
			for k := range t.writeBuf {
				if ver, ok := s.latest(k); ok && ver.ts > t.snapTS {
					conflict = true
					break
				}
			}
			for k := range t.appends {
				if _, dup := t.writeBuf[k]; dup {
					continue
				}
				if ver, ok := s.latest(k); ok && ver.ts > t.snapTS {
					conflict = true
					break
				}
			}
		}
		// A transaction started on an injected stale snapshot skips
		// read-set validation: the buggy database believes its snapshot
		// is current, which is exactly how the stale reads leak out.
		if !conflict && s.mode == ModeSerializable && !t.stale && !t.chance(s.f.WriteSkew) {
			for k, seen := range t.readSeen {
				if ver, ok := s.latest(k); ok && ver.ts != seen {
					conflict = true
					break
				}
			}
		}
	}
	// The DirtyAbort fault installs the transaction's effects and then
	// reports an abort — regardless of whether validation passed — so the
	// injected bug manifests on conflict-free workloads too.
	dirty := t.chance(s.f.DirtyAbort)
	if conflict && !dirty {
		s.mu.Unlock()
		t.rollback()
		return ErrConflict
	}
	// Install. Under DirtyAbort we install and still report failure.
	ts := s.now()
	keys := make([]history.Key, 0, len(t.writeBuf)+len(t.appends))
	for k := range t.writeBuf {
		keys = append(keys, k)
	}
	for k := range t.appends {
		if _, dup := t.writeBuf[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if app, ok := t.appends[k]; ok {
			cur, _ := s.latest(k)
			nl := make([]history.Value, 0, len(cur.list)+len(app))
			nl = append(nl, cur.list...)
			nl = append(nl, app...)
			var val history.Value
			if v, ok := t.writeBuf[k]; ok {
				val = v
			} else if len(nl) > 0 {
				val = nl[len(nl)-1]
			}
			s.install(k, ts, val, nl)
		} else {
			s.install(k, ts, t.writeBuf[k], nil)
		}
	}
	s.mu.Unlock()
	t.done = true
	t.finishTS = s.now()
	if s.mode == Mode2PL {
		s.release(t.held, t.startTS)
	}
	if conflict || dirty {
		s.stats.Aborts.Add(1)
		return ErrConflict
	}
	t.committed = true
	s.stats.Commits.Add(1)
	return nil
}
