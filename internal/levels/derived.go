package levels

import (
	"context"

	"mtc/internal/core"
	"mtc/internal/graph"
	"mtc/internal/history"
)

// derived holds the one dependency derivation every rung shares: the
// full typed graph (SO ∪ WR ∪ WW ∪ RW), the divergence witnesses, the
// WW edges (for the per-key version forest), all from a single
// core.DeriveDeps pass over a single history.Index.
type derived struct {
	ix   *history.Index
	g    *graph.Graph
	divs []core.Divergence
	ww   []graph.Edge
	f    *wwForest // built lazily; only weak rungs and guarantees need it
}

// deriveShared builds the shared graph. Edge insertion order — session
// order first, then the derivation's WR/WW/RW order — replicates
// buildDependencyCtx exactly, so cycle searches over d.g return the
// same counterexamples as the dedicated engines (the differential
// suite holds the SER/SI rungs to bit-identical results).
func deriveShared(ctx context.Context, ix *history.Index) (*derived, error) {
	h := ix.History()
	g := graph.New(len(h.Txns))
	h.SessionOrder(func(a, b int) {
		g.AddEdge(graph.Edge{From: a, To: b, Kind: graph.SO})
	})
	d := &derived{ix: ix, g: g}
	// One WW edge per non-root writer slot, modulo re-emissions for
	// repeated reads — NumWriterSlots is the right capacity to reserve.
	d.ww = make([]graph.Edge, 0, ix.NumWriterSlots())
	divs, err := core.DeriveDepsCtx(ctx, ix, func(e graph.Edge) {
		g.AddEdge(e)
		if e.Kind == graph.WW {
			d.ww = append(d.ww, e)
		}
	})
	if err != nil {
		return nil, err
	}
	d.divs = divs
	return d, nil
}

// pass is the result of a rung settled by a stronger rung's verdict.
func (d *derived) pass(lvl core.Level) core.Result {
	return core.Result{Level: lvl, OK: true, NumTxns: d.ix.NumTxns(), NumEdges: d.g.NumEdges()}
}

// checkSER is the SER rung: acyclicity of the full graph, matching
// core.CheckSERCtx on the shared derivation.
func (d *derived) checkSER() core.Result {
	res := core.Result{Level: core.SER, NumTxns: d.ix.NumTxns(), NumEdges: d.g.NumEdges()}
	if cycle := d.g.FindCycle(); cycle != nil {
		res.Cycle = cycle
		return res
	}
	res.OK = true
	return res
}

// checkSI is the SI rung, matching core.CheckSICtx: reject on a
// divergence witness, else search the induced graph.
func (d *derived) checkSI(ctx context.Context) (core.Result, error) {
	res := core.Result{Level: core.SI, NumTxns: d.ix.NumTxns(), NumEdges: d.g.NumEdges()}
	if len(d.divs) > 0 {
		div := d.divs[0]
		res.Divergence = &div
		return res, nil
	}
	gi, expand := core.InduceSI(d.g)
	if err := ctx.Err(); err != nil {
		return core.Result{}, err
	}
	if cycle := gi.FindCycle(); cycle != nil {
		res.Cycle = expand(cycle)
		return res, nil
	}
	res.OK = true
	return res, nil
}

// checkSSER is the SSER rung. A SER cycle survives the addition of
// real-time edges, so it is reused as the witness. Otherwise the rung
// decides strict serializability without materializing the time chain:
// the dependency DAG plus real-time edges has a cycle iff some
// dependency path S ~> T is inverted in real time — T finished before S
// started. (On any mixed cycle, take the real-time edge whose target's
// start rank is maximal; the dependency path feeding that edge's source
// is then inverted.) One memoized depth-first pass computing each
// node's minimum descendant finish rank decides this in O(V+E), several
// times cheaper than a cycle search over the chained graph. Only on
// violation — off the clean-history hot path — does the rung fall back
// to the dedicated sparse-chain engine for the usual compressed cycle
// witness.
//
//mtc:hotpath — the lattice's per-rung DFS over the shared graph
func (d *derived) checkSSER(ctx context.Context, ser core.Result, par int) (core.Result, error) {
	res := core.Result{Level: core.SSER, NumTxns: d.ix.NumTxns(), NumEdges: d.g.NumEdges()}
	if !ser.OK {
		res.Cycle = ser.Cycle
		return res, nil
	}
	start, finish := core.RTOrder(d.ix.History())
	// mnf[u] = the minimum finish rank over u's strict descendants in the
	// dependency DAG (inf when none is timed): u is inverted iff some
	// descendant finished before u started. One memoized post-order DFS —
	// the SER rung just proved acyclicity, so every node settles once.
	const inf = int32(1) << 30
	n := d.g.Len()
	mnf := make([]int32, n)
	state := make([]uint8, n) // 0 unvisited, 1 opened, 2 settled
	for i := range mnf {
		mnf[i] = inf
	}
	violated := false
	stack := make([]int32, 0, 1024)
scan:
	for s := 0; s < n; s++ {
		if s&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return core.Result{}, err
			}
		}
		if state[s] != 0 {
			continue
		}
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v < 0 { // post-visit: children settled, fold their minima
				u := ^v
				m := inf
				for _, e := range d.g.Out(int(u)) {
					cm := mnf[e.To]
					if f := finish[e.To]; f >= 0 && int32(f) < cm {
						cm = int32(f)
					}
					if cm < m {
						m = cm
					}
				}
				mnf[u] = m
				state[u] = 2
				if r := start[u]; r >= 0 && m < int32(r) {
					violated = true
					break scan
				}
				continue
			}
			if state[v] != 0 { // re-pushed by a later parent, already settled
				continue
			}
			state[v] = 1
			stack = append(stack, ^v)
			for _, e := range d.g.Out(int(v)) {
				if state[e.To] == 0 {
					stack = append(stack, int32(e.To))
				}
			}
		}
	}
	if !violated {
		res.OK = true
		return res, nil
	}
	// Materialize the witness the long way: the sparse-chain engine
	// reports the compressed time-order cycle. The pre-check already
	// passed (the lattice walk reached this rung), so skip it.
	return core.CheckSSERCtx(ctx, d.ix.History(), core.Options{
		SkipPreCheck: true, SparseRT: true, Parallelism: par,
	})
}

// checkRC is the RC rung. G0/G1a/G1b are the pre-check's anomalies;
// what remains is G1c — a cycle of write/read dependencies alone — so
// the rung filters the shared graph down to WR ∪ WW and searches that.
//
//mtc:hotpath — rung filter over every edge of the shared graph
func (d *derived) checkRC() core.Result {
	res := core.Result{Level: core.RC, NumTxns: d.ix.NumTxns(), NumEdges: d.g.NumEdges()}
	n := d.g.Len()
	g1 := graph.New(n)
	for u := 0; u < n; u++ {
		for _, e := range d.g.Out(u) {
			if e.Kind == graph.WR || e.Kind == graph.WW {
				g1.AddEdge(e)
			}
		}
	}
	if cycle := g1.FindCycle(); cycle != nil {
		res.Cycle = cycle
		return res
	}
	res.OK = true
	return res
}

// checkRA is the RA rung: RC's G1c plus fractured reads.
func (d *derived) checkRA(rc core.Result) core.Result {
	res := core.Result{Level: core.RA, NumTxns: d.ix.NumTxns(), NumEdges: d.g.NumEdges()}
	if !rc.OK {
		res.Cycle = rc.Cycle
		res.Anomalies = rc.Anomalies
		return res
	}
	if as := d.fracturedReads(); len(as) > 0 {
		res.Anomalies = as
		return res
	}
	res.OK = true
	return res
}

// fracturedReads scans every committed transaction's footprint for
// RAMP's atomic-visibility violation: the transaction reads key x from
// writer W, W also wrote key y, and the transaction's read of y
// observed a version STRICTLY OLDER than W's in y's version order — it
// saw part of W's update and provably missed the rest. Versions on a
// divergent branch are incomparable and never flagged (that situation
// is divergence, rejected at the SI rung), which keeps the lattice
// monotone: every fractured read forces an RW edge back into the
// reader's causal past, so RA failures here are causal failures too.
func (d *derived) fracturedReads() []history.Anomaly {
	ix := d.ix
	f := d.forest()
	h := ix.History()
	var out []history.Anomaly
	for t := range h.Txns {
		if !h.Txns[t].Committed {
			continue
		}
		rk, rv := ix.Reads(t)
		if len(rk) < 2 {
			continue
		}
		for j, y := range rk {
			v := ix.Writer(y, rv[j])
			if v < 0 || v == t {
				continue
			}
			for i := range rk {
				if i == j || rk[i] == y {
					continue
				}
				w := ix.Writer(rk[i], rv[i])
				if w < 0 || w == t || w == v {
					continue
				}
				if _, writes := ix.WriteVal(w, y); !writes {
					continue
				}
				if f.strictlyBefore(y, v, w) {
					out = append(out, history.Anomaly{
						Kind: history.FracturedRead, Txn: t, Key: ix.KeyName(y), Value: rv[j],
					})
					break
				}
			}
		}
	}
	return out
}

// checkCausal is the CAUSAL rung. The causal order CO is the transitive
// closure of SO ∪ WR; the history is causally consistent iff CO is a
// partial order (acyclic) and no transaction misses a causally prior
// write: an anti-dependency T -RW-> S with S ~>CO T means T read a
// version that S — already in T's causal past — had overwritten. Both
// violations surface as a cycle witness: the CO path closed by the RW
// edge. Reachability over the acyclic CO uses the bitset closure.
func (d *derived) checkCausal(ctx context.Context, par int) (core.Result, error) {
	res := core.Result{Level: core.CAUSAL, NumTxns: d.ix.NumTxns(), NumEdges: d.g.NumEdges()}
	n := d.g.Len()
	co := graph.New(n)
	var rws []graph.Edge
	//mtc:cancellation-ok linear edge scan; the closure build below polls ctx
	for u := 0; u < n; u++ {
		for _, e := range d.g.Out(u) {
			switch e.Kind {
			case graph.SO, graph.WR:
				co.AddEdge(e)
			case graph.RW:
				rws = append(rws, e)
			}
		}
	}
	if cycle := co.FindCycle(); cycle != nil {
		res.Cycle = cycle
		return res, nil
	}
	if len(rws) == 0 {
		res.OK = true
		return res, nil
	}
	adj := make([][]int, n)
	//mtc:cancellation-ok linear adjacency copy; the closure build below polls ctx
	for u := 0; u < n; u++ {
		outs := co.Out(u)
		if len(outs) == 0 {
			continue
		}
		row := make([]int, len(outs))
		for i, e := range outs {
			row[i] = e.To
		}
		adj[u] = row
	}
	cl, _, err := graph.NewClosure(ctx, n, adj, par)
	if err != nil {
		return core.Result{}, err
	}
	for _, rw := range rws {
		if cl.Reach(rw.To, rw.From) {
			res.Cycle = liftCycle(co, rw)
			return res, nil
		}
	}
	res.OK = true
	return res, nil
}

// liftCycle materializes the causal counterexample for an RW edge whose
// target reaches its source in CO: the shortest CO path rw.To ~> rw.From
// (BFS) followed by the RW edge itself, a closed cycle of real edges.
func liftCycle(co *graph.Graph, rw graph.Edge) []graph.Edge {
	n := co.Len()
	parent := make([]graph.Edge, n)
	seen := make([]bool, n)
	queue := make([]int, 0, 64)
	queue = append(queue, rw.To)
	seen[rw.To] = true
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		if u == rw.From {
			break
		}
		for _, e := range co.Out(u) {
			if !seen[e.To] {
				seen[e.To] = true
				parent[e.To] = e
				queue = append(queue, e.To)
			}
		}
	}
	if !seen[rw.From] {
		// Unreachable contradicts the closure query; degrade to the bare
		// RW edge rather than panic.
		return []graph.Edge{rw}
	}
	var path []graph.Edge
	for v := rw.From; v != rw.To; v = parent[v].From {
		path = append(path, parent[v])
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return append(path, rw)
}

// forest returns the per-key version forest, building it on first use.
func (d *derived) forest() *wwForest {
	if d.f == nil {
		d.f = newWWForest(d.ix, d.ww)
	}
	return d.f
}

// wwForest answers ancestor queries over each key's version order in
// O(1). The derivation emits a WW edge only for RMW readers, so every
// key's versions form a forest: parent = the version the writer read
// and replaced. Preorder intervals (tin, tout) from an iterative DFS
// decide ancestry; versions on divergent branches are incomparable.
// Slots reuse the index's dense (key, writer) numbering.
type wwForest struct {
	ix     *history.Index
	parent []int32
	tin    []int32
	tout   []int32
}

func newWWForest(ix *history.Index, ww []graph.Edge) *wwForest {
	ns := ix.NumWriterSlots()
	f := &wwForest{
		ix:     ix,
		parent: make([]int32, ns),
		tin:    make([]int32, ns),
		tout:   make([]int32, ns),
	}
	for i := range f.parent {
		f.parent[i] = -1
	}
	cnt := make([]int32, ns+1)
	for _, e := range ww {
		k, ok := ix.KeyIDOf(history.Key(e.Obj))
		if !ok {
			continue
		}
		sp := ix.WriterSlot(k, int32(e.From))
		sc := ix.WriterSlot(k, int32(e.To))
		if sp < 0 || sc < 0 || f.parent[sc] >= 0 {
			continue // repeated reads re-emit the same WW edge; link once
		}
		f.parent[sc] = int32(sp)
		cnt[sp+1]++
	}
	for i := 0; i < ns; i++ {
		cnt[i+1] += cnt[i]
	}
	children := make([]int32, cnt[ns])
	fill := make([]int32, ns)
	copy(fill, cnt[:ns])
	for sc, sp := range f.parent {
		if sp >= 0 {
			children[fill[sp]] = int32(sc)
			fill[sp]++
		}
	}
	var timer int32
	stack := make([]int32, 0, 64)
	for s := 0; s < ns; s++ {
		if f.parent[s] >= 0 {
			continue
		}
		// Two-phase DFS: a node is pushed once as itself and once as
		// ^v (post-visit marker) to stamp tout after its subtree.
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v < 0 {
				f.tout[^v] = timer
				continue
			}
			f.tin[v] = timer
			timer++
			stack = append(stack, ^v)
			for i := cnt[v]; i < cnt[v+1]; i++ {
				stack = append(stack, children[i])
			}
		}
	}
	return f
}

// before reports whether writer a's version of key k precedes or equals
// writer b's in the key's version order (a -WW*-> b). False when either
// writer is not a committed writer of k, or the versions are on
// divergent branches (incomparable).
func (f *wwForest) before(k history.KeyID, a, b int) bool {
	sa := f.ix.WriterSlot(k, int32(a))
	sb := f.ix.WriterSlot(k, int32(b))
	if sa < 0 || sb < 0 {
		return false
	}
	return f.slotBefore(int32(sa), int32(sb))
}

// slotBefore is before on precomputed writer slots (both >= 0): two
// preorder-interval reads, no lookups.
func (f *wwForest) slotBefore(sa, sb int32) bool {
	return f.tin[sa] <= f.tin[sb] && f.tin[sb] < f.tout[sa]
}

// strictlyBefore reports a -WW+-> b: a's version of k is a strict
// ancestor of b's.
func (f *wwForest) strictlyBefore(k history.KeyID, a, b int) bool {
	return a != b && f.before(k, a, b)
}
