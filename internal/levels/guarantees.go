package levels

import (
	"fmt"

	"mtc/internal/history"
)

// sessionGuarantees evaluates the four session guarantees in one walk
// over every session's committed transactions, comparing reads and
// writes against the per-key version forest:
//
//   - RYW: a read of a key the session already wrote must not observe a
//     version strictly older than the session's last write of it.
//   - MR: successive reads of a key must not step back — the newly
//     observed version must not be a strict ancestor of the previously
//     observed one.
//   - MW: a write of a key the session wrote before must not land
//     strictly before the earlier write in version order.
//   - WFR: a write of a key the session read before must not land
//     strictly before the version the session read.
//
// Each guarantee is violated only when the required order is positively
// CONTRADICTED by the version order (the observed/landed version is a
// strict ancestor of the required one). Incomparable versions — blind
// writes the derivation cannot order, or divergent branches — are never
// flagged: blind-write histories get no false positives, and divergence
// is reported at its own rung (SI) rather than smeared over the session
// axis.
func (d *derived) sessionGuarantees() []GuaranteeVerdict {
	f := d.forest()
	ix := d.ix
	h := ix.History()
	ryw := GuaranteeVerdict{Guarantee: ReadYourWrites, OK: true, Session: -1}
	mr := GuaranteeVerdict{Guarantee: MonotonicReads, OK: true, Session: -1}
	mw := GuaranteeVerdict{Guarantee: MonotonicWrites, OK: true, Session: -1}
	wfr := GuaranteeVerdict{Guarantee: WritesFollowReads, OK: true, Session: -1}
	fail := func(v *GuaranteeVerdict, sess int, witness string) {
		if v.OK {
			v.OK = false
			v.Session = sess
			v.Witness = witness
		}
	}
	// The two frontiers are reused across sessions (reset clears only the
	// touched keys), and every entry carries its writer slot so frontier
	// comparisons are pure preorder-interval reads — the binary searches
	// happen once per event, not once per comparison.
	nk := ix.NumKeys()
	readFrom := frontier{f: f, byKey: make([][]fentry, nk)}
	wrote := frontier{f: f, byKey: make([][]fentry, nk)}
	for sess, ids := range h.Sessions {
		// Per-key frontiers of the walk: the writers whose versions the
		// session has observed, and the session transactions that wrote
		// the key. A new event must be checked against EVERY prior entry —
		// tracking only the latest would let a transaction's own RMW read
		// of an old version mask the constraint a previous read
		// established — but it suffices to keep the maximal antichain:
		// a version strictly older than any prior entry is strictly older
		// than some maximal one (strict ancestry composes with
		// ancestor-or-equal), so dominated entries can be dropped and the
		// frontiers stay as wide as the key's divergence, usually 1.
		readFrom.reset()
		wrote.reset()
		for _, t := range ids {
			if !h.Txns[t].Committed {
				continue
			}
			rk, rv := ix.Reads(t)
			for i, k := range rk {
				w := ix.Writer(k, rv[i])
				if w < 0 || w == t {
					continue // own or pre-check-anomalous read
				}
				sw := int32(ix.WriterSlot(k, int32(w)))
				if sw < 0 {
					continue // not a committed writer: incomparable, never flagged
				}
				if tw, bad := wrote.olderThanSome(k, sw, -1); bad {
					fail(&ryw, sess, fmt.Sprintf(
						"session %d: T%d reads %s=%d from T%d, older than the session's own write in T%d",
						sess, t, ix.KeyName(k), rv[i], w, tw))
				}
				if rw, bad := readFrom.olderThanSome(k, sw, -1); bad {
					fail(&mr, sess, fmt.Sprintf(
						"session %d: T%d reads %s=%d from T%d, older than the version of T%d it read before",
						sess, t, ix.KeyName(k), rv[i], w, rw))
				}
				readFrom.add(k, int32(w), sw)
			}
			wk, _ := ix.Writes(t)
			for _, k := range wk {
				st := int32(ix.WriterSlot(k, int32(t)))
				if st < 0 {
					continue
				}
				if tw, bad := wrote.olderThanSome(k, st, -1); bad {
					fail(&mw, sess, fmt.Sprintf(
						"session %d: T%d's write of %s lands before the session's earlier write in T%d",
						sess, t, ix.KeyName(k), tw))
				}
				if rw, bad := readFrom.olderThanSome(k, st, int32(t)); bad {
					fail(&wfr, sess, fmt.Sprintf(
						"session %d: T%d's write of %s lands before the version of T%d the session read",
						sess, t, ix.KeyName(k), rw))
				}
				wrote.add(k, int32(t), st)
			}
		}
	}
	return []GuaranteeVerdict{ryw, mr, mw, wfr}
}

// fentry is one frontier element: a writer transaction and its dense
// (key, writer) slot in the version forest, precomputed so comparisons
// need no slot lookups.
type fentry struct {
	txn  int32
	slot int32
}

// frontier is a per-key maximal antichain of writer transactions under
// the version-forest order: every writer ever added is ancestor-or-equal
// of some retained element, so strict-ancestor queries over the full
// history of additions reduce to queries over the antichain. Keys index
// a flat slice; reset clears only the keys the last session touched, so
// the backing arrays are reused across sessions.
type frontier struct {
	f       *wwForest
	byKey   [][]fentry
	touched []history.KeyID
}

func (fr *frontier) reset() {
	for _, k := range fr.touched {
		fr.byKey[k] = fr.byKey[k][:0]
	}
	fr.touched = fr.touched[:0]
}

// olderThanSome reports whether the version at slot s is a strict
// ancestor of some frontier element whose transaction is not skipTxn,
// returning that element's transaction.
func (fr *frontier) olderThanSome(k history.KeyID, s, skipTxn int32) (int, bool) {
	for _, m := range fr.byKey[k] {
		if m.txn != skipTxn && s != m.slot && fr.f.slotBefore(s, m.slot) {
			return int(m.txn), true
		}
	}
	return 0, false
}

// add inserts writer txn (at version slot s) into k's frontier, dropping
// dominated entries. Elements the forest cannot order stay side by side,
// so the frontier width is bounded by the key's divergence within one
// session.
func (fr *frontier) add(k history.KeyID, txn, s int32) {
	xs := fr.byKey[k]
	for _, m := range xs {
		if fr.f.slotBefore(s, m.slot) { // ancestor-or-equal: dominated
			return
		}
	}
	if len(xs) == 0 {
		fr.touched = append(fr.touched, k)
	}
	out := xs[:0]
	for _, m := range xs {
		if !fr.f.slotBefore(m.slot, s) { // keep elements s does not dominate
			out = append(out, m)
		}
	}
	fr.byKey[k] = append(out, fentry{txn: txn, slot: s})
}

// ParseGuarantee maps a session-guarantee name to its constant.
func ParseGuarantee(s string) (Guarantee, error) {
	for _, g := range Guarantees() {
		if string(g) == s {
			return g, nil
		}
	}
	return "", fmt.Errorf("levels: unknown session guarantee %q (want RYW, MR, MW or WFR)", s)
}
