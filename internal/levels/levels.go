// Package levels widens the verification service from a yes/no oracle
// for the strong levels into an isolation profiler over the full
// Adya-style lattice:
//
//	RC < RA < CAUSAL < SI < SER < SSER
//
// plus the four per-session guarantees (read-your-writes, monotonic
// reads, monotonic writes, writes-follow-reads) as a separate axis.
// Everything is evaluated from ONE shared history.Index and ONE
// core.DeriveDeps pass — the weak rungs are verdict layers over the
// typed dependency graph the strong checkers already pay for:
//
//   - RC (read committed, PL-2) forbids the G0/G1 phenomena: the
//     dirty/intermediate/thin-air reads the pre-check reports, and G1c —
//     a cycle of WR ∪ WW edges.
//   - RA (read atomic) additionally forbids fractured reads: a
//     transaction that observes one of a writer's updates must not
//     observe a strictly older version of another key that writer also
//     wrote (RAMP's atomic-visibility criterion, decided over per-key
//     version orders).
//   - CAUSAL requires the causal order SO ∪ WR to be acyclic and, lifted
//     over anti-dependencies, that no transaction misses a write that
//     causally precedes it: an RW edge T -> S with S ~>(SO ∪ WR) T closes
//     a forbidden cycle.
//   - SI / SER / SSER reuse the exact engines of internal/core on the
//     shared graph, so profile verdicts are bit-identical to the
//     dedicated checkers (differentially enforced in CI).
//
// Every rung takes the pre-check axioms (INT, unique committed writers)
// as its base: a G1a/G1b witness fails the whole lattice at once, which
// is also what lets Profile short-circuit — a pass at SER implies every
// weaker rung passes, so the weak checks only run on histories that
// already failed the strong ones. Implication chain (soundness of the
// short-circuit): every WW edge of the derived graph parallels a WR edge
// (the RMW pattern), so a G1c cycle is a causal cycle, a causal cycle or
// lifted RW cycle is an SI-induced cycle, and an SI pass forbids both
// fractured reads and divergence; SER pass implies SI pass because every
// induced cycle expands to a base cycle.
//
// Version-order comparisons (fractured reads, session guarantees) treat
// incomparable writes — divergent branches of a key's WW forest — as
// unordered and never flag them: only a positively contradicted order is
// a violation, so blind-write histories with undetermined write orders
// produce no false positives. Divergence itself is rejected at SI, its
// rung in the lattice.
package levels

import (
	"context"
	"fmt"

	"mtc/internal/core"
	"mtc/internal/graph"
	"mtc/internal/history"
)

// None is the pseudo-level a profile reports when even RC is violated
// (a pre-check anomaly or a G1c cycle): no rung of the lattice holds.
const None core.Level = "NONE"

// Options tunes a profile or single-rung run.
type Options struct {
	// SkipPreCheck disables the INT/G1 pre-pass. Only use on histories
	// already known to satisfy it — every rung assumes its axioms.
	SkipPreCheck bool
	// Parallelism bounds the worker pool of the causal reachability
	// closure, the one parallel phase. <= 0 selects GOMAXPROCS;
	// verdicts are identical at every setting.
	Parallelism int
}

// Verdict is one rung's outcome: the level and the full engine result,
// whose counterexample fields (anomalies, divergence, cycle) carry the
// witness that breaks the rung.
type Verdict struct {
	Level core.Level
	Res   core.Result
}

// Witness renders the rung's breaking evidence, or "" when it passed.
func (v Verdict) Witness() string {
	r := v.Res
	switch {
	case r.OK:
		return ""
	case len(r.Anomalies) > 0:
		return r.Anomalies[0].String()
	case r.Divergence != nil:
		return r.Divergence.String()
	case len(r.Cycle) > 0:
		return graph.FormatCycle(r.Cycle)
	}
	return ""
}

// Guarantee names one of the four per-session guarantees.
type Guarantee string

// The session guarantees, checked per session over the per-key version
// orders (the WW forest the shared derivation already determines).
const (
	ReadYourWrites    Guarantee = "RYW" // reads see the session's own earlier writes
	MonotonicReads    Guarantee = "MR"  // reads never step back in version order
	MonotonicWrites   Guarantee = "MW"  // the session's writes are version-ordered as issued
	WritesFollowReads Guarantee = "WFR" // writes are ordered after the versions the session read
)

// Guarantees lists the four session guarantees in reporting order.
func Guarantees() []Guarantee {
	return []Guarantee{ReadYourWrites, MonotonicReads, MonotonicWrites, WritesFollowReads}
}

// GuaranteeVerdict is the outcome of one session guarantee across every
// session of the history.
type GuaranteeVerdict struct {
	Guarantee Guarantee
	OK        bool
	// Session and Witness locate the first violation (Session is -1 when
	// OK, or when the pre-check already failed and the guarantees are
	// vacuously violated).
	Session int
	Witness string
}

// Report is the full lattice profile of one history.
type Report struct {
	// Strongest is the strongest isolation level the history satisfies,
	// or None when every rung is violated. The rung verdicts are
	// monotone (a violated rung invalidates everything above), so the
	// level below each violation is exactly where the history lands.
	Strongest core.Level
	// NumTxns and NumEdges describe the shared dependency derivation.
	NumTxns  int
	NumEdges int
	// Rungs holds one verdict per lattice level, weakest (RC) first.
	Rungs []Verdict
	// Guarantees holds the four session-guarantee verdicts.
	Guarantees []GuaranteeVerdict
}

// Rung returns the verdict at lvl, or nil.
func (r *Report) Rung(lvl core.Level) *Verdict {
	for i := range r.Rungs {
		if r.Rungs[i].Level == lvl {
			return &r.Rungs[i]
		}
	}
	return nil
}

// Breaking returns the weakest violated rung — the one whose witness
// explains why Strongest is not higher — or nil when every rung passed.
func (r *Report) Breaking() *Verdict {
	for i := range r.Rungs {
		if !r.Rungs[i].Res.OK {
			return &r.Rungs[i]
		}
	}
	return nil
}

// Summary renders a one-line account of the profile.
func (r *Report) Summary() string {
	s := fmt.Sprintf("strongest level satisfied: %s", r.Strongest)
	if b := r.Breaking(); b != nil {
		s += fmt.Sprintf("; breaks at %s: %s", b.Level, b.Witness())
	}
	var bad []string
	for _, g := range r.Guarantees {
		if !g.OK {
			bad = append(bad, string(g.Guarantee))
		}
	}
	if len(bad) > 0 {
		s += "; session guarantees violated:"
		for _, g := range bad {
			s += " " + g
		}
	}
	return s
}

// Profile evaluates every isolation level and session guarantee of h
// from one shared index and one dependency derivation, walking the
// lattice with short-circuiting: the strong engines run first and a pass
// there settles every weaker rung, so the weak checks only execute on
// histories that already violate SI.
func Profile(ctx context.Context, h *history.History, opts Options) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ProfileIndexed(ctx, history.NewIndex(h), opts)
}

// ProfileIndexed is Profile over a prebuilt columnar index.
func ProfileIndexed(ctx context.Context, ix *history.Index, opts Options) (*Report, error) {
	rep := &Report{NumTxns: ix.NumTxns()}
	if !opts.SkipPreCheck {
		if as := history.CheckInternalIndexed(ix); len(as) > 0 {
			// Shared anomaly evidence: a G1a/G1b/INT witness fails every
			// rung (and the guarantees, whose read semantics it voids) at
			// once — no graph is built.
			for _, lvl := range core.Lattice() {
				rep.Rungs = append(rep.Rungs, Verdict{Level: lvl, Res: core.Result{
					Level: lvl, Anomalies: as, NumTxns: rep.NumTxns,
				}})
			}
			rep.Strongest = None
			w := "pre-check: " + as[0].String()
			for _, g := range Guarantees() {
				rep.Guarantees = append(rep.Guarantees, GuaranteeVerdict{
					Guarantee: g, Session: -1, Witness: w,
				})
			}
			return rep, nil
		}
	}
	d, err := deriveShared(ctx, ix)
	if err != nil {
		return nil, err
	}
	rep.NumEdges = d.g.NumEdges()

	ser := d.checkSER()
	var si, causal, ra, rc core.Result
	switch {
	case ser.OK:
		// SER ⇒ SI ⇒ CAUSAL ⇒ RA ⇒ RC (see the package comment).
		si, causal, ra, rc = d.pass(core.SI), d.pass(core.CAUSAL), d.pass(core.RA), d.pass(core.RC)
	default:
		if si, err = d.checkSI(ctx); err != nil {
			return nil, err
		}
		switch {
		case si.OK:
			causal, ra, rc = d.pass(core.CAUSAL), d.pass(core.RA), d.pass(core.RC)
		default:
			if causal, err = d.checkCausal(ctx, opts.Parallelism); err != nil {
				return nil, err
			}
			if causal.OK {
				ra, rc = d.pass(core.RA), d.pass(core.RC)
			} else {
				rc = d.checkRC()
				ra = d.checkRA(rc)
			}
		}
	}
	// The guarantee scan and the SSER rung share nothing mutable — both
	// are read-only over the derivation (any weak rung that builds the
	// version forest has already finished) — so they run concurrently
	// and the scan hides behind the inversion DFS on multicore hosts.
	gch := make(chan []GuaranteeVerdict, 1)
	go func() { gch <- d.sessionGuarantees() }()
	sser, err := d.checkSSER(ctx, ser, opts.Parallelism)
	rep.Guarantees = <-gch
	if err != nil {
		return nil, err
	}

	rep.Rungs = []Verdict{
		{core.RC, rc}, {core.RA, ra}, {core.CAUSAL, causal},
		{core.SI, si}, {core.SER, ser}, {core.SSER, sser},
	}
	rep.Strongest = None
	for i := len(rep.Rungs) - 1; i >= 0; i-- {
		if rep.Rungs[i].Res.OK {
			rep.Strongest = rep.Rungs[i].Level
			break
		}
	}
	return rep, nil
}

// CheckLevel verifies h at a single level. The strong levels dispatch to
// their dedicated engines in internal/core; RC, RA and CAUSAL are
// evaluated here over the shared derivation. Like the strong engines it
// returns a Result whose counterexample fields carry the witness.
func CheckLevel(ctx context.Context, h *history.History, lvl core.Level, opts Options) (core.Result, error) {
	switch lvl {
	case core.RC, core.RA, core.CAUSAL:
	default:
		return core.CheckCtx(ctx, h, lvl, core.Options{
			SkipPreCheck: opts.SkipPreCheck, Parallelism: opts.Parallelism,
		})
	}
	if err := ctx.Err(); err != nil {
		return core.Result{}, err
	}
	ix := history.NewIndex(h)
	if !opts.SkipPreCheck {
		if as := history.CheckInternalIndexed(ix); len(as) > 0 {
			return core.Result{Level: lvl, Anomalies: as, NumTxns: ix.NumTxns()}, nil
		}
	}
	d, err := deriveShared(ctx, ix)
	if err != nil {
		return core.Result{}, err
	}
	switch lvl {
	case core.RC:
		return d.checkRC(), nil
	case core.RA:
		return d.checkRA(d.checkRC()), nil
	default:
		return d.checkCausal(ctx, opts.Parallelism)
	}
}
