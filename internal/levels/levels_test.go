package levels

import (
	"context"
	"testing"

	"mtc/internal/core"
	"mtc/internal/history"
)

func profile(t *testing.T, h *history.History) *Report {
	t.Helper()
	rep, err := Profile(context.Background(), h, Options{})
	if err != nil {
		t.Fatalf("Profile: %v", err)
	}
	return rep
}

// Every fixture must land at exactly the rungs its expectations name,
// with monotone verdicts and a strongest level right below the first
// violated rung.
func TestProfileFixtures(t *testing.T) {
	for _, f := range history.Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			rep := profile(t, f.H)
			if len(rep.Rungs) != len(core.Lattice()) {
				t.Fatalf("rungs = %d, want %d", len(rep.Rungs), len(core.Lattice()))
			}
			for _, v := range rep.Rungs {
				want := !f.Violates(string(v.Level))
				if v.Res.OK != want {
					t.Errorf("%s: OK = %v, want %v (witness %q)", v.Level, v.Res.OK, want, v.Witness())
				}
				if !v.Res.OK && v.Witness() == "" {
					t.Errorf("%s: violated rung has no witness", v.Level)
				}
			}
			// Monotonicity: once a rung fails, everything above fails.
			failed := false
			for _, v := range rep.Rungs {
				if failed && v.Res.OK {
					t.Fatalf("non-monotone lattice: %s passes above a failed rung", v.Level)
				}
				if !v.Res.OK {
					failed = true
				}
			}
			wantStrongest := None
			for _, lvl := range core.Lattice() {
				if f.Violates(string(lvl)) {
					break
				}
				wantStrongest = lvl
			}
			if rep.Strongest != wantStrongest {
				t.Fatalf("strongest = %s, want %s", rep.Strongest, wantStrongest)
			}
		})
	}
}

// CheckLevel must agree with Profile's rung on every fixture and level.
func TestCheckLevelAgreesWithProfile(t *testing.T) {
	ctx := context.Background()
	for _, f := range history.Fixtures() {
		rep := profile(t, f.H)
		for _, lvl := range core.Lattice() {
			res, err := CheckLevel(ctx, f.H, lvl, Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", f.Name, lvl, err)
			}
			if res.OK != rep.Rung(lvl).Res.OK {
				t.Fatalf("%s/%s: CheckLevel OK=%v, profile rung OK=%v",
					f.Name, lvl, res.OK, rep.Rung(lvl).Res.OK)
			}
		}
	}
}

func TestProfileSerialHistory(t *testing.T) {
	rep := profile(t, history.SerialHistory(30, "x", "y"))
	if rep.Strongest != core.SSER {
		t.Fatalf("serial history strongest = %s, want SSER: %s", rep.Strongest, rep.Summary())
	}
	for _, v := range rep.Rungs {
		if !v.Res.OK {
			t.Fatalf("serial history violates %s", v.Level)
		}
	}
	for _, g := range rep.Guarantees {
		if !g.OK {
			t.Fatalf("serial history violates %s: %s", g.Guarantee, g.Witness)
		}
	}
	if rep.Breaking() != nil {
		t.Fatal("Breaking on a clean profile must be nil")
	}
}

// Blind writes leave version orders undetermined; the profiler must not
// invent violations out of incomparable versions.
func TestProfileBlindWrites(t *testing.T) {
	rep := profile(t, history.BlindWriteHistory(3, 5))
	if rep.Strongest != core.SSER {
		t.Fatalf("blind-write strongest = %s: %s", rep.Strongest, rep.Summary())
	}
	for _, g := range rep.Guarantees {
		if !g.OK {
			t.Fatalf("blind-write history flags %s: %s", g.Guarantee, g.Witness)
		}
	}
}

// A pre-check anomaly fails every rung and guarantee at once.
func TestProfilePreCheckShared(t *testing.T) {
	f := history.FixtureByName("AbortedRead")
	rep := profile(t, f.H)
	if rep.Strongest != None {
		t.Fatalf("strongest = %s, want NONE", rep.Strongest)
	}
	for _, v := range rep.Rungs {
		if v.Res.OK || len(v.Res.Anomalies) == 0 {
			t.Fatalf("%s: want shared pre-check anomalies", v.Level)
		}
		if v.Res.Anomalies[0].Kind != history.AbortedRead {
			t.Fatalf("%s: anomaly = %s", v.Level, v.Res.Anomalies[0].Kind)
		}
	}
	for _, g := range rep.Guarantees {
		if g.OK {
			t.Fatalf("%s must fail under a pre-check anomaly", g.Guarantee)
		}
	}
}

// The session-guarantee axis: one targeted history per guarantee.
func TestSessionGuarantees(t *testing.T) {
	find := func(rep *Report, g Guarantee) GuaranteeVerdict {
		for _, v := range rep.Guarantees {
			if v.Guarantee == g {
				return v
			}
		}
		t.Fatalf("guarantee %s missing", g)
		return GuaranteeVerdict{}
	}

	t.Run("RYW", func(t *testing.T) {
		// The session writes x then reads the pre-write value back.
		b := history.NewBuilder("x")
		b.Txn(0, history.R("x", 0), history.W("x", 1))
		b.Txn(0, history.R("x", 0))
		rep := profile(t, b.Build())
		if v := find(rep, ReadYourWrites); v.OK {
			t.Fatal("RYW must be violated")
		} else if v.Session != 0 {
			t.Fatalf("RYW session = %d", v.Session)
		}
		if v := find(rep, MonotonicWrites); !v.OK {
			t.Fatalf("MW must hold: %s", v.Witness)
		}
	})

	t.Run("MR", func(t *testing.T) {
		// The session reads version 1, then steps back to version 0,
		// without writing anything itself.
		b := history.NewBuilder("x")
		b.Txn(1, history.R("x", 0), history.W("x", 1))
		b.Txn(0, history.R("x", 1))
		b.Txn(0, history.R("x", 0))
		rep := profile(t, b.Build())
		if v := find(rep, MonotonicReads); v.OK {
			t.Fatal("MR must be violated")
		}
		if v := find(rep, ReadYourWrites); !v.OK {
			t.Fatalf("RYW must hold: %s", v.Witness)
		}
	})

	t.Run("MW", func(t *testing.T) {
		// The session's first write lands after its second in version
		// order: T1 reads the value T2 (later in the session) writes.
		b := history.NewBuilder("x")
		b.Txn(0, history.R("x", 2), history.W("x", 3))
		b.Txn(0, history.R("x", 0), history.W("x", 2))
		rep := profile(t, b.Build())
		if v := find(rep, MonotonicWrites); v.OK {
			t.Fatal("MW must be violated")
		}
	})

	t.Run("WFR", func(t *testing.T) {
		// The session reads version 2 of x, then writes a version that
		// lands BEFORE version 2 (another session's RMW chains 1 -> 2).
		b := history.NewBuilder("x")
		b.Txn(0, history.R("x", 2))
		b.Txn(1, history.R("x", 1), history.W("x", 2))
		b.Txn(0, history.R("x", 0), history.W("x", 1))
		rep := profile(t, b.Build())
		if v := find(rep, WritesFollowReads); v.OK {
			t.Fatal("WFR must be violated")
		}
	})
}

func TestParseGuarantee(t *testing.T) {
	for _, g := range Guarantees() {
		got, err := ParseGuarantee(string(g))
		if err != nil || got != g {
			t.Fatalf("ParseGuarantee(%s) = %v, %v", g, got, err)
		}
	}
	if _, err := ParseGuarantee("nope"); err == nil {
		t.Fatal("want error for unknown guarantee")
	}
}

// Profile rung results must be bit-identical to the dedicated engines
// on the fixture corpus (the randomized differential suite at the repo
// root extends this to thousands of histories).
func TestProfileMatchesEnginesOnFixtures(t *testing.T) {
	ctx := context.Background()
	for _, f := range history.Fixtures() {
		rep := profile(t, f.H)
		for _, lvl := range []core.Level{core.SER, core.SI} {
			eng, err := core.CheckCtx(ctx, f.H, lvl, core.Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", f.Name, lvl, err)
			}
			v := rep.Rung(lvl)
			if eng.OK != v.Res.OK {
				t.Fatalf("%s/%s: engine OK=%v, rung OK=%v", f.Name, lvl, eng.OK, v.Res.OK)
			}
			if eng.NumEdges != v.Res.NumEdges {
				t.Fatalf("%s/%s: engine edges=%d, rung edges=%d", f.Name, lvl, eng.NumEdges, v.Res.NumEdges)
			}
			if len(eng.Cycle) != len(v.Res.Cycle) {
				t.Fatalf("%s/%s: engine cycle %d edges, rung %d", f.Name, lvl, len(eng.Cycle), len(v.Res.Cycle))
			}
			for i := range eng.Cycle {
				if eng.Cycle[i] != v.Res.Cycle[i] {
					t.Fatalf("%s/%s: cycle[%d] differs: %s vs %s", f.Name, lvl, i, eng.Cycle[i], v.Res.Cycle[i])
				}
			}
		}
	}
}

func TestLatticeRank(t *testing.T) {
	prev := -1
	for _, lvl := range core.Lattice() {
		r := core.LatticeRank(lvl)
		if r <= prev {
			t.Fatalf("rank(%s) = %d, not increasing", lvl, r)
		}
		prev = r
	}
	if core.LatticeRank(None) != -1 {
		t.Fatal("NONE must rank below the lattice")
	}
}

func TestCheckLevelCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CheckLevel(ctx, history.SerialHistory(5), core.CAUSAL, Options{}); err == nil {
		t.Fatal("want context error")
	}
	if _, err := Profile(ctx, history.SerialHistory(5), Options{}); err == nil {
		t.Fatal("want context error")
	}
}
