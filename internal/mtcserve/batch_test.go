package mtcserve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"mtc/internal/api"
	"mtc/internal/history"
)

// openStreamSession opens a streaming session over HTTP and returns its
// id.
func openStreamSession(t *testing.T, ts *httptest.Server, req api.SessionRequest) string {
	t.Helper()
	resp, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", req)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open session: %d %s", resp.StatusCode, raw)
	}
	var st api.SessionStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

// mtcbFrame encodes txns as one MTCB document with dense ids, the wire
// form POST /v1/sessions/{id}/batch accepts.
func mtcbFrame(t *testing.T, txns []history.Txn) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw, err := history.NewBinaryWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range txns {
		txns[i].ID = i
		if err := bw.WriteTxn(txns[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postBatch posts one binary frame and decodes the session status.
func postBatch(t *testing.T, ts *httptest.Server, id string, frame []byte) (*http.Response, api.SessionStatus) {
	t.Helper()
	resp, raw := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/batch", string(frame))
	var st api.SessionStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("batch status body: %v (%s)", err, raw)
		}
	}
	return resp, st
}

// TestSessionBatchIngest feeds the same transactions to one session via
// JSON /txns and to another via binary /batch frames: the running
// statuses must agree record for record, including the violation flip.
func TestSessionBatchIngest(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()

	committed := true
	mk := func(sess int, ops ...history.Op) (api.TxnPayload, history.Txn) {
		return api.TxnPayload{Sess: sess, Ops: ops, Committed: &committed},
			history.Txn{Session: sess, Ops: ops, Committed: committed}
	}
	// A lost-update pattern that violates SI: both txns read x=0 and
	// write it, so the second one must flip the verdict.
	p1, t1 := mk(0, history.R("x", 0), history.W("x", 1))
	p2, t2 := mk(1, history.R("x", 0), history.W("x", 2))

	jsonID := openStreamSession(t, ts, api.SessionRequest{Level: "SI", Keys: []history.Key{"x"}})
	binID := openStreamSession(t, ts, api.SessionRequest{Level: "SI", Keys: []history.Key{"x"}})

	resp, rawJSON := doJSON(t, "POST", ts.URL+"/v1/sessions/"+jsonID+"/txns", []api.TxnPayload{p1, p2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json txns: %d %s", resp.StatusCode, rawJSON)
	}
	var jsonSt api.SessionStatus
	if err := json.Unmarshal(rawJSON, &jsonSt); err != nil {
		t.Fatal(err)
	}

	resp, binSt := postBatch(t, ts, binID, mtcbFrame(t, []history.Txn{t1, t2}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d", resp.StatusCode)
	}
	if binSt.Txns != jsonSt.Txns || binSt.OK != jsonSt.OK || binSt.Edges != jsonSt.Edges {
		t.Fatalf("binary ingest diverges from JSON ingest:\nbinary: %+v\njson:   %+v", binSt, jsonSt)
	}
	if binSt.OK {
		t.Fatalf("lost update not flagged through batch ingest: %+v", binSt)
	}
}

// TestSessionBatchMultiFrame sends several frames through one session —
// the arena and interner persist across frames — and checks the clean
// stream stays clean with the right transaction count.
func TestSessionBatchMultiFrame(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	id := openStreamSession(t, ts, api.SessionRequest{Level: "SI", Keys: []history.Key{"x", "y"}})
	v := history.Value(1)
	var last history.Value
	for frame := 0; frame < 3; frame++ {
		var txns []history.Txn
		for i := 0; i < 4; i++ {
			txns = append(txns, history.Txn{
				Session: i % 2, Committed: true,
				Ops: []history.Op{history.R("x", last), history.W("x", v)},
			})
			last, v = v, v+1
		}
		resp, st := postBatch(t, ts, id, mtcbFrame(t, txns))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("frame %d: %d", frame, resp.StatusCode)
		}
		// +1 for the implicit init transaction from the declared keys.
		if want := 1 + (frame+1)*4; st.Txns != want || !st.OK {
			t.Fatalf("frame %d: txns=%d ok=%v, want %d/true", frame, st.Txns, st.OK, want)
		}
	}
}

// TestSessionBatchGzip: a gzip-wrapped frame is accepted transparently
// (the binary reader sniffs the gzip magic).
func TestSessionBatchGzip(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	id := openStreamSession(t, ts, api.SessionRequest{Level: "SI", Keys: []history.Key{"x"}})
	frame := mtcbFrame(t, []history.Txn{
		{Session: 0, Committed: true, Ops: []history.Op{history.W("x", 1)}},
	})
	var zb bytes.Buffer
	zw := gzip.NewWriter(&zb)
	if _, err := zw.Write(frame); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	resp, st := postBatch(t, ts, id, zb.Bytes())
	if resp.StatusCode != http.StatusOK || st.Txns != 2 { // init + 1
		t.Fatalf("gzipped frame: %d %+v", resp.StatusCode, st)
	}
}

// TestSessionBatchRejections: a frame with an init record, a corrupt
// frame, and a truncated frame all 400 without ingesting anything — a
// batch is atomic — and a finalized session answers 409.
func TestSessionBatchRejections(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	id := openStreamSession(t, ts, api.SessionRequest{Level: "SI", Keys: []history.Key{"x"}})

	good := mtcbFrame(t, []history.Txn{
		{Session: 0, Committed: true, Ops: []history.Op{history.W("x", 1)}},
	})
	if resp, st := postBatch(t, ts, id, good); resp.StatusCode != http.StatusOK || st.Txns != 2 { // init + 1
		t.Fatalf("seed frame: %d %+v", resp.StatusCode, st)
	}

	withInit := mtcbFrame(t, []history.Txn{
		{Session: -1, Committed: true, Ops: []history.Op{history.W("x", 0)}},
		{Session: 0, Committed: true, Ops: []history.Op{history.W("x", 2)}},
	})
	truncated := good[:len(good)-1]
	garbage := []byte("not an mtcb frame at all")
	for _, tc := range []struct {
		name  string
		frame []byte
	}{{"init record", withInit}, {"truncated", truncated}, {"garbage", garbage}} {
		resp, _ := postBatch(t, ts, id, tc.frame)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// Nothing from the rejected frames took effect.
	resp, raw := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/verdict", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdict: %d", resp.StatusCode)
	}
	var st api.SessionStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Txns != 2 {
		t.Fatalf("rejected frames ingested transactions: %+v", st)
	}

	// Finalize, then batch must conflict.
	if resp, _ := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/verdict?final=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("finalize: %d", resp.StatusCode)
	}
	if resp, _ := postBatch(t, ts, id, good); resp.StatusCode != http.StatusConflict {
		t.Fatalf("batch after finalize: %d, want 409", resp.StatusCode)
	}

	if resp, _ := postBatch(t, ts, "nope", good); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("batch on unknown session: want 404")
	}
}
