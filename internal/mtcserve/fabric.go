package mtcserve

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"time"

	"mtc/internal/api"
	"mtc/internal/fabric"
)

// Fabric endpoints: the coordinator side of the distributed checking
// fabric, mounted whenever the server was started as a coordinator
// (Server.Fabric non-nil, i.e. mtc-serve -fabric-wal). The handlers are
// thin: scheduling, durability and liveness all live in
// internal/fabric; this layer only translates the coordinator's errors
// into the v1 envelope. An ErrUnknownWorker maps to 404 — the signal
// that makes a worker whose lease died with a coordinator restart
// re-register.

// handleFabricRegister implements POST /v1/fabric/workers.
func (s *Server) handleFabricRegister(w http.ResponseWriter, r *http.Request) {
	if s.Fabric == nil {
		s.fabricDisabled(w, r)
		return
	}
	var hello api.WorkerHello
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&hello); err != nil && err != io.EOF {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "bad worker hello: %v", err)
		return
	}
	lease := s.Fabric.Register(hello)
	writeJSON(w, http.StatusCreated, lease)
}

// handleFabricHeartbeat implements POST /v1/fabric/workers/{id}/heartbeat.
func (s *Server) handleFabricHeartbeat(w http.ResponseWriter, r *http.Request) {
	if s.Fabric == nil {
		s.fabricDisabled(w, r)
		return
	}
	if err := s.Fabric.Heartbeat(r.PathValue("id")); err != nil {
		s.fabricError(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleFabricPull implements POST /v1/fabric/workers/{id}/pull: 200
// with a task, or 204 when no work is available.
func (s *Server) handleFabricPull(w http.ResponseWriter, r *http.Request) {
	if s.Fabric == nil {
		s.fabricDisabled(w, r)
		return
	}
	task, err := s.Fabric.Pull(r.PathValue("id"))
	if err != nil {
		s.fabricError(w, r, err)
		return
	}
	if task == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeFabricJSON(w, r, http.StatusOK, task)
}

// writeFabricJSON writes v as JSON, gzip-compressing the body when the
// client advertised Accept-Encoding: gzip and the encoding is at least
// fabric.GzipThreshold bytes — component task payloads dwarf the rest of
// the fabric chatter, and their JSON (or base64-wrapped MTCB) bodies
// compress well. Compression is skipped when it does not actually shrink
// the body.
func writeFabricJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if len(body) >= fabric.GzipThreshold && strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		var zb bytes.Buffer
		zw := gzip.NewWriter(&zb)
		_, werr := zw.Write(body)
		if cerr := zw.Close(); werr == nil && cerr == nil && zb.Len() < len(body) {
			body = zb.Bytes()
			w.Header().Set("Content-Encoding", "gzip")
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// handleFabricResults implements POST /v1/fabric/workers/{id}/results.
func (s *Server) handleFabricResults(w http.ResponseWriter, r *http.Request) {
	if s.Fabric == nil {
		s.fabricDisabled(w, r)
		return
	}
	// Workers gzip large result bodies (fabric.GzipThreshold); inflate
	// transparently, re-bounding the decompressed stream by the body
	// limit so a compression bomb cannot bypass MaxBytesHandler.
	body := io.Reader(r.Body)
	if r.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(r.Body)
		if err != nil {
			s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "bad gzip fabric result body: %v", err)
			return
		}
		defer zr.Close()
		body = io.LimitReader(zr, s.maxBodyBytes())
	}
	var res api.FabricResult
	if err := json.NewDecoder(body).Decode(&res); err != nil {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "bad fabric result: %v", err)
		return
	}
	accepted, err := s.Fabric.PushResult(r.PathValue("id"), res)
	if err != nil {
		s.fabricError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, api.FabricAck{Accepted: accepted})
}

// handleFabricStatus implements GET /v1/fabric/status.
func (s *Server) handleFabricStatus(w http.ResponseWriter, r *http.Request) {
	if s.Fabric == nil {
		s.fabricDisabled(w, r)
		return
	}
	writeJSON(w, http.StatusOK, s.Fabric.Status())
}

func (s *Server) fabricDisabled(w http.ResponseWriter, r *http.Request) {
	s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest,
		"this server is not a fabric coordinator (start it with -fabric-wal)")
}

func (s *Server) fabricError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, fabric.ErrUnknownWorker):
		s.v1Error(w, r, http.StatusNotFound, api.CodeNotFound, "%v", err)
	case errors.Is(err, fabric.ErrUnknownJob):
		s.v1Error(w, r, http.StatusNotFound, api.CodeNotFound, "%v", err)
	default:
		s.v1Error(w, r, http.StatusInternalServerError, api.CodeInternal, "%v", err)
	}
}

// runFabricJob drives one distributed job from a pool worker: the job
// was already submitted to the coordinator at HTTP-accept time (that is
// the WAL durability point), so this just waits for the fold and maps
// the outcome onto the job document. Cancellation and timeout also
// cancel the fabric job, making the abort durable — a restart must not
// resume a job its submitter gave up on.
func (s *Server) runFabricJob(j *job) {
	if !j.transition(api.JobRunning, nil, "") {
		s.Fabric.Cancel(j.id, "job canceled")
		return
	}
	ctx, cancel := context.WithTimeout(j.ctx, j.timeout)
	defer cancel()
	rep, err := s.Fabric.Wait(ctx, j.id)
	switch {
	case err == nil:
		j.transition(api.JobDone, &rep, "")
	case errors.Is(err, context.Canceled) && j.ctx.Err() != nil:
		s.Fabric.Cancel(j.id, "job canceled")
		j.transition(api.JobCanceled, nil, "job canceled")
	case errors.Is(err, context.DeadlineExceeded):
		msg := "job timed out after " + j.timeout.String()
		s.Fabric.Cancel(j.id, msg)
		j.transition(api.JobFailed, nil, msg)
	default:
		j.transition(api.JobFailed, nil, err.Error())
	}
}

// AdoptFabricJobs recreates server job documents for every job the
// coordinator recovered from its WAL, so a restarted coordinator serves
// GET /v1/jobs/{id} for jobs submitted before the crash. Completed jobs
// come back terminal with their folded verdicts — never re-run — and
// pending jobs re-enter the pool, where a worker waits for the resumed
// fold. Call it once, after setting Fabric and before serving.
func (s *Server) AdoptFabricJobs() {
	if s.Fabric == nil {
		return
	}
	s.startWorkers()
	var resume []*job
	s.jobsMu.Lock()
	for _, info := range s.Fabric.Jobs() {
		if _, ok := s.jobs[info.ID]; ok {
			continue
		}
		// Keep fresh ids past every recovered one, so a new submission
		// cannot collide with a recovered job's WAL identity.
		if n := jobNum(info.ID); n > s.nextJobID {
			s.nextJobID = n
		}
		ctx, cancel := context.WithCancel(context.Background())
		j := &job{
			id: info.ID, checker: info.Engine, opts: info.Opts,
			timeout: s.jobTimeout(), txns: info.Txns,
			ctx: ctx, cancel: cancel,
			distributed: true,
			state:       api.JobQueued, created: time.Now(),
		}
		j.events = append(j.events, api.JobEvent{JobID: j.id, Seq: 0, State: api.JobQueued})
		s.jobs[j.id] = j
		switch info.State {
		case fabric.JobDone:
			j.transition(api.JobDone, info.Report, "")
		case fabric.JobFailed:
			j.transition(api.JobFailed, nil, info.Err)
		default:
			resume = append(resume, j)
		}
	}
	s.jobsMu.Unlock()
	for _, j := range resume {
		s.queue <- j
		s.logger().Info("adopted recovered fabric job", "job", j.id, "checker", j.checker)
	}
}
