package mtcserve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"mtc/internal/api"
	"mtc/internal/checker"
	"mtc/internal/fabric"
	"mtc/internal/history"
)

// fabricPull posts a pull for worker id with the given Accept-Encoding
// and returns the raw response plus the decoded task (inflating the
// body when the server compressed it). Setting Accept-Encoding manually
// disables the transport's transparent decompression, so the wire
// Content-Encoding header is observable.
func fabricPull(t *testing.T, ts *httptest.Server, id, acceptEncoding string) (*http.Response, *api.FabricTask) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/fabric/workers/"+id+"/pull", nil)
	if err != nil {
		t.Fatal(err)
	}
	if acceptEncoding != "" {
		req.Header.Set("Accept-Encoding", acceptEncoding)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp, nil
	}
	body := io.Reader(resp.Body)
	if resp.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(resp.Body)
		if err != nil {
			t.Fatalf("inflating pull response: %v", err)
		}
		defer zr.Close()
		body = zr
	}
	var task api.FabricTask
	if err := json.NewDecoder(body).Decode(&task); err != nil {
		t.Fatalf("decoding pull response: %v", err)
	}
	return resp, &task
}

// bigTwoComponentHistory builds a history with two key-disjoint tenants,
// each large enough that its component task body clears
// fabric.GzipThreshold.
func bigTwoComponentHistory() *history.History {
	b := history.NewBuilder("a0", "b0")
	for i := 0; i < 400; i++ {
		ka, kb := history.Key(fmt.Sprintf("a%d", i%8)), history.Key(fmt.Sprintf("b%d", i%8))
		b.Txn(0, history.R(ka, 0), history.W(ka, history.Value(i+1)))
		b.Txn(1, history.R(kb, 0), history.W(kb, history.Value(i+1)))
	}
	return b.Build()
}

// TestFabricPullGzipNegotiation: a pull that advertises gzip gets a
// compressed task body when the payload clears the threshold; a pull
// that does not stays identity-encoded. Both decode to valid tasks.
func TestFabricPullGzipNegotiation(t *testing.T) {
	srv, coord, ts := coordServer(t, filepath.Join(t.TempDir(), "fabric.wal"))
	defer ts.Close()
	defer srv.Close()
	defer coord.Close()

	resp, raw := doJSON(t, "POST", ts.URL+"/v1/fabric/workers", api.WorkerHello{Name: "wz"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, raw)
	}
	var lease api.WorkerLease
	if err := json.Unmarshal(raw, &lease); err != nil {
		t.Fatal(err)
	}
	if err := coord.Submit("gz1", "mtc", bigTwoComponentHistory(), checker.Options{Level: "SI"}); err != nil {
		t.Fatal(err)
	}

	resp, task := fabricPull(t, ts, lease.ID, "gzip")
	if task == nil {
		t.Fatalf("no task on gzip pull: %d", resp.StatusCode)
	}
	if resp.Header.Get("Content-Encoding") != "gzip" {
		t.Fatalf("large pull body not gzipped (Content-Encoding=%q)", resp.Header.Get("Content-Encoding"))
	}
	if task.History == nil || len(task.History.Txns) == 0 {
		t.Fatalf("gzipped task decodes empty: %+v", task)
	}

	resp, task2 := fabricPull(t, ts, lease.ID, "")
	if task2 == nil {
		t.Fatalf("no second task: %d", resp.StatusCode)
	}
	if ce := resp.Header.Get("Content-Encoding"); ce != "" {
		t.Fatalf("pull without Accept-Encoding: gzip was %q-encoded", ce)
	}
	if task2.Component == task.Component {
		t.Fatalf("same component pulled twice: %d", task.Component)
	}
}

// TestFabricResultsGzipBody: the results endpoint inflates gzipped
// request bodies, and rejects bodies that claim gzip but are not.
func TestFabricResultsGzipBody(t *testing.T) {
	srv, coord, ts := coordServer(t, filepath.Join(t.TempDir(), "fabric.wal"))
	defer ts.Close()
	defer srv.Close()
	defer coord.Close()

	lease := coord.Register(api.WorkerHello{Name: "wr"})
	if err := coord.Submit("gz2", "mtc", bigTwoComponentHistory(), checker.Options{Level: "SI"}); err != nil {
		t.Fatal(err)
	}
	task, err := coord.Pull(lease.ID)
	if err != nil || task == nil {
		t.Fatalf("pull: %v %v", task, err)
	}
	rep, err := checker.Default.Run(t.Context(), task.Checker, task.History, checker.Options{Level: checker.Level(task.Level)})
	if err != nil {
		t.Fatal(err)
	}
	res := api.FabricResult{Job: task.Job, Component: task.Component, Epoch: task.Epoch, Report: &rep}
	plain, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var zb bytes.Buffer
	zw := gzip.NewWriter(&zb)
	if _, err := zw.Write(plain); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	url := ts.URL + "/v1/fabric/workers/" + lease.ID + "/results"
	req, err := http.NewRequest("POST", url, &zb)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Content-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ack api.FabricAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !ack.Accepted {
		t.Fatalf("gzipped result rejected: %d %+v", resp.StatusCode, ack)
	}

	// A body that claims gzip but is not must 400, not crash the decode.
	req, err = http.NewRequest("POST", url, bytes.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Encoding", "gzip")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("fake-gzip result body: %d, want 400", resp.StatusCode)
	}
}

// TestFabricGzipThresholdSkipsSmallBodies: sub-threshold pull bodies are
// never compressed even when the client accepts gzip.
func TestFabricGzipThresholdSkipsSmallBodies(t *testing.T) {
	srv, coord, ts := coordServer(t, filepath.Join(t.TempDir(), "fabric.wal"))
	defer ts.Close()
	defer srv.Close()
	defer coord.Close()

	lease := coord.Register(api.WorkerHello{Name: "ws"})
	b := history.NewBuilder("x")
	b.Txn(0, history.W("x", 1))
	if err := coord.Submit("gz3", "mtc", b.Build(), checker.Options{Level: "SI"}); err != nil {
		t.Fatal(err)
	}
	resp, task := fabricPull(t, ts, lease.ID, "gzip")
	if task == nil {
		t.Fatalf("no task: %d", resp.StatusCode)
	}
	if ce := resp.Header.Get("Content-Encoding"); ce != "" {
		t.Fatalf("tiny body compressed (%q) below threshold %d", ce, fabric.GzipThreshold)
	}
}
