package mtcserve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mtc/internal/api"
	"mtc/internal/checker"
	"mtc/internal/fabric"
	"mtc/internal/shard"
)

// coordServer builds a coordinator-mode server over the WAL at path and
// returns it with its test listener.
func coordServer(t *testing.T, path string) (*Server, *fabric.Coordinator, *httptest.Server) {
	t.Helper()
	coord, err := fabric.Open(path, fabric.Config{HeartbeatTimeout: 500 * time.Millisecond})
	if err != nil {
		t.Fatalf("fabric.Open: %v", err)
	}
	srv := NewServer(nil)
	srv.Fabric = coord
	srv.JobTimeout = 30 * time.Second
	srv.AdoptFabricJobs()
	return srv, coord, httptest.NewServer(srv.Handler())
}

// startWorkers runs n fabric worker loops against the coordinator URL
// and returns a stop function that joins them.
func startFabricWorkers(t *testing.T, url string, n int) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = fabric.RunWorker(ctx, fabric.WorkerConfig{
				Coordinator:  url,
				PollInterval: 5 * time.Millisecond,
			})
		}()
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// TestFabricDistributedJob runs the full distributed path — HTTP submit
// with "distributed": true, real worker loops pulling over the wire —
// and demands the verdict match single-node sharded checking.
func TestFabricDistributedJob(t *testing.T) {
	srv, coord, ts := coordServer(t, filepath.Join(t.TempDir(), "fabric.wal"))
	defer ts.Close()
	defer srv.Close()
	defer coord.Close()
	stop := startFabricWorkers(t, ts.URL, 2)
	defer stop()

	h := tenantJobHistory()
	resp, job := submitJob(t, ts, api.JobRequest{Checker: "mtc", Level: "SI", Distributed: true, History: h})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("distributed job rejected: %d", resp.StatusCode)
	}
	if !job.Distributed {
		t.Fatalf("job document does not echo distributed: %+v", job)
	}
	done := waitJob(t, ts, job.ID, 10*time.Second)
	if done.State != api.JobDone || done.Report == nil {
		t.Fatalf("distributed job: %+v", done)
	}
	eng, err := checker.Lookup("mtc")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := shard.Check(context.Background(), eng, h, checker.Options{Level: "SI", Shard: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := done.Report
	if got.OK != ref.OK || got.Txns != ref.Txns || got.Edges != ref.Edges || got.ShardComponents != ref.ShardComponents {
		t.Fatalf("distributed verdict diverges from single-node sharded:\nfabric: %+v\nlocal:  %+v", got, ref)
	}
}

// TestFabricRequiresCoordinator: a server without a fabric answers
// distributed submissions (and fabric endpoints) with structured 400s.
func TestFabricRequiresCoordinator(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	resp, _ := submitJob(t, ts, api.JobRequest{Checker: "mtc", Level: "SI", Distributed: true, History: tenantJobHistory()})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("distributed submit on a plain server: %d, want 400", resp.StatusCode)
	}
	r2, err := http.Get(ts.URL + "/v1/fabric/status")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("fabric status on a plain server: %d, want 400", r2.StatusCode)
	}
}

// TestFabricStatusEndpoint: workers and job progress are visible on
// GET /v1/fabric/status.
func TestFabricStatusEndpoint(t *testing.T) {
	srv, coord, ts := coordServer(t, filepath.Join(t.TempDir(), "fabric.wal"))
	defer ts.Close()
	defer srv.Close()
	defer coord.Close()
	stop := startFabricWorkers(t, ts.URL, 1)
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var st api.FabricStatus
		resp, raw := doJSON(t, "GET", ts.URL+"/v1/fabric/status", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fabric status: %d %s", resp.StatusCode, raw)
		}
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("fabric status body: %v", err)
		}
		if len(st.Workers) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never registered: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFabricCoordinatorRestart is the server-level durability story: a
// coordinator restart on the same WAL re-exposes completed jobs with
// their verdicts (no worker needed — proof they are not re-run) and
// resumes pending ones, while fresh submissions skip past recovered ids.
func TestFabricCoordinatorRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fabric.wal")
	srv1, coord1, ts1 := coordServer(t, path)
	srv1.JobTimeout = 200 * time.Millisecond // unblock srv1's pool quickly after the "crash"
	stop := startFabricWorkers(t, ts1.URL, 2)

	h := tenantJobHistory()
	_, jobA := submitJob(t, ts1, api.JobRequest{Checker: "mtc", Level: "SI", Distributed: true, History: h})
	doneA := waitJob(t, ts1, jobA.ID, 10*time.Second)
	if doneA.State != api.JobDone || doneA.Report == nil {
		t.Fatalf("jobA: %+v", doneA)
	}
	stop() // workers die before jobB can be executed
	_, jobB := submitJob(t, ts1, api.JobRequest{Checker: "mtc", Level: "SI", Distributed: true, History: h})

	// "Crash": the WAL closes with jobB pending. (srv1's pool worker
	// times out on its Wait shortly after; its attempt to persist the
	// timeout hits the closed WAL and is dropped — exactly what a real
	// crash does.)
	ts1.Close()
	if err := coord1.Close(); err != nil {
		t.Fatalf("coord1 close: %v", err)
	}

	srv2, coord2, ts2 := coordServer(t, path)
	defer ts2.Close()
	defer srv2.Close()
	defer coord2.Close()

	// jobA is served terminal from the WAL — srv2 has no workers yet, so
	// the report can only come from the log, never a re-run.
	gotA := waitJob(t, ts2, jobA.ID, 2*time.Second)
	if gotA.State != api.JobDone || gotA.Report == nil || gotA.Report.Edges != doneA.Report.Edges {
		t.Fatalf("jobA after restart: %+v", gotA)
	}
	// jobB is pending until workers arrive, then completes.
	stop2 := startFabricWorkers(t, ts2.URL, 2)
	defer stop2()
	gotB := waitJob(t, ts2, jobB.ID, 10*time.Second)
	if gotB.State != api.JobDone || gotB.Report == nil || gotB.Report.Edges != doneA.Report.Edges {
		t.Fatalf("jobB after restart: %+v", gotB)
	}
	// A fresh submission must not collide with recovered ids.
	_, jobC := submitJob(t, ts2, api.JobRequest{Checker: "mtc", Level: "SI", Distributed: true, History: h})
	if jobC.ID == jobA.ID || jobC.ID == jobB.ID {
		t.Fatalf("fresh job reused a recovered id: %s", jobC.ID)
	}
	if gotC := waitJob(t, ts2, jobC.ID, 10*time.Second); gotC.State != api.JobDone {
		t.Fatalf("jobC: %+v", gotC)
	}
}

// TestFabricWorkerKilledMidJob kills one of two workers while a job is
// in flight and asserts the survivors still complete it with the
// single-node verdict — the liveness sweep requeues the dead worker's
// components.
func TestFabricWorkerKilledMidJob(t *testing.T) {
	srv, coord, ts := coordServer(t, filepath.Join(t.TempDir(), "fabric.wal"))
	defer ts.Close()
	defer srv.Close()
	defer coord.Close()

	// Worker 1 lives throughout; worker 2 is killed as soon as the job
	// is submitted.
	stop1 := startFabricWorkers(t, ts.URL, 1)
	defer stop1()
	stop2 := startFabricWorkers(t, ts.URL, 1)

	h := tenantJobHistory()
	_, job := submitJob(t, ts, api.JobRequest{Checker: "mtc", Level: "SI", Distributed: true, History: h})
	stop2()
	done := waitJob(t, ts, job.ID, 15*time.Second)
	if done.State != api.JobDone || done.Report == nil {
		t.Fatalf("job after worker death: %+v", done)
	}
	eng, _ := checker.Lookup("mtc")
	ref, err := shard.Check(context.Background(), eng, h, checker.Options{Level: "SI", Shard: 2})
	if err != nil {
		t.Fatal(err)
	}
	if done.Report.OK != ref.OK || done.Report.Edges != ref.Edges || done.Report.Txns != ref.Txns {
		t.Fatalf("verdict after worker death diverges:\nfabric: %+v\nlocal:  %+v", done.Report, ref)
	}
}
