package mtcserve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"mtc/internal/api"
	"mtc/internal/checker"
	"mtc/internal/history"
	"mtc/internal/shard"
)

// Job-model defaults; Server fields override them.
const (
	DefaultWorkers     = 4
	DefaultQueueDepth  = 64
	DefaultJobTimeout  = time.Minute
	MaxRequestTimeout  = 10 * time.Minute
	DefaultMaxJobs     = 1024
	defaultRetryAfterS = 1
)

// job is one queued or executing whole-history check. The submit
// handler allocates it, a pool worker executes it under a per-job
// timeout, and DELETE cancels its context — which both dequeues a
// queued job (the worker drops it on pickup) and stops a running
// engine mid-loop.
type job struct {
	id      string
	checker string
	opts    checker.Options
	timeout time.Duration
	txns    int
	// distributed routes execution through the fabric coordinator
	// instead of calling the engine on the pool worker.
	distributed bool
	// h is released once the job is terminal, so completed jobs do not
	// pin their submitted histories in memory.
	h *history.History

	// cancel aborts the job at any stage; ctx is its parent context.
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    string
	report   *checker.Report
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	events   []api.JobEvent
	subs     []chan api.JobEvent
}

// status snapshots the job's wire document.
func (j *job) status() api.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	doc := api.Job{
		ID: j.id, State: j.state,
		Checker: j.checker, Level: string(j.opts.Level),
		Txns: j.txns, Report: j.report, Error: j.errMsg,
		Parallelism: j.opts.Parallelism, Shard: j.opts.Shard,
		Distributed: j.distributed,
		CreatedAt:   j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		doc.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		doc.FinishedAt = &t
	}
	return doc
}

// transition moves the job to state and broadcasts the event to every
// subscriber. It refuses to leave a terminal state (a cancel racing a
// completion keeps whichever landed first).
func (j *job) transition(state string, report *checker.Report, errMsg string) bool {
	j.mu.Lock()
	if api.JobTerminal(j.state) {
		j.mu.Unlock()
		return false
	}
	j.state = state
	now := time.Now()
	switch {
	case state == api.JobRunning:
		j.started = now
	case api.JobTerminal(state):
		j.finished = now
		j.h = nil // release the history; only the report is served now
	}
	j.report = report
	j.errMsg = errMsg
	ev := api.JobEvent{JobID: j.id, Seq: len(j.events), State: state, Report: report, Error: errMsg}
	j.events = append(j.events, ev)
	subs := make([]chan api.JobEvent, len(j.subs))
	copy(subs, j.subs)
	j.mu.Unlock()
	for _, ch := range subs {
		select {
		case ch <- ev:
		default: // subscriber stalled; it will re-sync from events on reconnect
		}
	}
	return true
}

// subscribe returns the replayed past events plus a channel for future
// ones. Callers must unsubscribe.
func (j *job) subscribe() ([]api.JobEvent, chan api.JobEvent) {
	ch := make(chan api.JobEvent, 8)
	j.mu.Lock()
	past := make([]api.JobEvent, len(j.events))
	copy(past, j.events)
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	return past, ch
}

func (j *job) unsubscribe(ch chan api.JobEvent) {
	j.mu.Lock()
	for i, s := range j.subs {
		if s == ch {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			break
		}
	}
	j.mu.Unlock()
}

// startWorkers lazily starts the pool on first submission, so a Server
// constructed literally (or by tests) needs no explicit lifecycle call.
func (s *Server) startWorkers() {
	s.workersOnce.Do(func() {
		s.queue = make(chan *job, s.queueDepth())
		for i := 0; i < s.workers(); i++ {
			go func() {
				for j := range s.queue {
					s.runJob(j)
				}
			}()
		}
	})
}

// Close stops the worker pool after the queued jobs drain and shuts the
// idle-session janitor down, waiting for its goroutine to exit (no
// goroutine outlives a graceful shutdown). Submissions after Close are
// rejected with 503.
func (s *Server) Close() {
	s.jobsMu.Lock()
	if s.closed {
		s.jobsMu.Unlock()
		return
	}
	s.closed = true
	s.startWorkers() // ensure the queue exists before closing it
	close(s.queue)
	s.jobsMu.Unlock()
	s.stopJanitor()
}

// runJob executes one job on a pool worker under its timeout.
func (s *Server) runJob(j *job) {
	if j.ctx.Err() != nil { // deleted while queued
		if j.distributed {
			s.Fabric.Cancel(j.id, "job canceled before execution")
		}
		j.transition(api.JobCanceled, nil, "job canceled before execution")
		return
	}
	if j.distributed {
		s.runFabricJob(j)
		return
	}
	j.mu.Lock()
	h := j.h // snapshot under j.mu: a racing DELETE nils it in transition
	j.mu.Unlock()
	if !j.transition(api.JobRunning, nil, "") {
		return
	}
	ctx, cancel := context.WithTimeout(j.ctx, j.timeout)
	defer cancel()
	rep, err := s.reg.Run(ctx, j.checker, h, j.opts)
	switch {
	case err == nil:
		j.transition(api.JobDone, &rep, "")
	case errors.Is(err, context.Canceled) && j.ctx.Err() != nil:
		j.transition(api.JobCanceled, nil, "job canceled")
	case errors.Is(err, context.DeadlineExceeded):
		j.transition(api.JobFailed, nil, "job timed out after "+j.timeout.String())
	default:
		j.transition(api.JobFailed, nil, err.Error())
	}
}

// handleJobSubmit implements POST /v1/jobs: validate, enqueue, 202.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "bad job request: %v", err)
		return
	}
	name := req.Checker
	if name == "" {
		name = s.defaultChecker()
	}
	// The parallelism and shard knobs tune, they cannot oversubscribe
	// the server with goroutines. A request exceeding the host clamp is
	// rejected with a structured 400 rather than silently lowered — the
	// caller asked for a specific degree and must learn it is not
	// available; the effective values an accepted job runs with are
	// echoed in its Job body.
	clamp := runtime.GOMAXPROCS(0)
	if req.Parallelism < 0 {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "parallelism must be >= 0, got %d", req.Parallelism)
		return
	}
	if req.Parallelism > clamp {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest,
			"parallelism %d exceeds the server's limit of %d (GOMAXPROCS)", req.Parallelism, clamp)
		return
	}
	if req.Shard < 0 {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "shard must be >= 0, got %d", req.Shard)
		return
	}
	if req.Shard > clamp {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest,
			"shard %d exceeds the server's limit of %d (GOMAXPROCS)", req.Shard, clamp)
		return
	}
	par := req.Parallelism
	if par == 0 {
		par = s.DefaultParallelism
	}
	// The server's own default is still clamped (a misconfigured flag
	// must not oversubscribe the host); requests above were rejected.
	if par > clamp {
		par = clamp
	}
	c, err := s.reg.Lookup(name)
	if err != nil {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeUnknownChecker, "%v", err)
		return
	}
	if req.Distributed && s.Fabric == nil {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest,
			"this server is not a fabric coordinator (start it with -fabric-wal) and cannot run distributed jobs")
		return
	}
	if req.Shard > 0 && !req.Distributed {
		// Route through the component-sharded wrapper of the resolved
		// engine; an already-sharded name passes through. A distributed
		// job skips the wrapper: the fabric coordinator itself splits the
		// history and folds the component verdicts, on the same plan.
		base := name
		name = shard.Name(name)
		if c, err = s.reg.Lookup(name); err != nil {
			s.v1Error(w, r, http.StatusBadRequest, api.CodeUnknownChecker,
				"no sharded wrapper for checker %q: %v", base, err)
			return
		}
	}
	if req.Window < 0 {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "window must be >= 0, got %d", req.Window)
		return
	}
	opts := checker.Options{SkipPreCheck: req.SkipPreCheck, SparseRT: req.SparseRT, Parallelism: par, Window: req.Window, Shard: req.Shard}
	if req.Level != "" {
		lvl, err := checker.ParseLevel(req.Level)
		if err != nil {
			s.v1Error(w, r, http.StatusBadRequest, api.CodeUnsupportedLevel, "%v", err)
			return
		}
		if !checker.Supports(c, lvl) {
			s.v1Error(w, r, http.StatusBadRequest, api.CodeUnsupportedLevel,
				"checker %s does not support level %q (supports %s)", c.Name(), lvl, checker.LevelNames(c.Levels()))
			return
		}
		opts.Level = lvl
	} else {
		opts.Level = c.Levels()[0]
	}
	if req.History == nil {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeInvalidHistory, "missing required field \"history\"")
		return
	}
	if err := req.History.Validate(); err != nil {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeInvalidHistory, "bad history: %v", err)
		return
	}
	timeout := s.jobTimeout()
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
		if timeout > MaxRequestTimeout {
			timeout = MaxRequestTimeout
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		checker: name, opts: opts, timeout: timeout,
		txns: len(req.History.Txns), h: req.History,
		ctx: ctx, cancel: cancel,
		distributed: req.Distributed,
		state:       api.JobQueued, created: time.Now(),
	}
	j.events = append(j.events, api.JobEvent{JobID: "", Seq: 0, State: api.JobQueued})

	s.startWorkers()
	s.jobsMu.Lock()
	if s.closed {
		s.jobsMu.Unlock()
		cancel()
		s.v1Error(w, r, http.StatusServiceUnavailable, api.CodeInternal, "server is shutting down")
		return
	}
	s.evictTerminalLocked()
	s.nextJobID++
	j.id = "j" + strconv.Itoa(s.nextJobID)
	j.events[0].JobID = j.id
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.jobsMu.Unlock()
	default:
		s.jobsMu.Unlock()
		cancel()
		w.Header().Set("Retry-After", strconv.Itoa(defaultRetryAfterS))
		s.v1Error(w, r, http.StatusTooManyRequests, api.CodeQueueFull,
			"job queue is full (%d queued); retry shortly", s.queueDepth())
		return
	}
	if j.distributed {
		// Submit to the coordinator before acknowledging: the WAL append
		// inside Submit is the durability point, so an accepted
		// distributed job survives a coordinator restart even if no pool
		// worker picked it up yet. (A pool worker then merely waits for
		// the fold; Submit is idempotent for recovered jobs.)
		if err := s.Fabric.Submit(j.id, name, req.History, opts); err != nil {
			j.cancel()
			j.transition(api.JobFailed, nil, err.Error())
			s.v1Error(w, r, http.StatusInternalServerError, api.CodeInternal, "fabric submission failed: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleJobList implements GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.jobsMu.Unlock()
	out := api.JobList{Jobs: make([]api.Job, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.status())
	}
	// Deterministic order: job IDs are "j<n>", so sort by numeric suffix.
	sort.Slice(out.Jobs, func(i, k int) bool {
		return jobNum(out.Jobs[i].ID) < jobNum(out.Jobs[k].ID)
	})
	writeJSON(w, http.StatusOK, out)
}

func jobNum(id string) int {
	n, _ := strconv.Atoi(id[1:])
	return n
}

// evictTerminalLocked bounds the retained job table: when the cap is
// reached, the oldest terminal jobs are forgotten (their reports become
// 404s). Queued and running jobs are never evicted — they are already
// bounded by the queue depth and the worker count. Caller holds jobsMu.
func (s *Server) evictTerminalLocked() {
	max := s.MaxJobs
	if max <= 0 {
		max = DefaultMaxJobs
	}
	if len(s.jobs) < max {
		return
	}
	ids := make([]string, 0, len(s.jobs))
	for id, j := range s.jobs {
		j.mu.Lock()
		terminal := api.JobTerminal(j.state)
		j.mu.Unlock()
		if terminal {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, k int) bool { return jobNum(ids[i]) < jobNum(ids[k]) })
	for _, id := range ids {
		if len(s.jobs) < max {
			return
		}
		delete(s.jobs, id)
	}
}

// handleJobGet implements GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.v1Error(w, r, http.StatusNotFound, api.CodeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleJobDelete implements DELETE /v1/jobs/{id}: cancel and forget.
// Cancelling the context stops a running worker at its next poll and
// makes a queued job a no-op when popped.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobsMu.Lock()
	j := s.jobs[id]
	delete(s.jobs, id)
	s.jobsMu.Unlock()
	if j == nil {
		s.v1Error(w, r, http.StatusNotFound, api.CodeNotFound, "unknown job %q", id)
		return
	}
	j.cancel()
	j.transition(api.JobCanceled, nil, "job canceled")
	w.WriteHeader(http.StatusNoContent)
}

// handleJobEvents implements GET /v1/jobs/{id}/events: an NDJSON stream
// of state transitions, replaying history first and then following the
// live job until it is terminal or the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.v1Error(w, r, http.StatusNotFound, api.CodeNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	past, ch := j.subscribe()
	defer j.unsubscribe(ch)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	enc := json.NewEncoder(w)
	seq := 0
	for _, ev := range past {
		_ = enc.Encode(ev)
		seq = ev.Seq + 1
		if api.JobTerminal(ev.State) {
			flush()
			return
		}
	}
	flush()
	for {
		select {
		case ev := <-ch:
			if ev.Seq < seq {
				continue // already replayed
			}
			seq = ev.Seq + 1
			_ = enc.Encode(ev)
			flush()
			if api.JobTerminal(ev.State) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) lookupJob(id string) *job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return s.jobs[id]
}
