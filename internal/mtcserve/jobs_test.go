package mtcserve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"mtc/internal/api"
	"mtc/internal/history"
)

// submitJob posts a JobRequest and decodes the response.
func submitJob(t *testing.T, ts *httptest.Server, req api.JobRequest) (*http.Response, api.Job) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job api.Job
	_ = json.NewDecoder(resp.Body).Decode(&job)
	return resp, job
}

// getJob polls one job.
func getJob(t *testing.T, ts *httptest.Server, id string) (*http.Response, api.Job) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job api.Job
	_ = json.NewDecoder(resp.Body).Decode(&job)
	return resp, job
}

// waitJob polls until the job is terminal or the deadline passes.
func waitJob(t *testing.T, ts *httptest.Server, id string, within time.Duration) api.Job {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		resp, job := getJob(t, ts, id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: %d", id, resp.StatusCode)
		}
		if api.JobTerminal(job.State) {
			return job
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, job.State, within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// slowJobHistory triggers a multi-second Cobra/PolySI run.
func slowJobHistory() *history.History {
	return history.BlindWriteHistory(4, 200)
}

// TestJobLifecycle drives submit -> poll -> done with a structured
// report, for both a clean and a violating history.
func TestJobLifecycle(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()

	resp, job := submitJob(t, ts, api.JobRequest{Level: "SER", History: history.SerialHistory(20, "x", "y")})
	if resp.StatusCode != http.StatusAccepted || job.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, job)
	}
	done := waitJob(t, ts, job.ID, 5*time.Second)
	if done.State != api.JobDone || done.Report == nil || !done.Report.OK {
		t.Fatalf("clean history job: %+v", done)
	}
	if done.Report.Checker != "mtc" || done.Report.Txns != 21 {
		t.Fatalf("report: %+v", done.Report)
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Fatalf("timestamps missing: %+v", done)
	}

	// A violating history carries the structured cycle on the wire.
	_, job = submitJob(t, ts, api.JobRequest{Level: "SER", History: history.FixtureByName("WriteSkew").H})
	done = waitJob(t, ts, job.ID, 5*time.Second)
	if done.State != api.JobDone || done.Report == nil || done.Report.OK {
		t.Fatalf("write-skew job: %+v", done)
	}
	if len(done.Report.Cycle) == 0 {
		t.Fatalf("cycle not serialized: %+v", done.Report)
	}
}

// TestJobValidation covers the submit-time error envelope.
// TestProfileAndWeakLevelJobs drives the lattice checkers through the
// job API: a profile job must report the strongest level with per-rung
// and guarantee verdicts, and the weak single-level checkers must be
// addressable by name.
func TestProfileAndWeakLevelJobs(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()

	f := history.FixtureByName("FracturedRead")
	resp, job := submitJob(t, ts, api.JobRequest{Checker: "profile", History: f.H})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit profile: %d", resp.StatusCode)
	}
	job = waitJob(t, ts, job.ID, 5*time.Second)
	if job.State != api.JobDone || job.Report == nil {
		t.Fatalf("profile job: %+v", job)
	}
	if job.Report.StrongestLevel != "RC" {
		t.Fatalf("strongest = %s, want RC", job.Report.StrongestLevel)
	}
	if len(job.Report.Rungs) != 6 || len(job.Report.Guarantees) != 4 {
		t.Fatalf("profile shape: %d rungs, %d guarantees", len(job.Report.Rungs), len(job.Report.Guarantees))
	}

	for name, wantOK := range map[string]bool{"rc": true, "ra": false, "causal": false} {
		resp, job := submitJob(t, ts, api.JobRequest{Checker: name, History: f.H})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %d", name, resp.StatusCode)
		}
		job = waitJob(t, ts, job.ID, 5*time.Second)
		if job.State != api.JobDone || job.Report == nil || job.Report.OK != wantOK {
			t.Fatalf("%s job on FracturedRead: %+v", name, job)
		}
	}

	// A weak level on an engine that does not support it must 400.
	resp, _ = submitJob(t, ts, api.JobRequest{Checker: "mtc", Level: "RC", History: f.H})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mtc at RC: %d, want 400", resp.StatusCode)
	}
}

func TestJobValidation(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	h := history.SerialHistory(3, "x")
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"malformed body", "{bogus", http.StatusBadRequest, api.CodeBadRequest},
		{"unknown checker", `{"checker":"bogus","history":{}}`, http.StatusBadRequest, api.CodeUnknownChecker},
		{"bad level", `{"level":"NOPE","history":{}}`, http.StatusBadRequest, api.CodeUnsupportedLevel},
		{"mismatched level", `{"checker":"cobra","level":"SI","history":{}}`, http.StatusBadRequest, api.CodeUnsupportedLevel},
		{"missing history", `{"level":"SER"}`, http.StatusBadRequest, api.CodeInvalidHistory},
		{"negative parallelism", `{"level":"SER","parallelism":-2,"history":{}}`, http.StatusBadRequest, api.CodeBadRequest},
		{"parallelism beyond clamp", `{"level":"SER","parallelism":1048576,"history":{}}`, http.StatusBadRequest, api.CodeBadRequest},
		{"negative shard", `{"level":"SER","shard":-1,"history":{}}`, http.StatusBadRequest, api.CodeBadRequest},
		{"shard beyond clamp", `{"level":"SER","shard":1048576,"history":{}}`, http.StatusBadRequest, api.CodeBadRequest},
	}
	_ = h
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var env api.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.status || env.Error.Code != tc.code {
				t.Fatalf("got %d/%s (%s), want %d/%s", resp.StatusCode, env.Error.Code, env.Error.Message, tc.status, tc.code)
			}
			if env.RequestID == "" {
				t.Fatal("error envelope must echo the request id")
			}
		})
	}
}

// TestJobParallelismAccepted submits jobs across the accepted
// parallelism range — default, serial, and the host clamp itself — and
// asserts identical verdicts; the effective value is echoed in the job
// body (a request above the clamp is a 400, covered by
// TestJobValidation).
func TestJobParallelismAccepted(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	h := history.SerialHistory(30, "x", "y")
	var edges int
	for _, par := range []int{0, 1, runtime.GOMAXPROCS(0)} {
		resp, job := submitJob(t, ts, api.JobRequest{Level: "SSER", Parallelism: par, History: h})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("parallelism %d rejected: %d", par, resp.StatusCode)
		}
		if par > 0 && job.Parallelism != par {
			t.Fatalf("job body echoes parallelism %d, want %d", job.Parallelism, par)
		}
		done := waitJob(t, ts, job.ID, 5*time.Second)
		if done.State != api.JobDone || done.Report == nil || !done.Report.OK {
			t.Fatalf("parallelism %d: %+v", par, done)
		}
		if edges == 0 {
			edges = done.Report.Edges
		} else if done.Report.Edges != edges {
			t.Fatalf("parallelism %d: edge count %d diverges from %d", par, done.Report.Edges, edges)
		}
	}
}

// TestJobQueueFullReturns429 fills a one-deep queue behind a one-worker
// pool and asserts the overflow answer is 429 with Retry-After.
func TestJobQueueFullReturns429(t *testing.T) {
	srv := NewServer(nil)
	srv.Workers = 1
	srv.QueueDepth = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	slow := slowJobHistory()
	// First job occupies the worker, second fills the queue. The worker
	// may dequeue the second before the third submit lands, so keep
	// submitting until the queue is genuinely full.
	var resp *http.Response
	var accepted []string
	for i := 0; i < 8; i++ {
		var job api.Job
		resp, job = submitJob(t, ts, api.JobRequest{Checker: "cobra", Level: "SER", TimeoutMillis: 30000, History: slow})
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, resp.StatusCode)
		}
		accepted = append(accepted, job.ID)
	}
	// Cancel the slow jobs so their workers stop burning CPU once the
	// assertion is made.
	defer func() {
		for _, id := range accepted {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	}()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue overflow must 429, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
}

// TestJobDeleteStopsWorker deletes a running SAT-backed job and asserts
// its worker is freed promptly: the job transitions to canceled and the
// single worker completes a subsequent quick job long before the big
// job's natural runtime.
func TestJobDeleteStopsWorker(t *testing.T) {
	srv := NewServer(nil)
	srv.Workers = 1
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, job := submitJob(t, ts, api.JobRequest{Checker: "cobra", Level: "SER", TimeoutMillis: 60000, History: slowJobHistory()})
	// Wait until the worker has actually started it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, j := getJob(t, ts, job.ID)
		if j.State == api.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", j)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Keep a handle on the internal job to observe its terminal state
	// after the route forgets it.
	internal := srv.lookupJob(job.ID)
	if internal == nil {
		t.Fatal("job not tracked")
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	if resp, _ := getJob(t, ts, job.ID); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted job must 404, got %d", resp.StatusCode)
	}

	// The freed worker must pick up and finish a quick job promptly —
	// far sooner than the canceled job's multi-second natural runtime.
	start := time.Now()
	_, quick := submitJob(t, ts, api.JobRequest{Level: "SI", History: history.SerialHistory(5, "x")})
	done := waitJob(t, ts, quick.ID, 3*time.Second)
	if done.State != api.JobDone {
		t.Fatalf("quick job after delete: %+v", done)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("worker not freed promptly (%v)", elapsed)
	}
	internal.mu.Lock()
	state := internal.state
	internal.mu.Unlock()
	if state != api.JobCanceled {
		t.Fatalf("deleted job state = %s, want canceled", state)
	}
}

// TestJobTimeoutFails submits a SAT-backed job with a timeout far below
// its runtime and asserts the job fails with a timeout error instead of
// running to completion.
func TestJobTimeoutFails(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	start := time.Now()
	_, job := submitJob(t, ts, api.JobRequest{Checker: "cobra", Level: "SER", TimeoutMillis: 50, History: slowJobHistory()})
	done := waitJob(t, ts, job.ID, 5*time.Second)
	if done.State != api.JobFailed || !strings.Contains(done.Error, "timed out") {
		t.Fatalf("want timeout failure, got %+v", done)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("timed-out job held its worker for %v", elapsed)
	}
}

// TestJobEventsStream follows the NDJSON stream through to the terminal
// event.
func TestJobEventsStream(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	_, job := submitJob(t, ts, api.JobRequest{Level: "SER", History: history.SerialHistory(10, "x")})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var states []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev api.JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		if ev.JobID != job.ID {
			t.Fatalf("event for wrong job: %+v", ev)
		}
		states = append(states, ev.State)
		if api.JobTerminal(ev.State) {
			if ev.State != api.JobDone || ev.Report == nil || !ev.Report.OK {
				t.Fatalf("terminal event: %+v", ev)
			}
			break
		}
	}
	if len(states) == 0 || states[0] != api.JobQueued || states[len(states)-1] != api.JobDone {
		t.Fatalf("states = %v", states)
	}
}

// TestJobList returns the submitted jobs in id order.
func TestJobList(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		_, job := submitJob(t, ts, api.JobRequest{Level: "SI", History: history.SerialHistory(3, "x")})
		ids = append(ids, job.ID)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list api.JobList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != len(ids) {
		t.Fatalf("listed %d jobs, want %d", len(list.Jobs), len(ids))
	}
	for i, j := range list.Jobs {
		if j.ID != ids[i] {
			t.Fatalf("order: %v", list.Jobs)
		}
	}
}

// TestUnsupportedHistoryJobFails routes Porcupine's shape error into the
// job error, not a hung or OK job.
func TestUnsupportedHistoryJobFails(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	b := history.NewBuilder("x", "y")
	b.Txn(0, history.R("x", 0), history.W("x", 1), history.R("y", 0), history.W("y", 2))
	_, job := submitJob(t, ts, api.JobRequest{Checker: "porcupine", History: b.Build()})
	done := waitJob(t, ts, job.ID, 5*time.Second)
	if done.State != api.JobFailed || !strings.Contains(done.Error, "cannot process") {
		t.Fatalf("want unsupported-history failure, got %+v", done)
	}
}

// TestLegacyRoutesCarryDeprecationHeaders asserts the pre-v1 aliases
// answer with Deprecation/Link while the v1 routes do not.
func TestLegacyRoutesCarryDeprecationHeaders(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	legacy, err := http.Get(ts.URL + "/checkers")
	if err != nil {
		t.Fatal(err)
	}
	legacy.Body.Close()
	if legacy.Header.Get("Deprecation") != "true" ||
		!strings.Contains(legacy.Header.Get("Link"), "/v1/checkers") {
		t.Fatalf("legacy route headers: %v", legacy.Header)
	}
	v1, err := http.Get(ts.URL + "/v1/checkers")
	if err != nil {
		t.Fatal(err)
	}
	v1.Body.Close()
	if v1.Header.Get("Deprecation") != "" {
		t.Fatal("v1 route must not be deprecated")
	}
}

// TestRequestIDMiddleware covers both generated and client-supplied ids.
func TestRequestIDMiddleware(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("missing generated X-Request-Id")
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "req-mine")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "req-mine" {
		t.Fatalf("client request id not echoed: %q", got)
	}
}

// TestBodySizeLimit rejects oversized request bodies.
func TestBodySizeLimit(t *testing.T) {
	srv := NewServer(nil)
	srv.MaxBodyBytes = 512
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	big := strings.NewReader(`{"history":{"txns":[` + strings.Repeat(`{},`, 400) + `{}]}}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge && resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: %d", resp.StatusCode)
	}
}

// TestJobEviction bounds the retained job table: once MaxJobs is
// reached, submitting evicts the oldest terminal job, whose report then
// answers 404.
func TestJobEviction(t *testing.T) {
	srv := NewServer(nil)
	srv.MaxJobs = 2
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	h := history.SerialHistory(3, "x")
	var ids []string
	for i := 0; i < 2; i++ {
		_, job := submitJob(t, ts, api.JobRequest{Level: "SI", History: h})
		waitJob(t, ts, job.ID, 5*time.Second)
		ids = append(ids, job.ID)
	}
	_, third := submitJob(t, ts, api.JobRequest{Level: "SI", History: h})
	waitJob(t, ts, third.ID, 5*time.Second)
	if resp, _ := getJob(t, ts, ids[0]); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("oldest terminal job must be evicted, got %d", resp.StatusCode)
	}
	if resp, _ := getJob(t, ts, ids[1]); resp.StatusCode != http.StatusOK {
		t.Fatalf("younger job must survive eviction, got %d", resp.StatusCode)
	}
}

// TestTerminalJobReleasesHistory asserts a finished job no longer pins
// its submitted history.
func TestTerminalJobReleasesHistory(t *testing.T) {
	srv := NewServer(nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, job := submitJob(t, ts, api.JobRequest{Level: "SI", History: history.SerialHistory(5, "x")})
	done := waitJob(t, ts, job.ID, 5*time.Second)
	if done.Txns != 6 {
		t.Fatalf("txns stat must survive release: %+v", done)
	}
	internal := srv.lookupJob(job.ID)
	internal.mu.Lock()
	held := internal.h
	internal.mu.Unlock()
	if held != nil {
		t.Fatal("terminal job still pins its history")
	}
}
