package mtcserve

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// ctxKey scopes context values set by the middleware.
type ctxKey int

const requestIDKey ctxKey = iota

// reqCounter numbers generated request IDs; process-unique is all the
// correlation between a log line and an error envelope needs.
var reqCounter atomic.Uint64

// RequestIDFrom returns the request ID the middleware attached, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// statusWriter captures the response status for the access log. It
// forwards Flush so the NDJSON event stream keeps working through the
// middleware chain.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// middleware wraps the route table with the cross-cutting concerns of
// the v1 API: a request ID on every request (honouring a client-supplied
// X-Request-Id), a structured access-log line per request, and a global
// request-body size limit.
func (s *Server) middleware(next http.Handler) http.Handler {
	limited := http.MaxBytesHandler(next, s.maxBodyBytes())
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("req-%06d", reqCounter.Add(1))
		}
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		limited.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), requestIDKey, id)))
		s.logger().Info("http",
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"dur_ms", float64(time.Since(start))/float64(time.Millisecond),
			"request_id", id,
		)
	})
}

// deprecated marks a legacy route with the standard deprecation headers
// and points clients at its v1 successor before delegating.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}
