// Package mtcserve implements the checking-as-a-service HTTP API behind
// cmd/mtc-serve: histories in, verdicts with counterexamples out. It is
// the repository's take on the IsoVista integration the paper names as
// future work.
package mtcserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"mtc/internal/cobra"
	"mtc/internal/core"
	"mtc/internal/graph"
	"mtc/internal/history"
	"mtc/internal/polysi"
)

// Verdict is the JSON response of /check.
type Verdict struct {
	Level     string   `json:"level"`
	Checker   string   `json:"checker"`
	OK        bool     `json:"ok"`
	Txns      int      `json:"txns"`
	Edges     int      `json:"edges,omitempty"`
	Anomalies []string `json:"anomalies,omitempty"`
	Cycle     []string `json:"cycle,omitempty"`
	Detail    string   `json:"detail,omitempty"`
}

// Handler returns the service's HTTP handler.
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("POST /check", handleCheck)
	mux.HandleFunc("GET /fixtures", handleFixtures)
	mux.HandleFunc("GET /fixtures/{name}", handleFixture)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func parseLevel(r *http.Request) (core.Level, bool) {
	lvl := core.Level(strings.ToUpper(r.URL.Query().Get("level")))
	switch lvl {
	case "":
		return core.SI, true
	case core.SSER, core.SER, core.SI:
		return lvl, true
	default:
		return "", false
	}
}

func handleCheck(w http.ResponseWriter, r *http.Request) {
	lvl, ok := parseLevel(r)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown level %q", r.URL.Query().Get("level"))
		return
	}
	h, err := history.ReadJSON(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad history: %v", err)
		return
	}
	checker := r.URL.Query().Get("checker")
	if checker == "" {
		checker = "mtc"
	}
	v, err := check(h, lvl, checker)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// check runs the requested checker and converts its result.
func check(h *history.History, lvl core.Level, checker string) (Verdict, error) {
	switch checker {
	case "mtc":
		return fromResult(core.Check(h, lvl), "mtc"), nil
	case "cobra":
		if lvl != core.SER {
			return Verdict{}, fmt.Errorf("checker cobra supports level SER only")
		}
		rep := cobra.CheckSER(h)
		v := Verdict{Level: string(lvl), Checker: "cobra", OK: rep.OK, Txns: len(h.Txns)}
		for _, a := range rep.Anomalies {
			v.Anomalies = append(v.Anomalies, a.String())
		}
		v.Detail = fmt.Sprintf("constraints=%d forced=%d residual=%d", rep.Constraints, rep.Forced, rep.Residual)
		return v, nil
	case "polysi":
		if lvl != core.SI {
			return Verdict{}, fmt.Errorf("checker polysi supports level SI only")
		}
		rep := polysi.CheckSI(h)
		v := Verdict{Level: string(lvl), Checker: "polysi", OK: rep.OK, Txns: len(h.Txns)}
		for _, a := range rep.Anomalies {
			v.Anomalies = append(v.Anomalies, a.String())
		}
		v.Detail = fmt.Sprintf("constraints=%d forced=%d residual=%d", rep.Constraints, rep.Forced, rep.Residual)
		return v, nil
	default:
		return Verdict{}, fmt.Errorf("unknown checker %q", checker)
	}
}

func fromResult(r core.Result, checker string) Verdict {
	v := Verdict{
		Level: string(r.Level), Checker: checker, OK: r.OK,
		Txns: r.NumTxns, Edges: r.NumEdges,
	}
	for _, a := range r.Anomalies {
		v.Anomalies = append(v.Anomalies, a.String())
	}
	for _, e := range r.Cycle {
		v.Cycle = append(v.Cycle, e.String())
	}
	if r.Divergence != nil {
		v.Detail = r.Divergence.String()
	}
	if len(r.Cycle) > 0 {
		v.Detail = graph.FormatCycle(r.Cycle)
	}
	return v
}

func handleFixtures(w http.ResponseWriter, r *http.Request) {
	var names []string
	for _, f := range history.Fixtures() {
		names = append(names, f.Name)
	}
	writeJSON(w, http.StatusOK, names)
}

func handleFixture(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	f := history.FixtureByName(name)
	if f == nil {
		httpError(w, http.StatusNotFound, "unknown fixture %q", name)
		return
	}
	lvl, ok := parseLevel(r)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown level %q", r.URL.Query().Get("level"))
		return
	}
	writeJSON(w, http.StatusOK, fromResult(core.Check(f.H, lvl), "mtc"))
}
