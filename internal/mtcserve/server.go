// Package mtcserve implements the checking-as-a-service HTTP API behind
// cmd/mtc-serve: histories in, verdicts with counterexamples out. It is
// the repository's take on the IsoVista integration the paper names as
// future work. Engines are resolved through the checker registry
// (internal/checker), so every registered checker — the batch MTC
// algorithms, the online incremental engine, and the Cobra, PolySI, Elle
// and Porcupine baselines — is reachable by name; and session-scoped
// streaming endpoints feed transactions to core.Incremental as they
// commit, so a deployment can verify continuously under live traffic
// instead of shipping complete histories.
//
//	GET  /checkers                  registered checkers and their levels
//	POST /check?checker=&level=     batch check a history JSON body
//	GET  /fixtures                  the built-in anomaly fixtures
//	GET  /fixtures/{name}?level=    verdict on a fixture
//	POST /sessions                  open a streaming session {level, keys}
//	POST /sessions/{id}/txns        feed one txn or an array of txns
//	GET  /sessions/{id}/verdict     verdict so far (?final=1 closes)
//	DELETE /sessions/{id}           discard a session
//	GET  /healthz
package mtcserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"mtc/internal/checker"
	"mtc/internal/core"
	"mtc/internal/graph"
	"mtc/internal/history"
)

// Verdict is the JSON wire form of a checker verdict.
type Verdict struct {
	Level     string   `json:"level"`
	Checker   string   `json:"checker"`
	OK        bool     `json:"ok"`
	Txns      int      `json:"txns"`
	Edges     int      `json:"edges,omitempty"`
	Anomalies []string `json:"anomalies,omitempty"`
	Cycle     []string `json:"cycle,omitempty"`
	Detail    string   `json:"detail,omitempty"`
}

// apiError is the structured error body every failing endpoint returns.
type apiError struct {
	Error string `json:"error"`
}

// checkerInfo describes one registry entry in GET /checkers.
type checkerInfo struct {
	Name   string   `json:"name"`
	Levels []string `json:"levels"`
}

// Server carries the registry and the live streaming sessions. Safe for
// concurrent use.
type Server struct {
	reg *checker.Registry
	// DefaultChecker is used by /check when no checker query parameter
	// is given; empty means "mtc". Set before serving.
	DefaultChecker string
	// MaxSessions bounds concurrently live streaming sessions; a session
	// holds checker state proportional to the transactions fed, so
	// abandoned sessions must not accumulate without limit. 0 uses
	// DefaultMaxSessions. Clients free slots with DELETE /sessions/{id}.
	MaxSessions int

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
}

// DefaultMaxSessions is the default cap on live streaming sessions.
const DefaultMaxSessions = 1024

// session is one streaming verification session.
type session struct {
	mu      sync.Mutex
	lvl     core.Level
	inc     *core.Incremental
	final   *core.Result
	stopped bool
}

// NewServer returns a server dispatching on the given registry; nil
// selects the default registry with every engine registered.
func NewServer(reg *checker.Registry) *Server {
	if reg == nil {
		reg = checker.Default
	}
	return &Server{reg: reg, sessions: make(map[string]*session)}
}

// Handler returns the service's HTTP handler over the default registry.
func Handler() http.Handler { return NewServer(nil).Handler() }

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /checkers", s.handleCheckers)
	mux.HandleFunc("POST /check", s.handleCheck)
	mux.HandleFunc("GET /fixtures", s.handleFixtures)
	mux.HandleFunc("GET /fixtures/{name}", s.handleFixture)
	mux.HandleFunc("POST /sessions", s.handleSessionOpen)
	mux.HandleFunc("POST /sessions/{id}/txns", s.handleSessionTxns)
	mux.HandleFunc("GET /sessions/{id}/verdict", s.handleSessionVerdict)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleSessionDelete)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// parseLevel validates the level query parameter against the known level
// names; empty means "checker default".
func parseLevel(r *http.Request) (core.Level, bool) {
	lvl := core.Level(strings.ToUpper(r.URL.Query().Get("level")))
	switch lvl {
	case "", core.SSER, core.SER, core.SI:
		return lvl, true
	default:
		return "", false
	}
}

func (s *Server) handleCheckers(w http.ResponseWriter, r *http.Request) {
	var out []checkerInfo
	for _, c := range s.reg.All() {
		info := checkerInfo{Name: c.Name()}
		for _, l := range c.Levels() {
			info.Levels = append(info.Levels, string(l))
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	lvl, ok := parseLevel(r)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown level %q (want SSER, SER or SI)", r.URL.Query().Get("level"))
		return
	}
	name := r.URL.Query().Get("checker")
	if name == "" {
		name = s.DefaultChecker
	}
	if name == "" {
		name = "mtc"
	}
	if _, err := s.reg.Lookup(name); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, err := history.ReadJSON(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad history: %v", err)
		return
	}
	v, err := s.reg.Run(name, h, checker.Options{Level: lvl})
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if v.Err != "" {
		// The engine could not process this history (e.g. Porcupine on a
		// history that is not LWT-shaped): the request was well-formed
		// but unprocessable by the selected checker.
		httpError(w, http.StatusUnprocessableEntity, "%s: %s", name, v.Err)
		return
	}
	writeJSON(w, http.StatusOK, fromVerdict(v))
}

// fromVerdict converts a checker verdict to the wire form.
func fromVerdict(v checker.Verdict) Verdict {
	out := Verdict{
		Level: string(v.Level), Checker: v.Checker, OK: v.OK,
		Txns: v.Txns, Edges: v.Edges, Detail: v.Detail,
	}
	for _, a := range v.Anomalies {
		out.Anomalies = append(out.Anomalies, a.String())
	}
	for _, e := range v.Cycle {
		out.Cycle = append(out.Cycle, e.String())
	}
	return out
}

// fromResult converts a core.Result to the wire form.
func fromResult(r core.Result, checkerName string) Verdict {
	v := Verdict{
		Level: string(r.Level), Checker: checkerName, OK: r.OK,
		Txns: r.NumTxns, Edges: r.NumEdges,
	}
	for _, a := range r.Anomalies {
		v.Anomalies = append(v.Anomalies, a.String())
	}
	for _, e := range r.Cycle {
		v.Cycle = append(v.Cycle, e.String())
	}
	if r.Divergence != nil {
		v.Detail = r.Divergence.String()
	}
	if len(r.Cycle) > 0 {
		v.Detail = graph.FormatCycle(r.Cycle)
	}
	return v
}

func (s *Server) handleFixtures(w http.ResponseWriter, r *http.Request) {
	var names []string
	for _, f := range history.Fixtures() {
		names = append(names, f.Name)
	}
	writeJSON(w, http.StatusOK, names)
}

func (s *Server) handleFixture(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	f := history.FixtureByName(name)
	if f == nil {
		httpError(w, http.StatusNotFound, "unknown fixture %q", name)
		return
	}
	lvl, ok := parseLevel(r)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown level %q (want SSER, SER or SI)", r.URL.Query().Get("level"))
		return
	}
	if lvl == "" {
		lvl = core.SI
	}
	writeJSON(w, http.StatusOK, fromResult(core.Check(f.H, lvl), "mtc"))
}

// sessionRequest is the body of POST /sessions.
type sessionRequest struct {
	Level string        `json:"level"`
	Keys  []history.Key `json:"keys"`
}

// txnPayload is the wire form of one streamed transaction; committed is
// a pointer so that omitting it is detectable rather than silently
// meaning aborted.
type txnPayload struct {
	Sess      int          `json:"sess"`
	Ops       []history.Op `json:"ops"`
	Committed *bool        `json:"committed"`
	Start     int64        `json:"start"`
	Finish    int64        `json:"finish"`
}

// sessionStatus is the response of the session endpoints.
type sessionStatus struct {
	ID      string   `json:"id"`
	Level   string   `json:"level"`
	Txns    int      `json:"txns"`
	Edges   int      `json:"edges"`
	OK      bool     `json:"ok"`
	Final   bool     `json:"final"`
	Verdict *Verdict `json:"verdict,omitempty"`
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var req sessionRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad session request: %v", err)
		return
	}
	lvl := core.Level(strings.ToUpper(req.Level))
	if lvl == "" {
		lvl = core.SI
	}
	switch lvl {
	case core.SER, core.SI:
	default:
		httpError(w, http.StatusBadRequest, "streaming checker supports levels SER and SI, not %q", req.Level)
		return
	}
	sess := &session{lvl: lvl, inc: core.NewIncremental(lvl)}
	if len(req.Keys) > 0 {
		sess.inc.InitTxn(req.Keys...)
	}
	max := s.MaxSessions
	if max <= 0 {
		max = DefaultMaxSessions
	}
	s.mu.Lock()
	if len(s.sessions) >= max {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "session limit reached (%d live); DELETE finished sessions to free slots", max)
		return
	}
	s.nextID++
	id := "s" + strconv.Itoa(s.nextID)
	s.sessions[id] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, s.status(id, sess))
}

func (s *Server) lookupSession(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// status snapshots a session. Caller must NOT hold sess.mu.
func (s *Server) status(id string, sess *session) sessionStatus {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	st := sessionStatus{
		ID: id, Level: string(sess.lvl),
		Txns: sess.inc.NumTxns(), Edges: sess.inc.NumEdges(),
		OK: true, Final: sess.stopped,
	}
	if sess.final != nil {
		st.OK = sess.final.OK
		v := fromResult(*sess.final, "mtc-incremental")
		st.Verdict = &v
	} else if vio := sess.inc.Violation(); vio != nil {
		st.OK = false
		v := fromResult(*vio, "mtc-incremental")
		st.Verdict = &v
	}
	return st
}

func (s *Server) handleSessionTxns(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.lookupSession(id)
	if sess == nil {
		httpError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad txns payload: %v", err)
		return
	}
	// Accept a single txn object or an array of txns.
	var payloads []txnPayload
	if t := bytes.TrimLeft(raw, " \t\r\n"); len(t) > 0 && t[0] == '[' {
		err = json.Unmarshal(raw, &payloads)
	} else {
		var one txnPayload
		err = json.Unmarshal(raw, &one)
		payloads = []txnPayload{one}
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad txns payload: %v", err)
		return
	}
	txns := make([]history.Txn, len(payloads))
	for i, p := range payloads {
		// A missing committed field must not silently demote the txn to
		// aborted — the checker would ignore its reads and could
		// finalize a violating stream as clean.
		if p.Committed == nil {
			httpError(w, http.StatusBadRequest, "txn %d: missing required field \"committed\"", i)
			return
		}
		txns[i] = history.Txn{
			Session: p.Sess, Ops: p.Ops, Committed: *p.Committed,
			Start: p.Start, Finish: p.Finish,
		}
	}
	sess.mu.Lock()
	if sess.stopped {
		sess.mu.Unlock()
		httpError(w, http.StatusConflict, "session %q is finalized", id)
		return
	}
	for i := range txns {
		sess.inc.Add(txns[i])
	}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, s.status(id, sess))
}

func (s *Server) handleSessionVerdict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.lookupSession(id)
	if sess == nil {
		httpError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	if final := r.URL.Query().Get("final"); final == "1" || strings.EqualFold(final, "true") {
		sess.mu.Lock()
		if !sess.stopped {
			res := sess.inc.Finalize()
			sess.final = &res
			sess.stopped = true
		}
		sess.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, s.status(id, sess))
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
