// Package mtcserve implements the checking-as-a-service HTTP API behind
// cmd/mtc-serve: histories in, verdicts with counterexamples out. It is
// the repository's take on the IsoVista integration the paper names as
// future work. Engines are resolved through the checker registry
// (internal/checker), so every registered checker — the batch MTC
// algorithms, the online incremental engine, and the Cobra, PolySI, Elle
// and Porcupine baselines — is reachable by name.
//
// The v1 API is asynchronous: whole-history checks are submitted as jobs
// executed by a bounded worker pool under per-job timeouts (the engines
// poll their contexts, so a deadline actually stops work), polled by id,
// and observable as an NDJSON event stream. Streaming verification
// sessions feed transactions to core.Incremental as they commit, so a
// deployment can verify continuously under live traffic instead of
// shipping complete histories.
//
//	GET    /v1/checkers                 registered checkers and their levels
//	POST   /v1/jobs                     submit a whole-history check -> 202 + job id
//	GET    /v1/jobs                     list known jobs
//	GET    /v1/jobs/{id}                poll job status (report once done)
//	GET    /v1/jobs/{id}/events         NDJSON stream of job state transitions
//	DELETE /v1/jobs/{id}                cancel and forget a job (stops its worker)
//	POST   /v1/sessions                 open a streaming session {level, keys}
//	POST   /v1/sessions/{id}/txns       feed one txn or an array of txns
//	POST   /v1/sessions/{id}/batch      feed one MTCB binary frame of txns
//	GET    /v1/sessions/{id}/verdict    verdict so far (?final=1 closes)
//	DELETE /v1/sessions/{id}            discard a session
//	GET    /v1/fixtures                 the built-in anomaly fixtures
//	GET    /v1/fixtures/{name}?level=   report on a fixture
//	GET    /healthz
//
// The pre-v1 routes (/checkers, /check, /fixtures, /sessions) remain as
// thin deprecated aliases; they answer with Deprecation and Link headers
// naming their v1 successor. Every request carries an X-Request-Id
// (client-supplied or generated), v1 errors use a structured
// {error:{code,message}} envelope, and request bodies are size-limited.
package mtcserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"mtc/internal/api"
	"mtc/internal/checker"
	"mtc/internal/core"
	"mtc/internal/fabric"
	"mtc/internal/history"
)

// Verdict is the legacy JSON wire form of a checker verdict, served by
// the deprecated pre-v1 routes. v1 responses embed checker.Report
// instead, which keeps anomalies and cycle edges structured.
type Verdict struct {
	Level     string   `json:"level"`
	Checker   string   `json:"checker"`
	OK        bool     `json:"ok"`
	Txns      int      `json:"txns"`
	Edges     int      `json:"edges,omitempty"`
	Anomalies []string `json:"anomalies,omitempty"`
	Cycle     []string `json:"cycle,omitempty"`
	Detail    string   `json:"detail,omitempty"`
}

// apiError is the legacy flat error body of the deprecated routes.
type apiError struct {
	Error string `json:"error"`
}

// checkerInfo describes one registry entry in GET /checkers.
type checkerInfo = api.CheckerInfo

// Server carries the registry, the job pool, and the live streaming
// sessions. Safe for concurrent use. The zero-value knobs select the
// defaults; construct with NewServer and serve Handler().
type Server struct {
	reg *checker.Registry
	// DefaultChecker is used when no checker is named; empty means "mtc".
	DefaultChecker string
	// MaxSessions bounds concurrently live streaming sessions; a session
	// holds checker state proportional to the transactions fed, so
	// abandoned sessions must not accumulate without limit. 0 uses
	// DefaultMaxSessions. Clients free slots with DELETE /v1/sessions/{id}.
	MaxSessions int
	// Workers sizes the job worker pool (default DefaultWorkers).
	Workers int
	// QueueDepth bounds queued-but-unstarted jobs (default
	// DefaultQueueDepth); a full queue answers 429 with Retry-After.
	QueueDepth int
	// JobTimeout is the default per-job execution timeout (default
	// DefaultJobTimeout); requests may lower or raise it up to
	// MaxRequestTimeout.
	JobTimeout time.Duration
	// MaxJobs bounds the retained job table (default DefaultMaxJobs):
	// when reached, the oldest terminal jobs are forgotten to make room,
	// so completed reports do not accumulate without limit.
	MaxJobs int
	// MaxBodyBytes bounds request bodies (default 64 MiB).
	MaxBodyBytes int64
	// DefaultWindow is the compaction window applied to streaming
	// sessions that do not request their own (api.SessionRequest.Window):
	// 0 keeps sessions unbounded unless they opt in.
	DefaultWindow int
	// SessionIdleTimeout evicts streaming sessions that have not been
	// touched for this long (default DefaultSessionIdle), so abandoned
	// streams do not pin checker state or session slots forever. An
	// evicted session answers 404 like a deleted one.
	SessionIdleTimeout time.Duration
	// DefaultParallelism is the engine parallelism applied to jobs that do
	// not set their own (checker.Options.Parallelism): 0 keeps the
	// checker-level default of GOMAXPROCS. Per-request values are clamped
	// to the host's GOMAXPROCS either way.
	DefaultParallelism int
	// Logger receives the structured access log; nil discards it.
	Logger *slog.Logger
	// Fabric, when non-nil, makes this server a distributed-checking
	// coordinator: the /v1/fabric endpoints come alive for workers, and
	// jobs submitted with "distributed": true are dispatched to the
	// fabric instead of the local pool. Set it before serving (mtc-serve
	// wires it from -fabric-wal) and call AdoptFabricJobs once to
	// re-expose jobs recovered from the write-ahead log.
	Fabric *fabric.Coordinator

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int
	// Janitor lifecycle, guarded by mu: the sweeper starts on the first
	// streaming session and is stopped — and waited for — by Close, so a
	// gracefully shut down server leaks no goroutine. janitorStopped
	// also bars a post-Close session open from resurrecting it.
	janitorStarted bool
	janitorStopped bool
	janitorStop    chan struct{}
	janitorDone    chan struct{}

	jobsMu      sync.Mutex
	jobs        map[string]*job
	nextJobID   int
	queue       chan *job
	workersOnce sync.Once
	closed      bool
}

// DefaultMaxSessions is the default cap on live streaming sessions.
const DefaultMaxSessions = 1024

// DefaultMaxBodyBytes is the default request-body size limit.
const DefaultMaxBodyBytes = 64 << 20

// DefaultSessionIdle is the default idle-eviction timeout for streaming
// sessions.
const DefaultSessionIdle = 30 * time.Minute

// session is one streaming verification session.
type session struct {
	mu       sync.Mutex
	lvl      core.Level
	inc      *core.Incremental
	final    *core.Result
	stopped  bool
	window   int // compaction window; 0 = unbounded
	lastUsed time.Time
	// arena amortizes binary batch ingest (POST .../batch): keys intern
	// once per session and decoded Op slices are carved from shared
	// chunks instead of per-transaction allocations. Created lazily on
	// the first batch; guarded by mu like the rest of the session.
	arena *history.IngestArena
}

// touch stamps the session as active. Caller must hold sess.mu.
func (sess *session) touch() { sess.lastUsed = time.Now() }

// NewServer returns a server dispatching on the given registry; nil
// selects the default registry with every engine registered.
func NewServer(reg *checker.Registry) *Server {
	if reg == nil {
		reg = checker.Default
	}
	return &Server{
		reg:         reg,
		sessions:    make(map[string]*session),
		jobs:        make(map[string]*job),
		janitorStop: make(chan struct{}),
	}
}

func (s *Server) sessionIdle() time.Duration {
	if s.SessionIdleTimeout > 0 {
		return s.SessionIdleTimeout
	}
	return DefaultSessionIdle
}

// startJanitor launches the idle-session sweeper on first use. A server
// that has already been Closed never (re)starts it.
func (s *Server) startJanitor() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.janitorStarted || s.janitorStopped {
		return
	}
	s.janitorStarted = true
	if s.janitorStop == nil { // literal-constructed Server
		s.janitorStop = make(chan struct{})
	}
	s.janitorDone = make(chan struct{})
	interval := s.sessionIdle() / 4
	if interval < time.Second {
		interval = time.Second
	}
	go func() {
		defer close(s.janitorDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if n := s.sweepIdleSessions(time.Now()); n > 0 {
					s.logger().Info("evicted idle sessions", "count", n)
				}
			case <-s.janitorStop:
				return
			}
		}
	}()
}

// stopJanitor signals the sweeper and waits until its goroutine has
// exited; it is a no-op when the janitor never started and idempotent
// otherwise.
func (s *Server) stopJanitor() {
	s.mu.Lock()
	if !s.janitorStopped {
		s.janitorStopped = true
		if s.janitorStarted {
			close(s.janitorStop)
		}
	}
	done := s.janitorDone
	s.mu.Unlock()
	if done != nil {
		<-done
	}
}

// sweepIdleSessions evicts every session idle longer than the timeout
// and reports how many it removed.
func (s *Server) sweepIdleSessions(now time.Time) int {
	idle := s.sessionIdle()
	s.mu.Lock()
	defer s.mu.Unlock()
	evicted := 0
	for id, sess := range s.sessions {
		sess.mu.Lock()
		stale := now.Sub(sess.lastUsed) > idle
		sess.mu.Unlock()
		if stale {
			delete(s.sessions, id)
			evicted++
		}
	}
	return evicted
}

// Handler returns the service's HTTP handler over the default registry.
func Handler() http.Handler { return NewServer(nil).Handler() }

// Default accessors.
func (s *Server) defaultChecker() string {
	if s.DefaultChecker != "" {
		return s.DefaultChecker
	}
	return "mtc"
}

func (s *Server) workers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return DefaultWorkers
}

func (s *Server) queueDepth() int {
	if s.QueueDepth > 0 {
		return s.QueueDepth
	}
	return DefaultQueueDepth
}

func (s *Server) jobTimeout() time.Duration {
	if s.JobTimeout > 0 {
		return s.JobTimeout
	}
	return DefaultJobTimeout
}

func (s *Server) maxBodyBytes() int64 {
	if s.MaxBodyBytes > 0 {
		return s.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

func (s *Server) logger() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	// io.Discard handler rather than slog.DiscardHandler: the latter is
	// Go 1.24+ and the CI matrix still builds 1.23.
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// Handler builds the route table behind the middleware chain.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	healthz := func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	}
	mux.HandleFunc("GET /healthz", healthz)
	mux.HandleFunc("GET /v1/healthz", healthz)

	// v1: the supported surface.
	mux.HandleFunc("GET /v1/checkers", s.handleCheckers)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionOpen)
	mux.HandleFunc("POST /v1/sessions/{id}/txns", s.handleSessionTxns)
	mux.HandleFunc("POST /v1/sessions/{id}/batch", s.handleSessionBatch)
	mux.HandleFunc("GET /v1/sessions/{id}/verdict", s.handleSessionVerdict)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/fixtures", s.handleFixtures)
	mux.HandleFunc("GET /v1/fixtures/{name}", s.handleFixtureV1)

	// Fabric coordinator surface; answers 400 unless the server was
	// started as a coordinator (Fabric set).
	mux.HandleFunc("POST /v1/fabric/workers", s.handleFabricRegister)
	mux.HandleFunc("POST /v1/fabric/workers/{id}/heartbeat", s.handleFabricHeartbeat)
	mux.HandleFunc("POST /v1/fabric/workers/{id}/pull", s.handleFabricPull)
	mux.HandleFunc("POST /v1/fabric/workers/{id}/results", s.handleFabricResults)
	mux.HandleFunc("GET /v1/fabric/status", s.handleFabricStatus)

	// Pre-v1 aliases, kept for one deprecation cycle.
	mux.HandleFunc("GET /checkers", deprecated("/v1/checkers", s.handleCheckers))
	mux.HandleFunc("POST /check", deprecated("/v1/jobs", s.handleCheck))
	mux.HandleFunc("GET /fixtures", deprecated("/v1/fixtures", s.handleFixtures))
	mux.HandleFunc("GET /fixtures/{name}", deprecated("/v1/fixtures/{name}", s.handleFixture))
	mux.HandleFunc("POST /sessions", deprecated("/v1/sessions", s.handleSessionOpen))
	mux.HandleFunc("POST /sessions/{id}/txns", deprecated("/v1/sessions/{id}/txns", s.handleSessionTxns))
	mux.HandleFunc("GET /sessions/{id}/verdict", deprecated("/v1/sessions/{id}/verdict", s.handleSessionVerdict))
	mux.HandleFunc("DELETE /sessions/{id}", deprecated("/v1/sessions/{id}", s.handleSessionDelete))
	return s.middleware(mux)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

// httpError writes the legacy flat error body (deprecated routes).
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// v1Error writes the v1 structured error envelope.
func (s *Server) v1Error(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...any) {
	writeJSON(w, status, api.ErrorResponse{
		Error:     api.Error{Code: code, Message: fmt.Sprintf(format, args...)},
		RequestID: RequestIDFrom(r.Context()),
	})
}

// parseLevelParam resolves the level query parameter through the
// canonical checker.ParseLevel; empty means "checker default".
func parseLevelParam(r *http.Request) (core.Level, error) {
	raw := r.URL.Query().Get("level")
	if raw == "" {
		return "", nil
	}
	return checker.ParseLevel(raw)
}

func (s *Server) handleCheckers(w http.ResponseWriter, r *http.Request) {
	var out []checkerInfo
	for _, c := range s.reg.All() {
		info := checkerInfo{Name: c.Name()}
		for _, l := range c.Levels() {
			info.Levels = append(info.Levels, string(l))
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleCheck is the deprecated synchronous whole-history check; its v1
// successor is the job API.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	lvl, lvlErr := parseLevelParam(r)
	if lvlErr != nil {
		httpError(w, http.StatusBadRequest, "%v", lvlErr)
		return
	}
	name := r.URL.Query().Get("checker")
	if name == "" {
		name = s.defaultChecker()
	}
	if _, err := s.reg.Lookup(name); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	h, err := history.ReadJSON(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad history: %v", err)
		return
	}
	rep, err := s.reg.Run(r.Context(), name, h, checker.Options{Level: lvl})
	switch {
	case checker.IsUnsupported(err):
		// The engine could not process this history (e.g. Porcupine on a
		// history that is not LWT-shaped): the request was well-formed
		// but unprocessable by the selected checker.
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, fromReport(rep))
}

// fromReport converts a checker report to the legacy wire form.
func fromReport(v checker.Report) Verdict {
	out := Verdict{
		Level: string(v.Level), Checker: v.Checker, OK: v.OK,
		Txns: v.Txns, Edges: v.Edges, Detail: v.Detail,
	}
	for _, a := range v.Anomalies {
		out.Anomalies = append(out.Anomalies, a.String())
	}
	for _, e := range v.Cycle {
		out.Cycle = append(out.Cycle, e.String())
	}
	return out
}

// reportFromResult converts a core.Result to a checker.Report for the
// session endpoints (the shared normalisation lives in the checker
// package).
func reportFromResult(r core.Result, checkerName string) checker.Report {
	return checker.ReportFromResult(checkerName, r)
}

func (s *Server) handleFixtures(w http.ResponseWriter, r *http.Request) {
	var names []string
	for _, f := range history.Fixtures() {
		names = append(names, f.Name)
	}
	writeJSON(w, http.StatusOK, names)
}

// handleFixture is the deprecated fixture check (legacy Verdict shape).
func (s *Server) handleFixture(w http.ResponseWriter, r *http.Request) {
	rep, status, err := s.fixtureReport(r)
	if err != nil {
		httpError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, fromReport(rep))
}

// handleFixtureV1 serves the fixture check with the structured Report.
func (s *Server) handleFixtureV1(w http.ResponseWriter, r *http.Request) {
	rep, status, err := s.fixtureReport(r)
	if err != nil {
		code := api.CodeBadRequest
		if status == http.StatusNotFound {
			code = api.CodeNotFound
		}
		s.v1Error(w, r, status, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// fixtureReport runs the MTC engine on a named fixture.
func (s *Server) fixtureReport(r *http.Request) (checker.Report, int, error) {
	name := r.PathValue("name")
	f := history.FixtureByName(name)
	if f == nil {
		return checker.Report{}, http.StatusNotFound, fmt.Errorf("unknown fixture %q", name)
	}
	lvl, err := parseLevelParam(r)
	if err != nil {
		return checker.Report{}, http.StatusBadRequest, err
	}
	if lvl == "" {
		lvl = core.SI
	}
	// The MTC engine serves the strong levels; the weak lattice rungs
	// route through the profile checker, which supports all of them.
	engine := "mtc"
	if core.LatticeRank(lvl) < core.LatticeRank(core.SI) {
		engine = "profile"
	}
	rep, err := s.reg.Run(r.Context(), engine, f.H, checker.Options{Level: lvl})
	if err != nil {
		return checker.Report{}, http.StatusBadRequest, err
	}
	return rep, http.StatusOK, nil
}

func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var req api.SessionRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "bad session request: %v", err)
		return
	}
	lvl := core.SI
	if req.Level != "" {
		parsed, err := checker.ParseLevel(req.Level)
		if err != nil {
			s.v1Error(w, r, http.StatusBadRequest, api.CodeUnsupportedLevel, "%v", err)
			return
		}
		lvl = parsed
	}
	switch lvl {
	case core.SER, core.SI:
	default:
		s.v1Error(w, r, http.StatusBadRequest, api.CodeUnsupportedLevel,
			"streaming checker supports levels SER and SI, not %q", req.Level)
		return
	}
	if req.Window < 0 {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest,
			"window must be >= 0, got %d", req.Window)
		return
	}
	window := req.Window
	if window == 0 {
		window = s.DefaultWindow
	}
	sess := &session{lvl: lvl, inc: core.NewIncremental(lvl), window: window}
	sess.touch()
	if len(req.Keys) > 0 {
		sess.inc.InitTxn(req.Keys...)
	}
	max := s.MaxSessions
	if max <= 0 {
		max = DefaultMaxSessions
	}
	s.mu.Lock()
	if len(s.sessions) >= max {
		s.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(defaultRetryAfterS))
		s.v1Error(w, r, http.StatusTooManyRequests, api.CodeSessionLimit,
			"session limit reached (%d live); DELETE finished sessions to free slots", max)
		return
	}
	s.nextID++
	id := "s" + strconv.Itoa(s.nextID)
	s.sessions[id] = sess
	s.mu.Unlock()
	s.startJanitor()
	writeJSON(w, http.StatusCreated, s.status(id, sess))
}

func (s *Server) lookupSession(id string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sessions[id]
}

// status snapshots a session. Caller must NOT hold sess.mu.
func (s *Server) status(id string, sess *session) api.SessionStatus {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	st := api.SessionStatus{
		ID: id, Level: string(sess.lvl),
		Txns: sess.inc.NumTxns(), Edges: sess.inc.NumEdges(),
		OK: true, Final: sess.stopped,
		Window:          sess.window,
		CompactedEpochs: sess.inc.CompactedEpochs(),
		CompactedTxns:   sess.inc.CompactedTxns(),
		LiveTxns:        sess.inc.LiveNodes(),
	}
	if sess.final != nil {
		st.OK = sess.final.OK
		v := reportFromResult(*sess.final, "mtc-incremental")
		st.Report = &v
	} else if vio := sess.inc.Violation(); vio != nil {
		st.OK = false
		v := reportFromResult(*vio, "mtc-incremental")
		st.Report = &v
	}
	return st
}

func (s *Server) handleSessionTxns(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.lookupSession(id)
	if sess == nil {
		s.v1Error(w, r, http.StatusNotFound, api.CodeNotFound, "unknown session %q", id)
		return
	}
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "bad txns payload: %v", err)
		return
	}
	// Accept a single txn object or an array of txns.
	var payloads []api.TxnPayload
	if t := bytes.TrimLeft(raw, " \t\r\n"); len(t) > 0 && t[0] == '[' {
		err = json.Unmarshal(raw, &payloads)
	} else {
		var one api.TxnPayload
		err = json.Unmarshal(raw, &one)
		payloads = []api.TxnPayload{one}
	}
	if err != nil {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "bad txns payload: %v", err)
		return
	}
	txns := make([]history.Txn, len(payloads))
	for i, p := range payloads {
		// A missing committed field must not silently demote the txn to
		// aborted — the checker would ignore its reads and could
		// finalize a violating stream as clean.
		if p.Committed == nil {
			s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "txn %d: missing required field \"committed\"", i)
			return
		}
		txns[i] = history.Txn{
			Session: p.Sess, Ops: p.Ops, Committed: *p.Committed,
			Start: p.Start, Finish: p.Finish,
		}
	}
	sess.mu.Lock()
	if sess.stopped {
		sess.mu.Unlock()
		s.v1Error(w, r, http.StatusConflict, api.CodeConflict, "session %q is finalized", id)
		return
	}
	sess.touch()
	for i := range txns {
		sess.inc.Add(txns[i])
	}
	sess.inc.MaybeCompact(sess.window, 0, nil)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, s.status(id, sess))
}

// handleSessionBatch implements POST /v1/sessions/{id}/batch: one MTCB
// frame — a complete binary document, possibly gzipped — whose
// transactions append to the session's incremental check. The frame
// decodes through the session's IngestArena, so keys intern once per
// session and no per-transaction map or JSON value is materialized; a
// batch is atomic — a frame that fails to decode (or smuggles an init
// record) changes nothing.
func (s *Server) handleSessionBatch(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.lookupSession(id)
	if sess == nil {
		s.v1Error(w, r, http.StatusNotFound, api.CodeNotFound, "unknown session %q", id)
		return
	}
	// Buffer the frame before taking the session lock, so a slow client
	// upload cannot stall verdict polls on the same session.
	raw, err := io.ReadAll(r.Body)
	if err != nil {
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "bad batch payload: %v", err)
		return
	}
	sess.mu.Lock()
	if sess.stopped {
		sess.mu.Unlock()
		s.v1Error(w, r, http.StatusConflict, api.CodeConflict, "session %q is finalized", id)
		return
	}
	sess.touch()
	if sess.arena == nil {
		sess.arena = history.NewIngestArena()
	}
	fr, err := history.NewBinaryFrameReader(bytes.NewReader(raw), sess.arena)
	if err != nil {
		sess.mu.Unlock()
		s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "bad mtcb frame: %v", err)
		return
	}
	var txns []history.Txn
	for {
		t, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			sess.mu.Unlock()
			s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest, "bad mtcb frame: %v", err)
			return
		}
		if t.Session < 0 {
			sess.mu.Unlock()
			s.v1Error(w, r, http.StatusBadRequest, api.CodeBadRequest,
				"batch frames must not carry an init record (declare initial keys at session open)")
			return
		}
		txns = append(txns, t)
	}
	for i := range txns {
		sess.inc.Add(txns[i])
	}
	sess.inc.MaybeCompact(sess.window, 0, nil)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, s.status(id, sess))
}

func (s *Server) handleSessionVerdict(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess := s.lookupSession(id)
	if sess == nil {
		s.v1Error(w, r, http.StatusNotFound, api.CodeNotFound, "unknown session %q", id)
		return
	}
	sess.mu.Lock()
	sess.touch()
	sess.mu.Unlock()
	if final := r.URL.Query().Get("final"); final == "1" || strings.EqualFold(final, "true") {
		sess.mu.Lock()
		if !sess.stopped {
			res := sess.inc.Finalize()
			sess.final = &res
			sess.stopped = true
		}
		sess.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, s.status(id, sess))
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		s.v1Error(w, r, http.StatusNotFound, api.CodeNotFound, "unknown session %q", id)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
