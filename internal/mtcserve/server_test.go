package mtcserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"mtc/internal/history"
)

func post(t *testing.T, ts *httptest.Server, path string, h *history.History) (*http.Response, Verdict) {
	t.Helper()
	var buf bytes.Buffer
	if h != nil {
		if err := history.WriteJSON(&buf, h); err != nil {
			t.Fatal(err)
		}
	} else {
		buf.WriteString("{bogus")
	}
	resp, err := http.Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	var v Verdict
	_ = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	return resp, v
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
}

func TestCheckValidHistory(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	h := history.SerialHistory(20, "x", "y")
	resp, v := post(t, ts, "/check?level=SER", h)
	if resp.StatusCode != http.StatusOK || !v.OK || v.Level != "SER" {
		t.Fatalf("verdict: %d %+v", resp.StatusCode, v)
	}
	if v.Txns != len(h.Txns) || v.Edges == 0 {
		t.Fatalf("stats: %+v", v)
	}
}

func TestCheckViolationReturnsCounterexample(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	f := history.FixtureByName("WriteSkew")
	_, v := post(t, ts, "/check?level=SER", f.H)
	if v.OK || len(v.Cycle) == 0 || !strings.Contains(v.Detail, "RW") {
		t.Fatalf("want write-skew cycle, got %+v", v)
	}
	_, v = post(t, ts, "/check?level=SI", f.H)
	if !v.OK {
		t.Fatalf("WriteSkew must pass SI: %+v", v)
	}
	_, v = post(t, ts, "/check?level=SI", history.FixtureByName("LostUpdate").H)
	if v.OK || !strings.Contains(v.Detail, "DIVERGENCE") {
		t.Fatalf("want divergence detail, got %+v", v)
	}
}

func TestCheckBaselineCheckers(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	h := history.SerialHistory(10, "x")
	resp, v := post(t, ts, "/check?level=SER&checker=cobra", h)
	if resp.StatusCode != http.StatusOK || !v.OK || v.Checker != "cobra" {
		t.Fatalf("cobra verdict: %d %+v", resp.StatusCode, v)
	}
	resp, v = post(t, ts, "/check?level=SI&checker=polysi", h)
	if resp.StatusCode != http.StatusOK || !v.OK || v.Checker != "polysi" {
		t.Fatalf("polysi verdict: %d %+v", resp.StatusCode, v)
	}
	// Mismatched level/checker combos are rejected.
	resp, _ = post(t, ts, "/check?level=SI&checker=cobra", h)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cobra on SI must 400, got %d", resp.StatusCode)
	}
}

func TestCheckErrors(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	resp, _ := post(t, ts, "/check?level=NOPE", history.SerialHistory(2))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad level must 400, got %d", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/check?level=SI", nil) // malformed body
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body must 400, got %d", resp.StatusCode)
	}
	resp, _ = post(t, ts, "/check?checker=bogus", history.SerialHistory(2))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad checker must 400, got %d", resp.StatusCode)
	}
}

func TestFixturesEndpoints(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/fixtures")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("fixtures: %v", err)
	}
	var names []string
	_ = json.NewDecoder(resp.Body).Decode(&names)
	resp.Body.Close()
	if len(names) != 16 {
		t.Fatalf("names = %v", names)
	}
	resp, err = http.Get(ts.URL + "/fixtures/WriteSkew?level=SI")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatal("fixture lookup failed")
	}
	var v Verdict
	_ = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if !v.OK {
		t.Fatalf("WriteSkew/SI verdict: %+v", v)
	}
	resp, _ = http.Get(ts.URL + "/fixtures/Nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown fixture must 404, got %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/fixtures/WriteSkew?level=NOPE")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad level must 400, got %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestDefaultLevelIsSI(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	_, v := post(t, ts, "/check", history.SerialHistory(3))
	if v.Level != "SI" {
		t.Fatalf("default level = %q", v.Level)
	}
}
