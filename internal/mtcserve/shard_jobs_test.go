package mtcserve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mtc/internal/api"
	"mtc/internal/history"
)

// tenantHistory builds a clean two-tenant history: two sessions, each
// over its own key — two components for the sharded job path.
func tenantJobHistory() *history.History {
	b := history.NewBuilder("a", "b")
	last := map[history.Key]history.Value{}
	val := history.Value(1)
	for i := 0; i < 10; i++ {
		for s, k := range []history.Key{"a", "b"} {
			b.Txn(s, history.R(k, last[k]), history.W(k, val))
			last[k] = val
			val++
		}
	}
	return b.Build()
}

// TestJobSharded submits a multi-tenant history with the shard knob and
// asserts the job routed through the sharded wrapper, echoed the
// effective knobs, and reported the component decomposition.
func TestJobSharded(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	resp, job := submitJob(t, ts, api.JobRequest{Checker: "mtc", Level: "SI", Shard: 1, History: tenantJobHistory()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sharded job rejected: %d", resp.StatusCode)
	}
	if job.Checker != "mtc-sharded" || job.Shard != 1 {
		t.Fatalf("job document: checker %q shard %d, want mtc-sharded/1", job.Checker, job.Shard)
	}
	done := waitJob(t, ts, job.ID, 5*time.Second)
	if done.State != api.JobDone || done.Report == nil || !done.Report.OK {
		t.Fatalf("sharded job: %+v", done)
	}
	if done.Report.ShardComponents != 2 {
		t.Fatalf("report.ShardComponents = %d, want 2", done.Report.ShardComponents)
	}
	// The unsharded job agrees on the verdict and edge count.
	_, ref := submitJob(t, ts, api.JobRequest{Checker: "mtc", Level: "SI", History: tenantJobHistory()})
	refDone := waitJob(t, ts, ref.ID, 5*time.Second)
	if refDone.Report == nil || refDone.Report.Edges != done.Report.Edges {
		t.Fatalf("edge counts diverge: sharded %d vs unsharded %+v", done.Report.Edges, refDone.Report)
	}
	// An explicitly sharded checker name with the knob set does not
	// double-wrap.
	_, j2 := submitJob(t, ts, api.JobRequest{Checker: "mtc-sharded", Level: "SI", Shard: 1, History: tenantJobHistory()})
	if j2.Checker != "mtc-sharded" {
		t.Fatalf("double-wrapped checker name %q", j2.Checker)
	}
}

// TestJanitorStopsOnClose proves the idle-session sweeper goroutine is
// gone after a graceful shutdown: Close blocks until the janitor exits.
func TestJanitorStopsOnClose(t *testing.T) {
	srv := NewServer(nil)
	srv.SessionIdleTimeout = 50 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions", api.SessionRequest{Level: "SI"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("open: %d", resp.StatusCode)
	}
	srv.mu.Lock()
	started, done := srv.janitorStarted, srv.janitorDone
	srv.mu.Unlock()
	if !started || done == nil {
		t.Fatal("janitor did not start with the first session")
	}
	srv.Close()
	select {
	case <-done:
	default:
		t.Fatal("Close returned before the janitor goroutine exited")
	}
	// Idempotent, and a late session open must not resurrect the janitor.
	srv.Close()
	srv.startJanitor()
	srv.mu.Lock()
	resurrected := srv.janitorDone
	srv.mu.Unlock()
	if resurrected != done {
		t.Fatal("startJanitor after Close restarted the sweeper")
	}
}

// TestCloseWithoutJanitor: a server whose janitor never started shuts
// down cleanly (stopJanitor is a no-op), including one constructed
// literally rather than via NewServer.
func TestCloseWithoutJanitor(t *testing.T) {
	srv := NewServer(nil)
	srv.Close()
	lit := &Server{}
	lit.startJanitor() // lazily creates the stop channel
	lit.Close()
	select {
	case <-lit.janitorDone:
	case <-time.After(time.Second):
		t.Fatal("literal server's janitor did not stop on Close")
	}
}
