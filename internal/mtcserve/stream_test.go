package mtcserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mtc/internal/api"
	"mtc/internal/history"
)

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if s, ok := body.(string); ok {
		buf.WriteString(s)
	} else if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func TestCheckersEndpoint(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	resp, body := doJSON(t, "GET", ts.URL+"/checkers", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/checkers: %d", resp.StatusCode)
	}
	var infos []checkerInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, ci := range infos {
		got[ci.Name] = len(ci.Levels) > 0
	}
	for _, name := range []string{"mtc", "mtc-incremental", "cobra", "polysi", "elle", "porcupine"} {
		if !got[name] {
			t.Fatalf("/checkers missing %q (got %v)", name, got)
		}
	}
}

func TestCheckRegistryCheckers(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	h := history.SerialHistory(10, "x")
	resp, v := post(t, ts, "/check?level=SER&checker=mtc-incremental", h)
	if resp.StatusCode != http.StatusOK || !v.OK || v.Checker != "mtc-incremental" {
		t.Fatalf("incremental verdict: %d %+v", resp.StatusCode, v)
	}
	resp, v = post(t, ts, "/check?level=SER&checker=elle", h)
	if resp.StatusCode != http.StatusOK || !v.OK || v.Checker != "elle" {
		t.Fatalf("elle verdict: %d %+v", resp.StatusCode, v)
	}
	// Porcupine on a non-LWT-shaped history is unprocessable.
	b := history.NewBuilder("x", "y")
	b.Txn(0, history.R("x", 0), history.W("x", 1), history.R("y", 0), history.W("y", 2))
	resp, _ = post(t, ts, "/check?level=SSER&checker=porcupine", b.Build())
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("porcupine shape error must 422, got %d", resp.StatusCode)
	}
}

// TestCheckErrorBodiesAreStructured ensures every error path returns an
// {error} JSON object with the right status.
func TestCheckErrorBodiesAreStructured(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	cases := []struct {
		name   string
		path   string
		body   any
		status int
	}{
		{"bad level", "/check?level=NOPE", history.SerialHistory(2), http.StatusBadRequest},
		{"unknown checker", "/check?checker=bogus", history.SerialHistory(2), http.StatusBadRequest},
		{"mismatched level", "/check?checker=cobra&level=SI", history.SerialHistory(2), http.StatusBadRequest},
		{"malformed history", "/check?level=SI", "{bogus", http.StatusBadRequest},
		{"empty body", "/check?level=SI", "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body any = tc.body
			if h, ok := tc.body.(*history.History); ok {
				var buf bytes.Buffer
				if err := history.WriteJSON(&buf, h); err != nil {
					t.Fatal(err)
				}
				body = buf.String()
			}
			resp, raw := doJSON(t, "POST", ts.URL+tc.path, body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d (%s)", resp.StatusCode, tc.status, raw)
			}
			var e apiError
			if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
				t.Fatalf("error body not structured: %q (%v)", raw, err)
			}
		})
	}
}

// TestStreamingSessionLifecycle drives a full session: open with keys,
// feed clean transactions, read the verdict, finalize, and delete.
func TestStreamingSessionLifecycle(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()

	resp, body := doJSON(t, "POST", ts.URL+"/sessions", api.SessionRequest{Level: "SER", Keys: []history.Key{"x", "y"}})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open: %d %s", resp.StatusCode, body)
	}
	var st api.SessionStatus
	if err := json.Unmarshal(body, &st); err != nil || st.ID == "" {
		t.Fatalf("open body: %s (%v)", body, err)
	}
	if st.Txns != 1 { // ⊥T
		t.Fatalf("want init txn counted, got %+v", st)
	}

	txns := []history.Txn{
		{Session: 0, Committed: true, Ops: []history.Op{history.R("x", 0), history.W("x", 1)}},
		{Session: 1, Committed: true, Ops: []history.Op{history.R("x", 1), history.W("x", 2)}},
	}
	resp, body = doJSON(t, "POST", ts.URL+"/sessions/"+st.ID+"/txns", txns)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feed: %d %s", resp.StatusCode, body)
	}
	_ = json.Unmarshal(body, &st)
	if !st.OK || st.Txns != 3 {
		t.Fatalf("after feed: %+v", st)
	}

	// Single-object payloads are accepted too.
	one := history.Txn{Session: 0, Committed: true, Ops: []history.Op{history.R("y", 0), history.W("y", 7)}}
	resp, body = doJSON(t, "POST", ts.URL+"/sessions/"+st.ID+"/txns", one)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feed one: %d %s", resp.StatusCode, body)
	}

	resp, body = doJSON(t, "GET", ts.URL+"/sessions/"+st.ID+"/verdict?final=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdict: %d", resp.StatusCode)
	}
	_ = json.Unmarshal(body, &st)
	if !st.Final || !st.OK || st.Report == nil || !st.Report.OK {
		t.Fatalf("final verdict: %s", body)
	}

	// Feeding a finalized session conflicts.
	resp, _ = doJSON(t, "POST", ts.URL+"/sessions/"+st.ID+"/txns", one)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("feed after final must 409, got %d", resp.StatusCode)
	}

	resp, _ = doJSON(t, "DELETE", ts.URL+"/sessions/"+st.ID, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, "GET", ts.URL+"/sessions/"+st.ID+"/verdict", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deleted session must 404, got %d", resp.StatusCode)
	}
}

// TestStreamingSessionCatchesViolation feeds a lost update and expects
// the verdict to flip mid-stream, before finalize.
func TestStreamingSessionCatchesViolation(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()

	_, body := doJSON(t, "POST", ts.URL+"/sessions", api.SessionRequest{Level: "SI", Keys: []history.Key{"x"}})
	var st api.SessionStatus
	_ = json.Unmarshal(body, &st)

	txns := []history.Txn{
		{Session: 0, Committed: true, Ops: []history.Op{history.R("x", 0), history.W("x", 1)}},
		{Session: 1, Committed: true, Ops: []history.Op{history.R("x", 0), history.W("x", 2)}}, // lost update
	}
	resp, body := doJSON(t, "POST", ts.URL+"/sessions/"+st.ID+"/txns", txns)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feed: %d", resp.StatusCode)
	}
	_ = json.Unmarshal(body, &st)
	if st.OK || st.Report == nil || st.Report.OK {
		t.Fatalf("lost update not caught: %s", body)
	}
	if !strings.Contains(st.Report.Detail, "DIVERGENCE") {
		t.Fatalf("want divergence witness, got %s", body)
	}
}

// TestStreamingSessionErrors covers the session error paths.
func TestStreamingSessionErrors(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()

	resp, raw := doJSON(t, "POST", ts.URL+"/sessions", api.SessionRequest{Level: "SSER"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("SSER session must 400, got %d", resp.StatusCode)
	}
	var e api.ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("error body not structured: %q", raw)
	}
	resp, _ = doJSON(t, "POST", ts.URL+"/sessions", "{bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad session body must 400, got %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, "POST", ts.URL+"/sessions/nope/txns", []history.Txn{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session must 404, got %d", resp.StatusCode)
	}
	resp, _ = doJSON(t, "DELETE", ts.URL+"/sessions/nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session delete must 404, got %d", resp.StatusCode)
	}

	_, body := doJSON(t, "POST", ts.URL+"/sessions", api.SessionRequest{Level: "si"})
	var st api.SessionStatus
	_ = json.Unmarshal(body, &st)
	resp, _ = doJSON(t, "POST", ts.URL+"/sessions/"+st.ID+"/txns", "{bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad txns payload must 400, got %d", resp.StatusCode)
	}
}

// TestDefaultCheckerFlagged exercises Server.DefaultChecker.
func TestDefaultCheckerFlagged(t *testing.T) {
	srv := NewServer(nil)
	srv.DefaultChecker = "cobra"
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	_, v := post(t, ts, "/check", history.SerialHistory(3, "x"))
	if v.Checker != "cobra" || v.Level != "SER" {
		t.Fatalf("default checker not applied: %+v", v)
	}
}

// TestSessionLimit bounds concurrently live sessions.
func TestSessionLimit(t *testing.T) {
	srv := NewServer(nil)
	srv.MaxSessions = 2
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	open := func() (*http.Response, api.SessionStatus) {
		resp, body := doJSON(t, "POST", ts.URL+"/sessions", api.SessionRequest{Level: "SI"})
		var st api.SessionStatus
		_ = json.Unmarshal(body, &st)
		return resp, st
	}
	_, st1 := open()
	open()
	resp, _ := open()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third session must 429, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry a Retry-After header")
	}
	// Deleting a session frees a slot.
	doJSON(t, "DELETE", ts.URL+"/sessions/"+st1.ID, nil)
	if resp, _ := open(); resp.StatusCode != http.StatusCreated {
		t.Fatalf("slot not freed: %d", resp.StatusCode)
	}
}

// TestSessionTxnRequiresCommitted rejects txns omitting the committed
// field instead of silently treating them as aborted.
func TestSessionTxnRequiresCommitted(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	_, body := doJSON(t, "POST", ts.URL+"/sessions", api.SessionRequest{Level: "SI", Keys: []history.Key{"x"}})
	var st api.SessionStatus
	_ = json.Unmarshal(body, &st)
	resp, raw := doJSON(t, "POST", ts.URL+"/sessions/"+st.ID+"/txns",
		`[{"sess":0,"ops":[{"k":0,"key":"x","v":0},{"k":1,"key":"x","v":1}]}]`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing committed must 400, got %d (%s)", resp.StatusCode, raw)
	}
	var e api.ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("error body not structured: %q", raw)
	}
}

// TestSessionWindowedCompaction opens a v1 session with a small window,
// streams several hundred clean RMW transactions, and asserts compaction
// kicks in mid-session: compacted_epochs grows, live_txns stays near the
// window, and the finalized verdict is still OK with every transaction
// accounted for.
func TestSessionWindowedCompaction(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()

	resp, body := doJSON(t, "POST", ts.URL+"/v1/sessions",
		api.SessionRequest{Level: "SER", Keys: []history.Key{"x", "y"}, Window: 64})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("open: %d %s", resp.StatusCode, body)
	}
	var st api.SessionStatus
	if err := json.Unmarshal(body, &st); err != nil || st.Window != 64 {
		t.Fatalf("window not echoed: %s (%v)", body, err)
	}

	const total = 600
	val := int64(1)
	lastX, lastY := int64(0), int64(0)
	for i := 0; i < total; i += 50 {
		var batch []history.Txn
		for j := i; j < i+50; j++ {
			key, last := history.Key("x"), &lastX
			if j%2 == 1 {
				key, last = history.Key("y"), &lastY
			}
			batch = append(batch, history.Txn{
				Session: j % 4, Committed: true,
				Ops: []history.Op{
					{Kind: history.OpRead, Key: key, Value: history.Value(*last)},
					{Kind: history.OpWrite, Key: key, Value: history.Value(val)},
				},
			})
			*last = val
			val++
		}
		resp, body = doJSON(t, "POST", ts.URL+"/v1/sessions/"+st.ID+"/txns", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feed: %d %s", resp.StatusCode, body)
		}
		_ = json.Unmarshal(body, &st)
		if !st.OK {
			t.Fatalf("clean stream flagged: %s", body)
		}
	}
	if st.CompactedEpochs == 0 || st.CompactedTxns < total/2 {
		t.Fatalf("compaction did not kick in mid-session: %s", body)
	}
	if st.LiveTxns >= total/2 {
		t.Fatalf("live state not bounded by the window: %s", body)
	}

	resp, body = doJSON(t, "GET", ts.URL+"/v1/sessions/"+st.ID+"/verdict?final=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verdict: %d", resp.StatusCode)
	}
	_ = json.Unmarshal(body, &st)
	if !st.Final || !st.OK || st.Report == nil || !st.Report.OK {
		t.Fatalf("final verdict: %s", body)
	}
	if st.Txns != total+1 { // ⊥T + streamed
		t.Fatalf("txns = %d, want %d", st.Txns, total+1)
	}
	if st.Report.CompactedEpochs != st.CompactedEpochs {
		t.Fatalf("report/status compaction stats diverge: %s", body)
	}
}

// TestSessionRejectsNegativeWindow covers the validation path.
func TestSessionRejectsNegativeWindow(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	resp, raw := doJSON(t, "POST", ts.URL+"/v1/sessions", api.SessionRequest{Level: "SI", Window: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative window must 400, got %d (%s)", resp.StatusCode, raw)
	}
}

// TestSessionAppendAfterFinalConflicts locks in the 409 contract on the
// v1 surface: once a verdict is finalized, appends conflict and the
// session slot can still be freed.
func TestSessionAppendAfterFinalConflicts(t *testing.T) {
	ts := httptest.NewServer(Handler())
	defer ts.Close()
	_, body := doJSON(t, "POST", ts.URL+"/v1/sessions", api.SessionRequest{Level: "SI", Keys: []history.Key{"x"}})
	var st api.SessionStatus
	_ = json.Unmarshal(body, &st)
	one := history.Txn{Session: 0, Committed: true, Ops: []history.Op{history.R("x", 0), history.W("x", 1)}}
	if resp, raw := doJSON(t, "POST", ts.URL+"/v1/sessions/"+st.ID+"/txns", one); resp.StatusCode != http.StatusOK {
		t.Fatalf("feed: %d %s", resp.StatusCode, raw)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/v1/sessions/"+st.ID+"/verdict?final=1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("finalize failed: %d", resp.StatusCode)
	}
	resp, raw := doJSON(t, "POST", ts.URL+"/v1/sessions/"+st.ID+"/txns", one)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("append after final must 409, got %d (%s)", resp.StatusCode, raw)
	}
	var e api.ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Error.Code != api.CodeConflict {
		t.Fatalf("409 body not structured: %q", raw)
	}
	if resp, _ := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+st.ID, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete after final: %d", resp.StatusCode)
	}
}

// TestSessionIdleEviction: sessions untouched past the idle timeout are
// swept, answer 404 afterwards, and free their slot; active sessions
// survive the sweep.
func TestSessionIdleEviction(t *testing.T) {
	srv := NewServer(nil)
	srv.SessionIdleTimeout = 50 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, body := doJSON(t, "POST", ts.URL+"/v1/sessions", api.SessionRequest{Level: "SI", Keys: []history.Key{"x"}})
	var stale api.SessionStatus
	_ = json.Unmarshal(body, &stale)
	_, body = doJSON(t, "POST", ts.URL+"/v1/sessions", api.SessionRequest{Level: "SI", Keys: []history.Key{"x"}})
	var fresh api.SessionStatus
	_ = json.Unmarshal(body, &fresh)

	time.Sleep(60 * time.Millisecond)
	// Touch only the fresh session, then sweep deterministically.
	one := history.Txn{Session: 0, Committed: true, Ops: []history.Op{history.R("x", 0), history.W("x", 1)}}
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions/"+fresh.ID+"/txns", one); resp.StatusCode != http.StatusOK {
		t.Fatalf("touch fresh: %d", resp.StatusCode)
	}
	if n := srv.sweepIdleSessions(time.Now()); n != 1 {
		t.Fatalf("sweep evicted %d sessions, want 1", n)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/v1/sessions/"+stale.ID+"/verdict", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session must 404, got %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, "GET", ts.URL+"/v1/sessions/"+fresh.ID+"/verdict", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("active session must survive the sweep, got %d", resp.StatusCode)
	}
}

// TestSessionIdleEvictionJanitor exercises the background sweeper end to
// end (short timeout, 1s ticker floor is bypassed by calling the sweep
// via the janitor's own clock is impractical in a unit test — so this
// asserts the janitor goroutine starts and Close stops it without leaks).
func TestSessionIdleEvictionJanitorLifecycle(t *testing.T) {
	srv := NewServer(nil)
	srv.SessionIdleTimeout = 50 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if resp, _ := doJSON(t, "POST", ts.URL+"/v1/sessions", api.SessionRequest{Level: "SI"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("open: %d", resp.StatusCode)
	}
	srv.Close() // must stop the janitor without panicking or deadlocking
}
