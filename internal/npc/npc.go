// Package npc accompanies Appendix C of the paper: verifying strong
// isolation levels of mini-transaction histories WITHOUT unique values is
// NP-complete, so no analogue of the linear-time MTC algorithms can exist
// for them (unless P=NP).
//
// The package provides reference checkers that remain correct in that
// regime: exhaustive searches over serial witness orders (view
// serializability / strict serializability by definition). They are
// exponential in the worst case — the bench harness measures the blow-up
// — and double as oracles for property-testing the polynomial MTC
// checkers on unique-value histories, where the two notions coincide for
// the RMW pattern.
package npc

import (
	"mtc/internal/history"
)

// SerializableBrute reports whether the history is (view) serializable:
// some permutation of its committed transactions respects the session
// order and replays all reads correctly. It needs no unique-value
// assumption. Exponential worst case; keep histories small.
func SerializableBrute(h *history.History) bool {
	return brute(h, false)
}

// StrictSerializableBrute additionally requires the witness order to
// respect the real-time order (finish < start).
func StrictSerializableBrute(h *history.History) bool {
	return brute(h, true)
}

// brute runs a backtracking search over witness orders: at each step any
// transaction whose predecessors (session order, optionally real-time
// order) have all been placed may run next, provided its reads match the
// current database state under its own write buffer.
func brute(h *history.History, realTime bool) bool {
	// Committed transactions only; aborted writes never apply.
	var txns []int
	for i := range h.Txns {
		if h.Txns[i].Committed {
			txns = append(txns, i)
		}
	}
	// Precedence edges.
	pred := map[int][]int{}
	h.SessionOrder(func(a, b int) { pred[b] = append(pred[b], a) })
	if realTime {
		h.RealTimeOrder(func(a, b int) { pred[b] = append(pred[b], a) })
	}

	placed := make(map[int]bool, len(txns))
	state := map[history.Key]history.Value{}
	exists := map[history.Key]bool{}

	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			return true
		}
		for _, id := range txns {
			if placed[id] {
				continue
			}
			ready := true
			for _, p := range pred[id] {
				if !placed[p] {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			undo, ok := apply(&h.Txns[id], state, exists)
			if ok {
				placed[id] = true
				if rec(remaining - 1) {
					return true
				}
				placed[id] = false
			}
			undo()
		}
		return false
	}
	return rec(len(txns))
}

// apply replays one transaction against the state. It returns an undo
// closure and whether every read matched. Reads of keys never written
// return the zero value only if the key exists (was initialized); a read
// of an absent key never matches (callers model initialization with ⊥T).
func apply(t *history.Txn, state map[history.Key]history.Value, exists map[history.Key]bool) (func(), bool) {
	type saved struct {
		k       history.Key
		v       history.Value
		existed bool
	}
	var log []saved
	undo := func() {
		for i := len(log) - 1; i >= 0; i-- {
			s := log[i]
			if s.existed {
				state[s.k] = s.v
				exists[s.k] = true
			} else {
				delete(state, s.k)
				delete(exists, s.k)
			}
		}
	}
	buf := map[history.Key]history.Value{}
	for _, op := range t.Ops {
		switch op.Kind {
		case history.OpRead:
			if v, ok := buf[op.Key]; ok {
				if v != op.Value {
					return undo, false
				}
				continue
			}
			if !exists[op.Key] || state[op.Key] != op.Value {
				return undo, false
			}
		case history.OpWrite:
			buf[op.Key] = op.Value
		}
	}
	for k, v := range buf {
		old, existed := state[k], exists[k]
		log = append(log, saved{k: k, v: old, existed: existed})
		state[k] = v
		exists[k] = true
	}
	return undo, true
}
