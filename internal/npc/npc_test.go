package npc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/runner"
	"mtc/internal/workload"
)

func TestSerialHistorySerializable(t *testing.T) {
	h := history.SerialHistory(8, "x", "y")
	if !SerializableBrute(h) {
		t.Fatal("serial history must be serializable")
	}
	if !StrictSerializableBrute(h) {
		t.Fatal("serial history must be strictly serializable")
	}
}

func TestFixturesAgainstBrute(t *testing.T) {
	// The brute checker decides view serializability without unique
	// values; on the unique-value MT fixtures it agrees with CheckSER.
	for _, f := range history.Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			got := SerializableBrute(f.H)
			if got != !f.ViolatesSER {
				t.Fatalf("brute SER = %v, want %v", got, !f.ViolatesSER)
			}
		})
	}
}

func TestNonUniqueValuesSerializable(t *testing.T) {
	// Two transactions write the SAME value 7; a reader of 7 can be
	// explained by either. The unique-value checkers are inapplicable
	// here; the brute checker finds the witness.
	b := history.NewBuilder("x")
	b.Txn(0, history.R("x", 0), history.W("x", 7))
	b.Txn(1, history.R("x", 7), history.W("x", 7))
	b.Txn(2, history.R("x", 7))
	h := b.Build()
	if !SerializableBrute(h) {
		t.Fatal("ambiguous but serializable history rejected")
	}
}

func TestNonUniqueValuesNotSerializable(t *testing.T) {
	// x and y flip in incompatible orders: T1 reads (x=1,y=0), T2 reads
	// (x=0,y=1), with single writers setting x:=1 then y:=1 in one
	// session (so the writes are ordered). No witness order exists.
	b := history.NewBuilder("x", "y")
	wx := b.Txn(0, history.R("x", 0), history.W("x", 1))
	wy := b.Txn(0, history.R("y", 0), history.W("y", 1))
	_ = wx
	_ = wy
	b.Txn(1, history.R("x", 1), history.R("y", 0))
	b.Txn(2, history.R("x", 0), history.R("y", 1))
	h := b.Build()
	if SerializableBrute(h) {
		t.Fatal("long-fork-style history accepted")
	}
}

func TestStrictRequiresRealTime(t *testing.T) {
	// T1 finishes before T2 starts but T2 reads the pre-T1 value:
	// serializable (order T2, T1) yet not strictly serializable.
	b := history.NewBuilder("x")
	b.TimedTxn(0, 10, 20, history.R("x", 0), history.W("x", 1))
	b.TimedTxn(1, 30, 40, history.R("x", 0))
	h := b.Build()
	if !SerializableBrute(h) {
		t.Fatal("must be serializable")
	}
	if StrictSerializableBrute(h) {
		t.Fatal("must not be strictly serializable")
	}
}

func TestAbortedWritesNeverApply(t *testing.T) {
	b := history.NewBuilder("x")
	b.AbortedTxn(0, history.R("x", 0), history.W("x", 5))
	b.Txn(1, history.R("x", 5))
	h := b.Build()
	if SerializableBrute(h) {
		t.Fatal("reading an aborted write must not be serializable")
	}
}

func TestReadOfUninitializedKeyFails(t *testing.T) {
	b := history.NewBuilder() // no init
	b.Txn(0, history.R("x", 0))
	if SerializableBrute(b.Build()) {
		t.Fatal("read of absent key must fail")
	}
}

func TestPropertyBruteAgreesWithCheckSEROnMTHistories(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		faults := kv.Faults{Seed: seed + 1}
		if rng.Intn(2) == 0 {
			faults.WriteSkew = 0.6
		}
		s := kv.NewFaultyStore(kv.ModeSerializable, faults)
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 3, Txns: 4, Objects: 2, Dist: workload.Uniform, Seed: seed,
		})
		h := runner.Run(s, w, runner.Config{Retries: 3}).H
		want := core.CheckSER(h).OK
		got := SerializableBrute(h)
		if want != got {
			t.Logf("seed=%d CheckSER=%v brute=%v", seed, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBruteSSERAgreesWithCheckSSER(t *testing.T) {
	f := func(seed int64) bool {
		s := kv.NewFaultyStore(kv.ModeSerializable, kv.Faults{StaleSnapshot: 0.5, Seed: seed + 1})
		w := workload.GenerateMT(workload.MTConfig{
			Sessions: 3, Txns: 4, Objects: 2, Dist: workload.Uniform, Seed: seed,
		})
		h := runner.Run(s, w, runner.Config{Retries: 3}).H
		want := core.CheckSSER(h).OK
		got := StrictSerializableBrute(h)
		if want != got {
			t.Logf("seed=%d CheckSSER=%v brute=%v", seed, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
