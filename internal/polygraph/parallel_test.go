package polygraph

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"mtc/internal/history"
	"mtc/internal/sat"
)

// randomHistory builds a small random register history: blind writes and
// reads of previously written values, several sessions, so the polygraph
// carries both known edges and undetermined writer-pair constraints.
func randomHistory(rng *rand.Rand, sessions, txns, keys int) *history.History {
	names := make([]history.Key, keys)
	for i := range names {
		names[i] = history.Key(string(rune('a' + i)))
	}
	b := history.NewBuilder(names...)
	written := map[history.Key][]history.Value{}
	for _, k := range names {
		written[k] = []history.Value{0}
	}
	next := history.Value(1)
	for s := 0; s < sessions; s++ {
		for i := 0; i < txns; i++ {
			k := names[rng.Intn(keys)]
			switch rng.Intn(3) {
			case 0: // blind write
				b.Txn(s, history.W(k, next))
				written[k] = append(written[k], next)
				next++
			case 1: // read some written value
				vs := written[k]
				b.Txn(s, history.R(k, vs[rng.Intn(len(vs))]))
			default: // RMW
				vs := written[k]
				b.Txn(s, history.R(k, vs[rng.Intn(len(vs))]), history.W(k, next))
				written[k] = append(written[k], next)
				next++
			}
		}
	}
	return b.Build()
}

// clone duplicates a polygraph so one build can be pruned repeatedly.
func clone(p *Polygraph) *Polygraph {
	return &Polygraph{
		N:     p.N,
		Known: append([]sat.Edge(nil), p.Known...),
		Cons:  append([]sat.Constraint(nil), p.Cons...),
	}
}

// TestPruneParMatchesSerial proves PrunePar is observationally equal to
// the serial path at every parallelism: same verdict, same forced count,
// same residual constraints, and the same known edges in the same order.
func TestPruneParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ctx := context.Background()
	constrained := 0
	for trial := 0; trial < 60; trial++ {
		h := randomHistory(rng, 3, 8, 2+rng.Intn(3))
		base := Build(h)
		if len(base.Cons) > 0 {
			constrained++
		}
		for _, mode := range []PruneMode{PruneSER, PruneSI} {
			ref := clone(base)
			refOK, err := ref.PrunePar(ctx, mode, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, par := range []int{2, 4, 0} {
				got := clone(base)
				gotOK, err := got.PrunePar(ctx, mode, par)
				if err != nil {
					t.Fatal(err)
				}
				if gotOK != refOK || got.Forced != ref.Forced {
					t.Fatalf("trial %d mode %d par %d: ok=%v forced=%d, serial ok=%v forced=%d",
						trial, mode, par, gotOK, got.Forced, refOK, ref.Forced)
				}
				if !reflect.DeepEqual(got.Known, ref.Known) {
					t.Fatalf("trial %d mode %d par %d: known edges diverge", trial, mode, par)
				}
				if !reflect.DeepEqual(got.Cons, ref.Cons) {
					t.Fatalf("trial %d mode %d par %d: residual constraints diverge", trial, mode, par)
				}
			}
		}
	}
	if constrained < 10 {
		t.Fatalf("corpus too easy: only %d/60 polygraphs had constraints", constrained)
	}
}

// TestPruneParHonorsDeadline: a huge blind-write polygraph under a tiny
// deadline must stop inside the parallel fixpoint, not run to completion.
func TestPruneParHonorsDeadline(t *testing.T) {
	h := history.BlindWriteHistory(4, 220)
	p := Build(h)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.PrunePar(ctx, PruneSER, 4)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}
