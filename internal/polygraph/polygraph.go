// Package polygraph builds the constraint representation of a general
// history that the Cobra and PolySI baselines solve over: known dependency
// edges (session order, write-read, and read-modify-write-inferred
// write-write edges with their anti-dependencies) plus one binary
// constraint per undetermined pair of writers of the same object. Each
// orientation of a pair activates the write-write edge and the
// anti-dependency edges it induces (Cobra's "coalesced constraints").
//
// Prune implements Cobra's solver-external optimization: it repeatedly
// computes reachability over the known edges and forces every constraint
// whose one orientation would close a cycle, feeding the forced edges back
// into the known set until a fixpoint. This is the "non-solver" component
// whose cost dominates Cobra's runtime in Figure 10 (on real Cobra it is
// GPU-accelerated matrix multiplication; here it is bitset closure).
package polygraph

import (
	"context"
	"fmt"
	"sort"

	"mtc/internal/graph"
	"mtc/internal/history"
	"mtc/internal/sat"
)

// Polygraph is the constraint problem extracted from a history.
type Polygraph struct {
	N     int
	Known []sat.Edge
	Cons  []sat.Constraint
	// Forced counts constraints resolved by Prune.
	Forced int
}

// Build constructs the polygraph of a history. The history must already
// satisfy the INT axiom and unique values (callers pre-check with
// history.CheckInternal). Both the SER and SI baselines share this
// construction; they differ only in the theory they solve with.
func Build(h *history.History) *Polygraph {
	return BuildIndexed(history.NewIndex(h))
}

// BuildIndexed constructs the polygraph over a prebuilt columnar index,
// so one interning/footprint pass serves both the pre-check and the
// constraint extraction. Footprint columns are sorted by interned key
// id — lexicographic key order — so the edge and constraint emission
// order matches the map-and-sort construction it replaces.
func BuildIndexed(ix *history.Index) *Polygraph {
	h := ix.History()
	p := &Polygraph{N: len(h.Txns)}

	// readersOf[u] lists (key, reader) pairs: committed reader r read
	// key's value from u.
	readersOf := make([][]kr, len(h.Txns))
	// knownWW[u,x] is the direct RMW successor of u on x: a reader of u's
	// value of x that also wrote x. Divergent histories may have several;
	// the map keeps one and the loser starts its own chain (the WW and RW
	// edges of both are in Known either way, so divergence is still
	// rejected).
	knownWW := map[wk]int{}

	h.SessionOrder(func(a, b int) {
		p.Known = append(p.Known, sat.Edge{From: a, To: b, Kind: sat.Base})
	})

	for s := range h.Txns {
		rk, rv := ix.Reads(s) // empty for aborted transactions
		for i, x := range rk {
			u := ix.Writer(x, rv[i])
			if u < 0 || u == s {
				continue
			}
			p.Known = append(p.Known, sat.Edge{From: u, To: s, Kind: sat.Base}) // WR
			readersOf[u] = append(readersOf[u], kr{key: x, r: s})
			if _, w := ix.WriteVal(s, x); w {
				p.Known = append(p.Known, sat.Edge{From: u, To: s, Kind: sat.Base}) // WW
				knownWW[wk{u, x}] = s
			}
		}
	}

	// Anti-dependencies induced by the known WW edges, emitted in sorted
	// (writer, key) order: the edge list's order flows into the solver
	// and the pruner, so map iteration here would leak randomness into
	// witness selection.
	wwSlots := make([]wk, 0, len(knownWW))
	for slot := range knownWW {
		wwSlots = append(wwSlots, slot)
	}
	sort.Slice(wwSlots, func(i, j int) bool {
		if wwSlots[i].u != wwSlots[j].u {
			return wwSlots[i].u < wwSlots[j].u
		}
		return wwSlots[i].k < wwSlots[j].k
	})
	for _, uk := range wwSlots {
		w := knownWW[uk]
		for _, e := range readersOf[uk.u] {
			if e.key == uk.k && e.r != w {
				p.Known = append(p.Known, sat.Edge{From: e.r, To: w, Kind: sat.RW})
			}
		}
	}

	// Constraints: coalesce each key's writers into read-modify-write
	// chains first (Cobra's "coalescing"). A chain — w1 -> w2 -> ... where
	// each wi+1 read wi's value before overwriting it — cannot be
	// interleaved by another write without creating a WW/RW cycle, so two
	// chains are ordered as blocks: either tail(C) -> head(D) or
	// tail(D) -> head(C), with the anti-dependencies of the tail's
	// readers. This collapses O(W²) writer pairs to O(chains²); on pure
	// MT histories every key is a single chain and no constraints remain.
	for kid := 0; kid < ix.NumKeys(); kid++ {
		x := history.KeyID(kid)
		chains := buildChains(ix.WritersOf(x), knownWWSucc(knownWW, x))
		for i := 0; i < len(chains); i++ {
			for j := i + 1; j < len(chains); j++ {
				c, d := chains[i], chains[j]
				p.Cons = append(p.Cons, sat.Constraint{
					A: orient(c.tail, d.head, x, readersOf),
					B: orient(d.tail, c.head, x, readersOf),
				})
			}
		}
	}
	return p
}

// chain is a maximal RMW chain of writers of one key.
type chain struct {
	head, tail int
}

// knownWWSucc extracts the direct RMW successor lists of key x.
func knownWWSucc(knownWW map[wk]int, x history.KeyID) map[int]int {
	succ := map[int]int{}
	//mtc:nondeterministic-ok filtered key-for-key map rebuild; (u, x) keys are unique, so no entry races another
	for k, s := range knownWW {
		if k.k == x {
			succ[k.u] = s
		}
	}
	return succ
}

// buildChains partitions the writers of a key into maximal RMW chains. A
// writer starts a chain when no other committed writer's value feeds it
// (blind write, or its predecessor diverges into several successors, which
// cannot happen in well-formed RMW inference since each reader reads one
// value — divergent predecessors instead appear as two chains with the
// same feeding value, already split because succ maps each writer to at
// most one successor, keeping only one; the losers become chain heads).
func buildChains(writers []int32, succ map[int]int) []chain {
	hasPred := map[int]bool{}
	//mtc:nondeterministic-ok marking a membership set; insertion order cannot reach it
	for _, s := range succ {
		hasPred[s] = true
	}
	inChain := map[int]bool{}
	var chains []chain
	for _, w32 := range writers {
		w := int(w32)
		if hasPred[w] {
			continue // appears mid-chain
		}
		tail := w
		inChain[w] = true
		for {
			s, ok := succ[tail]
			if !ok {
				break
			}
			tail = s
			inChain[s] = true
		}
		chains = append(chains, chain{head: w, tail: tail})
	}
	// Writers on a cycle of succ edges (only possible in corrupt
	// histories) would be skipped above; give each its own chain so the
	// solver still sees them.
	for _, w32 := range writers {
		if w := int(w32); !inChain[w] {
			chains = append(chains, chain{head: w, tail: w})
		}
	}
	return chains
}

// kr is a (key, reader) pair: the reader read the key's value from the
// indexed transaction.
type kr struct {
	key history.KeyID
	r   int
}

// wk is a (writer, key) pair indexing the direct RMW successor map.
type wk struct {
	u int
	k history.KeyID
}

// orient returns the edges activated by ordering u before w on key x: the
// WW edge plus an anti-dependency from every reader of u's value of x.
func orient(u, w int, x history.KeyID, readersOf [][]kr) []sat.Edge {
	edges := []sat.Edge{{From: u, To: w, Kind: sat.Base}}
	for _, e := range readersOf[u] {
		if e.key == x && e.r != w {
			edges = append(edges, sat.Edge{From: e.r, To: w, Kind: sat.RW})
		}
	}
	return edges
}

// PruneMode selects the soundness condition used to force constraints.
type PruneMode int

// Pruning modes.
const (
	// PruneSER treats every edge (including anti-dependencies) as cycle
	// material: any plain cycle violates serializability.
	PruneSER PruneMode = iota
	// PruneSI only counts base (WW/WR/SO) edges: a pure base cycle is
	// also a cycle of the SI composition, but cycles through RW edges
	// need not be, so they must be left to the SI theory solver.
	PruneSI
)

// Prune resolves constraints forced by reachability over the known edges,
// iterating to a fixpoint. It returns false if the known edges alone are
// cyclic or some constraint is unsatisfiable both ways under the mode's
// (sound) cycle condition: the history certainly violates the level.
//
// PruneSER uses plain reachability over every known edge. PruneSI uses
// reachability over the COMPOSED graph (base ; rw?) of the known edges —
// an option is forced away when its own contribution to the composition
// (including compositions among its new edges) closes a composed cycle,
// the exact condition Definition 6 forbids. Both modes are sound; cycles
// requiring three or more undecided options are left to the solver.
func (p *Polygraph) Prune(mode PruneMode) bool {
	ok, _ := p.PruneCtx(context.Background(), mode)
	return ok
}

// PruneCtx is PrunePar at parallelism 1: the serial reference path.
func (p *Polygraph) PruneCtx(ctx context.Context, mode PruneMode) (bool, error) {
	return p.PrunePar(ctx, mode, 1)
}

// reacher answers reach(u, v) queries; either the full closure table or
// the sparse per-source rows a ReachPool answered.
type reacher interface {
	Reach(u, v int) bool
}

// sparseReach is a partial reachability relation: rows only for the
// sources the constraint checks actually query. serReach collects the
// source set from exactly the reach(e.To, *) probes createsCycle issues;
// querying any other source is a programming error and panics loudly
// rather than quietly answering "unreachable" (which would silently
// weaken pruning soundness).
type sparseReach struct {
	rows map[int]graph.Bitset
}

func (s sparseReach) Reach(u, v int) bool {
	row, ok := s.rows[u]
	if !ok {
		panic(fmt.Sprintf("polygraph: sparse reachability queried for uncollected source %d", u))
	}
	return row.Test(v)
}

// PrunePar is Prune with a bounded worker pool: each fixpoint round
// computes reachability in parallel (the closure fills independent
// topological levels concurrently; sparse rounds answer only the queried
// rows through a ReachPool) and checks the constraints in parallel
// shards against that shared snapshot. The verdicts are merged back in
// constraint order, so the forced edges, the Forced count and the
// residual constraint order are identical at every parallelism level —
// PrunePar(ctx, m, k) is observationally equal to PruneCtx(ctx, m) for
// all k. par <= 0 selects GOMAXPROCS.
//
// ctx is polled inside the reachability computation and between
// constraint chunks, so a deadline stops the fixpoint promptly; the
// first result is then meaningless and the context's error is returned.
func (p *Polygraph) PrunePar(ctx context.Context, mode PruneMode, par int) (bool, error) {
	par = graph.Parallelism(par)
	for {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		var (
			reach reacher
			si    *siIndex
			err   error
		)
		if mode == PruneSER {
			reach, err = p.serReach(ctx, par)
		} else {
			si = newSIIndex(p.N, p.Known)
			reach, err = composedReach(ctx, p.N, si.composed, par)
		}
		if err != nil {
			return false, err
		}
		if reach == nil {
			return false, nil // known (or composed) edges alone are cyclic
		}
		bad := func(edges []sat.Edge) bool {
			if mode == PruneSER {
				return createsCycle(reach, edges)
			}
			return si.optionClosesCycle(reach, edges)
		}
		// Check every constraint against the same reachability snapshot in
		// parallel shards; verdicts merge serially in constraint order so
		// the Known append order matches the serial path exactly.
		const (
			keep   = iota
			forceA // B closes a cycle
			forceB // A closes a cycle
			unsat  // both orientations close cycles
		)
		verdicts := make([]uint8, len(p.Cons))
		err = graph.ParallelDo(ctx, par, len(p.Cons), func(i int) {
			c := p.Cons[i]
			aBad := bad(c.A)
			bBad := bad(c.B)
			switch {
			case aBad && bBad:
				verdicts[i] = unsat
			case aBad:
				verdicts[i] = forceB
			case bBad:
				verdicts[i] = forceA
			}
		})
		if err != nil {
			return false, err
		}
		var remaining []sat.Constraint
		changed := false
		for i, c := range p.Cons {
			switch verdicts[i] {
			case unsat:
				return false, nil
			case forceB:
				p.Known = append(p.Known, c.B...)
				p.Forced++
				changed = true
			case forceA:
				p.Known = append(p.Known, c.A...)
				p.Forced++
				changed = true
			default:
				remaining = append(remaining, c)
			}
		}
		p.Cons = remaining
		if !changed {
			return true, nil
		}
	}
}

// serReach answers the round's reachability needs for PruneSER: a nil
// reacher (with nil error) means the known edges are cyclic. When the
// constraints query only a few distinct sources relative to N, per-source
// BFS rows through the ReachPool beat materializing the full closure
// (whose table alone costs N²/64 words); dense query sets amortize the
// closure's word-parallel unions instead.
func (p *Polygraph) serReach(ctx context.Context, par int) (reacher, error) {
	out := adjacency(p.N, p.Known)
	// createsCycle queries reach[e.To][e.From] per candidate edge.
	srcSet := make(map[int]struct{})
	//mtc:cancellation-ok linear scan of the constraint edges; the reachability build below polls ctx
	for _, c := range p.Cons {
		for _, e := range c.A {
			srcSet[e.To] = struct{}{}
		}
		for _, e := range c.B {
			srcSet[e.To] = struct{}{}
		}
	}
	if len(srcSet)*64 >= p.N {
		c, acyclic, err := graph.NewClosure(ctx, p.N, out, par)
		if err != nil || !acyclic {
			return nil, err
		}
		return c, nil
	}
	if !graph.AcyclicAdj(p.N, out) {
		return nil, nil
	}
	sources := make([]int, 0, len(srcSet))
	for s := range srcSet {
		sources = append(sources, s)
	}
	sort.Ints(sources)
	rows, err := graph.NewReachPool(p.N, out, par).Rows(ctx, sources)
	if err != nil {
		return nil, err
	}
	sr := sparseReach{rows: make(map[int]graph.Bitset, len(sources))}
	for i, s := range sources {
		sr.rows[s] = rows[i]
	}
	return sr, nil
}

// composedReach computes the full closure of the SI composed graph; the
// SI option check queries arbitrary composition endpoints, so the sparse
// row set cannot be bounded cheaply. nil with nil error means cyclic.
func composedReach(ctx context.Context, n int, edges []sat.Edge, par int) (reacher, error) {
	c, acyclic, err := graph.NewClosure(ctx, n, adjacency(n, edges), par)
	if err != nil || !acyclic {
		return nil, err
	}
	return c, nil
}

// adjacency flattens an edge list into out-neighbour lists.
func adjacency(n int, edges []sat.Edge) [][]int {
	out := make([][]int, n)
	for _, e := range edges {
		out[e.From] = append(out[e.From], e.To)
	}
	return out
}

// siIndex indexes the known edges for SI pruning: the composed graph
// (base ; rw?) plus the adjacency needed to compose a candidate option's
// new edges against the known ones.
type siIndex struct {
	composed []sat.Edge
	baseIn   [][]int // known base edges into node
	rwOut    [][]int // known rw edges out of node
}

func newSIIndex(n int, known []sat.Edge) *siIndex {
	idx := &siIndex{baseIn: make([][]int, n), rwOut: make([][]int, n)}
	for _, e := range known {
		if e.Kind == sat.RW {
			idx.rwOut[e.From] = append(idx.rwOut[e.From], e.To)
		} else {
			idx.baseIn[e.To] = append(idx.baseIn[e.To], e.From)
		}
	}
	for _, e := range known {
		if e.Kind == sat.RW {
			continue
		}
		idx.composed = append(idx.composed, sat.Edge{From: e.From, To: e.To})
		for _, c := range idx.rwOut[e.To] {
			idx.composed = append(idx.composed, sat.Edge{From: e.From, To: c})
		}
	}
	return idx
}

// optionClosesCycle reports whether activating the option's edges closes a
// cycle in the composed graph, considering compositions of the new edges
// with the known edges and with each other. It only reads idx and the
// reachability snapshot, so parallel shards may call it concurrently.
func (idx *siIndex) optionClosesCycle(reach reacher, edges []sat.Edge) bool {
	var newComp [][2]int
	add := func(a, b int) {
		newComp = append(newComp, [2]int{a, b})
	}
	for _, e := range edges {
		if e.Kind == sat.RW {
			for _, a := range idx.baseIn[e.From] {
				add(a, e.To)
			}
			continue
		}
		add(e.From, e.To)
		for _, c := range idx.rwOut[e.To] {
			add(e.From, c)
		}
		// Compose with the option's own rw edges.
		for _, r := range edges {
			if r.Kind == sat.RW && r.From == e.To {
				add(e.From, r.To)
			}
		}
	}
	for _, e := range newComp {
		if e[0] == e[1] || reach.Reach(e[1], e[0]) {
			return true
		}
	}
	for i := 0; i < len(newComp); i++ {
		for j := i + 1; j < len(newComp); j++ {
			if reach.Reach(newComp[i][1], newComp[j][0]) && reach.Reach(newComp[j][1], newComp[i][0]) {
				return true
			}
		}
	}
	return false
}

// createsCycle reports whether adding any of the edges would close a cycle
// given the reachability relation (to ~> from already).
func createsCycle(reach reacher, edges []sat.Edge) bool {
	for _, e := range edges {
		if reach.Reach(e.To, e.From) {
			return true
		}
	}
	return false
}
