package polygraph

import (
	"context"
	"testing"

	"mtc/internal/graph"
	"mtc/internal/history"
	"mtc/internal/sat"
)

// closureOf is the test shim over graph.NewClosure for edge lists.
func closureOf(n int, edges []sat.Edge) (reacher, bool) {
	c, ok, err := graph.NewClosure(context.Background(), n, adjacency(n, edges), 1)
	if err != nil || !ok {
		return nil, false
	}
	return c, true
}

func TestBuildSerialChainNoResidualAfterPrune(t *testing.T) {
	h := history.SerialHistory(40, "x")
	p := Build(h)
	if p.N != len(h.Txns) {
		t.Fatalf("N = %d", p.N)
	}
	if len(p.Cons) != 0 {
		t.Fatalf("chain coalescing leaves no constraints on an RMW chain, got %d", len(p.Cons))
	}
	if !p.Prune(PruneSER) {
		t.Fatal("serial history must survive pruning")
	}
}

func TestBuildDivergenceUnsatInPrune(t *testing.T) {
	// Divergence: both WW orientations create a cycle with the RW edges,
	// so PruneSER alone settles it.
	b := history.NewBuilder("x")
	b.Txn(0, history.R("x", 0), history.W("x", 1))
	b.Txn(1, history.R("x", 0), history.W("x", 2))
	p := Build(b.Build())
	if len(p.Cons) == 0 {
		t.Fatal("divergent writers must yield a constraint")
	}
	if p.Prune(PruneSER) {
		t.Fatal("divergence must be unsat under SER pruning")
	}
}

func TestPruneSIRejectsDivergence(t *testing.T) {
	// The same divergence under PruneSI: both orientations close a
	// composed cycle through their own induced anti-dependency, so the
	// composed-reachability pruning settles it without the solver.
	b := history.NewBuilder("x")
	b.Txn(0, history.R("x", 0), history.W("x", 1))
	b.Txn(1, history.R("x", 0), history.W("x", 2))
	p := Build(b.Build())
	if p.Prune(PruneSI) {
		if r := sat.SolveSI(p.N, p.Known, p.Cons); r.Sat {
			t.Fatal("divergence must be rejected by pruning or the solver")
		}
	}
}

func TestKnownEdgesIncludeSOWRWWRW(t *testing.T) {
	b := history.NewBuilder("x")
	t1 := b.Txn(0, history.R("x", 0), history.W("x", 1))
	t2 := b.Txn(0, history.R("x", 1), history.W("x", 2))
	t3 := b.Txn(1, history.R("x", 1))
	p := Build(b.Build())
	hasBase := func(a, c int) bool {
		for _, e := range p.Known {
			if e.From == a && e.To == c && e.Kind == sat.Base {
				return true
			}
		}
		return false
	}
	hasRW := func(a, c int) bool {
		for _, e := range p.Known {
			if e.From == a && e.To == c && e.Kind == sat.RW {
				return true
			}
		}
		return false
	}
	if !hasBase(t1, t2) {
		t.Fatal("missing WR/WW t1->t2")
	}
	if !hasBase(t1, t3) {
		t.Fatal("missing WR t1->t3")
	}
	if !hasRW(t3, t2) {
		t.Fatal("missing derived RW t3->t2 (t3 read t1, t2 overwrote)")
	}
	if !hasBase(0, t1) {
		t.Fatal("missing SO init->t1")
	}
}

func TestClosureDetectsCycle(t *testing.T) {
	_, ok := closureOf(2, []sat.Edge{{From: 0, To: 1}, {From: 1, To: 0}})
	if ok {
		t.Fatal("cycle must be detected")
	}
	reach, ok := closureOf(3, []sat.Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	if !ok {
		t.Fatal("chain is acyclic")
	}
	if !reach.Reach(0, 2) {
		t.Fatal("0 must reach 2 transitively")
	}
	if reach.Reach(2, 0) {
		t.Fatal("2 must not reach 0")
	}
}

func TestCreatesCycle(t *testing.T) {
	reach, _ := closureOf(3, []sat.Edge{{From: 0, To: 1}, {From: 1, To: 2}})
	if !createsCycle(reach, []sat.Edge{{From: 2, To: 0}}) {
		t.Fatal("2->0 closes a cycle")
	}
	if createsCycle(reach, []sat.Edge{{From: 0, To: 2}}) {
		t.Fatal("0->2 is consistent")
	}
}

func TestSIIndexComposition(t *testing.T) {
	// base 0->1 plus rw 1->2 composes to 0->2.
	idx := newSIIndex(3, []sat.Edge{
		{From: 0, To: 1, Kind: sat.Base},
		{From: 1, To: 2, Kind: sat.RW},
	})
	found := false
	for _, e := range idx.composed {
		if e.From == 0 && e.To == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing composed edge 0->2: %v", idx.composed)
	}
}

func TestOptionClosesCycleDivergence(t *testing.T) {
	// Known WR edges 0->1, 0->2; the divergence option (WW 1->2 with its
	// induced RW 2->1... both orders) must be recognized as closing a
	// composed cycle through its own new edges.
	known := []sat.Edge{
		{From: 0, To: 1, Kind: sat.Base},
		{From: 0, To: 2, Kind: sat.Base},
	}
	idx := newSIIndex(3, known)
	reach, ok := closureOf(3, idx.composed)
	if !ok {
		t.Fatal("known must be acyclic")
	}
	option := []sat.Edge{
		{From: 1, To: 2, Kind: sat.Base}, // WW 1->2
		{From: 2, To: 1, Kind: sat.RW},   // induced RW 2->1
	}
	if !idx.optionClosesCycle(reach, option) {
		t.Fatal("divergence option must close a composed cycle")
	}
	benign := []sat.Edge{{From: 1, To: 2, Kind: sat.Base}}
	if idx.optionClosesCycle(reach, benign) {
		t.Fatal("plain forward WW must not close a cycle")
	}
}
