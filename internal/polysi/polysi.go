// Package polysi re-implements the PolySI baseline (Huang et al.,
// VLDB'23): a snapshot-isolation checker for general histories built on
// the same polygraph extraction as Cobra but solving against the SI
// composition theory — the chosen write-write orientations, together with
// the anti-dependencies they induce, must leave (SO ∪ WR ∪ WW) ; RW?
// acyclic (Definition 6). The paper uses it as the SI baseline in
// Figures 8 and 17.
package polysi

import (
	"mtc/internal/history"
	"mtc/internal/polygraph"
	"mtc/internal/sat"
)

// Report is the outcome of a PolySI run with stage statistics.
type Report struct {
	OK        bool
	Anomalies []history.Anomaly
	// Constraints counts constraints before pruning; Forced those the
	// (SI-sound) pruning stage resolved; Residual what reached the solver.
	Constraints int
	Forced      int
	Residual    int
	Solver      sat.Result
}

// CheckSI verifies snapshot isolation of a general (or MT) history.
func CheckSI(h *history.History) Report {
	if as := history.CheckInternal(h); len(as) > 0 {
		return Report{OK: false, Anomalies: as}
	}
	p := polygraph.Build(h)
	rep := Report{Constraints: len(p.Cons)}
	if !p.Prune(polygraph.PruneSI) {
		rep.Forced = p.Forced
		return rep
	}
	rep.Forced = p.Forced
	rep.Residual = len(p.Cons)
	rep.Solver = sat.SolveSI(p.N, p.Known, p.Cons)
	rep.OK = rep.Solver.Sat
	return rep
}
