// Package polysi re-implements the PolySI baseline (Huang et al.,
// VLDB'23): a snapshot-isolation checker for general histories built on
// the same polygraph extraction as Cobra but solving against the SI
// composition theory — the chosen write-write orientations, together with
// the anti-dependencies they induce, must leave (SO ∪ WR ∪ WW) ; RW?
// acyclic (Definition 6). The paper uses it as the SI baseline in
// Figures 8 and 17.
package polysi

import (
	"context"
	"time"

	"mtc/internal/history"
	"mtc/internal/polygraph"
	"mtc/internal/sat"
)

// Report is the outcome of a PolySI run with stage statistics.
type Report struct {
	OK        bool
	Anomalies []history.Anomaly
	// Constraints counts constraints before pruning; Forced those the
	// (SI-sound) pruning stage resolved; Residual what reached the solver.
	Constraints int
	Forced      int
	Residual    int
	Solver      sat.Result
	// Per-phase wall-clock durations of the pipeline stages.
	BuildTime, PruneTime, SolveTime time.Duration
}

// CheckSI verifies snapshot isolation of a general (or MT) history.
func CheckSI(h *history.History) Report {
	rep, _ := CheckSICtx(context.Background(), h)
	return rep
}

// CheckSICtx is CheckSI under a context: both the pruning fixpoint and
// the SAT search poll ctx, so a deadline stops the run promptly. The
// Report is only meaningful when the returned error is nil. Pruning runs
// serially; CheckSIPar parallelizes it.
func CheckSICtx(ctx context.Context, h *history.History) (Report, error) {
	return CheckSIPar(ctx, h, 1)
}

// CheckSIPar is CheckSICtx with the (SI-sound) pruning stage sharded
// over a bounded worker pool. par <= 0 selects GOMAXPROCS. The verdict
// and all statistics except wall-clock are identical at every par.
func CheckSIPar(ctx context.Context, h *history.History, par int) (Report, error) {
	ix := history.NewIndex(h)
	if as := history.CheckInternalIndexed(ix); len(as) > 0 {
		return Report{OK: false, Anomalies: as}, nil
	}
	if err := ctx.Err(); err != nil {
		return Report{}, err
	}
	start := time.Now()
	p := polygraph.BuildIndexed(ix)
	rep := Report{Constraints: len(p.Cons), BuildTime: time.Since(start)}
	start = time.Now()
	ok, err := p.PrunePar(ctx, polygraph.PruneSI, par)
	rep.PruneTime = time.Since(start)
	if err != nil {
		return rep, err
	}
	rep.Forced = p.Forced
	if !ok {
		return rep, nil
	}
	rep.Residual = len(p.Cons)
	start = time.Now()
	rep.Solver, err = sat.SolveSICtx(ctx, p.N, p.Known, p.Cons)
	rep.SolveTime = time.Since(start)
	if err != nil {
		return rep, err
	}
	rep.OK = rep.Solver.Sat
	return rep, nil
}
