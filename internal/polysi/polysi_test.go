package polysi

import (
	"testing"

	"mtc/internal/history"
)

func TestFixtureVerdicts(t *testing.T) {
	for _, f := range history.Fixtures() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			got := CheckSI(f.H)
			if got.OK != !f.ViolatesSI {
				t.Fatalf("OK=%v, want %v (%+v)", got.OK, !f.ViolatesSI, got)
			}
		})
	}
}

func TestSerialHistory(t *testing.T) {
	r := CheckSI(history.SerialHistory(50, "x", "y"))
	if !r.OK {
		t.Fatalf("serial history must satisfy SI: %+v", r)
	}
	if r.Constraints != 0 {
		t.Fatalf("chain coalescing leaves no constraints on RMW chains, got %d", r.Constraints)
	}
}

func TestDivergenceRejectedBeforeSolver(t *testing.T) {
	b := history.NewBuilder("x")
	b.Txn(0, history.R("x", 0), history.W("x", 1))
	b.Txn(1, history.R("x", 0), history.W("x", 2))
	r := CheckSI(b.Build())
	if r.OK {
		t.Fatal("divergence must violate SI")
	}
	if r.Solver.Decisions != 0 {
		t.Fatalf("SI pruning should settle divergence without solver decisions: %+v", r.Solver)
	}
}

func TestWriteSkewAcceptedUnderSI(t *testing.T) {
	f := history.FixtureByName("WriteSkew")
	if r := CheckSI(f.H); !r.OK {
		t.Fatalf("write skew satisfies SI: %+v", r)
	}
}

func TestPreCheckRejects(t *testing.T) {
	f := history.FixtureByName("ThinAirRead")
	r := CheckSI(f.H)
	if r.OK || len(r.Anomalies) == 0 {
		t.Fatalf("pre-check must reject: %+v", r)
	}
}
