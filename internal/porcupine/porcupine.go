// Package porcupine re-implements the Porcupine linearizability checker
// the paper uses as the SSER baseline (Section V-B): the Wing-Gong/Lowe
// (WGL) search with memoization over (linearized-set, state) pairs, plus
// P-compositionality — the history is partitioned per object and each
// partition checked independently, which is the locality principle of
// Herlihy and Wing specialized to registers.
//
// Unlike MTC's VLLWT (linear time), WGL explores permutations of
// overlapping operations and backtracks, so its cost grows with the
// concurrency level — exactly the contrast Figure 9 measures.
package porcupine

import (
	"context"
	"hash/fnv"
	"sort"

	"mtc/internal/core"
	"mtc/internal/history"
)

// state is the register automaton state: exists=false models the state
// before the insert-if-not-exists.
type state struct {
	exists bool
	val    history.Value
}

// step applies op to st. ok reports whether the operation is legal in st.
func step(st state, op core.LWT) (state, bool) {
	switch op.Kind {
	case core.LWTInsert:
		if st.exists {
			return st, false
		}
		return state{exists: true, val: op.Write}, true
	case core.LWTRW:
		if !st.exists || st.val != op.Read {
			return st, false
		}
		return state{exists: true, val: op.Write}, true
	default:
		return st, false
	}
}

// Check reports whether the lightweight-transaction history is
// linearizable, checking each object's sub-history independently.
func Check(ops []core.LWT) bool {
	ok, _ := CheckCtx(context.Background(), ops)
	return ok
}

// CheckCtx is Check under a context: the WGL search polls ctx every few
// thousand steps, so a deadline bounds even its worst-case exponential
// backtracking. The verdict is only meaningful when the error is nil.
func CheckCtx(ctx context.Context, ops []core.LWT) (bool, error) {
	byKey := map[history.Key][]core.LWT{}
	for _, o := range ops {
		byKey[o.Key] = append(byKey[o.Key], o)
	}
	for _, sub := range byKey {
		ok, err := checkKey(ctx, sub)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// entry is a call or return event in the WGL entry list.
type entry struct {
	op   int // index into ops
	call bool
	time int64
	prev *entry
	next *entry
}

// bitset is a fixed-capacity bitmask over operation indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) hash(st state) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range b {
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * i))
		}
		h.Write(buf[:])
	}
	v := uint64(st.val)
	if !st.exists {
		v = ^uint64(0)
	}
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// cacheEntry stores a visited (linearized-set, state) configuration.
type cacheEntry struct {
	bits bitset
	st   state
}

// checkKey runs the WGL search on a single object's operations.
func checkKey(ctx context.Context, ops []core.LWT) (bool, error) {
	n := len(ops)
	if n == 0 {
		return true, nil
	}
	// Build the event list: 2n entries sorted by time; returns before
	// calls at equal timestamps (an operation that finishes exactly when
	// another starts precedes it).
	type event struct {
		op   int
		call bool
		time int64
	}
	events := make([]event, 0, 2*n)
	for i, o := range ops {
		events = append(events, event{op: i, call: true, time: o.Start})
		events = append(events, event{op: i, call: false, time: o.Finish})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].time != events[j].time {
			return events[i].time < events[j].time
		}
		// Returns first so touching intervals do not overlap.
		return !events[i].call && events[j].call
	})
	// Doubly-linked list with a sentinel head.
	head := &entry{op: -1}
	cur := head
	callEnt := make([]*entry, n)
	retEnt := make([]*entry, n)
	for _, ev := range events {
		e := &entry{op: ev.op, call: ev.call, time: ev.time}
		e.prev = cur
		cur.next = e
		cur = e
		if ev.call {
			callEnt[ev.op] = e
		} else {
			retEnt[ev.op] = e
		}
	}

	lift := func(op int) {
		for _, e := range []*entry{callEnt[op], retEnt[op]} {
			e.prev.next = e.next
			if e.next != nil {
				e.next.prev = e.prev
			}
		}
	}
	unlift := func(op int) {
		for _, e := range []*entry{retEnt[op], callEnt[op]} {
			e.prev.next = e
			if e.next != nil {
				e.next.prev = e
			}
		}
	}

	type frame struct {
		op    int
		prior state
	}
	var (
		stack      []frame
		st         = state{}
		linearized = newBitset(n)
		cache      = map[uint64][]cacheEntry{}
		remaining  = n
	)
	seen := func(b bitset, s state) bool {
		h := b.hash(s)
		for _, ce := range cache[h] {
			if ce.st == s && ce.bits.equal(b) {
				return true
			}
		}
		cache[h] = append(cache[h], cacheEntry{bits: b.clone(), st: s})
		return false
	}

	e := head.next
	steps := 0
	for remaining > 0 {
		if steps++; steps&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		if e == nil {
			// Reached the end without linearizing everything: backtrack.
			if len(stack) == 0 {
				return false, nil
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			st = f.prior
			linearized.clear(f.op)
			remaining++
			unlift(f.op)
			e = callEnt[f.op].next
			continue
		}
		if e.call {
			if ns, ok := step(st, ops[e.op]); ok {
				// Tentatively linearize e.op.
				linearized.set(e.op)
				if !seen(linearized, ns) {
					stack = append(stack, frame{op: e.op, prior: st})
					st = ns
					remaining--
					lift(e.op)
					e = head.next
					continue
				}
				linearized.clear(e.op)
			}
			e = e.next
			continue
		}
		// A return entry: every operation that returned must already be
		// linearized on this path; otherwise backtrack.
		if len(stack) == 0 {
			return false, nil
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st = f.prior
		linearized.clear(f.op)
		remaining++
		unlift(f.op)
		e = callEnt[f.op].next
	}
	return true, nil
}
