package porcupine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mtc/internal/core"
	"mtc/internal/history"
	"mtc/internal/workload"
)

func TestEmptyHistory(t *testing.T) {
	if !Check(nil) {
		t.Fatal("empty history is linearizable")
	}
}

func TestSequentialChain(t *testing.T) {
	ops := []core.LWT{
		{ID: 0, Key: "x", Kind: core.LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 1, Key: "x", Kind: core.LWTRW, Read: 0, Write: 1, Start: 3, Finish: 4},
		{ID: 2, Key: "x", Kind: core.LWTRW, Read: 1, Write: 2, Start: 5, Finish: 6},
	}
	if !Check(ops) {
		t.Fatal("sequential chain is linearizable")
	}
}

func TestFig4a(t *testing.T) {
	ops := []core.LWT{
		{ID: 0, Key: "x", Kind: core.LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 2, Key: "x", Kind: core.LWTRW, Read: 1, Write: 2, Start: 3, Finish: 6},
		{ID: 1, Key: "x", Kind: core.LWTRW, Read: 0, Write: 1, Start: 4, Finish: 7},
		{ID: 3, Key: "x", Kind: core.LWTRW, Read: 2, Write: 3, Start: 6, Finish: 9},
	}
	if !Check(ops) {
		t.Fatal("Figure 4a is linearizable")
	}
}

func TestFig4b(t *testing.T) {
	ops := []core.LWT{
		{ID: 0, Key: "x", Kind: core.LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 2, Key: "x", Kind: core.LWTRW, Read: 1, Write: 2, Start: 3, Finish: 5},
		{ID: 1, Key: "x", Kind: core.LWTRW, Read: 0, Write: 1, Start: 7, Finish: 10},
		{ID: 3, Key: "x", Kind: core.LWTRW, Read: 2, Write: 3, Start: 6, Finish: 9},
	}
	if Check(ops) {
		t.Fatal("Figure 4b is not linearizable")
	}
}

func TestDoubleInsertRejected(t *testing.T) {
	ops := []core.LWT{
		{ID: 0, Key: "x", Kind: core.LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 1, Key: "x", Kind: core.LWTInsert, Write: 5, Start: 3, Finish: 4},
	}
	if Check(ops) {
		t.Fatal("two non-overlapping inserts cannot both succeed")
	}
}

func TestConcurrentInsertsOneLegalOrder(t *testing.T) {
	// Two overlapping inserts can never both apply on one register.
	ops := []core.LWT{
		{ID: 0, Key: "x", Kind: core.LWTInsert, Write: 0, Start: 1, Finish: 10},
		{ID: 1, Key: "x", Kind: core.LWTInsert, Write: 5, Start: 2, Finish: 9},
	}
	if Check(ops) {
		t.Fatal("both inserts reported success; not linearizable")
	}
}

func TestPerKeyLocality(t *testing.T) {
	good := []core.LWT{
		{ID: 0, Key: "x", Kind: core.LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 1, Key: "y", Kind: core.LWTInsert, Write: 0, Start: 1, Finish: 2},
		{ID: 2, Key: "x", Kind: core.LWTRW, Read: 0, Write: 1, Start: 3, Finish: 4},
		{ID: 3, Key: "y", Kind: core.LWTRW, Read: 0, Write: 1, Start: 3, Finish: 4},
	}
	if !Check(good) {
		t.Fatal("independent keys are linearizable")
	}
	bad := append(append([]core.LWT{}, good...), core.LWT{
		ID: 4, Key: "y", Kind: core.LWTRW, Read: 0, Write: 2, Start: 10, Finish: 11,
	})
	if Check(bad) {
		t.Fatal("stale CAS on y must be rejected")
	}
}

func TestPropertyAgreesWithVLLWT(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.LWTConfig{
			Sessions:       2 + rng.Intn(5),
			TxnsPerSession: 2 + rng.Intn(10),
			ConcurrentFrac: rng.Float64(),
			Keys:           1 + rng.Intn(3),
			Seed:           seed,
			Violate:        rng.Intn(2) == 1,
		}
		ops := workload.GenerateLWT(cfg)
		want := core.VLLWT(ops).OK
		got := Check(ops)
		if want != got {
			t.Logf("cfg=%+v VLLWT=%v porcupine=%v", cfg, want, got)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOverlappingPermutations(t *testing.T) {
	// Heavily overlapping valid chains stay linearizable even though WGL
	// must search through many orders.
	f := func(seed int64) bool {
		ops := workload.GenerateLWT(workload.LWTConfig{
			Sessions: 8, TxnsPerSession: 8, ConcurrentFrac: 1, Keys: 1, Seed: seed,
		})
		return Check(ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownKindIllegal(t *testing.T) {
	st, ok := step(state{}, core.LWT{Kind: core.LWTKind(9)})
	if ok || st.exists {
		t.Fatal("unknown op kind must be illegal")
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(129)
	c := b.clone()
	if !b.equal(c) {
		t.Fatal("clone must equal")
	}
	c.clear(129)
	if b.equal(c) {
		t.Fatal("cleared bit must differ")
	}
	if b.hash(state{exists: true, val: 1}) == b.hash(state{exists: true, val: 2}) {
		t.Fatal("hash should usually differ across states")
	}
	_ = history.Value(0)
}
