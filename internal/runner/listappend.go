package runner

import (
	"sync"

	"mtc/internal/elle"
	"mtc/internal/history"
	"mtc/internal/kv"
	"mtc/internal/workload"
)

// RunListAppend executes a list-append workload plan (SpecAppend /
// SpecReadList operations) against the store and returns the rich
// list-append history the Elle baseline consumes: reads carry the entire
// observed list, not just the last element.
func RunListAppend(s *kv.Store, w *workload.Workload, cfg Config) (*elle.History, *Result) {
	// List keys start absent; no Init needed (empty list == initial).
	type laRecord struct {
		ops       []elle.Op
		start     int64
		finish    int64
		committed bool
	}
	perSession := make([][]laRecord, len(w.Sessions))
	start := make(chan struct{})
	var wg sync.WaitGroup
	for si := range w.Sessions {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			<-start
			var recs []laRecord
			values := 0
			for _, spec := range w.Sessions[si] {
				for attempt := 0; ; attempt++ {
					tx := s.Begin()
					var ops []elle.Op
					ok := true
					for _, op := range spec.Ops {
						latency(cfg.OpDelay)
						switch op.Kind {
						case workload.SpecAppend:
							v := uniqueValue(si, values)
							values++
							if err := tx.Append(op.Key, v); err != nil {
								ok = false
							} else {
								ops = append(ops, elle.Op{Append: true, Key: op.Key, Value: v})
							}
						case workload.SpecReadList:
							lst, err := tx.ReadList(op.Key)
							if err != nil {
								ok = false
							} else {
								cp := make([]history.Value, len(lst))
								copy(cp, lst)
								ops = append(ops, elle.Op{Key: op.Key, List: cp})
							}
						default:
							// Ignore non-list specs in list workloads.
						}
						if !ok {
							break
						}
					}
					if ok {
						ok = tx.Commit() == nil
					}
					recs = append(recs, laRecord{
						ops: ops, start: tx.StartTS(), finish: tx.FinishTS(),
						committed: tx.Committed(),
					})
					if ok || attempt >= cfg.Retries {
						break
					}
				}
			}
			perSession[si] = recs
		}(si)
	}
	close(start)
	wg.Wait()

	res := &Result{}
	h := &elle.History{Sessions: make([][]int, len(w.Sessions))}
	for si, recs := range perSession {
		for _, r := range recs {
			res.Attempts++
			if r.committed {
				res.Committed++
			} else {
				res.Aborted++
				if cfg.DropAborted {
					continue
				}
			}
			id := len(h.Txns)
			h.Txns = append(h.Txns, elle.Txn{
				ID: id, Session: si, Ops: r.ops,
				Committed: r.committed, Start: r.start, Finish: r.finish,
			})
			h.Sessions[si] = append(h.Sessions[si], id)
		}
	}
	return h, res
}
