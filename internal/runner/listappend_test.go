package runner

import (
	"testing"

	"mtc/internal/kv"
	"mtc/internal/workload"
)

func TestRunListAppendShape(t *testing.T) {
	s := kv.NewStore(kv.ModeSI)
	w := workload.GenerateListAppend(workload.ListAppendConfig{
		Sessions: 3, Txns: 30, Objects: 4, MaxTxnLen: 4, Seed: 1,
	})
	h, res := RunListAppend(s, w, Config{Retries: 6})
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if res.Attempts != res.Committed+res.Aborted {
		t.Fatalf("accounting: %d != %d + %d", res.Attempts, res.Committed, res.Aborted)
	}
	if len(h.Sessions) != 3 {
		t.Fatalf("sessions = %d", len(h.Sessions))
	}
	// Every committed transaction's ops mirror its spec kinds; reads
	// carry copied lists that later appends must not mutate.
	for _, txn := range h.Txns {
		for _, op := range txn.Ops {
			if op.Append && op.List != nil {
				t.Fatal("append op must not carry a list")
			}
		}
	}
	// Session lists reference valid transactions in order.
	for si, ids := range h.Sessions {
		for _, id := range ids {
			if h.Txns[id].Session != si {
				t.Fatalf("txn %d session %d listed under %d", id, h.Txns[id].Session, si)
			}
		}
	}
}

func TestRunListAppendDropAborted(t *testing.T) {
	s := kv.NewStore(kv.ModeSI)
	w := workload.GenerateListAppend(workload.ListAppendConfig{
		Sessions: 6, Txns: 40, Objects: 1, MaxTxnLen: 4, Seed: 2,
	})
	h, res := RunListAppend(s, w, Config{Retries: 2, DropAborted: true})
	for _, txn := range h.Txns {
		if !txn.Committed {
			t.Fatal("aborted transaction kept despite DropAborted")
		}
	}
	if res.Attempts == 0 {
		t.Fatal("no attempts recorded")
	}
}

func TestRunListAppendTimestampsOrdered(t *testing.T) {
	s := kv.NewStore(kv.ModeSerializable)
	w := workload.GenerateListAppend(workload.ListAppendConfig{
		Sessions: 2, Txns: 20, Objects: 3, MaxTxnLen: 3, Seed: 3,
	})
	h, _ := RunListAppend(s, w, Config{Retries: 4})
	for _, ids := range h.Sessions {
		for j := 1; j < len(ids); j++ {
			a, b := h.Txns[ids[j-1]], h.Txns[ids[j]]
			if a.Finish >= b.Start {
				t.Fatalf("session not time-ordered: T%d finish %d >= T%d start %d",
					a.ID, a.Finish, b.ID, b.Start)
			}
		}
	}
}

func TestLatencySpin(t *testing.T) {
	latency(0)
	latency(1000) // exercises the busy loop and the sink
	if spinSink.Load() == 0 {
		t.Fatal("spin sink not written")
	}
}

func TestAbortRateEdges(t *testing.T) {
	r := Result{}
	if r.AbortRate() != 0 {
		t.Fatal("empty result rate")
	}
	r = Result{Attempts: 4, Aborted: 1}
	if r.AbortRate() != 0.25 {
		t.Fatalf("rate = %f", r.AbortRate())
	}
}

func TestRunWithOpDelay(t *testing.T) {
	s := kv.NewStore(kv.ModeSI)
	w := workload.GenerateMT(workload.MTConfig{
		Sessions: 2, Txns: 10, Objects: 3, Dist: workload.Uniform, Seed: 4,
	})
	res := Run(s, w, Config{Retries: 2, OpDelay: 50})
	if res.Committed == 0 {
		t.Fatal("nothing committed with OpDelay")
	}
}

func TestUniqueValueDisjointAcrossSessions(t *testing.T) {
	seen := map[int64]bool{}
	for s := 0; s < 8; s++ {
		for n := 0; n < 100; n++ {
			v := int64(uniqueValue(s, n))
			if seen[v] {
				t.Fatalf("collision at session %d n %d", s, n)
			}
			seen[v] = true
		}
	}
}
